module fedgpo

go 1.24
