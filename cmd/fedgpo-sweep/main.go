// Command fedgpo-sweep runs raw (B, E, K) grid sweeps of the simulator
// for one workload and prints convergence round, energy, and PPW per
// setting — the data generator behind the paper's Figures 1, 2 and 7.
// The sweep's cells fan out over the parallel experiment runtime; with
// -cachedir, repeated sweeps (and figure constructors touching the
// same cells) are served from the run cache.
//
// Usage:
//
//	fedgpo-sweep -workload CNN-MNIST [-noniid] [-variance] [-quick] [-parallel N] [-inner-parallel N]
//	             [-backend pool|procs] [-procs N] [-cachedir PATH] [-cache-max-bytes N]
package main

import (
	"flag"
	"fmt"
	"os"

	"fedgpo/internal/cli"
	"fedgpo/internal/exp"
	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

func main() {
	wname := flag.String("workload", "CNN-MNIST", "workload name (CNN-MNIST, LSTM-Shakespeare, MobileNet-ImageNet)")
	noniid := flag.Bool("noniid", false, "use the Dirichlet(0.1) non-IID partition")
	variance := flag.Bool("variance", false, "enable interference + unstable network")
	quick := flag.Bool("quick", false, "reduced fleet for a fast run")
	rtFlags := cli.Register(flag.CommandLine)
	flag.Parse()

	w, err := workload.ByName(*wname)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var s exp.Scenario
	switch {
	case *noniid && *variance:
		s = exp.RealisticNonIID(w)
	case *noniid:
		s = exp.NonIIDScenario(w)
	case *variance:
		s = exp.Realistic(w)
	default:
		s = exp.Ideal(w)
	}
	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	rt, err := rtFlags.Runtime()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts = opts.WithRuntime(rt)
	if opts.FleetSize > 0 {
		s.FleetSize = opts.FleetSize
	}

	// Keep the full grid tractable: sweep the B axis at the default
	// (E, K), the E axis at the default (B, K), the K axis at the
	// default (B, E), plus the paper's named optima.
	var params []fl.Params
	for _, p := range fl.AllParams() {
		if onAxis(p) {
			params = append(params, p)
		}
	}
	results := exp.SweepStatic(opts, s, params, 1)

	fmt.Printf("workload=%s scenario=%s fleet=%d workers=%d\n",
		w.Name, s.Name, s.FleetSize, rt.Workers())
	fmt.Printf("%-12s %10s %12s %14s %10s\n", "(B,E,K)", "converged", "conv round", "energy (kJ)", "PPW")
	for i, p := range params {
		res := results[i]
		conv := "-"
		if res.Converged {
			conv = fmt.Sprint(res.ConvergenceRound)
		}
		fmt.Printf("%-12s %10v %12s %14.0f %10.3g\n",
			p.String(), res.Converged, conv, res.EnergyToConvergenceJ/1000, res.PPW)
	}
	st := rt.Stats()
	fmt.Fprintf(os.Stderr, "runtime: %d cells simulated, %d served from cache\n", st.Runs, st.Hits)
}

// onAxis keeps the sweep to the three axes through (8, 10, 20) plus the
// paper-named optima.
func onAxis(p fl.Params) bool {
	base := fl.Params{B: 8, E: 10, K: 20}
	axes := 0
	if p.B != base.B {
		axes++
	}
	if p.E != base.E {
		axes++
	}
	if p.K != base.K {
		axes++
	}
	if axes <= 1 {
		return true
	}
	for _, named := range []fl.Params{{B: 4, E: 20, K: 20}, {B: 8, E: 5, K: 10}, {B: 1, E: 10, K: 20}} {
		if p == named {
			return true
		}
	}
	return false
}
