// Command fedgpo-sweep runs raw (B, E, K) grid sweeps of the simulator
// for one workload and prints convergence round, energy, and PPW per
// setting — the data generator behind the paper's Figures 1, 2 and 7.
// The sweep's cells fan out over the parallel experiment runtime; with
// -cachedir, repeated sweeps (and figure constructors touching the
// same cells) are served from the run cache.
//
// Beyond the paper's fixed presets, -matrix generates the cross
// product of scenario axes (fleet mix × partition alpha × network ×
// interference × deadline × rounds) and runs one cell per generated
// deployment, and -scenario-file loads explicit ScenarioSpec JSON.
// Both modes run on either execution backend and share the run cache
// with every other tool.
//
// Usage:
//
//	fedgpo-sweep -workload CNN-MNIST [-noniid] [-variance] [-quick] [-parallel N] [-inner-parallel N]
//	             [-backend pool|procs] [-procs N] [-workers host:port,...]
//	             [-cachedir PATH] [-cache-max-bytes N]
//	fedgpo-sweep -matrix "fleet=200,100;alpha=iid,0.5;net=stable,unstable" [-params 8,10,20] [-seed N]
//	fedgpo-sweep -scenario-file scenarios.json
//	fedgpo-sweep -list-scenarios
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fedgpo/internal/cli"
	"fedgpo/internal/exp"
	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

func main() {
	wname := flag.String("workload", "CNN-MNIST", "workload name (CNN-MNIST, LSTM-Shakespeare, MobileNet-ImageNet)")
	noniid := flag.Bool("noniid", false, "use the Dirichlet(0.1) non-IID partition")
	variance := flag.Bool("variance", false, "enable interference + unstable network")
	quick := flag.Bool("quick", false, "reduced fleet for a fast run")
	matrix := flag.String("matrix", "",
		"scenario-matrix axes, e.g. \"fleet=200,H5:M5:L10;alpha=iid,0.5;net=stable,unstable;intf=none,web-browsing;deadline=none,auto;rounds=100\"")
	scenarioFile := flag.String("scenario-file", "", "run ScenarioSpec JSON (one object or an array) from this file")
	paramsFlag := flag.String("params", "8,10,20", "the (B,E,K) setting matrix/scenario-file cells run at")
	seed := flag.Int64("seed", 1, "run seed")
	resultsPath := flag.String("results", "", "write the structured result store to this path: a .jsonl path streams cells to disk as they complete (bounded memory), any other path buffers and writes one JSON array at exit")
	verbose := flag.Bool("v", false, "per-endpoint dispatch stats on stderr")
	rtFlags := cli.Register(flag.CommandLine)
	flag.Parse()

	if rtFlags.HandleListScenarios(os.Stdout) {
		return
	}
	w, err := workload.ByName(*wname)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rt, err := rtFlags.Runtime()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	streaming := strings.HasSuffix(*resultsPath, ".jsonl")
	if *resultsPath != "" {
		if streaming {
			if err := rt.StreamStore(*resultsPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			rt.EnableStore()
		}
	}
	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	opts = opts.WithRuntime(rt)

	if *matrix != "" || *scenarioFile != "" {
		// Scenario mode builds every deployment from its spec; the
		// preset-selection flags would be silently ignored, so reject
		// them (use an alpha/net/intf axis or the spec file instead).
		if *noniid || *variance {
			fmt.Fprintln(os.Stderr, "fedgpo-sweep: -noniid/-variance do not combine with -matrix/-scenario-file; express the deployment in the matrix axes or the spec file")
			os.Exit(1)
		}
		if *quick {
			fmt.Fprintln(os.Stderr, "fedgpo-sweep: note: -quick does not rescale -matrix/-scenario-file deployments; the specs say exactly what runs")
		}
		runScenarios(opts, rt, w, *matrix, *scenarioFile, *paramsFlag, *seed)
		finish(rt, rtFlags, *verbose, *resultsPath, streaming)
		return
	}

	var s exp.ScenarioSpec
	switch {
	case *noniid && *variance:
		s = exp.RealisticNonIID(w)
	case *noniid:
		s = exp.NonIIDScenario(w)
	case *variance:
		s = exp.Realistic(w)
	default:
		s = exp.Ideal(w)
	}
	if opts.FleetSize > 0 {
		s.Fleet.Size = opts.FleetSize
	}

	// Keep the full grid tractable: sweep the B axis at the default
	// (E, K), the E axis at the default (B, K), the K axis at the
	// default (B, E), plus the paper's named optima.
	var params []fl.Params
	for _, p := range fl.AllParams() {
		if onAxis(p) {
			params = append(params, p)
		}
	}
	results := exp.SweepStatic(opts, s, params, 1)

	fmt.Printf("workload=%s scenario=%s fleet=%d workers=%d\n",
		w.Name, s.Name, s.Fleet.Composition().Total(), rt.Workers())
	fmt.Printf("%-12s %10s %12s %14s %10s\n", "(B,E,K)", "converged", "conv round", "energy (kJ)", "PPW")
	for i, p := range params {
		res := results[i]
		conv := "-"
		if res.Converged {
			conv = fmt.Sprint(res.ConvergenceRound)
		}
		fmt.Printf("%-12s %10v %12s %14.0f %10.3g\n",
			p.String(), res.Converged, conv, res.EnergyToConvergenceJ/1000, res.PPW)
	}
	finish(rt, rtFlags, *verbose, *resultsPath, streaming)
}

// runScenarios executes the scenario-matrix / scenario-file mode: one
// cell per deployment at a single (B,E,K) setting. Options scaling
// (-quick) is deliberately not applied — the specs say exactly what
// runs, fleet included.
func runScenarios(opts exp.Options, rt *exp.Runtime,
	w workload.Workload, matrix, scenarioFile, paramsFlag string, seed int64) {

	var specs []exp.ScenarioSpec
	if matrix != "" {
		ms, err := exp.ScenarioMatrix(w, matrix)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = append(specs, ms...)
	}
	if scenarioFile != "" {
		b, err := os.ReadFile(scenarioFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedgpo-sweep:", err)
			os.Exit(1)
		}
		fs, err := exp.DecodeScenarios(b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = append(specs, fs...)
	}
	p, err := parseParams(paramsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	results := exp.SweepScenarios(opts, specs, p, seed)

	fmt.Printf("scenarios=%d params=%s seed=%d workers=%d\n",
		len(specs), p.String(), seed, rt.Workers())
	fmt.Printf("%-56s %10s %12s %14s %10s\n", "scenario", "converged", "conv round", "energy (kJ)", "PPW")
	for i, s := range specs {
		res := results[i]
		conv := "-"
		if res.Converged {
			conv = fmt.Sprint(res.ConvergenceRound)
		}
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("scenario-%d", i)
		}
		fmt.Printf("%-56s %10v %12s %14.0f %10.3g\n",
			name, res.Converged, conv, res.EnergyToConvergenceJ/1000, res.PPW)
	}
}

// parseParams parses a -params value: exactly three positive
// comma-separated integers (Sscanf would silently accept trailing
// garbage).
func parseParams(s string) (fl.Params, error) {
	var p fl.Params
	parts := strings.Split(s, ",")
	dst := []*int{&p.B, &p.E, &p.K}
	if len(parts) != len(dst) {
		return p, fmt.Errorf("fedgpo-sweep: -params %q: want exactly B,E,K", s)
	}
	for i, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return p, fmt.Errorf("fedgpo-sweep: -params %q: want B,E,K positive integers", s)
		}
		*dst[i] = n
	}
	return p, nil
}

// finish prints the runtime summary (the exact "runtime: ..." line CI
// greps), the per-endpoint dispatch stats under -v, writes the
// -metrics-out artifact, and finalizes the -results store.
func finish(rt *exp.Runtime, rtFlags *cli.RuntimeFlags, verbose bool, results string, streaming bool) {
	// Flush deferred cache maintenance before snapshotting telemetry so
	// the touch-flush counters cover the whole run.
	_ = rt.Close()
	st := rt.Stats()
	fmt.Fprintf(os.Stderr, "runtime: %d cells simulated, %d served from cache\n", st.Runs, st.Hits)
	if verbose {
		for _, ep := range st.Endpoints {
			fmt.Fprint(os.Stderr, cli.EndpointLine(ep))
		}
	}
	if err := rtFlags.WriteMetrics(rt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if results != "" {
		if streaming {
			if err := rt.CloseStore(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else if err := rt.Store().WriteFile(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "result store: %d cells -> %s\n", rt.Store().Len(), results)
	}
}

// onAxis keeps the sweep to the three axes through (8, 10, 20) plus the
// paper-named optima.
func onAxis(p fl.Params) bool {
	base := fl.Params{B: 8, E: 10, K: 20}
	axes := 0
	if p.B != base.B {
		axes++
	}
	if p.E != base.E {
		axes++
	}
	if p.K != base.K {
		axes++
	}
	if axes <= 1 {
		return true
	}
	for _, named := range []fl.Params{{B: 4, E: 20, K: 20}, {B: 8, E: 5, K: 10}, {B: 1, E: 10, K: 20}} {
		if p == named {
			return true
		}
	}
	return false
}
