// Command fedgpo-report runs the full experiment suite and emits a
// markdown report (the generator behind EXPERIMENTS.md).
//
// Usage:
//
//	fedgpo-report [-quick] [-only fig9,fig12] > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedgpo/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fleet and seeds")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	fmt.Println("# FedGPO reproduction report")
	fmt.Println()
	fmt.Printf("Generated %s; fleet scale: %s.\n\n",
		time.Now().Format("2006-01-02"), scaleLabel(*quick))
	for _, e := range exp.Registry() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		start := time.Now()
		table := e.Run(opts)
		fmt.Print(table.Markdown())
		fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", e.ID, time.Since(start).Seconds())
	}
}

func scaleLabel(quick bool) string {
	if quick {
		return "quick (20 devices, 1 seed)"
	}
	return "paper (200 devices)"
}
