// Command fedgpo-report runs the full experiment suite and emits a
// markdown report (the generator behind EXPERIMENTS.md). Simulation
// cells fan out over the experiment runtime's execution backend —
// in-process workers by default, worker subprocesses with
// -backend=procs — and with -cachedir a rerun only simulates cells
// whose configuration changed.
//
// Usage:
//
//	fedgpo-report [-quick] [-only fig9,fig12] [-parallel N] [-inner-parallel N]
//	              [-backend pool|procs] [-procs N] [-workers host:port,...]
//	              [-cachedir PATH] [-cache-max-bytes N]
//	              [-results PATH] > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedgpo/internal/cli"
	"fedgpo/internal/exp"
	"fedgpo/internal/runtime"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fleet and seeds")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	results := flag.String("results", "", "write the structured result store to this path: a .jsonl path streams cells to disk as they complete (bounded memory), any other path buffers and writes one JSON array at exit")
	compactResults := flag.String("compact-results", "", "instead of running experiments, compact the result log at this path (either format) into -results as the canonical JSON array")
	verbose := flag.Bool("v", false, "per-job progress on stderr")
	rtFlags := cli.Register(flag.CommandLine)
	flag.Parse()

	if rtFlags.HandleListScenarios(os.Stdout) {
		return
	}
	if *compactResults != "" {
		if *results == "" {
			fmt.Fprintln(os.Stderr, "fedgpo-report: -compact-results needs -results for the output path")
			os.Exit(1)
		}
		if err := runtime.Compact(*compactResults, *results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err := runtime.ReadStore(*results)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "result store: compacted %s -> %s (%d cells)\n", *compactResults, *results, st.Len())
		return
	}
	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	rt, err := rtFlags.Runtime()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *verbose {
		rt.SetProgress(func(p runtime.Progress) {
			tag := ""
			if p.Cached {
				tag = " (cached)"
			}
			// The sec54 probe's overhead rows are wall-clock: surface
			// whether this run measured them or replayed values recorded
			// when the cell first ran.
			if strings.Contains(p.Key, "|sec54|") {
				if p.Cached {
					tag = " (overhead replayed-from-cache)"
				} else {
					tag = " (overhead measured)"
				}
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s%s\n", p.Done, p.Total, p.Key, tag)
		})
	}
	streaming := strings.HasSuffix(*results, ".jsonl")
	if *results != "" {
		if streaming {
			if err := rt.StreamStore(*results); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			rt.EnableStore()
		}
	}
	opts = opts.WithRuntime(rt)

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	fmt.Println("# FedGPO reproduction report")
	fmt.Println()
	fmt.Printf("Generated %s; fleet scale: %s.\n\n",
		time.Now().Format("2006-01-02"), scaleLabel(*quick))
	for _, e := range exp.Registry() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		start := time.Now()
		table := e.Run(opts)
		fmt.Print(table.Markdown())
		fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", e.ID, time.Since(start).Seconds())
	}
	// Flush deferred cache maintenance before snapshotting telemetry so
	// the touch-flush counters cover the whole run.
	_ = rt.Close()
	st := rt.Stats()
	pretrainRuns, pretrainKeys := rt.PretrainStats()
	fmt.Fprintf(os.Stderr, "runtime: %s backend, %d workers (+%d inner), %d cells simulated, %d served from cache, %d/%d pretrain warm-ups executed\n",
		rtFlags.Backend, rt.Workers(), rt.InnerParallel(), st.Runs, st.Hits, pretrainRuns, pretrainKeys)
	if *verbose {
		for _, ep := range st.Endpoints {
			fmt.Fprint(os.Stderr, cli.EndpointLine(ep))
		}
		fmt.Fprint(os.Stderr, rt.Metrics().Summary())
	}
	if err := rtFlags.WriteMetrics(rt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *results != "" {
		if streaming {
			if err := rt.CloseStore(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else if err := rt.Store().WriteFile(*results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "result store: %d cells -> %s\n", rt.Store().Len(), *results)
	}
}

func scaleLabel(quick bool) string {
	if quick {
		return "quick (100 devices, 1 seed)"
	}
	return "paper (200 devices)"
}
