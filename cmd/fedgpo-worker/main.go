// Command fedgpo-worker is the execution half of the multi-process
// shard coordinator (-backend=procs on the fedgpo CLIs): it reads
// serialized job specs from stdin — one JSON WireRequest per line —
// reconstructs each job, executes it, and writes one JSON WireResponse
// per request to stdout, in request order.
//
// With -cachedir pointing at the coordinator's cache directory, the
// worker shares the coordinator's content-addressed run cache and
// pretrained-controller snapshots, so hit semantics match the
// in-process pool backend exactly. The worker never prunes the cache;
// eviction is the coordinator's startup job.
//
// Usage (normally spawned by a coordinator, not by hand):
//
//	fedgpo-worker [-cachedir PATH] [-inner-parallel N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fedgpo/internal/exp"
	"fedgpo/internal/runtime"
)

func main() {
	cachedir := flag.String("cachedir", "", "share the coordinator's run cache under this directory")
	innerParallel := flag.Int("inner-parallel", 0,
		"per-round participant fan-out budget (0 = serial rounds; results are identical for any value)")
	flag.Parse()

	rt, err := exp.NewRuntime(1, *cachedir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedgpo-worker:", err)
		os.Exit(1)
	}
	rt.SetInnerParallel(*innerParallel)

	err = runtime.ServeWorker(os.Stdin, os.Stdout, func(key string, spec json.RawMessage) runtime.Result {
		sp, err := exp.DecodeJobSpec(spec)
		if err != nil {
			return runtime.Result{Key: key, Err: "fedgpo-worker: " + err.Error()}
		}
		job := rt.Job(sp)
		if got := job.Key(); got != key {
			// The spec must address the cell it was dispatched as;
			// anything else would poison the shared cache under the
			// dispatched key.
			return runtime.Result{Key: key, Err: fmt.Sprintf("fedgpo-worker: spec addresses %q, dispatched as %q", got, key)}
		}
		return rt.RunJob(job)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedgpo-worker:", err)
		os.Exit(1)
	}
}
