// Command fedgpo-worker is the execution half of the distributed shard
// coordinator (-backend=procs / -workers on the fedgpo CLIs). It
// speaks the runtime package's wire protocol — a hello frame
// advertising protocol version, cache-key scheme, capacity and cache
// directory, then one JSON WireResponse per WireRequest, in request
// order — over one of two transports:
//
//   - stdio (default): one session on stdin/stdout, normally spawned
//     by a coordinator, one subprocess per local session;
//   - TCP (-listen host:port): a long-lived worker pool serving up to
//     -capacity concurrent sessions, one per accepted connection, for
//     coordinators started with -workers host:port.
//
// With -cachedir pointing at the coordinator's cache directory, the
// worker shares the coordinator's content-addressed run cache and
// pretrained-controller snapshots, so hit semantics match the
// in-process pool backend exactly; the hello advertises the directory,
// and the coordinator skips re-writing entries such a worker already
// published. A remote pool caching elsewhere (or not at all) is also
// fine — the coordinator persists those results itself. The worker
// never prunes the cache; eviction is the coordinator's startup job.
//
// Under protocol v5 the worker also participates in fleet-wide
// pretrain-snapshot reuse: a cell that builds a fresh
// pretrained-controller snapshot returns the serialized artifact with
// its response, and coordinator-pushed artifacts (WireRequest.Snaps)
// are installed into the pool's pretrain cache so co-scheduled warm
// cells deserialize instead of re-running the warm-up.
//
// With the default -inner-parallel=-1 the worker follows the
// coordinator's wire-forwarded per-job inner budget (small batches on
// big machines fan their per-round participant modeling out inside the
// worker); an explicit value pins the budget instead. Results are
// byte-identical for any budget.
//
// Usage:
//
//	fedgpo-worker [-cachedir PATH] [-inner-parallel N]
//
// runs one stdio session (coordinator-spawned). A deployment serving
// remote coordinators instead runs one pool per machine:
//
//	fedgpo-worker -listen 10.0.0.5:9331 -capacity 16 -cachedir /var/cache/fedgpo &
//	fedgpo-sim -exp fig5 -workers 10.0.0.5:9331,10.0.0.6:9331 -cachedir ./cache
//
// The pool logs accepted sessions on stderr and drains gracefully on
// SIGTERM/SIGINT: the listener closes immediately, sessions finish the
// job they are executing and deliver its response, then the process
// exits — so rolling a worker machine never fails a batch (the
// coordinator resends anything unanswered to the remaining pools).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	stdruntime "runtime"
	"syscall"

	"fedgpo/internal/exp"
	"fedgpo/internal/runtime"
)

func main() {
	cachedir := flag.String("cachedir", "", "share the coordinator's run cache under this directory")
	innerParallel := flag.Int("inner-parallel", -1,
		"per-round participant fan-out budget (-1 = follow the coordinator's wire-forwarded budget, 0 = serial rounds; results are identical for any value)")
	listen := flag.String("listen", "",
		"serve a TCP worker pool on this host:port instead of one stdio session (for coordinators started with -workers)")
	capacity := flag.Int("capacity", 0,
		"concurrent session capacity advertised and enforced by -listen (0 = GOMAXPROCS)")
	flag.Parse()

	rt, err := exp.NewRuntime(1, *cachedir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedgpo-worker:", err)
		os.Exit(1)
	}
	// An explicit budget is pinned; the default follows whatever budget
	// the coordinator forwards per request (serial until told
	// otherwise). SetInnerParallel is safe for the concurrent sessions
	// of a TCP pool, and the budget shapes wall-clock only — results
	// are byte-identical for any value.
	var setInner func(int)
	if *innerParallel < 0 {
		rt.SetInnerParallel(0)
		setInner = func(n int) {
			if n >= 0 {
				rt.SetInnerParallel(n)
			}
		}
	} else {
		rt.SetInnerParallel(*innerParallel)
	}

	run := func(key string, spec json.RawMessage) runtime.Result {
		sp, err := exp.DecodeJobSpec(spec)
		if err != nil {
			return runtime.Result{Key: key, Err: "fedgpo-worker: " + err.Error()}
		}
		job := rt.Job(sp)
		if got := job.Key(); got != key {
			// The spec must address the cell it was dispatched as;
			// anything else would poison the shared cache under the
			// dispatched key.
			return runtime.Result{Key: key, Err: fmt.Sprintf("fedgpo-worker: spec addresses %q, dispatched as %q", got, key)}
		}
		return rt.RunJob(job)
	}

	if *listen != "" {
		if *capacity <= 0 {
			*capacity = stdruntime.GOMAXPROCS(0)
		}
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedgpo-worker:", err)
			os.Exit(1)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintf(os.Stderr, "fedgpo-worker: listening on %s (capacity %d)\n", lis.Addr(), *capacity)
		err = runtime.Serve(ctx, lis, runtime.ServeConfig{
			Capacity: *capacity,
			CacheDir: *cachedir,
			Run:      run,
			SetInner: setInner,
			Install:  rt.InstallSnapshot,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "fedgpo-worker: "+format+"\n", args...)
			},
		})
		// Drained (or failed): flush the LRU mtime touches this pool's
		// cache hits queued, so the shared directory's eviction order
		// reflects the sessions it served.
		_ = rt.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedgpo-worker:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "fedgpo-worker: drained")
		return
	}

	err = runtime.ServeSession(os.Stdin, os.Stdout, run, runtime.WorkerOptions{
		Capacity: 1,
		CacheDir: *cachedir,
		SetInner: setInner,
		Install:  rt.InstallSnapshot,
	})
	_ = rt.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedgpo-worker:", err)
		os.Exit(1)
	}
}
