// Command fedgpo-sim runs one of the paper's experiments by id and
// prints its table.
//
// Usage:
//
//	fedgpo-sim -exp fig9 [-quick] [-list]
//
// The -quick flag shrinks the deployment (20 devices, 1 seed) for a
// fast smoke run; the default reproduces the paper-scale 200-device
// deployment.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedgpo/internal/exp"
)

func main() {
	expID := flag.String("exp", "", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced fleet and seeds for a fast run")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Description)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	e, err := exp.ByID(*expID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	start := time.Now()
	table := e.Run(opts)
	fmt.Print(table.String())
	fmt.Printf("(%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
}
