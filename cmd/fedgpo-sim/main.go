// Command fedgpo-sim runs one of the paper's experiments by id and
// prints its table.
//
// Usage:
//
//	fedgpo-sim -exp fig9 [-quick] [-list] [-parallel N] [-inner-parallel N] [-cachedir PATH]
//
// The -quick flag shrinks the deployment (100 devices, 1 seed) for a
// fast smoke run; the default reproduces the paper-scale 200-device
// deployment. Simulation cells fan out over the parallel experiment
// runtime; -cachedir persists completed cells so reruns only simulate
// what changed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedgpo/internal/exp"
)

func main() {
	expID := flag.String("exp", "", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced fleet and seeds for a fast run")
	list := flag.Bool("list", false, "list available experiments")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = all cores)")
	innerParallel := flag.Int("inner-parallel", 0,
		"per-round participant fan-out budget shared across simulations (0 = serial rounds; results are identical for any value)")
	cachedir := flag.String("cachedir", "", "persist the run cache under this directory")
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Description)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	e, err := exp.ByID(*expID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := exp.Default()
	if *quick {
		opts = exp.Quick()
	}
	rt, err := exp.NewRuntime(*parallel, *cachedir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rt.SetInnerParallel(*innerParallel)
	opts = opts.WithRuntime(rt)
	start := time.Now()
	table := e.Run(opts)
	fmt.Print(table.String())
	st := rt.Stats()
	fmt.Printf("(%s in %.1fs; %d workers, %d cells simulated, %d cached)\n",
		e.ID, time.Since(start).Seconds(), rt.Workers(), st.Runs, st.Hits)
}
