// Command fedgpo-sim runs one of the paper's experiments by id and
// prints its table.
//
// Usage:
//
//	fedgpo-sim -exp fig9 [-quick | -tiny] [-list] [-parallel N] [-inner-parallel N]
//	           [-backend pool|procs] [-procs N] [-workers host:port,...]
//	           [-cachedir PATH] [-cache-max-bytes N]
//
// The -quick flag shrinks the deployment (100 devices, 1 seed) for a
// fast smoke run; -tiny shrinks it further (20 devices) for CI smoke
// tests whose absolute numbers are not representative. The default
// reproduces the paper-scale 200-device deployment. Simulation cells
// fan out over the experiment runtime's execution backend (in-process
// workers, or worker subprocesses with -backend=procs); -cachedir
// persists completed cells so reruns only simulate what changed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedgpo/internal/cli"
	"fedgpo/internal/exp"
)

func main() {
	expID := flag.String("exp", "", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced fleet and seeds for a fast run")
	tiny := flag.Bool("tiny", false, "smallest deployment (20 devices) for smoke tests; not representative")
	list := flag.Bool("list", false, "list available experiments")
	rtFlags := cli.Register(flag.CommandLine)
	flag.Parse()

	if rtFlags.HandleListScenarios(os.Stdout) {
		return
	}
	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Description)
		}
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	e, err := exp.ByID(*expID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := exp.Default()
	switch {
	case *tiny:
		opts = exp.Tiny()
	case *quick:
		opts = exp.Quick()
	}
	rt, err := rtFlags.Runtime()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts = opts.WithRuntime(rt)
	start := time.Now()
	table := e.Run(opts)
	fmt.Print(table.String())
	_ = rt.Close()
	st := rt.Stats()
	fmt.Printf("(%s in %.1fs; %s backend, %d workers, %d cells simulated, %d cached)\n",
		e.ID, time.Since(start).Seconds(), rtFlags.Backend, rt.Workers(), st.Runs, st.Hits)
	if err := rtFlags.WriteMetrics(rt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
