// Command fedgpo-train demonstrates that the repository's from-scratch
// NN library actually learns: it trains a small CNN on a synthetic
// image-classification task (a stand-in for MNIST) with plain
// centralized minibatch SGD and prints the loss/accuracy trajectory.
//
// It registers the same shared runtime flag block as the other fedgpo
// CLIs (-list-scenarios, -cachedir, -backend, -workers, ...), so the
// flag surface is uniform across the toolchain. The training loop
// itself is a single in-process run — it emits no simulation cells, so
// beyond -list-scenarios the runtime flags are validated (a bad
// -backend or missing worker binary fails at startup, exactly like the
// other CLIs) but leave the trainer's behavior unchanged.
//
// Usage:
//
//	fedgpo-train [-epochs 10] [-batch 16] [-samples 600]
//	fedgpo-train -list-scenarios
package main

import (
	"flag"
	"fmt"
	"os"

	"fedgpo/internal/cli"
	"fedgpo/internal/data"
	"fedgpo/internal/nn"
	"fedgpo/internal/stats"
)

func main() {
	epochs := flag.Int("epochs", 10, "training epochs")
	batch := flag.Int("batch", 16, "minibatch size")
	perClass := flag.Int("samples", 60, "samples per class (10 classes)")
	rtFlags := cli.Register(flag.CommandLine)
	flag.Parse()

	if rtFlags.HandleListScenarios(os.Stdout) {
		return
	}
	// The trainer runs no simulation cells, but a misconfigured runtime
	// block should fail here like everywhere else, not be silently
	// accepted.
	if _, err := rtFlags.Runtime(); err != nil {
		fmt.Fprintln(os.Stderr, "fedgpo-train:", err)
		os.Exit(1)
	}

	const classes, side = 10, 8
	rng := stats.NewRNG(1)
	dataset := data.GaussianBlobs(classes, side*side, *perClass, 0.7, rng)
	train, test := data.TrainTestSplit(dataset, 0.2, rng)
	fmt.Printf("synthetic %d-class image task: %d train / %d test samples (%dx%d)\n",
		classes, len(train), len(test), side, side)

	model := nn.NewSequential(
		nn.NewConv2D(1, 8, 3, rng),
		&nn.ReLU{},
		&nn.MaxPool2D{},
		&nn.Flatten{},
		nn.NewDense(8*(side/2)*(side/2), 32, rng),
		&nn.ReLU{},
		nn.NewDense(32, classes, rng),
	)
	opt := nn.NewSGD(0.03, 0.9)

	evaluate := func(ds []data.Labeled) float64 {
		x := nn.NewTensor(len(ds), 1, side, side)
		labels := make([]int, len(ds))
		for i, s := range ds {
			copy(x.Data[i*side*side:(i+1)*side*side], s.X)
			labels[i] = s.Y
		}
		return nn.Accuracy(model.Forward(x), labels)
	}

	for epoch := 1; epoch <= *epochs; epoch++ {
		totalLoss, batches := 0.0, 0
		for i := 0; i+*batch <= len(train); i += *batch {
			x := nn.NewTensor(*batch, 1, side, side)
			labels := make([]int, *batch)
			for n := 0; n < *batch; n++ {
				copy(x.Data[n*side*side:(n+1)*side*side], train[i+n].X)
				labels[n] = train[i+n].Y
			}
			logits := model.Forward(x)
			loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
			model.Backward(grad)
			opt.Step(model.Params())
			totalLoss += loss
			batches++
		}
		fmt.Printf("epoch %2d  loss %.4f  test accuracy %.1f%%\n",
			epoch, totalLoss/float64(batches), 100*evaluate(test))
	}
}
