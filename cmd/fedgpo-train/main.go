// Command fedgpo-train demonstrates that the repository's from-scratch
// NN library actually learns: it trains a small CNN on a synthetic
// image-classification task (a stand-in for MNIST) with plain
// centralized minibatch SGD and prints the loss/accuracy trajectory.
//
// Usage:
//
//	fedgpo-train [-epochs 10] [-batch 16] [-samples 600]
package main

import (
	"flag"
	"fmt"

	"fedgpo/internal/data"
	"fedgpo/internal/nn"
	"fedgpo/internal/stats"
)

func main() {
	epochs := flag.Int("epochs", 10, "training epochs")
	batch := flag.Int("batch", 16, "minibatch size")
	perClass := flag.Int("samples", 60, "samples per class (10 classes)")
	flag.Parse()

	const classes, side = 10, 8
	rng := stats.NewRNG(1)
	dataset := data.GaussianBlobs(classes, side*side, *perClass, 0.7, rng)
	train, test := data.TrainTestSplit(dataset, 0.2, rng)
	fmt.Printf("synthetic %d-class image task: %d train / %d test samples (%dx%d)\n",
		classes, len(train), len(test), side, side)

	model := nn.NewSequential(
		nn.NewConv2D(1, 8, 3, rng),
		&nn.ReLU{},
		&nn.MaxPool2D{},
		&nn.Flatten{},
		nn.NewDense(8*(side/2)*(side/2), 32, rng),
		&nn.ReLU{},
		nn.NewDense(32, classes, rng),
	)
	opt := nn.NewSGD(0.03, 0.9)

	evaluate := func(ds []data.Labeled) float64 {
		x := nn.NewTensor(len(ds), 1, side, side)
		labels := make([]int, len(ds))
		for i, s := range ds {
			copy(x.Data[i*side*side:(i+1)*side*side], s.X)
			labels[i] = s.Y
		}
		return nn.Accuracy(model.Forward(x), labels)
	}

	for epoch := 1; epoch <= *epochs; epoch++ {
		totalLoss, batches := 0.0, 0
		for i := 0; i+*batch <= len(train); i += *batch {
			x := nn.NewTensor(*batch, 1, side, side)
			labels := make([]int, *batch)
			for n := 0; n < *batch; n++ {
				copy(x.Data[n*side*side:(n+1)*side*side], train[i+n].X)
				labels[n] = train[i+n].Y
			}
			logits := model.Forward(x)
			loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
			model.Backward(grad)
			opt.Step(model.Params())
			totalLoss += loss
			batches++
		}
		fmt.Printf("epoch %2d  loss %.4f  test accuracy %.1f%%\n",
			epoch, totalLoss/float64(batches), 100*evaluate(test))
	}
}
