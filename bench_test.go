// Package fedgpo's root benchmark harness: one benchmark per paper
// figure/table, each regenerating the artifact through internal/exp.
//
// Benchmarks run at the Quick scale (100 devices, 1 seed) so that
// `go test -bench=.` finishes in minutes; the paper-scale 200-device
// tables come from `go run ./cmd/fedgpo-report` or
// `go run ./cmd/fedgpo-sim -exp <id>`.
//
// Each benchmark additionally reports a headline metric via
// b.ReportMetric so regressions in the reproduced *result* (not just
// its runtime) are visible in benchmark diffs.
package fedgpo

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	stdruntime "runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/exp"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/runtime"
	"fedgpo/internal/workload"
)

// benchOpts is the shared benchmark scale.
func benchOpts() exp.Options { return exp.Quick() }

// ratioCell parses a "1.23x" table cell.
func ratioCell(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%fx", &v)
	return v
}

// pctCell parses a "95.1%" table cell.
func pctCell(s string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	return v
}

// runExperiment executes the experiment b.N times, reporting the last
// table through the supplied metric extractor.
func runExperiment(b *testing.B, id string, metric func(exp.Table) (string, float64)) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var table exp.Table
	for i := 0; i < b.N; i++ {
		table = e.Run(benchOpts())
	}
	if metric != nil {
		name, v := metric(table)
		b.ReportMetric(v, name)
	}
}

// lastRatioFor finds the last row matching the controller name and
// returns the ratio in the given column.
func lastRatioFor(t exp.Table, controller string, col int) float64 {
	v := 0.0
	for _, row := range t.Rows {
		if len(row) > col && row[1] == controller {
			v = ratioCell(row[col])
		}
	}
	return v
}

func BenchmarkFig1_ParamSweep(b *testing.B) {
	runExperiment(b, "fig1", func(t exp.Table) (string, float64) {
		// Headline: PPW of B=8 relative to the (1,10,20) baseline.
		for _, row := range t.Rows {
			if row[0] == "B" && row[1] == "8" {
				return "ppw_B8_vs_base", ratioCell(row[3])
			}
		}
		return "ppw_B8_vs_base", 0
	})
}

func BenchmarkFig2_WorkloadShift(b *testing.B) {
	runExperiment(b, "fig2", nil)
}

func BenchmarkFig3_RoundTime(b *testing.B) {
	runExperiment(b, "fig3", func(t exp.Table) (string, float64) {
		// Headline: the L/H gap at B=8, E=10.
		for _, row := range t.Rows {
			if row[0] == "E" && row[1] == "10" {
				return "LH_gap_E10", ratioCell(row[4]) / ratioCell(row[2])
			}
		}
		return "LH_gap_E10", 0
	})
}

func BenchmarkFig4_RuntimeVariance(b *testing.B) {
	runExperiment(b, "fig4", func(t exp.Table) (string, float64) {
		// Headline: interfered-L inflation over clean L.
		return "intfL_vs_cleanL", ratioCell(t.Rows[1][3]) / ratioCell(t.Rows[0][3])
	})
}

func BenchmarkFig5_AdaptiveEnergy(b *testing.B) {
	runExperiment(b, "fig5", nil)
}

func BenchmarkFig6_AdaptiveSummary(b *testing.B) {
	runExperiment(b, "fig6", func(t exp.Table) (string, float64) {
		for _, row := range t.Rows {
			if row[0] == "global PPW" {
				return "adaptive_ppw_vs_fixed", ratioCell(row[2])
			}
		}
		return "adaptive_ppw_vs_fixed", 0
	})
}

func BenchmarkFig7_DataHeterogeneity(b *testing.B) {
	runExperiment(b, "fig7", nil)
}

func BenchmarkFig9_Overview(b *testing.B) {
	runExperiment(b, "fig9", func(t exp.Table) (string, float64) {
		return "fedgpo_ppw_vs_fixed", lastRatioFor(t, "FedGPO", 2)
	})
}

func BenchmarkFig10_RuntimeVariance(b *testing.B) {
	runExperiment(b, "fig10", func(t exp.Table) (string, float64) {
		return "fedgpo_ppw_vs_fixed", lastRatioFor(t, "FedGPO", 2)
	})
}

func BenchmarkFig11_DataHeterogeneity(b *testing.B) {
	runExperiment(b, "fig11", func(t exp.Table) (string, float64) {
		return "fedgpo_ppw_vs_fixed", lastRatioFor(t, "FedGPO", 2)
	})
}

func BenchmarkFig12_PriorWork(b *testing.B) {
	runExperiment(b, "fig12", func(t exp.Table) (string, float64) {
		return "fedgpo_ppw_vs_fedex", lastRatioFor(t, "FedGPO", 2)
	})
}

func BenchmarkTable5_PredictionAccuracy(b *testing.B) {
	runExperiment(b, "tab5", func(t exp.Table) (string, float64) {
		return "pred_acc_ideal_pct", pctCell(t.Rows[0][2])
	})
}

func BenchmarkSec54_Overhead(b *testing.B) {
	runExperiment(b, "sec54", nil)
}

func BenchmarkAblation_Epsilon(b *testing.B) {
	runExperiment(b, "abl-eps", nil)
}

func BenchmarkAblation_GammaMu(b *testing.B) {
	runExperiment(b, "abl-gm", nil)
}

func BenchmarkAblation_Tables(b *testing.B) {
	runExperiment(b, "abl-tables", nil)
}

func BenchmarkAblation_Beta(b *testing.B) {
	runExperiment(b, "abl-beta", nil)
}

func BenchmarkAblation_ColdStart(b *testing.B) {
	runExperiment(b, "abl-cold", nil)
}

// BenchmarkRuntimeSpeedup measures the parallel experiment runtime's
// wall-clock wins, reported via b.ReportMetric so the perf trajectory
// tracks them:
//
//   - speedup_x: the same batch of independent simulation cells
//     executed on one worker versus all cores (cross-cell sharding).
//     On a single-core machine the ratio is ~1 by construction.
//   - inner_speedup_x: a single serial cell stream with per-round
//     participant fan-out off versus on (intra-round parallelism),
//     measured on a heavy 3000-participant stream — the regime where
//     the PR 9 adaptive gate approves fan-out. On a single-CPU
//     process the gate pins the inner path to the identical serial
//     loop every round, so the ratio is 1 by construction and is
//     reported as exactly 1.0 instead of timing the same loop twice.
//   - fig11_seconds / pretrain_warmups: cold generation time of a
//     comparison figure and how many FedGPO Q-table warm-ups it
//     actually ran — the pretrained-controller cache shares one
//     warm-up per scenario across every cell, seed and probe, which
//     is the dominant fixed cost of the comparison figures.
//   - warm_speedup_x: a 200-device sweep against a cold on-disk run
//     cache versus a rerun over the populated cache (every cell
//     replayed). The heavier fleet keeps cold simulation well above
//     the warm path's per-cell decode cost now that the PR 9 kernel
//     simulates small cells about as fast as their cache entries parse.
//   - wire_bytes_per_cell / wire_v3_bytes_per_cell: what one of the
//     sweep's cells costs on the wire under the v4 binary framing
//     versus the v3 JSON framing, measured on the real request and
//     response payloads (round histories included).
//   - results_rss_bytes: the in-memory retention of recording the
//     sweep's results in a buffered store — the bytes the streaming
//     JSONL store keeps off the heap.
//   - fleet_pretrain_runs / fleet_scenarios / affinity_hit_rate: a
//     cold 2-endpoint fleet sweep of warm-FedGPO cells over S
//     scenarios must execute exactly S Q-table warm-ups fleet-wide —
//     the affinity router co-locates each scenario's cells, the
//     per-process singleflight dedups within an endpoint, and wire v5
//     ships the snapshot to any cell scheduled elsewhere. CI gates
//     fleet_pretrain_runs == fleet_scenarios.
//   - warm_ns_per_cell: the warm rerun's absolute per-cell cost —
//     the cache plane's replay latency on its own scale, not hidden
//     inside a ratio against cold simulation time.
//   - cache_bytes_per_cell / json_cache_bytes_per_cell: what one of
//     the sweep's cells costs on disk under the binary cache envelope
//     versus the legacy JSON envelope, measured on the real results
//     (round histories included). CI gates binary <= 0.6x JSON.
//   - key_allocs_per_op: heap allocations of one warm-path key
//     resolution (AppendKey into a reused buffer + in-place SHA-256 +
//     shard placement). CI gates this at exactly zero.
//   - sim_allocs_per_round / sim_ns_per_round: the simulation kernel
//     itself — one warmed-arena cell run steady-state, heap
//     allocations (ReadMemStats Mallocs delta, exact) and wall time
//     per round. CI gates the allocation ceiling; since PR 9 the
//     round loop is arena-backed and allocation-free in steady state.
//
// All sweep timings are min-of-N over interleaved passes, so a
// background scheduling hiccup on one side cannot fake a regression
// (or a win): inner_speedup_x >= 1.0 is CI-gated, and with the PR 9
// adaptive gate the inner path falls back to the identical serial
// loop whenever fan-out would not pay.
//
// With BENCH_JSON=<path> in the environment the reported metrics are
// additionally written as a JSON artifact so CI can gate on the bench
// trajectory (see .github/workflows/ci.yml).
func BenchmarkRuntimeSpeedup(b *testing.B) {
	s := exp.Ideal(workload.CNNMNIST())
	s.Fleet.Size = 20
	s.MaxRounds = 200
	var params []fl.Params
	for _, bb := range fl.BValues() {
		for _, e := range fl.EValues() {
			params = append(params, fl.Params{B: bb, E: e, K: 10})
		}
	}
	sweep := func(parallel, inner int) time.Duration {
		o := exp.Tiny()
		o.Parallel = parallel
		o.InnerParallel = inner
		start := time.Now()
		exp.SweepStatic(o, s, params, 1)
		return time.Since(start)
	}
	// heavy is the inner-parallelism probe: a 3000-device fleet with
	// every device participating each round, so the per-round
	// participant loop carries enough work (~20ns/item memoized ×3000 ≈
	// 60µs) that the adaptive gate approves fan-out on a multi-core
	// host. Paper-scale rounds like s above never clear the gate's
	// floor — serial and inner-on runs would execute the same code
	// path, making the ratio pure timer noise.
	sHeavy := exp.Ideal(workload.CNNMNIST())
	sHeavy.Fleet.Size = 3000
	sHeavy.MaxRounds = 100
	heavyParams := []fl.Params{{B: 8, E: 5, K: 3000}, {B: 8, E: 10, K: 3000}, {B: 8, E: 20, K: 3000}}
	heavy := func(inner int) time.Duration {
		o := exp.Tiny()
		o.Parallel = 1
		o.InnerParallel = inner
		start := time.Now()
		exp.SweepStatic(o, sHeavy, heavyParams, 1)
		return time.Since(start)
	}
	fig11 := func() (time.Duration, int) {
		rt, err := exp.NewRuntime(0, "")
		if err != nil {
			b.Fatal(err)
		}
		o := exp.Tiny()
		o.Seeds = []int64{1, 2}
		start := time.Now()
		exp.Fig11(o.WithRuntime(rt))
		warmups, _ := rt.PretrainStats()
		return time.Since(start), warmups
	}
	// The cache probe runs on a heavier fleet than s: per-round
	// simulation cost scales with fleet size while a warm replay's cost
	// (decoding the cached round history) does not, and since the PR 9
	// arena/memo pass a 20-device cold cell simulates about as fast as
	// its cache entry decodes — the ratio would no longer discriminate a
	// broken warm path from an honest one. At 200 devices cold
	// simulation dominates again.
	sCache := s
	sCache.Fleet.Size = 200
	cached := func(dir string) time.Duration {
		o := exp.Tiny()
		o.CacheDir = dir
		start := time.Now()
		exp.SweepStatic(o, sCache, params, 1)
		return time.Since(start)
	}
	// wireAndStore measures the data-plane metrics on the sweep's real
	// cells: encode every request and its actual result both ways for
	// bytes-per-cell (wire framing v3 vs v4, and cache envelope JSON vs
	// binary), and record the results in a buffered store for the
	// retention footprint the streaming store avoids.
	wireAndStore := func() (v3, v4, rss, jsonCache, binCache float64) {
		rt, err := exp.NewRuntime(0, "")
		if err != nil {
			b.Fatal(err)
		}
		jobs := make([]runtime.Job, len(params))
		reqs := make([]runtime.WireRequest, len(params))
		for i, p := range params {
			sp := exp.JobSpec{Kind: exp.KindSim, Scenario: s,
				Contender: exp.ContenderSpec{Type: exp.ContStatic, Name: "Fixed" + p.String(), Params: p}, Seed: 1}
			jobs[i] = rt.Job(sp)
			reqs[i] = runtime.WireRequest{Key: jobs[i].Key(), Spec: jobs[i].Payload}
		}
		results := runtime.NewPoolBackend(0).Run(jobs, nil)
		resps := make([]runtime.WireResponse, len(results))
		for i, r := range results {
			resps[i] = runtime.WireResponse{Key: r.Key, Result: r}
		}
		v3, v4, err = runtime.WireBytesPerCell(reqs, resps, 8)
		if err != nil {
			b.Fatal(err)
		}
		jsonCache, binCache, err = runtime.CacheBytesPerCell(results)
		if err != nil {
			b.Fatal(err)
		}
		store := runtime.NewStore()
		store.Add(results...)
		return v3, v4, float64(store.RetainedBytes()), jsonCache, binCache
	}
	// keyAllocs measures the per-job canonical-key resolution the
	// executor performs on the warm path — AppendKey into a reused
	// buffer, SHA-256 in place, shard placement from the digest. CI
	// gates this at exactly zero.
	keyAllocs := func() float64 {
		rt, err := exp.NewRuntime(1, "")
		if err != nil {
			b.Fatal(err)
		}
		job := rt.Job(exp.JobSpec{Kind: exp.KindSim, Scenario: s,
			Contender: exp.ContenderSpec{Type: exp.ContStatic, Name: "Fixed" + params[0].String(), Params: params[0]}, Seed: 1})
		buf := make([]byte, 0, 1024)
		var sink int
		allocs := testing.AllocsPerRun(200, func() {
			buf = job.AppendKey(buf[:0])
			sink = runtime.ShardOfHashed(runtime.HashKeyBytes(buf), 8)
		})
		_ = sink
		return allocs
	}
	// fleetReuse runs a cold warm-FedGPO sweep over S scenarios against
	// a 2-endpoint localhost fleet and reports how many Q-table
	// warm-ups the whole fleet executed plus the router's hit rate.
	fleetReuse := func() (pretrainRuns, scenarios, hitRate float64) {
		w := workload.CNNMNIST()
		build := func(f func(workload.Workload) exp.ScenarioSpec) exp.ScenarioSpec {
			sc := f(w)
			sc.Fleet.Size = 20
			sc.MaxRounds = 60
			return sc
		}
		scens := []exp.ScenarioSpec{build(exp.Ideal), build(exp.Realistic), build(exp.RealisticNonIID)}
		var specs []exp.JobSpec
		for _, sc := range scens {
			for seed := int64(1); seed <= 4; seed++ {
				specs = append(specs, exp.JobSpec{
					Kind: exp.KindSim, Scenario: sc,
					Contender: exp.FedGPOWarmContender(sc), Seed: seed,
				})
			}
		}
		var addrs []string
		var shutdowns []func()
		for i := 0; i < 2; i++ {
			wrt, err := exp.NewRuntime(1, "")
			if err != nil {
				b.Fatal(err)
			}
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				errc <- runtime.Serve(ctx, lis, runtime.ServeConfig{
					Capacity: 2,
					Run: func(key string, spec json.RawMessage) runtime.Result {
						sp, err := exp.DecodeJobSpec(spec)
						if err != nil {
							return runtime.Result{Key: key, Err: err.Error()}
						}
						return wrt.RunJob(wrt.Job(sp))
					},
					SetInner: wrt.SetInnerParallel,
					Install:  wrt.InstallSnapshot,
				})
			}()
			addrs = append(addrs, lis.Addr().String())
			shutdowns = append(shutdowns, func() {
				cancel()
				if err := <-errc; err != nil {
					b.Error(err)
				}
			})
		}
		cache, err := runtime.NewCache("")
		if err != nil {
			b.Fatal(err)
		}
		rt := exp.NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
			Workers: addrs,
		}), cache)
		for _, r := range rt.RunSpecs(specs) {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
		for _, stop := range shutdowns {
			stop()
		}
		m := rt.Metrics()
		var hits, placed int64
		for _, ep := range m.Endpoints {
			hits += ep.AffinityHits
			placed += ep.AffinityHits + ep.AffinityMisses
		}
		if placed > 0 {
			hitRate = float64(hits) / float64(placed)
		}
		return float64(m.Counters.PretrainRuns), float64(len(scens)), hitRate
	}
	// simKernel measures the round loop itself, isolated from the sweep
	// substrate: one simulation cell on a pre-warmed arena, serial inner
	// path (the gate's steady state for cells this size). Allocations
	// come from the exact Mallocs delta, not sampling; time is
	// min-of-N so the ns/round figure is the kernel's floor.
	simKernel := func() (allocsPerRound, nsPerRound float64) {
		w := workload.CNNMNIST()
		fleet := device.NewFleet(device.PaperComposition().Scale(20))
		cfg := fl.Config{
			Workload:          w,
			Fleet:             fleet,
			Partition:         data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
			Channel:           netsim.StableChannel(),
			Interference:      interfere.None(),
			MaxRounds:         200,
			Seed:              1,
			StopAtConvergence: false,
		}
		p := fl.Params{B: 8, E: 10, K: 10}
		a := fl.NewArena()
		fl.RunWithArena(cfg, fl.NewStatic(p), a) // warm arena + memo tables
		var m0, m1 stdruntime.MemStats
		for pass := 0; pass < 5; pass++ {
			ctrl := fl.NewStatic(p)
			stdruntime.ReadMemStats(&m0)
			start := time.Now()
			res := fl.RunWithArena(cfg, ctrl, a)
			d := time.Since(start)
			stdruntime.ReadMemStats(&m1)
			rounds := float64(res.RoundsExecuted)
			apr := float64(m1.Mallocs-m0.Mallocs) / rounds
			npr := float64(d.Nanoseconds()) / rounds
			if pass == 0 || apr < allocsPerRound {
				allocsPerRound = apr
			}
			if pass == 0 || npr < nsPerRound {
				nsPerRound = npr
			}
		}
		return allocsPerRound, nsPerRound
	}
	cores := stdruntime.GOMAXPROCS(0)
	var serial, parallel, innerOff, innerOn, figTime, cold, warm time.Duration
	warmups := 0
	minD := func(acc *time.Duration, d time.Duration) {
		if *acc == 0 || d < *acc {
			*acc = d
		}
	}
	for i := 0; i < b.N; i++ {
		// Interleaved min-of-N: alternating the passes keeps slow ambient
		// load from biasing one side of a ratio. The gated inner pair
		// gets two extra passes because its win (~5-10% end-to-end: the
		// fanned-out participant loop is a minority of a round next to
		// the serial RNG state sampling) is closest to its CI floor.
		for pass := 0; pass < 3; pass++ {
			minD(&serial, sweep(1, 0))
			minD(&parallel, sweep(0, 0))
		}
		if cores > 1 {
			for pass := 0; pass < 5; pass++ {
				minD(&innerOff, heavy(0))
				minD(&innerOn, heavy(cores))
			}
		}
		ft, w := fig11()
		figTime += ft
		warmups = w
		// Cold fills a fresh on-disk cache; the warm rerun of the same
		// sweep replays every cell from it.
		dir := b.TempDir()
		cold += cached(dir)
		warm += cached(dir)
	}
	v3Bytes, v4Bytes, rssBytes, jsonCacheBytes, binCacheBytes := wireAndStore()
	fleetRuns, fleetScens, hitRate := fleetReuse()
	keyAllocsPerOp := keyAllocs()
	simAllocs, simNs := simKernel()
	// On one CPU the gate forbids fan-out, so inner-on and inner-off runs
	// are byte-for-byte the same serial loop: the true ratio is 1.
	innerSpeedup := 1.0
	if cores > 1 {
		innerSpeedup = innerOff.Seconds() / innerOn.Seconds()
	}
	metrics := map[string]float64{
		"fleet_pretrain_runs":       fleetRuns,
		"fleet_scenarios":           fleetScens,
		"affinity_hit_rate":         hitRate,
		"speedup_x":                 serial.Seconds() / parallel.Seconds(),
		"inner_speedup_x":           innerSpeedup,
		"fig11_seconds":             figTime.Seconds() / float64(b.N),
		"pretrain_warmups":          float64(warmups),
		"workers":                   float64(cores),
		"warm_speedup_x":            cold.Seconds() / warm.Seconds(),
		"warm_ns_per_cell":          float64(warm.Nanoseconds()) / float64(b.N*len(params)),
		"wire_bytes_per_cell":       v4Bytes,
		"wire_v3_bytes_per_cell":    v3Bytes,
		"results_rss_bytes":         rssBytes,
		"cache_bytes_per_cell":      binCacheBytes,
		"json_cache_bytes_per_cell": jsonCacheBytes,
		"key_allocs_per_op":         keyAllocsPerOp,
		"sim_allocs_per_round":      simAllocs,
		"sim_ns_per_round":          simNs,
	}
	for name, v := range metrics {
		b.ReportMetric(v, name)
	}
	if path := os.Getenv("BENCH_JSON"); path != "" {
		writeBenchJSON(b, path, "BenchmarkRuntimeSpeedup", metrics)
	}
}

// writeBenchJSON emits a benchmark's reported metrics as a JSON
// artifact (no timestamps — the CI run carries provenance) so the
// perf trajectory can be archived and regression-gated.
func writeBenchJSON(b *testing.B, path, bench string, metrics map[string]float64) {
	b.Helper()
	out, err := json.MarshalIndent(struct {
		Bench   string             `json:"bench"`
		Metrics map[string]float64 `json:"metrics"`
	}{bench, metrics}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
