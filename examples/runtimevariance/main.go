// Runtime variance: the paper's Fig. 10 scenario — on-device
// interference from a co-running app plus unstable Wi-Fi bandwidth,
// with the prior-work straggler-drop deadline active. Shows how the
// fixed baseline's accuracy degrades from chronic straggler drops while
// FedGPO adapts per-device parameters to fit the deadline.
//
//	go run ./examples/runtimevariance
package main

import (
	"fmt"

	"fedgpo/internal/core"
	"fedgpo/internal/exp"
	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

func main() {
	w := workload.CNNMNIST()
	scenario := exp.Realistic(w)
	cfg := scenario.Config(1)
	fmt.Printf("realistic deployment: %d devices, round deadline %.0fs\n\n",
		len(cfg.Fleet), cfg.DeadlineSec)

	fixed := fl.Run(cfg, fl.NewStatic(fl.Params{B: 8, E: 10, K: 20}))

	warm := scenario.Config(999)
	warm.MaxRounds = 150
	fedgpo := fl.Run(cfg, core.Pretrained(core.DefaultConfig(), warm))

	report := func(r fl.Result) {
		drops := 0
		for _, rec := range r.History {
			drops += rec.Dropped
		}
		conv := "not converged"
		if r.Converged {
			conv = fmt.Sprint(r.ConvergenceRound)
		}
		fmt.Printf("%-14s conv=%s acc=%.1f%% avgRound=%.0fs energy=%.0fkJ dropped-updates=%d\n",
			r.Controller, conv, 100*r.FinalAccuracy, r.AvgRoundSeconds,
			r.EnergyToConvergenceJ/1000, drops)
	}
	report(fixed)
	report(fedgpo)
	fmt.Printf("\nFedGPO PPW vs fixed: %.2fx\n", fedgpo.PPW/fixed.PPW)
	fmt.Println("FedGPO assigns lighter (B, E) to interfered devices so their")
	fmt.Println("updates meet the deadline instead of being dropped.")
}
