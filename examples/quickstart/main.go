// Quickstart: run FedGPO on a simulated FedAvg deployment and compare
// it against a fixed-parameter baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fedgpo/internal/core"
	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

func main() {
	// 1. Pick a workload (CNN on an MNIST-like task) and build the
	//    paper's 200-device fleet (30 high-end / 70 mid / 100 low-end).
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition())

	// 2. Describe the deployment: IID data, stable network, a
	//    co-running app interfering on a random half of the devices.
	cfg := fl.Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.Paper(),
		MaxRounds:              400,
		AggregationOverheadSec: 10,
		Seed:                   1,
		StopAtConvergence:      true,
	}

	// 3. Run FedAvg with a fixed (B, E, K) = (8, 10, 20).
	fixed := fl.Run(cfg, fl.NewStatic(fl.Params{B: 8, E: 10, K: 20}))

	// 4. Run FedGPO: warm up its Q-tables on a separate run, then
	//    evaluate the frozen policy (the paper's steady-state setting).
	warm := cfg
	warm.Seed = 999
	warm.MaxRounds = 120
	fedgpo := fl.Run(cfg, core.Pretrained(core.DefaultConfig(), warm))

	fmt.Println("controller      conv round   energy (kJ)    avg round   final acc")
	for _, r := range []fl.Result{fixed, fedgpo} {
		fmt.Printf("%-14s %11d %13.0f %11.1fs %10.1f%%\n",
			r.Controller, r.ConvergenceRound, r.EnergyToConvergenceJ/1000,
			r.AvgRoundSeconds, 100*r.FinalAccuracy)
	}
	fmt.Printf("\nFedGPO energy efficiency (PPW) vs fixed: %.2fx\n", fedgpo.PPW/fixed.PPW)
}
