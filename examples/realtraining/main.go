// Real training: federated averaging over *actual* neural networks
// built with the repository's from-scratch nn library — no simulation.
// Ten clients hold non-IID shards of a synthetic image task; each round
// a subset trains locally (B, E) and the server averages the weights
// (paper Algorithm 1). This demonstrates that the simulator's learning
// dynamics correspond to a real implementation: non-IID data visibly
// slows the same FedAvg code path.
//
//	go run ./examples/realtraining
package main

import (
	"fmt"

	"fedgpo/internal/data"
	"fedgpo/internal/nn"
	"fedgpo/internal/stats"
)

const (
	numClients = 10
	classes    = 4
	dim        = 16
	perDevice  = 80
	rounds     = 12
	localB     = 8
	localE     = 2
	selectK    = 5
)

func buildModel(rng *stats.RNG) *nn.Sequential {
	return nn.NewSequential(
		nn.NewDense(dim, 32, rng),
		&nn.Tanh{},
		nn.NewDense(32, classes, rng),
	)
}

func main() {
	rng := stats.NewRNG(7)
	for _, mode := range []string{"IID", "non-IID"} {
		var part data.Partition
		if mode == "IID" {
			part = data.IID(numClients, classes, perDevice)
		} else {
			part = data.Dirichlet(numClients, classes, perDevice, data.PaperAlpha, rng.Split())
		}
		shards := data.SplitByPartition(part, dim, 0.8, rng.Split())
		test := data.GaussianBlobs(classes, dim, 50, 0.8, rng.Split())

		global := buildModel(stats.NewRNG(1))
		selRNG := rng.Split()
		fmt.Printf("\n=== FedAvg with real models, %s shards (skew %.2f) ===\n",
			mode, part.GlobalSkew())
		for round := 1; round <= rounds; round++ {
			selected := selRNG.SampleWithoutReplacement(numClients, selectK)
			snaps := make([][]*nn.Tensor, 0, selectK)
			weights := make([]float64, 0, selectK)
			for _, k := range selected {
				// ClientUpdate (paper Algorithm 1): copy the global
				// model, train E epochs of minibatch SGD, return weights.
				local := buildModel(stats.NewRNG(1))
				nn.LoadParams(local, nn.ParamSnapshot(global))
				opt := nn.NewSGD(0.05, 0.9)
				shard := shards[k]
				for e := 0; e < localE; e++ {
					for i := 0; i+localB <= len(shard); i += localB {
						x := nn.NewTensor(localB, dim)
						labels := make([]int, localB)
						for n := 0; n < localB; n++ {
							copy(x.Data[n*dim:(n+1)*dim], shard[i+n].X)
							labels[n] = shard[i+n].Y
						}
						_, grad := nn.SoftmaxCrossEntropy(local.Forward(x), labels)
						local.Backward(grad)
						opt.Step(local.Params())
					}
				}
				snaps = append(snaps, nn.ParamSnapshot(local))
				weights = append(weights, float64(len(shard)))
			}
			nn.LoadParams(global, nn.FedAvg(snaps, weights))

			x := nn.NewTensor(len(test), dim)
			labels := make([]int, len(test))
			for i, s := range test {
				copy(x.Data[i*dim:(i+1)*dim], s.X)
				labels[i] = s.Y
			}
			fmt.Printf("round %2d  test accuracy %.1f%%\n",
				round, 100*nn.Accuracy(global.Forward(x), labels))
		}
	}
	fmt.Println("\nNon-IID shards slow the same FedAvg code path — the effect the")
	fmt.Println("simulator's convergence model encodes at 200-device scale.")
}
