// Heterogeneity: the paper's Fig. 11 scenario — non-IID client data
// (Dirichlet 0.1) — comparing FedGPO against Fixed (Best),
// Adaptive (BO) and Adaptive (GA).
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"

	"fedgpo/internal/baseline"
	"fedgpo/internal/core"
	"fedgpo/internal/exp"
	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

func main() {
	w := workload.CNNMNIST()
	scenario := exp.NonIIDScenario(w)
	cfg := scenario.Config(1)
	fmt.Printf("non-IID deployment: %d devices, global skew %.2f\n\n",
		len(cfg.Fleet), cfg.Partition.GlobalSkew())

	// Fixed (Best) is grid-searched offline in the ideal environment,
	// exactly as the paper frames it, then deployed under non-IID data.
	bestParams, _ := baseline.GridSearchBest(exp.Ideal(w).Config(1),
		baseline.CoarseGrid(), []int64{1})
	fmt.Printf("Fixed (Best) from offline grid search: %v\n\n", bestParams)

	warm := scenario.Config(999)
	warm.MaxRounds = 150
	controllers := []fl.Controller{
		&fl.Static{P: bestParams, Label: "Fixed (Best)"},
		baseline.NewBO(1),
		baseline.NewGA(1),
		core.Pretrained(core.DefaultConfig(), warm),
	}

	fmt.Println("controller      conv round   energy (kJ)   final acc        PPW")
	var fixedPPW float64
	for i, ctrl := range controllers {
		r := fl.Run(cfg, ctrl)
		if i == 0 {
			fixedPPW = r.PPW
		}
		conv := "not converged"
		if r.Converged {
			conv = fmt.Sprint(r.ConvergenceRound)
		}
		fmt.Printf("%-14s %12s %13.0f %10.1f%% %9.2fx\n",
			r.Controller, conv, r.EnergyToConvergenceJ/1000,
			100*r.FinalAccuracy, r.PPW/fixedPPW)
	}
	fmt.Println("\nPPW is normalized to Fixed (Best); the paper reports FedGPO")
	fmt.Println("ahead of all baselines under data heterogeneity (Fig. 11).")
}
