// Package baseline provides the paper's comparison controllers as
// fl.Controller implementations (§4.1):
//
//   - Fixed (Best): the most energy-efficient fixed (B, E, K) found by
//     grid search, held constant for the whole run;
//   - Adaptive (BO): round-by-round Bayesian optimization over the
//     (B, E, K) grid;
//   - Adaptive (GA): round-by-round genetic algorithm;
//   - FedEX (paper [29]): exponentiated-gradient updates;
//   - ABS (paper [49]): deep-RL batch-size adaptation (internal/abs).
//
// All adaptive baselines optimize the same scalar round objective
// (energy-normalized, improvement-gated — see RoundReward), so the
// comparison isolates the optimizers, not their objectives.
package baseline

import (
	"math"

	"fedgpo/internal/bayesopt"
	"fedgpo/internal/device"
	"fedgpo/internal/fedex"
	"fedgpo/internal/fl"
	"fedgpo/internal/ga"
	"fedgpo/internal/stats"
)

// RoundReward is the shared scalar objective the adaptive baselines
// maximize: the same convergence-first, energy-second shape as FedGPO's
// Eq. 1 global terms, without the per-device term (these baselines pick
// one global configuration).
func RoundReward(energyNorm, accPct, prevAccPct float64) float64 {
	if accPct <= prevAccPct {
		return accPct - 100
	}
	headroom := 100 - prevAccPct
	if headroom < 1e-9 {
		headroom = 1e-9
	}
	return -energyNorm + 20*(100*(accPct-prevAccPct)/headroom)
}

// energyEMA normalizes round energy to a ~10 nominal, like FedGPO's
// EnergyNormalizer.
type energyEMA struct{ ema *stats.EMA }

func newEnergyEMA() *energyEMA { return &energyEMA{ema: stats.NewEMA(0.2)} }

func (e *energyEMA) norm(j float64) float64 {
	if j < 0 {
		j = 0
	}
	avg := e.ema.Add(j)
	if avg <= 0 {
		return 0
	}
	return 10 * j / avg
}

// staticPlan builds a Plan for a single global parameter setting.
func staticPlan(p fl.Params) fl.Plan {
	lp := fl.LocalParams{B: p.B, E: p.E}
	return fl.Plan{K: p.K, Local: func(device.Device, fl.DeviceState) fl.LocalParams {
		return lp
	}}
}

// GridSearchBest runs every candidate (or the full Table 2 grid when
// candidates is nil) through the given deployment and returns the
// setting with the best PPW — the paper's Fixed (Best) selection
// procedure ("the most energy-efficient parameter combination
// identified by grid search"). The search runs on the supplied config;
// the paper's offline-simulation framing corresponds to passing the
// ideal (no-variance) deployment here and then evaluating the returned
// setting wherever the experiment deploys it.
func GridSearchBest(cfg fl.Config, candidates []fl.Params, seeds []int64) (fl.Params, float64) {
	if candidates == nil {
		candidates = fl.AllParams()
	}
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	bestP, bestPPW := candidates[0], math.Inf(-1)
	for _, p := range candidates {
		total := 0.0
		for _, seed := range seeds {
			c := cfg
			c.Seed = seed
			res := fl.Run(c, fl.NewStatic(p))
			total += res.PPW
		}
		ppw := total / float64(len(seeds))
		if ppw > bestPPW {
			bestP, bestPPW = p, ppw
		}
	}
	return bestP, bestPPW
}

// CoarseGrid returns a reduced candidate set (24 of 150 combinations)
// spanning the action space, for callers that cannot afford the full
// grid search.
func CoarseGrid() []fl.Params {
	var out []fl.Params
	for _, b := range []int{2, 8, 16, 32} {
		for _, e := range []int{5, 10, 15} {
			for _, k := range []int{10, 20} {
				out = append(out, fl.Params{B: b, E: e, K: k})
			}
		}
	}
	return out
}

// NewFixedBest builds the Fixed (Best) controller by grid search over
// the given deployment.
func NewFixedBest(searchCfg fl.Config, candidates []fl.Params, seeds []int64) *fl.Static {
	p, _ := GridSearchBest(searchCfg, candidates, seeds)
	return &fl.Static{P: p, Label: "Fixed (Best)"}
}

// BO is the Adaptive (BO) controller: a GP with expected improvement
// re-selects the global (B, E, K) every round.
type BO struct {
	opt     *bayesopt.Optimizer
	grid    []fl.Params
	energy  *energyEMA
	lastIdx int
}

var _ fl.Controller = (*BO)(nil)

// NewBO builds the Adaptive (BO) baseline.
func NewBO(seed int64) *BO {
	grid := fl.AllParams()
	coords := make([][]float64, len(grid))
	for i, p := range grid {
		coords[i] = normalizeParams(p)
	}
	return &BO{
		opt:     bayesopt.New(coords, bayesopt.DefaultConfig(), stats.NewRNG(seed)),
		grid:    grid,
		energy:  newEnergyEMA(),
		lastIdx: -1,
	}
}

// normalizeParams maps a grid point into [0,1]^3 (B on a log scale).
func normalizeParams(p fl.Params) []float64 {
	return []float64{
		math.Log2(float64(p.B)) / 5, // B in 1..32
		float64(p.E) / 20,
		float64(p.K) / 20,
	}
}

// Name identifies the controller.
func (b *BO) Name() string { return "Adaptive (BO)" }

// Plan asks the GP for the next configuration.
func (b *BO) Plan(fl.Observation) fl.Plan {
	b.lastIdx = b.opt.Suggest()
	return staticPlan(b.grid[b.lastIdx])
}

// Observe feeds the round reward back into the GP.
func (b *BO) Observe(res fl.RoundResult) {
	if b.lastIdx < 0 {
		return
	}
	r := RoundReward(b.energy.norm(res.EnergyGlobalJ), res.Accuracy*100, res.PrevAccuracy*100)
	b.opt.Observe(b.lastIdx, r)
	b.lastIdx = -1
}

// GA is the Adaptive (GA) controller: a genetic algorithm evolves the
// global (B, E, K) round-by-round.
type GA struct {
	opt        *ga.Optimizer
	energy     *energyEMA
	bs, es, ks []int
	lastGenes  []int
}

var _ fl.Controller = (*GA)(nil)

// NewGA builds the Adaptive (GA) baseline.
func NewGA(seed int64) *GA {
	bs, es, ks := fl.BValues(), fl.EValues(), fl.KValues()
	return &GA{
		opt:    ga.New([]int{len(bs), len(es), len(ks)}, ga.DefaultConfig(), stats.NewRNG(seed)),
		energy: newEnergyEMA(),
		bs:     bs, es: es, ks: ks,
	}
}

// Name identifies the controller.
func (g *GA) Name() string { return "Adaptive (GA)" }

// Plan evaluates the GA's next genome.
func (g *GA) Plan(fl.Observation) fl.Plan {
	g.lastGenes = g.opt.Suggest()
	return staticPlan(fl.Params{
		B: g.bs[g.lastGenes[0]], E: g.es[g.lastGenes[1]], K: g.ks[g.lastGenes[2]],
	})
}

// Observe records the genome's fitness.
func (g *GA) Observe(res fl.RoundResult) {
	if g.lastGenes == nil {
		return
	}
	r := RoundReward(g.energy.norm(res.EnergyGlobalJ), res.Accuracy*100, res.PrevAccuracy*100)
	g.opt.Observe(r)
	g.lastGenes = nil
}

// FedEX is the FedEX controller (paper [29]): exponentiated-gradient
// updates over the configuration grid.
type FedEX struct {
	opt     *fedex.Optimizer
	grid    []fl.Params
	energy  *energyEMA
	pending bool
}

var _ fl.Controller = (*FedEX)(nil)

// NewFedEX builds the FedEX baseline.
func NewFedEX(seed int64) *FedEX {
	grid := fl.AllParams()
	return &FedEX{
		opt:    fedex.New(len(grid), fedex.DefaultConfig(), stats.NewRNG(seed)),
		grid:   grid,
		energy: newEnergyEMA(),
	}
}

// Name identifies the controller.
func (f *FedEX) Name() string { return "FedEX" }

// Plan samples a configuration from the Hedge distribution.
func (f *FedEX) Plan(fl.Observation) fl.Plan {
	idx := f.opt.Suggest()
	f.pending = true
	return staticPlan(f.grid[idx])
}

// Observe applies the exponentiated-gradient update.
func (f *FedEX) Observe(res fl.RoundResult) {
	if !f.pending {
		return
	}
	r := RoundReward(f.energy.norm(res.EnergyGlobalJ), res.Accuracy*100, res.PrevAccuracy*100)
	f.opt.Observe(r)
	f.pending = false
}
