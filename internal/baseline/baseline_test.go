package baseline

import (
	"testing"

	"fedgpo/internal/abs"
	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

func testConfig() fl.Config {
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(20))
	return fl.Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.None(),
		MaxRounds:              250,
		AggregationOverheadSec: 10,
		Seed:                   1,
		StopAtConvergence:      true,
	}
}

func TestRoundRewardShape(t *testing.T) {
	// No improvement: punished.
	if got := RoundReward(10, 50, 50); got != -50 {
		t.Errorf("flat reward = %v, want -50", got)
	}
	// Improvement: energy subtracts.
	cheap := RoundReward(5, 60, 50)
	pricey := RoundReward(15, 60, 50)
	if cheap <= pricey {
		t.Error("cheaper round should score higher")
	}
	// More improvement scores higher at equal energy.
	if RoundReward(10, 65, 50) <= RoundReward(10, 55, 50) {
		t.Error("bigger improvement should score higher")
	}
}

func TestGridSearchBestPicksReasonableParams(t *testing.T) {
	cfg := testConfig()
	p, ppw := GridSearchBest(cfg, CoarseGrid(), []int64{1})
	if !p.Valid() {
		t.Fatalf("grid search returned invalid params %v", p)
	}
	if ppw <= 0 {
		t.Fatalf("best PPW = %v", ppw)
	}
	// The best fixed configuration should not be a degenerate corner.
	if p.E == 1 && p.K == 1 {
		t.Errorf("grid search picked degenerate %v", p)
	}
	// And it must beat an obviously bad configuration.
	bad := fl.Run(cfg, fl.NewStatic(fl.Params{B: 32, E: 20, K: 20}))
	if ppw <= bad.PPW {
		t.Errorf("best PPW %v should beat bad config's %v", ppw, bad.PPW)
	}
}

func TestCoarseGridIsSubsetOfActionSpace(t *testing.T) {
	for _, p := range CoarseGrid() {
		if fl.ParamIndex(p) < 0 {
			t.Errorf("coarse grid point %v not on the Table 2 grid", p)
		}
	}
	if len(CoarseGrid()) >= len(fl.AllParams()) {
		t.Error("coarse grid should be smaller than the full grid")
	}
}

func TestAllBaselinesRunAndConverge(t *testing.T) {
	cfg := testConfig()
	factories := map[string]func() fl.Controller{
		"Fixed (Best)":  func() fl.Controller { return NewFixedBest(cfg, CoarseGrid(), []int64{1}) },
		"Adaptive (BO)": func() fl.Controller { return NewBO(1) },
		"Adaptive (GA)": func() fl.Controller { return NewGA(1) },
		"FedEX":         func() fl.Controller { return NewFedEX(1) },
		"ABS":           func() fl.Controller { return abs.New(abs.DefaultConfig()) },
	}
	for name, factory := range factories {
		ctrl := factory()
		if ctrl.Name() != name {
			t.Errorf("controller name = %q, want %q", ctrl.Name(), name)
		}
		res := fl.Run(cfg, ctrl)
		if res.FinalAccuracy < 0.5 {
			t.Errorf("%s: final accuracy %v suspiciously low", name, res.FinalAccuracy)
		}
		if res.EnergyToConvergenceJ <= 0 || res.PPW <= 0 {
			t.Errorf("%s: non-positive energy/PPW", name)
		}
	}
}

func TestAdaptiveBaselinesActuallyAdapt(t *testing.T) {
	// BO/GA/FedEX must propose more than one distinct configuration
	// over a run; ABS must vary B.
	cfg := testConfig()
	cfg.MaxRounds = 40
	cfg.StopAtConvergence = false
	for name, factory := range map[string]func() fl.Controller{
		"BO":    func() fl.Controller { return NewBO(2) },
		"GA":    func() fl.Controller { return NewGA(2) },
		"FedEX": func() fl.Controller { return NewFedEX(2) },
		"ABS":   func() fl.Controller { return abs.New(abs.DefaultConfig()) },
	} {
		ctrl := factory()
		seen := map[fl.LocalParams]bool{}
		probe := &probeCtl{inner: ctrl, onResult: func(rr fl.RoundResult) {
			for _, p := range rr.Participants {
				seen[p.Local] = true
			}
		}}
		fl.Run(cfg, probe)
		if len(seen) < 2 {
			t.Errorf("%s never varied its configuration", name)
		}
	}
}

func TestBaselinesDeterministicPerSeed(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRounds = 60
	cfg.StopAtConvergence = false
	for name, factory := range map[string]func() fl.Controller{
		"BO":    func() fl.Controller { return NewBO(5) },
		"GA":    func() fl.Controller { return NewGA(5) },
		"FedEX": func() fl.Controller { return NewFedEX(5) },
	} {
		a := fl.Run(cfg, factory())
		b := fl.Run(cfg, factory())
		if a.EnergyToConvergenceJ != b.EnergyToConvergenceJ {
			t.Errorf("%s: same-seed runs diverged", name)
		}
	}
}

type probeCtl struct {
	inner    fl.Controller
	onResult func(fl.RoundResult)
}

func (p *probeCtl) Name() string                  { return p.inner.Name() }
func (p *probeCtl) Plan(o fl.Observation) fl.Plan { return p.inner.Plan(o) }
func (p *probeCtl) Observe(r fl.RoundResult) {
	p.onResult(r)
	p.inner.Observe(r)
}
