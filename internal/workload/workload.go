// Package workload describes the three FL training workloads the paper
// evaluates (§4.2): CNN-MNIST (image classification), LSTM-Shakespeare
// (next-character prediction) and MobileNet-ImageNet (image
// classification). A workload bundles:
//
//   - the architecture fingerprint FedGPO's state machine reads
//     (numbers of convolutional / fully-connected / recurrent layers,
//     paper Table 1's S_CONV, S_FC, S_RC);
//   - the hardware cost shape the device model consumes (FLOPs and
//     bytes per sample, model size, memory intensity);
//   - the learning-dynamics parameters the convergence model consumes
//     (accuracy asymptote, convergence gain, and the (B, E, K) response
//     surface — where the generalization sweet spots sit).
//
// The learning parameters are calibrated so the qualitative
// characterization in the paper's §2 holds: CNN-MNIST is most
// energy-efficient near (B,E,K) = (8,10,20); LSTM-Shakespeare, being
// memory-bound, shifts to (4,20,20); non-IID data shifts the optimum
// toward smaller E and K (Fig. 7).
package workload

import (
	"fmt"

	"fedgpo/internal/device"
)

// Learning captures a workload's response to the FL global parameters.
// The convergence model turns these into per-round accuracy gains.
type Learning struct {
	// InitialAccuracy is the model accuracy at round 0 (random guess).
	InitialAccuracy float64
	// MaxAccuracy is the asymptote under ideal IID training.
	MaxAccuracy float64
	// TargetAccuracy defines convergence: the run has converged when
	// accuracy settles within the convergence window of this value.
	TargetAccuracy float64
	// BaseGain is the per-round fraction of the remaining accuracy gap
	// closed at the ideal parameter setting.
	BaseGain float64
	// OptimalB is the generalization sweet spot for the local batch
	// size; effectiveness falls off Gaussianly in log2(B) around it
	// with width BTolerance (paper §2.1: "using larger batch sizes
	// usually yields poor generalizability").
	OptimalB   float64
	BTolerance float64
	// OptimalE balances under- and over-fitting of local data
	// (paper §2.1); effectiveness rises toward it and decays past it
	// with slope EOverfit.
	OptimalE float64
	EOverfit float64
	// OptimalK is the global-batch sweet spot; effectiveness grows
	// with diminishing returns toward it.
	OptimalK float64
	// NonIIDSensitivity scales how strongly participant skew hurts
	// per-round progress; the damage is amplified by E and K (paper
	// §2.2: E and K control "the amount of non-IID data reflected").
	NonIIDSensitivity float64
	// NoiseStd is the round-to-round stochastic accuracy jitter at the
	// start of training (it anneals as accuracy approaches the cap).
	NoiseStd float64
}

// Workload is one complete FL training task.
type Workload struct {
	Name string
	// Layer counts: the architecture states of paper Table 1.
	ConvLayers, FCLayers, RCLayers int
	// NumClasses in the classification task.
	NumClasses int
	// SamplesPerDevice is the mean local dataset size.
	SamplesPerDevice int
	// Shape is the hardware cost fingerprint.
	Shape device.WorkloadShape
	// Learn is the learning-dynamics parameterization.
	Learn Learning
}

// String returns the workload's display name.
func (w Workload) String() string { return w.Name }

// Validate checks internal consistency; experiment constructors call it
// so a miscalibrated hand-edited workload fails fast.
func (w Workload) Validate() error {
	switch {
	case w.Name == "":
		return fmt.Errorf("workload: empty name")
	case w.NumClasses <= 1:
		return fmt.Errorf("workload %s: need >= 2 classes", w.Name)
	case w.SamplesPerDevice <= 0:
		return fmt.Errorf("workload %s: need positive samples per device", w.Name)
	case w.Shape.FLOPsPerSample <= 0 || w.Shape.ModelBytes <= 0:
		return fmt.Errorf("workload %s: non-positive cost shape", w.Name)
	case w.Learn.MaxAccuracy <= w.Learn.InitialAccuracy:
		return fmt.Errorf("workload %s: max accuracy must exceed initial", w.Name)
	case w.Learn.TargetAccuracy > w.Learn.MaxAccuracy:
		return fmt.Errorf("workload %s: target above asymptote", w.Name)
	case w.Learn.BaseGain <= 0 || w.Learn.BaseGain >= 1:
		return fmt.Errorf("workload %s: BaseGain must be in (0,1)", w.Name)
	case w.Learn.OptimalB < 1 || w.Learn.OptimalE < 1 || w.Learn.OptimalK < 1:
		return fmt.Errorf("workload %s: optima must be >= 1", w.Name)
	}
	return nil
}

// CNNMNIST returns the CNN-MNIST workload: a small convolutional
// network (compute-bound, tiny model) on a 10-class image task.
// MNIST's 60k training samples over the 200-device fleet give 300
// samples per device.
func CNNMNIST() Workload {
	return Workload{
		Name:             "CNN-MNIST",
		ConvLayers:       3,
		FCLayers:         2,
		RCLayers:         0,
		NumClasses:       10,
		SamplesPerDevice: 300,
		Shape: device.WorkloadShape{
			FLOPsPerSample:  36e6, // fwd+bwd of a small CNN on 28x28
			BytesPerSample:  2.5e6,
			ModelBytes:      6e6,
			MemoryIntensity: 0.15,
		},
		Learn: Learning{
			InitialAccuracy:   0.10,
			MaxAccuracy:       0.99,
			TargetAccuracy:    0.97,
			BaseGain:          0.040,
			OptimalB:          8,
			BTolerance:        1.6,
			OptimalE:          10,
			EOverfit:          0.35,
			OptimalK:          20,
			NonIIDSensitivity: 0.55,
			NoiseStd:          0.0008,
		},
	}
}

// LSTMShakespeare returns the LSTM-Shakespeare workload: a recurrent
// next-character model (80-way classification over the Shakespeare
// corpus alphabet). Recurrent layers make it memory-bound, which is why
// its energy-efficiency optimum sits at smaller batches and more local
// iterations (paper Fig. 2: best at (4, 20, 20)).
func LSTMShakespeare() Workload {
	return Workload{
		Name:             "LSTM-Shakespeare",
		ConvLayers:       0,
		FCLayers:         1,
		RCLayers:         2,
		NumClasses:       80,
		SamplesPerDevice: 400,
		Shape: device.WorkloadShape{
			FLOPsPerSample:  24e6,
			BytesPerSample:  30e6, // long unrolled activations
			ModelBytes:      13e6,
			MemoryIntensity: 0.75,
		},
		Learn: Learning{
			InitialAccuracy:   0.0125, // 1/80
			MaxAccuracy:       0.60,
			TargetAccuracy:    0.55,
			BaseGain:          0.032,
			OptimalB:          4,
			BTolerance:        1.8,
			OptimalE:          20,
			EOverfit:          0.30,
			OptimalK:          20,
			NonIIDSensitivity: 0.50,
			NoiseStd:          0.0006,
		},
	}
}

// MobileNetImageNet returns the MobileNet-ImageNet workload: a
// depthwise-separable CNN (27 convolutional layers + classifier) on a
// 1000-class image task. It is by far the heaviest per-sample compute
// and the largest model transfer of the three.
func MobileNetImageNet() Workload {
	return Workload{
		Name:             "MobileNet-ImageNet",
		ConvLayers:       27,
		FCLayers:         1,
		RCLayers:         0,
		NumClasses:       1000,
		SamplesPerDevice: 250,
		Shape: device.WorkloadShape{
			FLOPsPerSample:  1.7e9, // ~569 MFLOPs fwd x3 for training
			BytesPerSample:  22e6,
			ModelBytes:      17e6, // 4.2M params + buffers
			MemoryIntensity: 0.35,
		},
		Learn: Learning{
			InitialAccuracy:   0.001,
			MaxAccuracy:       0.70,
			TargetAccuracy:    0.62,
			BaseGain:          0.028,
			OptimalB:          8,
			BTolerance:        2.0,
			OptimalE:          10,
			EOverfit:          0.40,
			OptimalK:          20,
			NonIIDSensitivity: 0.60,
			NoiseStd:          0.0006,
		},
	}
}

// All returns the paper's three workloads in evaluation order.
func All() []Workload {
	return []Workload{CNNMNIST(), LSTMShakespeare(), MobileNetImageNet()}
}

// ByName returns a workload by its display name (case-sensitive) or an
// error listing the valid names.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown %q (valid: CNN-MNIST, LSTM-Shakespeare, MobileNet-ImageNet)", name)
}
