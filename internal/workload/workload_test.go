package workload

import "testing"

func TestAllWorkloadsValidate(t *testing.T) {
	ws := All()
	if len(ws) != 3 {
		t.Fatalf("want the paper's 3 workloads, got %d", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestLayerCountsMatchArchitectures(t *testing.T) {
	cnn := CNNMNIST()
	if cnn.RCLayers != 0 || cnn.ConvLayers == 0 || cnn.FCLayers == 0 {
		t.Errorf("CNN layer mix wrong: %+v", cnn)
	}
	lstm := LSTMShakespeare()
	if lstm.RCLayers == 0 || lstm.ConvLayers != 0 {
		t.Errorf("LSTM layer mix wrong: %+v", lstm)
	}
	mob := MobileNetImageNet()
	if mob.ConvLayers < 20 {
		t.Errorf("MobileNet should have ~27 conv layers, got %d", mob.ConvLayers)
	}
}

func TestWorkloadCharacterDifferences(t *testing.T) {
	cnn, lstm, mob := CNNMNIST(), LSTMShakespeare(), MobileNetImageNet()
	// Paper §2.1: LSTM-Shakespeare is memory-intensive vs CNN-MNIST.
	if lstm.Shape.MemoryIntensity <= cnn.Shape.MemoryIntensity {
		t.Error("LSTM should be more memory-intensive than CNN")
	}
	// LSTM prefers smaller batches, more iterations (Fig. 2).
	if lstm.Learn.OptimalB >= cnn.Learn.OptimalB {
		t.Error("LSTM optimal B should be below CNN's")
	}
	if lstm.Learn.OptimalE <= cnn.Learn.OptimalE {
		t.Error("LSTM optimal E should exceed CNN's")
	}
	// MobileNet-ImageNet is the heaviest compute per sample.
	if mob.Shape.FLOPsPerSample <= cnn.Shape.FLOPsPerSample ||
		mob.Shape.FLOPsPerSample <= lstm.Shape.FLOPsPerSample {
		t.Error("MobileNet should have the largest per-sample FLOPs")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CNN-MNIST", "LSTM-Shakespeare", "MobileNet-ImageNet"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if w.Name != name {
			t.Errorf("got %q", w.Name)
		}
	}
	if _, err := ByName("ResNet"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestValidateCatchesBadWorkloads(t *testing.T) {
	base := CNNMNIST()
	mutations := []func(*Workload){
		func(w *Workload) { w.Name = "" },
		func(w *Workload) { w.NumClasses = 1 },
		func(w *Workload) { w.SamplesPerDevice = 0 },
		func(w *Workload) { w.Shape.FLOPsPerSample = 0 },
		func(w *Workload) { w.Learn.MaxAccuracy = w.Learn.InitialAccuracy },
		func(w *Workload) { w.Learn.TargetAccuracy = 2 },
		func(w *Workload) { w.Learn.BaseGain = 0 },
		func(w *Workload) { w.Learn.OptimalB = 0 },
	}
	for i, mut := range mutations {
		w := base
		mut(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestStringIsName(t *testing.T) {
	if CNNMNIST().String() != "CNN-MNIST" {
		t.Error("String() should return the display name")
	}
}
