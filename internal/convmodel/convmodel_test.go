package convmodel

import (
	"math"
	"testing"
	"testing/quick"

	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

func idealInputs(w workload.Workload) RoundInputs {
	return RoundInputs{
		MeanB:        w.Learn.OptimalB,
		MeanE:        w.Learn.OptimalE,
		K:            int(w.Learn.OptimalK),
		Skew:         0,
		Coverage:     1,
		DataFraction: 1,
	}
}

func runToConvergence(w workload.Workload, in RoundInputs, maxRounds int, seed int64) (int, float64) {
	m := New(w, stats.NewRNG(seed))
	tr := NewTracker(w)
	for r := 1; r <= maxRounds; r++ {
		acc := m.Step(in)
		if tr.Observe(acc) {
			return tr.ConvergenceRound(), acc
		}
	}
	return -1, m.Accuracy()
}

func TestIdealSettingsConverge(t *testing.T) {
	for _, w := range workload.All() {
		round, acc := runToConvergence(w, idealInputs(w), 400, 1)
		if round < 0 {
			t.Errorf("%s: did not converge in 400 rounds (acc=%v)", w.Name, acc)
			continue
		}
		if round < 5 {
			t.Errorf("%s: converged suspiciously fast (round %d)", w.Name, round)
		}
	}
}

func TestBatchEffectivenessShape(t *testing.T) {
	// Peak at the optimum, symmetric fall-off in log space.
	peak := BatchEffectiveness(8, 8, 1.3)
	if math.Abs(peak-1) > 1e-12 {
		t.Errorf("peak = %v, want 1", peak)
	}
	lo := BatchEffectiveness(2, 8, 1.3)
	hi := BatchEffectiveness(32, 8, 1.3)
	if math.Abs(lo-hi) > 1e-12 {
		t.Errorf("log-symmetric points differ: %v vs %v", lo, hi)
	}
	if BatchEffectiveness(1, 8, 1.3) >= BatchEffectiveness(4, 8, 1.3) {
		t.Error("effectiveness should fall with distance from the optimum")
	}
	// Sub-1 batch clamps.
	if BatchEffectiveness(0, 8, 1.3) != BatchEffectiveness(1, 8, 1.3) {
		t.Error("B < 1 should clamp to 1")
	}
}

func TestEpochEffectivenessShape(t *testing.T) {
	// Rising (diminishing) before the optimum.
	if !(EpochEffectiveness(1, 10, 0.35) < EpochEffectiveness(5, 10, 0.35) &&
		EpochEffectiveness(5, 10, 0.35) < EpochEffectiveness(10, 10, 0.35)) {
		t.Error("epoch effectiveness should rise toward the optimum")
	}
	if got := EpochEffectiveness(10, 10, 0.35); got != 1 {
		t.Errorf("optimum effectiveness = %v, want 1", got)
	}
	// Over-fitting decay past the optimum.
	if EpochEffectiveness(20, 10, 0.35) >= 1 {
		t.Error("past-optimum effectiveness should decay")
	}
	// Floor.
	if got := EpochEffectiveness(1000, 10, 0.35); got != 0.15 {
		t.Errorf("floor = %v, want 0.15", got)
	}
}

func TestParticipantEffectiveness(t *testing.T) {
	if ParticipantEffectiveness(0, 20, 1) != 0 {
		t.Error("zero participants should contribute nothing")
	}
	if !(ParticipantEffectiveness(5, 20, 1) < ParticipantEffectiveness(20, 20, 1)) {
		t.Error("more participants should help up to the optimum")
	}
	// Saturation past the optimum.
	if ParticipantEffectiveness(40, 20, 1) != ParticipantEffectiveness(20, 20, 1) {
		t.Error("K past the optimum should saturate")
	}
	// Coverage matters.
	if !(ParticipantEffectiveness(20, 20, 0.2) < ParticipantEffectiveness(20, 20, 1)) {
		t.Error("low class coverage should hurt")
	}
}

func TestSkewPenaltyAmplifiedByK(t *testing.T) {
	// Fig. 7's K mechanism: larger K admits more non-IID participants.
	base := SkewPenalty(0.6, 0.55, 10, 20)
	moreK := SkewPenalty(0.6, 0.55, 20, 20)
	if !(moreK < base) {
		t.Errorf("larger K should deepen the skew penalty: %v vs %v", moreK, base)
	}
	if SkewPenalty(0, 0.55, 20, 20) != 1 {
		t.Error("no skew, no penalty")
	}
	if p := SkewPenalty(1, 10, 30, 20); p != 0.03 {
		t.Errorf("penalty floor = %v, want 0.03", p)
	}
}

func TestDriftShiftsEpochOptimum(t *testing.T) {
	// Fig. 7's E mechanism: under skew the epoch sweet spot slides
	// down and over-fitting steepens.
	if got := DriftedOptimalE(10, 0); got != 10 {
		t.Errorf("no skew should keep the optimum: %v", got)
	}
	if got := DriftedOptimalE(10, 0.75); got >= 7 {
		t.Errorf("heavy skew should pull the optimum well below 10: %v", got)
	}
	if DriftedOptimalE(1, 1) < 1 {
		t.Error("drifted optimum must floor at 1")
	}
	if DriftedOverfit(0.35, 0.8) <= 0.35 {
		t.Error("skew should steepen over-fitting")
	}
	// The end-to-end effect: at heavy skew, E=5 must beat E=10.
	w := workload.CNNMNIST()
	in5 := idealInputs(w)
	in5.Skew = 0.75
	in5.MeanE = 5
	in10 := in5
	in10.MeanE = 10
	m := New(w, stats.NewRNG(1))
	if m.Gain(in5) <= m.Gain(in10) {
		t.Errorf("under heavy skew E=5 should out-gain E=10: %v vs %v",
			m.Gain(in5), m.Gain(in10))
	}
	// And under no skew, E=10 must beat E=5 (Fig. 1).
	iid5 := idealInputs(w)
	iid5.MeanE = 5
	if m.Gain(iid5) >= m.Gain(idealInputs(w)) {
		t.Error("under IID the full epoch optimum should win")
	}
}

func TestConvergenceUShapeInB(t *testing.T) {
	// Fig. 1: the convergence round is U-shaped in B with the minimum
	// at the workload optimum.
	w := workload.CNNMNIST()
	in := idealInputs(w)
	rounds := map[float64]int{}
	for _, b := range []float64{1, 8, 32} {
		in.MeanB = b
		r, _ := runToConvergence(w, in, 4000, 7)
		if r < 0 {
			t.Fatalf("B=%v did not converge", b)
		}
		rounds[b] = r
	}
	if !(rounds[8] < rounds[1] && rounds[8] < rounds[32]) {
		t.Errorf("convergence rounds not U-shaped: %v", rounds)
	}
}

func TestNonIIDSlowsConvergence(t *testing.T) {
	w := workload.CNNMNIST()
	iid := idealInputs(w)
	skewed := iid
	skewed.Skew = 0.6
	skewed.Coverage = 0.8
	rIID, _ := runToConvergence(w, iid, 2000, 3)
	rSkew, _ := runToConvergence(w, skewed, 2000, 3)
	if rIID < 0 || rSkew < 0 {
		t.Fatalf("runs did not converge: %d %d", rIID, rSkew)
	}
	if rSkew <= rIID {
		t.Errorf("non-IID should slow convergence: %d <= %d", rSkew, rIID)
	}
}

func TestStragglerDropsSlowConvergence(t *testing.T) {
	w := workload.CNNMNIST()
	full := idealInputs(w)
	dropped := full
	dropped.DataFraction = 0.5
	rFull, _ := runToConvergence(w, full, 2000, 5)
	rDrop, _ := runToConvergence(w, dropped, 2000, 5)
	if rFull < 0 || rDrop < 0 {
		t.Fatal("runs did not converge")
	}
	if rDrop <= rFull {
		t.Errorf("dropping half the data should slow convergence: %d <= %d", rDrop, rFull)
	}
}

func TestStepDeterministicPerSeed(t *testing.T) {
	w := workload.CNNMNIST()
	in := idealInputs(w)
	m1, m2 := New(w, stats.NewRNG(11)), New(w, stats.NewRNG(11))
	for i := 0; i < 50; i++ {
		if a, b := m1.Step(in), m2.Step(in); a != b {
			t.Fatalf("same-seed models diverged at round %d", i)
		}
	}
}

func TestAccuracyBounded(t *testing.T) {
	w := workload.CNNMNIST()
	f := func(seed int64, bRaw, eRaw, kRaw, skewRaw uint8) bool {
		in := RoundInputs{
			MeanB:        float64(bRaw%32) + 1,
			MeanE:        float64(eRaw%20) + 1,
			K:            int(kRaw%20) + 1,
			Skew:         float64(skewRaw%101) / 100,
			Coverage:     1 - float64(skewRaw%101)/200,
			DataFraction: 1,
		}
		m := New(w, stats.NewRNG(seed))
		for i := 0; i < 100; i++ {
			acc := m.Step(in)
			if acc < 0 || acc > w.Learn.MaxAccuracy+1e-12 || math.IsNaN(acc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTrackerWindowSemantics(t *testing.T) {
	tr := &Tracker{Target: 0.9, Band: 0.01, Window: 3, converged: -1}
	seq := []float64{0.5, 0.91, 0.92, 0.3, 0.90, 0.93, 0.95}
	var convergedAt int
	for i, acc := range seq {
		if tr.Observe(acc) && convergedAt == 0 {
			convergedAt = i + 1
		}
	}
	// The streak 0.90,0.93,0.95 starts at observation 5.
	if !tr.Converged() || tr.ConvergenceRound() != 5 {
		t.Errorf("convergence round = %d, want 5", tr.ConvergenceRound())
	}
	if convergedAt != 7 {
		t.Errorf("Observe returned true first at %d, want 7 (end of window)", convergedAt)
	}
}

func TestTrackerNeverConvergesBelowBand(t *testing.T) {
	tr := &Tracker{Target: 0.9, Band: 0.01, Window: 3, converged: -1}
	for i := 0; i < 100; i++ {
		if tr.Observe(0.85) {
			t.Fatal("should not converge below band")
		}
	}
	if tr.ConvergenceRound() != -1 {
		t.Error("unconverged round should be -1")
	}
}

func TestGainComposesMonotonically(t *testing.T) {
	// Any single degradation must not increase the gain.
	w := workload.CNNMNIST()
	m := New(w, stats.NewRNG(1))
	base := m.Gain(idealInputs(w))
	worse := []RoundInputs{}
	in := idealInputs(w)
	in.MeanB = 32
	worse = append(worse, in)
	in = idealInputs(w)
	in.MeanE = 1
	worse = append(worse, in)
	in = idealInputs(w)
	in.K = 1
	worse = append(worse, in)
	in = idealInputs(w)
	in.Skew = 0.8
	worse = append(worse, in)
	in = idealInputs(w)
	in.DataFraction = 0.3
	worse = append(worse, in)
	for i, wIn := range worse {
		if g := m.Gain(wIn); g >= base {
			t.Errorf("degradation %d did not reduce gain: %v >= %v", i, g, base)
		}
	}
}
