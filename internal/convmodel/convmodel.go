// Package convmodel is the statistical learning-dynamics model of the
// simulator: given the global parameters used in a round and the data
// heterogeneity of its participants, it advances the global model's
// test accuracy.
//
// This is the substitution for real DNN training at fleet scale (see
// DESIGN.md). The model encodes the qualitative response surface the
// paper characterizes in §2:
//
//   - B: a generalization sweet spot; effectiveness falls off
//     Gaussianly in log2(B) around the workload's optimum ("using
//     larger batch sizes usually yields poor generalizability").
//   - E: diminishing returns up to the optimum, over-fitting decay past
//     it; larger E also amplifies how much participant skew leaks into
//     the global model (client drift).
//   - K: diminishing-returns growth toward the optimum (global batch
//     size) plus a class-coverage effect; larger K under non-IID also
//     admits more skewed updates.
//   - Straggler drops: updates that miss the round deadline shrink the
//     aggregated data fraction, slowing and destabilizing progress.
//
// Each effect is an exported function so characterization tests can pin
// the shape directly.
package convmodel

import (
	"math"

	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// RoundInputs summarizes one aggregation round for the accuracy update.
type RoundInputs struct {
	// MeanB and MeanE are the sample-weighted means of the per-device
	// batch size and epoch count across participants (FedGPO assigns
	// per-device values; FedAvg baselines use one value fleet-wide).
	MeanB float64
	MeanE float64
	// K is the number of participants whose updates were aggregated.
	K int
	// Skew is the sample-weighted non-IID degree of the aggregated
	// participants in [0,1] (data.Partition.ParticipantSkew).
	Skew float64
	// Coverage is the fraction of classes represented in the
	// aggregated participants' data in [0,1].
	Coverage float64
	// DataFraction is the share of the selected participants' data
	// that actually arrived (1 - straggler drops) in [0,1].
	DataFraction float64
	// ChronicDropFraction is a long-run (EMA) measure of how much of
	// the federation's data keeps missing round deadlines. Straggler
	// drops are not random: the same slow/interfered devices miss
	// every deadline, so their data is systematically excluded from
	// the global model, which caps the reachable accuracy (the paper's
	// Fig. 10: baseline accuracy is "significantly degraded due to the
	// exacerbated straggler problems — previous works just drop the
	// gradient updates from the stragglers").
	ChronicDropFraction float64
}

// capDropCoef scales how strongly chronic straggler exclusion lowers
// the reachable accuracy asymptote.
const capDropCoef = 0.30

// Model advances a single training run's accuracy round by round.
// Create one per simulation run with New.
type Model struct {
	learn workload.Learning
	rng   *stats.RNG
	acc   float64
	round int
}

// New returns a model at the workload's initial accuracy. The RNG
// drives the per-round stochastic jitter; pass a Split() stream so runs
// are independent.
func New(w workload.Workload, rng *stats.RNG) *Model {
	return &Model{learn: w.Learn, rng: rng, acc: w.Learn.InitialAccuracy}
}

// Accuracy returns the current test accuracy in [0,1].
func (m *Model) Accuracy() float64 { return m.acc }

// Round returns the number of Step calls so far.
func (m *Model) Round() int { return m.round }

// BatchEffectiveness is the generalization factor of a batch size:
// a log2-Gaussian bump of width tol around the optimum, in (0,1].
func BatchEffectiveness(b, optB, tol float64) float64 {
	if b < 1 {
		b = 1
	}
	d := math.Log2(b) - math.Log2(optB)
	return math.Exp(-d * d / (2 * tol * tol))
}

// EpochEffectiveness models local-epoch returns: linear growth up to
// the optimum (each local epoch contributes its share of gradient
// progress — the under-fitting side), linear over-fitting decay past
// it, floored at 0.15 so progress never fully stalls.
func EpochEffectiveness(e, optE, overfit float64) float64 {
	if e < 1 {
		e = 1
	}
	if e <= optE {
		return e / optE
	}
	v := 1 - overfit*(e-optE)/optE
	if v < 0.15 {
		return 0.15
	}
	return v
}

// ParticipantEffectiveness models the global-batch effect of K with
// class coverage folded in: diminishing-returns growth toward the
// optimum (exponent 0.65, between gradient-noise sqrt scaling and
// linear data scaling), weighted by how much of the label space the
// participants actually cover.
func ParticipantEffectiveness(k int, optK, coverage float64) float64 {
	if k < 1 {
		return 0
	}
	kk := math.Min(float64(k), optK)
	base := math.Pow(kk/optK, 0.65)
	cov := 0.35 + 0.65*stats.Clamp(coverage, 0, 1)
	return base * cov
}

// SkewPenalty returns the multiplicative progress penalty of data
// heterogeneity for a round: sensitivity × skew, amplified by how many
// skewed participants K admits into the aggregate (paper §2.2: "K
// affects the number of non-IID devices participating for gradient
// updates"). The E side of the paper's mechanism — "E affects the
// number of iterations for parameter updates with the given data" —
// is modelled by DriftedOptimalE/DriftedOverfit shifting the epoch
// response curve. The result is a factor in (0, 1].
func SkewPenalty(skew, sens float64, k int, optK float64) float64 {
	if skew <= 0 || sens <= 0 {
		return 1
	}
	amp := 0.3 + 0.7*stats.Clamp(float64(k)/optK, 0, 1.5)
	p := 1 - sens*stats.Clamp(skew, 0, 1)*amp
	if p < 0.03 {
		return 0.03
	}
	return p
}

// DriftedOptimalE returns the epoch sweet spot under participant skew:
// client drift makes extra local iterations bake in non-IID bias, so
// the optimum slides toward fewer epochs (Fig. 7: the most
// energy-efficient setting shifts from (8,10,20) to (8,5,10) under
// non-IID data). Floored at 1.
func DriftedOptimalE(optE, skew float64) float64 {
	e := optE * (1 - 0.55*stats.Clamp(skew, 0, 1))
	if e < 1 {
		return 1
	}
	return e
}

// DriftedOverfit returns the over-fitting slope under participant skew:
// past the (already lowered) optimum, each extra epoch multiplies the
// drift damage.
func DriftedOverfit(overfit, skew float64) float64 {
	return overfit * (1 + stats.Clamp(skew, 0, 1))
}

// Gain returns the fraction of the remaining accuracy gap the round
// closes, before noise.
func (m *Model) Gain(in RoundInputs) float64 {
	l := m.learn
	g := l.BaseGain
	g *= BatchEffectiveness(in.MeanB, l.OptimalB, l.BTolerance)
	g *= EpochEffectiveness(in.MeanE,
		DriftedOptimalE(l.OptimalE, in.Skew),
		DriftedOverfit(l.EOverfit, in.Skew))
	g *= ParticipantEffectiveness(in.K, l.OptimalK, in.Coverage)
	g *= SkewPenalty(in.Skew, l.NonIIDSensitivity, in.K, l.OptimalK)
	g *= stats.Clamp(in.DataFraction, 0, 1)
	return g
}

// Step advances the accuracy by one aggregation round and returns the
// new accuracy. The update is a noisy geometric approach to the
// workload's asymptote:
//
//	acc' = acc + gain·(max − acc) + ε,  ε ~ N(0, σ·(1 − acc/max))
//
// so jitter anneals as training converges, the way real validation
// curves do.
func (m *Model) Step(in RoundInputs) float64 {
	m.round++
	effMax := EffectiveMax(m.learn.MaxAccuracy, in.ChronicDropFraction)
	gap := effMax - m.acc
	if gap < 0 {
		gap = 0
	}
	gain := m.Gain(in)
	noiseScale := m.learn.NoiseStd * (1 - m.acc/m.learn.MaxAccuracy)
	if noiseScale < 0 {
		noiseScale = 0
	}
	m.acc += gain*gap + m.rng.Gaussian(0, noiseScale)
	m.acc = stats.Clamp(m.acc, 0, effMax)
	return m.acc
}

// EffectiveMax returns the accuracy asymptote reachable when a chronic
// fraction of the federation's data keeps missing round deadlines.
func EffectiveMax(maxAcc, chronicDrop float64) float64 {
	return maxAcc * (1 - capDropCoef*stats.Clamp(chronicDrop, 0, 1))
}

// Tracker detects convergence the way the paper defines it (§5.1): the
// training accuracy settles into an error band around the target value.
type Tracker struct {
	// Target is the accuracy the run must reach.
	Target float64
	// Band is the tolerance below Target that still counts (the
	// "error range of the value achieved by the baseline").
	Band float64
	// Window is how many consecutive in-band rounds constitute
	// convergence.
	Window int

	streak    int
	converged int // round index, -1 until converged
	rounds    int
}

// NewTracker returns a tracker for a workload using its target accuracy,
// a 1-point band and a 3-round settle window.
func NewTracker(w workload.Workload) *Tracker {
	return &Tracker{Target: w.Learn.TargetAccuracy, Band: 0.01, Window: 3, converged: -1}
}

// Observe feeds one round's accuracy; it returns true once converged.
func (t *Tracker) Observe(acc float64) bool {
	t.rounds++
	if acc >= t.Target-t.Band {
		t.streak++
		if t.streak >= t.Window && t.converged < 0 {
			// Convergence is dated to the first round of the streak.
			t.converged = t.rounds - t.Window + 1
		}
	} else {
		t.streak = 0
	}
	return t.converged >= 0
}

// Converged reports whether the run has converged.
func (t *Tracker) Converged() bool { return t.converged >= 0 }

// ConvergenceRound returns the 1-based round at which convergence
// began, or -1 if not converged.
func (t *Tracker) ConvergenceRound() int { return t.converged }
