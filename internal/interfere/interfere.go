// Package interfere models on-device interference from co-running
// applications. The paper's methodology (§4.2) runs a synthetic
// co-runner "with the same CPU and memory usage as the real-world
// mobile application of web browsing" on a random subset of devices;
// this package reproduces that: a profile of CPU/memory footprints, a
// per-round activation probability, and sampled per-device loads that
// feed both the device compute model (slowdown) and FedGPO's
// S_Co_CPU / S_Co_MEM states.
package interfere

import (
	"fmt"

	"fedgpo/internal/device"
	"fedgpo/internal/stats"
)

// Profile describes a co-running application's resource footprint.
// Usage values are fractions of the device resource in [0, 1].
type Profile struct {
	Name string
	// MeanCPU/StdCPU parameterize the Gaussian CPU usage draw.
	MeanCPU, StdCPU float64
	// MeanMem/StdMem parameterize the Gaussian memory usage draw.
	MeanMem, StdMem float64
}

// WebBrowsing is the paper's synthetic co-runner: CPU/memory usage
// matching a web-browsing session (bursty, moderate CPU; sizeable
// resident memory), per the mobile characterization studies the paper
// cites (Pandiyan et al., Shingari et al.).
func WebBrowsing() Profile {
	return Profile{
		Name:    "web-browsing",
		MeanCPU: 0.45, StdCPU: 0.15,
		MeanMem: 0.30, StdMem: 0.10,
	}
}

// HeavyGame is an optional heavier co-runner used by stress experiments.
func HeavyGame() Profile {
	return Profile{
		Name:    "heavy-game",
		MeanCPU: 0.80, StdCPU: 0.10,
		MeanMem: 0.55, StdMem: 0.10,
	}
}

// ProfileByName returns the named co-runner profile ("web-browsing" or
// "heavy-game"); ok is false for unknown names.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case WebBrowsing().Name:
		return WebBrowsing(), true
	case HeavyGame().Name:
		return HeavyGame(), true
	default:
		return Profile{}, false
	}
}

// Key renders the model's outcome-relevant parameters canonically for
// cache keys: the profile's footprint distribution and the activation
// fraction.
func (m Model) Key() string {
	if !m.Active() {
		return "none"
	}
	return fmt.Sprintf("%s(cpu=%g±%g,mem=%g±%g)@%g", m.Profile.Name,
		m.Profile.MeanCPU, m.Profile.StdCPU, m.Profile.MeanMem, m.Profile.StdMem,
		m.ActiveFraction)
}

// Model generates per-device, per-round interference. A fraction
// ActiveFraction of devices has the co-runner active in any round
// (chosen independently each round, matching "a random subset of
// devices").
type Model struct {
	Profile        Profile
	ActiveFraction float64
}

// None returns a model that never generates interference (the paper's
// "absence of runtime variance" scenario).
func None() Model { return Model{ActiveFraction: 0} }

// Paper returns the paper's interference scenario: the web-browsing
// co-runner active on a random subset of devices. The paper does not
// publish the subset size; 50% exercises both the interfered and clean
// populations every round.
func Paper() Model {
	return Model{Profile: WebBrowsing(), ActiveFraction: 0.5}
}

// Sample draws this round's interference for one device.
func (m Model) Sample(rng *stats.RNG) device.Interference {
	if m.ActiveFraction <= 0 || !rng.Bernoulli(m.ActiveFraction) {
		return device.Interference{}
	}
	return device.Interference{
		CPUUsage: rng.TruncGaussian(m.Profile.MeanCPU, m.Profile.StdCPU, 0, 1),
		MemUsage: rng.TruncGaussian(m.Profile.MeanMem, m.Profile.StdMem, 0, 1),
	}
}

// SampleFleet draws one round of interference for every device ID in
// [0, n).
func (m Model) SampleFleet(n int, rng *stats.RNG) []device.Interference {
	out := make([]device.Interference, n)
	if m.ActiveFraction <= 0 {
		return out
	}
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// Active reports whether the model generates any interference at all.
func (m Model) Active() bool { return m.ActiveFraction > 0 }
