package interfere

import (
	"testing"

	"fedgpo/internal/stats"
)

func TestNoneNeverInterferes(t *testing.T) {
	m := None()
	rng := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if got := m.Sample(rng); got.CPUUsage != 0 || got.MemUsage != 0 {
			t.Fatalf("None produced interference %+v", got)
		}
	}
	if m.Active() {
		t.Error("None should not be active")
	}
}

func TestPaperModelActivatesRoughlyHalf(t *testing.T) {
	m := Paper()
	if !m.Active() {
		t.Fatal("paper model should be active")
	}
	rng := stats.NewRNG(2)
	active := 0
	n := 10000
	for i := 0; i < n; i++ {
		if s := m.Sample(rng); s.CPUUsage > 0 || s.MemUsage > 0 {
			active++
		}
	}
	frac := float64(active) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("active fraction = %v, want ~0.5", frac)
	}
}

func TestSampleBoundsUsage(t *testing.T) {
	m := Model{Profile: HeavyGame(), ActiveFraction: 1}
	rng := stats.NewRNG(3)
	for i := 0; i < 5000; i++ {
		s := m.Sample(rng)
		if s.CPUUsage < 0 || s.CPUUsage > 1 || s.MemUsage < 0 || s.MemUsage > 1 {
			t.Fatalf("usage out of [0,1]: %+v", s)
		}
	}
}

func TestWebBrowsingLighterThanHeavyGame(t *testing.T) {
	wb, hg := WebBrowsing(), HeavyGame()
	if wb.MeanCPU >= hg.MeanCPU || wb.MeanMem >= hg.MeanMem {
		t.Error("web browsing should be a lighter co-runner than a heavy game")
	}
}

func TestSampleFleetSizeAndDeterminism(t *testing.T) {
	m := Paper()
	a := m.SampleFleet(50, stats.NewRNG(7))
	b := m.SampleFleet(50, stats.NewRNG(7))
	if len(a) != 50 {
		t.Fatalf("fleet sample size = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed fleets diverged at device %d", i)
		}
	}
}

func TestSampleFleetNoneIsAllZeros(t *testing.T) {
	for _, s := range None().SampleFleet(20, stats.NewRNG(1)) {
		if s.CPUUsage != 0 || s.MemUsage != 0 {
			t.Fatal("None fleet should be all zeros")
		}
	}
}
