package data

import "fedgpo/internal/stats"

// Labeled is one training example for the real-training path
// (internal/nn): a flat feature vector and an integer class label.
type Labeled struct {
	X []float64
	Y int
}

// GaussianBlobs generates a linearly-separable synthetic classification
// dataset: perClass samples for each of `classes` classes, where class c
// is an isotropic Gaussian blob around a deterministic center in
// `dim`-dimensional space. spread controls the class overlap (larger =
// harder). This stands in for MNIST-like data in the examples and nn
// tests: it exercises the identical training code path with a
// controllable difficulty.
func GaussianBlobs(classes, dim, perClass int, spread float64, rng *stats.RNG) []Labeled {
	if classes <= 0 || dim <= 0 || perClass <= 0 {
		panic("data: GaussianBlobs arguments must be positive")
	}
	out := make([]Labeled, 0, classes*perClass)
	for c := 0; c < classes; c++ {
		center := blobCenter(c, classes, dim)
		for i := 0; i < perClass; i++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = rng.Gaussian(center[j], spread)
			}
			out = append(out, Labeled{X: x, Y: c})
		}
	}
	// Shuffle so minibatches mix classes.
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(idx)
	shuffled := make([]Labeled, len(out))
	for i, j := range idx {
		shuffled[i] = out[j]
	}
	return shuffled
}

// blobCenter places class centers on the corners of a scaled hypercube
// pattern so any two classes are well separated.
func blobCenter(class, classes, dim int) []float64 {
	center := make([]float64, dim)
	for j := 0; j < dim; j++ {
		// Deterministic ±2 pattern derived from the class index bits.
		if (class>>(uint(j)%31))&1 == 1 {
			center[j] = 2
		} else {
			center[j] = -2
		}
		// Break symmetry between classes that share low bits.
		center[j] += float64((class*(j+3))%5) * 0.7
	}
	return center
}

// SplitByPartition materializes per-device datasets from a Partition:
// device d receives Counts[d][c] samples of class c, drawn from
// per-class pools generated with GaussianBlobs-style sampling. dim and
// spread control the synthetic feature space.
func SplitByPartition(p Partition, dim int, spread float64, rng *stats.RNG) [][]Labeled {
	out := make([][]Labeled, p.NumDevices())
	for d := range out {
		shard := make([]Labeled, 0, p.DeviceSamples(d))
		for c, n := range p.Counts[d] {
			center := blobCenter(c, p.NumClasses, dim)
			for i := 0; i < n; i++ {
				x := make([]float64, dim)
				for j := range x {
					x[j] = rng.Gaussian(center[j], spread)
				}
				shard = append(shard, Labeled{X: x, Y: c})
			}
		}
		out[d] = shard
	}
	return out
}

// TrainTestSplit splits a dataset into a training and test portion with
// the given test fraction (clamped to [0,1]); the split is
// deterministic given the RNG.
func TrainTestSplit(ds []Labeled, testFrac float64, rng *stats.RNG) (train, test []Labeled) {
	if testFrac < 0 {
		testFrac = 0
	}
	if testFrac > 1 {
		testFrac = 1
	}
	idx := make([]int, len(ds))
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(idx)
	nTest := int(float64(len(ds)) * testFrac)
	test = make([]Labeled, 0, nTest)
	train = make([]Labeled, 0, len(ds)-nTest)
	for i, j := range idx {
		if i < nTest {
			test = append(test, ds[j])
		} else {
			train = append(train, ds[j])
		}
	}
	return train, test
}
