package data

// Memo caches a Partition's pure per-device signals (sample counts,
// non-IID degrees, class counts) and owns the scratch buffer behind
// coverage queries, so the simulation round loop stops re-deriving
// identical entropy sums for every participant of every round. All
// queries return bit-identical values to the Partition methods they
// shadow — enforced by TestMemoMatchesPartition.
//
// Reset is not safe for concurrent use; the query methods that take no
// scratch (DeviceSamples, NonIIDDegree, DeviceClassCount,
// DeviceClassFraction) are read-only after Reset and may be called from
// many goroutines. ParticipantSkew and ParticipantCoverage reuse
// internal scratch and must stay on one goroutine.
type Memo struct {
	p         Partition
	samples   []int
	degrees   []float64
	classCnt  []int
	classFrac []float64
	covered   []bool
}

// Reset points the memo at p and precomputes every per-device signal.
// It reuses the memo's backing arrays when they are large enough.
func (m *Memo) Reset(p Partition) {
	m.p = p
	n := p.NumDevices()
	if cap(m.samples) < n {
		m.samples = make([]int, n)
		m.degrees = make([]float64, n)
		m.classCnt = make([]int, n)
		m.classFrac = make([]float64, n)
	}
	m.samples = m.samples[:n]
	m.degrees = m.degrees[:n]
	m.classCnt = m.classCnt[:n]
	m.classFrac = m.classFrac[:n]
	for d := 0; d < n; d++ {
		m.samples[d] = p.DeviceSamples(d)
		m.degrees[d] = p.NonIIDDegree(d)
		m.classCnt[d] = p.DeviceClassCount(d)
		m.classFrac[d] = p.DeviceClassFraction(d)
	}
	if cap(m.covered) < p.NumClasses {
		m.covered = make([]bool, p.NumClasses)
	}
	m.covered = m.covered[:p.NumClasses]
}

// DeviceSamples is Partition.DeviceSamples, memoized.
func (m *Memo) DeviceSamples(d int) int { return m.samples[d] }

// NonIIDDegree is Partition.NonIIDDegree, memoized.
func (m *Memo) NonIIDDegree(d int) float64 { return m.degrees[d] }

// DeviceClassCount is Partition.DeviceClassCount, memoized.
func (m *Memo) DeviceClassCount(d int) int { return m.classCnt[d] }

// DeviceClassFraction is Partition.DeviceClassFraction, memoized.
func (m *Memo) DeviceClassFraction(d int) float64 { return m.classFrac[d] }

// ParticipantSkew is Partition.ParticipantSkew over the memoized
// per-device signals: the accumulation order matches the original, so
// the result is bit-identical.
func (m *Memo) ParticipantSkew(devices []int) float64 {
	totalSamples := 0
	weighted := 0.0
	for _, d := range devices {
		n := m.samples[d]
		totalSamples += n
		weighted += float64(n) * m.degrees[d]
	}
	if totalSamples == 0 {
		return 0
	}
	return weighted / float64(totalSamples)
}

// ParticipantCoverage is Partition.ParticipantCoverage with the
// coverage bitmap drawn from the memo's scratch instead of a per-call
// allocation.
func (m *Memo) ParticipantCoverage(devices []int) float64 {
	if m.p.NumClasses == 0 {
		return 0
	}
	covered := m.covered
	clear(covered)
	for _, d := range devices {
		for c, n := range m.p.Counts[d] {
			if n > 0 {
				covered[c] = true
			}
		}
	}
	n := 0
	for _, v := range covered {
		if v {
			n++
		}
	}
	return float64(n) / float64(m.p.NumClasses)
}
