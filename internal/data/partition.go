// Package data models the training-data distribution across the
// federation. The paper evaluates two distributions (§4.2): Ideal IID,
// where every class is evenly represented on every device, and Non-IID,
// where each class is spread over devices following a Dirichlet
// distribution with concentration 0.1.
//
// The partition exposes exactly the signals the rest of the system
// needs: per-device sample counts (drives compute time), per-device
// class counts (FedGPO's S_Data state, paper Table 1), and
// statistical-heterogeneity measures consumed by the convergence model.
package data

import (
	"math"

	"fedgpo/internal/stats"
)

// Partition is the assignment of class-labelled samples to devices.
// Counts[d][c] is the number of class-c samples held by device d.
type Partition struct {
	NumClasses int
	Counts     [][]int
}

// NumDevices returns the number of devices in the partition.
func (p Partition) NumDevices() int { return len(p.Counts) }

// IID builds the paper's Ideal-IID distribution: every device holds
// samplesPerDevice samples spread evenly over all classes (remainders
// assigned round-robin so totals are exact).
func IID(devices, classes, samplesPerDevice int) Partition {
	validate(devices, classes, samplesPerDevice)
	counts := make([][]int, devices)
	base := samplesPerDevice / classes
	rem := samplesPerDevice % classes
	for d := range counts {
		counts[d] = make([]int, classes)
		for c := 0; c < classes; c++ {
			counts[d][c] = base
		}
		// Stagger the remainder by device so the global totals stay
		// balanced across classes.
		for r := 0; r < rem; r++ {
			counts[d][(r+d)%classes]++
		}
	}
	return Partition{NumClasses: classes, Counts: counts}
}

// Dirichlet builds the paper's Non-IID distribution: for each device,
// class proportions are drawn from a symmetric Dirichlet with the given
// concentration (the paper uses 0.1), and samplesPerDevice samples are
// allocated to classes by largest-remainder rounding of the drawn
// proportions.
func Dirichlet(devices, classes, samplesPerDevice int, alpha float64, rng *stats.RNG) Partition {
	validate(devices, classes, samplesPerDevice)
	if alpha <= 0 {
		panic("data: Dirichlet concentration must be positive")
	}
	counts := make([][]int, devices)
	for d := range counts {
		props := rng.SymmetricDirichlet(classes, alpha)
		counts[d] = allocate(props, samplesPerDevice)
	}
	return Partition{NumClasses: classes, Counts: counts}
}

// PaperAlpha is the Dirichlet concentration the paper's non-IID
// experiments use.
const PaperAlpha = 0.1

func validate(devices, classes, samplesPerDevice int) {
	if devices <= 0 || classes <= 0 || samplesPerDevice < 0 {
		panic("data: devices and classes must be positive, samples non-negative")
	}
}

// allocate converts proportions into integer counts summing exactly to
// total, using largest-remainder apportionment.
func allocate(props []float64, total int) []int {
	counts := make([]int, len(props))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(props))
	assigned := 0
	for i, p := range props {
		exact := p * float64(total)
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: exact - math.Floor(exact)}
	}
	// Hand the leftover samples to the largest fractional remainders.
	for assigned < total {
		best := -1
		for i := range rems {
			if rems[i].frac >= 0 && (best == -1 || rems[i].frac > rems[best].frac) {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return counts
}

// DeviceSamples returns the number of samples device d holds.
func (p Partition) DeviceSamples(d int) int {
	s := 0
	for _, c := range p.Counts[d] {
		s += c
	}
	return s
}

// TotalSamples returns the federation-wide sample count.
func (p Partition) TotalSamples() int {
	s := 0
	for d := range p.Counts {
		s += p.DeviceSamples(d)
	}
	return s
}

// DeviceClassCount returns the number of distinct classes device d
// holds at least one sample of — the raw value behind FedGPO's S_Data
// state.
func (p Partition) DeviceClassCount(d int) int {
	n := 0
	for _, c := range p.Counts[d] {
		if c > 0 {
			n++
		}
	}
	return n
}

// DeviceClassFraction returns the percentage (0..100) of classes the
// device covers, matching Table 1's S_Data bands: small (<25%), medium
// (<100%), large (=100%).
func (p Partition) DeviceClassFraction(d int) float64 {
	return 100 * float64(p.DeviceClassCount(d)) / float64(p.NumClasses)
}

// NonIIDDegree returns 1 - H(classes_d)/log(C): 0 for a perfectly
// uniform device, approaching 1 for a single-class device. It is the
// statistical-heterogeneity signal the convergence model consumes.
func (p Partition) NonIIDDegree(d int) float64 {
	total := p.DeviceSamples(d)
	if total == 0 || p.NumClasses <= 1 {
		return 0
	}
	h := 0.0
	for _, c := range p.Counts[d] {
		if c == 0 {
			continue
		}
		q := float64(c) / float64(total)
		h -= q * math.Log(q)
	}
	return 1 - h/math.Log(float64(p.NumClasses))
}

// ParticipantSkew returns the sample-weighted mean non-IID degree of a
// participant set — how skewed the data reflected in this round's
// gradient is. An empty set or zero samples yields 0.
func (p Partition) ParticipantSkew(devices []int) float64 {
	totalSamples := 0
	weighted := 0.0
	for _, d := range devices {
		n := p.DeviceSamples(d)
		totalSamples += n
		weighted += float64(n) * p.NonIIDDegree(d)
	}
	if totalSamples == 0 {
		return 0
	}
	return weighted / float64(totalSamples)
}

// ParticipantCoverage returns the fraction (0..1) of classes covered by
// the union of the participants' data. Low coverage is what makes small
// K dangerous under non-IID data.
func (p Partition) ParticipantCoverage(devices []int) float64 {
	if p.NumClasses == 0 {
		return 0
	}
	covered := make([]bool, p.NumClasses)
	for _, d := range devices {
		for c, n := range p.Counts[d] {
			if n > 0 {
				covered[c] = true
			}
		}
	}
	n := 0
	for _, v := range covered {
		if v {
			n++
		}
	}
	return float64(n) / float64(p.NumClasses)
}

// GlobalSkew returns the mean non-IID degree over all devices — a
// scenario-level heterogeneity summary used in experiment reports.
func (p Partition) GlobalSkew() float64 {
	if len(p.Counts) == 0 {
		return 0
	}
	s := 0.0
	for d := range p.Counts {
		s += p.NonIIDDegree(d)
	}
	return s / float64(len(p.Counts))
}
