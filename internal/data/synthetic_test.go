package data

import (
	"testing"

	"fedgpo/internal/stats"
)

func TestGaussianBlobsShapeAndLabels(t *testing.T) {
	ds := GaussianBlobs(4, 8, 25, 0.5, stats.NewRNG(1))
	if len(ds) != 100 {
		t.Fatalf("dataset size = %d, want 100", len(ds))
	}
	counts := map[int]int{}
	for _, s := range ds {
		if len(s.X) != 8 {
			t.Fatalf("feature dim = %d, want 8", len(s.X))
		}
		if s.Y < 0 || s.Y >= 4 {
			t.Fatalf("label %d out of range", s.Y)
		}
		counts[s.Y]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 25 {
			t.Errorf("class %d count = %d, want 25", c, counts[c])
		}
	}
}

func TestGaussianBlobsSeparable(t *testing.T) {
	// A nearest-centroid classifier should get near-perfect accuracy at
	// low spread — this guarantees the nn examples have signal to learn.
	ds := GaussianBlobs(3, 6, 50, 0.3, stats.NewRNG(2))
	centroids := make([][]float64, 3)
	n := make([]int, 3)
	for i := range centroids {
		centroids[i] = make([]float64, 6)
	}
	for _, s := range ds {
		for j, v := range s.X {
			centroids[s.Y][j] += v
		}
		n[s.Y]++
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(n[c])
		}
	}
	correct := 0
	for _, s := range ds {
		best, bestD := -1, 0.0
		for c := range centroids {
			d := 0.0
			for j := range s.X {
				diff := s.X[j] - centroids[c][j]
				d += diff * diff
			}
			if best == -1 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(ds)); acc < 0.95 {
		t.Errorf("nearest-centroid accuracy = %v, want >= 0.95 (blobs should be separable)", acc)
	}
}

func TestGaussianBlobsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GaussianBlobs(0, 4, 10, 1, stats.NewRNG(1))
}

func TestSplitByPartitionMatchesCounts(t *testing.T) {
	p := Dirichlet(6, 5, 40, 0.1, stats.NewRNG(3))
	shards := SplitByPartition(p, 4, 0.5, stats.NewRNG(4))
	if len(shards) != 6 {
		t.Fatalf("shard count = %d", len(shards))
	}
	for d, shard := range shards {
		if len(shard) != p.DeviceSamples(d) {
			t.Errorf("device %d shard size = %d, want %d", d, len(shard), p.DeviceSamples(d))
		}
		classCounts := make([]int, 5)
		for _, s := range shard {
			classCounts[s.Y]++
		}
		for c := range classCounts {
			if classCounts[c] != p.Counts[d][c] {
				t.Errorf("device %d class %d = %d, want %d", d, c, classCounts[c], p.Counts[d][c])
			}
		}
	}
}

func TestTrainTestSplit(t *testing.T) {
	ds := GaussianBlobs(2, 4, 50, 0.5, stats.NewRNG(5))
	train, test := TrainTestSplit(ds, 0.2, stats.NewRNG(6))
	if len(test) != 20 || len(train) != 80 {
		t.Fatalf("split = %d/%d, want 80/20", len(train), len(test))
	}
	// Clamping.
	tr, te := TrainTestSplit(ds, -1, stats.NewRNG(7))
	if len(te) != 0 || len(tr) != 100 {
		t.Error("negative fraction should clamp to 0")
	}
	tr, te = TrainTestSplit(ds, 2, stats.NewRNG(8))
	if len(tr) != 0 || len(te) != 100 {
		t.Error("fraction > 1 should clamp to 1")
	}
}
