package data

import (
	"math"
	"testing"

	"fedgpo/internal/stats"
)

// TestMemoMatchesPartition is the memo's contract: every query must be
// bit-identical to the Partition method it shadows, for IID and
// Dirichlet partitions and across Reset reuse.
func TestMemoMatchesPartition(t *testing.T) {
	rng := stats.NewRNG(11)
	parts := map[string]Partition{
		"iid":       IID(40, 10, 300),
		"dirichlet": Dirichlet(40, 10, 300, PaperAlpha, rng),
		"smaller":   Dirichlet(15, 4, 60, 0.5, rng),
	}
	var m Memo
	// Reset the same memo across partitions of different sizes: reuse
	// must not leak one partition's signals into the next.
	for _, name := range []string{"iid", "dirichlet", "smaller", "iid"} {
		p := parts[name]
		m.Reset(p)
		n := p.NumDevices()
		for d := 0; d < n; d++ {
			if got, want := m.DeviceSamples(d), p.DeviceSamples(d); got != want {
				t.Fatalf("%s: DeviceSamples(%d) = %d, want %d", name, d, got, want)
			}
			if got, want := m.NonIIDDegree(d), p.NonIIDDegree(d); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: NonIIDDegree(%d) = %v, want %v", name, d, got, want)
			}
			if got, want := m.DeviceClassCount(d), p.DeviceClassCount(d); got != want {
				t.Fatalf("%s: DeviceClassCount(%d) = %d, want %d", name, d, got, want)
			}
			if got, want := m.DeviceClassFraction(d), p.DeviceClassFraction(d); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: DeviceClassFraction(%d) = %v, want %v", name, d, got, want)
			}
		}
		sets := [][]int{
			nil,
			{0},
			{0, 1, 2},
			{n - 1, n - 2, 0},
		}
		for _, devs := range sets {
			if got, want := m.ParticipantSkew(devs), p.ParticipantSkew(devs); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: ParticipantSkew(%v) = %v, want %v", name, devs, got, want)
			}
			if got, want := m.ParticipantCoverage(devs), p.ParticipantCoverage(devs); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: ParticipantCoverage(%v) = %v, want %v", name, devs, got, want)
			}
		}
	}
}
