package data

import (
	"math"
	"testing"
	"testing/quick"

	"fedgpo/internal/stats"
)

func TestIIDEvenAndExact(t *testing.T) {
	p := IID(20, 10, 600)
	if p.NumDevices() != 20 {
		t.Fatalf("devices = %d", p.NumDevices())
	}
	for d := 0; d < 20; d++ {
		if got := p.DeviceSamples(d); got != 600 {
			t.Errorf("device %d samples = %d, want 600", d, got)
		}
		if got := p.DeviceClassCount(d); got != 10 {
			t.Errorf("device %d classes = %d, want all 10", d, got)
		}
		if skew := p.NonIIDDegree(d); skew > 1e-9 {
			t.Errorf("IID device %d non-IID degree = %v, want 0", d, skew)
		}
	}
}

func TestIIDWithRemainderExact(t *testing.T) {
	p := IID(7, 10, 603) // 603 = 60*10 + 3
	for d := 0; d < 7; d++ {
		if got := p.DeviceSamples(d); got != 603 {
			t.Errorf("device %d samples = %d, want 603", d, got)
		}
	}
}

func TestDirichletExactTotalsAndSkew(t *testing.T) {
	rng := stats.NewRNG(1)
	p := Dirichlet(50, 10, 600, PaperAlpha, rng)
	skews := make([]float64, 0, 50)
	for d := 0; d < 50; d++ {
		if got := p.DeviceSamples(d); got != 600 {
			t.Errorf("device %d samples = %d, want 600", d, got)
		}
		skews = append(skews, p.NonIIDDegree(d))
	}
	if mean := stats.Mean(skews); mean < 0.4 {
		t.Errorf("Dirichlet(0.1) mean non-IID degree = %v, want strongly skewed (>0.4)", mean)
	}
	// Devices should typically hold only a few classes at alpha=0.1.
	fewClass := 0
	for d := 0; d < 50; d++ {
		if p.DeviceClassCount(d) <= 5 {
			fewClass++
		}
	}
	if fewClass < 25 {
		t.Errorf("only %d/50 devices hold <=5 classes; Dirichlet(0.1) should be skewed", fewClass)
	}
}

func TestDirichletHighAlphaNearIID(t *testing.T) {
	rng := stats.NewRNG(2)
	p := Dirichlet(30, 10, 1000, 100, rng)
	if skew := p.GlobalSkew(); skew > 0.05 {
		t.Errorf("Dirichlet(100) global skew = %v, want near 0", skew)
	}
}

func TestDirichletDeterministicPerSeed(t *testing.T) {
	a := Dirichlet(10, 10, 100, 0.1, stats.NewRNG(5))
	b := Dirichlet(10, 10, 100, 0.1, stats.NewRNG(5))
	for d := range a.Counts {
		for c := range a.Counts[d] {
			if a.Counts[d][c] != b.Counts[d][c] {
				t.Fatalf("same-seed partitions diverged at [%d][%d]", d, c)
			}
		}
	}
}

func TestValidatePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { IID(0, 10, 100) },
		func() { IID(10, 0, 100) },
		func() { IID(10, 10, -1) },
		func() { Dirichlet(10, 10, 100, 0, stats.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDeviceClassFractionBands(t *testing.T) {
	p := Partition{NumClasses: 10, Counts: [][]int{
		{5, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // 1 class -> 10%
		{1, 1, 1, 1, 1, 0, 0, 0, 0, 0}, // 5 classes -> 50%
		{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, // all -> 100%
	}}
	wants := []float64{10, 50, 100}
	for d, want := range wants {
		if got := p.DeviceClassFraction(d); got != want {
			t.Errorf("device %d class fraction = %v, want %v", d, got, want)
		}
	}
}

func TestNonIIDDegreeExtremes(t *testing.T) {
	p := Partition{NumClasses: 10, Counts: [][]int{
		{100, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{10, 10, 10, 10, 10, 10, 10, 10, 10, 10},
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}}
	if got := p.NonIIDDegree(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("single-class degree = %v, want 1", got)
	}
	if got := p.NonIIDDegree(1); got > 1e-9 {
		t.Errorf("uniform degree = %v, want 0", got)
	}
	if got := p.NonIIDDegree(2); got != 0 {
		t.Errorf("empty device degree = %v, want 0", got)
	}
}

func TestParticipantSkewWeighted(t *testing.T) {
	p := Partition{NumClasses: 2, Counts: [][]int{
		{100, 0}, // fully skewed, many samples
		{1, 1},   // uniform, few samples
	}}
	skew := p.ParticipantSkew([]int{0, 1})
	if skew < 0.9 {
		t.Errorf("weighted skew = %v, want dominated by device 0 (>0.9)", skew)
	}
	if got := p.ParticipantSkew(nil); got != 0 {
		t.Errorf("empty participant skew = %v", got)
	}
}

func TestParticipantCoverage(t *testing.T) {
	p := Partition{NumClasses: 4, Counts: [][]int{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 1},
	}}
	if got := p.ParticipantCoverage([]int{0}); got != 0.25 {
		t.Errorf("coverage 1 device = %v", got)
	}
	if got := p.ParticipantCoverage([]int{0, 1, 2}); got != 1 {
		t.Errorf("coverage all = %v", got)
	}
}

func TestTotalSamples(t *testing.T) {
	p := IID(5, 10, 100)
	if got := p.TotalSamples(); got != 500 {
		t.Errorf("total = %d, want 500", got)
	}
}

func TestPropertyDirichletTotalsExact(t *testing.T) {
	f := func(seed int64, devRaw, classRaw uint8, perRaw uint16) bool {
		devices := int(devRaw%20) + 1
		classes := int(classRaw%15) + 2
		per := int(perRaw%500) + 1
		p := Dirichlet(devices, classes, per, 0.1, stats.NewRNG(seed))
		for d := 0; d < devices; d++ {
			if p.DeviceSamples(d) != per {
				return false
			}
			deg := p.NonIIDDegree(d)
			if deg < -1e-9 || deg > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
