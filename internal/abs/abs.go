// Package abs implements the ABS baseline (Ma et al., "Adaptive Batch
// Size for Federated Learning in Resource-Constrained Edge Computing",
// paper reference [49]): a deep-RL agent that adjusts only the local
// minibatch size B round-by-round, leaving E and K at their defaults.
//
// The agent is a small DQN built on internal/nn: a two-layer MLP maps a
// round-state feature vector to Q-values over the discrete B choices,
// trained from an experience-replay buffer against a periodically
// synchronized target network. The paper's comparison notes ABS "does
// not adjust E and K, which helps to deal with the straggler problem
// and data heterogeneity" — that structural limitation is exactly what
// this implementation reproduces.
package abs

import (
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/nn"
	"fedgpo/internal/stats"
)

// Config tunes the ABS agent.
type Config struct {
	// FixedE and FixedK are the parameters ABS does not adapt.
	FixedE, FixedK int
	// Hidden is the MLP hidden width.
	Hidden int
	// LR is the Adam learning rate of the Q-network.
	LR float64
	// Gamma is the RL discount factor.
	Gamma float64
	// Epsilon is the exploration rate (annealed to EpsilonMin).
	Epsilon, EpsilonMin, EpsilonDecay float64
	// ReplayCap and BatchSize size the experience replay.
	ReplayCap, BatchSize int
	// TargetSync is how many updates between target-network syncs.
	TargetSync int
	// Seed drives initialization and exploration.
	Seed int64
}

// DefaultConfig returns the operating point used in the experiments.
func DefaultConfig() Config {
	return Config{
		FixedE: 10, FixedK: 20,
		Hidden: 24, LR: 0.005, Gamma: 0.3,
		Epsilon: 0.5, EpsilonMin: 0.05, EpsilonDecay: 0.97,
		ReplayCap: 256, BatchSize: 16, TargetSync: 10,
		Seed: 1,
	}
}

const stateDim = 5

type transition struct {
	state  []float64
	action int
	reward float64
	next   []float64
}

// Controller is the ABS policy; it implements fl.Controller.
type Controller struct {
	cfg     Config
	rng     *stats.RNG
	bValues []int

	qNet, target *nn.Sequential
	opt          nn.Optimizer
	replay       []transition
	updates      int

	energyNorm *stats.EMA
	lastState  []float64
	lastAction int
	epsilon    float64
}

var _ fl.Controller = (*Controller)(nil)

// New builds an ABS controller.
func New(cfg Config) *Controller {
	if cfg.FixedE == 0 { // zero-value convenience
		cfg = DefaultConfig()
	}
	rng := stats.NewRNG(cfg.Seed)
	build := func(r *stats.RNG) *nn.Sequential {
		return nn.NewSequential(
			nn.NewDense(stateDim, cfg.Hidden, r),
			&nn.ReLU{},
			nn.NewDense(cfg.Hidden, len(fl.BValues()), r),
		)
	}
	netRNG := rng.Split()
	q := build(netRNG)
	t := build(stats.NewRNG(cfg.Seed)) // structure only; synced below
	nn.LoadParams(t, nn.ParamSnapshot(q))
	return &Controller{
		cfg:        cfg,
		rng:        rng,
		bValues:    fl.BValues(),
		qNet:       q,
		target:     t,
		opt:        nn.NewAdam(cfg.LR),
		energyNorm: stats.NewEMA(0.2),
		lastAction: -1,
		epsilon:    cfg.Epsilon,
	}
}

// Name identifies the controller.
func (c *Controller) Name() string { return "ABS" }

// stateVector summarizes the observation for the Q-network.
func stateVector(obs fl.Observation) []float64 {
	interfered, badNet := 0.0, 0.0
	for _, st := range obs.States {
		if st.Interference.CPUUsage > 0 || st.Interference.MemUsage > 0 {
			interfered++
		}
		if !st.Network.Regular() {
			badNet++
		}
	}
	n := float64(len(obs.States))
	if n == 0 {
		n = 1
	}
	return []float64{
		obs.PrevAccuracy,
		interfered / n,
		badNet / n,
		float64(obs.Round%50) / 50,
		1,
	}
}

// Plan selects B via the epsilon-greedy Q-network; E and K stay fixed.
func (c *Controller) Plan(obs fl.Observation) fl.Plan {
	state := stateVector(obs)
	var action int
	if c.rng.Bernoulli(c.epsilon) {
		action = c.rng.Intn(len(c.bValues))
	} else {
		qv := c.qNet.Forward(nn.FromSlice(append([]float64(nil), state...), 1, stateDim))
		action = stats.ArgMax(qv.Data)
	}
	c.lastState = state
	c.lastAction = action
	lp := fl.LocalParams{B: c.bValues[action], E: c.cfg.FixedE}
	return fl.Plan{K: c.cfg.FixedK, Local: func(device.Device, fl.DeviceState) fl.LocalParams {
		return lp
	}}
}

// Observe computes the reward (energy-normalized, improvement-gated,
// the same scalar objective shape the other adaptive baselines use),
// stores the transition, and trains the DQN from replay.
func (c *Controller) Observe(res fl.RoundResult) {
	if c.lastAction < 0 {
		return
	}
	eNorm := 10.0
	if avg := c.energyNorm.Add(res.EnergyGlobalJ); avg > 0 {
		eNorm = 10 * res.EnergyGlobalJ / avg
	}
	accPct := res.Accuracy * 100
	prevPct := res.PrevAccuracy * 100
	var reward float64
	if accPct <= prevPct {
		reward = accPct - 100
	} else {
		headroom := 100 - prevPct
		if headroom < 1e-9 {
			headroom = 1e-9
		}
		reward = -eNorm + 20*(100*(accPct-prevPct)/headroom)
	}
	next := append([]float64(nil), c.lastState...)
	next[0] = res.Accuracy
	c.push(transition{state: c.lastState, action: c.lastAction, reward: reward, next: next})
	c.train()
	c.lastAction = -1
	c.epsilon = c.epsilon * c.cfg.EpsilonDecay
	if c.epsilon < c.cfg.EpsilonMin {
		c.epsilon = c.cfg.EpsilonMin
	}
}

func (c *Controller) push(t transition) {
	if len(c.replay) >= c.cfg.ReplayCap {
		copy(c.replay, c.replay[1:])
		c.replay = c.replay[:len(c.replay)-1]
	}
	c.replay = append(c.replay, t)
}

// train runs one minibatch DQN update.
func (c *Controller) train() {
	if len(c.replay) < c.cfg.BatchSize {
		return
	}
	n := c.cfg.BatchSize
	actions := len(c.bValues)
	xs := nn.NewTensor(n, stateDim)
	nexts := nn.NewTensor(n, stateDim)
	batch := make([]transition, n)
	for i := 0; i < n; i++ {
		batch[i] = c.replay[c.rng.Intn(len(c.replay))]
		copy(xs.Data[i*stateDim:(i+1)*stateDim], batch[i].state)
		copy(nexts.Data[i*stateDim:(i+1)*stateDim], batch[i].next)
	}
	// Targets from the frozen network.
	nextQ := c.target.Forward(nexts)
	targets := nn.NewTensor(n, actions)
	mask := make([]bool, n*actions)
	for i := 0; i < n; i++ {
		maxNext := nextQ.Data[i*actions]
		for j := 1; j < actions; j++ {
			if nextQ.Data[i*actions+j] > maxNext {
				maxNext = nextQ.Data[i*actions+j]
			}
		}
		idx := i*actions + batch[i].action
		targets.Data[idx] = batch[i].reward + c.cfg.Gamma*maxNext
		mask[idx] = true
	}
	pred := c.qNet.Forward(xs)
	_, grad := nn.MaskedMSE(pred, targets, mask)
	c.qNet.ZeroGrads()
	c.qNet.Backward(grad)
	c.opt.Step(c.qNet.Params())

	c.updates++
	if c.updates%c.cfg.TargetSync == 0 {
		nn.LoadParams(c.target, nn.ParamSnapshot(c.qNet))
	}
}
