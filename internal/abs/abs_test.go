package abs

import (
	"testing"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

func testConfig() fl.Config {
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(20))
	return fl.Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.None(),
		MaxRounds:              200,
		AggregationOverheadSec: 10,
		Seed:                   1,
		StopAtConvergence:      true,
	}
}

func TestABSRunsAndMakesProgress(t *testing.T) {
	res := fl.Run(testConfig(), New(DefaultConfig()))
	if res.Controller != "ABS" {
		t.Errorf("name = %q", res.Controller)
	}
	if res.FinalAccuracy < 0.5 {
		t.Errorf("final accuracy = %v, want meaningful progress", res.FinalAccuracy)
	}
}

func TestABSOnlyAdjustsB(t *testing.T) {
	// The defining limitation of ABS (paper §5.3): E and K never move.
	cfg := testConfig()
	cfg.MaxRounds = 50
	cfg.StopAtConvergence = false
	seenB := map[int]bool{}
	var badEK bool
	probe := &probeCtl{inner: New(DefaultConfig()), onResult: func(rr fl.RoundResult) {
		if rr.PlannedK != DefaultConfig().FixedK {
			badEK = true
		}
		for _, p := range rr.Participants {
			seenB[p.Local.B] = true
			if p.Local.E != DefaultConfig().FixedE {
				badEK = true
			}
		}
	}}
	fl.Run(cfg, probe)
	if badEK {
		t.Error("ABS must keep E and K fixed")
	}
	if len(seenB) < 2 {
		t.Error("ABS never explored different batch sizes")
	}
}

func TestABSEpsilonAnneals(t *testing.T) {
	c := New(DefaultConfig())
	cfg := testConfig()
	cfg.MaxRounds = 80
	cfg.StopAtConvergence = false
	fl.Run(cfg, c)
	if c.epsilon >= DefaultConfig().Epsilon {
		t.Errorf("epsilon did not anneal: %v", c.epsilon)
	}
	if c.epsilon < DefaultConfig().EpsilonMin-1e-12 {
		t.Errorf("epsilon fell below the floor: %v", c.epsilon)
	}
}

func TestABSDeterministicPerSeed(t *testing.T) {
	a := fl.Run(testConfig(), New(DefaultConfig()))
	b := fl.Run(testConfig(), New(DefaultConfig()))
	if a.EnergyToConvergenceJ != b.EnergyToConvergenceJ {
		t.Error("same-seed ABS runs diverged")
	}
}

func TestZeroConfigFallsBack(t *testing.T) {
	c := New(Config{})
	if c.cfg.FixedE != DefaultConfig().FixedE {
		t.Error("zero config should fall back to defaults")
	}
}

type probeCtl struct {
	inner    fl.Controller
	onResult func(fl.RoundResult)
}

func (p *probeCtl) Name() string                  { return p.inner.Name() }
func (p *probeCtl) Plan(o fl.Observation) fl.Plan { return p.inner.Plan(o) }
func (p *probeCtl) Observe(r fl.RoundResult) {
	p.onResult(r)
	p.inner.Observe(r)
}
