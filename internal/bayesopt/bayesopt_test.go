package bayesopt

import (
	"math"
	"testing"

	"fedgpo/internal/stats"
)

// grid1D builds candidates at n evenly spaced points in [0,1].
func grid1D(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{float64(i) / float64(n-1)}
	}
	return out
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(nil, DefaultConfig(), stats.NewRNG(1)) },
		func() { New([][]float64{{0}, {0, 1}}, DefaultConfig(), stats.NewRNG(1)) },
		func() {
			c := DefaultConfig()
			c.LengthScale = 0
			New(grid1D(3), c, stats.NewRNG(1))
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFindsMaximumOfSmoothFunction(t *testing.T) {
	// f(x) = -(x-0.7)^2 peaks at x=0.7; BO should concentrate there.
	cand := grid1D(21)
	f := func(x float64) float64 { return -(x - 0.7) * (x - 0.7) }
	opt := New(cand, DefaultConfig(), stats.NewRNG(1))
	counts := make([]int, len(cand))
	for i := 0; i < 60; i++ {
		idx := opt.Suggest()
		counts[idx]++
		noise := stats.NewRNG(int64(i)).Gaussian(0, 0.001)
		opt.Observe(idx, f(cand[idx][0])+noise)
	}
	// The most-evaluated candidate in the last stretch should be near
	// 0.7 (index 14 of 0..20).
	lateBest := 0
	for i := 40; i < 60; i++ {
		_ = i
	}
	for i, c := range counts {
		if c > counts[lateBest] {
			lateBest = i
		}
	}
	x := cand[lateBest][0]
	if math.Abs(x-0.7) > 0.2 {
		t.Errorf("BO concentrated at x=%v, want near 0.7 (counts=%v)", x, counts)
	}
}

func TestColdStartIsRandomButValid(t *testing.T) {
	opt := New(grid1D(5), DefaultConfig(), stats.NewRNG(2))
	for i := 0; i < 20; i++ {
		idx := opt.Suggest()
		if idx < 0 || idx >= 5 {
			t.Fatalf("suggestion %d out of range", idx)
		}
	}
	if opt.Observations() != 0 {
		t.Error("no observations should be recorded yet")
	}
}

func TestWindowCapsObservations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 10
	opt := New(grid1D(5), cfg, stats.NewRNG(3))
	for i := 0; i < 30; i++ {
		opt.Observe(i%5, float64(i))
	}
	if got := opt.Observations(); got != 10 {
		t.Errorf("window kept %d observations, want 10", got)
	}
}

func TestObservePanicsOnBadIndex(t *testing.T) {
	opt := New(grid1D(3), DefaultConfig(), stats.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	opt.Observe(3, 1)
}

func TestCholeskyRoundTrip(t *testing.T) {
	a := [][]float64{
		{4, 2, 0.6},
		{2, 5, 1.2},
		{0.6, 1.2, 3},
	}
	l, ok := cholesky(a)
	if !ok {
		t.Fatal("SPD matrix rejected")
	}
	// Check L·Lᵀ == A.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			sum := 0.0
			for k := 0; k < 3; k++ {
				sum += l[i][k] * l[j][k]
			}
			if math.Abs(sum-a[i][j]) > 1e-9 {
				t.Errorf("LL^T[%d][%d] = %v, want %v", i, j, sum, a[i][j])
			}
		}
	}
	// Solve check: (LLᵀ)x = b.
	b := []float64{1, 2, 3}
	x := choleskySolve(l, b)
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			sum += a[i][j] * x[j]
		}
		if math.Abs(sum-b[i]) > 1e-9 {
			t.Errorf("solve residual at %d: %v vs %v", i, sum, b[i])
		}
	}
	if _, ok := cholesky([][]float64{{-1}}); ok {
		t.Error("non-SPD matrix should be rejected")
	}
}

func TestEIProperties(t *testing.T) {
	// Higher mean -> higher EI at equal sigma.
	if expectedImprovement(1, 0.5, 0, 0.01) <= expectedImprovement(0.5, 0.5, 0, 0.01) {
		t.Error("EI should increase with posterior mean")
	}
	// Zero sigma -> zero EI.
	if expectedImprovement(10, 0, 0, 0.01) != 0 {
		t.Error("EI with zero sigma should be 0")
	}
	// EI is non-negative.
	if expectedImprovement(-5, 0.1, 0, 0.01) < 0 {
		t.Error("EI must be non-negative")
	}
}

func TestNormalHelpers(t *testing.T) {
	if math.Abs(stdNormCDF(0)-0.5) > 1e-12 {
		t.Error("CDF(0) != 0.5")
	}
	if math.Abs(stdNormPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Error("PDF(0) wrong")
	}
	if stdNormCDF(5) < 0.999 || stdNormCDF(-5) > 0.001 {
		t.Error("CDF tails wrong")
	}
}
