// Package bayesopt implements Gaussian-process Bayesian optimization
// over a discrete candidate set — the substrate of the paper's
// "Adaptive (BO)" baseline, which re-selects the FL global parameters
// every aggregation round using the same BO machinery state-of-the-art
// HPO methods build on (paper §4.1, citing Souza et al.).
//
// The implementation is a standard exact GP with an RBF kernel over
// normalized candidate coordinates and an expected-improvement
// acquisition function, maximizing a scalar reward. Observation noise
// is handled with a diagonal jitter. Complexity is O(n³) in the number
// of observations, which is fine for the few hundred rounds of an FL
// run.
package bayesopt

import (
	"math"

	"fedgpo/internal/stats"
)

// Optimizer maximizes an unknown f over a fixed discrete candidate set.
// Not safe for concurrent use.
type Optimizer struct {
	points       [][]float64 // normalized candidate coordinates
	xs           [][]float64 // observed inputs
	ys           []float64   // observed values
	rng          *stats.RNG
	lengthSc     float64
	noise        float64
	xi           float64 // EI exploration margin
	maxPoints    int     // cap on the GP design matrix (sliding window)
	exploitAfter int
	observed     int // lifetime observation count
}

// Config tunes the optimizer.
type Config struct {
	// LengthScale of the RBF kernel in normalized coordinate space.
	LengthScale float64
	// Noise is the observation-noise variance added to the kernel
	// diagonal.
	Noise float64
	// Xi is the expected-improvement exploration margin.
	Xi float64
	// Window caps the number of most-recent observations kept in the
	// GP (older rounds are stale under runtime variance anyway).
	Window int
	// ExploitAfter switches Suggest from expected improvement to pure
	// posterior-mean maximization once this many observations have
	// accumulated (0 = never). Round-by-round FL tuning needs the
	// optimizer to eventually commit — perpetual EI exploration keeps
	// perturbing the training configuration forever.
	ExploitAfter int
}

// DefaultConfig returns a reasonable operating point for round-by-round
// FL parameter tuning.
func DefaultConfig() Config {
	return Config{LengthScale: 0.35, Noise: 0.05, Xi: 0.01, Window: 60, ExploitAfter: 50}
}

// New builds an optimizer over the candidate coordinate set. Each
// candidate is a point in [0,1]^d (normalize before calling). It panics
// on an empty candidate set or inconsistent dimensions.
func New(candidates [][]float64, cfg Config, rng *stats.RNG) *Optimizer {
	if len(candidates) == 0 {
		panic("bayesopt: empty candidate set")
	}
	d := len(candidates[0])
	for _, c := range candidates {
		if len(c) != d {
			panic("bayesopt: inconsistent candidate dimensions")
		}
	}
	if cfg.LengthScale <= 0 || cfg.Noise <= 0 || cfg.Window <= 0 {
		panic("bayesopt: config values must be positive")
	}
	return &Optimizer{
		points:       candidates,
		rng:          rng,
		lengthSc:     cfg.LengthScale,
		noise:        cfg.Noise,
		xi:           cfg.Xi,
		maxPoints:    cfg.Window,
		exploitAfter: cfg.ExploitAfter,
	}
}

// Observations returns the number of (x, y) pairs currently in the GP.
func (o *Optimizer) Observations() int { return len(o.xs) }

// Observe records the outcome of evaluating candidate idx.
func (o *Optimizer) Observe(idx int, y float64) {
	if idx < 0 || idx >= len(o.points) {
		panic("bayesopt: candidate index out of range")
	}
	o.xs = append(o.xs, o.points[idx])
	o.ys = append(o.ys, y)
	o.observed++
	if len(o.xs) > o.maxPoints {
		o.xs = o.xs[len(o.xs)-o.maxPoints:]
		o.ys = o.ys[len(o.ys)-o.maxPoints:]
	}
}

// Suggest returns the candidate index with the highest expected
// improvement under the current posterior (or, after ExploitAfter
// observations, the highest posterior mean). With no observations it
// explores uniformly at random.
func (o *Optimizer) Suggest() int {
	if len(o.xs) == 0 {
		return o.rng.Intn(len(o.points))
	}
	mu, sigma := o.posterior()
	if o.exploitAfter > 0 && o.observed >= o.exploitAfter {
		return stats.ArgMax(mu)
	}
	best := stats.Max(o.ys)
	bestIdx, bestEI := 0, math.Inf(-1)
	for i := range o.points {
		ei := expectedImprovement(mu[i], sigma[i], best, o.xi)
		if ei > bestEI {
			bestIdx, bestEI = i, ei
		}
	}
	return bestIdx
}

// kernel is the RBF covariance between two normalized points.
func (o *Optimizer) kernel(a, b []float64) float64 {
	d2 := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	return math.Exp(-d2 / (2 * o.lengthSc * o.lengthSc))
}

// posterior computes the GP posterior mean and stddev at every
// candidate. Values are standardized internally so the kernel
// amplitude can stay at 1.
func (o *Optimizer) posterior() (mu, sigma []float64) {
	n := len(o.xs)
	mean := stats.Mean(o.ys)
	std := stats.StdDev(o.ys)
	if std < 1e-9 {
		std = 1
	}
	yc := make([]float64, n)
	for i, y := range o.ys {
		yc[i] = (y - mean) / std
	}
	// K + noise·I
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = o.kernel(o.xs[i], o.xs[j])
		}
		k[i][i] += o.noise
	}
	l, ok := cholesky(k)
	if !ok {
		// Numerically degenerate: fall back to prior.
		mu = make([]float64, len(o.points))
		sigma = make([]float64, len(o.points))
		for i := range sigma {
			mu[i] = mean
			sigma[i] = std
		}
		return mu, sigma
	}
	alpha := choleskySolve(l, yc)

	mu = make([]float64, len(o.points))
	sigma = make([]float64, len(o.points))
	kstar := make([]float64, n)
	for i, p := range o.points {
		for j := range o.xs {
			kstar[j] = o.kernel(p, o.xs[j])
		}
		m := 0.0
		for j := range kstar {
			m += kstar[j] * alpha[j]
		}
		v := forwardSolve(l, kstar)
		varReduction := 0.0
		for _, x := range v {
			varReduction += x * x
		}
		variance := 1 - varReduction
		if variance < 1e-12 {
			variance = 1e-12
		}
		mu[i] = m*std + mean
		sigma[i] = math.Sqrt(variance) * std
	}
	return mu, sigma
}

// expectedImprovement is the standard EI acquisition for maximization.
func expectedImprovement(mu, sigma, best, xi float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (mu - best - xi) / sigma
	return (mu-best-xi)*stdNormCDF(z) + sigma*stdNormPDF(z)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// cholesky returns the lower-triangular factor of a symmetric positive
// definite matrix, or ok=false if the matrix is not SPD.
func cholesky(a [][]float64) (l [][]float64, ok bool) {
	n := len(a)
	l = make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, true
}

// forwardSolve solves L·x = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for j := 0; j < i; j++ {
			sum -= l[i][j] * x[j]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// backSolve solves Lᵀ·x = b for lower-triangular L.
func backSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= l[j][i] * x[j]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// choleskySolve solves (L·Lᵀ)·x = b.
func choleskySolve(l [][]float64, b []float64) []float64 {
	return backSolve(l, forwardSolve(l, b))
}
