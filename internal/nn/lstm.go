package nn

import (
	"math"

	"fedgpo/internal/stats"
)

// LSTM is a single-layer LSTM that consumes a [batch, seq, in] tensor
// and emits the final hidden state [batch, hidden]. Backpropagation is
// full BPTT over the sequence.
type LSTM struct {
	In, Hidden int
	// Wx: [in, 4*hidden] (i, f, g, o gate blocks), Wh: [hidden,
	// 4*hidden], B: [1, 4*hidden].
	Wx, Wh, B *Param

	// forward caches
	input *Tensor
	steps []lstmStep
	lastH *Tensor
}

type lstmStep struct {
	i, f, g, o *Tensor // gate activations [batch, hidden]
	c, h       *Tensor // cell and hidden states after the step
	cPrev      *Tensor
	hPrev      *Tensor
}

// NewLSTM builds an LSTM with Glorot-initialized input weights,
// orthogonal-ish recurrent weights, and forget-gate bias 1 (the
// standard trick for gradient flow).
func NewLSTM(in, hidden int, rng *stats.RNG) *LSTM {
	wx := NewTensor(in, 4*hidden)
	limit := math.Sqrt(6.0 / float64(in+4*hidden))
	for i := range wx.Data {
		wx.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	wh := NewTensor(hidden, 4*hidden)
	limitH := math.Sqrt(6.0 / float64(hidden+4*hidden))
	for i := range wh.Data {
		wh.Data[i] = (rng.Float64()*2 - 1) * limitH
	}
	b := NewTensor(1, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		b.Data[j] = 1 // forget gate bias
	}
	return &LSTM{
		In: in, Hidden: hidden,
		Wx: &Param{Name: "lstmWx", Value: wx, Grad: NewTensor(in, 4*hidden)},
		Wh: &Param{Name: "lstmWh", Value: wh, Grad: NewTensor(hidden, 4*hidden)},
		B:  &Param{Name: "lstmB", Value: b, Grad: NewTensor(1, 4*hidden)},
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward runs the recurrence and returns the final hidden state.
func (l *LSTM) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != l.In {
		panic("nn: LSTM expects [batch, seq, in]")
	}
	batch, seq := x.Shape[0], x.Shape[1]
	h := NewTensor(batch, l.Hidden)
	c := NewTensor(batch, l.Hidden)
	l.input = x
	l.steps = make([]lstmStep, 0, seq)

	for t := 0; t < seq; t++ {
		xt := NewTensor(batch, l.In)
		for n := 0; n < batch; n++ {
			copy(xt.Data[n*l.In:(n+1)*l.In], x.Data[(n*seq+t)*l.In:(n*seq+t+1)*l.In])
		}
		z := MatMul(xt, l.Wx.Value)
		AddInto(z, MatMul(h, l.Wh.Value))
		for n := 0; n < batch; n++ {
			for j := 0; j < 4*l.Hidden; j++ {
				z.Data[n*4*l.Hidden+j] += l.B.Value.Data[j]
			}
		}
		st := lstmStep{
			i: NewTensor(batch, l.Hidden), f: NewTensor(batch, l.Hidden),
			g: NewTensor(batch, l.Hidden), o: NewTensor(batch, l.Hidden),
			c: NewTensor(batch, l.Hidden), h: NewTensor(batch, l.Hidden),
			cPrev: c, hPrev: h,
		}
		for n := 0; n < batch; n++ {
			base := n * 4 * l.Hidden
			for j := 0; j < l.Hidden; j++ {
				iv := sigmoid(z.Data[base+j])
				fv := sigmoid(z.Data[base+l.Hidden+j])
				gv := math.Tanh(z.Data[base+2*l.Hidden+j])
				ov := sigmoid(z.Data[base+3*l.Hidden+j])
				cv := fv*c.Data[n*l.Hidden+j] + iv*gv
				hv := ov * math.Tanh(cv)
				st.i.Data[n*l.Hidden+j] = iv
				st.f.Data[n*l.Hidden+j] = fv
				st.g.Data[n*l.Hidden+j] = gv
				st.o.Data[n*l.Hidden+j] = ov
				st.c.Data[n*l.Hidden+j] = cv
				st.h.Data[n*l.Hidden+j] = hv
			}
		}
		l.steps = append(l.steps, st)
		h, c = st.h, st.c
	}
	l.lastH = h
	return h
}

// Backward back-propagates through time from the final hidden state.
func (l *LSTM) Backward(grad *Tensor) *Tensor {
	batch := grad.Shape[0]
	seq := len(l.steps)
	dx := NewTensor(l.input.Shape...)
	dh := grad.Clone()
	dc := NewTensor(batch, l.Hidden)
	whT := Transpose(l.Wh.Value)
	wxT := Transpose(l.Wx.Value)

	for t := seq - 1; t >= 0; t-- {
		st := l.steps[t]
		dz := NewTensor(batch, 4*l.Hidden)
		for n := 0; n < batch; n++ {
			for j := 0; j < l.Hidden; j++ {
				idx := n*l.Hidden + j
				tanhC := math.Tanh(st.c.Data[idx])
				do := dh.Data[idx] * tanhC
				dcTotal := dc.Data[idx] + dh.Data[idx]*st.o.Data[idx]*(1-tanhC*tanhC)
				di := dcTotal * st.g.Data[idx]
				dg := dcTotal * st.i.Data[idx]
				df := dcTotal * st.cPrev.Data[idx]
				dcPrev := dcTotal * st.f.Data[idx]

				base := n * 4 * l.Hidden
				dz.Data[base+j] = di * st.i.Data[idx] * (1 - st.i.Data[idx])
				dz.Data[base+l.Hidden+j] = df * st.f.Data[idx] * (1 - st.f.Data[idx])
				dz.Data[base+2*l.Hidden+j] = dg * (1 - st.g.Data[idx]*st.g.Data[idx])
				dz.Data[base+3*l.Hidden+j] = do * st.o.Data[idx] * (1 - st.o.Data[idx])
				dc.Data[idx] = dcPrev
			}
		}
		// Parameter gradients.
		xt := NewTensor(batch, l.In)
		for n := 0; n < batch; n++ {
			copy(xt.Data[n*l.In:(n+1)*l.In],
				l.input.Data[(n*seq+t)*l.In:(n*seq+t+1)*l.In])
		}
		AddInto(l.Wx.Grad, MatMul(Transpose(xt), dz))
		AddInto(l.Wh.Grad, MatMul(Transpose(st.hPrev), dz))
		for n := 0; n < batch; n++ {
			for j := 0; j < 4*l.Hidden; j++ {
				l.B.Grad.Data[j] += dz.Data[n*4*l.Hidden+j]
			}
		}
		// Input gradient for this step.
		dxt := MatMul(dz, wxT)
		for n := 0; n < batch; n++ {
			copy(dx.Data[(n*seq+t)*l.In:(n*seq+t+1)*l.In], dxt.Data[n*l.In:(n+1)*l.In])
		}
		// Hidden gradient for the previous step.
		dh = MatMul(dz, whT)
	}
	return dx
}

// Params returns the LSTM's three parameter tensors.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
