package nn

import (
	"math"
	"testing"
	"testing/quick"

	"fedgpo/internal/data"
	"fedgpo/internal/stats"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Size() != 6 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatal("tensor shape wrong")
	}
	x.Set2(1, 2, 5)
	if x.At2(1, 2) != 5 {
		t.Error("At2/Set2 broken")
	}
	c := x.Clone()
	c.Data[0] = 9
	if x.Data[0] == 9 {
		t.Error("Clone aliases storage")
	}
	if !SameShape(x, c) {
		t.Error("SameShape false negative")
	}
	if SameShape(x, NewTensor(3, 2)) {
		t.Error("SameShape false positive")
	}
}

func TestTensorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewTensor() },
		func() { NewTensor(2, 0) },
		func() { FromSlice([]float64{1, 2}, 3) },
		func() { MatMul(NewTensor(2, 3), NewTensor(2, 3)) },
		func() { Transpose(NewTensor(2, 2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMatMulKnownResult(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	tt := Transpose(Transpose(a))
	for i := range a.Data {
		if a.Data[i] != tt.Data[i] {
			t.Fatal("double transpose changed data")
		}
	}
}

// numericalGradCheck compares a layer's analytic input gradient with a
// finite-difference estimate on a scalar loss L = sum(outputs).
func numericalGradCheck(t *testing.T, layer Layer, x *Tensor, tol float64) {
	t.Helper()
	out := layer.Forward(x)
	ones := NewTensor(out.Shape...)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	analytic := layer.Backward(ones)

	const h = 1e-5
	for i := 0; i < len(x.Data); i += max(1, len(x.Data)/20) {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := sum(layer.Forward(x).Data)
		x.Data[i] = orig - h
		down := sum(layer.Forward(x).Data)
		x.Data[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-analytic.Data[i]) > tol {
			t.Errorf("grad mismatch at %d: analytic %v vs numeric %v",
				i, analytic.Data[i], numeric)
		}
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}


func randTensor(rng *stats.RNG, shape ...int) *Tensor {
	x := NewTensor(shape...)
	for i := range x.Data {
		x.Data[i] = rng.Gaussian(0, 1)
	}
	return x
}

func TestDenseGradCheck(t *testing.T) {
	rng := stats.NewRNG(1)
	numericalGradCheck(t, NewDense(5, 4, rng), randTensor(rng, 3, 5), 1e-6)
}

func TestActivationGradChecks(t *testing.T) {
	rng := stats.NewRNG(2)
	numericalGradCheck(t, &Tanh{}, randTensor(rng, 4, 6), 1e-6)
	numericalGradCheck(t, &Sigmoid{}, randTensor(rng, 4, 6), 1e-6)
	// ReLU: keep inputs away from the kink.
	x := randTensor(rng, 4, 6)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.1 {
			x.Data[i] = 0.5
		}
	}
	numericalGradCheck(t, &ReLU{}, x, 1e-6)
}

func TestConvGradCheck(t *testing.T) {
	rng := stats.NewRNG(3)
	numericalGradCheck(t, NewConv2D(2, 3, 3, rng), randTensor(rng, 2, 2, 5, 5), 1e-5)
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := stats.NewRNG(4)
	x := randTensor(rng, 2, 2, 4, 4)
	numericalGradCheck(t, &MaxPool2D{}, x, 1e-5)
}

func TestLSTMGradCheck(t *testing.T) {
	rng := stats.NewRNG(5)
	numericalGradCheck(t, NewLSTM(3, 4, rng), randTensor(rng, 2, 5, 3), 1e-4)
}

func TestDenseWeightGradients(t *testing.T) {
	// Finite-difference check on the weight gradient.
	rng := stats.NewRNG(6)
	d := NewDense(3, 2, rng)
	x := randTensor(rng, 4, 3)
	out := d.Forward(x)
	ones := NewTensor(out.Shape...)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	d.W.Grad.Zero()
	d.Backward(ones)
	const h = 1e-6
	for i := 0; i < len(d.W.Value.Data); i++ {
		orig := d.W.Value.Data[i]
		d.W.Value.Data[i] = orig + h
		up := sum(d.Forward(x).Data)
		d.W.Value.Data[i] = orig - h
		down := sum(d.Forward(x).Data)
		d.W.Value.Data[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-d.W.Grad.Data[i]) > 1e-4 {
			t.Fatalf("weight grad mismatch at %d: %v vs %v", i, d.W.Grad.Data[i], numeric)
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := FromSlice([]float64{2, 1, 0.1, 0, 0, 5}, 2, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 2})
	if loss <= 0 {
		t.Errorf("loss = %v, want > 0", loss)
	}
	// Gradient rows sum to ~0 (softmax minus one-hot).
	for n := 0; n < 2; n++ {
		s := grad.Data[n*3] + grad.Data[n*3+1] + grad.Data[n*3+2]
		if math.Abs(s) > 1e-9 {
			t.Errorf("row %d gradient sums to %v", n, s)
		}
	}
	// A confident correct prediction has near-zero loss contribution.
	confident := FromSlice([]float64{10, -10, -10}, 1, 3)
	l2, _ := SoftmaxCrossEntropy(confident, []int{0})
	if l2 > 1e-6 {
		t.Errorf("confident correct loss = %v", l2)
	}
}

func TestMSEAndMasked(t *testing.T) {
	pred := FromSlice([]float64{1, 2}, 1, 2)
	target := FromSlice([]float64{0, 2}, 1, 2)
	loss, grad := MSE(pred, target)
	if math.Abs(loss-0.5) > 1e-12 {
		t.Errorf("MSE = %v, want 0.5", loss)
	}
	if grad.Data[1] != 0 || grad.Data[0] != 1 {
		t.Errorf("MSE grad = %v", grad.Data)
	}
	mLoss, mGrad := MaskedMSE(pred, target, []bool{true, false})
	if math.Abs(mLoss-1) > 1e-12 {
		t.Errorf("masked MSE = %v, want 1", mLoss)
	}
	if mGrad.Data[1] != 0 {
		t.Error("masked-out entry should have zero gradient")
	}
}

func TestTrainXOR(t *testing.T) {
	// The classic non-linear sanity check: a 2-layer MLP must fit XOR.
	rng := stats.NewRNG(7)
	model := NewSequential(
		NewDense(2, 8, rng),
		&Tanh{},
		NewDense(8, 2, rng),
	)
	opt := NewAdam(0.05)
	xs := FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	ys := []int{0, 1, 1, 0}
	for epoch := 0; epoch < 300; epoch++ {
		logits := model.Forward(xs)
		_, grad := SoftmaxCrossEntropy(logits, ys)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if acc := Accuracy(model.Forward(xs), ys); acc != 1 {
		t.Errorf("XOR accuracy = %v, want 1.0", acc)
	}
}

func TestTrainGaussianBlobsWithCNNStack(t *testing.T) {
	// End-to-end: a small conv net learns a synthetic image task.
	rng := stats.NewRNG(8)
	ds := data.GaussianBlobs(3, 36, 40, 0.6, rng) // 6x6 "images"
	model := NewSequential(
		NewConv2D(1, 4, 3, rng),
		&ReLU{},
		&MaxPool2D{},
		&Flatten{},
		NewDense(4*3*3, 3, rng),
	)
	opt := NewSGD(0.05, 0.9)
	batch := 20
	for epoch := 0; epoch < 15; epoch++ {
		for i := 0; i+batch <= len(ds); i += batch {
			x := NewTensor(batch, 1, 6, 6)
			labels := make([]int, batch)
			for n := 0; n < batch; n++ {
				copy(x.Data[n*36:(n+1)*36], ds[i+n].X)
				labels[n] = ds[i+n].Y
			}
			logits := model.Forward(x)
			_, grad := SoftmaxCrossEntropy(logits, labels)
			model.Backward(grad)
			opt.Step(model.Params())
		}
	}
	x := NewTensor(len(ds), 1, 6, 6)
	labels := make([]int, len(ds))
	for n := range ds {
		copy(x.Data[n*36:(n+1)*36], ds[n].X)
		labels[n] = ds[n].Y
	}
	if acc := Accuracy(model.Forward(x), labels); acc < 0.9 {
		t.Errorf("CNN training accuracy = %v, want >= 0.9", acc)
	}
}

func TestFedAvgWeightedAverage(t *testing.T) {
	a := []*Tensor{FromSlice([]float64{1, 1}, 2)}
	b := []*Tensor{FromSlice([]float64{3, 5}, 2)}
	avg := FedAvg([][]*Tensor{a, b}, []float64{1, 3})
	want := []float64{2.5, 4}
	for i, v := range want {
		if math.Abs(avg[0].Data[i]-v) > 1e-12 {
			t.Fatalf("FedAvg = %v, want %v", avg[0].Data, want)
		}
	}
}

func TestFedAvgPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { FedAvg(nil, nil) },
		func() { FedAvg([][]*Tensor{{NewTensor(1)}}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestParamSnapshotRoundTrip(t *testing.T) {
	rng := stats.NewRNG(9)
	m := NewSequential(NewDense(3, 2, rng))
	snap := ParamSnapshot(m)
	m.Params()[0].Value.Data[0] = 99
	LoadParams(m, snap)
	if m.Params()[0].Value.Data[0] == 99 {
		t.Error("LoadParams did not restore values")
	}
	encoded, err := EncodeParams(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeParams(encoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap {
		for j := range snap[i].Data {
			if snap[i].Data[j] != decoded[i].Data[j] {
				t.Fatal("gob round trip changed parameters")
			}
		}
	}
}

func TestOptimizerPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewSGD(0, 0) },
		func() { NewSGD(0.1, 1) },
		func() { NewAdam(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	// Minimize (w-3)^2 with momentum SGD.
	w := &Param{Value: FromSlice([]float64{0}, 1), Grad: NewTensor(1)}
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 200; i++ {
		w.Grad.Data[0] = 2 * (w.Value.Data[0] - 3)
		opt.Step([]*Param{w})
	}
	if math.Abs(w.Value.Data[0]-3) > 0.01 {
		t.Errorf("SGD converged to %v, want 3", w.Value.Data[0])
	}
}

func TestPropertySoftmaxGradRowsSumZero(t *testing.T) {
	f := func(seed int64, classesRaw, batchRaw uint8) bool {
		classes := int(classesRaw%8) + 2
		batch := int(batchRaw%5) + 1
		rng := stats.NewRNG(seed)
		logits := randTensor(rng, batch, classes)
		labels := make([]int, batch)
		for i := range labels {
			labels[i] = rng.Intn(classes)
		}
		_, grad := SoftmaxCrossEntropy(logits, labels)
		for n := 0; n < batch; n++ {
			s := 0.0
			for j := 0; j < classes; j++ {
				s += grad.Data[n*classes+j]
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
