package nn

import (
	"math"

	"fedgpo/internal/stats"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *Tensor
	Grad  *Tensor
}

// Layer is one differentiable stage: Forward caches what Backward
// needs; Backward consumes the upstream gradient, accumulates parameter
// gradients, and returns the gradient w.r.t. its input.
type Layer interface {
	Forward(x *Tensor) *Tensor
	Backward(grad *Tensor) *Tensor
	Params() []*Param
}

// Dense is a fully-connected layer: y = x·W + b, x shaped [batch, in].
type Dense struct {
	W, B  *Param
	input *Tensor
}

// NewDense builds a Dense layer with Glorot-uniform initialization.
func NewDense(in, out int, rng *stats.RNG) *Dense {
	w := NewTensor(in, out)
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return &Dense{
		W: &Param{Name: "W", Value: w, Grad: NewTensor(in, out)},
		B: &Param{Name: "b", Value: NewTensor(1, out), Grad: NewTensor(1, out)},
	}
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *Tensor) *Tensor {
	d.input = x
	y := MatMul(x, d.W.Value)
	out := y.Shape[1]
	for i := 0; i < y.Shape[0]; i++ {
		for j := 0; j < out; j++ {
			y.Data[i*out+j] += d.B.Value.Data[j]
		}
	}
	return y
}

// Backward accumulates dW, db and returns dX.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	AddInto(d.W.Grad, MatMul(Transpose(d.input), grad))
	out := grad.Shape[1]
	for i := 0; i < grad.Shape[0]; i++ {
		for j := 0; j < out; j++ {
			d.B.Grad.Data[j] += grad.Data[i*out+j]
		}
	}
	return MatMul(grad, Transpose(d.W.Value))
}

// Params returns the weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectified-linear activation.
type ReLU struct{ mask []bool }

// Forward zeroes negatives.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	y := x.Clone()
	r.mask = make([]bool, len(y.Data))
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
		} else {
			r.mask[i] = true
		}
	}
	return y
}

// Backward gates the gradient by the forward mask.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	g := grad.Clone()
	for i := range g.Data {
		if !r.mask[i] {
			g.Data[i] = 0
		}
	}
	return g
}

// Params returns nil (ReLU has none).
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{ out *Tensor }

// Forward applies tanh element-wise.
func (t *Tanh) Forward(x *Tensor) *Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = math.Tanh(v)
	}
	t.out = y
	return y
}

// Backward multiplies by 1 - tanh².
func (t *Tanh) Backward(grad *Tensor) *Tensor {
	g := grad.Clone()
	for i := range g.Data {
		g.Data[i] *= 1 - t.out.Data[i]*t.out.Data[i]
	}
	return g
}

// Params returns nil.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct{ out *Tensor }

// Forward applies 1/(1+e^-x).
func (s *Sigmoid) Forward(x *Tensor) *Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.out = y
	return y
}

// Backward multiplies by σ(1-σ).
func (s *Sigmoid) Backward(grad *Tensor) *Tensor {
	g := grad.Clone()
	for i := range g.Data {
		g.Data[i] *= s.out.Data[i] * (1 - s.out.Data[i])
	}
	return g
}

// Params returns nil.
func (s *Sigmoid) Params() []*Param { return nil }

// Flatten reshapes [batch, ...] to [batch, rest].
type Flatten struct{ inShape []int }

// Forward flattens all trailing dimensions.
func (f *Flatten) Forward(x *Tensor) *Tensor {
	f.inShape = x.Shape
	rest := 1
	for _, d := range x.Shape[1:] {
		rest *= d
	}
	return FromSlice(x.Data, x.Shape[0], rest)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *Tensor) *Tensor {
	return FromSlice(grad.Data, f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }

// Conv2D is a standard 2-D convolution over [batch, inC, H, W] input
// with stride 1 and zero padding to preserve spatial size ("same").
type Conv2D struct {
	InC, OutC, Kernel int
	W, B              *Param
	input             *Tensor
}

// NewConv2D builds a same-padded, stride-1 convolution.
func NewConv2D(inC, outC, kernel int, rng *stats.RNG) *Conv2D {
	w := NewTensor(outC, inC, kernel, kernel)
	fanIn := inC * kernel * kernel
	limit := math.Sqrt(6.0 / float64(fanIn+outC*kernel*kernel))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return &Conv2D{
		InC: inC, OutC: outC, Kernel: kernel,
		W: &Param{Name: "convW", Value: w, Grad: NewTensor(outC, inC, kernel, kernel)},
		B: &Param{Name: "convB", Value: NewTensor(1, outC), Grad: NewTensor(1, outC)},
	}
}

// Forward performs the convolution.
func (c *Conv2D) Forward(x *Tensor) *Tensor {
	c.input = x
	b, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	pad := c.Kernel / 2
	y := NewTensor(b, c.OutC, h, w)
	for n := 0; n < b; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.Value.Data[oc]
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					sum := bias
					for ic := 0; ic < c.InC; ic++ {
						for ki := 0; ki < c.Kernel; ki++ {
							ii := i + ki - pad
							if ii < 0 || ii >= h {
								continue
							}
							for kj := 0; kj < c.Kernel; kj++ {
								jj := j + kj - pad
								if jj < 0 || jj >= w {
									continue
								}
								xv := x.Data[((n*c.InC+ic)*h+ii)*w+jj]
								wv := c.W.Value.Data[((oc*c.InC+ic)*c.Kernel+ki)*c.Kernel+kj]
								sum += xv * wv
							}
						}
					}
					y.Data[((n*c.OutC+oc)*h+i)*w+j] = sum
				}
			}
		}
	}
	return y
}

// Backward accumulates filter/bias gradients and returns dX.
func (c *Conv2D) Backward(grad *Tensor) *Tensor {
	x := c.input
	b, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	pad := c.Kernel / 2
	dx := NewTensor(x.Shape...)
	for n := 0; n < b; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					g := grad.Data[((n*c.OutC+oc)*h+i)*w+j]
					if g == 0 {
						continue
					}
					c.B.Grad.Data[oc] += g
					for ic := 0; ic < c.InC; ic++ {
						for ki := 0; ki < c.Kernel; ki++ {
							ii := i + ki - pad
							if ii < 0 || ii >= h {
								continue
							}
							for kj := 0; kj < c.Kernel; kj++ {
								jj := j + kj - pad
								if jj < 0 || jj >= w {
									continue
								}
								xIdx := ((n*c.InC+ic)*h+ii)*w + jj
								wIdx := ((oc*c.InC+ic)*c.Kernel+ki)*c.Kernel + kj
								c.W.Grad.Data[wIdx] += g * x.Data[xIdx]
								dx.Data[xIdx] += g * c.W.Value.Data[wIdx]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns the filters and biases.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool2D is a 2×2, stride-2 max pool over [batch, C, H, W].
type MaxPool2D struct {
	argmax  []int
	inShape []int
}

// Forward pools each non-overlapping 2×2 window to its max.
func (m *MaxPool2D) Forward(x *Tensor) *Tensor {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/2, w/2
	y := NewTensor(b, c, oh, ow)
	m.argmax = make([]int, y.Size())
	m.inShape = x.Shape
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					bestIdx, bestVal := -1, math.Inf(-1)
					for di := 0; di < 2; di++ {
						for dj := 0; dj < 2; dj++ {
							idx := ((n*c+ch)*h+2*i+di)*w + 2*j + dj
							if x.Data[idx] > bestVal {
								bestIdx, bestVal = idx, x.Data[idx]
							}
						}
					}
					oIdx := ((n*c+ch)*oh+i)*ow + j
					y.Data[oIdx] = bestVal
					m.argmax[oIdx] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool2D) Backward(grad *Tensor) *Tensor {
	dx := NewTensor(m.inShape...)
	for oIdx, inIdx := range m.argmax {
		dx.Data[inIdx] += grad.Data[oIdx]
	}
	return dx
}

// Params returns nil.
func (m *MaxPool2D) Params() []*Param { return nil }
