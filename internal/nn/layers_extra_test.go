package nn

import (
	"math"
	"testing"

	"fedgpo/internal/stats"
)

func TestDepthwiseConvGradCheck(t *testing.T) {
	rng := stats.NewRNG(21)
	numericalGradCheck(t, NewDepthwiseConv2D(3, 3, rng), randTensor(rng, 2, 3, 5, 5), 1e-5)
}

func TestDepthwiseConvKeepsChannelsSeparate(t *testing.T) {
	// Changing channel 0's input must not affect channel 1's output.
	rng := stats.NewRNG(22)
	dw := NewDepthwiseConv2D(2, 3, rng)
	x := randTensor(rng, 1, 2, 4, 4)
	y1 := dw.Forward(x).Clone()
	x.Data[0] += 10 // perturb channel 0 only
	y2 := dw.Forward(x)
	for k := 16; k < 32; k++ { // channel 1's plane
		if y1.Data[k] != y2.Data[k] {
			t.Fatal("depthwise conv mixed channels")
		}
	}
	changed := false
	for k := 0; k < 16; k++ {
		if y1.Data[k] != y2.Data[k] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("channel 0 output should have changed")
	}
}

func TestGlobalAvgPoolForwardBackward(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4, // channel 0
		10, 10, 10, 10, // channel 1
	}, 1, 2, 2, 2)
	g := &GlobalAvgPool2D{}
	y := g.Forward(x)
	if y.Data[0] != 2.5 || y.Data[1] != 10 {
		t.Fatalf("pool output = %v", y.Data)
	}
	dx := g.Backward(FromSlice([]float64{4, 8}, 1, 2))
	for k := 0; k < 4; k++ {
		if dx.Data[k] != 1 {
			t.Fatalf("channel 0 gradient = %v, want 1 everywhere", dx.Data[:4])
		}
		if dx.Data[4+k] != 2 {
			t.Fatalf("channel 1 gradient = %v, want 2 everywhere", dx.Data[4:])
		}
	}
	rng := stats.NewRNG(23)
	numericalGradCheck(t, &GlobalAvgPool2D{}, randTensor(rng, 2, 3, 4, 4), 1e-6)
}

func TestEmbeddingLookupAndGrad(t *testing.T) {
	rng := stats.NewRNG(24)
	emb := NewEmbedding(5, 3, rng)
	ids := FromSlice([]float64{0, 2, 2, 4}, 2, 2)
	y := emb.Forward(ids)
	if y.Shape[0] != 2 || y.Shape[1] != 2 || y.Shape[2] != 3 {
		t.Fatalf("embedding output shape %v", y.Shape)
	}
	// Both position (0,1) and (1,0) looked up id 2 — identical rows.
	for d := 0; d < 3; d++ {
		if y.Data[1*3+d] != y.Data[2*3+d] {
			t.Fatal("same id should produce the same vector")
		}
	}
	// Gradient: token 2 appears twice; its row accumulates 2x.
	grad := NewTensor(2, 2, 3)
	for i := range grad.Data {
		grad.Data[i] = 1
	}
	emb.W.Grad.Zero()
	emb.Backward(grad)
	for d := 0; d < 3; d++ {
		if emb.W.Grad.Data[2*3+d] != 2 {
			t.Fatalf("token-2 grad = %v, want 2", emb.W.Grad.Data[2*3+d])
		}
		if emb.W.Grad.Data[1*3+d] != 0 {
			t.Fatal("unused token should have zero gradient")
		}
	}
}

func TestEmbeddingPanicsOnBadId(t *testing.T) {
	rng := stats.NewRNG(25)
	emb := NewEmbedding(3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on out-of-range id")
		}
	}()
	emb.Forward(FromSlice([]float64{5}, 1, 1))
}

func TestDropoutTrainEvalModes(t *testing.T) {
	rng := stats.NewRNG(26)
	d := NewDropout(0.5, rng)
	x := randTensor(rng, 10, 20)

	// Training: some units zeroed, survivors scaled by 1/keep.
	y := d.Forward(x)
	zeros, scaled := 0, 0
	for i := range y.Data {
		switch {
		case y.Data[i] == 0 && x.Data[i] != 0:
			zeros++
		case y.Data[i] != 0:
			if math.Abs(y.Data[i]-2*x.Data[i]) > 1e-12 {
				t.Fatalf("survivor not scaled: %v vs %v", y.Data[i], x.Data[i])
			}
			scaled++
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatalf("dropout should both drop and keep: %d/%d", zeros, scaled)
	}
	// Gradient uses the same mask.
	ones := NewTensor(x.Shape...)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	g := d.Backward(ones)
	for i := range g.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) && x.Data[i] != 0 {
			t.Fatal("gradient mask mismatched forward mask")
		}
	}

	// Eval: identity.
	d.SetTraining(false)
	y2 := d.Forward(x)
	for i := range y2.Data {
		if y2.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDropout(1, stats.NewRNG(1))
}

func TestMobileNetStyleBlockLearns(t *testing.T) {
	// A depthwise-separable block (depthwise 3x3 + pointwise 1x1) over
	// a small synthetic image task must train end-to-end.
	rng := stats.NewRNG(27)
	model := NewSequential(
		NewConv2D(1, 4, 3, rng),
		&ReLU{},
		NewDepthwiseConv2D(4, 3, rng),
		NewConv2D(4, 8, 1, rng), // pointwise
		&ReLU{},
		&GlobalAvgPool2D{},
		NewDense(8, 3, rng),
	)
	opt := NewAdam(0.01)
	// Classes differ by mean intensity bands — learnable by avg-pooled
	// channels.
	const side = 6
	makeBatch := func(n int) (*Tensor, []int) {
		x := NewTensor(n, 1, side, side)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := i % 3
			labels[i] = c
			for k := 0; k < side*side; k++ {
				x.Data[i*side*side+k] = float64(c) + rng.Gaussian(0, 0.3)
			}
		}
		return x, labels
	}
	for epoch := 0; epoch < 60; epoch++ {
		x, labels := makeBatch(30)
		_, grad := SoftmaxCrossEntropy(model.Forward(x), labels)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	x, labels := makeBatch(60)
	if acc := Accuracy(model.Forward(x), labels); acc < 0.9 {
		t.Errorf("depthwise-separable block accuracy = %v, want >= 0.9", acc)
	}
}

func TestEmbeddingLSTMPipeline(t *testing.T) {
	// Embedding -> LSTM -> Dense: the LSTM-Shakespeare model shape,
	// trained to classify short token sequences by their dominant
	// token.
	rng := stats.NewRNG(28)
	const vocab, dim, hidden, seq = 6, 4, 8, 5
	model := NewSequential(
		NewEmbedding(vocab, dim, rng),
		NewLSTM(dim, hidden, rng),
		NewDense(hidden, 2, rng),
	)
	opt := NewAdam(0.02)
	makeBatch := func(n int) (*Tensor, []int) {
		x := NewTensor(n, seq)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := i % 2
			labels[i] = c
			for s := 0; s < seq; s++ {
				// Class 0 draws from tokens {0,1,2}, class 1 from {3,4,5}.
				x.Data[i*seq+s] = float64(3*c + rng.Intn(3))
			}
		}
		return x, labels
	}
	for epoch := 0; epoch < 80; epoch++ {
		x, labels := makeBatch(20)
		_, grad := SoftmaxCrossEntropy(model.Forward(x), labels)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	x, labels := makeBatch(40)
	if acc := Accuracy(model.Forward(x), labels); acc < 0.95 {
		t.Errorf("embedding+LSTM accuracy = %v, want >= 0.95", acc)
	}
}
