package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param]*Tensor
}

// NewSGD returns an SGD optimizer. It panics on a non-positive learning
// rate.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic("nn: learning rate must be positive")
	}
	if momentum < 0 || momentum >= 1 {
		panic("nn: momentum must be in [0,1)")
	}
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*Tensor)}
}

// Step applies one update and clears the gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = NewTensor(p.Value.Shape...)
				s.velocity[p] = v
			}
			for i := range p.Value.Data {
				v.Data[i] = s.Momentum*v.Data[i] - s.LR*p.Grad.Data[i]
				p.Value.Data[i] += v.Data[i]
			}
		} else {
			for i := range p.Value.Data {
				p.Value.Data[i] -= s.LR * p.Grad.Data[i]
			}
		}
		p.Grad.Zero()
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]*Tensor
}

// NewAdam returns an Adam optimizer with the standard β defaults.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic("nn: learning rate must be positive")
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*Tensor), v: make(map[*Param]*Tensor),
	}
}

// Step applies one update and clears the gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = NewTensor(p.Value.Shape...)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = NewTensor(p.Value.Shape...)
			a.v[p] = v
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		p.Grad.Zero()
	}
}
