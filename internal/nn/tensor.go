// Package nn is a from-scratch neural-network library: dense tensors,
// layer-based reverse-mode differentiation, the layer types the paper's
// workloads need (fully-connected, convolutional, pooling, recurrent),
// cross-entropy and MSE losses, and SGD/Adam optimizers.
//
// It exists for two reasons: (1) the examples train real models
// federatedly end-to-end, demonstrating that the simulation substrate's
// learning dynamics correspond to an actual implementation; (2) the ABS
// baseline (paper reference [49]) requires a deep-RL agent, whose DQN
// is built on this package.
//
// The library is deliberately simple — float64 everywhere, no
// vectorization beyond what the compiler does — because its role is
// correctness and clarity, not throughput.
package nn

import "fmt"

// Tensor is a dense row-major multi-dimensional array.
type Tensor struct {
	Data  []float64
	Shape []int
}

// NewTensor allocates a zero tensor of the given shape. It panics on an
// empty shape or non-positive dimensions.
func NewTensor(shape ...int) *Tensor {
	if len(shape) == 0 {
		panic("nn: tensor needs at least one dimension")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("nn: tensor dimensions must be positive")
		}
		n *= d
	}
	return &Tensor{Data: make([]float64, n), Shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor of the given shape (data is not
// copied). It panics if the size does not match.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("nn: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// At2 reads element (i, j) of a 2-D tensor.
func (t *Tensor) At2(i, j int) float64 { return t.Data[i*t.Shape[1]+j] }

// Set2 writes element (i, j) of a 2-D tensor.
func (t *Tensor) Set2(i, j int, v float64) { t.Data[i*t.Shape[1]+j] = v }

// SameShape reports whether two tensors share a shape.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// AddInto accumulates src into dst element-wise. It panics on shape
// mismatch.
func AddInto(dst, src *Tensor) {
	if len(dst.Data) != len(src.Data) {
		panic("nn: AddInto size mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// MatMul computes C = A·B for 2-D tensors [m,k]×[k,n] → [m,n].
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic("nn: MatMul shape mismatch")
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := NewTensor(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: Transpose needs a 2-D tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := NewTensor(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
