package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"fedgpo/internal/stats"
)

// Sequential chains layers. It implements Layer itself.
type Sequential struct{ Layers []Layer }

// NewSequential builds a model from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *Tensor) *Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs all layers in reverse.
func (s *Sequential) Backward(grad *Tensor) *Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params concatenates all layers' parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears all parameter gradients.
func (s *Sequential) ZeroGrads() {
	for _, p := range s.Params() {
		p.Grad.Zero()
	}
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [batch, classes] against integer labels, and the gradient w.r.t. the
// logits.
func SoftmaxCrossEntropy(logits *Tensor, labels []int) (loss float64, grad *Tensor) {
	if len(logits.Shape) != 2 || logits.Shape[0] != len(labels) {
		panic("nn: SoftmaxCrossEntropy shape mismatch")
	}
	batch, classes := logits.Shape[0], logits.Shape[1]
	grad = NewTensor(batch, classes)
	for n := 0; n < batch; n++ {
		row := logits.Data[n*classes : (n+1)*classes]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		logSum := math.Log(sum) + maxV
		y := labels[n]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		loss += logSum - row[y]
		for j := 0; j < classes; j++ {
			p := math.Exp(row[j] - logSum)
			g := p
			if j == y {
				g -= 1
			}
			grad.Data[n*classes+j] = g / float64(batch)
		}
	}
	return loss / float64(batch), grad
}

// MSE computes the mean squared error of pred against target and its
// gradient w.r.t. pred.
func MSE(pred, target *Tensor) (loss float64, grad *Tensor) {
	if len(pred.Data) != len(target.Data) {
		panic("nn: MSE size mismatch")
	}
	grad = NewTensor(pred.Shape...)
	n := float64(len(pred.Data))
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// MaskedMSE is MSE restricted to entries where mask is true — the DQN
// update touches only the played action's Q output.
func MaskedMSE(pred, target *Tensor, mask []bool) (loss float64, grad *Tensor) {
	if len(pred.Data) != len(target.Data) || len(mask) != len(pred.Data) {
		panic("nn: MaskedMSE size mismatch")
	}
	grad = NewTensor(pred.Shape...)
	cnt := 0.0
	for i := range pred.Data {
		if !mask[i] {
			continue
		}
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d
		cnt++
	}
	if cnt == 0 {
		return 0, grad
	}
	for i := range grad.Data {
		grad.Data[i] /= cnt
	}
	return loss / cnt, grad
}

// Accuracy computes top-1 accuracy of logits against labels.
func Accuracy(logits *Tensor, labels []int) float64 {
	batch, classes := logits.Shape[0], logits.Shape[1]
	correct := 0
	for n := 0; n < batch; n++ {
		best := 0
		for j := 1; j < classes; j++ {
			if logits.Data[n*classes+j] > logits.Data[n*classes+best] {
				best = j
			}
		}
		if best == labels[n] {
			correct++
		}
	}
	if batch == 0 {
		return 0
	}
	return float64(correct) / float64(batch)
}

// ParamSnapshot extracts a deep copy of a model's parameter values —
// the unit FedAvg aggregates.
func ParamSnapshot(m *Sequential) []*Tensor {
	ps := m.Params()
	out := make([]*Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Value.Clone()
	}
	return out
}

// LoadParams copies a snapshot into a model's parameters. It panics on
// a structural mismatch.
func LoadParams(m *Sequential, snap []*Tensor) {
	ps := m.Params()
	if len(ps) != len(snap) {
		panic("nn: parameter count mismatch")
	}
	for i, p := range ps {
		if len(p.Value.Data) != len(snap[i].Data) {
			panic("nn: parameter size mismatch")
		}
		copy(p.Value.Data, snap[i].Data)
	}
}

// FedAvg computes the sample-weighted average of parameter snapshots —
// paper Algorithm 1's server update w_{t+1} = Σ (n_k/n)·w_k.
func FedAvg(snaps [][]*Tensor, weights []float64) []*Tensor {
	if len(snaps) == 0 || len(snaps) != len(weights) {
		panic("nn: FedAvg needs matching snapshots and weights")
	}
	total := stats.Sum(weights)
	if total <= 0 {
		panic("nn: FedAvg needs positive total weight")
	}
	out := make([]*Tensor, len(snaps[0]))
	for i := range out {
		out[i] = NewTensor(snaps[0][i].Shape...)
	}
	for s, snap := range snaps {
		w := weights[s] / total
		for i, tensor := range snap {
			for j, v := range tensor.Data {
				out[i].Data[j] += w * v
			}
		}
	}
	return out
}

// EncodeParams serializes a parameter snapshot with encoding/gob — the
// payload a client uploads to the server.
func EncodeParams(snap []*Tensor) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("nn: encode params: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeParams deserializes a parameter snapshot.
func DecodeParams(data []byte) ([]*Tensor, error) {
	var snap []*Tensor
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("nn: decode params: %w", err)
	}
	return snap, nil
}
