package nn

import (
	"math"

	"fedgpo/internal/stats"
)

// DepthwiseConv2D is a depthwise 2-D convolution (one filter per input
// channel, no cross-channel mixing) with stride 1 and "same" zero
// padding — the building block of MobileNet's depthwise-separable
// architecture (paper workload MobileNet-ImageNet). Compose with a
// 1×1 Conv2D for the pointwise half.
type DepthwiseConv2D struct {
	Channels, Kernel int
	W, B             *Param
	input            *Tensor
}

// NewDepthwiseConv2D builds a depthwise convolution over `channels`
// input channels.
func NewDepthwiseConv2D(channels, kernel int, rng *stats.RNG) *DepthwiseConv2D {
	w := NewTensor(channels, kernel, kernel)
	limit := math.Sqrt(6.0 / float64(kernel*kernel*2))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return &DepthwiseConv2D{
		Channels: channels, Kernel: kernel,
		W: &Param{Name: "dwW", Value: w, Grad: NewTensor(channels, kernel, kernel)},
		B: &Param{Name: "dwB", Value: NewTensor(1, channels), Grad: NewTensor(1, channels)},
	}
}

// Forward convolves each channel with its own filter.
func (c *DepthwiseConv2D) Forward(x *Tensor) *Tensor {
	c.input = x
	b, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	pad := c.Kernel / 2
	y := NewTensor(b, c.Channels, h, w)
	for n := 0; n < b; n++ {
		for ch := 0; ch < c.Channels; ch++ {
			bias := c.B.Value.Data[ch]
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					sum := bias
					for ki := 0; ki < c.Kernel; ki++ {
						ii := i + ki - pad
						if ii < 0 || ii >= h {
							continue
						}
						for kj := 0; kj < c.Kernel; kj++ {
							jj := j + kj - pad
							if jj < 0 || jj >= w {
								continue
							}
							xv := x.Data[((n*c.Channels+ch)*h+ii)*w+jj]
							wv := c.W.Value.Data[(ch*c.Kernel+ki)*c.Kernel+kj]
							sum += xv * wv
						}
					}
					y.Data[((n*c.Channels+ch)*h+i)*w+j] = sum
				}
			}
		}
	}
	return y
}

// Backward accumulates filter/bias gradients and returns dX.
func (c *DepthwiseConv2D) Backward(grad *Tensor) *Tensor {
	x := c.input
	b, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	pad := c.Kernel / 2
	dx := NewTensor(x.Shape...)
	for n := 0; n < b; n++ {
		for ch := 0; ch < c.Channels; ch++ {
			for i := 0; i < h; i++ {
				for j := 0; j < w; j++ {
					g := grad.Data[((n*c.Channels+ch)*h+i)*w+j]
					if g == 0 {
						continue
					}
					c.B.Grad.Data[ch] += g
					for ki := 0; ki < c.Kernel; ki++ {
						ii := i + ki - pad
						if ii < 0 || ii >= h {
							continue
						}
						for kj := 0; kj < c.Kernel; kj++ {
							jj := j + kj - pad
							if jj < 0 || jj >= w {
								continue
							}
							xIdx := ((n*c.Channels+ch)*h+ii)*w + jj
							wIdx := (ch*c.Kernel+ki)*c.Kernel + kj
							c.W.Grad.Data[wIdx] += g * x.Data[xIdx]
							dx.Data[xIdx] += g * c.W.Value.Data[wIdx]
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns the depthwise filters and biases.
func (c *DepthwiseConv2D) Params() []*Param { return []*Param{c.W, c.B} }

// GlobalAvgPool2D averages each channel's spatial map to a single
// value: [batch, C, H, W] → [batch, C]. MobileNet-style classifiers end
// with it.
type GlobalAvgPool2D struct{ inShape []int }

// Forward averages over H×W per channel.
func (g *GlobalAvgPool2D) Forward(x *Tensor) *Tensor {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g.inShape = x.Shape
	y := NewTensor(b, c)
	area := float64(h * w)
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			sum := 0.0
			base := ((n*c + ch) * h) * w
			for k := 0; k < h*w; k++ {
				sum += x.Data[base+k]
			}
			y.Data[n*c+ch] = sum / area
		}
	}
	return y
}

// Backward spreads each channel gradient evenly over its spatial map.
func (g *GlobalAvgPool2D) Backward(grad *Tensor) *Tensor {
	b, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	dx := NewTensor(g.inShape...)
	area := float64(h * w)
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			gv := grad.Data[n*c+ch] / area
			base := ((n*c + ch) * h) * w
			for k := 0; k < h*w; k++ {
				dx.Data[base+k] = gv
			}
		}
	}
	return dx
}

// Params returns nil.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }

// Embedding maps integer token ids to dense vectors: input is a
// [batch, seq] tensor whose values are token ids (stored as float64),
// output is [batch, seq, dim]. The front door of the LSTM-Shakespeare
// next-character model.
type Embedding struct {
	Vocab, Dim int
	W          *Param
	ids        []int
	inShape    []int
}

// NewEmbedding builds an embedding table with N(0, 0.1) initialization.
func NewEmbedding(vocab, dim int, rng *stats.RNG) *Embedding {
	w := NewTensor(vocab, dim)
	for i := range w.Data {
		w.Data[i] = rng.Gaussian(0, 0.1)
	}
	return &Embedding{
		Vocab: vocab, Dim: dim,
		W: &Param{Name: "embW", Value: w, Grad: NewTensor(vocab, dim)},
	}
}

// Forward looks up each id's vector. Ids outside [0, Vocab) panic.
func (e *Embedding) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 2 {
		panic("nn: Embedding expects [batch, seq] ids")
	}
	b, seq := x.Shape[0], x.Shape[1]
	e.inShape = x.Shape
	e.ids = make([]int, b*seq)
	y := NewTensor(b, seq, e.Dim)
	for i, v := range x.Data {
		id := int(v)
		if id < 0 || id >= e.Vocab {
			panic("nn: embedding id out of range")
		}
		e.ids[i] = id
		copy(y.Data[i*e.Dim:(i+1)*e.Dim], e.W.Value.Data[id*e.Dim:(id+1)*e.Dim])
	}
	return y
}

// Backward scatters gradients back into the looked-up rows; the input
// gradient is zero (ids are not differentiable).
func (e *Embedding) Backward(grad *Tensor) *Tensor {
	for i, id := range e.ids {
		for d := 0; d < e.Dim; d++ {
			e.W.Grad.Data[id*e.Dim+d] += grad.Data[i*e.Dim+d]
		}
	}
	return NewTensor(e.inShape...)
}

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }

// Dropout zeroes a fraction of activations during training (inverted
// scaling keeps the expected magnitude). Call SetTraining(false) for
// evaluation.
type Dropout struct {
	Rate     float64
	rng      *stats.RNG
	training bool
	mask     []float64
}

// NewDropout builds a dropout layer with the given drop rate in [0, 1).
func NewDropout(rate float64, rng *stats.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: dropout rate must be in [0,1)")
	}
	return &Dropout{Rate: rate, rng: rng, training: true}
}

// SetTraining toggles train (drop) vs eval (identity) behaviour.
func (d *Dropout) SetTraining(t bool) { d.training = t }

// Forward applies the (inverted) dropout mask.
func (d *Dropout) Forward(x *Tensor) *Tensor {
	if !d.training || d.Rate == 0 {
		d.mask = nil
		return x
	}
	y := x.Clone()
	d.mask = make([]float64, len(y.Data))
	keep := 1 - d.Rate
	for i := range y.Data {
		if d.rng.Bernoulli(d.Rate) {
			d.mask[i] = 0
			y.Data[i] = 0
		} else {
			d.mask[i] = 1 / keep
			y.Data[i] *= 1 / keep
		}
	}
	return y
}

// Backward gates the gradient with the forward mask.
func (d *Dropout) Backward(grad *Tensor) *Tensor {
	if d.mask == nil {
		return grad
	}
	g := grad.Clone()
	for i := range g.Data {
		g.Data[i] *= d.mask[i]
	}
	return g
}

// Params returns nil.
func (d *Dropout) Params() []*Param { return nil }
