// Package telemetry is the run-metrics model shared by the whole
// stack: a serializable Metrics snapshot (per-phase timings, counters,
// per-endpoint dispatch latency histograms) and a concurrency-safe
// Collector that accumulates one. The executor, cache, coordinator and
// simulator all record into collectors; worker processes carry their
// per-job snapshots back over the wire protocol's v3 "metrics" field,
// so a remote pool is exactly as observable as an in-process one.
//
// Telemetry is observational only: nothing recorded here may influence
// a simulation's outcome, a canonical cache key, or a cached entry's
// bytes. Every Collector method is nil-safe — a nil collector records
// nothing — so instrumented code paths never branch on whether
// observability is wired up.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase names recorded by the instrumented layers. Phases are
// monotonic accumulators: seconds only ever grow within a process.
const (
	// PhasePretrain is controller construction, including the FedGPO
	// Q-table warm-up when the pretrained-controller cache misses
	// (near-zero on a snapshot hit).
	PhasePretrain = "pretrain"
	// PhaseRounds is full simulated-round execution (fl.Run's loop
	// body: observe, plan, execute, learn, feed back).
	PhaseRounds = "rounds"
	// PhaseMerge is the serial phase-3 merge inside each round
	// (straggler semantics, energy accounting, aggregation).
	PhaseMerge = "merge"
	// PhaseCacheRead / PhaseCacheWrite are run-cache I/O (lookup
	// including payload unmarshal; serialize + atomic publish).
	PhaseCacheRead  = "cacheRead"
	PhaseCacheWrite = "cacheWrite"
	// PhaseCacheDecode is the payload-unmarshal slice of a cache hit —
	// JSON bytes into the caller's value — timed separately from the
	// envelope read so decode-bound warm paths are visible. It nests
	// inside PhaseCacheRead, so the two must not be summed.
	PhaseCacheDecode = "cacheDecode"
)

// Trace levels for the opt-in RL decision traces (the CLIs'
// -trace-level flag and JobSpec.Trace field).
const (
	// TraceNone disables decision tracing (the default).
	TraceNone = ""
	// TraceDecisions records per-round RL decisions: state, masked
	// action set, chosen action, reward and Q-delta (see core package).
	TraceDecisions = "decisions"
)

// Phase is one phase's accumulated wall time and entry count.
type Phase struct {
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// Counters are the run-level event counters. The job-level pair
// (CacheHits, SimsExecuted) is counted by the executor and reconciles
// with Executor.Stats by construction: CacheHits == Stats.Hits and
// SimsExecuted == Stats.Runs. The cache-level trio (mem/disk hits,
// misses) counts individual cache reads — job results, pretrained
// snapshots and trace artifacts alike — so it may exceed the job-level
// hit count.
type Counters struct {
	// CacheHits counts jobs served from the run cache (job-level).
	CacheHits int64 `json:"cacheHits"`
	// CacheMemHits / CacheDiskHits split successful cache reads by
	// storage mode (cache-level; includes non-job artifacts).
	CacheMemHits  int64 `json:"cacheMemHits"`
	CacheDiskHits int64 `json:"cacheDiskHits"`
	// CachePayloadHits counts disk-mode reads served by the in-process
	// decoded-payload layer — the entry's payload bytes were already
	// decoded by an earlier hit, so no file was read (cache-level).
	CachePayloadHits int64 `json:"cachePayloadHits"`
	// CacheMisses counts clean cache misses: no entry exists under the
	// key in any format (cache-level).
	CacheMisses int64 `json:"cacheMisses"`
	// CacheCorrupt counts reads that found an entry but discarded it —
	// torn writes, foreign-key envelopes, undecodable payloads. Split
	// from CacheMisses so a directory quietly shedding entries is
	// distinguishable from one that never held them.
	CacheCorrupt int64 `json:"cacheCorrupt"`
	// CacheTouches counts mtime-touch syscalls flushed by the cache's
	// async toucher; CacheTouchesCoalesced counts touches absorbed by
	// an already-pending one (the syscalls the coalescing saved).
	CacheTouches          int64 `json:"cacheTouches"`
	CacheTouchesCoalesced int64 `json:"cacheTouchesCoalesced"`
	// SimsExecuted counts jobs whose body actually ran (job-level).
	SimsExecuted int64 `json:"simsExecuted"`
	// Evictions counts cache entries removed by Prune.
	Evictions int64 `json:"evictions"`
	// Retries counts worker sessions that failed and were retried on a
	// fresh session.
	Retries int64 `json:"retries"`
	// Failovers counts jobs a session gave up on (retry budget spent)
	// and handed back to the fleet for another endpoint to absorb.
	Failovers int64 `json:"failovers"`
	// PretrainRuns counts FedGPO Q-table warm-ups that actually executed
	// anywhere in the fleet (each warm-up is counted once, by the worker
	// process that ran it, and carried home over the wire like every
	// other counter). Under affinity routing a cold sweep over S
	// scenarios performs exactly S of them.
	PretrainRuns int64 `json:"pretrainRuns"`
	// AffinityHits / AffinityMisses count jobs carrying a pretrain
	// affinity key that were dispatched at (hits) or away from (misses)
	// their group's home endpoint.
	AffinityHits   int64 `json:"affinityHits"`
	AffinityMisses int64 `json:"affinityMisses"`
	// StolenJobs counts jobs an endpoint pulled from another endpoint's
	// assignment (work stealing: dead-endpoint adoption, idle-thief
	// group adoption, or snapshot-covered singles).
	StolenJobs int64 `json:"stolenJobs"`
	// SnapshotBytesShipped counts serialized pretrain-snapshot bytes the
	// coordinator pre-pushed to workers (wire protocol v5).
	SnapshotBytesShipped int64 `json:"snapshotBytesShipped"`
}

// Histogram is a log-bucketed latency distribution. Bucket i counts
// observations in [histBase·2^i, histBase·2^(i+1)); the last bucket is
// open-ended. Count and SumSeconds make the mean recoverable exactly.
type Histogram struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sumSeconds"`
	Buckets    []int64 `json:"buckets,omitempty"`
}

// histBase is the lower edge of bucket 0 (1 ms); histBuckets spans
// 1 ms .. ~17 min, wide enough for multi-minute simulation cells.
const (
	histBase    = time.Millisecond
	histBuckets = 20
)

// observe records one duration.
func (h *Histogram) observe(d time.Duration) {
	if len(h.Buckets) == 0 {
		h.Buckets = make([]int64, histBuckets)
	}
	i := 0
	for edge := histBase; d >= 2*edge && i < histBuckets-1; edge *= 2 {
		i++
	}
	if d < histBase {
		i = 0
	}
	h.Buckets[i]++
	h.Count++
	h.SumSeconds += d.Seconds()
}

// merge folds another histogram into h.
func (h *Histogram) merge(o Histogram) {
	h.Count += o.Count
	h.SumSeconds += o.SumSeconds
	if len(o.Buckets) == 0 {
		return
	}
	if len(h.Buckets) < len(o.Buckets) {
		b := make([]int64, len(o.Buckets))
		copy(b, h.Buckets)
		h.Buckets = b
	}
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
}

// MeanSeconds returns the mean observed latency (0 when empty).
func (h Histogram) MeanSeconds() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumSeconds / float64(h.Count)
}

// Endpoint is one worker endpoint's dispatch view: the coordinator's
// counters plus the request round-trip latency histogram (Send of the
// request to Recv of its response, so it includes the cell's execution
// time on the worker).
type Endpoint struct {
	Endpoint   string `json:"endpoint"`
	Dispatched int64  `json:"dispatched"`
	Retried    int64  `json:"retried"`
	Failed     int64  `json:"failed"`
	// BytesSent / BytesRecv are raw wire bytes through the endpoint's
	// sessions, handshakes and framing included.
	BytesSent int64 `json:"bytesSent,omitempty"`
	BytesRecv int64 `json:"bytesRecv,omitempty"`
	// Frames counts request frames; Specs counts the specs inside them.
	// Specs/Frames is the realized batch density (1.0 on a v3 session,
	// up to the coordinator's fair-share batch on v4).
	Frames int64 `json:"frames,omitempty"`
	Specs  int64 `json:"specs,omitempty"`
	// AffinityHits / AffinityMisses split the endpoint's
	// affinity-keyed jobs by whether they ran at their group's home;
	// Stolen counts jobs this endpoint pulled from another endpoint's
	// assignment; SnapBytesSent counts pretrain-snapshot bytes
	// pre-pushed to this endpoint.
	AffinityHits   int64     `json:"affinityHits,omitempty"`
	AffinityMisses int64     `json:"affinityMisses,omitempty"`
	Stolen         int64     `json:"stolen,omitempty"`
	SnapBytesSent  int64     `json:"snapBytesSent,omitempty"`
	Latency        Histogram `json:"latency"`
}

// EndpointCounts carries one endpoint's coordinator-authoritative
// dispatch counters into SetEndpointCounts — everything in Endpoint
// except the name and the latency histogram.
type EndpointCounts struct {
	Dispatched, Retried, Failed  int64
	BytesSent, BytesRecv         int64
	Frames, Specs                int64
	AffinityHits, AffinityMisses int64
	Stolen, SnapBytesSent        int64
}

// Metrics is one serializable telemetry snapshot: what the CLIs write
// to -metrics-out and what a worker attaches to each wire response.
// All fields are plain data; a Metrics value never changes canonical
// keys or cached bytes (results exclude their telemetry from JSON).
type Metrics struct {
	Phases    map[string]Phase `json:"phases,omitempty"`
	Counters  Counters         `json:"counters"`
	Endpoints []Endpoint       `json:"endpoints,omitempty"`
}

// Empty reports whether the snapshot recorded nothing at all.
func (m Metrics) Empty() bool {
	return len(m.Phases) == 0 && len(m.Endpoints) == 0 && m.Counters == Counters{}
}

// SetEndpointCounts overwrites one endpoint's dispatch counters,
// creating the entry if needed — used when folding the coordinator's
// authoritative EndpointStats into a snapshot so the metrics artifact
// always reconciles with Executor.Stats.
func (m *Metrics) SetEndpointCounts(name string, c EndpointCounts) {
	set := func(ep *Endpoint) {
		ep.Dispatched = c.Dispatched
		ep.Retried = c.Retried
		ep.Failed = c.Failed
		ep.BytesSent = c.BytesSent
		ep.BytesRecv = c.BytesRecv
		ep.Frames = c.Frames
		ep.Specs = c.Specs
		ep.AffinityHits = c.AffinityHits
		ep.AffinityMisses = c.AffinityMisses
		ep.Stolen = c.Stolen
		ep.SnapBytesSent = c.SnapBytesSent
	}
	for i := range m.Endpoints {
		if m.Endpoints[i].Endpoint == name {
			set(&m.Endpoints[i])
			return
		}
	}
	ep := Endpoint{Endpoint: name}
	set(&ep)
	m.Endpoints = append(m.Endpoints, ep)
	sort.Slice(m.Endpoints, func(i, j int) bool {
		return m.Endpoints[i].Endpoint < m.Endpoints[j].Endpoint
	})
}

// Summary renders a compact human-readable view (fedgpo-report -v).
func (m Metrics) Summary() string {
	var b strings.Builder
	c := m.Counters
	fmt.Fprintf(&b, "telemetry: %d sims executed, %d cache hits (%d mem / %d payload / %d disk reads, %d misses, %d corrupt), %d evictions, %d retries, %d failovers\n",
		c.SimsExecuted, c.CacheHits, c.CacheMemHits, c.CachePayloadHits, c.CacheDiskHits,
		c.CacheMisses, c.CacheCorrupt, c.Evictions, c.Retries, c.Failovers)
	if c.CacheTouches+c.CacheTouchesCoalesced > 0 {
		fmt.Fprintf(&b, "  cache touches: %d flushed, %d coalesced\n",
			c.CacheTouches, c.CacheTouchesCoalesced)
	}
	if c.PretrainRuns+c.AffinityHits+c.AffinityMisses+c.StolenJobs+c.SnapshotBytesShipped > 0 {
		fmt.Fprintf(&b, "  scheduling: %d fleet pretrain runs, %d affinity hits / %d misses, %d stolen, %d snapshot B shipped\n",
			c.PretrainRuns, c.AffinityHits, c.AffinityMisses, c.StolenJobs, c.SnapshotBytesShipped)
	}
	if len(m.Phases) > 0 {
		names := make([]string, 0, len(m.Phases))
		for n := range m.Phases {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("  phases:")
		for _, n := range names {
			p := m.Phases[n]
			fmt.Fprintf(&b, " %s=%.3fs/%d", n, p.Seconds, p.Count)
		}
		b.WriteByte('\n')
	}
	for _, ep := range m.Endpoints {
		fmt.Fprintf(&b, "  endpoint %s: %d dispatched, %d retried, %d failed, mean dispatch latency %.1fms%s\n",
			ep.Endpoint, ep.Dispatched, ep.Retried, ep.Failed, 1000*ep.Latency.MeanSeconds(), ep.wireSummary())
	}
	return b.String()
}

// wireSummary renders the wire-level counters as a summary-line
// suffix, empty when the endpoint moved no frames (an in-process pool
// has no wire).
func (ep Endpoint) wireSummary() string {
	var s string
	if ep.Frames > 0 {
		s = fmt.Sprintf(", %d frames (%.1f specs/frame), %d B sent / %d B recv",
			ep.Frames, float64(ep.Specs)/float64(ep.Frames), ep.BytesSent, ep.BytesRecv)
	}
	if ep.AffinityHits+ep.AffinityMisses+ep.Stolen > 0 {
		s += fmt.Sprintf(", %d/%d affinity hits, %d stolen",
			ep.AffinityHits, ep.AffinityHits+ep.AffinityMisses, ep.Stolen)
	}
	if ep.SnapBytesSent > 0 {
		s += fmt.Sprintf(", %d snap B pushed", ep.SnapBytesSent)
	}
	return s
}

// Collector accumulates a Metrics snapshot. It is safe for concurrent
// use, and every method is nil-safe: instrumented code records
// unconditionally and a nil collector drops everything.
type Collector struct {
	mu        sync.Mutex
	phases    map[string]Phase
	counters  Counters
	endpoints map[string]*Endpoint
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		phases:    make(map[string]Phase),
		endpoints: make(map[string]*Endpoint),
	}
}

// RecordPhase accumulates one timed entry into a named phase.
func (c *Collector) RecordPhase(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	p := c.phases[name]
	p.Seconds += d.Seconds()
	p.Count++
	c.phases[name] = p
	c.mu.Unlock()
}

// Count mutates the counters under the collector's lock; fn must not
// block or call back into the collector.
func (c *Collector) Count(fn func(*Counters)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	fn(&c.counters)
	c.mu.Unlock()
}

// RecordLatency observes one request round-trip on an endpoint's
// dispatch latency histogram.
func (c *Collector) RecordLatency(endpoint string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	ep, ok := c.endpoints[endpoint]
	if !ok {
		ep = &Endpoint{Endpoint: endpoint}
		c.endpoints[endpoint] = ep
	}
	ep.Latency.observe(d)
	c.mu.Unlock()
}

// Add merges a snapshot into the collector: phases and counters sum,
// endpoint histograms merge by name. It is how a worker's per-job
// metrics (carried on the wire) fold into the coordinator's run view.
func (c *Collector) Add(m Metrics) {
	if c == nil {
		return
	}
	c.mu.Lock()
	for name, p := range m.Phases {
		q := c.phases[name]
		q.Seconds += p.Seconds
		q.Count += p.Count
		c.phases[name] = q
	}
	cc := &c.counters
	mc := m.Counters
	cc.CacheHits += mc.CacheHits
	cc.CacheMemHits += mc.CacheMemHits
	cc.CacheDiskHits += mc.CacheDiskHits
	cc.CachePayloadHits += mc.CachePayloadHits
	cc.CacheMisses += mc.CacheMisses
	cc.CacheCorrupt += mc.CacheCorrupt
	cc.CacheTouches += mc.CacheTouches
	cc.CacheTouchesCoalesced += mc.CacheTouchesCoalesced
	cc.SimsExecuted += mc.SimsExecuted
	cc.Evictions += mc.Evictions
	cc.Retries += mc.Retries
	cc.Failovers += mc.Failovers
	cc.PretrainRuns += mc.PretrainRuns
	cc.AffinityHits += mc.AffinityHits
	cc.AffinityMisses += mc.AffinityMisses
	cc.StolenJobs += mc.StolenJobs
	cc.SnapshotBytesShipped += mc.SnapshotBytesShipped
	for _, mep := range m.Endpoints {
		ep, ok := c.endpoints[mep.Endpoint]
		if !ok {
			ep = &Endpoint{Endpoint: mep.Endpoint}
			c.endpoints[mep.Endpoint] = ep
		}
		ep.Dispatched += mep.Dispatched
		ep.Retried += mep.Retried
		ep.Failed += mep.Failed
		ep.BytesSent += mep.BytesSent
		ep.BytesRecv += mep.BytesRecv
		ep.Frames += mep.Frames
		ep.Specs += mep.Specs
		ep.AffinityHits += mep.AffinityHits
		ep.AffinityMisses += mep.AffinityMisses
		ep.Stolen += mep.Stolen
		ep.SnapBytesSent += mep.SnapBytesSent
		ep.Latency.merge(mep.Latency)
	}
	c.mu.Unlock()
}

// Snapshot returns a deep copy of the accumulated metrics, with
// endpoints in name order so the JSON encoding is deterministic.
// A nil collector snapshots to the zero Metrics.
func (c *Collector) Snapshot() Metrics {
	if c == nil {
		return Metrics{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := Metrics{Counters: c.counters}
	if len(c.phases) > 0 {
		m.Phases = make(map[string]Phase, len(c.phases))
		for n, p := range c.phases {
			m.Phases[n] = p
		}
	}
	for _, ep := range c.endpoints {
		cp := *ep
		cp.Latency.Buckets = append([]int64(nil), ep.Latency.Buckets...)
		m.Endpoints = append(m.Endpoints, cp)
	}
	sort.Slice(m.Endpoints, func(i, j int) bool {
		return m.Endpoints[i].Endpoint < m.Endpoints[j].Endpoint
	})
	return m
}
