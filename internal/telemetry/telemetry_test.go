package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

// A nil collector must accept every call and snapshot to zero — the
// instrumented layers record unconditionally.
func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.RecordPhase(PhaseRounds, time.Second)
	c.Count(func(cc *Counters) { cc.SimsExecuted++ })
	c.RecordLatency("tcp:x", time.Millisecond)
	c.Add(Metrics{Counters: Counters{CacheHits: 3}})
	if m := c.Snapshot(); !m.Empty() {
		t.Fatalf("nil collector snapshot not empty: %+v", m)
	}
}

func TestCollectorAccumulatesAndMerges(t *testing.T) {
	c := NewCollector()
	c.RecordPhase(PhaseRounds, 2*time.Second)
	c.RecordPhase(PhaseRounds, time.Second)
	c.RecordPhase(PhaseMerge, 500*time.Millisecond)
	c.Count(func(cc *Counters) { cc.SimsExecuted += 2; cc.CacheHits++ })
	c.RecordLatency("tcp:b", 10*time.Millisecond)
	c.RecordLatency("tcp:a", 20*time.Millisecond)

	// Fold in a worker-side snapshot, as pump does with wire metrics.
	worker := NewCollector()
	worker.RecordPhase(PhaseRounds, time.Second)
	worker.Count(func(cc *Counters) { cc.CacheMisses++ })
	worker.RecordLatency("tcp:a", 40*time.Millisecond)
	c.Add(worker.Snapshot())

	m := c.Snapshot()
	if got := m.Phases[PhaseRounds]; got.Seconds != 4 || got.Count != 3 {
		t.Fatalf("rounds phase = %+v, want 4s over 3 entries", got)
	}
	if m.Counters.SimsExecuted != 2 || m.Counters.CacheHits != 1 || m.Counters.CacheMisses != 1 {
		t.Fatalf("counters = %+v", m.Counters)
	}
	if len(m.Endpoints) != 2 || m.Endpoints[0].Endpoint != "tcp:a" || m.Endpoints[1].Endpoint != "tcp:b" {
		t.Fatalf("endpoints not sorted by name: %+v", m.Endpoints)
	}
	a := m.Endpoints[0].Latency
	if a.Count != 2 || a.MeanSeconds() != 0.03 {
		t.Fatalf("tcp:a latency = %+v (mean %v)", a, a.MeanSeconds())
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	c := NewCollector()
	c.RecordLatency("ep", time.Millisecond)
	m := c.Snapshot()
	m.Endpoints[0].Latency.Buckets[0] = 99
	if got := c.Snapshot().Endpoints[0].Latency.Buckets[0]; got != 1 {
		t.Fatalf("snapshot aliases collector state: bucket = %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.observe(time.Microsecond)        // below base -> bucket 0
	h.observe(time.Millisecond)        // [1ms,2ms) -> bucket 0
	h.observe(3 * time.Millisecond)    // [2ms,4ms) -> bucket 1
	h.observe(1000 * time.Hour)        // beyond range -> last bucket
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[histBuckets-1] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Count != 4 {
		t.Fatalf("count = %d", h.Count)
	}
}

func TestSetEndpointCounts(t *testing.T) {
	var m Metrics
	m.SetEndpointCounts("tcp:b", EndpointCounts{Dispatched: 5, Retried: 1})
	m.SetEndpointCounts("tcp:a", EndpointCounts{Dispatched: 3, Failed: 1})
	// Overwrite, not append; wire counters land too.
	m.SetEndpointCounts("tcp:b", EndpointCounts{Dispatched: 6, Retried: 1, BytesSent: 100, BytesRecv: 200, Frames: 2, Specs: 6})
	if len(m.Endpoints) != 2 || m.Endpoints[0].Endpoint != "tcp:a" || m.Endpoints[1].Dispatched != 6 {
		t.Fatalf("endpoints = %+v", m.Endpoints)
	}
	if ep := m.Endpoints[1]; ep.BytesSent != 100 || ep.BytesRecv != 200 || ep.Frames != 2 || ep.Specs != 6 {
		t.Fatalf("wire counters lost: %+v", ep)
	}
}

// The JSON encoding of a snapshot must be deterministic (sorted
// endpoints, stable struct fields) — it lands in -metrics-out files
// that CI diffs and asserts on with jq.
func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		c := NewCollector()
		c.RecordLatency("tcp:z", time.Millisecond)
		c.RecordLatency("tcp:a", time.Millisecond)
		c.RecordPhase(PhasePretrain, time.Second)
		b, err := json.Marshal(c.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := build(), build(); string(a) != string(b) {
		t.Fatalf("snapshot JSON unstable:\n%s\n%s", a, b)
	}
}
