package core

import (
	"encoding/json"
	"math"
	"testing"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

// smallConfig builds a fast 20-device deployment for edge-case runs.
func smallConfig(seed int64) fl.Config {
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(20))
	return fl.Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.None(),
		MaxRounds:              50,
		AggregationOverheadSec: 10,
		Seed:                   seed,
		StopAtConvergence:      true,
	}
}

func assertFinite(t *testing.T, label string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s is not finite: %v", label, v)
	}
}

// Regression test for the zero-aggregation edge: a deadline below
// every participant's round time drops all updates every round, so the
// convergence model sees K=0, zero data fraction and an empty
// aggregate set for the entire run. The audited paths —
// aggregateInputs (empty-set skew/coverage), the convergence tracker,
// and both FedGPO controllers (cold learning and pretrained/frozen) —
// must carry the run to MaxRounds without panicking or emitting
// NaN/Inf energy, accuracy, or PPW.
func TestImpossibleDeadlineZeroAggregationRuns(t *testing.T) {
	cfg := smallConfig(1)
	cfg.DeadlineSec = 0.001

	warmCfg := smallConfig(997)
	warmCfg.DeadlineSec = 0.001
	warmCfg.MaxRounds = 30

	controllers := map[string]fl.Controller{
		"cold": New(DefaultConfig()),
		"warm": Pretrained(DefaultConfig(), warmCfg),
	}
	for name, ctrl := range controllers {
		res := fl.Run(cfg, ctrl)
		if res.Converged {
			t.Errorf("%s: converged with zero aggregated data", name)
		}
		if res.RoundsExecuted != cfg.MaxRounds {
			t.Errorf("%s: executed %d rounds, want the full %d", name, res.RoundsExecuted, cfg.MaxRounds)
		}
		assertFinite(t, name+" FinalAccuracy", res.FinalAccuracy)
		assertFinite(t, name+" TimeToConvergenceSec", res.TimeToConvergenceSec)
		assertFinite(t, name+" EnergyToConvergenceJ", res.EnergyToConvergenceJ)
		assertFinite(t, name+" PPW", res.PPW)
		assertFinite(t, name+" AvgRoundSeconds", res.AvgRoundSeconds)
		if res.EnergyToConvergenceJ <= 0 {
			t.Errorf("%s: all-dropped rounds still burn energy, got %v", name, res.EnergyToConvergenceJ)
		}
		for _, rec := range res.History {
			if rec.AggregatedK != 0 {
				t.Fatalf("%s: round %d aggregated %d updates past an impossible deadline",
					name, rec.Round, rec.AggregatedK)
			}
			assertFinite(t, name+" round accuracy", rec.Accuracy)
			assertFinite(t, name+" round energy", rec.EnergyJ)
		}
		for cat, e := range res.EnergyByCategory {
			assertFinite(t, name+" energy["+cat.String()+"]", e)
		}
	}
}

// A controller restored from a snapshot must behave identically no
// matter whether the snapshot came straight from the warm-up or
// through a JSON round trip (the pretrained-controller cache stores
// snapshots as JSON) — and two restorations of the same snapshot must
// produce bit-identical evaluation runs.
func TestSnapshotRoundTripBehavesIdentically(t *testing.T) {
	warmCfg := smallConfig(997)
	warmCfg.MaxRounds = 40
	cfg := DefaultConfig()
	snap := PretrainSnapshot(cfg, warmCfg)
	if len(snap.LocalTables) == 0 || snap.KTable == nil {
		t.Fatal("warm-up produced an empty snapshot")
	}
	if !snap.Frozen {
		t.Fatal("pretrained snapshot must be frozen")
	}

	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var viaJSON Snapshot
	if err := json.Unmarshal(b, &viaJSON); err != nil {
		t.Fatal(err)
	}

	evalCfg := smallConfig(1)
	runWith := func(s Snapshot) string {
		res := fl.Run(evalCfg, FromSnapshot(cfg, s))
		res.ControllerOverheadSec = 0 // wall-clock, never reproducible
		out, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	direct := runWith(snap)
	if again := runWith(snap); again != direct {
		t.Error("two restorations of the same snapshot diverged")
	}
	if roundTripped := runWith(viaJSON); roundTripped != direct {
		t.Error("JSON round-tripped snapshot behaves differently from the original")
	}

	frozen, _ := FromSnapshot(cfg, snap).Frozen()
	if !frozen {
		t.Error("restored controller must come back frozen")
	}
}
