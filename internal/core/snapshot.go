package core

import (
	"sort"

	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/rl"
)

// Snapshot is the serializable learned state of a FedGPO controller:
// every Q-table, the energy normalizers' references, the feasibility
// context (observed deadline plus the profile behind each table, so
// masks can be recomputed if the deadline changes), and the freeze
// state. It is what the experiment runtime's pretrained-controller
// cache stores — building the snapshot once per scenario and restoring
// it for every figure/table cell replaces re-running the Q-table
// warm-up per cell.
//
// A snapshot round-trips through JSON losslessly (Go's float64 JSON
// encoding is shortest-round-trip), so a controller restored from a
// disk-cached snapshot behaves identically to one restored from the
// in-memory snapshot that produced it.
//
// Deliberately not captured: the controller RNG (restored controllers
// get a fresh deterministic stream — after FinishLearning exploration
// is off, so the stream only seeds Q rows for states the warm-up never
// visited), wall-clock overhead counters, and the reward history
// (which belongs to the warm-up run, not the evaluation run).
type Snapshot struct {
	LocalTables   map[string]rl.TableSnapshot            `json:"localTables"`
	KTable        *rl.TableSnapshot                      `json:"kTable,omitempty"`
	TableProfiles map[string]device.Profile              `json:"tableProfiles"`
	GlobalNorm    NormalizerSnapshot                     `json:"globalNorm"`
	KLocalNorm    NormalizerSnapshot                     `json:"kLocalNorm"`
	LocalNorm     map[device.Category]NormalizerSnapshot `json:"localNorm"`
	Deadline      float64                                `json:"deadline"`
	Frozen        bool                                   `json:"frozen"`
	FrozenRound   int                                    `json:"frozenRound"`
}

// Snapshot captures the controller's learned state.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		LocalTables:   make(map[string]rl.TableSnapshot, len(c.localTables)),
		TableProfiles: make(map[string]device.Profile, len(c.tableProfiles)),
		GlobalNorm:    c.globalNorm.Snapshot(),
		KLocalNorm:    c.kLocalNorm.Snapshot(),
		LocalNorm:     make(map[device.Category]NormalizerSnapshot, len(c.localNorm)),
		Deadline:      c.deadline,
		Frozen:        c.frozen,
		FrozenRound:   c.frozenRound,
	}
	for key, t := range c.localTables {
		s.LocalTables[key] = t.Snapshot()
	}
	for key, p := range c.tableProfiles {
		s.TableProfiles[key] = p
	}
	if c.kTable != nil {
		kt := c.kTable.Snapshot()
		s.KTable = &kt
	}
	for cat, n := range c.localNorm {
		s.LocalNorm[cat] = n.Snapshot()
	}
	return s
}

// FromSnapshot rebuilds a controller under the given configuration
// from a captured snapshot. Tables are restored in sorted key order so
// each receives its RNG stream deterministically regardless of map
// iteration; restoring the same snapshot therefore always yields the
// same controller behavior.
func FromSnapshot(cfg Config, snap Snapshot) *Controller {
	c := New(cfg)
	keys := make([]string, 0, len(snap.LocalTables))
	for key := range snap.LocalTables {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		c.localTables[key] = rl.Restore(len(c.localActions), c.cfg.RL, c.rng.Split(),
			snap.LocalTables[key])
		if p, ok := snap.TableProfiles[key]; ok {
			c.tableProfiles[key] = p
		}
	}
	if snap.KTable != nil {
		c.kTable = rl.Restore(len(c.kActions), c.cfg.RL, c.rng.Split(), *snap.KTable)
	}
	c.globalNorm = RestoreNormalizer(snap.GlobalNorm)
	c.kLocalNorm = RestoreNormalizer(snap.KLocalNorm)
	for cat, n := range snap.LocalNorm {
		c.localNorm[cat] = RestoreNormalizer(n)
	}
	c.deadline = snap.Deadline
	c.frozen = snap.Frozen
	c.frozenRound = snap.FrozenRound
	return c
}

// PretrainSnapshot runs the Pretrained warm-up and captures the
// resulting controller state — the producer side of the experiment
// runtime's pretrained-controller cache.
func PretrainSnapshot(cfg Config, warmup fl.Config) Snapshot {
	return Pretrained(cfg, warmup).Snapshot()
}
