package core

import "fedgpo/internal/fl"

// Pretrained builds a FedGPO controller whose Q-tables have already
// been trained on a warm-up run of the given deployment, then frozen to
// pure exploitation.
//
// This mirrors the paper's deployment model: §5.4 reports that the
// shared Q-tables converge within 30–40 aggregation rounds, that FedGPO
// runs ~24% below Fixed (Best) efficiency during that learning phase,
// and that the headline gains materialize "after the convergence". The
// shared tables are server-side infrastructure that persists across FL
// tasks, so a production FedGPO enters any given training run with the
// learning phase already amortized. Experiments evaluate both variants:
// Pretrained (steady state, the paper's headline comparison) and a cold
// New controller (which pays the learning phase inside the measured
// run).
//
// warmup is the deployment to learn on — typically the same scenario
// with a different seed. The warm-up runs without stopping at
// convergence so the tables see the full accuracy trajectory.
func Pretrained(cfg Config, warmup fl.Config) *Controller {
	ctrl := New(cfg)
	// Learn with exploration enabled for the entire warm-up.
	ctrl.cfg.FreezeAfterRounds = 0
	ctrl.cfg.FreezeThreshold = 0
	w := warmup
	w.StopAtConvergence = false
	fl.Run(w, ctrl)
	ctrl.FinishLearning()
	// Restore the caller's freeze policy for any further learning.
	ctrl.cfg.FreezeAfterRounds = cfg.FreezeAfterRounds
	ctrl.cfg.FreezeThreshold = cfg.FreezeThreshold
	return ctrl
}
