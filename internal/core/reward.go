package core

import "fedgpo/internal/stats"

// RewardConfig weights the reward terms of paper Eq. 1: α scales the
// absolute accuracy term, β the round-over-round accuracy improvement.
type RewardConfig struct {
	Alpha, Beta float64
}

// DefaultRewardConfig returns α=0.1, β=16. The paper selects α and β by
// sensitivity analysis without publishing values, so the calibration
// here is our own, chosen to make the three Eq. 1 terms statistically
// balanced for tabular Q-learning:
//
//   - The improvement term uses the *fraction of the remaining accuracy
//     gap closed* (see Reward), which is stationary across a training
//     run — a raw accuracy delta shrinks a hundredfold between round 5
//     and round 100 and would keep reshuffling Q rankings. β=20 turns
//     the typical 1–4%-of-gap round progress into 20–80 reward units.
//   - Energy terms are EMA-normalized to ~10 nominal each, so they
//     decide between configurations with similar convergence value.
//   - α=0.1 keeps the absolute-accuracy term a gentle tiebreak (≤10
//     units over a whole run) rather than a drifting bias.
//
// An ablation bench sweeps α and β.
func DefaultRewardConfig() RewardConfig { return RewardConfig{Alpha: 0.1, Beta: 16} }

// Reward implements paper Eq. 1. Accuracies are in percent (0–100);
// energy terms arrive pre-normalized (dimensionless, ~10 nominal):
//
//	if R_accuracy − R_accuracy_prev <= 0:
//	    R = R_accuracy − 100
//	else:
//	    R = −R_energy_global − R_energy_local
//	        + α·R_accuracy + β·improvement
//
// where improvement is the paper's (R_accuracy − R_accuracy_prev)
// expressed as the percentage of the remaining accuracy headroom the
// round closed, 100·(acc − prev)/(100 − prev). The paper substitutes
// time-to-convergence with "the improvement in accuracy"; measuring the
// improvement relative to the remaining gap keeps that signal the same
// size at round 5 and round 100, which tabular Q-learning with a high
// learning rate needs (a raw percentage-point delta decays throughout
// training and would constantly reorder Q values stamped at different
// rounds).
//
// The first branch punishes any round that fails to improve accuracy
// with a large negative reward, which is what guarantees FedGPO never
// trades model quality for energy.
func Reward(cfg RewardConfig, accPct, prevAccPct, energyGlobal, energyLocal float64) float64 {
	if accPct-prevAccPct <= 0 {
		return accPct - 100
	}
	headroom := 100 - prevAccPct
	if headroom < 1e-9 {
		headroom = 1e-9
	}
	improvement := 100 * (accPct - prevAccPct) / headroom
	return -energyGlobal - energyLocal + cfg.Alpha*accPct + cfg.Beta*improvement
}

// EnergyNormalizer rescales raw joule measurements into the
// dimensionless ~10-nominal range Eq. 1's energy terms use: a round
// that burns the reference energy scores 10; cheaper rounds score
// proportionally less. The reference is an exponential moving average
// over the first FreezeAfter observations and is then locked. The lock
// matters: a continuously adapting reference would re-center on
// whatever the policy currently does, erasing the penalty difference
// between sustained policy choices (e.g. K=15 vs K=10, which differ by
// a constant 1.5× in round energy) — only transient deviations would
// ever be punished. The paper does not specify its normalization; this
// choice keeps the energy terms an absolute (post-calibration) scale.
type EnergyNormalizer struct {
	ema         *stats.EMA
	adds        int
	freezeAfter int
}

// energyNormFreezeAfter is the number of observations the reference
// averages before locking — sized to the 30–40-round learning phase
// (each round contributes several local observations).
const energyNormFreezeAfter = 60

// NewEnergyNormalizer returns a normalizer with a 0.2 smoothing factor
// (reacts within a few rounds) that locks its reference after the
// learning phase.
func NewEnergyNormalizer() *EnergyNormalizer {
	return &EnergyNormalizer{ema: stats.NewEMA(0.2), freezeAfter: energyNormFreezeAfter}
}

// Normalize folds the observation into the (unlocked) average and
// returns the normalized value (nominal 10 at the reference energy).
func (n *EnergyNormalizer) Normalize(joules float64) float64 {
	if joules < 0 {
		joules = 0
	}
	if n.adds < n.freezeAfter {
		n.ema.Add(joules)
		n.adds++
	}
	avg := n.ema.Value()
	if avg <= 0 {
		return 0
	}
	return 10 * joules / avg
}

// Value returns the current reference average in joules.
func (n *EnergyNormalizer) Value() float64 { return n.ema.Value() }

// NormalizerSnapshot is the serializable state of an EnergyNormalizer:
// the reference average and how many observations it has absorbed
// (which determines whether it is still adapting or locked).
type NormalizerSnapshot struct {
	Value float64 `json:"value"`
	Init  bool    `json:"init"`
	Adds  int     `json:"adds"`
}

// Snapshot captures the normalizer's state.
func (n *EnergyNormalizer) Snapshot() NormalizerSnapshot {
	v, init := n.ema.State()
	return NormalizerSnapshot{Value: v, Init: init, Adds: n.adds}
}

// RestoreNormalizer rebuilds a normalizer from a snapshot.
func RestoreNormalizer(s NormalizerSnapshot) *EnergyNormalizer {
	n := NewEnergyNormalizer()
	n.ema.Restore(s.Value, s.Init)
	n.adds = s.Adds
	return n
}
