package core

import (
	"testing"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

func TestFeasibleActionsEnvelopeShape(t *testing.T) {
	c := New(DefaultConfig())
	w := workload.CNNMNIST()
	profiles := device.Profiles()

	// The mid-category reference action (8, 10) must be feasible on M.
	allowedM := c.feasibleActions(profiles[device.Mid], w, device.Interference{})
	idx := indexOfLocal(t, c, fl.LocalParams{B: 8, E: 10})
	if !allowedM[idx] {
		t.Fatal("the reference action must be within the envelope on M")
	}
	// The heaviest small-batch action (1, 20) must be pruned on L —
	// that is the monster the envelope exists to cut.
	allowedL := c.feasibleActions(profiles[device.Low], w, device.Interference{})
	if allowedL[indexOfLocal(t, c, fl.LocalParams{B: 1, E: 20})] {
		t.Error("(1,20) on a low-end device should be pruned")
	}
	// Heavy interference tightens the set further.
	heavyIntf := c.feasibleActions(profiles[device.Low], w,
		device.Interference{CPUUsage: 0.9, MemUsage: 0.6})
	nClean, nIntf := countTrue(allowedL), countTrue(heavyIntf)
	if nIntf > nClean {
		t.Errorf("interference should not widen the envelope: %d > %d", nIntf, nClean)
	}
	// Something must always remain selectable.
	if nIntf == 0 {
		t.Error("envelope must never be empty")
	}
}

func TestEnvelopeFloorCutsIdleWaitActions(t *testing.T) {
	// The fastest H actions finish far before the equalization target
	// and should be pruned for a clean H device.
	c := New(DefaultConfig())
	w := workload.CNNMNIST()
	allowedH := c.feasibleActions(device.Profiles()[device.High], w, device.Interference{})
	if allowedH[indexOfLocal(t, c, fl.LocalParams{B: 32, E: 1})] {
		t.Error("(32,1) on a high-end device idles most of the round; the floor should cut it")
	}
}

func TestReferenceEFollowsArchitecture(t *testing.T) {
	if referenceE(workload.CNNMNIST()) != 10 {
		t.Error("conv workloads anchor at E=10")
	}
	if referenceE(workload.LSTMShakespeare()) != 20 {
		t.Error("recurrent workloads anchor at E=20 (paper §2.1)")
	}
}

func TestDeadlineCapsEnvelope(t *testing.T) {
	w := workload.CNNMNIST()
	free := New(DefaultConfig())
	capped := New(DefaultConfig())
	capped.deadline = 60 // very tight server deadline
	p := device.Profiles()[device.Mid]
	nFree := countTrue(free.feasibleActions(p, w, device.Interference{}))
	nCapped := countTrue(capped.feasibleActions(p, w, device.Interference{}))
	if nCapped >= nFree {
		t.Errorf("a tight deadline should shrink the envelope: %d >= %d", nCapped, nFree)
	}
	if nCapped == 0 {
		t.Error("even a tight deadline must leave a runnable action")
	}
}

func TestObserveDeadlineInvalidatesMasks(t *testing.T) {
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(20))
	cfg := fl.Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.None(),
		MaxRounds:              5,
		AggregationOverheadSec: 10,
		Seed:                   1,
	}
	ctrl := New(DefaultConfig())
	fl.Run(cfg, ctrl) // no deadline
	if ctrl.deadline != 0 {
		t.Fatalf("observed deadline = %v, want 0", ctrl.deadline)
	}
	cfg.DeadlineSec = 90
	fl.Run(cfg, ctrl) // same controller, new deadline
	if ctrl.deadline != 90 {
		t.Fatalf("observed deadline = %v, want 90", ctrl.deadline)
	}
}

func TestDynFeasibleCachesPerBand(t *testing.T) {
	c := New(DefaultConfig())
	w := workload.CNNMNIST()
	d := device.Device{ID: 0, Profile: device.Profiles()[device.Low]}
	stA := fl.DeviceState{Interference: device.Interference{CPUUsage: 0.30}}
	stB := fl.DeviceState{Interference: device.Interference{CPUUsage: 0.60}}
	mA := c.dynFeasible(d, w, stA)
	mB := c.dynFeasible(d, w, stB)
	// Same Table-1 band (medium) -> same cached mask object.
	if &mA[0] != &mB[0] {
		t.Error("same-band interference should hit the mask cache")
	}
	stC := fl.DeviceState{Interference: device.Interference{CPUUsage: 0.90}}
	mC := c.dynFeasible(d, w, stC)
	if countTrue(mC) > countTrue(mA) {
		t.Error("heavier interference band should not widen the feasible set")
	}
	if len(c.dynMasks) != 2 {
		t.Errorf("mask cache entries = %d, want 2", len(c.dynMasks))
	}
}

func TestBandMidpointsOrdered(t *testing.T) {
	if !(bandMidpoint('n') < bandMidpoint('s') &&
		bandMidpoint('s') < bandMidpoint('m') &&
		bandMidpoint('m') < bandMidpoint('l')) {
		t.Error("band midpoints must be ordered n < s < m < l")
	}
}

func TestPretrainedControllerIsFrozen(t *testing.T) {
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(20))
	warm := fl.Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.None(),
		MaxRounds:              40,
		AggregationOverheadSec: 10,
		Seed:                   999,
	}
	ctrl := Pretrained(DefaultConfig(), warm)
	frozen, _ := ctrl.Frozen()
	if !frozen {
		t.Fatal("pretrained controller must come back frozen")
	}
	if ctrl.Stats().Updates == 0 {
		t.Fatal("pretraining should have produced Q-table updates")
	}
}

func indexOfLocal(t *testing.T, c *Controller, lp fl.LocalParams) int {
	t.Helper()
	for i, a := range c.localActions {
		if a == lp {
			return i
		}
	}
	t.Fatalf("action %v not in grid", lp)
	return -1
}

func countTrue(m []bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}
