package core

import (
	"testing"

	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

func TestConvBandTable1(t *testing.T) {
	cases := []struct {
		n    int
		want byte
	}{{0, 'n'}, {1, 's'}, {9, 's'}, {10, 'm'}, {19, 'm'}, {20, 'l'}, {29, 'l'}, {30, 'x'}, {50, 'x'}}
	for _, c := range cases {
		if got := ConvBand(c.n); got != c.want {
			t.Errorf("ConvBand(%d) = %c, want %c", c.n, got, c.want)
		}
	}
}

func TestFCAndRCBands(t *testing.T) {
	if FCBand(9) != 's' || FCBand(10) != 'l' {
		t.Error("FC band thresholds wrong")
	}
	if RCBand(0) != 'n' || RCBand(4) != 's' || RCBand(5) != 'm' || RCBand(9) != 'm' || RCBand(10) != 'l' {
		t.Error("RC band thresholds wrong")
	}
}

func TestUsageBandTable1(t *testing.T) {
	cases := []struct {
		frac float64
		want byte
	}{{0, 'n'}, {0.01, 's'}, {0.24, 's'}, {0.25, 'm'}, {0.74, 'm'}, {0.75, 'l'}, {1.0, 'l'}}
	for _, c := range cases {
		if got := UsageBand(c.frac); got != c.want {
			t.Errorf("UsageBand(%v) = %c, want %c", c.frac, got, c.want)
		}
	}
}

func TestNetworkAndDataBands(t *testing.T) {
	if NetworkBand(true) != 'r' || NetworkBand(false) != 'b' {
		t.Error("network band wrong")
	}
	if DataBand(10) != 's' || DataBand(24.9) != 's' || DataBand(25) != 'm' ||
		DataBand(99.9) != 'm' || DataBand(100) != 'l' {
		t.Error("data band thresholds wrong")
	}
}

func TestArchKeysDistinguishWorkloads(t *testing.T) {
	keys := map[string]string{}
	for _, w := range workload.All() {
		k := ArchKey(w)
		if prev, dup := keys[k]; dup {
			t.Errorf("workloads %s and %s share arch key %q", prev, w.Name, k)
		}
		keys[k] = w.Name
	}
}

func TestDeviceStateKeyReflectsAllSignals(t *testing.T) {
	w := workload.CNNMNIST()
	base := fl.DeviceState{
		Network:       netsim.Condition{BandwidthMbps: 80},
		ClassFraction: 100,
	}
	k0 := DeviceStateKey(w, base)

	st := base
	st.Interference = device.Interference{CPUUsage: 0.5}
	if DeviceStateKey(w, st) == k0 {
		t.Error("CPU interference should change the state key")
	}
	st = base
	st.Interference = device.Interference{MemUsage: 0.5}
	if DeviceStateKey(w, st) == k0 {
		t.Error("memory interference should change the state key")
	}
	st = base
	st.Network = netsim.Condition{BandwidthMbps: 10}
	if DeviceStateKey(w, st) == k0 {
		t.Error("bad network should change the state key")
	}
	st = base
	st.ClassFraction = 10
	if DeviceStateKey(w, st) == k0 {
		t.Error("data composition should change the state key")
	}
	// Bands, not raw values: two conditions in the same band collide.
	a, b := base, base
	a.Interference = device.Interference{CPUUsage: 0.30}
	b.Interference = device.Interference{CPUUsage: 0.60}
	if DeviceStateKey(w, a) != DeviceStateKey(w, b) {
		t.Error("same-band conditions should share a key (discretization)")
	}
}

func TestGlobalStateKeyAggregates(t *testing.T) {
	w := workload.CNNMNIST()
	clean := make([]fl.DeviceState, 10)
	for i := range clean {
		clean[i] = fl.DeviceState{
			Network:       netsim.Condition{BandwidthMbps: 80},
			ClassFraction: 100,
		}
	}
	k0 := GlobalStateKey(w, clean)

	half := append([]fl.DeviceState(nil), clean...)
	for i := 0; i < 5; i++ {
		half[i].Interference = device.Interference{CPUUsage: 0.5}
	}
	if GlobalStateKey(w, half) == k0 {
		t.Error("fleet-wide interference should change the global key")
	}

	badNet := append([]fl.DeviceState(nil), clean...)
	for i := 0; i < 5; i++ {
		badNet[i].Network = netsim.Condition{BandwidthMbps: 10}
	}
	if GlobalStateKey(w, badNet) == k0 {
		t.Error("fleet-wide bad network should change the global key")
	}

	if GlobalStateKey(w, nil) == "" {
		t.Error("empty fleet should still produce a key")
	}
}
