package core

import (
	"fmt"
	"time"

	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/rl"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// Config parameterizes a FedGPO controller.
type Config struct {
	// RL holds the Q-learning hyperparameters (paper: γ=0.9, µ=0.1,
	// ϵ=0.1).
	RL rl.Config
	// Reward weights Eq. 1's α and β.
	Reward RewardConfig
	// PerDeviceTables switches from shared per-category Q-tables to
	// one table per device — the paper's footnote-2 privacy variant
	// (better prediction accuracy, slower convergence).
	PerDeviceTables bool
	// FreezeThreshold, when positive, drops exploration to zero once
	// every table's update magnitude (DeltaEMA) falls below it —
	// "when the learning phase is completed ... FedGPO uses the shared
	// Q-tables to select A" (§3.3). Zero disables the delta criterion.
	FreezeThreshold float64
	// FreezeMinUpdates guards the freeze against firing before the
	// tables have seen meaningful traffic.
	FreezeMinUpdates int
	// FreezeAfterRounds unconditionally ends the learning phase after
	// this many rounds, matching the paper's observation that the
	// reward converges after 30–40 aggregation rounds (§5.4). Zero
	// disables the round criterion.
	FreezeAfterRounds int
	// Seed drives exploration and table initialization.
	Seed int64
}

// DefaultConfig returns this reproduction's operating point. It
// follows the paper except for the Q learning rate: the paper's
// sensitivity analysis selected γ=0.9 on its testbed, while the same
// analysis on this simulator (see the ablation bench) selects a lower
// γ — the per-round reward here carries more cross-category noise (all
// categories share the global accuracy-improvement term), so Q values
// must average several samples to rank actions reliably.
func DefaultConfig() Config {
	rlCfg := rl.PaperConfig()
	rlCfg.LearningRate = 0.25
	return Config{
		RL:                rlCfg,
		Reward:            DefaultRewardConfig(),
		FreezeThreshold:   0, // delta criterion off by default (noisy rewards)
		FreezeMinUpdates:  200,
		FreezeAfterRounds: 40, // paper §5.4: reward converges in 30–40 rounds
		Seed:              1,
	}
}

// choice records an action taken for one device in the current round.
type choice struct {
	tableKey string
	state    string
	action   int
}

// pending is a transition awaiting its next-round state S'.
type pending struct {
	tableKey string
	state    string
	action   int
	reward   float64
}

// OverheadBreakdown mirrors the paper's §5.4 cost accounting for one
// run: cumulative wall time in each controller phase.
type OverheadBreakdown struct {
	IdentifyStates time.Duration
	ChooseParams   time.Duration
	CalcReward     time.Duration
	UpdateTables   time.Duration
	Rounds         int
}

// Controller is the FedGPO policy. It implements fl.Controller.
// Not safe for concurrent use; create one per run.
type Controller struct {
	cfg Config
	rng *stats.RNG

	localActions []fl.LocalParams // Table 2 (B, E) grid
	kActions     []int            // Table 2 K values

	localTables map[string]*rl.QTable // per category (or per device)
	kTable      *rl.QTable

	globalNorm *EnergyNormalizer
	kLocalNorm *EnergyNormalizer
	localNorm  map[device.Category]*EnergyNormalizer

	roundChoices map[int]choice // deviceID -> this round's action
	pendingLocal []pending
	pendingK     *pending
	dynMasks     map[dynMaskKey][]bool
	// deadline is the server round deadline observed from the
	// deployment; the feasibility envelope is capped below it. A
	// change (e.g. warm-up on a different scenario) invalidates masks.
	deadline      float64
	tableProfiles map[string]device.Profile

	rewardHistory []float64
	frozen        bool
	frozenRound   int
	overhead      OverheadBreakdown

	// tracing/trace hold the opt-in per-round decision record (see
	// trace.go). Recording never perturbs decisions or randomness.
	tracing bool
	trace   []RoundTrace
}

var _ fl.Controller = (*Controller)(nil)

// New returns a FedGPO controller with the given configuration.
func New(cfg Config) *Controller {
	if cfg.RL.LearningRate == 0 { // zero-value convenience
		cfg = DefaultConfig()
	}
	return &Controller{
		cfg:           cfg,
		rng:           stats.NewRNG(cfg.Seed),
		localActions:  fl.AllLocalParams(),
		kActions:      fl.KValues(),
		localTables:   make(map[string]*rl.QTable),
		localNorm:     make(map[device.Category]*EnergyNormalizer),
		globalNorm:    NewEnergyNormalizer(),
		roundChoices:  make(map[int]choice),
		kLocalNorm:    NewEnergyNormalizer(),
		dynMasks:      make(map[dynMaskKey][]bool),
		tableProfiles: make(map[string]device.Profile),
	}
}

// Name identifies the controller in reports.
func (c *Controller) Name() string {
	if c.cfg.PerDeviceTables {
		return "FedGPO(per-device)"
	}
	return "FedGPO"
}

// tableKeyFor returns the Q-table identity a device's actions are
// learned under: its performance category (shared tables, the default)
// or its unique ID (footnote-2 variant).
func (c *Controller) tableKeyFor(d device.Device) string {
	if c.cfg.PerDeviceTables {
		return fmt.Sprintf("dev%d", d.ID)
	}
	return d.Profile.Category.String()
}

// table returns the local-action Q-table for a key, if it exists.
func (c *Controller) table(key string) *rl.QTable { return c.localTables[key] }

// tableFor lazily creates the Q-table for a device, applying the
// profile-informed feasibility mask: actions whose predicted clean
// compute time exceeds feasibleBudgetFactor × the mid-category
// reference (B=8, E=10) can never meet a sane round deadline on this
// hardware and are pruned from selection. Without the mask, optimistic
// exploration forces every category — including low-end devices — to
// trial (B=1, E=20)-class monsters that stall entire rounds.
func (c *Controller) tableFor(d device.Device, w workload.Workload) *rl.QTable {
	key := c.tableKeyFor(d)
	if t, ok := c.localTables[key]; ok {
		return t
	}
	t := rl.NewQTable(len(c.localActions), c.cfg.RL, c.rng.Split())
	t.SetMask(c.feasibleActions(d.Profile, w, device.Interference{}))
	c.localTables[key] = t
	c.tableProfiles[key] = d.Profile
	return t
}

// observeDeadline records the deployment's round deadline; a change
// invalidates every feasibility mask (warm-up and evaluation can run
// under different deadlines).
func (c *Controller) observeDeadline(deadlineSec float64, w workload.Workload) {
	if deadlineSec == c.deadline {
		return
	}
	c.deadline = deadlineSec
	c.dynMasks = make(map[dynMaskKey][]bool)
	for key, t := range c.localTables {
		t.SetMask(c.feasibleActions(c.tableProfiles[key], w, device.Interference{}))
	}
}

// feasibleBudgetFactor bounds per-category action pruning (see
// tableFor).
const feasibleBudgetFactor = 1.5

// referenceE returns the epoch count anchoring a workload's
// feasibility envelope. Architectures with recurrent layers train with
// more local iterations at smaller batches (the paper's §2.1
// characterization of LSTM-Shakespeare), so their envelope budgets for
// a higher epoch count. This is FedGPO conditioning on the same
// NN-architecture state (S_RC) its Q-tables key on.
func referenceE(w workload.Workload) int {
	if w.RCLayers > 0 {
		return 20
	}
	return 10
}

// feasibleActions computes the action mask for a profile under the
// given (possibly zero) interference: an action is feasible if its
// predicted time stays within feasibleBudgetFactor × the mid-category
// reference running (B=8, E=referenceE) clean — the straggler-
// equalization envelope. If the screen would reject everything
// (crushing interference), it falls back to the single fastest action.
func (c *Controller) feasibleActions(p device.Profile, w workload.Workload, intf device.Interference) []bool {
	ref := device.Profiles()[device.Mid]
	budget := feasibleBudgetFactor * device.ComputeSeconds(ref, w.Shape, 8, referenceE(w),
		w.SamplesPerDevice, device.Interference{})
	// A server round deadline caps the envelope: an action predicted to
	// run past it would only be dropped.
	if c.deadline > 0 && budget > 0.8*c.deadline {
		budget = 0.8 * c.deadline
	}
	// The envelope is two-sided: actions predicted to blow the budget
	// would straggle the round; actions predicted to finish far before
	// it would leave the device waiting at near-busy power for the
	// stragglers — both waste energy. The floor is soft (devices whose
	// fastest options are all quick keep their fastest few).
	floor := feasibleFloorFraction * budget
	allowed := make([]bool, len(c.localActions))
	any := false
	fastest, fastestT := 0, -1.0
	for i, lp := range c.localActions {
		t := device.ComputeSeconds(p, w.Shape, lp.B, lp.E, w.SamplesPerDevice, intf)
		fits := device.FitsInMemory(p, w.Shape, lp.B)
		allowed[i] = t <= budget && t >= floor && fits
		any = any || allowed[i]
		if fits && (fastestT < 0 || t < fastestT) {
			fastest, fastestT = i, t
		}
	}
	if !any {
		// Nothing inside the band: allow everything under the budget,
		// or the single fastest action if even that fails.
		for i, lp := range c.localActions {
			t := device.ComputeSeconds(p, w.Shape, lp.B, lp.E, w.SamplesPerDevice, intf)
			allowed[i] = t <= budget && device.FitsInMemory(p, w.Shape, lp.B)
			any = any || allowed[i]
		}
		if !any {
			allowed[fastest] = true
		}
	}
	return allowed
}

// feasibleFloorFraction is the lower edge of the equalization envelope
// as a fraction of the budget.
const feasibleFloorFraction = 0.3

// dynMaskKey caches per-observation feasibility sets: the mask depends
// only on the device category and the discretized interference bands,
// so the expensive compute-time predictions run once per combination.
type dynMaskKey struct {
	cat      device.Category
	cpu, mem byte
}

// dynFeasible returns (computing and caching) the feasibility set for a
// device under its currently observed interference. This is FedGPO
// using the state it already identifies (§3.1: "the usage of resources"
// per device) together with the known device profile to exclude
// parameter choices that would straggle the round — the Q-table then
// optimizes energy/accuracy within the feasible set.
func (c *Controller) dynFeasible(d device.Device, w workload.Workload, st fl.DeviceState) []bool {
	key := dynMaskKey{
		cat: d.Profile.Category,
		cpu: UsageBand(st.Interference.CPUUsage),
		mem: UsageBand(st.Interference.MemUsage),
	}
	if m, ok := c.dynMasks[key]; ok {
		return m
	}
	// Predict with the band midpoint rather than the raw sample so the
	// cache stays small and decisions depend only on observable bands.
	m := c.feasibleActions(d.Profile, w, device.Interference{
		CPUUsage: bandMidpoint(key.cpu),
		MemUsage: bandMidpoint(key.mem),
	})
	c.dynMasks[key] = m
	return m
}

// bandMidpoint maps a Table 1 usage band back to a representative
// fraction.
func bandMidpoint(band byte) float64 {
	switch band {
	case 'n':
		return 0
	case 's':
		return 0.12
	case 'm':
		return 0.50
	default: // 'l'
		return 0.85
	}
}

// Plan implements steps 1–2 of the paper's design loop: identify the
// global and local execution states, then select actions from the
// Q-tables.
func (c *Controller) Plan(obs fl.Observation) fl.Plan {
	c.observeDeadline(obs.DeadlineSec, obs.Workload)

	// Complete last round's Q-updates now that S' is observable
	// (Algorithm 2's "Observe new state S'").
	t0 := time.Now()
	c.flushPending(obs)
	c.overhead.UpdateTables += time.Since(t0)

	t0 = time.Now()
	globalState := GlobalStateKey(obs.Workload, obs.States)
	c.overhead.IdentifyStates += time.Since(t0)

	t0 = time.Now()
	if c.kTable == nil {
		c.kTable = rl.NewQTable(len(c.kActions), c.cfg.RL, c.rng.Split())
	}
	kAction := c.kTable.Select(globalState)
	c.pendingK = &pending{state: globalState, action: kAction}
	c.roundChoices = make(map[int]choice, len(obs.Fleet))
	c.overhead.ChooseParams += time.Since(t0)
	c.overhead.Rounds++
	if c.tracing {
		c.trace = append(c.trace, RoundTrace{
			Round:       obs.Round,
			GlobalState: globalState,
			K: KDecision{
				State:   globalState,
				Action:  kAction,
				K:       c.kActions[kAction],
				Allowed: c.kTable.AllowedActions(),
			},
		})
	}

	// Within a round, all devices that share a Q-table and a state take
	// the same action: the shared table makes one (possibly exploring)
	// decision per (table, state) pair. This keeps the category's
	// behaviour coherent, so the round-level reward actually reflects
	// the choice — per-device independent exploration would dilute the
	// credit over K participants.
	roundAction := make(map[string]int)

	local := func(d device.Device, st fl.DeviceState) fl.LocalParams {
		ts := time.Now()
		stateKey := DeviceStateKey(obs.Workload, st)
		c.overhead.IdentifyStates += time.Since(ts)

		ts = time.Now()
		key := c.tableKeyFor(d)
		memoKey := key + "|" + stateKey
		action, ok := roundAction[memoKey]
		if !ok {
			tab := c.tableFor(d, obs.Workload)
			dyn := c.dynFeasible(d, obs.Workload, st)
			action = tab.SelectOf(stateKey, dyn)
			roundAction[memoKey] = action
			if cur := c.traceCurrent(); cur != nil {
				lp := c.localActions[action]
				cur.Local = append(cur.Local, LocalDecision{
					Table: key, State: stateKey, Action: action,
					B: lp.B, E: lp.E, Allowed: tab.CandidatesOf(dyn),
				})
			}
		}
		c.roundChoices[d.ID] = choice{tableKey: key, state: stateKey, action: action}
		c.overhead.ChooseParams += time.Since(ts)
		return c.localActions[action]
	}
	return fl.Plan{K: c.kActions[kAction], Local: local}
}

// Observe implements steps 4–5: measure the round, compute Eq. 1
// rewards, and queue Q-table updates (completed next round when S' is
// seen).
func (c *Controller) Observe(res fl.RoundResult) {
	t0 := time.Now()
	accPct := res.Accuracy * 100
	prevPct := res.PrevAccuracy * 100
	eGlobal := c.globalNorm.Normalize(res.EnergyGlobalJ)

	roundRewards := make([]float64, 0, len(res.Participants))
	for _, p := range res.Participants {
		ch, ok := c.roundChoices[p.DeviceID]
		if !ok {
			continue
		}
		norm, okN := c.localNorm[p.Category]
		if !okN {
			norm = NewEnergyNormalizer()
			c.localNorm[p.Category] = norm
		}
		eLocal := norm.Normalize(p.EnergyJ)
		r := Reward(c.cfg.Reward, accPct, prevPct, eGlobal, eLocal)
		if p.Dropped {
			// A dropped update contributed nothing: for this device's
			// action the round produced no accuracy improvement, so it
			// earns Eq. 1's no-improvement punishment. This is the
			// signal that teaches interfered/slow states to choose
			// lighter parameters that fit the round deadline.
			r = accPct - 100
		}
		roundRewards = append(roundRewards, r)
		c.pendingLocal = append(c.pendingLocal, pending{
			tableKey: ch.tableKey, state: ch.state, action: ch.action, reward: r,
		})
	}
	// The K agent's reward uses the mean participant energy as its
	// local term (K is a fleet-level action).
	meanLocal := 0.0
	if len(res.Participants) > 0 {
		var s float64
		for _, p := range res.Participants {
			s += p.EnergyJ
		}
		meanLocal = s / float64(len(res.Participants))
	}
	if c.pendingK != nil {
		kNorm := c.kLocalNorm.Normalize(meanLocal)
		c.pendingK.reward = Reward(c.cfg.Reward, accPct, prevPct, eGlobal, kNorm)
	}
	if len(roundRewards) > 0 {
		c.rewardHistory = append(c.rewardHistory, stats.Mean(roundRewards))
	} else {
		c.rewardHistory = append(c.rewardHistory, accPct-100)
	}
	if cur := c.traceCurrent(); cur != nil {
		cur.Reward = c.rewardHistory[len(c.rewardHistory)-1]
		if c.pendingK != nil {
			cur.K.Reward = c.pendingK.reward
		}
	}
	c.overhead.CalcReward += time.Since(t0)

	c.maybeFreeze(res.Round)
}

// flushPending applies queued updates using this round's observation as
// the successor state S'.
func (c *Controller) flushPending(obs fl.Observation) {
	if len(c.pendingLocal) > 0 {
		// Successor state per table: the first fleet device under that
		// table key, observed in this round's environment.
		succ := make(map[string]string, len(c.localTables))
		for _, d := range obs.Fleet {
			key := c.tableKeyFor(d)
			if _, ok := succ[key]; !ok {
				succ[key] = DeviceStateKey(obs.Workload, obs.States[d.ID])
			}
		}
		for _, p := range c.pendingLocal {
			next, ok := succ[p.tableKey]
			if !ok {
				next = p.state
			}
			if t := c.table(p.tableKey); t != nil {
				delta := t.Update(p.state, p.action, p.reward, next)
				// Updates grade the previous round's decisions: trace
				// them on the entry that recorded those decisions (the
				// current last entry — this round's is appended later in
				// Plan).
				if cur := c.traceCurrent(); cur != nil {
					cur.Updates = append(cur.Updates, QUpdate{
						Table: p.tableKey, State: p.state, Action: p.action,
						Reward: p.reward, Next: next, Delta: delta,
					})
				}
			}
		}
		c.pendingLocal = c.pendingLocal[:0]
	}
	if c.pendingK != nil && c.kTable != nil {
		next := GlobalStateKey(obs.Workload, obs.States)
		delta := c.kTable.Update(c.pendingK.state, c.pendingK.action, c.pendingK.reward, next)
		if cur := c.traceCurrent(); cur != nil {
			cur.Updates = append(cur.Updates, QUpdate{
				Table: "K", State: c.pendingK.state, Action: c.pendingK.action,
				Reward: c.pendingK.reward, Next: next, Delta: delta,
			})
		}
		c.pendingK = nil
	}
}

// maybeFreeze ends the learning phase once every table has settled
// (delta criterion) or the round budget for learning has elapsed
// (round criterion), whichever fires first.
func (c *Controller) maybeFreeze(round int) {
	if c.frozen {
		return
	}
	if len(c.localTables) == 0 || c.kTable == nil {
		return
	}
	byRounds := c.cfg.FreezeAfterRounds > 0 && round >= c.cfg.FreezeAfterRounds
	byDelta := false
	if c.cfg.FreezeThreshold > 0 {
		byDelta = c.kTable.Converged(c.cfg.FreezeThreshold, c.cfg.FreezeMinUpdates)
		for _, t := range c.localTables {
			if !t.Converged(c.cfg.FreezeThreshold, c.cfg.FreezeMinUpdates) {
				byDelta = false
				break
			}
		}
	}
	if !byRounds && !byDelta {
		return
	}
	for _, t := range c.localTables {
		t.SetEpsilon(0)
	}
	c.kTable.SetEpsilon(0)
	c.frozen = true
	c.frozenRound = round
}

// FinishLearning declares the learning phase complete: exploration
// drops to zero and the policy becomes purely greedy, as §3.3
// prescribes once "the largest Q(S,A) value is converged for each S".
// Q-table updates continue, so the policy still adapts to shifts in the
// environment. Call it after a warm-up run (see Pretrained).
func (c *Controller) FinishLearning() {
	for _, t := range c.localTables {
		t.SetEpsilon(0)
	}
	if c.kTable != nil {
		c.kTable.SetEpsilon(0)
	}
	c.frozen = true
	if c.frozenRound == 0 {
		c.frozenRound = c.overhead.Rounds
	}
}

// RewardHistory returns the mean participant reward per round — the
// §5.4 reward-convergence trace.
func (c *Controller) RewardHistory() []float64 {
	return append([]float64(nil), c.rewardHistory...)
}

// Frozen reports whether the learning phase has been declared complete,
// and at which round.
func (c *Controller) Frozen() (bool, int) { return c.frozen, c.frozenRound }

// MemoryBytes estimates the total Q-table footprint (§5.4 reports
// 0.4 MB for three device categories).
func (c *Controller) MemoryBytes() int {
	total := 0
	for _, t := range c.localTables {
		total += t.MemoryBytes()
	}
	if c.kTable != nil {
		total += c.kTable.MemoryBytes()
	}
	return total
}

// Overhead returns the per-phase wall-time accounting.
func (c *Controller) Overhead() OverheadBreakdown { return c.overhead }

// TableStats summarizes the learned tables for reports.
type TableStats struct {
	Tables      int
	States      int
	Updates     int
	MemoryBytes int
}

// Stats returns aggregate table statistics.
func (c *Controller) Stats() TableStats {
	s := TableStats{MemoryBytes: c.MemoryBytes()}
	for _, t := range c.localTables {
		s.Tables++
		s.States += t.States()
		s.Updates += t.Updates()
	}
	if c.kTable != nil {
		s.Tables++
		s.States += c.kTable.States()
		s.Updates += c.kTable.Updates()
	}
	return s
}

// TableDump returns the greedy (B, E) per materialized state of one
// local Q-table — a debugging/characterization helper used by probes
// and the prediction-accuracy experiment.
func (c *Controller) TableDump(key string) map[string]fl.LocalParams {
	t, ok := c.localTables[key]
	if !ok {
		return nil
	}
	out := make(map[string]fl.LocalParams)
	for _, st := range t.KnownStates() {
		out[st] = c.localActions[t.Best(st)]
	}
	return out
}
