// Package core implements FedGPO, the paper's contribution: a
// reinforcement-learning global-parameter optimizer that, each FedAvg
// aggregation round, observes the execution state of the federation
// (neural-network architecture, per-device co-running interference,
// network stability, and data-class composition — paper Table 1),
// selects per-device (B, E) and a global K from the discrete action
// space of paper Table 2 via epsilon-greedy Q-learning over shared
// per-category Q-tables (paper Algorithm 2), and learns from the
// energy/accuracy reward of paper Eq. 1.
package core

import (
	"strings"

	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

// Discretization bands from paper Table 1. Band values are single
// characters to keep Q-table keys (and the §5.4 memory footprint)
// small.

// ConvBand discretizes S_CONV: small (<10), medium (<20), large (<30),
// larger (>=30; the paper's table lists ">=40" leaving 30–39 unmapped —
// we close the gap at 30). We additionally add a "none" band for
// zero-conv architectures: without it the Table 1 bands cannot
// distinguish a small CNN from a pure-recurrent model.
func ConvBand(n int) byte {
	switch {
	case n == 0:
		return 'n'
	case n < 10:
		return 's'
	case n < 20:
		return 'm'
	case n < 30:
		return 'l'
	default:
		return 'x'
	}
}

// FCBand discretizes S_FC: small (<10), large (>=10).
func FCBand(n int) byte {
	if n < 10 {
		return 's'
	}
	return 'l'
}

// RCBand discretizes S_RC: small (<5), medium (<10), large (>=10),
// with an extra "none" band for zero recurrent layers (see ConvBand).
func RCBand(n int) byte {
	switch {
	case n == 0:
		return 'n'
	case n < 5:
		return 's'
	case n < 10:
		return 'm'
	default:
		return 'l'
	}
}

// UsageBand discretizes S_Co_CPU / S_Co_MEM from a usage fraction in
// [0,1]: none (0%), small (<25%), medium (<75%), large (<=100%).
func UsageBand(frac float64) byte {
	pct := frac * 100
	switch {
	case pct <= 0:
		return 'n'
	case pct < 25:
		return 's'
	case pct < 75:
		return 'm'
	default:
		return 'l'
	}
}

// NetworkBand discretizes S_Network: regular (>40Mbps), bad (<=40Mbps).
func NetworkBand(regular bool) byte {
	if regular {
		return 'r'
	}
	return 'b'
}

// DataBand discretizes S_Data from the class-coverage percentage
// (0..100): small (<25%), medium (<100%), large (=100%).
func DataBand(classFractionPct float64) byte {
	switch {
	case classFractionPct < 25:
		return 's'
	case classFractionPct < 100:
		return 'm'
	default:
		return 'l'
	}
}

// ArchKey encodes the workload's architecture states (S_CONV, S_FC,
// S_RC). It is constant within a run but keeps Q-tables transferable
// across workloads, which is how shared tables "expedite the design
// space exploration" (§3.3).
func ArchKey(w workload.Workload) string {
	var b strings.Builder
	b.Grow(3)
	b.WriteByte(ConvBand(w.ConvLayers))
	b.WriteByte(FCBand(w.FCLayers))
	b.WriteByte(RCBand(w.RCLayers))
	return b.String()
}

// DeviceStateKey encodes one device's full Table 1 state for the
// per-category (B, E) Q-tables.
func DeviceStateKey(w workload.Workload, st fl.DeviceState) string {
	var b strings.Builder
	b.Grow(7)
	b.WriteString(ArchKey(w))
	b.WriteByte(UsageBand(st.Interference.CPUUsage))
	b.WriteByte(UsageBand(st.Interference.MemUsage))
	b.WriteByte(NetworkBand(st.Network.Regular()))
	b.WriteByte(DataBand(st.ClassFraction))
	return b.String()
}

// GlobalStateKey encodes the fleet-level state the K-selection agent
// conditions on: the architecture plus banded fleet fractions of
// interfered devices, bad-network devices, and the mean data-class
// coverage.
func GlobalStateKey(w workload.Workload, states []fl.DeviceState) string {
	interfered, badNet, classPct := 0, 0, 0.0
	for _, st := range states {
		if st.Interference.CPUUsage > 0 || st.Interference.MemUsage > 0 {
			interfered++
		}
		if !st.Network.Regular() {
			badNet++
		}
		classPct += st.ClassFraction
	}
	n := len(states)
	intfFrac, badFrac, meanClass := 0.0, 0.0, 0.0
	if n > 0 {
		intfFrac = float64(interfered) / float64(n)
		badFrac = float64(badNet) / float64(n)
		meanClass = classPct / float64(n)
	}
	var b strings.Builder
	b.Grow(6)
	b.WriteString(ArchKey(w))
	b.WriteByte(UsageBand(intfFrac))
	b.WriteByte(UsageBand(badFrac))
	b.WriteByte(DataBand(meanClass))
	return b.String()
}
