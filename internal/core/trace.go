package core

// Decision tracing: the opt-in per-round record of what the FedGPO
// policy saw, what it was allowed to do, what it chose, what reward it
// earned, and how its Q-tables moved in response — the controller-side
// half of the telemetry layer's TraceLevel=decisions mode.
//
// Tracing is strictly observational. Recording reads the masked action
// sets through rl.QTable.CandidatesOf/AllowedActions, which consume no
// randomness and mutate nothing, so a traced run makes exactly the
// same decisions as an untraced one; the experiment harness enforces
// the resulting byte-identity of tables and cache keys by test. The
// trace itself is stored as a spec-addressed cache artifact beside the
// run's result (see the exp package), never inside it.

// RoundTrace is one round's decision record.
type RoundTrace struct {
	// Round is the 1-based simulation round.
	Round int `json:"round"`
	// GlobalState is the round's global execution state key (the K
	// agent's state).
	GlobalState string `json:"globalState"`
	// K is the fleet-level participant-count decision.
	K KDecision `json:"k"`
	// Local holds one entry per distinct (table, state) decision the
	// round made — the per-device memo means a category's devices in
	// one state share a single recorded decision, exactly as they share
	// the action.
	Local []LocalDecision `json:"local,omitempty"`
	// Reward is the round's mean participant reward (the value appended
	// to the §5.4 reward-convergence trace).
	Reward float64 `json:"reward"`
	// Updates holds the Q-table updates this round's transitions
	// produced. They are applied at the start of the next round, when
	// the successor state S' becomes observable, but recorded here —
	// on the round whose decisions they grade.
	Updates []QUpdate `json:"updates,omitempty"`
}

// KDecision is the K agent's choice for one round.
type KDecision struct {
	// State is the global state key the choice was made in.
	State string `json:"state"`
	// Action is the chosen index into the K action grid; K is its
	// resolved participant count.
	Action int `json:"action"`
	K      int `json:"k"`
	// Allowed is the table's admissible action set (the K table carries
	// no per-observation mask, so this is the static table mask).
	Allowed []int `json:"allowed"`
	// Reward is the K agent's Eq. 1 reward for the round, filled in by
	// Observe.
	Reward float64 `json:"reward"`
}

// LocalDecision is one (table, state) local-parameter choice.
type LocalDecision struct {
	// Table is the Q-table identity (device category, or device ID
	// under per-device tables); State the device state key.
	Table string `json:"table"`
	State string `json:"state"`
	// Action indexes the (B, E) action grid; B and E are its resolved
	// batch size and epoch count.
	Action int `json:"action"`
	B      int `json:"b"`
	E      int `json:"e"`
	// Allowed is the masked action set the choice was drawn from: the
	// table mask intersected with the round's dynamic feasibility
	// envelope (actions predicted to straggle are excluded).
	Allowed []int `json:"allowed"`
}

// QUpdate is one applied Q-table update.
type QUpdate struct {
	// Table is the updated table's identity ("K" for the K table).
	Table string `json:"table"`
	// State, Action and Reward are the graded transition; Next is the
	// successor state S' the target was computed against.
	State  string  `json:"state"`
	Action int     `json:"action"`
	Reward float64 `json:"reward"`
	Next   string  `json:"next"`
	// Delta is the applied Q-value change (learning-rate-scaled TD
	// error) — the signal whose decay is the paper's convergence
	// criterion.
	Delta float64 `json:"delta"`
}

// EnableTrace turns on decision recording for the controller's
// subsequent rounds. Tracing never alters decisions; it only records
// them.
func (c *Controller) EnableTrace() { c.tracing = true }

// DecisionTrace returns the recorded rounds (nil when tracing was
// never enabled). The slice is a copy; the per-round contents are
// shared with the controller and must be treated as read-only.
func (c *Controller) DecisionTrace() []RoundTrace {
	if len(c.trace) == 0 {
		return nil
	}
	return append([]RoundTrace(nil), c.trace...)
}

// traceCurrent returns the in-progress round's trace entry, or nil
// when tracing is off or no round has started.
func (c *Controller) traceCurrent() *RoundTrace {
	if !c.tracing || len(c.trace) == 0 {
		return nil
	}
	return &c.trace[len(c.trace)-1]
}
