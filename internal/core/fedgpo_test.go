package core

import (
	"math"
	"testing"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

func TestRewardEq1(t *testing.T) {
	cfg := DefaultRewardConfig()
	// No improvement: punished with acc - 100 regardless of energy.
	if got := Reward(cfg, 50, 50, 0, 0); got != -50 {
		t.Errorf("flat accuracy reward = %v, want -50", got)
	}
	if got := Reward(cfg, 40, 55, 1, 1); got != -60 {
		t.Errorf("regression reward = %v, want -60", got)
	}
	// Improvement: energy subtracts, accuracy and (gap-relative)
	// improvement add.
	got := Reward(cfg, 60, 50, 10, 5)
	want := -10.0 - 5 + cfg.Alpha*60 + cfg.Beta*(100*(60.0-50)/(100-50))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("improvement reward = %v, want %v", got, want)
	}
	// Gap-relative: closing 10 points from 85 (2/3 of headroom) beats
	// closing 10 points from 50 (1/5 of headroom).
	if Reward(cfg, 95, 85, 10, 5) <= Reward(cfg, 60, 50, 10, 5) {
		t.Error("improvement should be measured against the remaining gap")
	}
	// Lower energy yields strictly higher reward.
	if Reward(cfg, 60, 50, 5, 2) <= Reward(cfg, 60, 50, 10, 5) {
		t.Error("cheaper round should score higher")
	}
}

func TestEnergyNormalizerNominalTen(t *testing.T) {
	n := NewEnergyNormalizer()
	// A constant series normalizes to exactly 10.
	for i := 0; i < 50; i++ {
		v := n.Normalize(500)
		if math.Abs(v-10) > 1e-9 {
			t.Fatalf("constant series normalized to %v, want 10", v)
		}
	}
	// A cheaper-than-usual round scores below 10.
	if v := n.Normalize(250); v >= 10 {
		t.Errorf("cheap round normalized to %v, want < 10", v)
	}
	if n.Normalize(-5) != 0 {
		t.Error("negative energy should clamp to 0")
	}
}

func fedgpoConfig(seed int64) fl.Config {
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(20))
	return fl.Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.None(),
		MaxRounds:              250,
		AggregationOverheadSec: 10,
		Seed:                   seed,
		StopAtConvergence:      true,
	}
}

func TestFedGPOConvergesOnIID(t *testing.T) {
	res := fl.Run(fedgpoConfig(1), New(DefaultConfig()))
	if !res.Converged {
		t.Fatalf("FedGPO did not converge (acc=%v after %d rounds)",
			res.FinalAccuracy, res.RoundsExecuted)
	}
	if res.Controller != "FedGPO" {
		t.Errorf("controller name = %q", res.Controller)
	}
}

func TestFedGPOAssignsPerDeviceParams(t *testing.T) {
	// Under interference, FedGPO must produce *different* local
	// parameters across devices in the same round — that is the core
	// per-device mechanism.
	cfg := fedgpoConfig(2)
	cfg.Interference = interfere.Paper()
	cfg.MaxRounds = 60
	cfg.StopAtConvergence = false

	ctrl := New(DefaultConfig())
	distinct := false
	probe := &resultProbe{inner: ctrl, onResult: func(rr fl.RoundResult) {
		seen := map[fl.LocalParams]bool{}
		for _, p := range rr.Participants {
			seen[p.Local] = true
		}
		if len(seen) > 1 {
			distinct = true
		}
	}}
	fl.Run(cfg, probe)
	if !distinct {
		t.Error("FedGPO never assigned heterogeneous per-device parameters")
	}
}

func TestFedGPOBeatsWorstStaticOnEnergy(t *testing.T) {
	// Sanity floor: the learned policy must clearly beat an
	// intentionally bad fixed configuration on PPW.
	cfg := fedgpoConfig(3)
	cfg.MaxRounds = 300
	bad := fl.Run(cfg, fl.NewStatic(fl.Params{B: 32, E: 20, K: 20}))
	good := fl.Run(cfg, New(DefaultConfig()))
	if good.PPW <= bad.PPW {
		t.Errorf("FedGPO PPW %v should beat bad static %v", good.PPW, bad.PPW)
	}
}

func TestFedGPODeterministicPerSeed(t *testing.T) {
	a := fl.Run(fedgpoConfig(7), New(DefaultConfig()))
	b := fl.Run(fedgpoConfig(7), New(DefaultConfig()))
	if a.EnergyToConvergenceJ != b.EnergyToConvergenceJ ||
		a.ConvergenceRound != b.ConvergenceRound {
		t.Error("same-seed FedGPO runs diverged")
	}
}

func TestRewardHistoryTracksRounds(t *testing.T) {
	cfg := fedgpoConfig(4)
	cfg.MaxRounds = 40
	cfg.StopAtConvergence = false
	ctrl := New(DefaultConfig())
	fl.Run(cfg, ctrl)
	h := ctrl.RewardHistory()
	if len(h) != 40 {
		t.Fatalf("reward history length = %d, want 40", len(h))
	}
	// Rewards should trend upward as the policy learns: the mean of
	// the last 10 rounds should beat the first 10.
	early := stats.Mean(h[:10])
	late := stats.Mean(h[len(h)-10:])
	if late <= early {
		t.Errorf("reward did not improve: early %v, late %v", early, late)
	}
}

func TestStatsAndMemoryAccounting(t *testing.T) {
	cfg := fedgpoConfig(5)
	cfg.MaxRounds = 30
	cfg.StopAtConvergence = false
	ctrl := New(DefaultConfig())
	fl.Run(cfg, ctrl)
	s := ctrl.Stats()
	if s.Tables < 2 { // at least one category table + the K table
		t.Errorf("tables = %d, want >= 2", s.Tables)
	}
	if s.States == 0 || s.Updates == 0 {
		t.Errorf("no learning happened: %+v", s)
	}
	if s.MemoryBytes <= 0 || s.MemoryBytes > 4<<20 {
		t.Errorf("memory estimate %d out of plausible range (paper: ~0.4MB)", s.MemoryBytes)
	}
	ov := ctrl.Overhead()
	if ov.Rounds != 30 {
		t.Errorf("overhead rounds = %d", ov.Rounds)
	}
	if ov.ChooseParams <= 0 || ov.IdentifyStates <= 0 || ov.CalcReward <= 0 {
		t.Error("overhead phases should all be non-zero")
	}
}

func TestPerDeviceTablesVariant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerDeviceTables = true
	ctrl := New(cfg)
	if ctrl.Name() != "FedGPO(per-device)" {
		t.Errorf("name = %q", ctrl.Name())
	}
	run := fedgpoConfig(6)
	run.MaxRounds = 30
	run.StopAtConvergence = false
	fl.Run(run, ctrl)
	shared := New(DefaultConfig())
	run2 := fedgpoConfig(6)
	run2.MaxRounds = 30
	run2.StopAtConvergence = false
	fl.Run(run2, shared)
	// Per-device tables shard the same experience across many more
	// tables.
	if ctrl.Stats().Tables <= shared.Stats().Tables {
		t.Errorf("per-device variant should hold more tables: %d vs %d",
			ctrl.Stats().Tables, shared.Stats().Tables)
	}
}

func TestFreezeStopsExploration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FreezeThreshold = 1e9 // absurdly permissive: freeze ASAP
	cfg.FreezeMinUpdates = 10
	ctrl := New(cfg)
	run := fedgpoConfig(8)
	run.MaxRounds = 50
	run.StopAtConvergence = false
	fl.Run(run, ctrl)
	frozen, round := ctrl.Frozen()
	if !frozen {
		t.Fatal("controller should have frozen")
	}
	if round <= 0 || round > 50 {
		t.Errorf("frozen round = %d", round)
	}
}

func TestZeroValueConfigFallsBackToDefaults(t *testing.T) {
	ctrl := New(Config{})
	if ctrl.cfg.RL.LearningRate != DefaultConfig().RL.LearningRate {
		t.Error("zero config should fall back to defaults")
	}
}

// resultProbe forwards controller calls and taps results.
type resultProbe struct {
	inner    fl.Controller
	onResult func(fl.RoundResult)
}

func (p *resultProbe) Name() string                  { return p.inner.Name() }
func (p *resultProbe) Plan(o fl.Observation) fl.Plan { return p.inner.Plan(o) }
func (p *resultProbe) Observe(r fl.RoundResult) {
	p.onResult(r)
	p.inner.Observe(r)
}
