// Package netsim models the wireless channel between participant
// devices and the aggregation server: round-varying bandwidth following
// a Gaussian distribution (the paper's §4.2 methodology), signal
// strength bands, and the transmission latency and energy of gradient /
// parameter uploads (paper Eq. 3).
//
// The paper observes that "data transmission latency and energy
// increase exponentially at weak signal strength"; the power model here
// encodes that with an exponentially increasing transmission power as
// signal strength degrades.
package netsim

import (
	"fmt"
	"math"

	"fedgpo/internal/stats"
)

// SignalStrength is a coarse wireless signal band. Transmission power
// rises as signal weakens (paper cites Ding et al., SIGMETRICS'13).
type SignalStrength int

// Signal bands from strongest to weakest.
const (
	SignalStrong SignalStrength = iota
	SignalMedium
	SignalWeak
)

// String labels the band.
func (s SignalStrength) String() string {
	switch s {
	case SignalStrong:
		return "strong"
	case SignalMedium:
		return "medium"
	case SignalWeak:
		return "weak"
	default:
		return "unknown"
	}
}

// Paper Table 1 discretizes S_Network at a 40 Mbps threshold
// ("regular" above, "bad" at or below).
const RegularBandwidthMbps = 40.0

// Channel is the stochastic wireless link model for one federation.
// Bandwidth draws are Gaussian, clamped to a physical floor; signal
// strength derives from the drawn bandwidth so that weak signal and low
// bandwidth coincide, as they do on real links.
type Channel struct {
	// MeanMbps and StdMbps parameterize the Gaussian bandwidth draw.
	MeanMbps float64
	StdMbps  float64
	// FloorMbps is the minimum usable bandwidth.
	FloorMbps float64
	// BaseTxWatts is the radio power at strong signal.
	BaseTxWatts float64
	// WeakTxFactor multiplies power per band of signal degradation
	// (exponential growth: strong -> medium -> weak).
	WeakTxFactor float64
}

// StableChannel returns the paper's regular-network scenario: high mean
// bandwidth and mild variation, so S_Network is almost always regular.
func StableChannel() Channel {
	return Channel{
		MeanMbps:     80,
		StdMbps:      8,
		FloorMbps:    1,
		BaseTxWatts:  0.8,
		WeakTxFactor: 1.9,
	}
}

// UnstableChannel returns the paper's network-variance scenario: the
// Gaussian is centered near the 40 Mbps "bad" threshold with a large
// spread, so devices frequently fall into the weak band.
func UnstableChannel() Channel {
	return Channel{
		MeanMbps:     38,
		StdMbps:      25,
		FloorMbps:    8,
		BaseTxWatts:  0.8,
		WeakTxFactor: 1.9,
	}
}

// Channel preset names, the values a scenario spec's network kind can
// take.
const (
	KindStable   = "stable"
	KindUnstable = "unstable"
)

// ChannelByName returns the named channel preset ("stable" or
// "unstable"); ok is false for unknown names.
func ChannelByName(kind string) (Channel, bool) {
	switch kind {
	case KindStable:
		return StableChannel(), true
	case KindUnstable:
		return UnstableChannel(), true
	default:
		return Channel{}, false
	}
}

// Key renders the channel's outcome-relevant parameters canonically
// for cache keys. Every field that shapes a draw or an energy term is
// included, so channels that behave differently never share a key.
func (ch Channel) Key() string {
	return fmt.Sprintf("gauss(mean=%g,std=%g,floor=%g,tx=%g,weak=%g)",
		ch.MeanMbps, ch.StdMbps, ch.FloorMbps, ch.BaseTxWatts, ch.WeakTxFactor)
}

// Condition is one device-round link state.
type Condition struct {
	BandwidthMbps float64
	Signal        SignalStrength
}

// Regular reports whether the condition falls in Table 1's "regular"
// band (> 40 Mbps).
func (c Condition) Regular() bool { return c.BandwidthMbps > RegularBandwidthMbps }

// Sample draws one device-round condition.
func (ch Channel) Sample(rng *stats.RNG) Condition {
	bw := rng.TruncGaussian(ch.MeanMbps, ch.StdMbps, ch.FloorMbps, ch.MeanMbps+4*ch.StdMbps+1)
	return Condition{BandwidthMbps: bw, Signal: ch.signalFor(bw)}
}

// signalFor maps a drawn bandwidth to a signal band: weak below the
// regular threshold, medium within 1.5x of it, strong above.
func (ch Channel) signalFor(bw float64) SignalStrength {
	switch {
	case bw <= RegularBandwidthMbps:
		return SignalWeak
	case bw <= 1.5*RegularBandwidthMbps:
		return SignalMedium
	default:
		return SignalStrong
	}
}

// TxSeconds returns the time to transfer payloadBytes in the given
// condition, both directions of the round trip (model download +
// gradient upload) counted once each by the caller.
func TxSeconds(payloadBytes float64, cond Condition) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	bps := cond.BandwidthMbps * 1e6 / 8
	if bps <= 0 {
		return math.Inf(1)
	}
	return payloadBytes / bps
}

// TxWatts returns the radio power during transmission at the given
// signal strength: P_TX^S in paper Eq. 3, growing exponentially as the
// signal weakens.
func (ch Channel) TxWatts(s SignalStrength) float64 {
	return ch.BaseTxWatts * math.Pow(ch.WeakTxFactor, float64(s))
}

// TxJoules implements paper Eq. 3: E_comm = P_TX^S × t_TX.
func (ch Channel) TxJoules(payloadBytes float64, cond Condition) float64 {
	t := TxSeconds(payloadBytes, cond)
	if math.IsInf(t, 1) {
		return math.Inf(1)
	}
	return ch.TxWatts(cond.Signal) * t
}

// RoundTrip aggregates one device's full communication for a round:
// download of the global model and upload of the update (both sized at
// modelBytes, as FedAvg sends full parameters both ways).
type RoundTrip struct {
	Seconds float64
	Joules  float64
}

// CommRoundTrip computes the communication time and energy for one
// participant-round.
func (ch Channel) CommRoundTrip(modelBytes float64, cond Condition) RoundTrip {
	sec := 2 * TxSeconds(modelBytes, cond)
	j := 2 * ch.TxJoules(modelBytes, cond)
	return RoundTrip{Seconds: sec, Joules: j}
}

// CommModel memoizes the channel's pure per-signal-band transmission
// power (the math.Pow in TxWatts) so the simulation round loop stops
// re-deriving it for every participant of every round. RoundTrip is
// bit-identical to Channel.CommRoundTrip — enforced by
// TestCommModelMatchesCommRoundTrip — and safe for concurrent use once
// built.
type CommModel struct {
	ch      Channel
	txWatts [3]float64 // indexed by SignalStrength
}

// Model builds the memoized form of the channel.
func (ch Channel) Model() CommModel {
	m := CommModel{ch: ch}
	for s := SignalStrong; s <= SignalWeak; s++ {
		m.txWatts[s] = ch.TxWatts(s)
	}
	return m
}

// RoundTrip is Channel.CommRoundTrip with the per-band power memoized.
func (m *CommModel) RoundTrip(modelBytes float64, cond Condition) RoundTrip {
	t := TxSeconds(modelBytes, cond)
	sec := 2 * t
	if math.IsInf(t, 1) {
		// Replicates TxJoules' explicit guard: the original returns Inf
		// here, where watts*Inf could produce NaN for a zero-power
		// channel.
		return RoundTrip{Seconds: sec, Joules: math.Inf(1)}
	}
	w := 0.0
	if cond.Signal >= 0 && int(cond.Signal) < len(m.txWatts) {
		w = m.txWatts[cond.Signal]
	} else {
		// Out-of-range bands cannot come from Sample, but a
		// hand-constructed Condition still gets the unmemoized answer.
		w = m.ch.TxWatts(cond.Signal)
	}
	return RoundTrip{Seconds: sec, Joules: 2 * (w * t)}
}
