package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"fedgpo/internal/stats"
)

func TestStableChannelMostlyRegular(t *testing.T) {
	ch := StableChannel()
	rng := stats.NewRNG(1)
	regular := 0
	n := 5000
	for i := 0; i < n; i++ {
		if ch.Sample(rng).Regular() {
			regular++
		}
	}
	if frac := float64(regular) / float64(n); frac < 0.95 {
		t.Errorf("stable channel regular fraction = %v, want >= 0.95", frac)
	}
}

func TestUnstableChannelOftenBad(t *testing.T) {
	ch := UnstableChannel()
	rng := stats.NewRNG(2)
	bad := 0
	n := 5000
	for i := 0; i < n; i++ {
		if !ch.Sample(rng).Regular() {
			bad++
		}
	}
	frac := float64(bad) / float64(n)
	if frac < 0.3 || frac > 0.9 {
		t.Errorf("unstable channel bad fraction = %v, want in [0.3, 0.9]", frac)
	}
}

func TestSampleRespectsFloor(t *testing.T) {
	ch := UnstableChannel()
	rng := stats.NewRNG(3)
	for i := 0; i < 10000; i++ {
		c := ch.Sample(rng)
		if c.BandwidthMbps < ch.FloorMbps {
			t.Fatalf("bandwidth %v below floor", c.BandwidthMbps)
		}
	}
}

func TestSignalBands(t *testing.T) {
	ch := StableChannel()
	cases := []struct {
		bw   float64
		want SignalStrength
	}{
		{10, SignalWeak},
		{40, SignalWeak},
		{41, SignalMedium},
		{60, SignalMedium},
		{61, SignalStrong},
		{200, SignalStrong},
	}
	for _, c := range cases {
		if got := ch.signalFor(c.bw); got != c.want {
			t.Errorf("signalFor(%v) = %v, want %v", c.bw, got, c.want)
		}
	}
}

func TestTxSeconds(t *testing.T) {
	cond := Condition{BandwidthMbps: 8} // 1 MB/s
	if got := TxSeconds(2e6, cond); math.Abs(got-2) > 1e-9 {
		t.Errorf("TxSeconds = %v, want 2", got)
	}
	if TxSeconds(0, cond) != 0 {
		t.Error("zero payload should take zero time")
	}
	if !math.IsInf(TxSeconds(1, Condition{BandwidthMbps: 0}), 1) {
		t.Error("zero bandwidth should be infinite time")
	}
}

func TestTxPowerGrowsExponentiallyWithWeakSignal(t *testing.T) {
	ch := StableChannel()
	pStrong := ch.TxWatts(SignalStrong)
	pMedium := ch.TxWatts(SignalMedium)
	pWeak := ch.TxWatts(SignalWeak)
	if !(pStrong < pMedium && pMedium < pWeak) {
		t.Fatalf("power should rise as signal weakens: %v %v %v", pStrong, pMedium, pWeak)
	}
	r1 := pMedium / pStrong
	r2 := pWeak / pMedium
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("power growth should be geometric: ratios %v vs %v", r1, r2)
	}
}

func TestTxJoulesEq3(t *testing.T) {
	ch := StableChannel()
	cond := Condition{BandwidthMbps: 8, Signal: SignalWeak}
	want := ch.TxWatts(SignalWeak) * TxSeconds(5e6, cond)
	if got := ch.TxJoules(5e6, cond); math.Abs(got-want) > 1e-9 {
		t.Errorf("TxJoules = %v, want %v", got, want)
	}
}

func TestCommRoundTripDoublesOneWay(t *testing.T) {
	ch := StableChannel()
	cond := Condition{BandwidthMbps: 20, Signal: SignalMedium}
	rt := ch.CommRoundTrip(4e6, cond)
	if math.Abs(rt.Seconds-2*TxSeconds(4e6, cond)) > 1e-9 {
		t.Errorf("round-trip seconds = %v", rt.Seconds)
	}
	if math.Abs(rt.Joules-2*ch.TxJoules(4e6, cond)) > 1e-9 {
		t.Errorf("round-trip joules = %v", rt.Joules)
	}
}

func TestWeakSignalCostsMoreEnergyForSamePayload(t *testing.T) {
	// The straggler-energy story: a device at weak signal pays more
	// time AND more power for the same upload.
	ch := UnstableChannel()
	good := ch.CommRoundTrip(8e6, Condition{BandwidthMbps: 80, Signal: SignalStrong})
	bad := ch.CommRoundTrip(8e6, Condition{BandwidthMbps: 10, Signal: SignalWeak})
	if bad.Seconds <= good.Seconds || bad.Joules <= good.Joules {
		t.Errorf("weak link should cost more: %+v vs %+v", bad, good)
	}
}

func TestSignalStringCoverage(t *testing.T) {
	if SignalStrong.String() != "strong" || SignalWeak.String() != "weak" ||
		SignalMedium.String() != "medium" || SignalStrength(42).String() != "unknown" {
		t.Error("signal labels changed")
	}
}

func TestPropertyTxMonotoneInPayload(t *testing.T) {
	ch := StableChannel()
	f := func(p1, p2 uint32, bwRaw uint16) bool {
		bw := 1 + float64(bwRaw%200)
		cond := Condition{BandwidthMbps: bw, Signal: SignalMedium}
		a, b := float64(p1%10_000_000), float64(p2%10_000_000)
		if a > b {
			a, b = b, a
		}
		return TxSeconds(a, cond) <= TxSeconds(b, cond) &&
			ch.TxJoules(a, cond) <= ch.TxJoules(b, cond)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelSampleDeterministicPerSeed(t *testing.T) {
	ch := UnstableChannel()
	a, b := stats.NewRNG(99), stats.NewRNG(99)
	for i := 0; i < 100; i++ {
		ca, cb := ch.Sample(a), ch.Sample(b)
		if ca != cb {
			t.Fatalf("same-seed channels diverged at %d: %+v vs %+v", i, ca, cb)
		}
	}
}
