package netsim

import (
	"math"
	"testing"

	"fedgpo/internal/stats"
)

// TestCommModelMatchesCommRoundTrip is the memo's contract: RoundTrip
// must be bit-identical to Channel.CommRoundTrip over sampled and
// hand-built conditions, including the degenerate zero-bandwidth /
// zero-power corners.
func TestCommModelMatchesCommRoundTrip(t *testing.T) {
	channels := map[string]Channel{
		"stable":    StableChannel(),
		"unstable":  UnstableChannel(),
		"zeropower": {MeanMbps: 50, StdMbps: 10, FloorMbps: 1, BaseTxWatts: 0, WeakTxFactor: 1.9},
	}
	payloads := []float64{0, 1, 3.2e6, 1.7e7}
	for name, ch := range channels {
		m := ch.Model()
		conds := []Condition{
			{BandwidthMbps: 0, Signal: SignalWeak}, // Inf transfer time
			{BandwidthMbps: 12, Signal: SignalWeak},
			{BandwidthMbps: 55, Signal: SignalMedium},
			{BandwidthMbps: 90, Signal: SignalStrong},
			{BandwidthMbps: 30, Signal: SignalStrength(7)}, // out-of-range band
		}
		rng := stats.NewRNG(7)
		for i := 0; i < 200; i++ {
			conds = append(conds, ch.Sample(rng))
		}
		for _, cond := range conds {
			for _, payload := range payloads {
				want := ch.CommRoundTrip(payload, cond)
				got := m.RoundTrip(payload, cond)
				if math.Float64bits(got.Seconds) != math.Float64bits(want.Seconds) ||
					math.Float64bits(got.Joules) != math.Float64bits(want.Joules) {
					t.Fatalf("%s payload=%g cond=%+v: memo %+v != direct %+v",
						name, payload, cond, got, want)
				}
			}
		}
	}
}
