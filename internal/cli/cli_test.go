package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedgpo/internal/exp"
	"fedgpo/internal/runtime"
)

func parse(t *testing.T, args ...string) *RuntimeFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

// The shared block must register every runtime flag once, with the
// pool backend and the adaptive inner budget as the defaults.
func TestRegisterDefaultsAndParsing(t *testing.T) {
	f := parse(t)
	if f.Backend != BackendPool || f.Parallel != 0 || f.CacheDir != "" || f.CacheMaxBytes != 0 {
		t.Errorf("unexpected defaults: %+v", f)
	}
	if f.InnerParallel != -1 {
		t.Errorf("inner-parallel default = %d, want -1 (adaptive)", f.InnerParallel)
	}
	if f.ListScenarios {
		t.Error("list-scenarios should default to false")
	}
	f = parse(t, "-parallel", "3", "-inner-parallel", "2", "-cachedir", "/tmp/x",
		"-cache-max-bytes", "1024", "-backend", "procs", "-procs", "4", "-worker-bin", "/bin/w",
		"-workers", "10.0.0.5:9331, 10.0.0.6:9331")
	if f.Parallel != 3 || f.InnerParallel != 2 || f.CacheDir != "/tmp/x" ||
		f.CacheMaxBytes != 1024 || f.Backend != "procs" || f.Procs != 4 || f.WorkerBin != "/bin/w" {
		t.Errorf("flags not parsed: %+v", f)
	}
	if got := f.remotes(); len(got) != 2 || got[0] != "10.0.0.5:9331" || got[1] != "10.0.0.6:9331" {
		t.Errorf("remotes = %v", got)
	}
}

// -workers must select the shard coordinator even under the default
// backend, need no local worker binary when it carries the whole
// fleet, and mix with local -procs when one is requested.
func TestRuntimeBuildsTCPWorkers(t *testing.T) {
	rt, err := parse(t, "-workers", "127.0.0.1:9331,127.0.0.1:9332").Runtime()
	if err != nil {
		t.Fatal(err)
	}
	// No dial happens at construction; the endpoints are visible in the
	// stats snapshot and each remote counts as one worker until its
	// hello advertises a capacity.
	eps := rt.Stats().Endpoints
	if len(eps) != 2 || eps[0].Endpoint != "tcp:127.0.0.1:9331" || eps[1].Endpoint != "tcp:127.0.0.1:9332" {
		t.Fatalf("remote-only endpoints = %+v", eps)
	}
	if rt.Workers() != 2 {
		t.Errorf("remote-only workers = %d, want 2", rt.Workers())
	}

	bin := filepath.Join(t.TempDir(), "fedgpo-worker")
	if err := os.WriteFile(bin, []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	rt, err = parse(t, "-workers", "127.0.0.1:9331", "-procs", "2", "-worker-bin", bin).Runtime()
	if err != nil {
		t.Fatal(err)
	}
	eps = rt.Stats().Endpoints
	if len(eps) != 2 || !strings.HasPrefix(eps[0].Endpoint, "stdio:") || eps[1].Endpoint != "tcp:127.0.0.1:9331" {
		t.Fatalf("mixed endpoints = %+v", eps)
	}
	if rt.Workers() != 3 {
		t.Errorf("mixed fleet workers = %d, want 2 local + 1 remote", rt.Workers())
	}
}

// Runtime must build a pool runtime, apply the inner budget, and
// prune the cache directory to the configured byte budget at startup.
func TestRuntimeBuildsPoolAndPrunes(t *testing.T) {
	dir := t.TempDir()
	cache, err := runtime.NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := cache.Put(strings.Repeat("k", i+1), runtime.Result{Key: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	f := parse(t, "-parallel", "2", "-inner-parallel", "3", "-cachedir", dir, "-cache-max-bytes", "1")
	rt, err := f.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Workers() != 2 || rt.InnerParallel() != 3 {
		t.Errorf("runtime knobs lost: workers=%d inner=%d", rt.Workers(), rt.InnerParallel())
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("cache dir holds %d entries after a 1-byte budget prune", len(left))
	}
}

// -list-scenarios must print every preset with parseable resolved
// spec JSON, and stay inert when not requested.
func TestHandleListScenarios(t *testing.T) {
	var quiet strings.Builder
	if parse(t).HandleListScenarios(&quiet) {
		t.Fatal("HandleListScenarios fired without the flag")
	}
	if quiet.Len() != 0 {
		t.Errorf("inert call wrote %q", quiet.String())
	}
	var out strings.Builder
	if !parse(t, "-list-scenarios").HandleListScenarios(&out) {
		t.Fatal("HandleListScenarios did not fire with the flag")
	}
	s := out.String()
	for _, p := range exp.Presets() {
		if !strings.Contains(s, p.Name+" — ") {
			t.Errorf("listing missing preset %q", p.Name)
		}
	}
	// Every JSON block decodes back into a valid scenario spec
	// (presets are separated by blank lines; the indented JSON holds
	// none).
	decoded := 0
	for _, block := range strings.Split(s, "\n\n") {
		i := strings.Index(block, "{")
		if i < 0 {
			continue
		}
		specs, err := exp.DecodeScenarios([]byte(block[i:]))
		if err != nil {
			t.Fatalf("listing JSON does not decode: %v", err)
		}
		decoded += len(specs)
	}
	if decoded != len(exp.Presets()) {
		t.Errorf("listing decoded %d specs, want %d", decoded, len(exp.Presets()))
	}
}

// An unknown backend and a missing worker binary must fail loudly at
// startup, not at first batch.
func TestRuntimeRejectsBadBackendConfig(t *testing.T) {
	if _, err := parse(t, "-backend", "bogus").Runtime(); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("bogus backend error = %v", err)
	}
	missing := filepath.Join(t.TempDir(), "nope")
	if _, err := parse(t, "-backend", "procs", "-worker-bin", missing).Runtime(); err == nil || !strings.Contains(err.Error(), "worker-bin") {
		t.Errorf("missing worker-bin error = %v", err)
	}
}

// With an explicit existing worker binary, the procs runtime builds;
// without -procs, a -parallel cap bounds the subprocess count instead
// of being silently ignored.
func TestRuntimeBuildsProcs(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "fedgpo-worker")
	if err := os.WriteFile(bin, []byte("#!/bin/sh\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	f := parse(t, "-backend", "procs", "-procs", "2", "-worker-bin", bin)
	rt, err := f.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Workers() != 2 {
		t.Errorf("procs runtime workers = %d, want 2", rt.Workers())
	}
	f = parse(t, "-backend", "procs", "-parallel", "3", "-worker-bin", bin)
	rt, err = f.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Workers() != 3 {
		t.Errorf("procs runtime with -parallel 3 got %d workers, want 3", rt.Workers())
	}
}

// -route defaults to affinity, accepts pull, and anything else is
// rejected before the runtime is built.
func TestRouteFlagParsesAndValidates(t *testing.T) {
	if f := parse(t); f.Route != "affinity" {
		t.Errorf("route default = %q, want affinity", f.Route)
	}
	for _, route := range []string{"affinity", "pull"} {
		rt, err := parse(t, "-route", route, "-workers", "127.0.0.1:9331").Runtime()
		if err != nil {
			t.Fatalf("-route=%s rejected: %v", route, err)
		}
		_ = rt
	}
	if _, err := parse(t, "-route", "random").Runtime(); err == nil ||
		!strings.Contains(err.Error(), `unknown -route "random"`) {
		t.Errorf("-route=random error = %v, want unknown -route", err)
	}
}

// EndpointLine appends the scheduling view — affinity hit rate, stolen
// jobs, pushed snapshot bytes — only when the router actually placed
// work there, so pull-route and pool-backend summaries are unchanged.
func TestEndpointLineSchedulingColumns(t *testing.T) {
	base := runtime.EndpointStats{Endpoint: "tcp:10.0.0.5:9331", Dispatched: 12, Retried: 1}
	if line := EndpointLine(base); strings.Contains(line, "affinity") || strings.Contains(line, "snaps") {
		t.Errorf("idle scheduling columns leaked into %q", line)
	}
	ep := base
	ep.AffinityHits, ep.AffinityMisses, ep.Stolen, ep.SnapBytesSent = 9, 3, 2, 4096
	line := EndpointLine(ep)
	for _, want := range []string{"9/12 affinity hits", "(2 stolen)", "4096 B snaps pushed"} {
		if !strings.Contains(line, want) {
			t.Errorf("EndpointLine = %q, missing %q", line, want)
		}
	}
	// No steals -> no parenthetical.
	ep.Stolen = 0
	if line := EndpointLine(ep); strings.Contains(line, "stolen") {
		t.Errorf("EndpointLine = %q, stray stolen column", line)
	}
}

// Both -v summaries print the fleet in EndpointStats order, which the
// coordinator sorts by name — so two runs over the same fleet list
// endpoints identically regardless of dispatch timing.
func TestEndpointOrderingDeterministic(t *testing.T) {
	rt, err := parse(t, "-workers", "127.0.0.1:9332,127.0.0.1:9331").Runtime()
	if err != nil {
		t.Fatal(err)
	}
	eps := rt.Stats().Endpoints
	if len(eps) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(eps))
	}
	if eps[0].Endpoint > eps[1].Endpoint {
		t.Errorf("endpoint stats not sorted by name: %q before %q", eps[0].Endpoint, eps[1].Endpoint)
	}
}
