// Package cli centralizes the experiment-runtime flag surface shared
// by the fedgpo CLIs (report, sweep, sim, train): worker counts,
// run-cache location and byte budget, execution-backend selection and
// remote worker-pool endpoints. Each CLI registers the block once and
// builds its exp.Runtime from the parsed values, so a new runtime knob
// lands in every tool by construction.
package cli

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"fedgpo/internal/exp"
	"fedgpo/internal/runtime"
	"fedgpo/internal/telemetry"
	"fedgpo/internal/workload"
)

// BackendPool and BackendProcs are the -backend flag values.
const (
	BackendPool  = "pool"
	BackendProcs = "procs"
)

// RuntimeFlags holds the shared runtime flag block after parsing.
type RuntimeFlags struct {
	// Parallel is the in-process simulation worker count (pool
	// backend; 0 = all cores).
	Parallel int
	// InnerParallel is the per-round participant fan-out budget
	// (results are identical for any value). Negative selects the
	// adaptive split: each batch derives its budget from its shape.
	InnerParallel int
	// CacheDir persists the content-addressed run cache.
	CacheDir string
	// CacheMaxBytes, when positive, prunes the cache directory at
	// startup — oldest entries first — until it fits the budget.
	CacheMaxBytes int64
	// Backend selects the execution backend (pool or procs).
	Backend string
	// Procs is the worker subprocess count for -backend=procs.
	Procs int
	// Workers lists remote TCP worker pools (comma-separated
	// host:port) for the shard coordinator; non-empty selects the
	// procs backend even when -backend is left at its default.
	Workers string
	// WorkerBin overrides the fedgpo-worker binary location.
	WorkerBin string
	// Route selects the procs-backend dispatch policy: "affinity"
	// (capacity-weighted pretrain-key routing with work-stealing
	// fallback, the default) or "pull" (pure pull-order work queue).
	// Results are byte-identical either way.
	Route string
	// ListScenarios requests the scenario-preset listing and exit.
	ListScenarios bool
	// MetricsOut, when set, writes the runtime's telemetry snapshot
	// (phase timings, counters, per-endpoint latency) as JSON on exit.
	MetricsOut string
	// TraceLevel selects RL decision tracing ("none" or "decisions").
	TraceLevel string
}

// Register installs the shared runtime flags on fs and returns the
// struct they parse into; read it after fs.Parse.
func Register(fs *flag.FlagSet) *RuntimeFlags {
	f := &RuntimeFlags{}
	fs.IntVar(&f.Parallel, "parallel", 0, "simulation worker count (0 = all cores)")
	fs.IntVar(&f.InnerParallel, "inner-parallel", -1,
		"per-round participant fan-out budget shared across simulations (-1 = derive from batch shape, 0 = serial rounds; results are identical for any value; worker subprocesses only fan out for explicit positive values)")
	fs.StringVar(&f.CacheDir, "cachedir", "", "persist the run cache under this directory")
	fs.Int64Var(&f.CacheMaxBytes, "cache-max-bytes", 0,
		"evict least-recently-used cache entries at startup until the cache dir fits this byte budget (0 = keep everything)")
	fs.StringVar(&f.Backend, "backend", BackendPool,
		"execution backend: pool (in-process workers) or procs (worker subprocesses sharing -cachedir)")
	fs.IntVar(&f.Procs, "procs", 0, "worker subprocess count for -backend=procs (0 = -parallel if set, else all cores; with -workers, 0 = no local subprocesses)")
	fs.StringVar(&f.Workers, "workers", "",
		"comma-separated host:port TCP worker pools (fedgpo-worker -listen) to dispatch cells to; implies -backend=procs, mixable with local -procs")
	fs.StringVar(&f.WorkerBin, "worker-bin", "",
		"fedgpo-worker binary for -backend=procs (default: next to this binary, then $PATH)")
	fs.StringVar(&f.Route, "route", "affinity",
		"procs-backend dispatch policy: affinity (group cells by pretrain key onto capacity-weighted endpoints, steal to drain stragglers) or pull (pure pull-order queue); results are byte-identical either way")
	fs.BoolVar(&f.ListScenarios, "list-scenarios", false,
		"print the scenario presets and their resolved spec JSON, then exit")
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write the run's telemetry snapshot (phase timings, cache/sim counters, per-endpoint dispatch latency) as JSON to this file")
	fs.StringVar(&f.TraceLevel, "trace-level", "",
		"RL decision tracing: 'decisions' records each FedGPO cell's per-round state, masked action set, chosen action, reward and Q-delta as spec-addressed cache artifacts (tracing a cached cell costs one re-run; re-tracing costs zero); results stay byte-identical")
	return f
}

// HandleListScenarios prints the scenario-preset listing to w and
// reports true when -list-scenarios was requested; callers return
// immediately on true. Each preset is shown with its resolved
// ScenarioSpec JSON for the CNN-MNIST workload — other workloads
// substitute the workload block, everything else is workload-
// independent (the auto deadline resolves per workload at run time).
func (f *RuntimeFlags) HandleListScenarios(w io.Writer) bool {
	if !f.ListScenarios {
		return false
	}
	fmt.Fprintln(w, "scenario presets (spec JSON resolved for CNN-MNIST):")
	for _, p := range exp.Presets() {
		fmt.Fprintf(w, "\n%s — %s\n", p.Name, p.Description)
		fmt.Fprintln(w, string(exp.EncodeScenario(p.Build(workload.CNNMNIST()))))
	}
	return true
}

// Runtime builds the experiment runtime the parsed flags describe:
// cache (pruned to the byte budget), execution backend, and inner
// worker budget.
func (f *RuntimeFlags) Runtime() (*exp.Runtime, error) {
	switch f.Route {
	case "", "affinity", "pull":
	default:
		return nil, fmt.Errorf("cli: unknown -route %q (valid: affinity, pull)", f.Route)
	}
	cache, err := runtime.NewCache(f.CacheDir)
	if err != nil {
		return nil, err
	}
	if _, err := cache.Prune(f.CacheMaxBytes); err != nil {
		return nil, err
	}
	remotes := f.remotes()
	var backend runtime.Backend
	switch {
	case (f.Backend == "" || f.Backend == BackendPool) && len(remotes) == 0:
		backend = runtime.NewPoolBackend(f.Parallel)
	case f.Backend == "" || f.Backend == BackendPool || f.Backend == BackendProcs:
		// -workers selects the shard coordinator even under the default
		// -backend: dispatching to remote pools is meaningless on the
		// in-process backend, and silently ignoring the flag would be
		// worse than upgrading it.
		procs := f.Procs
		if procs <= 0 {
			// A requested parallelism cap applies to whichever backend
			// runs the batch: without an explicit -procs, -parallel
			// bounds the subprocess count too (never silently ignored).
			// With remote pools configured, no cap means no local
			// subprocesses — the remotes carry the batch.
			procs = f.Parallel
			if procs <= 0 && len(remotes) > 0 {
				procs = 0
			}
		}
		var bin string
		if len(remotes) == 0 || procs > 0 {
			// Local sessions spawn subprocesses; remote-only fleets
			// need no worker binary on this machine.
			var err error
			if bin, err = f.workerBin(); err != nil {
				return nil, err
			}
		}
		backend = runtime.NewProcBackend(runtime.ProcConfig{
			WorkerBin:     bin,
			Procs:         procs,
			Workers:       remotes,
			CacheDir:      f.CacheDir,
			InnerParallel: f.InnerParallel,
			Route:         f.Route,
		})
	default:
		return nil, fmt.Errorf("cli: unknown backend %q (valid: %s, %s)", f.Backend, BackendPool, BackendProcs)
	}
	rt := exp.NewRuntimeWithBackend(backend, cache)
	rt.SetInnerParallel(f.InnerParallel)
	switch f.TraceLevel {
	case "", "none":
		// tracing off
	case telemetry.TraceDecisions:
		rt.SetTraceLevel(telemetry.TraceDecisions)
	default:
		return nil, fmt.Errorf("cli: unknown -trace-level %q (valid: none, %s)", f.TraceLevel, telemetry.TraceDecisions)
	}
	return rt, nil
}

// WriteMetrics writes the runtime's telemetry snapshot to the
// -metrics-out file (no-op when the flag is unset). Call it after the
// run's work completes so the snapshot covers everything.
func (f *RuntimeFlags) WriteMetrics(rt *exp.Runtime) error {
	if f.MetricsOut == "" {
		return nil
	}
	b, err := json.MarshalIndent(rt.Metrics(), "", "  ")
	if err != nil {
		return fmt.Errorf("cli: encoding metrics: %w", err)
	}
	if err := os.WriteFile(f.MetricsOut, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("cli: writing -metrics-out: %w", err)
	}
	return nil
}

// EndpointLine renders one endpoint's dispatch summary for the CLIs'
// -v output — counters first, then the wire-level view (request
// frames, realized batch density, raw bytes both ways) when the
// endpoint actually moved frames, then the scheduling view (affinity
// hit rate, stolen jobs, snapshot bytes pushed) when the affinity
// router made any placement decision there. Endpoints print in
// EndpointStats order, which is sorted by name — the same deterministic
// ordering both -v summaries share.
func EndpointLine(ep runtime.EndpointStats) string {
	line := fmt.Sprintf("  endpoint %s: %d dispatched, %d retried, %d failed",
		ep.Endpoint, ep.Dispatched, ep.Retried, ep.Failed)
	if ep.Frames > 0 {
		line += fmt.Sprintf(", %d frames (%.1f specs/frame), %d B sent / %d B recv",
			ep.Frames, float64(ep.Specs)/float64(ep.Frames), ep.BytesSent, ep.BytesRecv)
	}
	if placed := ep.AffinityHits + ep.AffinityMisses; placed > 0 {
		line += fmt.Sprintf(", %d/%d affinity hits", ep.AffinityHits, placed)
		if ep.Stolen > 0 {
			line += fmt.Sprintf(" (%d stolen)", ep.Stolen)
		}
	}
	if ep.SnapBytesSent > 0 {
		line += fmt.Sprintf(", %d B snaps pushed", ep.SnapBytesSent)
	}
	return line + "\n"
}

// remotes parses -workers into its host:port list (empty entries from
// stray commas are dropped).
func (f *RuntimeFlags) remotes() []string {
	var out []string
	for _, a := range strings.Split(f.Workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// workerBin resolves the fedgpo-worker binary: the explicit flag, a
// sibling of the running executable, then $PATH.
func (f *RuntimeFlags) workerBin() (string, error) {
	if f.WorkerBin != "" {
		if _, err := os.Stat(f.WorkerBin); err != nil {
			return "", fmt.Errorf("cli: -worker-bin: %w", err)
		}
		return f.WorkerBin, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "fedgpo-worker")
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("fedgpo-worker"); err == nil {
		return p, nil
	}
	return "", errors.New("cli: fedgpo-worker binary not found (build cmd/fedgpo-worker next to this binary, put it on $PATH, or pass -worker-bin)")
}
