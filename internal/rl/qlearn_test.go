package rl

import (
	"testing"

	"fedgpo/internal/stats"
)

func newTable(t *testing.T, actions int, eps float64) *QTable {
	t.Helper()
	cfg := PaperConfig()
	cfg.Epsilon = eps
	return NewQTable(actions, cfg, stats.NewRNG(1))
}

// newLowInitTable builds a table whose initial values sit below any
// reward used in these tests, so greedy behaviour is driven purely by
// learned values rather than optimistic initialization.
func newLowInitTable(t *testing.T, actions int, eps float64) *QTable {
	t.Helper()
	cfg := PaperConfig()
	cfg.Epsilon = eps
	cfg.InitLo, cfg.InitHi = -0.5, 0.5
	return NewQTable(actions, cfg, stats.NewRNG(1))
}

func TestPaperConfigValues(t *testing.T) {
	c := PaperConfig()
	if c.LearningRate != 0.9 || c.Discount != 0.1 || c.Epsilon != 0.1 {
		t.Errorf("paper hyperparameters changed: %+v", c)
	}
}

func TestNewQTablePanics(t *testing.T) {
	cases := []func(){
		func() { NewQTable(0, PaperConfig(), stats.NewRNG(1)) },
		func() {
			c := PaperConfig()
			c.LearningRate = 0
			NewQTable(3, c, stats.NewRNG(1))
		},
		func() {
			c := PaperConfig()
			c.Discount = 1
			NewQTable(3, c, stats.NewRNG(1))
		},
		func() {
			c := PaperConfig()
			c.Epsilon = 2
			NewQTable(3, c, stats.NewRNG(1))
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestValuesRandomInitWithinBounds(t *testing.T) {
	tab := newTable(t, 10, 0.1)
	row := tab.Values("s0")
	if len(row) != 10 {
		t.Fatalf("row size = %d", len(row))
	}
	cfg := PaperConfig()
	for _, v := range row {
		if v < cfg.InitLo || v >= cfg.InitHi {
			t.Errorf("init value %v outside [%v, %v)", v, cfg.InitLo, cfg.InitHi)
		}
	}
	// Same state returns the same row.
	row2 := tab.Values("s0")
	for i := range row {
		if row[i] != row2[i] {
			t.Fatal("re-reading a state re-initialized it")
		}
	}
	if tab.States() != 1 {
		t.Errorf("states = %d, want 1", tab.States())
	}
}

func TestUpdateMovesTowardTarget(t *testing.T) {
	tab := newLowInitTable(t, 4, 0)
	before := tab.Values("s")[2]
	tab.Update("s", 2, 10, "s2")
	after := tab.Values("s")[2]
	if after <= before {
		t.Errorf("positive reward should raise Q: %v -> %v", before, after)
	}
	// Repeated updates with constant reward converge to
	// R + µ·maxQ(S') fixed point (with S' fixed and its row untouched).
	for i := 0; i < 200; i++ {
		tab.Update("s", 2, 10, "s2")
	}
	want := 10 + 0.1*tab.MaxQ("s2")
	got := tab.Values("s")[2]
	if diff := got - want; diff > 0.01 || diff < -0.01 {
		t.Errorf("fixed point = %v, want %v", got, want)
	}
}

func TestGreedySelectionExploitsLearnedValues(t *testing.T) {
	tab := newLowInitTable(t, 5, 0) // epsilon 0: pure exploitation
	for i := 0; i < 50; i++ {
		tab.Update("s", 3, 100, "s")
	}
	for i := 0; i < 100; i++ {
		if got := tab.Select("s"); got != 3 {
			t.Fatalf("greedy selection = %d, want 3", got)
		}
	}
	if tab.Best("s") != 3 {
		t.Error("Best should be 3")
	}
}

func TestEpsilonGreedyExploresAtExpectedRate(t *testing.T) {
	tab := newLowInitTable(t, 10, 0.5)
	for i := 0; i < 50; i++ {
		tab.Update("s", 0, 100, "s")
	}
	nonGreedy := 0
	n := 20000
	for i := 0; i < n; i++ {
		if tab.Select("s") != 0 {
			nonGreedy++
		}
	}
	// With eps=0.5 and 10 actions, non-greedy rate = 0.5 * 9/10 = 0.45.
	rate := float64(nonGreedy) / float64(n)
	if rate < 0.42 || rate > 0.48 {
		t.Errorf("non-greedy rate = %v, want ~0.45", rate)
	}
}

func TestUpdatePanicsOnBadAction(t *testing.T) {
	tab := newTable(t, 3, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tab.Update("s", 3, 1, "s")
}

func TestConvergenceDetection(t *testing.T) {
	tab := newTable(t, 3, 0)
	if tab.Converged(1e9, 1) {
		t.Error("untouched table must not be converged")
	}
	// Constant reward drives deltas to zero.
	for i := 0; i < 300; i++ {
		tab.Update("s", 0, 5, "s")
	}
	if !tab.Converged(0.01, 50) {
		t.Errorf("table should have converged; deltaEMA = %v", tab.DeltaEMA())
	}
	if tab.Updates() != 300 {
		t.Errorf("updates = %d", tab.Updates())
	}
}

func TestMemoryBytesGrowsWithStates(t *testing.T) {
	tab := newTable(t, 30, 0.1)
	m0 := tab.MemoryBytes()
	for i := 0; i < 100; i++ {
		tab.Values(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	if tab.MemoryBytes() <= m0 {
		t.Error("memory estimate should grow with states")
	}
}

func TestSetEpsilon(t *testing.T) {
	tab := newTable(t, 3, 0.1)
	tab.SetEpsilon(0)
	if tab.Epsilon() != 0 {
		t.Error("SetEpsilon did not stick")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on bad epsilon")
		}
	}()
	tab.SetEpsilon(-1)
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	cfg := PaperConfig()
	a := NewQTable(5, cfg, stats.NewRNG(7))
	b := NewQTable(5, cfg, stats.NewRNG(7))
	for i := 0; i < 50; i++ {
		sa, sb := a.Select("x"), b.Select("x")
		if sa != sb {
			t.Fatalf("same-seed tables diverged at %d", i)
		}
		a.Update("x", sa, float64(i%7), "x")
		b.Update("x", sb, float64(i%7), "x")
	}
}
