package rl

import (
	"testing"

	"fedgpo/internal/stats"
)

func TestSetMaskPanics(t *testing.T) {
	tab := newTable(t, 4, 0.1)
	for i, mask := range [][]bool{
		{true, false},                // wrong length
		{false, false, false, false}, // allows nothing
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			tab.SetMask(mask)
		}()
	}
}

func TestMaskedSelectionNeverPicksMaskedOut(t *testing.T) {
	tab := newTable(t, 6, 0.5) // heavy exploration
	tab.SetMask([]bool{false, true, false, true, false, true})
	for i := 0; i < 2000; i++ {
		a := tab.Select("s")
		if a%2 == 0 {
			t.Fatalf("selected masked-out action %d", a)
		}
	}
	if b := tab.Best("s"); b%2 == 0 {
		t.Fatalf("Best returned masked-out action %d", b)
	}
}

func TestMaskCopiedNotAliased(t *testing.T) {
	tab := newTable(t, 3, 0)
	mask := []bool{true, false, true}
	tab.SetMask(mask)
	mask[0] = false
	mask[2] = false
	// The table must still be able to select (its copy allows 0 and 2).
	if a := tab.Select("s"); a == 1 {
		t.Fatal("mutating the caller's slice changed the table's mask")
	}
}

func TestBestOfIntersectsWithTableMask(t *testing.T) {
	tab := newLowInitTable(t, 4, 0)
	tab.SetMask([]bool{true, true, true, false})
	// Teach action 2 the highest value.
	for i := 0; i < 30; i++ {
		tab.Update("s", 2, 50, "s")
	}
	// Per-call set excludes action 2: best among {0, 1}.
	got := tab.BestOf("s", []bool{true, true, false, true})
	if got != 0 && got != 1 {
		t.Fatalf("BestOf = %d, want 0 or 1", got)
	}
	// Empty intersection falls back to the table mask (action 2 wins).
	if got := tab.BestOf("s", []bool{false, false, false, true}); got != 2 {
		t.Fatalf("fallback BestOf = %d, want greedy 2", got)
	}
}

func TestSelectOfExploresWithinAllowedSet(t *testing.T) {
	cfg := PaperConfig()
	cfg.Epsilon = 1 // always explore
	tab := NewQTable(5, cfg, stats.NewRNG(3))
	allowed := []bool{false, true, false, true, false}
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		a := tab.SelectOf("s", allowed)
		if !allowed[a] {
			t.Fatalf("explored disallowed action %d", a)
		}
		seen[a] = true
	}
	if len(seen) != 2 {
		t.Fatalf("exploration covered %d actions, want 2", len(seen))
	}
}

func TestSelectOfShortAllowedSliceIsSafe(t *testing.T) {
	tab := newTable(t, 5, 0)
	// A short allowed slice must not panic; indices past its end are
	// treated as disallowed.
	a := tab.SelectOf("s", []bool{true, true})
	if a != 0 && a != 1 {
		t.Fatalf("SelectOf with short slice = %d", a)
	}
}

func TestMaskedMaxQUsesAllowedBest(t *testing.T) {
	tab := newLowInitTable(t, 3, 0)
	for i := 0; i < 30; i++ {
		tab.Update("s", 0, 5, "s")
		tab.Update("s", 2, 50, "s")
	}
	full := tab.MaxQ("s")
	tab.SetMask([]bool{true, true, false})
	masked := tab.MaxQ("s")
	if masked >= full {
		t.Fatalf("masked MaxQ %v should drop below unmasked %v", masked, full)
	}
}

func TestKnownStatesListsMaterialized(t *testing.T) {
	tab := newTable(t, 2, 0)
	tab.Values("a")
	tab.Values("b")
	states := tab.KnownStates()
	if len(states) != 2 {
		t.Fatalf("KnownStates = %v", states)
	}
	seen := map[string]bool{}
	for _, s := range states {
		seen[s] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("KnownStates missing entries: %v", states)
	}
}
