// Package rl is the tabular reinforcement-learning substrate of
// FedGPO: a Q-table with epsilon-greedy action selection and the
// Q-learning update of paper Algorithm 2,
//
//	Q(S,A) ← Q(S,A) + γ[R + µ·max_A' Q(S',A') − Q(S,A)]
//
// where γ is the learning rate and µ the discount factor (the paper's
// naming; note it swaps the conventional α/γ letters). The paper uses
// lookup tables for their sub-microsecond decision latency (§3.3,
// §5.4); states are pre-discretized strings and actions are dense
// indices.
package rl

import (
	"fedgpo/internal/stats"
)

// Config holds the Q-learning hyperparameters. The paper selects
// γ=0.9, µ=0.1, ϵ=0.1 by sensitivity analysis (§4.1, footnote 3).
type Config struct {
	// LearningRate is γ in Algorithm 2.
	LearningRate float64
	// Discount is µ in Algorithm 2.
	Discount float64
	// Epsilon is the exploration probability of the epsilon-greedy
	// policy.
	Epsilon float64
	// InitLo/InitHi bound the random initialization of Q values
	// ("Initialize Q(S,A) as random values").
	InitLo, InitHi float64
}

// PaperConfig returns the hyperparameters the paper settles on
// (γ=0.9, µ=0.1, ϵ=0.1). The initialization range is optimistic —
// above the best achievable reward — so the greedy policy sweeps every
// untried action once before settling; with the paper's plain random
// init the first positive-reward action becomes sticky and the 30-way
// (B, E) action set is never properly explored within a training run.
func PaperConfig() Config {
	return Config{LearningRate: 0.9, Discount: 0.1, Epsilon: 0.1, InitLo: 110, InitHi: 120}
}

// QTable is a tabular action-value function over string-encoded states
// and a fixed, dense action set. It is not safe for concurrent use.
type QTable struct {
	cfg     Config
	actions int
	rng     *stats.RNG
	q       map[string][]float64
	// mask, when set, restricts both greedy selection and exploration
	// to allowed actions (see SetMask).
	mask []bool
	// deltaEMA tracks the magnitude of recent updates; it is the
	// convergence signal ("the largest Q(S,A) value is converged").
	deltaEMA *stats.EMA
	updates  int
}

// NewQTable builds a table with the given number of actions. rng drives
// both random initialization and exploration. It panics if actions <= 0.
func NewQTable(actions int, cfg Config, rng *stats.RNG) *QTable {
	if actions <= 0 {
		panic("rl: need at least one action")
	}
	if cfg.LearningRate <= 0 || cfg.LearningRate > 1 {
		panic("rl: learning rate must be in (0,1]")
	}
	if cfg.Discount < 0 || cfg.Discount >= 1 {
		panic("rl: discount must be in [0,1)")
	}
	if cfg.Epsilon < 0 || cfg.Epsilon > 1 {
		panic("rl: epsilon must be in [0,1]")
	}
	return &QTable{
		cfg:      cfg,
		actions:  actions,
		rng:      rng,
		q:        make(map[string][]float64),
		deltaEMA: stats.NewEMA(0.1),
	}
}

// Actions returns the size of the action set.
func (t *QTable) Actions() int { return t.actions }

// Values returns the Q-row for a state, lazily initializing unseen
// states with random values in [InitLo, InitHi). The returned slice is
// the live row; callers must not modify it.
func (t *QTable) Values(state string) []float64 {
	row, ok := t.q[state]
	if !ok {
		row = make([]float64, t.actions)
		span := t.cfg.InitHi - t.cfg.InitLo
		for i := range row {
			row[i] = t.cfg.InitLo + span*t.rng.Float64()
		}
		t.q[state] = row
	}
	return row
}

// SetMask restricts action selection to the allowed set: masked-out
// actions are never chosen greedily nor explored (they can still be
// updated if forced externally). FedGPO uses this to prune per-category
// parameter combinations whose predicted local training time cannot
// meet any reasonable round budget — Table 2's discrete values are
// themselves "a feasible range for resource-constrained edge devices",
// and the profile-informed mask extends that feasibility screen per
// device category. SetMask panics if the mask length mismatches the
// action set or allows nothing.
func (t *QTable) SetMask(allowed []bool) {
	if len(allowed) != t.actions {
		panic("rl: mask length must equal action count")
	}
	any := false
	for _, a := range allowed {
		if a {
			any = true
			break
		}
	}
	if !any {
		panic("rl: mask must allow at least one action")
	}
	t.mask = append([]bool(nil), allowed...)
}

// allowed reports whether an action is selectable.
func (t *QTable) allowed(a int) bool {
	return t.mask == nil || t.mask[a]
}

// Best returns the greedy action for a state, honoring the mask.
func (t *QTable) Best(state string) int {
	row := t.Values(state)
	best := -1
	for a, v := range row {
		if !t.allowed(a) {
			continue
		}
		if best == -1 || v > row[best] {
			best = a
		}
	}
	return best
}

// MaxQ returns the value of the greedy action for a state.
func (t *QTable) MaxQ(state string) float64 {
	return t.Values(state)[t.Best(state)]
}

// Select picks an action epsilon-greedily: with probability ϵ a uniform
// random allowed action (exploration), otherwise the greedy one
// (exploitation).
func (t *QTable) Select(state string) int {
	if t.rng.Bernoulli(t.cfg.Epsilon) {
		if t.mask == nil {
			return t.rng.Intn(t.actions)
		}
		for {
			a := t.rng.Intn(t.actions)
			if t.mask[a] {
				return a
			}
		}
	}
	return t.Best(state)
}

// BestOf returns the greedy action among the intersection of the
// table mask and the supplied per-call allowed set. If the
// intersection is empty it falls back to Best (table mask only).
func (t *QTable) BestOf(state string, allowed []bool) int {
	row := t.Values(state)
	best := -1
	for a, v := range row {
		if !t.allowed(a) || a >= len(allowed) || !allowed[a] {
			continue
		}
		if best == -1 || v > row[best] {
			best = a
		}
	}
	if best == -1 {
		return t.Best(state)
	}
	return best
}

// SelectOf picks epsilon-greedily within the intersection of the table
// mask and the supplied allowed set (falling back to the table mask if
// the intersection is empty). FedGPO uses this with its per-observation
// feasibility set: actions whose predicted time under the *currently
// observed* interference would straggle the round are excluded from
// both exploitation and exploration.
func (t *QTable) SelectOf(state string, allowed []bool) int {
	candidates := t.CandidatesOf(allowed)
	if len(candidates) == 0 {
		return t.Select(state)
	}
	if t.rng.Bernoulli(t.cfg.Epsilon) {
		return candidates[t.rng.Intn(len(candidates))]
	}
	row := t.Values(state)
	best := candidates[0]
	for _, a := range candidates[1:] {
		if row[a] > row[best] {
			best = a
		}
	}
	return best
}

// CandidatesOf returns the action set SelectOf draws from: the
// intersection of the table mask and the supplied per-call allowed
// set, in action order. It consumes no randomness and mutates nothing,
// so callers (e.g. decision tracing) can inspect the masked action set
// without perturbing the selection stream.
func (t *QTable) CandidatesOf(allowed []bool) []int {
	candidates := make([]int, 0, t.actions)
	for a := 0; a < t.actions; a++ {
		if t.allowed(a) && a < len(allowed) && allowed[a] {
			candidates = append(candidates, a)
		}
	}
	return candidates
}

// AllowedActions returns the actions the table mask admits, in action
// order (every action for an unmasked table).
func (t *QTable) AllowedActions() []int {
	actions := make([]int, 0, t.actions)
	for a := 0; a < t.actions; a++ {
		if t.allowed(a) {
			actions = append(actions, a)
		}
	}
	return actions
}

// Update applies the Algorithm 2 rule for a transition
// (state, action, reward, nextState) and returns the applied Q-delta
// (learning-rate-scaled TD error).
func (t *QTable) Update(state string, action int, reward float64, nextState string) float64 {
	if action < 0 || action >= t.actions {
		panic("rl: action out of range")
	}
	row := t.Values(state)
	target := reward + t.cfg.Discount*t.MaxQ(nextState)
	delta := t.cfg.LearningRate * (target - row[action])
	row[action] += delta
	t.deltaEMA.Add(abs(delta))
	t.updates++
	return delta
}

// Updates returns the number of Update calls so far.
func (t *QTable) Updates() int { return t.updates }

// DeltaEMA returns the smoothed magnitude of recent updates; a small
// value means the table (and hence the largest Q per state) has
// converged.
func (t *QTable) DeltaEMA() float64 { return t.deltaEMA.Value() }

// Converged reports whether recent updates have settled below the
// threshold. It returns false until a minimum number of updates has
// accumulated, so an untouched table never reads as converged.
func (t *QTable) Converged(threshold float64, minUpdates int) bool {
	return t.updates >= minUpdates && t.deltaEMA.Value() < threshold
}

// States returns the number of distinct states materialized so far.
func (t *QTable) States() int { return len(t.q) }

// MemoryBytes estimates the table's resident size: 8 bytes per Q value
// plus key storage — the §5.4 footprint figure.
func (t *QTable) MemoryBytes() int {
	total := 0
	for k := range t.q {
		total += len(k) + t.actions*8
	}
	return total
}

// SetEpsilon changes the exploration rate; FedGPO drops to pure
// exploitation once the learning phase completes (§3.3).
func (t *QTable) SetEpsilon(eps float64) {
	if eps < 0 || eps > 1 {
		panic("rl: epsilon must be in [0,1]")
	}
	t.cfg.Epsilon = eps
}

// Epsilon returns the current exploration rate.
func (t *QTable) Epsilon() float64 { return t.cfg.Epsilon }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TableSnapshot is the serializable learned state of a QTable: the
// materialized Q rows plus everything that shapes future selection and
// convergence tracking. It deliberately excludes the RNG — snapshots
// are restored into a fresh deterministic stream (see Restore), which
// only matters for lazily initializing states the table has not seen.
type TableSnapshot struct {
	Q         map[string][]float64 `json:"q"`
	Mask      []bool               `json:"mask,omitempty"`
	Epsilon   float64              `json:"epsilon"`
	Updates   int                  `json:"updates"`
	Delta     float64              `json:"delta"`
	DeltaInit bool                 `json:"deltaInit"`
}

// Snapshot captures the table's learned state. The returned rows are
// deep copies; mutating the table afterwards does not affect them.
func (t *QTable) Snapshot() TableSnapshot {
	q := make(map[string][]float64, len(t.q))
	for s, row := range t.q {
		q[s] = append([]float64(nil), row...)
	}
	delta, init := t.deltaEMA.State()
	return TableSnapshot{
		Q:         q,
		Mask:      append([]bool(nil), t.mask...),
		Epsilon:   t.cfg.Epsilon,
		Updates:   t.updates,
		Delta:     delta,
		DeltaInit: init,
	}
}

// Restore builds a table from a snapshot. cfg supplies the learning
// hyperparameters (the snapshot's epsilon overrides cfg's — a frozen
// table comes back frozen); rng drives lazy initialization of states
// the snapshot has not materialized, so restoration from an identical
// snapshot with an identically seeded rng behaves identically.
func Restore(actions int, cfg Config, rng *stats.RNG, snap TableSnapshot) *QTable {
	cfg.Epsilon = snap.Epsilon
	t := NewQTable(actions, cfg, rng)
	for s, row := range snap.Q {
		t.q[s] = append([]float64(nil), row...)
	}
	if len(snap.Mask) > 0 {
		t.SetMask(snap.Mask)
	}
	t.updates = snap.Updates
	t.deltaEMA.Restore(snap.Delta, snap.DeltaInit)
	return t
}

// KnownStates lists the states materialized so far, in map order.
func (t *QTable) KnownStates() []string {
	out := make([]string, 0, len(t.q))
	for k := range t.q {
		out = append(out, k)
	}
	return out
}
