package device

import "math"

// WorkloadShape is the hardware-relevant fingerprint of a neural
// network workload: how much arithmetic and memory one training sample
// costs, how big the model transfer is, and how memory-bound the layer
// mix is. The workload package produces these values for CNN-MNIST,
// LSTM-Shakespeare and MobileNet-ImageNet; the device model consumes
// them without knowing anything about datasets or layers.
type WorkloadShape struct {
	// FLOPsPerSample is the arithmetic cost of one forward+backward
	// pass on one sample.
	FLOPsPerSample float64
	// BytesPerSample is the activation working-set per in-flight
	// sample; multiplied by batch size it drives memory pressure.
	BytesPerSample float64
	// ModelBytes is the parameter payload uploaded/downloaded each
	// round and triplicated in memory during training (weights,
	// gradients, optimizer state).
	ModelBytes float64
	// MemoryIntensity in [0,1] is the fraction of execution bound by
	// memory bandwidth rather than compute. Recurrent layers
	// (LSTM-Shakespeare) sit high; conv/FC mixes sit low. Paper §2.1
	// attributes LSTM's preference for small batches to this pressure.
	MemoryIntensity float64
}

// Interference is the co-running application load on a device for one
// round, produced by the interfere package: fractions in [0,1] of CPU
// and memory consumed by other apps (paper states S_Co_CPU / S_Co_MEM).
type Interference struct {
	CPUUsage float64
	MemUsage float64
}

// Compute-model constants. These are calibration knobs, not paper
// numbers; they are chosen so that the *relative* timing behaviour the
// paper characterizes (Fig. 3) holds: per-round time falls with B as
// per-batch overhead amortizes, rises again when the working set
// outgrows RAM (earliest on low-end devices), and scales linearly in E.
const (
	// flopEfficiency is the fraction of theoretical peak GFLOPS real
	// on-device training achieves. Mobile DL frameworks (the paper
	// trains with DL4j) run far below peak — a few percent — which is
	// why local training takes minutes per round on phones and why the
	// straggler problem dominates FL round time.
	flopEfficiency = 0.03
	// batchHalfSize is the batch size at which SIMD/pipeline
	// utilization reaches half of its asymptote.
	batchHalfSize = 2.0
	// overheadFLOPs is the fixed per-batch cost (launch, data
	// movement) expressed in equivalent FLOPs so it shrinks on faster
	// devices.
	overheadFLOPs = 6e7
	// trainRAMFraction is the share of device RAM available to
	// training once OS and resident apps are accounted for.
	trainRAMFraction = 0.45
	// modelStateCopies is weights + gradients + optimizer state.
	modelStateCopies = 3.0
	// thrashSlope scales the slowdown once the working set exceeds
	// the RAM budget.
	thrashSlope = 2.0
	// cpuContention is how strongly co-runner CPU usage steals
	// training throughput (multi-core devices absorb some of it).
	cpuContention = 0.75
)

// BatchesPerEpoch returns ceil(samples/batch). It panics on a
// non-positive batch size.
func BatchesPerEpoch(samples, batch int) int {
	if batch <= 0 {
		panic("device: batch size must be positive")
	}
	if samples <= 0 {
		return 0
	}
	return (samples + batch - 1) / batch
}

// ComputeSeconds returns the local-training wall time for one round on
// a device: E epochs over `samples` examples with minibatch size B,
// under the given co-runner interference.
func ComputeSeconds(p Profile, w WorkloadShape, b, e, samples int, intf Interference) float64 {
	if e <= 0 || samples <= 0 {
		return 0
	}
	iters := e * BatchesPerEpoch(samples, b)

	effFLOPS := p.GFLOPS * 1e9 * flopEfficiency
	// Small batches underutilize the processing units.
	batchEff := float64(b) / (float64(b) + batchHalfSize)
	perBatchSec := (float64(b)*w.FLOPsPerSample + overheadFLOPs) / (effFLOPS * batchEff)

	// Memory pressure: working set vs. the RAM left for training.
	workingSet := w.ModelBytes*modelStateCopies + float64(b)*w.BytesPerSample
	ramBudget := p.RAMBytes * trainRAMFraction * (1 - Clamp01(intf.MemUsage))
	memSlow := 1.0
	if ramBudget > 0 && workingSet > ramBudget {
		over := workingSet/ramBudget - 1
		memSlow = 1 + w.MemoryIntensity*thrashSlope*over
	} else if ramBudget <= 0 {
		memSlow = 1 + w.MemoryIntensity*thrashSlope
	}

	// Shared-core contention from co-running applications.
	cpuSlow := 1 / (1 - cpuContention*Clamp01(intf.CPUUsage)*0.99)

	return float64(iters) * perBatchSec * memSlow * cpuSlow
}

// Clamp01 limits v to [0, 1].
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ComputeJoules implements paper Eq. (2): the energy of the busy
// interval at the training V/F step plus the idle draw over the
// remainder of the round. busySec is the device's local training time;
// idleSec is the rest of the round it spends waiting on stragglers.
// Training runs CPU and GPU at their top steps (performance governor),
// which is how on-device DL frameworks execute.
func ComputeJoules(p Profile, busySec, idleSec float64) float64 {
	busyPower := p.CPU.PowerAt(p.CPU.Steps) + p.GPU.PowerAt(p.GPU.Steps)
	if busySec < 0 {
		busySec = 0
	}
	if idleSec < 0 {
		idleSec = 0
	}
	return busyPower*busySec + p.IdleWatts*idleSec
}

// ComputeJoulesAtStep is the DVFS-general form of Eq. (2) used by the
// governor ablation: the CPU and GPU run at the given steps during the
// busy interval.
func ComputeJoulesAtStep(p Profile, busySec, idleSec float64, cpuStep, gpuStep int) float64 {
	busyPower := p.CPU.PowerAt(cpuStep) + p.GPU.PowerAt(gpuStep)
	if busySec < 0 {
		busySec = 0
	}
	if idleSec < 0 {
		idleSec = 0
	}
	return busyPower*busySec + p.IdleWatts*idleSec
}

// ParticipantJoules is the round energy of a selected device: local
// training at full busy power (Eq. 2) plus the wait for the global
// aggregation at WaitWatts — the straggler-induced "redundant energy"
// of paper Fig. 5. Communication energy is accounted separately by the
// channel model (Eq. 3).
func ParticipantJoules(p Profile, busySec, waitSec float64) float64 {
	if busySec < 0 {
		busySec = 0
	}
	if waitSec < 0 {
		waitSec = 0
	}
	busyPower := p.CPU.PowerAt(p.CPU.Steps) + p.GPU.PowerAt(p.GPU.Steps)
	return busyPower*busySec + p.WaitWatts*waitSec
}

// IdleJoules implements paper Eq. (4): the energy a non-participating
// device burns for the duration of the round.
func IdleJoules(p Profile, roundSec float64) float64 {
	if roundSec < 0 {
		roundSec = 0
	}
	return p.IdleWatts * roundSec
}

// SlowdownVsBaseline reports the ratio of a device's compute time under
// interference to its clean time — a characterization helper used by
// the Fig. 4 experiment.
func SlowdownVsBaseline(p Profile, w WorkloadShape, b, e, samples int, intf Interference) float64 {
	clean := ComputeSeconds(p, w, b, e, samples, Interference{})
	if clean == 0 {
		return 1
	}
	return ComputeSeconds(p, w, b, e, samples, intf) / clean
}

// MemoryFootprintBytes returns the training working set for a batch
// size, used for feasibility checks (a configuration whose working set
// exceeds device RAM entirely is rejected by the simulator).
func MemoryFootprintBytes(w WorkloadShape, b int) float64 {
	return w.ModelBytes*modelStateCopies + float64(b)*w.BytesPerSample
}

// FitsInMemory reports whether a batch size is runnable at all on the
// profile (working set within physical RAM).
func FitsInMemory(p Profile, w WorkloadShape, b int) bool {
	return MemoryFootprintBytes(w, b) <= p.RAMBytes
}

// EnergyPerSampleJ is a characterization helper: joules per training
// sample at the given configuration, ignoring idle time.
func EnergyPerSampleJ(p Profile, w WorkloadShape, b, e, samples int) float64 {
	if samples <= 0 || e <= 0 {
		return 0
	}
	t := ComputeSeconds(p, w, b, e, samples, Interference{})
	return ComputeJoules(p, t, 0) / (float64(samples) * float64(e))
}

// RoundTimeGapRatio computes max/min compute time across profiles for a
// configuration — the straggler gap the paper's Fig. 3 and Fig. 4
// characterize.
func RoundTimeGapRatio(w WorkloadShape, b, e, samples int, intf map[Category]Interference) float64 {
	profiles := Profiles()
	minT, maxT := math.Inf(1), 0.0
	for c, p := range profiles {
		t := ComputeSeconds(p, w, b, e, samples, intf[c])
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	if minT == 0 {
		return 1
	}
	return maxT / minT
}
