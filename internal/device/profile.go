// Package device models the participant hardware of the FedGPO paper:
// three smartphone performance categories (high/mid/low-end), their
// compute capability and memory capacity (paper Table 3), their CPU/GPU
// DVFS power envelopes (paper Table 4), and the utilization-based
// compute and idle energy formulations (paper Eqs. 2 and 4).
//
// The paper emulated the fleet with Amazon EC2 instances of equivalent
// GFLOPS/RAM and measured power on three representative phones with a
// Monsoon meter; this package implements the analytic models the paper
// distilled those measurements into.
package device

import "fmt"

// Category is a device performance category. The paper groups the
// in-the-field device population into high-end (H), mid-end (M) and
// low-end (L) devices.
type Category int

// Device performance categories, ordered from fastest to slowest.
const (
	High Category = iota
	Mid
	Low
	NumCategories = 3
)

// String returns the paper's single-letter label for the category.
func (c Category) String() string {
	switch c {
	case High:
		return "H"
	case Mid:
		return "M"
	case Low:
		return "L"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in order.
func Categories() []Category { return []Category{High, Mid, Low} }

// PowerCurve describes a processing unit's DVFS envelope: its number of
// voltage/frequency steps and the power drawn at the top step. Power at
// intermediate steps follows the classic P ∝ f·V² ≈ f³ scaling between
// a floor and the peak, which is the shape the utilization-based models
// the paper cites (Joseph & Martonosi; Kim et al.) assume.
type PowerCurve struct {
	MaxFreqGHz float64 // top frequency step
	Steps      int     // number of V/F steps (paper Table 4)
	PeakWatts  float64 // power at the top step, busy (paper Table 4)
	FloorWatts float64 // power at the lowest step, busy
}

// PowerAt returns the busy power at V/F step (1-based; Steps = top).
// Steps outside [1, Steps] are clamped.
func (p PowerCurve) PowerAt(step int) float64 {
	if p.Steps <= 1 {
		return p.PeakWatts
	}
	if step < 1 {
		step = 1
	}
	if step > p.Steps {
		step = p.Steps
	}
	frac := float64(step) / float64(p.Steps)
	// Cubic interpolation between floor and peak.
	return p.FloorWatts + (p.PeakWatts-p.FloorWatts)*frac*frac*frac
}

// FreqAt returns the clock frequency (GHz) at a V/F step, scaling
// linearly with the step index.
func (p PowerCurve) FreqAt(step int) float64 {
	if p.Steps <= 0 {
		return p.MaxFreqGHz
	}
	if step < 1 {
		step = 1
	}
	if step > p.Steps {
		step = p.Steps
	}
	return p.MaxFreqGHz * float64(step) / float64(p.Steps)
}

// Profile is the static hardware description of one device category.
// Performance and RAM come from paper Table 3 (EC2 equivalents); the
// CPU/GPU envelopes from paper Table 4 (measured phones).
type Profile struct {
	Category  Category
	Name      string  // representative phone (Table 4)
	Instance  string  // EC2 instance the paper emulated with (Table 3)
	GFLOPS    float64 // theoretical peak compute (Table 3)
	RAMBytes  float64 // memory capacity (Table 3)
	CPU       PowerCurve
	GPU       PowerCurve
	IdleWatts float64 // whole-device idle draw (screen-off estimate)
	// WaitWatts is the draw while a participant that finished local
	// training waits for the global aggregation: the FL runtime keeps
	// the training context resident, holds wakelocks, and busy-polls
	// the server over an active radio, so the device sits near busy
	// power (~75% of peak here). This is the "redundant energy
	// consumption" of the straggler problem — the paper's Fig. 5 shows
	// fast devices under fixed parameters consuming energy comparable
	// to the slow devices they wait for, which is only possible if
	// waiting draws close to busy power.
	WaitWatts float64
}

// PeakBusyWatts is the device's total busy power with CPU and GPU at
// their top V/F steps, as during on-device training.
func (p Profile) PeakBusyWatts() float64 { return p.CPU.PeakWatts + p.GPU.PeakWatts }

const gb = 1024 * 1024 * 1024

// Profiles returns the three category profiles with the paper's
// published numbers. Idle power is not tabulated in the paper; the
// values here are typical screen-off smartphone draws scaled by device
// class, and only relative magnitudes matter for the normalized results.
func Profiles() map[Category]Profile {
	return map[Category]Profile{
		High: {
			Category:  High,
			Name:      "Mi8Pro",
			Instance:  "m4.large",
			GFLOPS:    153.6,
			RAMBytes:  8 * gb,
			CPU:       PowerCurve{MaxFreqGHz: 2.8, Steps: 23, PeakWatts: 5.5, FloorWatts: 0.7},
			GPU:       PowerCurve{MaxFreqGHz: 0.7, Steps: 7, PeakWatts: 2.8, FloorWatts: 0.4},
			IdleWatts: 0.35,
			WaitWatts: 6.2,
		},
		Mid: {
			Category:  Mid,
			Name:      "Galaxy S10e",
			Instance:  "t3a.medium",
			GFLOPS:    80.0,
			RAMBytes:  4 * gb,
			CPU:       PowerCurve{MaxFreqGHz: 2.7, Steps: 21, PeakWatts: 5.6, FloorWatts: 0.7},
			GPU:       PowerCurve{MaxFreqGHz: 0.7, Steps: 9, PeakWatts: 2.4, FloorWatts: 0.35},
			IdleWatts: 0.30,
			WaitWatts: 5.8,
		},
		Low: {
			Category:  Low,
			Name:      "Moto X Force",
			Instance:  "t2.small",
			GFLOPS:    52.8,
			RAMBytes:  2 * gb,
			CPU:       PowerCurve{MaxFreqGHz: 1.9, Steps: 15, PeakWatts: 3.6, FloorWatts: 0.5},
			GPU:       PowerCurve{MaxFreqGHz: 0.6, Steps: 6, PeakWatts: 2.0, FloorWatts: 0.3},
			IdleWatts: 0.25,
			WaitWatts: 4.2,
		},
	}
}

// Device is one participant in the federation: a profile plus fleet
// identity. Round-varying state (interference, bandwidth, data shard)
// lives in the simulation layer, keeping Device immutable and safe to
// share.
type Device struct {
	ID      int
	Profile Profile
}

// FleetComposition is the number of devices of each category.
// The paper composes 200 devices as 30 H, 70 M, 100 L by reference to
// an in-the-field performance distribution. The JSON form is the
// device-class mix of a serialized scenario spec.
type FleetComposition struct {
	High int `json:"high,omitempty"`
	Mid  int `json:"mid,omitempty"`
	Low  int `json:"low,omitempty"`
}

// Key renders the composition canonically for cache keys, e.g.
// "H30:M70:L100".
func (f FleetComposition) Key() string {
	return fmt.Sprintf("H%d:M%d:L%d", f.High, f.Mid, f.Low)
}

// PaperComposition returns the paper's 30/70/100 fleet mix.
func PaperComposition() FleetComposition { return FleetComposition{High: 30, Mid: 70, Low: 100} }

// Total returns the fleet size.
func (f FleetComposition) Total() int { return f.High + f.Mid + f.Low }

// Scale returns the composition proportionally resized to total n
// (rounding keeps the sum exactly n; remainders go to the Low class,
// the most populous in the paper's mix). It panics if n <= 0.
func (f FleetComposition) Scale(n int) FleetComposition {
	if n <= 0 {
		panic("device: fleet size must be positive")
	}
	t := float64(f.Total())
	h := int(float64(f.High) / t * float64(n))
	m := int(float64(f.Mid) / t * float64(n))
	l := n - h - m
	return FleetComposition{High: h, Mid: m, Low: l}
}

// NewFleet builds the device list for a composition. Device IDs are
// assigned densely, grouped by category (H first), which makes shared
// per-category Q-table indexing trivial.
func NewFleet(comp FleetComposition) []Device {
	profiles := Profiles()
	fleet := make([]Device, 0, comp.Total())
	id := 0
	add := func(c Category, n int) {
		for i := 0; i < n; i++ {
			fleet = append(fleet, Device{ID: id, Profile: profiles[c]})
			id++
		}
	}
	add(High, comp.High)
	add(Mid, comp.Mid)
	add(Low, comp.Low)
	return fleet
}

// CountByCategory tallies a fleet by category.
func CountByCategory(fleet []Device) map[Category]int {
	out := make(map[Category]int, NumCategories)
	for _, d := range fleet {
		out[d.Profile.Category]++
	}
	return out
}
