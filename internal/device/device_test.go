package device

import (
	"math"
	"testing"
	"testing/quick"
)

// cnnShape approximates CNN-MNIST: compute-heavy, small model.
var cnnShape = WorkloadShape{
	FLOPsPerSample:  30e6,
	BytesPerSample:  2e6,
	ModelBytes:      8e6,
	MemoryIntensity: 0.15,
}

// lstmShape approximates LSTM-Shakespeare: memory-bound recurrent mix.
var lstmShape = WorkloadShape{
	FLOPsPerSample:  20e6,
	BytesPerSample:  40e6,
	ModelBytes:      16e6,
	MemoryIntensity: 0.75,
}

func TestProfilesMatchPaperTables(t *testing.T) {
	p := Profiles()
	if got := p[High].GFLOPS; got != 153.6 {
		t.Errorf("H GFLOPS = %v, want 153.6 (Table 3)", got)
	}
	if got := p[Mid].GFLOPS; got != 80.0 {
		t.Errorf("M GFLOPS = %v, want 80.0", got)
	}
	if got := p[Low].GFLOPS; got != 52.8 {
		t.Errorf("L GFLOPS = %v, want 52.8", got)
	}
	if got := p[High].RAMBytes; got != 8*gb {
		t.Errorf("H RAM = %v, want 8GB", got)
	}
	if got := p[Low].CPU.PeakWatts; got != 3.6 {
		t.Errorf("L CPU peak = %v, want 3.6W (Table 4)", got)
	}
	if got := p[High].CPU.Steps; got != 23 {
		t.Errorf("H CPU steps = %v, want 23 (Table 4)", got)
	}
	if got := p[Mid].GPU.Steps; got != 9 {
		t.Errorf("M GPU steps = %v, want 9", got)
	}
}

func TestCategoryString(t *testing.T) {
	if High.String() != "H" || Mid.String() != "M" || Low.String() != "L" {
		t.Error("category labels changed")
	}
	if Category(9).String() == "" {
		t.Error("unknown category should still stringify")
	}
}

func TestPowerCurveMonotone(t *testing.T) {
	c := Profiles()[High].CPU
	prev := 0.0
	for s := 1; s <= c.Steps; s++ {
		p := c.PowerAt(s)
		if p < prev {
			t.Fatalf("power not monotone at step %d: %v < %v", s, p, prev)
		}
		prev = p
	}
	if got := c.PowerAt(c.Steps); got != c.PeakWatts {
		t.Errorf("top-step power = %v, want peak %v", got, c.PeakWatts)
	}
	if got := c.PowerAt(0); got != c.PowerAt(1) {
		t.Error("below-range step should clamp to 1")
	}
	if got := c.PowerAt(99); got != c.PeakWatts {
		t.Error("above-range step should clamp to top")
	}
}

func TestFreqAtScalesLinearly(t *testing.T) {
	c := Profiles()[High].CPU
	if got := c.FreqAt(c.Steps); got != c.MaxFreqGHz {
		t.Errorf("top freq = %v, want %v", got, c.MaxFreqGHz)
	}
	if got := c.FreqAt(c.Steps / 2); got >= c.MaxFreqGHz {
		t.Error("mid step should be below max frequency")
	}
}

func TestFleetComposition(t *testing.T) {
	comp := PaperComposition()
	if comp.Total() != 200 {
		t.Fatalf("paper fleet = %d, want 200", comp.Total())
	}
	fleet := NewFleet(comp)
	counts := CountByCategory(fleet)
	if counts[High] != 30 || counts[Mid] != 70 || counts[Low] != 100 {
		t.Errorf("composition = %v, want 30/70/100", counts)
	}
	// IDs dense and unique.
	seen := map[int]bool{}
	for _, d := range fleet {
		if d.ID < 0 || d.ID >= 200 || seen[d.ID] {
			t.Fatalf("bad or duplicate ID %d", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestFleetScalePreservesTotalAndMix(t *testing.T) {
	comp := PaperComposition().Scale(20)
	if comp.Total() != 20 {
		t.Fatalf("scaled total = %d, want 20", comp.Total())
	}
	if comp.High != 3 || comp.Mid != 7 || comp.Low != 10 {
		t.Errorf("scaled mix = %+v, want 3/7/10", comp)
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	PaperComposition().Scale(0)
}

func TestComputeSecondsFasterOnHighEnd(t *testing.T) {
	p := Profiles()
	for _, b := range []int{1, 8, 32} {
		h := ComputeSeconds(p[High], cnnShape, b, 10, 600, Interference{})
		m := ComputeSeconds(p[Mid], cnnShape, b, 10, 600, Interference{})
		l := ComputeSeconds(p[Low], cnnShape, b, 10, 600, Interference{})
		if !(h < m && m < l) {
			t.Errorf("B=%d: expected H < M < L, got %v %v %v", b, h, m, l)
		}
	}
}

func TestComputeSecondsLinearInE(t *testing.T) {
	p := Profiles()[Mid]
	t1 := ComputeSeconds(p, cnnShape, 8, 5, 600, Interference{})
	t2 := ComputeSeconds(p, cnnShape, 8, 10, 600, Interference{})
	if math.Abs(t2/t1-2) > 1e-9 {
		t.Errorf("doubling E should double time: %v vs %v", t1, t2)
	}
}

func TestComputeSecondsOverheadAmortizesWithB(t *testing.T) {
	// Fig. 3(a): per-round time falls as B rises (until memory pressure).
	p := Profiles()[High]
	prev := math.Inf(1)
	for _, b := range []int{1, 2, 4, 8, 16} {
		cur := ComputeSeconds(p, cnnShape, b, 10, 600, Interference{})
		if cur >= prev {
			t.Errorf("B=%d: time %v did not decrease from %v", b, cur, prev)
		}
		prev = cur
	}
}

func TestMemoryPressureHurtsLowEndAtLargeB(t *testing.T) {
	// The low-end device (2GB) should suffer disproportionately from a
	// memory-hungry workload at large B — paper Fig. 3 shows training
	// time "significantly depends on computation- and memory-
	// capabilities".
	p := Profiles()
	gapSmallB := ComputeSeconds(p[Low], lstmShape, 1, 10, 600, Interference{}) /
		ComputeSeconds(p[High], lstmShape, 1, 10, 600, Interference{})
	gapLargeB := ComputeSeconds(p[Low], lstmShape, 32, 10, 600, Interference{}) /
		ComputeSeconds(p[High], lstmShape, 32, 10, 600, Interference{})
	if gapLargeB <= gapSmallB {
		t.Errorf("L/H gap should widen with B under memory pressure: small=%v large=%v",
			gapSmallB, gapLargeB)
	}
}

func TestInterferenceSlowsCompute(t *testing.T) {
	p := Profiles()[Mid]
	clean := ComputeSeconds(p, cnnShape, 8, 10, 600, Interference{})
	loaded := ComputeSeconds(p, cnnShape, 8, 10, 600, Interference{CPUUsage: 0.5, MemUsage: 0.3})
	if loaded <= clean {
		t.Errorf("interference should slow training: %v <= %v", loaded, clean)
	}
	if s := SlowdownVsBaseline(p, cnnShape, 8, 10, 600, Interference{CPUUsage: 0.5}); s <= 1 {
		t.Errorf("slowdown = %v, want > 1", s)
	}
}

func TestComputeSecondsZeroWork(t *testing.T) {
	p := Profiles()[High]
	if ComputeSeconds(p, cnnShape, 8, 0, 600, Interference{}) != 0 {
		t.Error("zero epochs should cost zero time")
	}
	if ComputeSeconds(p, cnnShape, 8, 5, 0, Interference{}) != 0 {
		t.Error("zero samples should cost zero time")
	}
}

func TestBatchesPerEpoch(t *testing.T) {
	if got := BatchesPerEpoch(10, 3); got != 4 {
		t.Errorf("ceil(10/3) = %d, want 4", got)
	}
	if got := BatchesPerEpoch(0, 3); got != 0 {
		t.Errorf("zero samples = %d batches, want 0", got)
	}
}

func TestBatchesPerEpochPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for B=0")
		}
	}()
	BatchesPerEpoch(10, 0)
}

func TestComputeJoulesEq2(t *testing.T) {
	p := Profiles()[High]
	busyPower := p.CPU.PeakWatts + p.GPU.PeakWatts
	got := ComputeJoules(p, 10, 5)
	want := busyPower*10 + p.IdleWatts*5
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ComputeJoules = %v, want %v", got, want)
	}
	if ComputeJoules(p, -1, -1) != 0 {
		t.Error("negative durations should clamp to zero energy")
	}
}

func TestComputeJoulesAtStepLowerAtLowerStep(t *testing.T) {
	p := Profiles()[High]
	top := ComputeJoulesAtStep(p, 10, 0, p.CPU.Steps, p.GPU.Steps)
	mid := ComputeJoulesAtStep(p, 10, 0, p.CPU.Steps/2, p.GPU.Steps/2)
	if mid >= top {
		t.Errorf("lower V/F step should draw less: %v >= %v", mid, top)
	}
	if top != ComputeJoules(p, 10, 0) {
		t.Error("top-step energy should equal the default model")
	}
}

func TestIdleJoulesEq4(t *testing.T) {
	p := Profiles()[Low]
	if got := IdleJoules(p, 100); math.Abs(got-p.IdleWatts*100) > 1e-12 {
		t.Errorf("IdleJoules = %v", got)
	}
	if IdleJoules(p, -5) != 0 {
		t.Error("negative round time should clamp")
	}
}

func TestFitsInMemory(t *testing.T) {
	p := Profiles()[Low]
	if !FitsInMemory(p, cnnShape, 32) {
		t.Error("CNN B=32 should fit on 2GB")
	}
	huge := WorkloadShape{BytesPerSample: 1e9, ModelBytes: 1e9}
	if FitsInMemory(p, huge, 32) {
		t.Error("32GB working set should not fit on 2GB")
	}
}

func TestRoundTimeGapRatio(t *testing.T) {
	gap := RoundTimeGapRatio(cnnShape, 8, 10, 600, map[Category]Interference{})
	if gap <= 1 {
		t.Errorf("H/L gap = %v, want > 1", gap)
	}
	// Interference on the low-end device widens the gap (Fig. 4).
	gapIntf := RoundTimeGapRatio(cnnShape, 8, 10, 600, map[Category]Interference{
		Low: {CPUUsage: 0.6},
	})
	if gapIntf <= gap {
		t.Errorf("interference should widen the gap: %v <= %v", gapIntf, gap)
	}
}

func TestEnergyPerSamplePositive(t *testing.T) {
	p := Profiles()[Mid]
	if e := EnergyPerSampleJ(p, cnnShape, 8, 10, 600); e <= 0 {
		t.Errorf("energy per sample = %v, want > 0", e)
	}
	if EnergyPerSampleJ(p, cnnShape, 8, 0, 600) != 0 {
		t.Error("zero epochs should yield zero energy per sample")
	}
}

func TestPropertyComputeTimeNonNegativeAndMonotoneInSamples(t *testing.T) {
	p := Profiles()[Mid]
	f := func(bRaw, eRaw uint8, sRaw uint16) bool {
		b := int(bRaw%32) + 1
		e := int(eRaw%20) + 1
		s := int(sRaw % 2000)
		t1 := ComputeSeconds(p, cnnShape, b, e, s, Interference{})
		t2 := ComputeSeconds(p, cnnShape, b, e, s+100, Interference{})
		return t1 >= 0 && t2 >= t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyInterferenceNeverSpeedsUp(t *testing.T) {
	p := Profiles()[Low]
	f := func(cpu, mem uint8) bool {
		intf := Interference{CPUUsage: float64(cpu%101) / 100, MemUsage: float64(mem%101) / 100}
		return SlowdownVsBaseline(p, lstmShape, 8, 10, 500, intf) >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
