package device

// CostModel memoizes the pure per-(profile, workload, batch) terms of
// ComputeSeconds so the simulation's round loop stops re-deriving
// identical math for every participant of every round. The memoized
// expressions replicate ComputeSeconds' floating-point operation order
// exactly, so a memoized call is bit-identical to the direct one — the
// equivalence is enforced by TestCostModelMatchesComputeSeconds.
//
// A CostModel is built once per (Profile, WorkloadShape) pair and
// queried many times. Warm is NOT safe for concurrent use; Seconds is
// read-only and may be called from many goroutines once the batch sizes
// in play have been warmed (the simulator warms during its serial
// phase 1 and queries during its parallel phase 2).
type CostModel struct {
	prof  Profile
	shape WorkloadShape

	// effFLOPS, ramBase and memSlope are the profile/workload constants
	// hoisted out of ComputeSeconds:
	//   effFLOPS = p.GFLOPS * 1e9 * flopEfficiency
	//   ramBase  = p.RAMBytes * trainRAMFraction
	//   memSlope = w.MemoryIntensity * thrashSlope
	// Each is the left-associated prefix of the original expression, so
	// completing it per call preserves the original rounding.
	effFLOPS float64
	ramBase  float64
	memSlope float64

	// perB[b] caches the per-batch-size terms; index 0 is unused.
	perB []batchCost
}

// batchCost holds the batch-size-dependent terms of ComputeSeconds.
type batchCost struct {
	warmed      bool
	perBatchSec float64 // (b*FLOPsPerSample + overheadFLOPs) / (effFLOPS * batchEff)
	workingSet  float64 // ModelBytes*modelStateCopies + b*BytesPerSample
}

// maxWarmBatch bounds the dense perB table so an absurd controller
// batch size cannot balloon the memo; larger batches fall back to the
// direct computation (still bit-identical, just unmemoized).
const maxWarmBatch = 4096

// NewCostModel builds the memo for one profile/workload pair. No batch
// sizes are warmed yet; Seconds falls back to ComputeSeconds until
// Warm(b) is called for the sizes in play.
func NewCostModel(p Profile, w WorkloadShape) *CostModel {
	return &CostModel{
		prof:     p,
		shape:    w,
		effFLOPS: p.GFLOPS * 1e9 * flopEfficiency,
		ramBase:  p.RAMBytes * trainRAMFraction,
		memSlope: w.MemoryIntensity * thrashSlope,
	}
}

// Warm precomputes the batch-dependent terms for batch size b. It is a
// no-op for sizes already warmed, non-positive, or above maxWarmBatch.
// Not safe for concurrent use (call it from the serial section that
// decides batch sizes).
func (m *CostModel) Warm(b int) {
	if b < 1 || b > maxWarmBatch {
		return
	}
	if b < len(m.perB) && m.perB[b].warmed {
		return
	}
	if b >= len(m.perB) {
		grown := make([]batchCost, b+1)
		copy(grown, m.perB)
		m.perB = grown
	}
	batchEff := float64(b) / (float64(b) + batchHalfSize)
	m.perB[b] = batchCost{
		warmed:      true,
		perBatchSec: (float64(b)*m.shape.FLOPsPerSample + overheadFLOPs) / (m.effFLOPS * batchEff),
		workingSet:  m.shape.ModelBytes*modelStateCopies + float64(b)*m.shape.BytesPerSample,
	}
}

// Seconds returns ComputeSeconds(profile, shape, b, e, samples, intf),
// bit-for-bit, using the memoized terms when b has been warmed and the
// direct computation otherwise. Safe for concurrent use as long as no
// Warm call is in flight.
func (m *CostModel) Seconds(b, e, samples int, intf Interference) float64 {
	if e <= 0 || samples <= 0 {
		return 0
	}
	if b < 1 || b >= len(m.perB) || !m.perB[b].warmed {
		return ComputeSeconds(m.prof, m.shape, b, e, samples, intf)
	}
	ent := &m.perB[b]
	iters := e * BatchesPerEpoch(samples, b)

	ramBudget := m.ramBase * (1 - Clamp01(intf.MemUsage))
	memSlow := 1.0
	if ramBudget > 0 && ent.workingSet > ramBudget {
		over := ent.workingSet/ramBudget - 1
		memSlow = 1 + m.memSlope*over
	} else if ramBudget <= 0 {
		memSlow = 1 + m.memSlope
	}

	cpuSlow := 1 / (1 - cpuContention*Clamp01(intf.CPUUsage)*0.99)

	return float64(iters) * ent.perBatchSec * memSlow * cpuSlow
}
