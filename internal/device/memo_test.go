package device

import (
	"math"
	"testing"
)

// memoTestShapes span the workload space without importing the
// workload package (which imports device): a compute-bound CNN-like
// shape, a memory-bound LSTM-like shape, and a heavyweight
// MobileNet-like shape whose working set stresses low-end RAM.
var memoTestShapes = map[string]WorkloadShape{
	"cnn":  {FLOPsPerSample: 2e7, BytesPerSample: 3e5, ModelBytes: 6e6, MemoryIntensity: 0.2},
	"lstm": {FLOPsPerSample: 6e7, BytesPerSample: 5e6, ModelBytes: 3.2e6, MemoryIntensity: 0.8},
	"mob":  {FLOPsPerSample: 1.1e9, BytesPerSample: 2e7, ModelBytes: 1.7e7, MemoryIntensity: 0.45},
}

// TestCostModelMatchesComputeSeconds is the memo's contract: warmed or
// not, Seconds must be bit-identical to the direct computation for
// every profile, workload shape, batch size and interference level.
func TestCostModelMatchesComputeSeconds(t *testing.T) {
	intfs := []Interference{
		{},
		{CPUUsage: 0.3},
		{MemUsage: 0.5},
		{CPUUsage: 0.9, MemUsage: 0.9},
		{CPUUsage: 1.5, MemUsage: 2.0}, // beyond-range values exercise the clamps
	}
	for name, w := range memoTestShapes {
		for cat, p := range Profiles() {
			m := NewCostModel(p, w)
			for _, b := range []int{1, 2, 8, 32, 256, maxWarmBatch, maxWarmBatch + 100} {
				// Check both the unwarmed fallback and the warmed path.
				for pass := 0; pass < 2; pass++ {
					if pass == 1 {
						m.Warm(b)
					}
					for _, e := range []int{0, 1, 5, 20} {
						for _, samples := range []int{0, 1, 300, 5000} {
							for _, intf := range intfs {
								want := ComputeSeconds(p, w, b, e, samples, intf)
								got := m.Seconds(b, e, samples, intf)
								if math.Float64bits(got) != math.Float64bits(want) {
									t.Fatalf("%s/%v b=%d e=%d samples=%d intf=%+v pass=%d: memo %v != direct %v",
										name, cat, b, e, samples, intf, pass, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

func TestCostModelWarmBounds(t *testing.T) {
	p := Profiles()[High]
	m := NewCostModel(p, memoTestShapes["cnn"])
	m.Warm(0)
	m.Warm(-5)
	m.Warm(maxWarmBatch + 1)
	if len(m.perB) != 0 {
		t.Fatalf("out-of-range Warm grew the table to %d entries", len(m.perB))
	}
	m.Warm(16)
	if len(m.perB) != 17 || !m.perB[16].warmed {
		t.Fatalf("Warm(16) did not populate the table (len=%d)", len(m.perB))
	}
}
