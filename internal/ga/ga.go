// Package ga implements a steady-state genetic algorithm over a
// discrete candidate set — the substrate of the paper's "Adaptive (GA)"
// baseline, which adjusts the FL global parameters every round with a
// genetic algorithm (paper §4.1, citing Alibrahim & Ludwig).
//
// Candidates are genomes of integer gene indices (one gene per
// parameter dimension, e.g. B/E/K). The population evolves one
// suggestion per Observe via tournament selection, single-point
// crossover and per-gene mutation; fitness of unevaluated genomes is
// the mean fitness of their evaluated neighbours (same dimension
// values), falling back to optimistic initialization.
package ga

import (
	"fedgpo/internal/stats"
)

// Config tunes the genetic algorithm.
type Config struct {
	// PopulationSize is the number of genomes kept.
	PopulationSize int
	// TournamentK is the selection pressure (competitors per parent
	// draw).
	TournamentK int
	// MutationRate is the per-gene probability of a random reset.
	MutationRate float64
}

// DefaultConfig is sized for round-by-round FL parameter tuning:
// a small population that turns over within tens of rounds, strong
// selection pressure, and a low mutation rate so the population
// homogenizes (and the tuner effectively exploits) once a good genome
// dominates.
func DefaultConfig() Config {
	return Config{PopulationSize: 12, TournamentK: 4, MutationRate: 0.06}
}

// Optimizer evolves genomes over the gene space. Not safe for
// concurrent use.
type Optimizer struct {
	cfg       Config
	geneSizes []int
	rng       *stats.RNG
	pop       []genome
	cursor    int // next population slot to evaluate
	gen       int
}

type genome struct {
	genes     []int
	fitness   float64
	evaluated bool
}

// New builds an optimizer over a gene space given by the number of
// discrete values per dimension (e.g. [6, 5, 5] for B, E, K). It
// panics on an empty or non-positive gene space.
func New(geneSizes []int, cfg Config, rng *stats.RNG) *Optimizer {
	if len(geneSizes) == 0 {
		panic("ga: empty gene space")
	}
	for _, s := range geneSizes {
		if s <= 0 {
			panic("ga: gene sizes must be positive")
		}
	}
	if cfg.PopulationSize < 2 || cfg.TournamentK < 1 ||
		cfg.MutationRate < 0 || cfg.MutationRate > 1 {
		panic("ga: invalid config")
	}
	o := &Optimizer{cfg: cfg, geneSizes: append([]int(nil), geneSizes...), rng: rng}
	o.pop = make([]genome, cfg.PopulationSize)
	for i := range o.pop {
		o.pop[i] = genome{genes: o.randomGenes()}
	}
	return o
}

func (o *Optimizer) randomGenes() []int {
	g := make([]int, len(o.geneSizes))
	for i, s := range o.geneSizes {
		g[i] = o.rng.Intn(s)
	}
	return g
}

// Generation returns how many full population turnovers have occurred.
func (o *Optimizer) Generation() int { return o.gen }

// Suggest returns the genome to evaluate next (a copy).
func (o *Optimizer) Suggest() []int {
	g := o.pop[o.cursor].genes
	out := make([]int, len(g))
	copy(out, g)
	return out
}

// Observe records the fitness of the genome last suggested and advances
// the evolutionary state: once the whole population has been evaluated,
// a new generation is bred.
func (o *Optimizer) Observe(fitness float64) {
	o.pop[o.cursor].fitness = fitness
	o.pop[o.cursor].evaluated = true
	o.cursor++
	if o.cursor >= len(o.pop) {
		o.evolve()
		o.cursor = 0
		o.gen++
	}
}

// Best returns the genes of the best evaluated genome so far, or a
// random genome if none has been evaluated.
func (o *Optimizer) Best() []int {
	bestIdx, bestFit, found := 0, 0.0, false
	for i, g := range o.pop {
		if g.evaluated && (!found || g.fitness > bestFit) {
			bestIdx, bestFit, found = i, g.fitness, true
		}
	}
	if !found {
		return o.randomGenes()
	}
	out := make([]int, len(o.pop[bestIdx].genes))
	copy(out, o.pop[bestIdx].genes)
	return out
}

// evolve breeds the next generation: elitism for the best genome, the
// rest from tournament selection + crossover + mutation.
func (o *Optimizer) evolve() {
	next := make([]genome, 0, len(o.pop))
	next = append(next, genome{genes: o.Best()}) // elite carries over
	for len(next) < len(o.pop) {
		a := o.tournament()
		b := o.tournament()
		child := o.crossover(a, b)
		o.mutate(child)
		next = append(next, genome{genes: child})
	}
	o.pop = next
}

// tournament returns the genes of the fittest of K random competitors.
func (o *Optimizer) tournament() []int {
	best := -1
	for i := 0; i < o.cfg.TournamentK; i++ {
		c := o.rng.Intn(len(o.pop))
		if best == -1 || o.pop[c].fitness > o.pop[best].fitness {
			best = c
		}
	}
	return o.pop[best].genes
}

// crossover performs single-point crossover.
func (o *Optimizer) crossover(a, b []int) []int {
	child := make([]int, len(a))
	cut := o.rng.Intn(len(a))
	for i := range child {
		if i <= cut {
			child[i] = a[i]
		} else {
			child[i] = b[i]
		}
	}
	return child
}

// mutate randomly resets genes at the mutation rate.
func (o *Optimizer) mutate(g []int) {
	for i := range g {
		if o.rng.Bernoulli(o.cfg.MutationRate) {
			g[i] = o.rng.Intn(o.geneSizes[i])
		}
	}
}
