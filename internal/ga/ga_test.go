package ga

import (
	"testing"

	"fedgpo/internal/stats"
)

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(nil, DefaultConfig(), stats.NewRNG(1)) },
		func() { New([]int{0}, DefaultConfig(), stats.NewRNG(1)) },
		func() {
			c := DefaultConfig()
			c.PopulationSize = 1
			New([]int{3}, c, stats.NewRNG(1))
		},
		func() {
			c := DefaultConfig()
			c.MutationRate = 2
			New([]int{3}, c, stats.NewRNG(1))
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSuggestionsWithinGeneSpace(t *testing.T) {
	o := New([]int{6, 5, 5}, DefaultConfig(), stats.NewRNG(1))
	for i := 0; i < 200; i++ {
		g := o.Suggest()
		if len(g) != 3 {
			t.Fatalf("genome length = %d", len(g))
		}
		if g[0] < 0 || g[0] >= 6 || g[1] < 0 || g[1] >= 5 || g[2] < 0 || g[2] >= 5 {
			t.Fatalf("genes out of range: %v", g)
		}
		o.Observe(0)
	}
}

func TestEvolvesTowardOptimum(t *testing.T) {
	// Fitness peaks at genes (4, 2, 3); the GA should concentrate
	// there within a few generations.
	target := []int{4, 2, 3}
	fitness := func(g []int) float64 {
		f := 0.0
		for i := range g {
			d := g[i] - target[i]
			if d < 0 {
				d = -d
			}
			f -= float64(d)
		}
		return f
	}
	o := New([]int{6, 5, 5}, DefaultConfig(), stats.NewRNG(7))
	for i := 0; i < 400; i++ {
		g := o.Suggest()
		o.Observe(fitness(g))
	}
	best := o.Best()
	if fitness(best) < -2 {
		t.Errorf("GA best %v has fitness %v, want near-optimal (>= -2)", best, fitness(best))
	}
	if o.Generation() < 10 {
		t.Errorf("expected multiple generations, got %d", o.Generation())
	}
}

func TestElitePreserved(t *testing.T) {
	// After a full generation, the best genome must survive.
	o := New([]int{10}, DefaultConfig(), stats.NewRNG(3))
	bestGene, bestFit := -1, -1e18
	for i := 0; i < o.cfg.PopulationSize; i++ {
		g := o.Suggest()
		f := float64(g[0]) // fitness = gene value
		if f > bestFit {
			bestGene, bestFit = g[0], f
		}
		o.Observe(f)
	}
	// The new population's first genome is the elite.
	if o.pop[0].genes[0] != bestGene {
		t.Errorf("elite gene = %d, want %d", o.pop[0].genes[0], bestGene)
	}
}

func TestBestWithoutEvaluationsIsValid(t *testing.T) {
	o := New([]int{4, 4}, DefaultConfig(), stats.NewRNG(5))
	g := o.Best()
	if len(g) != 2 || g[0] < 0 || g[0] >= 4 || g[1] < 0 || g[1] >= 4 {
		t.Errorf("unevaluated Best out of range: %v", g)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() []int {
		o := New([]int{6, 5, 5}, DefaultConfig(), stats.NewRNG(9))
		for i := 0; i < 100; i++ {
			g := o.Suggest()
			o.Observe(float64(-g[0] - g[1] - g[2]))
		}
		return o.Best()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed GA runs diverged")
		}
	}
}
