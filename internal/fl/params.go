// Package fl implements the federated-learning substrate the paper
// builds on: the FedAvg aggregation loop (paper Algorithm 1) executed
// as a discrete-event simulation over a heterogeneous device fleet,
// with straggler semantics, per-device compute/communication timing and
// energy accounting (paper Eqs. 2–6), and a pluggable round-by-round
// global-parameter controller — the seam where FedGPO and every
// baseline attach.
package fl

import "fmt"

// Params is one FL global-parameter setting: local minibatch size B,
// local epoch count E, and participant count K (paper Algorithm 1).
type Params struct {
	B, E, K int
}

// String formats the tuple the way the paper writes it, e.g. "(8,10,20)".
func (p Params) String() string { return fmt.Sprintf("(%d,%d,%d)", p.B, p.E, p.K) }

// Valid reports whether every component is positive.
func (p Params) Valid() bool { return p.B > 0 && p.E > 0 && p.K > 0 }

// LocalParams is the per-device portion of the action: FedGPO assigns
// (B, E) per device while K is a round-global choice.
type LocalParams struct {
	B, E int
}

// Discrete action values from paper Table 2.
var (
	bValues = []int{1, 2, 4, 8, 16, 32}
	eValues = []int{1, 5, 10, 15, 20}
	kValues = []int{1, 5, 10, 15, 20}
)

// BValues returns the discrete batch sizes of the action space.
func BValues() []int { return append([]int(nil), bValues...) }

// EValues returns the discrete local-epoch counts of the action space.
func EValues() []int { return append([]int(nil), eValues...) }

// KValues returns the discrete participant counts of the action space.
func KValues() []int { return append([]int(nil), kValues...) }

// AllParams enumerates the full discrete (B, E, K) grid
// (6 × 5 × 5 = 150 combinations), in a fixed deterministic order.
func AllParams() []Params {
	out := make([]Params, 0, len(bValues)*len(eValues)*len(kValues))
	for _, b := range bValues {
		for _, e := range eValues {
			for _, k := range kValues {
				out = append(out, Params{B: b, E: e, K: k})
			}
		}
	}
	return out
}

// AllLocalParams enumerates the per-device (B, E) grid (6 × 5 = 30).
func AllLocalParams() []LocalParams {
	out := make([]LocalParams, 0, len(bValues)*len(eValues))
	for _, b := range bValues {
		for _, e := range eValues {
			out = append(out, LocalParams{B: b, E: e})
		}
	}
	return out
}

// ParamIndex returns the position of p in AllParams(), or -1 if p is
// not on the grid. Baselines that treat the grid as an arm set
// (FedEX, BO, GA) use this to address per-arm state.
func ParamIndex(p Params) int {
	bi := indexOf(bValues, p.B)
	ei := indexOf(eValues, p.E)
	ki := indexOf(kValues, p.K)
	if bi < 0 || ei < 0 || ki < 0 {
		return -1
	}
	return (bi*len(eValues)+ei)*len(kValues) + ki
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// DefaultParams is the conventional FedAvg setting the paper's
// characterization normalizes to, (B, E, K) = (1, 10, 20) in Figs. 1–2.
func DefaultParams() Params { return Params{B: 1, E: 10, K: 20} }
