package fl

import (
	"fmt"
	"math"
	"sort"
	"time"

	"fedgpo/internal/convmodel"
	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/stats"
	"fedgpo/internal/telemetry"
	"fedgpo/internal/workload"
)

// Config describes one simulated FL deployment.
type Config struct {
	// Workload is the NN training task.
	Workload workload.Workload
	// Fleet is the device population (paper: 200 devices, 30/70/100).
	Fleet []device.Device
	// Partition assigns data to devices; Partition.NumDevices must
	// equal len(Fleet).
	Partition data.Partition
	// Channel is the wireless model (stable or unstable).
	Channel netsim.Channel
	// Interference is the co-runner model (None or Paper).
	Interference interfere.Model
	// MaxRounds bounds the simulation.
	MaxRounds int
	// DeadlineSec, when positive, is the server's absolute round
	// deadline: participants whose compute+communication exceeds it
	// have their updates dropped (the straggler-drop practice the
	// paper attributes to prior work; production FL systems close
	// rounds on a fixed time budget). Zero waits for every
	// participant.
	DeadlineSec float64
	// AggregationOverheadSec is the fixed per-round cost of server-side
	// aggregation and scheduling (model validation, participant
	// coordination). Participants wait it out at WaitWatts; the rest of
	// the fleet idles. It is the term that makes "many tiny rounds"
	// strategies pay their communication/coordination tax, as they do
	// in real FL deployments.
	AggregationOverheadSec float64
	// Seed makes the run reproducible.
	Seed int64
	// StopAtConvergence ends the run once the tracker fires (plus its
	// settle window); disable to collect full-length histories.
	StopAtConvergence bool
	// Inner, when non-nil, parallelizes the deterministic per-participant
	// modeling inside each round (compute timing, communication,
	// per-device energy terms) across the pool's shared worker budget.
	// All stochastic state is sampled serially before the fan-out and
	// results are merged in fixed device order, so the run's outcome is
	// byte-identical for any pool size (nil runs rounds serially).
	Inner *Pool
	// Telemetry, when non-nil, receives wall-clock phase timings (round
	// bodies, serial merges). It is observational only: Config is never
	// hashed into cache keys and the collector cannot influence the
	// run's outcome, which stays byte-identical with or without it.
	Telemetry *telemetry.Collector
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if len(c.Fleet) == 0 {
		return fmt.Errorf("fl: empty fleet")
	}
	if c.Partition.NumDevices() != len(c.Fleet) {
		return fmt.Errorf("fl: partition covers %d devices, fleet has %d",
			c.Partition.NumDevices(), len(c.Fleet))
	}
	if c.MaxRounds <= 0 {
		return fmt.Errorf("fl: MaxRounds must be positive")
	}
	if c.DeadlineSec < 0 {
		return fmt.Errorf("fl: DeadlineSec must be >= 0")
	}
	if c.AggregationOverheadSec < 0 {
		return fmt.Errorf("fl: AggregationOverheadSec must be >= 0")
	}
	return nil
}

// RoundRecord is one row of a run's history.
type RoundRecord struct {
	Round        int
	Accuracy     float64
	RoundSeconds float64
	EnergyJ      float64
	MeanB, MeanE float64
	PlannedK     int
	AggregatedK  int
	Dropped      int
}

// Result summarizes one simulated run.
type Result struct {
	Controller string
	Converged  bool
	// ConvergenceRound is 1-based, or -1 if the run never converged.
	ConvergenceRound int
	// RoundsExecuted is how many rounds actually ran.
	RoundsExecuted int
	// TimeToConvergenceSec / EnergyToConvergenceJ accumulate through
	// the convergence round (or the whole run if unconverged).
	TimeToConvergenceSec float64
	EnergyToConvergenceJ float64
	// FinalAccuracy is the accuracy at the end of the run.
	FinalAccuracy float64
	// PPW is the global performance-per-watt figure of merit:
	// 1 / energy-to-convergence for converged runs, scaled by the
	// fraction of target progress achieved for unconverged runs (see
	// DESIGN.md). Higher is better; the paper reports it normalized to
	// Fixed (Best).
	PPW float64
	// AvgRoundSeconds is the mean round wall time.
	AvgRoundSeconds float64
	// EnergyByCategory splits the total energy across H/M/L.
	EnergyByCategory map[device.Category]float64
	// ControllerOverheadSec is the mean wall-clock cost per round of
	// the controller's Plan+Observe calls (paper §5.4 measures this
	// for FedGPO's Q-table machinery).
	ControllerOverheadSec float64
	// History holds per-round records.
	History []RoundRecord
}

// Run executes one simulated FL training run under the given controller.
// It panics on an invalid config (programmer error); stochastic outcomes
// are all derived from cfg.Seed.
//
// Run draws its scratch arena from a process-wide pool, so an outer
// worker goroutine executing many cells back-to-back reuses one arena
// across all of them. Reuse never changes results — see Arena.
func Run(cfg Config, ctrl Controller) Result {
	a := arenaPool.Get().(*Arena)
	res := RunWithArena(cfg, ctrl, a)
	arenaPool.Put(a)
	return res
}

// RunWithArena is Run against a caller-owned arena. The result is
// byte-identical whether a is fresh or dirty from any number of prior
// runs; callers that hold an arena explicitly (benchmarks, tests) can
// measure or exercise steady-state reuse deterministically.
func RunWithArena(cfg Config, ctrl Controller, a *Arena) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	root := stats.NewRNG(cfg.Seed)
	selRNG := root.Split() // participant selection
	envRNG := root.Split() // interference + network draws
	accRNG := root.Split() // convergence-model noise

	model := convmodel.New(cfg.Workload, accRNG)
	tracker := convmodel.NewTracker(cfg.Workload)

	n := len(cfg.Fleet)
	a.beginRun(&cfg)

	res := Result{
		Controller:       ctrl.Name(),
		ConvergenceRound: -1,
		History:          make([]RoundRecord, 0, cfg.MaxRounds),
	}
	var overhead time.Duration
	// catEnergy accumulates the per-category energy across rounds in a
	// fixed array; the Result's map form is built once at the end so
	// its JSON bytes are unchanged from the per-round-map era.
	var catEnergy [device.NumCategories]float64
	prevAcc := cfg.Workload.Learn.InitialAccuracy
	prevParticipants := []int(nil)
	// chronicDrop tracks the long-run fraction of selected data that
	// misses round deadlines (see convmodel.RoundInputs).
	chronicDrop := stats.NewEMA(0.05)

	for round := 1; round <= cfg.MaxRounds; round++ {
		roundStart := time.Now()
		// 1. Observe the environment.
		states := a.states
		observeStates(&cfg, &a.part, a.samples, states, envRNG)
		obs := Observation{
			Round:            round,
			Workload:         cfg.Workload,
			Fleet:            cfg.Fleet,
			States:           states,
			PrevAccuracy:     prevAcc,
			PrevParticipants: prevParticipants,
			DeadlineSec:      cfg.DeadlineSec,
		}

		// 2. Controller decides (timed: §5.4 overhead accounting).
		t0 := time.Now()
		plan := ctrl.Plan(obs)
		overhead += time.Since(t0)

		k := plan.K
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}

		// 3. Random participant selection (paper Algorithm 1). PermInto
		// consumes exactly the draws SampleWithoutReplacement did, so
		// the selection stream is unchanged; the double-buffered
		// selection slice keeps the previous round's PrevParticipants
		// intact while this round's is written.
		selected := a.sel[round&1][:k]
		selRNG.PermInto(a.perm)
		copy(selected, a.perm[:k])
		sort.Ints(selected)

		// 4. Execute the round.
		rr := executeRound(&cfg, plan, selected, a)
		rr.Round = round
		rr.PlannedK = k
		rr.PrevAccuracy = prevAcc
		rr.States = states

		// 5. Advance the learning model with what was aggregated.
		in := aggregateInputs(rr, a)
		in.ChronicDropFraction = chronicDrop.Add(1 - in.DataFraction)
		acc := model.Step(in)
		rr.Accuracy = acc

		// 6. Feed the controller (timed).
		t0 = time.Now()
		ctrl.Observe(rr)
		overhead += time.Since(t0)

		// 7. Bookkeeping.
		prevAcc = acc
		prevParticipants = selected
		res.History = append(res.History, RoundRecord{
			Round:        round,
			Accuracy:     acc,
			RoundSeconds: rr.RoundSeconds,
			EnergyJ:      rr.EnergyGlobalJ,
			MeanB:        rr.MeanB,
			MeanE:        rr.MeanE,
			PlannedK:     k,
			AggregatedK:  rr.AggregatedK,
			Dropped:      len(selected) - rr.AggregatedK,
		})
		prevT, prevE := 0.0, 0.0
		if len(a.cumTime) > 0 {
			prevT, prevE = a.cumTime[len(a.cumTime)-1], a.cumEnergy[len(a.cumEnergy)-1]
		}
		a.cumTime = append(a.cumTime, prevT+rr.RoundSeconds)
		a.cumEnergy = append(a.cumEnergy, prevE+rr.EnergyGlobalJ)
		// Per-category adds happen key-by-key in round order, exactly
		// as they did when this was a map-over-map accumulation.
		for cat := range catEnergy {
			catEnergy[cat] += rr.EnergyByCategory[cat]
		}

		converged := tracker.Observe(acc)
		res.RoundsExecuted = round
		res.FinalAccuracy = acc
		cfg.Telemetry.RecordPhase(telemetry.PhaseRounds, time.Since(roundStart))
		if converged && cfg.StopAtConvergence {
			break
		}
	}

	res.Converged = tracker.Converged()
	if res.Converged {
		res.ConvergenceRound = tracker.ConvergenceRound()
		idx := res.ConvergenceRound - 1
		if idx >= len(a.cumTime) {
			idx = len(a.cumTime) - 1
		}
		res.TimeToConvergenceSec = a.cumTime[idx]
		res.EnergyToConvergenceJ = a.cumEnergy[idx]
	} else {
		res.TimeToConvergenceSec = a.cumTime[len(a.cumTime)-1]
		res.EnergyToConvergenceJ = a.cumEnergy[len(a.cumEnergy)-1]
	}
	counted := res.RoundsExecuted
	if res.Converged {
		counted = min(res.ConvergenceRound, res.RoundsExecuted)
	}
	res.AvgRoundSeconds = res.TimeToConvergenceSec / float64(max(1, counted))
	res.PPW = computePPW(cfg.Workload, res)
	res.ControllerOverheadSec = overhead.Seconds() / float64(max(1, res.RoundsExecuted))

	// The result's map keys are the categories present in the fleet —
	// the same key set the old per-round maps accumulated — so the
	// marshalled Result bytes are unchanged.
	res.EnergyByCategory = make(map[device.Category]float64, device.NumCategories)
	var present [device.NumCategories]bool
	for i := range a.profiles {
		present[a.profiles[i].Category] = true
	}
	for _, cat := range device.Categories() {
		if present[cat] {
			res.EnergyByCategory[cat] = catEnergy[cat]
		}
	}
	return res
}

// observeStates samples this round's per-device environment into the
// arena-provided states slice (one fleet-sized allocation per run was
// pure churn at this call rate).
func observeStates(cfg *Config, pm *data.Memo, samples []int, states []DeviceState, rng *stats.RNG) {
	for i := range states {
		states[i] = DeviceState{
			Interference:  cfg.Interference.Sample(rng),
			Network:       cfg.Channel.Sample(rng),
			ClassCount:    pm.DeviceClassCount(i),
			ClassFraction: pm.DeviceClassFraction(i),
			Samples:       samples[i],
		}
	}
}

// executeRound runs the selected devices' local training and computes
// the round's timing and fleet-wide energy.
//
// It executes in three phases. Phase 1 asks the controller for each
// participant's local parameters, serially in selected-device order:
// controllers are stateful and may draw randomness, so the call order
// is part of the reproducibility contract. Phase 2 evaluates the
// deterministic device/channel models per participant, optionally
// fanned across cfg.Inner's worker budget — each index writes only its
// own slots. Phase 3 merges serially in fixed device order (straggler
// semantics, energy accounting, aggregation), so every float
// accumulation happens in the same order for any pool size and the
// round outcome is byte-identical with or without inner parallelism.
func executeRound(cfg *Config, plan Plan, selected []int, a *Arena) RoundResult {
	k := len(selected)
	parts := a.parts[:k]
	commJoules := a.commJoules[:k]
	states := a.states

	// Phase 1: controller assignments (serial; may mutate controller
	// state and consume controller randomness). The composite literal
	// overwrites every DeviceRound field, so arena reuse cannot leak a
	// previous round's Dropped/energy values. Warming the cost memo
	// here — before any fan-out — keeps phase 2 read-only.
	for i, id := range selected {
		lp := plan.Local(cfg.Fleet[id], states[id])
		if lp.B < 1 {
			lp.B = 1
		}
		if lp.E < 1 {
			lp.E = 1
		}
		a.devCost[id].Warm(lp.B)
		parts[i] = DeviceRound{DeviceID: id, Category: a.profiles[id].Category, Local: lp}
	}

	// Phase 2: deterministic per-participant modeling (parallelizable).
	// The round trip is computed once per participant and reused for
	// both its seconds and its joules below: the two are one physical
	// transfer, and a second model call would silently diverge the
	// moment the channel model becomes stochastic per call.
	//
	// The kernel lives in the arena (a struct method, not a closure) so
	// the serial path allocates nothing; the gate decides per round
	// whether borrowing pool helpers is worth the spawn/join overhead.
	// Either way each index writes only its own slots and the merge
	// below runs serially in index order, so the outcome is
	// byte-identical for every gating decision and pool size.
	a.kern = roundKernel{
		parts:      parts,
		states:     states,
		samples:    a.samples,
		devCost:    a.devCost,
		comm:       &a.comm,
		part:       &a.part,
		commJoules: commJoules,
		modelBytes: cfg.Workload.Shape.ModelBytes,
	}
	t0 := time.Now()
	workers := 1
	if budget := a.gate.Budget(k); budget > 0 && cfg.Inner != nil {
		workers = cfg.Inner.forEachUpTo(k, budget, a.kern.model)
	} else {
		for i := 0; i < k; i++ {
			a.kern.model(i)
		}
	}
	a.gate.Observe(time.Since(t0), k, workers)

	// Phase 3: serial merge in fixed device order.
	mergeStart := time.Now()
	times := a.times[:k]
	for i := range parts {
		times[i] = parts[i].TotalSec
	}

	// Straggler semantics: the round lasts until the slowest surviving
	// participant, or closes at the deadline when one is set.
	execSec := stats.Max(times)
	if cfg.DeadlineSec > 0 && len(times) > 0 {
		for i := range parts {
			if parts[i].TotalSec > cfg.DeadlineSec {
				parts[i].Dropped = true
			}
		}
		if execSec > cfg.DeadlineSec {
			execSec = cfg.DeadlineSec
		}
	}
	// The server-side aggregation tax extends the round for everyone.
	roundSec := execSec + cfg.AggregationOverheadSec

	// Energy accounting (paper Eqs. 2–6). The per-category split lives
	// in a fixed-size array (zeroed on the stack each round); the adds
	// land in the same order the old per-round map saw, so totals are
	// bit-identical.
	var energyByCat [device.NumCategories]float64
	selectedSet := a.selectedSet
	clear(selectedSet)
	for _, id := range selected {
		selectedSet[id] = true
	}
	aggK := 0
	var wB, wE, wSamples float64
	for i := range parts {
		p := &parts[i]
		prof := a.profiles[p.DeviceID]
		busyComp, commJ := p.ComputeSec, commJoules[i]
		waitIdle := roundSec - p.TotalSec
		if p.Dropped {
			// The device worked until it was cut off at the deadline;
			// its energy up to that point is still burned (this is the
			// redundant energy the paper says stragglers waste), and it
			// then sits through the aggregation overhead like everyone
			// else.
			frac := 1.0
			if p.TotalSec > 0 {
				frac = stats.Clamp(execSec/p.TotalSec, 0, 1)
			}
			busyComp *= frac
			commJ *= frac
			waitIdle = cfg.AggregationOverheadSec
		}
		if waitIdle < 0 {
			waitIdle = 0
		}
		p.EnergyJ = device.ParticipantJoules(prof, busyComp, waitIdle) + commJ
		energyByCat[prof.Category] += p.EnergyJ
		if !p.Dropped {
			aggK++
			wB += float64(p.Samples) * float64(p.Local.B)
			wE += float64(p.Samples) * float64(p.Local.E)
			wSamples += float64(p.Samples)
		}
	}
	for id := range a.profiles {
		if selectedSet[id] {
			continue
		}
		prof := &a.profiles[id]
		energyByCat[prof.Category] += device.IdleJoules(*prof, roundSec)
	}
	// Sum in fixed category order (array index order == the canonical
	// device.Categories() order): a varying float addition order would
	// make runs non-reproducible (the total feeds the controllers'
	// rewards).
	totalEnergy := 0.0
	for cat := range energyByCat {
		totalEnergy += energyByCat[cat]
	}

	meanB, meanE := 0.0, 0.0
	if wSamples > 0 {
		meanB = wB / wSamples
		meanE = wE / wSamples
	}
	cfg.Telemetry.RecordPhase(telemetry.PhaseMerge, time.Since(mergeStart))
	return RoundResult{
		Participants:     parts,
		AggregatedK:      aggK,
		RoundSeconds:     roundSec,
		EnergyGlobalJ:    totalEnergy,
		EnergyByCategory: energyByCat,
		MeanB:            meanB,
		MeanE:            meanE,
	}
}

// aggregateInputs converts a round's aggregation outcome into the
// convergence model's inputs. The aggregated-ID list and the partition
// signals come from the arena (the partition memo returns bit-identical
// values to the Partition methods it shadows).
func aggregateInputs(rr RoundResult, a *Arena) convmodel.RoundInputs {
	aggIDs := a.aggIDs[:0]
	selSamples, aggSamples := 0, 0
	for i := range rr.Participants {
		p := &rr.Participants[i]
		selSamples += p.Samples
		if !p.Dropped {
			aggIDs = append(aggIDs, p.DeviceID)
			aggSamples += p.Samples
		}
	}
	frac := 0.0
	if selSamples > 0 {
		frac = float64(aggSamples) / float64(selSamples)
	}
	return convmodel.RoundInputs{
		MeanB:        rr.MeanB,
		MeanE:        rr.MeanE,
		K:            rr.AggregatedK,
		Skew:         a.part.ParticipantSkew(aggIDs),
		Coverage:     a.part.ParticipantCoverage(aggIDs),
		DataFraction: frac,
	}
}

// computePPW derives the performance-per-watt figure of merit (see
// DESIGN.md): converged runs score 1/energy-to-convergence. Unconverged
// runs score 1/(extrapolated energy-to-convergence), where the
// extrapolation fits the observed geometric accuracy decay — training
// closes a roughly constant fraction of the remaining accuracy gap per
// round, so the rounds (and energy) still needed scale with the ratio
// of log gap reductions. This correctly punishes configurations that
// are cheap per round but would take thousands of rounds to finish.
func computePPW(w workload.Workload, res Result) float64 {
	if res.EnergyToConvergenceJ <= 0 {
		return 0
	}
	if res.Converged {
		return 1 / res.EnergyToConvergenceJ
	}
	gapInit := w.Learn.MaxAccuracy - w.Learn.InitialAccuracy
	gapTarget := w.Learn.MaxAccuracy - w.Learn.TargetAccuracy
	gapFinal := w.Learn.MaxAccuracy - res.FinalAccuracy
	if gapInit <= 0 || gapTarget <= 0 {
		return 0
	}
	if gapFinal >= gapInit || gapFinal <= 0 {
		// No measurable progress: effectively zero efficiency, but keep
		// the value positive so normalized ratios stay finite.
		return 1e-6 / res.EnergyToConvergenceJ
	}
	progressLog := math.Log(gapInit / gapFinal)
	neededLog := math.Log(gapInit / gapTarget)
	if progressLog <= 1e-9 {
		return 1e-6 / res.EnergyToConvergenceJ
	}
	scale := neededLog / progressLog
	if scale < 1 {
		scale = 1
	}
	return 1 / (res.EnergyToConvergenceJ * scale)
}
