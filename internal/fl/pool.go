package fl

import "sync"

// Pool is the bounded inner worker budget shared by every simulation
// run wired to it: a token bucket of "extra" goroutines that
// per-round participant modeling may borrow on top of the goroutine
// the run already occupies. One Pool is typically shared across all
// concurrent runs of an experiment runtime, so the combined inner
// fan-out stays bounded no matter how many outer workers are
// executing simulation cells at once (the outer pool's own budget is
// its worker count; this is the inner half of that budget).
//
// Borrowing is non-blocking: when every token is lent out, a round
// simply executes its participant loop on its own goroutine. Output is
// byte-identical either way — see ForEach.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool lending up to extra concurrent helper
// goroutines, or nil (the serial pool) when extra <= 0. The nil Pool
// is valid: every method degrades to serial execution.
func NewPool(extra int) *Pool {
	if extra <= 0 {
		return nil
	}
	return &Pool{sem: make(chan struct{}, extra)}
}

// Extra returns the pool's helper budget (0 for the nil/serial pool).
func (p *Pool) Extra() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}

// ForEach runs fn(i) for every i in [0, n), fanning contiguous index
// chunks across the calling goroutine plus however many helpers the
// shared budget can lend right now.
//
// fn must be deterministic in i and must only write state owned by
// index i (distinct slice slots); under that contract the results are
// byte-identical for any pool size, including nil, because every
// reduction over the per-index outputs happens in the caller
// afterwards, in index order. A panic in any chunk is re-raised on the
// calling goroutine after the remaining helpers drain.
func (p *Pool) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	helpers := 0
	if p != nil {
		max := n - 1
		if max > cap(p.sem) {
			max = cap(p.sem)
		}
	acquire:
		for helpers < max {
			select {
			case p.sem <- struct{}{}:
				helpers++
			default:
				break acquire
			}
		}
	}
	if helpers == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	workers := helpers + 1
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	run := func(lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicVal == nil {
					panicVal = r
				}
				panicMu.Unlock()
			}
		}()
		for i := lo; i < hi; i++ {
			fn(i)
		}
	}
	for c := 1; c <= helpers; c++ {
		lo, hi := c*n/workers, (c+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-p.sem }()
			run(lo, hi)
		}(lo, hi)
	}
	run(0, n/workers)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
