package fl

import (
	"runtime"
	"sync"
	"time"
)

// Pool is the bounded inner worker budget shared by every simulation
// run wired to it: a token bucket of "extra" goroutines that
// per-round participant modeling may borrow on top of the goroutine
// the run already occupies. One Pool is typically shared across all
// concurrent runs of an experiment runtime, so the combined inner
// fan-out stays bounded no matter how many outer workers are
// executing simulation cells at once (the outer pool's own budget is
// its worker count; this is the inner half of that budget).
//
// Borrowing is non-blocking: when every token is lent out, a round
// simply executes its participant loop on its own goroutine. Output is
// byte-identical either way — see ForEach.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool lending up to extra concurrent helper
// goroutines, or nil (the serial pool) when extra <= 0. The nil Pool
// is valid: every method degrades to serial execution.
func NewPool(extra int) *Pool {
	if extra <= 0 {
		return nil
	}
	return &Pool{sem: make(chan struct{}, extra)}
}

// Extra returns the pool's helper budget (0 for the nil/serial pool).
func (p *Pool) Extra() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}

// ForEach runs fn(i) for every i in [0, n), fanning contiguous index
// chunks across the calling goroutine plus however many helpers the
// shared budget can lend right now.
//
// fn must be deterministic in i and must only write state owned by
// index i (distinct slice slots); under that contract the results are
// byte-identical for any pool size, including nil, because every
// reduction over the per-index outputs happens in the caller
// afterwards, in index order. A panic in any chunk is re-raised on the
// calling goroutine after the remaining helpers drain.
func (p *Pool) ForEach(n int, fn func(int)) {
	p.forEachUpTo(n, n-1, fn)
}

// forEachUpTo is ForEach with a caller-imposed ceiling on how many
// helpers to borrow (the adaptive gate's lever: maxHelpers <= 0 runs
// serial without touching the token bucket). It returns the number of
// goroutines that executed chunks, including the caller.
func (p *Pool) forEachUpTo(n, maxHelpers int, fn func(int)) int {
	if n <= 0 {
		return 0
	}
	helpers := 0
	if p != nil && maxHelpers > 0 {
		if maxHelpers > n-1 {
			maxHelpers = n - 1
		}
		if maxHelpers > cap(p.sem) {
			maxHelpers = cap(p.sem)
		}
	acquire:
		for helpers < maxHelpers {
			select {
			case p.sem <- struct{}{}:
				helpers++
			default:
				break acquire
			}
		}
	}
	if helpers == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return 1
	}
	workers := helpers + 1
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	run := func(lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicVal == nil {
					panicVal = r
				}
				panicMu.Unlock()
			}
		}()
		for i := lo; i < hi; i++ {
			fn(i)
		}
	}
	for c := 1; c <= helpers; c++ {
		lo, hi := c*n/workers, (c+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-p.sem }()
			run(lo, hi)
		}(lo, hi)
	}
	run(0, n/workers)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return workers
}

// Gate gating thresholds. Spawning and joining a helper goroutine plus
// the token-bucket traffic costs a handful of microseconds; fanning out
// only pays when the work dwarfs that.
const (
	// gateEMAAlpha is the weight of the newest per-item cost sample.
	gateEMAAlpha = 0.4
	// gateMinFanoutNs is the minimum estimated total work (ns) worth
	// fanning out at all: spawn+join costs a few microseconds, so
	// paper-scale rounds (tens of participants at ~300ns each) stay
	// serial while big-fleet rounds fan out.
	gateMinFanoutNs = 20_000.0
	// gateMinChunkNs is the minimum estimated work (ns) each extra
	// worker should carry; it caps the helper count so chunks stay
	// coarse enough to amortize the spawn/join overhead.
	gateMinChunkNs = 10_000.0
)

// Gate is the adaptive serial/parallel decision for a run's inner
// per-participant loop. It learns the per-item cost of the loop body
// from an EMA over observed round timings and only approves fanning
// out when the estimated total work clears gateMinFanoutNs, capping
// the helper count so every chunk is worth at least gateMinChunkNs
// (PR 8's BENCH recorded inner_speedup_x = 0.93: unconditional fan-out
// of micro-rounds was a net loss).
//
// The gate only chooses *whether and how wide* to fan out; the loop
// contract (per-index writes, serial merge in index order) makes the
// outcome byte-identical for every decision, so gating can never
// change a run's result.
//
// A Gate belongs to one run at a time and is not safe for concurrent
// use.
type Gate struct {
	perItemNs float64
	// Procs overrides runtime.GOMAXPROCS(0) in tests; 0 means ask the
	// runtime.
	Procs int
}

// Reset clears the learned cost estimate (call at run start: a new
// config's per-participant cost is unrelated to the previous run's).
func (g *Gate) Reset() { g.perItemNs = 0 }

// Observe feeds the measured wall time of a loop pass that processed n
// items across `workers` goroutines. The per-item estimate scales the
// elapsed time by the worker count, so parallel rounds keep the
// estimate calibrated too.
func (g *Gate) Observe(d time.Duration, n, workers int) {
	if n <= 0 || d < 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	per := float64(d.Nanoseconds()) * float64(workers) / float64(n)
	if g.perItemNs == 0 {
		g.perItemNs = per
	} else {
		g.perItemNs += gateEMAAlpha * (per - g.perItemNs)
	}
}

// Budget returns the helper ceiling worth borrowing for an n-item
// pass: 0 (run serial) on a single-CPU process, while the cost is
// still unknown (first round calibrates serially), or when the
// estimated total work is below gateMinFanoutNs; otherwise enough
// helpers that each worker's chunk carries at least gateMinChunkNs,
// never exceeding the CPUs actually available (oversubscribing a
// deterministic compute loop only adds scheduling churn).
func (g *Gate) Budget(n int) int {
	if n <= 1 {
		return 0
	}
	procs := g.Procs
	if procs == 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	if procs <= 1 {
		return 0
	}
	if g.perItemNs <= 0 {
		return 0
	}
	total := g.perItemNs * float64(n)
	if total < gateMinFanoutNs {
		return 0
	}
	helpers := int(total/gateMinChunkNs) - 1
	if helpers > procs-1 {
		helpers = procs - 1
	}
	if helpers > n-1 {
		helpers = n - 1
	}
	return helpers
}
