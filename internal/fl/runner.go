package fl

import "fedgpo/internal/device"

// Summary aggregates Results over multiple seeds.
type Summary struct {
	Controller string
	Seeds      int
	// Means over seeds.
	MeanPPW              float64
	MeanTimeToConvSec    float64
	MeanEnergyToConvJ    float64
	MeanConvergenceRound float64
	MeanFinalAccuracy    float64
	MeanAvgRoundSec      float64
	MeanOverheadSec      float64
	ConvergedFraction    float64
	EnergyByCategory     map[device.Category]float64
}

// ControllerFactory builds a fresh controller per run so learned state
// never leaks across seeds.
type ControllerFactory func() Controller

// RunSeeds executes the config under the controller factory for each
// seed and averages the headline metrics. Convergence round is averaged
// over converged runs only (unconverged runs count as MaxRounds).
func RunSeeds(cfg Config, factory ControllerFactory, seeds []int64) Summary {
	if len(seeds) == 0 {
		panic("fl: RunSeeds needs at least one seed")
	}
	results := make([]Result, len(seeds))
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		results[i] = Run(c, factory())
	}
	return Summarize(cfg.MaxRounds, results)
}

// Summarize aggregates per-seed results in slice order, exactly as
// RunSeeds does; maxRounds is the round budget unconverged runs are
// charged. The parallel experiment runtime calls this on results it
// executed out-of-process or served from cache, so the aggregation
// (including float accumulation order) must stay byte-identical to the
// serial path.
func Summarize(maxRounds int, results []Result) Summary {
	if len(results) == 0 {
		panic("fl: Summarize needs at least one result")
	}
	s := Summary{Seeds: len(results), EnergyByCategory: make(map[device.Category]float64)}
	for _, r := range results {
		s.Controller = r.Controller
		s.MeanPPW += r.PPW
		s.MeanTimeToConvSec += r.TimeToConvergenceSec
		s.MeanEnergyToConvJ += r.EnergyToConvergenceJ
		s.MeanFinalAccuracy += r.FinalAccuracy
		s.MeanAvgRoundSec += r.AvgRoundSeconds
		s.MeanOverheadSec += r.ControllerOverheadSec
		if r.Converged {
			s.ConvergedFraction++
			s.MeanConvergenceRound += float64(r.ConvergenceRound)
		} else {
			s.MeanConvergenceRound += float64(maxRounds)
		}
		for cat, e := range r.EnergyByCategory {
			s.EnergyByCategory[cat] += e
		}
	}
	n := float64(len(results))
	s.MeanPPW /= n
	s.MeanTimeToConvSec /= n
	s.MeanEnergyToConvJ /= n
	s.MeanConvergenceRound /= n
	s.MeanFinalAccuracy /= n
	s.MeanAvgRoundSec /= n
	s.MeanOverheadSec /= n
	s.ConvergedFraction /= n
	for cat := range s.EnergyByCategory {
		s.EnergyByCategory[cat] /= n
	}
	return s
}

// DefaultSeeds returns the experiment seed set; three seeds trade
// precision for harness runtime.
func DefaultSeeds() []int64 { return []int64{1, 2, 3} }
