package fl

import (
	"encoding/json"
	"sync/atomic"
	"testing"

	"fedgpo/internal/device"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
)

func TestPoolForEachCoversEveryIndexOnce(t *testing.T) {
	for _, extra := range []int{0, 1, 3, 16} {
		p := NewPool(extra)
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("extra=%d n=%d: index %d visited %d times", extra, n, i, h)
				}
			}
		}
	}
}

func TestPoolNilIsSerial(t *testing.T) {
	var p *Pool
	if p.Extra() != 0 {
		t.Error("nil pool should have no helper budget")
	}
	order := []int{}
	p.ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool must run serially in order, got %v", order)
		}
	}
}

func TestPoolForEachPropagatesPanic(t *testing.T) {
	p := NewPool(4)
	defer func() {
		if recover() == nil {
			t.Fatal("panic inside ForEach must reach the caller")
		}
	}()
	p.ForEach(64, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

// The tentpole guarantee of inner-round parallelism: the run's entire
// serialized Result — metrics, energy accounting, full round history —
// is byte-identical for any worker count, including serial. The config
// exercises the straggler-drop and variance paths so the parallel
// phase covers every accounting branch.
func TestRunByteIdenticalAcrossInnerWorkerCounts(t *testing.T) {
	cfg := testConfig()
	cfg.Channel = netsim.UnstableChannel()
	cfg.Interference = interfere.Paper()
	// A deadline between the mid and low categories' clean times keeps
	// the straggler-drop branches active round after round.
	w := cfg.Workload
	lowT := device.ComputeSeconds(device.Profiles()[device.Low], w.Shape, 8, 10,
		w.SamplesPerDevice, device.Interference{})
	midT := device.ComputeSeconds(device.Profiles()[device.Mid], w.Shape, 8, 10,
		w.SamplesPerDevice, device.Interference{})
	cfg.DeadlineSec = (lowT + midT) / 2
	cfg.AggregationOverheadSec = 10
	cfg.MaxRounds = 80
	cfg.StopAtConvergence = false

	run := func(extra int) Result {
		c := cfg
		c.Inner = NewPool(extra)
		return Run(c, NewStatic(Params{B: 8, E: 10, K: 10}))
	}
	marshal := func(r Result) string {
		// ControllerOverheadSec is wall-clock measured (§5.4 accounting)
		// and so differs between any two runs, parallel or not; every
		// simulated quantity must be bit-identical.
		r.ControllerOverheadSec = 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := run(0) // nil pool: the fully serial path
	dropped := 0
	for _, rec := range base.History {
		dropped += rec.Dropped
	}
	if dropped == 0 {
		t.Fatal("test deadline should drop some participants (branch coverage)")
	}
	want := marshal(base)
	for _, extra := range []int{1, 2, 8} {
		if got := marshal(run(extra)); got != want {
			t.Errorf("inner parallelism %d produced different Result JSON than serial", extra)
		}
	}
}
