package fl

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// marshalStable serializes a Result with its wall-clock-measured field
// zeroed, so byte comparison covers every simulated quantity.
func marshalStable(t *testing.T, r Result) string {
	t.Helper()
	r.ControllerOverheadSec = 0
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// dirtyConfig is a deliberately different deployment from testConfig —
// different workload, fleet size, partition skew, channel, deadline —
// used to soil an arena between runs of the config under test.
func dirtyConfig() Config {
	w := workload.LSTMShakespeare()
	fleet := device.NewFleet(device.PaperComposition().Scale(33))
	rng := stats.NewRNG(5)
	return Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.Dirichlet(len(fleet), w.NumClasses, w.SamplesPerDevice, data.PaperAlpha, rng),
		Channel:                netsim.UnstableChannel(),
		Interference:           interfere.Paper(),
		MaxRounds:              40,
		DeadlineSec:            200,
		AggregationOverheadSec: 5,
		Seed:                   77,
		StopAtConvergence:      false,
	}
}

// TestRunWithDirtyArenaByteIdentical is the arena-reuse contract: a run
// on an arena dirtied by unrelated runs (different fleet size,
// workload, partition, channel) is byte-identical to the same run on a
// fresh arena, and to the pooled-arena Run path.
func TestRunWithDirtyArenaByteIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Channel = netsim.UnstableChannel()
	cfg.Interference = interfere.Paper()
	cfg.DeadlineSec = 90
	cfg.MaxRounds = 60
	cfg.StopAtConvergence = false
	ctrl := func() Controller { return NewStatic(Params{B: 8, E: 10, K: 10}) }

	want := marshalStable(t, RunWithArena(cfg, ctrl(), NewArena()))

	dirty := NewArena()
	RunWithArena(dirtyConfig(), ctrl(), dirty)
	RunWithArena(cfg, ctrl(), dirty) // same config: dirties every buffer in the exact shapes reused below
	RunWithArena(dirtyConfig(), NewStatic(Params{B: 2, E: 20, K: 33}), dirty)
	if got := marshalStable(t, RunWithArena(cfg, ctrl(), dirty)); got != want {
		t.Error("run on a dirty arena differs from a fresh-arena run")
	}

	if got := marshalStable(t, Run(cfg, ctrl())); got != want {
		t.Error("pooled-arena Run differs from a fresh-arena run")
	}
}

// TestArenaCrossCellReuseRaceClean exercises the deployment shape the
// arena pool serves — many outer workers executing cells concurrently,
// each reusing arenas across its cells, all sharing one inner Pool —
// and checks results stay byte-identical to a serial reference. Run
// under -race this is also the cross-cell data-race check.
func TestArenaCrossCellReuseRaceClean(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRounds = 25
	cfg.StopAtConvergence = false
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}

	ref := make([]string, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		ref[i] = marshalStable(t, RunWithArena(c, NewStatic(Params{B: 8, E: 10, K: 10}), NewArena()))
	}

	inner := NewPool(4)
	var wg sync.WaitGroup
	got := make([]string, len(seeds))
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker reuses one arena across its share of cells,
			// like an outer pool worker walking its shard.
			a := NewArena()
			for i := w; i < len(seeds); i += 4 {
				c := cfg
				c.Seed = seeds[i]
				c.Inner = inner
				got[i] = marshalStable(t, RunWithArena(c, NewStatic(Params{B: 8, E: 10, K: 10}), a))
			}
		}(w)
	}
	wg.Wait()
	for i := range seeds {
		if got[i] != ref[i] {
			t.Errorf("seed %d: concurrent reused-arena run differs from serial reference", seeds[i])
		}
	}
}

// TestGatedFanoutByteIdentical forces the gate open (Procs override, a
// big-participation config whose round loop clears the fan-out floor)
// so the parallel kernel path runs even on a single-CPU host, and
// checks the result is byte-identical to the serial reference. Under
// -race this is the data-race check for the fanned-out kernel.
func TestGatedFanoutByteIdentical(t *testing.T) {
	// 4000 participants at ~20ns/item of memoized kernel work clears the
	// gate's fan-out floor with a wide margin on any plausible host.
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(4000))
	cfg := Config{
		Workload:          w,
		Fleet:             fleet,
		Partition:         data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:           netsim.UnstableChannel(),
		Interference:      interfere.Paper(),
		MaxRounds:         10,
		Seed:              9,
		StopAtConvergence: false,
	}
	ctrl := func() Controller { return NewStatic(Params{B: 8, E: 10, K: 4000}) }
	want := marshalStable(t, RunWithArena(cfg, ctrl(), NewArena()))

	c := cfg
	c.Inner = NewPool(4)
	a := NewArena()
	a.gate.Procs = 4 // pretend a 4-CPU host so Budget can approve helpers
	got := marshalStable(t, RunWithArena(c, ctrl(), a))
	if b := a.gate.Budget(4000); b <= 0 {
		t.Fatalf("gate never opened for a 4000-participant round (budget %d) — fan-out path untested", b)
	}
	if got != want {
		t.Error("gated fan-out run differs from serial reference")
	}
}

func TestGateBudget(t *testing.T) {
	g := &Gate{Procs: 4}
	if b := g.Budget(100); b != 0 {
		t.Errorf("unknown cost must stay serial, got budget %d", b)
	}
	// Cheap items: 100ns each, 50 items = 5µs total — below the fan-out
	// floor.
	g.Observe(5*time.Microsecond, 50, 1)
	if b := g.Budget(50); b != 0 {
		t.Errorf("5µs of work must stay serial, got budget %d", b)
	}
	// Expensive items: 10µs each, 50 items = 500µs total — chunk math
	// would grant 49 helpers but the CPU count caps it at procs-1.
	g2 := &Gate{Procs: 4}
	g2.Observe(500*time.Microsecond, 50, 1)
	if b := g2.Budget(50); b <= 0 {
		t.Errorf("500µs of work should fan out, got budget %d", b)
	} else if b > 3 {
		t.Errorf("budget %d exceeds procs-1 = 3", b)
	}
	// Tiny n never fans out.
	if b := g2.Budget(1); b != 0 {
		t.Errorf("n=1 must stay serial, got %d", b)
	}
	// A single-CPU process never fans out regardless of cost.
	g3 := &Gate{Procs: 1}
	g3.Observe(500*time.Microsecond, 50, 1)
	if b := g3.Budget(50); b != 0 {
		t.Errorf("GOMAXPROCS=1 must stay serial, got budget %d", b)
	}
	// Reset forgets the estimate.
	g2.Reset()
	if b := g2.Budget(50); b != 0 {
		t.Errorf("after Reset the gate must recalibrate serially, got %d", b)
	}
}

func TestGateObserveScalesByWorkers(t *testing.T) {
	// 100 items in 100µs across 4 workers ≈ 4µs/item, not 1µs/item.
	g := &Gate{Procs: 8}
	g.Observe(100*time.Microsecond, 100, 4)
	if g.perItemNs < 3500 || g.perItemNs > 4500 {
		t.Errorf("perItemNs = %v, want ~4000", g.perItemNs)
	}
	// The EMA tracks drift toward new samples.
	g.Observe(100*time.Microsecond, 100, 1)
	if g.perItemNs >= 4000 || g.perItemNs <= 1000 {
		t.Errorf("EMA did not move toward the new 1µs sample: %v", g.perItemNs)
	}
}
