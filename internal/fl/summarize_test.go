package fl

import (
	"reflect"
	"testing"
)

// Summarize must reproduce RunSeeds' aggregation exactly: the parallel
// experiment runtime relies on the two paths being byte-identical.
func TestSummarizeMatchesRunSeeds(t *testing.T) {
	cfg := testConfig()
	seeds := []int64{1, 2, 3}
	factory := func() Controller { return NewStatic(Params{B: 8, E: 10, K: 10}) }

	want := RunSeeds(cfg, factory, seeds)

	results := make([]Result, len(seeds))
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		results[i] = Run(c, factory())
	}
	got := Summarize(cfg.MaxRounds, results)
	// Controller overhead is wall-clock measured, so it differs between
	// the two sets of runs; every simulated quantity must match exactly.
	want.MeanOverheadSec, got.MeanOverheadSec = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Errorf("Summarize diverges from RunSeeds:\nRunSeeds:  %+v\nSummarize: %+v", want, got)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty result slice")
		}
	}()
	Summarize(100, nil)
}
