package fl

import (
	"math"
	"testing"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// testConfig builds a small, fast deployment: 20 devices, IID data,
// stable network, no interference.
func testConfig() Config {
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(20))
	return Config{
		Workload:          w,
		Fleet:             fleet,
		Partition:         data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:           netsim.StableChannel(),
		Interference:      interfere.None(),
		MaxRounds:         300,
		Seed:              1,
		StopAtConvergence: true,
	}
}

func TestParamsGridMatchesTable2(t *testing.T) {
	if got := len(AllParams()); got != 150 {
		t.Fatalf("grid size = %d, want 6*5*5 = 150", got)
	}
	if got := len(AllLocalParams()); got != 30 {
		t.Fatalf("local grid = %d, want 30", got)
	}
	wantB := []int{1, 2, 4, 8, 16, 32}
	for i, b := range BValues() {
		if b != wantB[i] {
			t.Fatalf("B values = %v", BValues())
		}
	}
	wantEK := []int{1, 5, 10, 15, 20}
	for i := range wantEK {
		if EValues()[i] != wantEK[i] || KValues()[i] != wantEK[i] {
			t.Fatalf("E/K values = %v / %v", EValues(), KValues())
		}
	}
}

func TestParamIndexRoundTrips(t *testing.T) {
	all := AllParams()
	for i, p := range all {
		if got := ParamIndex(p); got != i {
			t.Fatalf("ParamIndex(%v) = %d, want %d", p, got, i)
		}
	}
	if ParamIndex(Params{B: 3, E: 10, K: 20}) != -1 {
		t.Error("off-grid params should index to -1")
	}
}

func TestParamsStringAndValid(t *testing.T) {
	p := Params{B: 8, E: 10, K: 20}
	if p.String() != "(8,10,20)" {
		t.Errorf("String = %q", p.String())
	}
	if !p.Valid() || (Params{B: 0, E: 1, K: 1}).Valid() {
		t.Error("Valid misbehaved")
	}
}

func TestRunConvergesWithReasonableStatic(t *testing.T) {
	cfg := testConfig()
	res := Run(cfg, NewStatic(Params{B: 8, E: 10, K: 10}))
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds (acc=%v)", cfg.MaxRounds, res.FinalAccuracy)
	}
	if res.ConvergenceRound <= 0 || res.ConvergenceRound > res.RoundsExecuted {
		t.Errorf("convergence round %d out of range", res.ConvergenceRound)
	}
	if res.TimeToConvergenceSec <= 0 || res.EnergyToConvergenceJ <= 0 {
		t.Errorf("non-positive time/energy: %v / %v", res.TimeToConvergenceSec, res.EnergyToConvergenceJ)
	}
	if math.Abs(res.PPW-1/res.EnergyToConvergenceJ) > 1e-15 {
		t.Errorf("converged PPW should be 1/energy")
	}
	if res.FinalAccuracy < cfg.Workload.Learn.TargetAccuracy-0.02 {
		t.Errorf("final accuracy %v below target", res.FinalAccuracy)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := testConfig()
	a := Run(cfg, NewStatic(Params{B: 8, E: 10, K: 10}))
	b := Run(cfg, NewStatic(Params{B: 8, E: 10, K: 10}))
	if a.ConvergenceRound != b.ConvergenceRound ||
		a.EnergyToConvergenceJ != b.EnergyToConvergenceJ ||
		a.FinalAccuracy != b.FinalAccuracy {
		t.Error("same-seed runs diverged")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := Run(cfg2, NewStatic(Params{B: 8, E: 10, K: 10}))
	if a.EnergyToConvergenceJ == c.EnergyToConvergenceJ && a.ConvergenceRound == c.ConvergenceRound {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRounds = 0
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on invalid config")
		}
	}()
	Run(cfg, NewStatic(DefaultParams()))
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Fleet = nil
	if bad.Validate() == nil {
		t.Error("empty fleet should fail")
	}
	bad = good
	bad.Partition = data.IID(5, 10, 100)
	if bad.Validate() == nil {
		t.Error("partition/fleet mismatch should fail")
	}
	bad = good
	bad.DeadlineSec = -1
	if bad.Validate() == nil {
		t.Error("negative deadline factor should fail")
	}
}

func TestKClampedToFleet(t *testing.T) {
	cfg := testConfig()
	res := Run(cfg, NewStatic(Params{B: 8, E: 10, K: 500}))
	for _, rec := range res.History {
		if rec.PlannedK > len(cfg.Fleet) {
			t.Fatalf("K %d exceeds fleet %d", rec.PlannedK, len(cfg.Fleet))
		}
	}
}

func TestRoundTimeIsSlowestParticipant(t *testing.T) {
	// With no deadline, round time must equal the max participant time.
	cfg := testConfig()
	cfg.MaxRounds = 3
	cfg.StopAtConvergence = false
	var seen []RoundResult
	probe := &probeController{inner: NewStatic(Params{B: 8, E: 10, K: 10}), sink: &seen}
	Run(cfg, probe)
	for _, rr := range seen {
		maxT := 0.0
		for _, p := range rr.Participants {
			if p.TotalSec > maxT {
				maxT = p.TotalSec
			}
		}
		if math.Abs(rr.RoundSeconds-maxT) > 1e-9 {
			t.Errorf("round %d: roundSec %v != slowest %v", rr.Round, rr.RoundSeconds, maxT)
		}
	}
}

func TestDeadlineDropsStragglers(t *testing.T) {
	cfg := testConfig()
	cfg.Interference = interfere.Paper()
	cfg.DeadlineSec = 12
	cfg.MaxRounds = 30
	cfg.StopAtConvergence = false
	var seen []RoundResult
	probe := &probeController{inner: NewStatic(Params{B: 8, E: 10, K: 15}), sink: &seen}
	Run(cfg, probe)
	drops := 0
	for _, rr := range seen {
		for _, p := range rr.Participants {
			if p.Dropped {
				drops++
				if p.TotalSec <= rr.RoundSeconds {
					t.Errorf("dropped device finished within the round: %v <= %v",
						p.TotalSec, rr.RoundSeconds)
				}
			}
		}
		if rr.AggregatedK > len(rr.Participants) {
			t.Error("aggregated more than selected")
		}
	}
	if drops == 0 {
		t.Error("tight deadline with interference should drop someone")
	}
}

func TestEnergyAccountsForWholeFleet(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRounds = 2
	cfg.StopAtConvergence = false
	var seen []RoundResult
	Run(cfg, &probeController{inner: NewStatic(Params{B: 8, E: 10, K: 5}), sink: &seen})
	for _, rr := range seen {
		var sum float64
		for _, e := range rr.EnergyByCategory {
			sum += e
		}
		if math.Abs(sum-rr.EnergyGlobalJ) > 1e-6 {
			t.Errorf("category energies %v != global %v", sum, rr.EnergyGlobalJ)
		}
		// Idlers must contribute: global energy must exceed the sum of
		// participant energies.
		var parts float64
		for _, p := range rr.Participants {
			parts += p.EnergyJ
		}
		if rr.EnergyGlobalJ <= parts {
			t.Errorf("global energy %v should exceed participants' %v (idle devices burn too)",
				rr.EnergyGlobalJ, parts)
		}
	}
}

func TestSmallerLocalParamsNarrowStragglerGap(t *testing.T) {
	// The Fig. 5 mechanism: assigning smaller B/E to slower devices
	// should reduce the round time versus a uniform setting.
	cfg := testConfig()
	cfg.MaxRounds = 5
	cfg.StopAtConvergence = false

	uniform := Run(cfg, NewStatic(Params{B: 8, E: 10, K: 10}))
	adaptive := Run(cfg, &categoryController{k: 10})
	if adaptive.AvgRoundSeconds >= uniform.AvgRoundSeconds {
		t.Errorf("adaptive per-category params should shorten rounds: %v >= %v",
			adaptive.AvgRoundSeconds, uniform.AvgRoundSeconds)
	}
}

func TestRunSeedsAveragesAndConvergence(t *testing.T) {
	cfg := testConfig()
	sum := RunSeeds(cfg, func() Controller { return NewStatic(Params{B: 8, E: 10, K: 10}) },
		[]int64{1, 2, 3})
	if sum.Seeds != 3 {
		t.Fatalf("Seeds = %d", sum.Seeds)
	}
	if sum.ConvergedFraction != 1 {
		t.Errorf("converged fraction = %v, want 1", sum.ConvergedFraction)
	}
	if sum.MeanPPW <= 0 || sum.MeanConvergenceRound <= 0 {
		t.Error("summary means must be positive")
	}
}

func TestRunSeedsPanicsWithoutSeeds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	RunSeeds(testConfig(), func() Controller { return NewStatic(DefaultParams()) }, nil)
}

func TestUnconvergedPPWScaledByProgress(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRounds = 3 // far too few to converge
	res := Run(cfg, NewStatic(Params{B: 32, E: 1, K: 1}))
	if res.Converged {
		t.Fatal("should not converge in 3 rounds with terrible params")
	}
	full := 1 / res.EnergyToConvergenceJ
	if res.PPW >= full {
		t.Errorf("unconverged PPW %v should be below 1/energy %v", res.PPW, full)
	}
	if res.PPW <= 0 {
		t.Error("PPW must stay positive")
	}
}

func TestObservationStatesCoverFleet(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRounds = 1
	cfg.StopAtConvergence = false
	var got Observation
	ctrl := &obsCapture{inner: NewStatic(Params{B: 8, E: 10, K: 5}), out: &got}
	Run(cfg, ctrl)
	if len(got.States) != len(cfg.Fleet) {
		t.Fatalf("states = %d, want %d", len(got.States), len(cfg.Fleet))
	}
	for i, st := range got.States {
		if st.Samples != cfg.Partition.DeviceSamples(i) {
			t.Errorf("device %d samples = %d", i, st.Samples)
		}
		if st.ClassCount != cfg.Partition.DeviceClassCount(i) {
			t.Errorf("device %d class count mismatch", i)
		}
	}
}

// probeController forwards to an inner controller and records results.
// RoundResult's slices are arena-owned and only valid during Observe
// (see the ownership contract on RoundResult), so retaining the result
// across rounds requires deep-copying them.
type probeController struct {
	inner Controller
	sink  *[]RoundResult
}

func (p *probeController) Name() string            { return p.inner.Name() }
func (p *probeController) Plan(o Observation) Plan { return p.inner.Plan(o) }
func (p *probeController) Observe(r RoundResult) {
	kept := r
	kept.Participants = append([]DeviceRound(nil), r.Participants...)
	kept.States = append([]DeviceState(nil), r.States...)
	*p.sink = append(*p.sink, kept)
	p.inner.Observe(r)
}

// obsCapture records the first observation.
type obsCapture struct {
	inner Controller
	out   *Observation
	done  bool
}

func (o *obsCapture) Name() string { return "obs-capture" }
func (o *obsCapture) Plan(obs Observation) Plan {
	if !o.done {
		*o.out = obs
		o.done = true
	}
	return o.inner.Plan(obs)
}
func (o *obsCapture) Observe(RoundResult) {}

// categoryController assigns smaller B/E to slower device categories —
// a hand-written version of the paper's adaptive insight used to test
// the straggler mechanics.
type categoryController struct{ k int }

func (c *categoryController) Name() string { return "per-category" }
func (c *categoryController) Plan(Observation) Plan {
	return Plan{K: c.k, Local: func(d device.Device, _ DeviceState) LocalParams {
		switch d.Profile.Category {
		case device.High:
			return LocalParams{B: 8, E: 10}
		case device.Mid:
			return LocalParams{B: 8, E: 5}
		default:
			return LocalParams{B: 4, E: 5}
		}
	}}
}
func (c *categoryController) Observe(RoundResult) {}

var _ = stats.Mean // keep stats import if helpers change
