package fl

import (
	"math"
	"testing"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

// Failure-injection and edge-case tests for the round simulator.

func TestAllParticipantsDroppedStillAdvances(t *testing.T) {
	// A deadline below every participant's time drops everyone; the
	// round must complete (no progress, full energy bill) and the run
	// must not converge.
	cfg := testConfig()
	cfg.DeadlineSec = 0.001
	cfg.MaxRounds = 10
	cfg.StopAtConvergence = false
	var seen []RoundResult
	res := Run(cfg, &probeController{inner: NewStatic(Params{B: 8, E: 10, K: 10}), sink: &seen})
	if res.Converged {
		t.Fatal("nothing aggregated; must not converge")
	}
	for _, rr := range seen {
		if rr.AggregatedK != 0 {
			t.Fatalf("round %d aggregated %d updates past an impossible deadline",
				rr.Round, rr.AggregatedK)
		}
		if rr.EnergyGlobalJ <= 0 {
			t.Fatal("dropped rounds still burn energy")
		}
	}
	if res.FinalAccuracy > cfg.Workload.Learn.InitialAccuracy+0.05 {
		t.Errorf("accuracy advanced (%v) with zero aggregated data", res.FinalAccuracy)
	}
}

func TestChronicDropsCapAccuracy(t *testing.T) {
	// A deadline that systematically drops a fixed config's slow
	// devices must cap the reachable accuracy below the clean run's.
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.PaperComposition().Scale(40))
	base := Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.None(),
		MaxRounds:              400,
		AggregationOverheadSec: 10,
		Seed:                   1,
		StopAtConvergence:      false,
	}
	clean := Run(base, NewStatic(Params{B: 8, E: 10, K: 10}))

	// Deadline between the fast categories' time and L's time: L's
	// data is chronically excluded.
	lowT := device.ComputeSeconds(device.Profiles()[device.Low], w.Shape, 8, 10,
		w.SamplesPerDevice, device.Interference{})
	midT := device.ComputeSeconds(device.Profiles()[device.Mid], w.Shape, 8, 10,
		w.SamplesPerDevice, device.Interference{})
	dropping := base
	dropping.DeadlineSec = (lowT + midT) / 2
	res := Run(dropping, NewStatic(Params{B: 8, E: 10, K: 10}))
	if res.FinalAccuracy >= clean.FinalAccuracy-0.005 {
		t.Errorf("chronic drops should cap accuracy: %v vs clean %v",
			res.FinalAccuracy, clean.FinalAccuracy)
	}
}

func TestControllerReturningAbsurdLocalParamsIsClamped(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRounds = 3
	cfg.StopAtConvergence = false
	ctrl := &hostileController{}
	var seen []RoundResult
	Run(cfg, &probeController{inner: ctrl, sink: &seen})
	for _, rr := range seen {
		for _, p := range rr.Participants {
			if p.Local.B < 1 || p.Local.E < 1 {
				t.Fatalf("simulator accepted non-positive local params %+v", p.Local)
			}
		}
	}
}

func TestSingleDeviceFleet(t *testing.T) {
	w := workload.CNNMNIST()
	fleet := device.NewFleet(device.FleetComposition{High: 1})
	cfg := Config{
		Workload:               w,
		Fleet:                  fleet,
		Partition:              data.IID(1, w.NumClasses, w.SamplesPerDevice),
		Channel:                netsim.StableChannel(),
		Interference:           interfere.None(),
		MaxRounds:              50,
		AggregationOverheadSec: 10,
		Seed:                   1,
		StopAtConvergence:      false,
	}
	res := Run(cfg, NewStatic(Params{B: 8, E: 10, K: 20})) // K clamps to 1
	if res.RoundsExecuted != 50 {
		t.Fatalf("run did not complete: %d rounds", res.RoundsExecuted)
	}
	for _, rec := range res.History {
		if rec.PlannedK != 1 {
			t.Fatalf("K = %d on a 1-device fleet", rec.PlannedK)
		}
	}
}

func TestHistoryCumulativeConsistency(t *testing.T) {
	cfg := testConfig()
	res := Run(cfg, NewStatic(Params{B: 8, E: 10, K: 10}))
	var cumT, cumE float64
	for i, rec := range res.History {
		cumT += rec.RoundSeconds
		cumE += rec.EnergyJ
		if res.Converged && rec.Round == res.ConvergenceRound {
			if math.Abs(cumT-res.TimeToConvergenceSec) > 1e-6 {
				t.Errorf("cumulative time at convergence %v != reported %v",
					cumT, res.TimeToConvergenceSec)
			}
			if math.Abs(cumE-res.EnergyToConvergenceJ) > 1e-6 {
				t.Errorf("cumulative energy at convergence %v != reported %v",
					cumE, res.EnergyToConvergenceJ)
			}
		}
		if rec.Round != i+1 {
			t.Fatalf("history round numbering broken at %d", i)
		}
	}
}

func TestEnergyByCategorySumsToTotals(t *testing.T) {
	cfg := testConfig()
	res := Run(cfg, NewStatic(Params{B: 8, E: 10, K: 10}))
	var catSum float64
	for _, cat := range device.Categories() {
		catSum += res.EnergyByCategory[cat]
	}
	var histSum float64
	for _, rec := range res.History {
		histSum += rec.EnergyJ
	}
	if math.Abs(catSum-histSum) > 1e-6*histSum {
		t.Errorf("category energies %v != history total %v", catSum, histSum)
	}
}

func TestAggregationOverheadExtendsRounds(t *testing.T) {
	a := testConfig()
	a.MaxRounds = 5
	a.StopAtConvergence = false
	b := a
	b.AggregationOverheadSec = 25
	ra := Run(a, NewStatic(Params{B: 8, E: 10, K: 10}))
	rb := Run(b, NewStatic(Params{B: 8, E: 10, K: 10}))
	for i := range ra.History {
		diff := rb.History[i].RoundSeconds - ra.History[i].RoundSeconds
		if math.Abs(diff-25) > 1e-9 {
			t.Fatalf("round %d: overhead delta = %v, want 25", i+1, diff)
		}
	}
	if rb.History[0].EnergyJ <= ra.History[0].EnergyJ {
		t.Error("overhead time must cost energy (waiting + idle fleet)")
	}
}

// hostileController returns invalid K and local parameters.
type hostileController struct{}

func (h *hostileController) Name() string { return "hostile" }
func (h *hostileController) Plan(Observation) Plan {
	return Plan{K: -3, Local: func(device.Device, DeviceState) LocalParams {
		return LocalParams{B: -8, E: 0}
	}}
}
func (h *hostileController) Observe(RoundResult) {}
