package fl

import (
	"fedgpo/internal/device"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

// DeviceState is what the server can observe about one device at the
// start of a round: the local execution state of paper §3.1 (resource
// usage of co-running applications, network stability, number of data
// classes) plus the static data-shard facts.
type DeviceState struct {
	// Interference is the co-running application load (S_Co_CPU,
	// S_Co_MEM).
	Interference device.Interference
	// Network is the sampled link condition (S_Network).
	Network netsim.Condition
	// ClassCount and ClassFraction describe the device's label
	// diversity (S_Data); ClassFraction is in percent (0..100).
	ClassCount    int
	ClassFraction float64
	// Samples is the local dataset size.
	Samples int
}

// Observation is the controller's view of the federation at the start
// of an aggregation round.
//
// Ownership: the States and PrevParticipants slices point into the
// run's scratch arena and are only valid until the next round begins
// (they are always valid for the duration of the Plan call and the
// round it plans). A controller that wants to keep them across rounds
// must copy them; every value field is retention-safe.
type Observation struct {
	// Round is the 1-based aggregation round about to execute.
	Round int
	// Workload describes the NN being trained (S_CONV, S_FC, S_RC come
	// from here).
	Workload workload.Workload
	// Fleet is the full device list; Fleet[i].ID indexes States.
	Fleet []device.Device
	// States holds this round's observed per-device state for every
	// device in the fleet.
	States []DeviceState
	// PrevAccuracy is the test accuracy after the previous round
	// (R_accuracy_prev in the paper's reward).
	PrevAccuracy float64
	// PrevParticipants are the device IDs selected in the previous
	// round (the paper's K' composition).
	PrevParticipants []int
	// DeadlineSec is the server's round deadline (0 = none) — server
	// configuration, visible to any server-side controller.
	DeadlineSec float64
}

// Plan is a controller's decision for one round: how many devices to
// select and what local parameters each selected device runs with.
type Plan struct {
	// K is the number of participants to select this round (clamped
	// by the simulator to the fleet size, minimum 1).
	K int
	// Local returns the (B, E) assignment for a selected device.
	// Controllers that use a single global setting return a constant.
	Local func(dev device.Device, st DeviceState) LocalParams
}

// DeviceRound records one participant's execution within a round.
type DeviceRound struct {
	DeviceID   int
	Category   device.Category
	Local      LocalParams
	ComputeSec float64
	CommSec    float64
	TotalSec   float64
	EnergyJ    float64 // participant energy per Eq. 5 (+ wait idle)
	Dropped    bool    // exceeded the round deadline; update discarded
	Samples    int
	SkewDegree float64
	Interfered bool
	NetworkBad bool
}

// RoundResult is the controller feedback after a round completes: the
// measurements FedGPO's reward (paper Eq. 1) is computed from.
//
// Ownership: the Participants and States slices point into the run's
// scratch arena and are only valid during the Observe call they are
// passed to — the next round overwrites them in place. A controller
// that retains them must copy; scalar fields and the EnergyByCategory
// array are value-copied and retention-safe.
type RoundResult struct {
	Round int
	// Plan echoes the K the controller requested.
	PlannedK int
	// Participants are the executed device-rounds (selected devices).
	Participants []DeviceRound
	// AggregatedK counts the participants whose updates made the
	// deadline and were averaged.
	AggregatedK int
	// RoundSeconds is the wall time of the round (slowest surviving
	// participant, or the deadline if drops occurred).
	RoundSeconds float64
	// EnergyGlobalJ is Eq. 6: the sum of all N devices' energy for the
	// round, participants and idlers alike.
	EnergyGlobalJ float64
	// EnergyByCategory splits EnergyGlobalJ by device category,
	// indexed by device.Category. A fixed array rather than a map: the
	// round loop fills it allocation-free, and controllers copy it by
	// value (Result's summarize step converts to the map form reports
	// expect).
	EnergyByCategory [device.NumCategories]float64
	// Accuracy and PrevAccuracy are the test accuracies after and
	// before the round.
	Accuracy     float64
	PrevAccuracy float64
	// MeanB and MeanE are the sample-weighted aggregated parameter
	// means (what the convergence model saw).
	MeanB, MeanE float64
	// States echoes the observation the plan was made against.
	States []DeviceState
}

// Controller is a round-by-round global-parameter policy: FedGPO, the
// Fixed/BO/GA baselines, FedEX and ABS all implement it.
type Controller interface {
	// Name identifies the policy in reports.
	Name() string
	// Plan is called at the start of each round with the observation.
	Plan(obs Observation) Plan
	// Observe is called after the round executes.
	Observe(res RoundResult)
}

// Static is the simplest Controller: a fixed (B, E, K) for every round
// and device — the paper's "Fixed" baseline shape, and the building
// block of grid search.
type Static struct {
	P     Params
	Label string
	// local caches the constant assignment closure so Plan stops
	// allocating one per round (grid sweeps call Plan millions of
	// times). Built lazily from P on first use; P must not change
	// after the first Plan call.
	local func(device.Device, DeviceState) LocalParams
}

// NewStatic returns a Static controller for p.
func NewStatic(p Params) *Static { return &Static{P: p} }

// Name returns the label or a default derived from the parameters.
func (s *Static) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "Fixed" + s.P.String()
}

// Plan returns the fixed parameters.
func (s *Static) Plan(Observation) Plan {
	if s.local == nil {
		lp := LocalParams{B: s.P.B, E: s.P.E}
		s.local = func(device.Device, DeviceState) LocalParams { return lp }
	}
	return Plan{K: s.P.K, Local: s.local}
}

// Observe is a no-op: a static policy does not learn.
func (s *Static) Observe(RoundResult) {}
