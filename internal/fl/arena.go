package fl

import (
	"sync"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/netsim"
)

// costKey identifies one memoized compute-cost table. Profile and
// WorkloadShape are flat comparable structs, so the pair is a valid map
// key and two fleets with identical hardware share tables for free.
type costKey struct {
	prof  device.Profile
	shape device.WorkloadShape
}

// Arena owns every buffer the simulation round loop touches, so that a
// run — and every run after it that reuses the arena — executes its
// steady-state rounds without allocating. Run draws arenas from a
// package-level sync.Pool, which in practice gives each outer worker a
// long-lived arena carried across the simulation cells it executes;
// RunWithArena accepts an explicit arena for benchmarks and tests.
//
// Reuse is safe because RunWithArena rewrites every slot it later
// reads: per-fleet tables are refilled by beginRun, the participant
// buffers are fully overwritten each round (parts via composite
// literals, so stale Dropped/energy fields cannot leak), and the memo
// tables are keyed by value. The only state deliberately carried
// across runs is the compute-cost memo, which is pure per
// (profile, workload, batch) — reusing it cannot change any result,
// only skip re-deriving it. A dirty arena therefore yields
// byte-identical output to a fresh one (enforced by
// TestRunWithDirtyArenaByteIdentical).
//
// An Arena belongs to one goroutine at a time. The slices handed to
// controllers through Observation/RoundResult point into it — see the
// ownership contract on those types.
type Arena struct {
	// Per-fleet tables, refilled by beginRun.
	profiles []device.Profile
	samples  []int
	devCost  []*device.CostModel
	states   []DeviceState
	perm     []int

	// sel double-buffers participant selection: the previous round's
	// buffer stays intact while the current one is written, so
	// Observation.PrevParticipants remains valid through the round it
	// describes.
	sel [2][]int

	// Per-round participant buffers (sized to the fleet once).
	parts       []DeviceRound
	commJoules  []float64
	times       []float64
	selectedSet []bool
	aggIDs      []int

	// Per-run accumulators.
	cumTime   []float64
	cumEnergy []float64

	part data.Memo
	comm netsim.CommModel
	gate Gate
	kern roundKernel

	// costs persists across runs: compute-cost tables are pure in
	// (profile, workload, batch), so cells sharing hardware and
	// workload reuse them outright.
	costs map[costKey]*device.CostModel
}

// NewArena returns an empty arena. Buffers grow on first use and are
// reused afterwards.
func NewArena() *Arena {
	return &Arena{costs: make(map[costKey]*device.CostModel)}
}

// arenaPool recycles arenas across Run calls. sync.Pool is per-P under
// the hood, so an outer worker goroutine keeps getting its own arena
// back while it walks its shard of simulation cells.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// beginRun sizes the arena for cfg's fleet and precomputes the per-run
// memo tables (partition signals, per-device cost models, channel
// power bands).
func (a *Arena) beginRun(cfg *Config) {
	n := len(cfg.Fleet)
	if cap(a.profiles) < n {
		a.profiles = make([]device.Profile, n)
		a.samples = make([]int, n)
		a.devCost = make([]*device.CostModel, n)
		a.states = make([]DeviceState, n)
		a.perm = make([]int, n)
		a.sel[0] = make([]int, n)
		a.sel[1] = make([]int, n)
		a.parts = make([]DeviceRound, n)
		a.commJoules = make([]float64, n)
		a.times = make([]float64, n)
		a.selectedSet = make([]bool, n)
		a.aggIDs = make([]int, 0, n)
	}
	a.profiles = a.profiles[:n]
	a.samples = a.samples[:n]
	a.devCost = a.devCost[:n]
	a.states = a.states[:n]
	a.perm = a.perm[:n]
	a.parts = a.parts[:n]
	a.commJoules = a.commJoules[:n]
	a.times = a.times[:n]
	a.selectedSet = a.selectedSet[:n]

	a.part.Reset(cfg.Partition)
	for i, d := range cfg.Fleet {
		a.profiles[i] = d.Profile
		a.samples[i] = a.part.DeviceSamples(d.ID)
		key := costKey{prof: d.Profile, shape: cfg.Workload.Shape}
		cm := a.costs[key]
		if cm == nil {
			cm = device.NewCostModel(d.Profile, cfg.Workload.Shape)
			a.costs[key] = cm
		}
		a.devCost[i] = cm
	}
	a.comm = cfg.Channel.Model()
	a.gate.Reset()

	if cap(a.cumTime) < cfg.MaxRounds {
		a.cumTime = make([]float64, 0, cfg.MaxRounds)
		a.cumEnergy = make([]float64, 0, cfg.MaxRounds)
	}
	a.cumTime = a.cumTime[:0]
	a.cumEnergy = a.cumEnergy[:0]
}

// roundKernel is the arena-resident closure state of executeRound's
// phase 2 (the deterministic per-participant modeling). It is a struct
// with a method rather than a func literal so the serial path can call
// it without materializing a closure: a literal passed to a function
// that may hand it to goroutines is heap-allocated at its definition
// site every round, even on rounds that never fan out.
type roundKernel struct {
	parts      []DeviceRound
	states     []DeviceState
	samples    []int
	devCost    []*device.CostModel
	comm       *netsim.CommModel
	part       *data.Memo
	commJoules []float64
	modelBytes float64
}

// model computes participant i's deterministic round terms. It writes
// only index-i slots (plus the device-indexed read-only tables), which
// is what makes fanning it out byte-identical to the serial loop.
func (k *roundKernel) model(i int) {
	p := &k.parts[i]
	id := p.DeviceID
	st := &k.states[id]
	comp := k.devCost[id].Seconds(p.Local.B, p.Local.E, k.samples[id], st.Interference)
	rt := k.comm.RoundTrip(k.modelBytes, st.Network)
	p.ComputeSec = comp
	p.CommSec = rt.Seconds
	p.TotalSec = comp + rt.Seconds
	p.Samples = k.samples[id]
	p.SkewDegree = k.part.NonIIDDegree(id)
	p.Interfered = st.Interference.CPUUsage > 0 || st.Interference.MemUsage > 0
	p.NetworkBad = !st.Network.Regular()
	k.commJoules[i] = rt.Joules
}
