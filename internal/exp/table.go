package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper figure
// or table reports.
type Table struct {
	ID     string // experiment id, e.g. "fig9"
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry per-experiment commentary (paper expectation vs
	// measured shape).
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned monospace text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (used by the
// EXPERIMENTS.md generator).
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}
