package exp

import (
	"encoding/json"
	"fmt"
	"time"

	"fedgpo/internal/abs"
	"fedgpo/internal/baseline"
	"fedgpo/internal/core"
	"fedgpo/internal/fl"
	"fedgpo/internal/runtime"
	"fedgpo/internal/telemetry"
)

// Job kinds: the families of work a JobSpec can describe. Each kind
// carries a different Extra payload and derives its cache identity
// differently, so kinds never share cache entries.
const (
	// KindSim is a plain simulation cell (figures, sweeps, grid search).
	KindSim = "sim"
	// KindQMem probes a warm controller's Q-table memory footprint
	// without running an evaluation.
	KindQMem = "qmem"
	// KindOracle measures FedGPO's selection accuracy against the
	// per-round gap-free oracle (Table 5).
	KindOracle = "oracle"
	// KindSec54 is the §5.4 convergence/overhead probe.
	KindSec54 = "sec54"
)

// Contender types: the controller families a ContenderSpec can name.
const (
	ContStatic     = "static"
	ContFedGPOWarm = "fedgpo-warm"
	ContFedGPOCold = "fedgpo-cold"
	ContBO         = "bo"
	ContGA         = "ga"
	ContFedEX      = "fedex"
	ContABS        = "abs"
)

// ContenderSpec declaratively names one controller: the policy family
// plus every configuration value needed to rebuild it in any process.
// It replaces the closure-held controller factories the experiment
// constructors used to carry — a ContenderSpec is pure data, so the
// same contender can be materialized in-process or inside a worker
// subprocess and still share one cache identity.
type ContenderSpec struct {
	// Type selects the controller family (Cont* constants).
	Type string `json:"type"`
	// Name is the display name reports print; it does not participate
	// in cache identity.
	Name string `json:"name,omitempty"`
	// Params and Label configure the static (fixed-parameter)
	// contender. The label participates in the cache key: a labeled
	// controller records its label in the stored result, so labeled and
	// unlabeled runs of the same setting stay distinct cells.
	Params fl.Params `json:"params,omitempty"`
	Label  string    `json:"label,omitempty"`
	// Core is the full FedGPO configuration (warm and cold variants).
	Core *core.Config `json:"core,omitempty"`
	// WarmSeed and WarmRounds describe the warm variant's Q-table
	// warm-up deployment; together with Core and the scenario they
	// address the pretrained-controller snapshot.
	WarmSeed   int64 `json:"warmSeed,omitempty"`
	WarmRounds int   `json:"warmRounds,omitempty"`
	// ABS is the full ABS configuration.
	ABS *abs.Config `json:"abs,omitempty"`
	// CtrlSeed seeds the BO/GA/FedEX baselines.
	CtrlSeed int64 `json:"ctrlSeed,omitempty"`
}

// key returns the contender's canonical cache descriptor — the
// controller half of a job key. The strings are byte-identical to the
// closure-era scheme, so existing cache directories stay valid.
func (c ContenderSpec) key() string {
	switch c.Type {
	case ContStatic:
		k := "static/" + c.Params.String()
		if c.Label != "" {
			k += "/label=" + c.Label
		}
		return k
	case ContFedGPOWarm:
		return fmt.Sprintf("fedgpo-warm/cfg=%s/warmseed=%d/warmrounds=%d",
			canonJSON(*c.Core), c.WarmSeed, c.WarmRounds)
	case ContFedGPOCold:
		return "fedgpo-cold/cfg=" + canonJSON(*c.Core)
	case ContBO:
		return fmt.Sprintf("adaptive-bo/seed=%d", c.CtrlSeed)
	case ContGA:
		return fmt.Sprintf("adaptive-ga/seed=%d", c.CtrlSeed)
	case ContFedEX:
		return fmt.Sprintf("fedex/seed=%d", c.CtrlSeed)
	case ContABS:
		return "abs/cfg=" + canonJSON(*c.ABS)
	default:
		panic("exp: unknown contender type " + c.Type)
	}
}

// validate checks that the spec carries the configuration its type
// requires, so a malformed wire spec fails at decode time rather than
// as a nil dereference mid-job.
func (c ContenderSpec) validate() error {
	switch c.Type {
	case ContStatic, ContBO, ContGA, ContFedEX:
		return nil
	case ContFedGPOWarm, ContFedGPOCold:
		if c.Core == nil {
			return fmt.Errorf("exp: contender %q missing core config", c.Type)
		}
		return nil
	case ContABS:
		if c.ABS == nil {
			return fmt.Errorf("exp: contender %q missing abs config", c.Type)
		}
		return nil
	default:
		return fmt.Errorf("exp: unknown contender type %q", c.Type)
	}
}

// JobSpec is the declarative, serializable description of one job:
// scenario configuration, contender specification, run seed, and the
// kind-specific probe knobs. Every job the experiment harness emits —
// figure cells, sweep cells, grid-search cells, ablation variants, the
// oracle and overhead probes — is a JobSpec; Runtime.Execute is the
// single entry point that reconstructs and runs one, in this process
// or in a worker subprocess fed the spec's JSON encoding.
type JobSpec struct {
	Kind      string        `json:"kind"`
	Scenario  ScenarioSpec  `json:"scenario"`
	Contender ContenderSpec `json:"contender"`
	Seed      int64         `json:"seed,omitempty"`
	// ProbeRounds bounds the oracle probe's run length; it participates
	// in the oracle job's scenario key.
	ProbeRounds int `json:"probeRounds,omitempty"`
	// Trace is the RL decision-trace level (telemetry.TraceDecisions,
	// or "" for none). It deliberately does NOT participate in the
	// job's canonical key — a traced run computes byte-identical
	// results, so traced and untraced runs share one cache cell; the
	// trace itself is published under a separate spec-addressed key
	// (see traceKey). It rides the spec across the wire so worker
	// processes trace exactly the cells the coordinator asked to.
	Trace string `json:"trace,omitempty"`
}

// scenarioKey returns the scenario half of the job's canonical key,
// including the kind-specific suffixes of the probe jobs. Identical to
// the closure-era scheme.
func (sp JobSpec) scenarioKey() string {
	switch sp.Kind {
	case KindOracle:
		return sp.Scenario.cacheKey() + fmt.Sprintf("/proberounds=%d", sp.ProbeRounds)
	case KindSec54:
		return sp.Scenario.cacheKey() + "/stopconv=false"
	default:
		return sp.Scenario.cacheKey()
	}
}

// controllerKey returns the controller half of the job's canonical
// key. The oracle probe suffixes the warm contender's descriptor so
// the probe's cache identity tracks any change to the warm-up naming
// scheme without colliding with the plain cells.
func (sp JobSpec) controllerKey() string {
	k := sp.Contender.key()
	if sp.Kind == KindOracle {
		k += "/probe"
	}
	return k
}

// Key returns the job's full canonical key — the same key
// runtime.Job.Key derives, exposed so workers can verify that a
// decoded spec addresses the cell it was dispatched as.
func (sp JobSpec) Key() string {
	return runtime.Job{
		Kind:       sp.Kind,
		Scenario:   sp.scenarioKey(),
		Controller: sp.controllerKey(),
		Seed:       sp.Seed,
	}.Key()
}

// validate checks kind, scenario and contender well-formedness.
func (sp JobSpec) validate() error {
	switch sp.Kind {
	case KindSim, KindQMem, KindOracle, KindSec54:
	default:
		return fmt.Errorf("exp: unknown job kind %q", sp.Kind)
	}
	switch sp.Trace {
	case telemetry.TraceNone, telemetry.TraceDecisions:
	default:
		return fmt.Errorf("exp: unknown trace level %q", sp.Trace)
	}
	if err := sp.Scenario.Validate(); err != nil {
		return err
	}
	return sp.Contender.validate()
}

// traceable reports whether this spec's execution can produce an RL
// decision trace: a FedGPO contender (the only controller with
// Q-table decisions to record) on a kind that runs a full simulation.
func (sp JobSpec) traceable() bool {
	switch sp.Contender.Type {
	case ContFedGPOWarm, ContFedGPOCold:
	default:
		return false
	}
	return sp.Kind == KindSim || sp.Kind == KindSec54
}

// traceKey addresses a spec's decision-trace artifact in the
// content-addressed cache. It reuses the job's canonical key parts
// under a distinct "trace" kind, so the artifact is spec-addressed
// exactly like the result it annotates while never colliding with it:
//
//	<keyVersion>|trace|<level>|<kind>|<scenario key>|<controller key>|seed=<N>
func traceKey(sp JobSpec) string {
	return runtime.KeyFor("trace", sp.Trace, sp.Kind,
		sp.scenarioKey(), sp.controllerKey(), fmt.Sprintf("seed=%d", sp.Seed))
}

// hasTrace reports whether the spec's trace artifact is already in the
// run cache.
func (r *Runtime) hasTrace(sp JobSpec) bool {
	var raw json.RawMessage
	return r.cache.Get(traceKey(sp), &raw)
}

// EncodeJobSpec serializes a spec for the wire.
func EncodeJobSpec(sp JobSpec) json.RawMessage {
	b, err := json.Marshal(sp)
	if err != nil {
		panic("exp: unmarshalable job spec: " + err.Error())
	}
	return b
}

// DecodeJobSpec parses and validates a wire spec.
func DecodeJobSpec(b []byte) (JobSpec, error) {
	var sp JobSpec
	if err := json.Unmarshal(b, &sp); err != nil {
		return JobSpec{}, fmt.Errorf("exp: job spec decode: %w", err)
	}
	if err := sp.validate(); err != nil {
		return JobSpec{}, err
	}
	return sp, nil
}

// Job compiles a spec into a runnable runtime job: the canonical key
// fields, the serialized spec for process-crossing backends, and the
// in-process execution closure for the pool backend. Both execution
// paths run through Execute, so a cell computes the same result no
// matter which side of a process boundary it lands on.
//
// When the runtime has a trace level configured it is stamped onto
// the spec here — but only when the spec carries none, so a worker
// compiling a wire-decoded spec preserves the coordinator's request
// rather than its own (always-empty) setting. A traced cell whose
// trace artifact is not yet cached is marked ForceRun: the cell
// re-executes once to capture the trace (publishing byte-identical
// results), and once the artifact exists re-tracing is a pure cache
// hit costing zero simulations.
func (r *Runtime) Job(sp JobSpec) runtime.Job {
	if r.traceLevel != "" && sp.Trace == "" {
		sp.Trace = r.traceLevel
	}
	return runtime.Job{
		Kind:       sp.Kind,
		Scenario:   sp.scenarioKey(),
		Controller: sp.controllerKey(),
		Seed:       sp.Seed,
		Payload:    EncodeJobSpec(sp),
		Run:        func() runtime.Result { return r.Execute(sp) },
		ForceRun:   sp.Trace != "" && sp.traceable() && !r.hasTrace(sp),
		Affinity:   affinityKey(sp),
	}
}

// affinityKey returns the spec's scheduling-affinity hint: the
// pretrained-controller snapshot key for warm FedGPO cells, "" for
// every contender with no per-scenario warm-up to share. Cells with
// equal keys co-located in one worker process warm up once
// (pretrainedSnapshot singleflights per key per process). Advisory
// only — it never enters the cache identity.
func affinityKey(sp JobSpec) string {
	c := sp.Contender
	if c.Type != ContFedGPOWarm || c.Core == nil {
		return ""
	}
	return pretrainKey(sp.Scenario, *c.Core, c.WarmSeed, c.WarmRounds)
}

// RunJob executes one compiled job through the runtime's executor —
// run-cache check, panic isolation, cache write-back. It is the
// worker binary's per-request entry point.
func (r *Runtime) RunJob(j runtime.Job) runtime.Result {
	return r.exec.RunAll([]runtime.Job{j})[0]
}

// Execute reconstructs and runs one job from its declarative spec.
// It is deterministic in the spec for every kind except the sec54
// probe's wall-clock overhead measurements (see sec54Extra), and it is
// the single entry point both backends funnel into — the pool backend
// through Job's closure, worker subprocesses through the decoded wire
// spec.
func (r *Runtime) Execute(sp JobSpec) runtime.Result {
	if err := sp.validate(); err != nil {
		panic(err.Error())
	}
	var res runtime.Result
	switch sp.Kind {
	case KindSim:
		res = executeSim(r, sp)
	case KindQMem:
		res = executeQMem(r, sp)
	case KindOracle:
		res = executeOracle(r, sp)
	case KindSec54:
		res = executeSec54(r, sp)
	default:
		panic("exp: unknown job kind " + sp.Kind)
	}
	// If this job's warm-up built a fresh pretrain snapshot, the first
	// result sharing its key carries the artifact out (wire v5 ships it
	// fleet-wide). Observational only: Sim bytes are untouched.
	r.attachBuiltSnapshot(sp, &res)
	return res
}

// executeSim runs a plain simulation cell with per-job telemetry:
// controller construction (pretrained-snapshot restore or warm-up
// included) timed as the pretrain phase, round and merge phases
// recorded by the simulator, and the snapshot attached to the result
// for the executor — or, across a process boundary, the wire — to
// fold into the run-level collector. Telemetry and tracing are
// observational only; the Sim outcome is byte-identical to an
// uninstrumented run.
func executeSim(r *Runtime, sp JobSpec) runtime.Result {
	col := telemetry.NewCollector()
	t0 := time.Now()
	ctrl := r.controller(sp.Scenario, sp.Contender)
	col.RecordPhase(telemetry.PhasePretrain, time.Since(t0))
	traced := r.traceTarget(sp, ctrl)
	cfg := r.config(sp.Scenario, sp.Seed)
	cfg.Telemetry = col
	res := runtime.Result{Sim: fl.Run(cfg, ctrl)}
	r.publishTrace(sp, traced)
	m := col.Snapshot()
	res.Telemetry = &m
	return res
}

// traceTarget enables decision tracing on the controller when the spec
// asks for it and the contender supports it, returning the controller
// to harvest the trace from (nil otherwise).
func (r *Runtime) traceTarget(sp JobSpec, ctrl fl.Controller) *core.Controller {
	if sp.Trace == "" || !sp.traceable() {
		return nil
	}
	c, ok := ctrl.(*core.Controller)
	if !ok {
		return nil
	}
	c.EnableTrace()
	return c
}

// publishTrace stores a traced controller's decision record as the
// spec's trace artifact. Best effort, like every cache write: a failed
// publish costs one future re-trace.
func (r *Runtime) publishTrace(sp JobSpec, c *core.Controller) {
	if c == nil {
		return
	}
	if tr := c.DecisionTrace(); len(tr) > 0 {
		_ = r.cache.Put(traceKey(sp), tr)
	}
}

// controller materializes a contender spec into a live controller for
// a scenario. The warm FedGPO variant restores its Q-tables from the
// runtime's pretrained-controller cache, addressed by the spec's
// scenario, config and warm-up deployment — the warm-up runs once per
// pretrain key per process, and once ever under a shared cache
// directory.
func (r *Runtime) controller(s ScenarioSpec, c ContenderSpec) fl.Controller {
	if err := c.validate(); err != nil {
		panic(err.Error())
	}
	switch c.Type {
	case ContStatic:
		return &fl.Static{P: c.Params, Label: c.Label}
	case ContFedGPOWarm:
		cfg := *c.Core
		snap := r.pretrainedSnapshot(s, cfg, c.WarmSeed, c.WarmRounds, pretrainKey(s, cfg, c.WarmSeed, c.WarmRounds))
		return core.FromSnapshot(cfg, snap)
	case ContFedGPOCold:
		return core.New(*c.Core)
	case ContBO:
		return baseline.NewBO(c.CtrlSeed)
	case ContGA:
		return baseline.NewGA(c.CtrlSeed)
	case ContFedEX:
		return baseline.NewFedEX(c.CtrlSeed)
	case ContABS:
		return abs.New(*c.ABS)
	default:
		panic("exp: unknown contender type " + c.Type)
	}
}

// pretrainKey addresses a pretrained-controller snapshot in the
// content-addressed cache: scenario, full controller config, and the
// warm-up deployment (see the package doc's key scheme).
func pretrainKey(s ScenarioSpec, cfg core.Config, warmSeed int64, warmRounds int) string {
	return runtime.KeyFor("pretrain", s.cacheKey(), "cfg="+canonJSON(cfg),
		fmt.Sprintf("warmseed=%d", warmSeed), fmt.Sprintf("warmrounds=%d", warmRounds))
}

// staticContender names a fixed-(B,E,K) contender.
func staticContender(p fl.Params, label string) ContenderSpec {
	name := label
	if name == "" {
		name = "Fixed" + p.String()
	}
	return ContenderSpec{Type: ContStatic, Name: name, Params: p, Label: label}
}

// fedgpoWarmContender names the paper's steady-state FedGPO contender:
// the Q-tables are trained on a warm-up run (distinct seed) and
// frozen, matching the paper's §5.4 framing of the learning phase as
// amortized server-side infrastructure.
func fedgpoWarmContender(s ScenarioSpec) ContenderSpec {
	return fedgpoVariantContender(s, "FedGPO", nil)
}

// FedGPOWarmContender exposes the warm-started FedGPO contender to
// external harnesses (the repo's benchmark suite) that assemble
// explicit JobSpecs — the contender whose per-scenario warm-up the
// affinity router co-locates and whose snapshot wire v5 ships.
func FedGPOWarmContender(s ScenarioSpec) ContenderSpec {
	return fedgpoWarmContender(s)
}

// fedgpoVariantContender builds a warm-started FedGPO contender with a
// customized configuration. The spec serializes the full controller
// config plus the warm-up deployment, so any config deviation names a
// distinct cell — and any process can rebuild the controller from the
// spec alone.
func fedgpoVariantContender(s ScenarioSpec, name string, mutate func(*core.Config)) ContenderSpec {
	cfg := core.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	return ContenderSpec{
		Type:       ContFedGPOWarm,
		Name:       name,
		Core:       &cfg,
		WarmSeed:   warmupSeed,
		WarmRounds: min(150, s.rounds()),
	}
}

// fedgpoColdContender names the cold FedGPO contender (learning inside
// the measured run).
func fedgpoColdContender() ContenderSpec {
	cfg := core.DefaultConfig()
	return ContenderSpec{Type: ContFedGPOCold, Name: "FedGPO (cold)", Core: &cfg}
}

// canonJSON canonically serializes a controller config for use inside
// a cache key. Struct fields marshal in declaration order, so the
// encoding is stable across processes.
func canonJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("exp: unmarshalable config in cache key: " + err.Error())
	}
	return string(b)
}
