package exp

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"fedgpo/internal/fl"
	"fedgpo/internal/runtime"
	"fedgpo/internal/workload"
)

// registryOptions is the reduced deployment the registry-wide tests
// run at (same scale as the warm-cache test).
func registryOptions() Options {
	return Options{FleetSize: 20, Seeds: []int64{1}, MaxRounds: 60}
}

// comparableResult renders the parts of a result that a spec
// re-execution must reproduce byte-for-byte. The documented exception
// is wall-clock overhead measured inside the job (see the sec54Extra
// and ROADMAP caveats): Result.Sim.ControllerOverheadSec on every
// kind, plus the sec54 probe's phase timers — real elapsed time that
// two genuine executions can never agree on; a cached replay carries
// the first run's values. They are zeroed on both sides before
// comparison. Everything else, every kind, must match exactly.
func comparableResult(t *testing.T, kind string, r runtime.Result) string {
	t.Helper()
	r.Sim.ControllerOverheadSec = 0
	extra := r.Extra
	if kind == KindSec54 {
		var ex sec54Extra
		if err := r.GetExtra(&ex); err != nil {
			t.Fatalf("sec54 extra: %v", err)
		}
		ex.IdentifyStatesNS, ex.ChooseParamsNS, ex.CalcRewardNS, ex.UpdateTablesNS = 0, 0, 0, 0
		b, err := json.Marshal(ex)
		if err != nil {
			t.Fatal(err)
		}
		extra = b
	}
	b, err := json.Marshal(struct {
		Sim   fl.Result       `json:"sim"`
		Extra json.RawMessage `json:"extra"`
	}{r.Sim, extra})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The tentpole contract of the spec refactor: every job the full
// registry emits is a self-contained, serializable spec. Encoding the
// spec, decoding it in (what stands in for) another process, and
// executing it there must reproduce the in-process run byte for byte —
// same canonical key, same simulator output, same Extra payload.
func TestSpecRoundTripRegistry(t *testing.T) {
	fixedBestCache = sync.Map{}
	t.Cleanup(func() { fixedBestCache = sync.Map{} })
	rtA, err := NewRuntime(0, "")
	if err != nil {
		t.Fatal(err)
	}
	rtA.EnableStore()
	type recorded struct {
		kind    string
		payload json.RawMessage
	}
	jobs := map[string]recorded{} // canonical key -> spec payload
	rtA.onJob = func(j runtime.Job) {
		if len(j.Payload) == 0 {
			t.Errorf("job %q emitted without a serialized spec", j.Key())
			return
		}
		jobs[j.Key()] = recorded{j.Kind, j.Payload}
	}
	opts := registryOptions().WithRuntime(rtA)
	for _, e := range Registry() {
		e.Run(opts)
	}
	if len(jobs) == 0 {
		t.Fatal("registry emitted no jobs")
	}

	// Re-execute every distinct spec in a fresh runtime: separate
	// pretrain singleflight, empty cache — the same situation a worker
	// subprocess starts from.
	rtB, err := NewRuntime(1, "")
	if err != nil {
		t.Fatal(err)
	}
	for key, rec := range jobs {
		sp, err := DecodeJobSpec(rec.payload)
		if err != nil {
			t.Fatalf("job %q: spec does not round-trip: %v", key, err)
		}
		if got := sp.Key(); got != key {
			t.Errorf("decoded spec addresses %q, emitted as %q", got, key)
			continue
		}
		// The scenario spec itself must survive its own JSON round-trip:
		// re-encoding the decoded scenario and decoding it again must
		// address the same deployment.
		reb, err := json.Marshal(sp.Scenario)
		if err != nil {
			t.Fatalf("job %q: scenario re-encode: %v", key, err)
		}
		var s2 ScenarioSpec
		if err := json.Unmarshal(reb, &s2); err != nil {
			t.Fatalf("job %q: scenario re-decode: %v", key, err)
		}
		if s2.cacheKey() != sp.Scenario.cacheKey() {
			t.Errorf("job %q: scenario spec does not round-trip: %q vs %q",
				key, s2.cacheKey(), sp.Scenario.cacheKey())
		}
		want, ok := rtA.Store().Get(key)
		if !ok {
			t.Fatalf("job %q missing from the result store", key)
		}
		got := rtB.Execute(sp)
		if comparableResult(t, rec.kind, got) != comparableResult(t, rec.kind, want) {
			t.Errorf("job %q: re-executed spec diverges from in-process run", key)
		}
	}
}

// Spec decoding must reject malformed wire payloads instead of
// producing a runnable-looking job.
func TestDecodeJobSpecRejectsMalformed(t *testing.T) {
	good := EncodeJobSpec(simSpec(Tiny().apply(Ideal(workload.CNNMNIST())), staticContender(fl.Params{B: 8, E: 10, K: 20}, ""), 1))
	if _, err := DecodeJobSpec(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, payload := range map[string]string{
		"not json":          "{nope",
		"unknown kind":      `{"kind":"bogus","scenario":{},"contender":{"type":"static"}}`,
		"unknown contender": `{"kind":"sim","scenario":{},"contender":{"type":"bogus"}}`,
		"warm sans config":  `{"kind":"sim","scenario":{},"contender":{"type":"fedgpo-warm"}}`,
		"abs sans config":   `{"kind":"sim","scenario":{},"contender":{"type":"abs"}}`,
	} {
		if _, err := DecodeJobSpec([]byte(payload)); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

// Spec-derived keys must follow the v3 canonical layout: the scenario
// half hashes the full resolved scenario spec (device-class mix,
// partition, channel, co-runner, deadline), never the display name.
// Pinning the exact bytes here keeps the layout stable — a change to
// it must be deliberate and come with a keyVersion bump.
func TestSpecKeysCanonicalScheme(t *testing.T) {
	s := Ideal(workload.CNNMNIST())
	wantScenario := "CNN-MNIST/fleet=H30:M70:L100/rounds=400/part=iid" +
		"/net=gauss(mean=80,std=8,floor=1,tx=0.8,weak=1.9)/intf=none/deadline=0/agg=30"
	if got := s.cacheKey(); got != wantScenario {
		t.Errorf("scenario key:\n got %q\nwant %q", got, wantScenario)
	}
	static := simSpec(s, staticContender(fl.Params{B: 8, E: 10, K: 20}, "Fixed (Best)"), 2)
	wantStatic := "v3|sim|" + wantScenario + "|static/(8,10,20)/label=Fixed (Best)|seed=2"
	if got := static.Key(); got != wantStatic {
		t.Errorf("static key:\n got %q\nwant %q", got, wantStatic)
	}
	r := Realistic(workload.CNNMNIST())
	wantRealistic := "CNN-MNIST/fleet=H30:M70:L100/rounds=400/part=iid" +
		"/net=gauss(mean=38,std=25,floor=8,tx=0.8,weak=1.9)" +
		"/intf=web-browsing(cpu=0.45±0.15,mem=0.3±0.1)@0.5" +
		fmt.Sprintf("/deadline=%g/agg=30", r.Deadline.SecondsFor(r.Workload))
	if got := r.cacheKey(); got != wantRealistic {
		t.Errorf("realistic scenario key:\n got %q\nwant %q", got, wantRealistic)
	}
	warm := fedgpoWarmContender(s)
	wantWarmPrefix := "fedgpo-warm/cfg={"
	if k := warm.key(); len(k) < len(wantWarmPrefix) || k[:len(wantWarmPrefix)] != wantWarmPrefix {
		t.Errorf("warm contender key lost its config serialization: %q", k)
	}
	oracle := oracleSpec(s, Tiny(), 20)
	wantOracle := "v3|oracle|" + s.cacheKey() + "/proberounds=20|" + warm.key() + "/probe|seed=1"
	if got := oracle.Key(); got != wantOracle {
		t.Errorf("oracle key:\n got %q\nwant %q", got, wantOracle)
	}
	cold := JobSpec{Kind: KindSec54, Scenario: s, Contender: fedgpoColdContender(), Seed: 1}
	wantCold := "v3|sec54|" + s.cacheKey() + "/stopconv=false|" + fedgpoColdContender().key() + "|seed=1"
	if got := cold.Key(); got != wantCold {
		t.Errorf("sec54 key:\n got %q\nwant %q", got, wantCold)
	}
}
