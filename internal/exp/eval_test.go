package exp

import (
	"strings"
	"testing"

	"fedgpo/internal/workload"
)

// Integration tests for the comparison experiments at Tiny scale —
// checking structure and internal consistency rather than absolute
// outcomes (Tiny deployments are not representative; see Quick's doc).

func TestFig11StructureAndNormalization(t *testing.T) {
	tab := Fig11(Tiny())
	if len(tab.Rows) != 8 { // 2 scenarios x 4 controllers
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if len(row) != 6 {
			t.Fatalf("row %d has %d cells", i, len(row))
		}
		// The first controller of each scenario group is the
		// normalization base and must read exactly 1.00x.
		if row[1] == "Fixed (Best)" && (row[2] != "1.00x" || row[3] != "1.00x") {
			t.Errorf("base row not normalized to 1.00x: %v", row)
		}
	}
	// Every scenario group contains all four contenders.
	names := map[string]int{}
	for _, row := range tab.Rows {
		names[row[1]]++
	}
	for _, n := range []string{"Fixed (Best)", "Adaptive (BO)", "Adaptive (GA)", "FedGPO"} {
		if names[n] != 2 {
			t.Errorf("controller %s appears %d times, want 2", n, names[n])
		}
	}
}

func TestFig12UsesPriorWorkContenders(t *testing.T) {
	tab := Fig12(Tiny())
	names := map[string]bool{}
	for _, row := range tab.Rows {
		names[row[1]] = true
	}
	for _, n := range []string{"FedEX", "ABS", "FedGPO"} {
		if !names[n] {
			t.Errorf("fig12 missing contender %s", n)
		}
	}
	if names["Fixed (Best)"] {
		t.Error("fig12 compares prior work, not Fixed (Best)")
	}
}

func TestFixedBestParamsCachedAndValid(t *testing.T) {
	w := workload.CNNMNIST()
	a := FixedBestParams(w, Tiny())
	b := FixedBestParams(w, Tiny())
	if a != b {
		t.Error("cache returned different parameters for the same key")
	}
	if !a.Valid() {
		t.Errorf("grid search returned invalid params %v", a)
	}
}

func TestTable5RowsCoverAllScenarios(t *testing.T) {
	tab := Table5(Options{FleetSize: 20, Seeds: []int64{1}, MaxRounds: 15})
	if len(tab.Rows) != 5 {
		t.Fatalf("Table 5 rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[2], "%") {
			t.Errorf("prediction accuracy cell %q not a percentage", row[2])
		}
	}
}

func TestSec54ReportsAllOverheadPhases(t *testing.T) {
	tab := Sec54(Options{FleetSize: 20, Seeds: []int64{1}, MaxRounds: 60})
	want := []string{
		"reward convergence round",
		"identify per-device states",
		"choose global parameters",
		"calculate reward",
		"update Q-tables",
		"total controller overhead",
		"Q-table memory",
	}
	have := map[string]bool{}
	for _, row := range tab.Rows {
		have[row[0]] = true
	}
	for _, q := range want {
		if !have[q] {
			t.Errorf("sec54 missing quantity %q", q)
		}
	}
}

func TestAblationColdStartStructure(t *testing.T) {
	tab := AblationColdStart(Options{FleetSize: 20, Seeds: []int64{1}, MaxRounds: 120})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want Fixed + cold + warm", len(tab.Rows))
	}
	if !strings.HasPrefix(tab.Rows[0][0], "Fixed (Best)") {
		t.Errorf("first row should be the Fixed base: %v", tab.Rows[0])
	}
}

func TestExperimentRegistryRunnersAgree(t *testing.T) {
	// Every registry entry's Run must produce a table whose ID matches
	// its registry id (catches copy-paste drift). Only the cheap,
	// simulation-free entries are executed here.
	for _, id := range []string{"fig3", "fig4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if tab := e.Run(Tiny()); tab.ID != id {
			t.Errorf("experiment %s produced table id %s", id, tab.ID)
		}
	}
}
