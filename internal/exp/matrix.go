package exp

import (
	"fmt"
	"strconv"
	"strings"

	"fedgpo/internal/device"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

// ScenarioMatrix generates the cross product of scenario axes for a
// workload — the generator behind fedgpo-sweep's -matrix flag. The
// matrix string is a ';'-separated list of axes, each "name=v1,v2,..."
// with the axis values crossed in the order given:
//
//	fleet=200,100,H5:M5:L10   fleet size (paper mix scaled) or explicit H:M:L mix
//	alpha=iid,0.1,0.5         data partition: IID or Dirichlet concentration
//	net=stable,unstable       wireless channel preset
//	intf=none,web-browsing,heavy-game@0.3
//	                          co-runner profile, optionally @active-fraction
//	deadline=none,auto,120    straggler policy: none, auto, or fixed seconds
//	rounds=100                per-run round budget
//
// Every combination starts from the Ideal preset, applies one value
// per axis, and is named by its axis assignments (e.g.
// "fleet=100/alpha=0.5/net=unstable"), so each scenario's display
// label states exactly how it deviates from the baseline. Specs are
// returned in row-major order: the last axis varies fastest.
func ScenarioMatrix(w workload.Workload, matrix string) ([]ScenarioSpec, error) {
	type axis struct {
		name   string
		values []string
	}
	var axes []axis
	seen := map[string]bool{}
	for _, part := range strings.Split(matrix, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, vals, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || strings.TrimSpace(vals) == "" {
			return nil, fmt.Errorf("exp: matrix axis %q: want name=v1,v2,...", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("exp: matrix axis %q given twice", name)
		}
		seen[name] = true
		var values []string
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return nil, fmt.Errorf("exp: matrix axis %q has an empty value", name)
			}
			values = append(values, v)
		}
		axes = append(axes, axis{name, values})
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("exp: empty scenario matrix")
	}

	specs := []ScenarioSpec{Ideal(w)}
	specs[0].Name = ""
	for _, ax := range axes {
		next := make([]ScenarioSpec, 0, len(specs)*len(ax.values))
		for _, base := range specs {
			for _, v := range ax.values {
				s := base
				if err := applyAxis(&s, ax.name, v); err != nil {
					return nil, err
				}
				label := ax.name + "=" + v
				if s.Name == "" {
					s.Name = label
				} else {
					s.Name += "/" + label
				}
				next = append(next, s)
			}
		}
		specs = next
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("exp: matrix scenario %q: %w", s.Name, err)
		}
	}
	return specs, nil
}

// applyAxis sets one axis value on a spec.
func applyAxis(s *ScenarioSpec, name, v string) error {
	switch name {
	case "fleet":
		return applyFleetAxis(s, v)
	case "alpha":
		if v == PartitionIID {
			s.Partition = PartitionSpec{}
			return nil
		}
		alpha, err := strconv.ParseFloat(v, 64)
		if err != nil || alpha <= 0 {
			return fmt.Errorf("exp: matrix alpha %q: want %q or a positive concentration", v, PartitionIID)
		}
		s.Partition = PartitionSpec{Kind: PartitionDirichlet, Alpha: alpha, Seed: nonIIDPartitionSeed}
		return nil
	case "net":
		if _, ok := netsim.ChannelByName(v); !ok {
			return fmt.Errorf("exp: matrix net %q: want %s or %s", v, netsim.KindStable, netsim.KindUnstable)
		}
		s.Network = NetworkSpec{Kind: v}
		return nil
	case "intf":
		if v == IntfNone {
			s.Interference = InterferenceSpec{}
			return nil
		}
		kind, fracStr, hasFrac := strings.Cut(v, "@")
		if _, ok := interfere.ProfileByName(kind); !ok {
			return fmt.Errorf("exp: matrix intf %q: want %s, a co-runner profile name, or name@fraction", v, IntfNone)
		}
		spec := InterferenceSpec{Kind: kind}
		if hasFrac {
			frac, err := strconv.ParseFloat(fracStr, 64)
			if err != nil || frac <= 0 || frac > 1 {
				return fmt.Errorf("exp: matrix intf %q: active fraction must be in (0, 1]", v)
			}
			spec.ActiveFraction = frac
		}
		s.Interference = spec
		return nil
	case "deadline":
		switch v {
		case DeadlineNone:
			s.Deadline = DeadlineSpec{}
		case DeadlineAuto:
			s.Deadline = DeadlineSpec{Kind: DeadlineAuto}
		default:
			sec, err := strconv.ParseFloat(v, 64)
			if err != nil || sec <= 0 {
				return fmt.Errorf("exp: matrix deadline %q: want %s, %s, or positive seconds", v, DeadlineNone, DeadlineAuto)
			}
			s.Deadline = DeadlineSpec{Kind: DeadlineFixed, Seconds: sec}
		}
		return nil
	case "rounds":
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("exp: matrix rounds %q: want a positive integer", v)
		}
		s.MaxRounds = n
		return nil
	default:
		return fmt.Errorf("exp: unknown matrix axis %q (valid: fleet, alpha, net, intf, deadline, rounds)", name)
	}
}

// applyFleetAxis parses a fleet axis value: a total size (paper mix
// scaled) or an explicit "H#:M#:L#" device-class mix.
func applyFleetAxis(s *ScenarioSpec, v string) error {
	if n, err := strconv.Atoi(v); err == nil {
		if n <= 0 {
			return fmt.Errorf("exp: matrix fleet %q: size must be positive", v)
		}
		s.Fleet = FleetSpec{Size: n}
		return nil
	}
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("exp: matrix fleet %q: want a size or H#:M#:L#", v)
	}
	counts := make([]int, 3)
	for i, prefix := range []string{"H", "M", "L"} {
		p := parts[i]
		if !strings.HasPrefix(p, prefix) {
			return fmt.Errorf("exp: matrix fleet %q: want H#:M#:L#", v)
		}
		n, err := strconv.Atoi(p[len(prefix):])
		if err != nil || n < 0 {
			return fmt.Errorf("exp: matrix fleet %q: bad %s count", v, prefix)
		}
		counts[i] = n
	}
	if counts[0]+counts[1]+counts[2] == 0 {
		return fmt.Errorf("exp: matrix fleet %q: empty fleet", v)
	}
	s.Fleet = FleetSpec{Mix: device.FleetComposition{High: counts[0], Mid: counts[1], Low: counts[2]}}
	return nil
}
