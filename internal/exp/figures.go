package exp

import (
	"fmt"

	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/workload"
)

// Options scales experiments between full paper size and quick test
// size, and configures the experiment runtime they execute on.
type Options struct {
	// FleetSize overrides the 200-device deployment (0 = paper size).
	FleetSize int
	// Seeds overrides the evaluation seed set (nil = default).
	Seeds []int64
	// MaxRounds overrides the per-run round budget (0 = default).
	MaxRounds int
	// Parallel is the runtime worker count (0 = GOMAXPROCS, 1 = serial).
	Parallel int
	// InnerParallel is the per-round participant fan-out budget shared
	// across every concurrently running simulation (0 = serial rounds,
	// negative = derive the budget from each batch's shape; see
	// Runtime.SetInnerParallel). It only shapes wall-clock: results are
	// byte-identical for any value. It configures the transient runtime
	// built for direct figure calls; a runtime bound via WithRuntime
	// carries its own budget (set it with Runtime.SetInnerParallel) and
	// this field is ignored.
	InnerParallel int
	// CacheDir, when set, persists the content-addressed run cache on
	// disk so reruns only simulate cells whose configuration changed.
	CacheDir string
	// rt is the bound experiment runtime; see WithRuntime.
	rt *Runtime
}

// Default returns the paper-scale options.
func Default() Options { return Options{} }

// Quick returns reduced options for benchmarks: a 100-device fleet and
// a single seed. The fleet cannot shrink much further — the energy
// economics that make larger K worthwhile come from the idle fleet's
// draw, which vanishes in toy deployments.
func Quick() Options { return Options{FleetSize: 100, Seeds: []int64{1}, MaxRounds: 300} }

// Tiny returns the smallest option set used by unit tests; its absolute
// results are not representative (see Quick).
func Tiny() Options { return Options{FleetSize: 20, Seeds: []int64{1}, MaxRounds: 200} }

// WithRuntime binds a shared experiment runtime to the options: every
// figure generated from the returned Options uses its worker pool, run
// cache and result store, so identical cells are simulated once across
// the whole report.
func (o Options) WithRuntime(rt *Runtime) Options {
	o.rt = rt
	return o
}

// runtime returns the bound runtime, or builds a transient one from
// Parallel/CacheDir for direct figure calls. Figure constructors have
// no error channel, so an unusable CacheDir panics here (mirroring
// fl.Run's panic on an invalid config); callers that want the error
// instead should build the runtime with NewRuntime and bind it via
// WithRuntime.
func (o Options) runtime() *Runtime {
	if o.rt != nil {
		return o.rt
	}
	rt, err := NewRuntime(o.Parallel, o.CacheDir)
	if err != nil {
		panic(err)
	}
	rt.SetInnerParallel(o.InnerParallel)
	return rt
}

func (o Options) seeds() []int64 {
	if len(o.Seeds) == 0 {
		return Seeds()
	}
	return o.Seeds
}

func (o Options) apply(s ScenarioSpec) ScenarioSpec {
	if o.FleetSize > 0 {
		s.Fleet.Size = o.FleetSize
	}
	if o.MaxRounds > 0 {
		s.MaxRounds = o.MaxRounds
	}
	return s
}

// Fig1 reproduces paper Figure 1: convergence round and global PPW of
// CNN-MNIST while sweeping each global parameter with the others held
// at the characterization baseline (1, 10, 20). Values are normalized
// to the baseline, exactly as the figure plots them.
func Fig1(o Options) Table {
	s := o.apply(Ideal(workload.CNNMNIST()))
	seeds := o.seeds()
	rt := o.runtime()

	type point struct {
		param string
		value int
		p     fl.Params
	}
	var points []point
	for _, v := range fl.BValues() {
		points = append(points, point{"B", v, fl.Params{B: v, E: 10, K: 20}})
	}
	// The E and K sweeps anchor at B=8 (the batch optimum) so their
	// convergence columns carry signal; values stay normalized to the
	// paper's (1,10,20) characterization baseline.
	for _, v := range fl.EValues() {
		points = append(points, point{"E", v, fl.Params{B: 8, E: v, K: 20}})
	}
	for _, v := range fl.KValues() {
		points = append(points, point{"K", v, fl.Params{B: 8, E: 10, K: v}})
	}

	cells := make([]cell, 0, len(points)+1)
	cells = append(cells, cell{s, staticContender(fl.DefaultParams(), "")})
	for _, pt := range points {
		cells = append(cells, cell{s, staticContender(pt.p, "")})
	}
	sums := rt.summaries(cells, seeds)
	base := sums[0]

	t := Table{
		ID:     "fig1",
		Title:  "CNN-MNIST convergence round and global PPW vs (B, E, K), normalized to (1,10,20)",
		Header: []string{"param", "value", "conv round (norm)", "PPW (norm)"},
	}
	for i, pt := range points {
		r := sums[i+1]
		t.AddRow(pt.param, fmt.Sprint(pt.value),
			fmtRatio(r.MeanConvergenceRound/base.MeanConvergenceRound),
			fmtRatio(r.MeanPPW/base.MeanPPW))
	}
	t.Notes = append(t.Notes,
		"paper expectation: optima away from the (1,10,20) baseline; best B near 8, E near 10, K near 20")
	return t
}

// Fig2 reproduces paper Figure 2: the most energy-efficient (B, E, K)
// combination shifts between CNN-MNIST and LSTM-Shakespeare. The table
// reports global PPW over a (B, E) grid at K=20 for both workloads,
// normalized per-workload to its (1,10,20) baseline, and names each
// workload's best setting.
func Fig2(o Options) Table {
	t := Table{
		ID:     "fig2",
		Title:  "most energy-efficient (B,E,K) shifts with NN characteristics (K=20)",
		Header: []string{"workload", "B", "E", "PPW (norm)"},
	}
	seeds := o.seeds()
	rt := o.runtime()
	bGrid := []int{2, 4, 8, 16}
	eGrid := []int{5, 10, 15, 20}
	ws := []workload.Workload{workload.CNNMNIST(), workload.LSTMShakespeare()}

	var cells []cell
	for _, w := range ws {
		s := o.apply(Ideal(w))
		cells = append(cells, cell{s, staticContender(fl.DefaultParams(), "")})
		for _, b := range bGrid {
			for _, e := range eGrid {
				cells = append(cells, cell{s, staticContender(fl.Params{B: b, E: e, K: 20}, "")})
			}
		}
	}
	sums := rt.summaries(cells, seeds)

	idx := 0
	for _, w := range ws {
		base := sums[idx]
		idx++
		bestLabel, bestPPW := "", 0.0
		for _, b := range bGrid {
			for _, e := range eGrid {
				r := sums[idx]
				idx++
				norm := r.MeanPPW / base.MeanPPW
				t.AddRow(w.Name, fmt.Sprint(b), fmt.Sprint(e), fmtRatio(norm))
				if r.MeanPPW > bestPPW {
					bestPPW = r.MeanPPW
					bestLabel = fmt.Sprintf("(%d,%d,20)", b, e)
				}
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s best setting: %s", w.Name, bestLabel))
	}
	t.Notes = append(t.Notes,
		"paper expectation: CNN-MNIST best near (8,10,20); LSTM-Shakespeare shifts to smaller B, larger E (paper: (4,20,20))")
	return t
}

// Fig3 reproduces paper Figure 3: per-round local training time of each
// device category as a function of (a) B at E=10 and (b) E at B=8,
// normalized to the H category at B=1 / E=10 respectively. This is a
// pure device-model characterization — it evaluates closed-form device
// models, runs no simulation, and completes in microseconds at any
// deployment scale — so the Options every registry constructor accepts
// are deliberately ignored: fleet size, seeds and round budgets have
// nothing to scale here, and a -tiny or -quick run pays the same
// (negligible) price as a paper-scale one.
func Fig3(_ Options) Table {
	w := workload.CNNMNIST()
	profiles := device.Profiles()
	t := Table{
		ID:     "fig3",
		Title:  "training time per round by device category vs B (E=10) and E (B=8)",
		Header: []string{"sweep", "value", "H", "M", "L"},
	}
	timeOf := func(cat device.Category, b, e int) float64 {
		return device.ComputeSeconds(profiles[cat], w.Shape, b, e, w.SamplesPerDevice,
			device.Interference{})
	}
	baseB := timeOf(device.High, 1, 10)
	for _, b := range fl.BValues() {
		t.AddRow("B", fmt.Sprint(b),
			fmtRatio(timeOf(device.High, b, 10)/baseB),
			fmtRatio(timeOf(device.Mid, b, 10)/baseB),
			fmtRatio(timeOf(device.Low, b, 10)/baseB))
	}
	baseE := timeOf(device.High, 8, 10)
	for _, e := range fl.EValues() {
		t.AddRow("E", fmt.Sprint(e),
			fmtRatio(timeOf(device.High, 8, e)/baseE),
			fmtRatio(timeOf(device.Mid, 8, e)/baseE),
			fmtRatio(timeOf(device.Low, 8, e)/baseE))
	}
	t.Notes = append(t.Notes,
		"paper expectation: large H-to-L gaps at every setting; time falls with B (overhead amortization) and scales linearly with E")
	return t
}

// Fig4 reproduces paper Figure 4: per-category round time (compute +
// communication) in the absence of variance, under on-device
// interference, and under an unstable network — normalized to H with no
// variance. Like Fig3 it is a pure device/channel-model
// characterization (no simulation), so Options are deliberately
// ignored — there is no deployment to scale.
func Fig4(_ Options) Table {
	w := workload.CNNMNIST()
	profiles := device.Profiles()
	t := Table{
		ID:     "fig4",
		Title:  "round time by category under runtime variance (B=8, E=10)",
		Header: []string{"condition", "H", "M", "L"},
	}
	webIntf := device.Interference{
		CPUUsage: interfere.WebBrowsing().MeanCPU,
		MemUsage: interfere.WebBrowsing().MeanMem,
	}
	stable := netsim.StableChannel()
	goodCond := netsim.Condition{BandwidthMbps: stable.MeanMbps, Signal: netsim.SignalStrong}
	badCond := netsim.Condition{BandwidthMbps: 10, Signal: netsim.SignalWeak}

	roundTime := func(cat device.Category, intf device.Interference, cond netsim.Condition) float64 {
		comp := device.ComputeSeconds(profiles[cat], w.Shape, 8, 10, w.SamplesPerDevice, intf)
		comm := stable.CommRoundTrip(w.Shape.ModelBytes, cond).Seconds
		return comp + comm
	}
	base := roundTime(device.High, device.Interference{}, goodCond)
	addRow := func(label string, intf device.Interference, cond netsim.Condition) {
		t.AddRow(label,
			fmtRatio(roundTime(device.High, intf, cond)/base),
			fmtRatio(roundTime(device.Mid, intf, cond)/base),
			fmtRatio(roundTime(device.Low, intf, cond)/base))
	}
	addRow("no variance", device.Interference{}, goodCond)
	addRow("on-device interference", webIntf, goodCond)
	addRow("unstable network", device.Interference{}, badCond)
	t.Notes = append(t.Notes,
		"paper expectation: interference widens the inter-category gap; network instability inflates all categories' times")
	return t
}

// Fig5 reproduces paper Figure 5: per-category participant energy per
// round with fixed parameters versus adaptive per-device parameters,
// normalized to the H category under fixed parameters. Adaptive numbers
// come from a warmed-up FedGPO controller in the realistic environment.
func Fig5(o Options) Table {
	s := o.apply(Realistic(workload.CNNMNIST()))
	rt := o.runtime()
	sums := rt.summaries([]cell{
		{s, staticContender(fl.Params{B: 8, E: 10, K: 20}, "")},
		{s, fedgpoWarmContender(s)},
	}, o.seeds())
	fixed, adaptive := sums[0], sums[1]

	// Per-round, per-category energy (total category energy over
	// counted rounds).
	t := Table{
		ID:     "fig5",
		Title:  "per-category energy: fixed vs adaptive parameters (normalized to H fixed)",
		Header: []string{"category", "fixed", "adaptive"},
	}
	base := fixed.EnergyByCategory[device.High]
	if base <= 0 {
		base = 1
	}
	for _, cat := range device.Categories() {
		t.AddRow(cat.String(),
			fmtRatio(fixed.EnergyByCategory[cat]/base),
			fmtRatio(adaptive.EnergyByCategory[cat]/base))
	}
	t.Notes = append(t.Notes,
		"paper expectation: adaptive parameters cut every category's energy by removing straggler wait")
	return t
}

// Fig6 reproduces paper Figure 6: convergence round, average training
// time per round, and global PPW of fixed versus adaptive parameters,
// normalized to fixed. Its two cells are identical to Fig5's, so under
// a shared runtime they are served from the run cache.
func Fig6(o Options) Table {
	s := o.apply(Realistic(workload.CNNMNIST()))
	rt := o.runtime()
	sums := rt.summaries([]cell{
		{s, staticContender(fl.Params{B: 8, E: 10, K: 20}, "")},
		{s, fedgpoWarmContender(s)},
	}, o.seeds())
	fixed, adaptive := sums[0], sums[1]
	t := Table{
		ID:     "fig6",
		Title:  "fixed vs adaptive parameters (normalized to fixed)",
		Header: []string{"metric", "fixed", "adaptive"},
	}
	t.AddRow("convergence round", "1.00x",
		fmtRatio(adaptive.MeanConvergenceRound/fixed.MeanConvergenceRound))
	t.AddRow("avg round time speedup", "1.00x",
		fmtRatio(fixed.MeanAvgRoundSec/adaptive.MeanAvgRoundSec))
	t.AddRow("global PPW", "1.00x", fmtRatio(adaptive.MeanPPW/fixed.MeanPPW))
	t.AddRow("final accuracy", fmtPct(100*fixed.MeanFinalAccuracy),
		fmtPct(100*adaptive.MeanFinalAccuracy))
	t.Notes = append(t.Notes,
		"paper expectation: adaptive improves avg round time (paper 2.3x) and PPW (paper 3.6x) while keeping convergence rounds similar")
	return t
}

// Fig7 reproduces paper Figure 7: global PPW across (B, E, K) settings
// with and without data heterogeneity. The table reports PPW normalized
// to the IID best and names the best setting in each regime — the paper
// observes the optimum shifting from (8,10,20) to (8,5,10) under
// non-IID data.
func Fig7(o Options) Table {
	w := workload.CNNMNIST()
	seeds := o.seeds()
	rt := o.runtime()
	grid := []fl.Params{}
	for _, e := range []int{5, 10, 15} {
		for _, k := range []int{5, 10, 20} {
			grid = append(grid, fl.Params{B: 8, E: e, K: k})
		}
	}
	t := Table{
		ID:     "fig7",
		Title:  "global PPW across (B,E,K) — IID vs non-IID (Dirichlet 0.1)",
		Header: []string{"regime", "(B,E,K)", "PPW (norm to regime best)"},
	}
	regimes := []struct {
		name string
		s    ScenarioSpec
	}{
		{"IID", o.apply(Ideal(w))},
		{"non-IID", o.apply(NonIIDScenario(w))},
	}
	var cells []cell
	for _, regime := range regimes {
		for _, p := range grid {
			cells = append(cells, cell{regime.s, staticContender(p, "")})
		}
	}
	sums := rt.summaries(cells, seeds)
	for ri, regime := range regimes {
		results := sums[ri*len(grid) : (ri+1)*len(grid)]
		best := 0.0
		bestIdx := 0
		for i := range grid {
			if results[i].MeanPPW > best {
				best, bestIdx = results[i].MeanPPW, i
			}
		}
		for i, p := range grid {
			t.AddRow(regime.name, p.String(), fmtRatio(results[i].MeanPPW/best))
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("%s best setting: %v", regime.name, grid[bestIdx]))
	}
	t.Notes = append(t.Notes,
		"paper expectation: non-IID degrades all settings and shifts the optimum toward smaller E and K (paper: (8,10,20) -> (8,5,10))")
	return t
}

