package exp

import (
	"fmt"
	"time"

	"fedgpo/internal/core"
	"fedgpo/internal/fl"
	"fedgpo/internal/runtime"
	"fedgpo/internal/stats"
	"fedgpo/internal/telemetry"
	"fedgpo/internal/workload"
)

// RewardConvergenceRound finds the round at which a reward trace
// settles: the first index from which the smoothed reward stays within
// tol of its final plateau for the rest of the trace. Returns -1 for
// traces that never settle.
func RewardConvergenceRound(history []float64, tol float64) int {
	if len(history) < 10 {
		return -1
	}
	// Smooth the trace. Eq. 1's no-improvement branch makes individual
	// rounds spike hard negative, so a slow EMA is needed to expose the
	// underlying plateau.
	ema := stats.NewEMA(0.08)
	smooth := make([]float64, len(history))
	for i, v := range history {
		smooth[i] = ema.Add(v)
	}
	plateau := stats.Mean(smooth[len(smooth)*3/4:])
	band := tol * (stats.Max(smooth) - stats.Min(smooth))
	if band <= 0 {
		return 1
	}
	for i := range smooth {
		settled := true
		for j := i; j < len(smooth); j++ {
			d := smooth[j] - plateau
			if d < 0 {
				d = -d
			}
			if d > band {
				settled = false
				break
			}
		}
		if settled {
			return i + 1
		}
	}
	return -1
}

// sec54Extra is the Kind-specific payload of the overhead-analysis
// job: the controller-internal measurements the run produced. The
// overhead durations are wall-clock; a cache hit replays the values
// measured when the cell first ran.
//
// The same wall-clock caveat extends to the pretrained-controller
// cache: a warm FedGPO cell's ControllerOverheadSec covers only the
// evaluation rounds of that cell. The Q-table warm-up's own Plan and
// Observe wall time is spent once, when the scenario's pretrain
// snapshot is first built, and is attributed to no cell at all — on a
// pretrain-cache hit (in-process or from -cachedir) the warm
// contender starts from restored tables without re-spending it. Treat
// every overhead row as "measured when this artifact was first
// computed", never as a property of the current rerun.
type sec54Extra struct {
	RewardHistory    []float64 `json:"rewardHistory"`
	IdentifyStatesNS int64     `json:"identifyStatesNS"`
	ChooseParamsNS   int64     `json:"chooseParamsNS"`
	CalcRewardNS     int64     `json:"calcRewardNS"`
	UpdateTablesNS   int64     `json:"updateTablesNS"`
	OverheadRounds   int       `json:"overheadRounds"`
	MemBytes         int       `json:"memBytes"`
}

// executeSec54 runs a "sec54" spec: the cold-controller probe run,
// full length, with the controller's internal phase timers and reward
// trace captured as the Extra payload. The *NS fields are wall-clock —
// the one place a spec's execution is not bit-reproducible (see the
// type comment above).
func executeSec54(r *Runtime, sp JobSpec) runtime.Result {
	col := telemetry.NewCollector()
	cfg := r.config(sp.Scenario, sp.Seed)
	cfg.StopAtConvergence = false
	cfg.Telemetry = col
	t0 := time.Now()
	ctrl := r.controller(sp.Scenario, sp.Contender).(*core.Controller)
	col.RecordPhase(telemetry.PhasePretrain, time.Since(t0))
	traced := r.traceTarget(sp, ctrl)
	res := runtime.Result{Sim: fl.Run(cfg, ctrl)}
	r.publishTrace(sp, traced)
	m := col.Snapshot()
	res.Telemetry = &m
	ov := ctrl.Overhead()
	res.SetExtra(sec54Extra{
		RewardHistory:    ctrl.RewardHistory(),
		IdentifyStatesNS: int64(ov.IdentifyStates),
		ChooseParamsNS:   int64(ov.ChooseParams),
		CalcRewardNS:     int64(ov.CalcReward),
		UpdateTablesNS:   int64(ov.UpdateTables),
		OverheadRounds:   ov.Rounds,
		MemBytes:         ctrl.MemoryBytes(),
	})
	return res
}

// Sec54 reproduces the paper's §5.4 convergence and overhead analysis:
// the round at which the Q-table reward converges (paper: 30–40), the
// pre- vs post-convergence energy-efficiency gap (paper: 24.2% below
// Fixed (Best) before convergence), the per-round controller runtime
// broken down by phase (paper: 499.6 µs total, 0.7% of round time), and
// the Q-table memory footprint (paper: 0.4 MB).
func Sec54(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	if o.MaxRounds == 0 {
		s.MaxRounds = 150
	}
	rt := o.runtime()
	// The contender is the cold FedGPO spec so the probe's cache
	// identity tracks any change to the cold-controller naming scheme;
	// the sec54 kind runs it full-length (no convergence stop) so the
	// reward trace covers the whole trajectory.
	sp := JobSpec{Kind: KindSec54, Scenario: s, Contender: fedgpoColdContender(), Seed: o.seeds()[0]}
	out := rt.runSpecs([]JobSpec{sp})[0]
	var ex sec54Extra
	if err := out.GetExtra(&ex); err != nil {
		panic("exp: sec54 payload: " + err.Error())
	}
	res := out.Sim

	t := Table{
		ID:     "sec54",
		Title:  "FedGPO convergence and overhead analysis (CNN-MNIST, realistic environment)",
		Header: []string{"quantity", "measured", "paper"},
	}
	convRound := RewardConvergenceRound(ex.RewardHistory, 0.25)
	t.AddRow("reward convergence round", fmt.Sprint(convRound), "30-40")

	// Pre- vs post-convergence per-round energy.
	if convRound > 0 && convRound < res.RoundsExecuted {
		var pre, post float64
		var nPre, nPost int
		for _, rec := range res.History {
			if rec.Round < convRound {
				pre += rec.EnergyJ
				nPre++
			} else {
				post += rec.EnergyJ
				nPost++
			}
		}
		if nPre > 0 && nPost > 0 {
			gap := (pre/float64(nPre))/(post/float64(nPost)) - 1
			t.AddRow("pre-convergence energy overhead", fmtPct(100*gap), "~24.2% lower efficiency")
		}
	}

	perRound := func(ns int64) string {
		return fmt.Sprintf("%.1f us", float64(ns)/1e9/float64(max(1, ex.OverheadRounds))*1e6)
	}
	t.AddRow("identify per-device states", perRound(ex.IdentifyStatesNS), "496.8 us")
	t.AddRow("choose global parameters", perRound(ex.ChooseParamsNS), "0.2 us")
	t.AddRow("calculate reward", perRound(ex.CalcRewardNS), "2.1 us")
	t.AddRow("update Q-tables", perRound(ex.UpdateTablesNS), "0.5 us")
	totalNS := ex.IdentifyStatesNS + ex.ChooseParamsNS + ex.CalcRewardNS + ex.UpdateTablesNS
	t.AddRow("total controller overhead", perRound(totalNS), "499.6 us")
	t.AddRow("overhead share of round time",
		fmtPct(100*float64(totalNS)/1e9/float64(max(1, ex.OverheadRounds))/res.AvgRoundSeconds), "0.7%")
	t.AddRow("Q-table memory", fmt.Sprintf("%.1f KB", float64(ex.MemBytes)/1024), "~400 KB (0.4 MB)")
	t.Notes = append(t.Notes,
		"overhead is wall-clock measured inside the controller; the simulator's round time is virtual, so the share-of-round-time row divides real microseconds by simulated seconds exactly as the paper divides measured microseconds by real round seconds",
		"cached reruns replay overhead values measured when the cell first ran; likewise warm FedGPO cells exclude the Q-table warm-up's wall time, which is spent once per scenario when the pretrain snapshot is built (see the pretrained-controller cache)")
	return t
}

