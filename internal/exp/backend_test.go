package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fedgpo/internal/fl"
	"fedgpo/internal/runtime"
	"fedgpo/internal/workload"
)

// buildWorker compiles the real fedgpo-worker binary for the
// cross-backend tests. The test environment always has the Go
// toolchain (it is running the tests).
func buildWorker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fedgpo-worker")
	out, err := exec.Command("go", "build", "-o", bin, "fedgpo/cmd/fedgpo-worker").CombinedOutput()
	if err != nil {
		t.Fatalf("building fedgpo-worker: %v\n%s", err, out)
	}
	return bin
}

// runRegistry renders every registry experiment under one runtime, in
// registry order.
func runRegistry(t *testing.T, rt *Runtime) map[string]Table {
	t.Helper()
	opts := registryOptions().WithRuntime(rt)
	tables := make(map[string]Table, len(Registry()))
	for _, e := range Registry() {
		tables[e.ID] = e.Run(opts)
	}
	return tables
}

// sec54WallClockRows names the Sec54 rows whose measured column is
// wall-clock time — the documented exception to cross-execution byte
// identity (two fresh runs measure different real microseconds; see
// sec54Extra). Everything else in the table is deterministic.
var sec54WallClockRows = map[string]bool{
	"identify per-device states":   true,
	"choose global parameters":     true,
	"calculate reward":             true,
	"update Q-tables":              true,
	"total controller overhead":    true,
	"overhead share of round time": true,
}

// renderMasked renders a table for fresh-run-vs-fresh-run comparison:
// identical bytes everywhere except Sec54's wall-clock cells, which
// are blanked on both sides.
func renderMasked(tab Table) string {
	if tab.ID == "sec54" {
		for i, row := range tab.Rows {
			if len(row) >= 2 && sec54WallClockRows[row[0]] {
				masked := append([]string(nil), row...)
				masked[1] = "<wall-clock>"
				tab.Rows[i] = masked
			}
		}
	}
	return tab.String()
}

// The acceptance contract of the scenario-matrix generator: an
// off-paper 2×2 matrix (partition alpha × network) runs to completion
// on both backends with identical results, and a warm -cachedir rerun
// performs zero simulations.
func TestScenarioMatrixAcrossBackendsWarmCache(t *testing.T) {
	worker := buildWorker(t)
	specs, err := ScenarioMatrix(workload.CNNMNIST(),
		"fleet=20;alpha=iid,0.5;net=stable,unstable;rounds=60")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("2x2 matrix produced %d specs", len(specs))
	}
	p := fl.Params{B: 8, E: 10, K: 20}
	run := func(rt *Runtime) string {
		res := SweepScenarios(Options{}.WithRuntime(rt), specs, p, 1)
		for i := range res {
			// Wall-clock, the documented fresh-vs-fresh exception (see
			// comparableResult).
			res[i].ControllerOverheadSec = 0
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	poolDir := t.TempDir()
	rtPool, err := NewRuntime(0, poolDir)
	if err != nil {
		t.Fatal(err)
	}
	pool := run(rtPool)
	if st := rtPool.Stats(); st.Runs != 4 {
		t.Fatalf("pool matrix run simulated %d cells, want 4", st.Runs)
	}

	procsDir := t.TempDir()
	procsCache, err := runtime.NewCache(procsDir)
	if err != nil {
		t.Fatal(err)
	}
	rtProcs := NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
		WorkerBin: worker, Procs: 2, CacheDir: procsDir,
	}), procsCache)
	if procs := run(rtProcs); procs != pool {
		t.Errorf("procs matrix results differ from pool:\n--- pool ---\n%s\n--- procs ---\n%s", pool, procs)
	}
	if st := rtProcs.Stats(); st.Runs != 4 {
		t.Errorf("fresh procs matrix run simulated %d cells, want 4", st.Runs)
	}

	rtWarm, err := NewRuntime(0, poolDir)
	if err != nil {
		t.Fatal(err)
	}
	if warm := run(rtWarm); warm != pool {
		t.Error("warm matrix rerun produced different results")
	}
	if st := rtWarm.Stats(); st.Runs != 0 || st.Hits != 4 {
		t.Errorf("warm matrix rerun stats = %+v, want 0 runs / 4 hits", st)
	}
}

// startWorkerPool serves a TCP worker pool in-process, executing jobs
// through its own exp.Runtime exactly like `fedgpo-worker -listen`
// does, and returns its address plus a shutdown func (graceful drain).
func startWorkerPool(t *testing.T, capacity int, cacheDir string) (string, func()) {
	t.Helper()
	wrt, err := NewRuntime(1, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- runtime.Serve(ctx, lis, runtime.ServeConfig{
			Capacity: capacity,
			CacheDir: cacheDir,
			Run: func(key string, spec json.RawMessage) runtime.Result {
				sp, err := DecodeJobSpec(spec)
				if err != nil {
					return runtime.Result{Key: key, Err: err.Error()}
				}
				job := wrt.Job(sp)
				if got := job.Key(); got != key {
					return runtime.Result{Key: key, Err: fmt.Sprintf("spec addresses %q, dispatched as %q", got, key)}
				}
				return wrt.RunJob(job)
			},
			SetInner: wrt.SetInnerParallel,
			Install:  wrt.InstallSnapshot,
		})
	}()
	return lis.Addr().String(), func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("worker pool drain: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("worker pool did not drain")
		}
	}
}

// The TCP transport's acceptance contract, at the table level: the
// same 2×2 matrix run against a localhost worker pool produces
// byte-identical results to the pool backend, a fresh run simulates
// every cell, and a warm -cachedir rerun simulates zero cells without
// any live worker pool at all — even though the worker pool cached
// under its own (different) directory, because the coordinator
// persists results from workers that do not share its cache.
func TestScenarioMatrixTCPBackendWarmCache(t *testing.T) {
	specs, err := ScenarioMatrix(workload.CNNMNIST(),
		"fleet=20;alpha=iid,0.5;net=stable,unstable;rounds=60")
	if err != nil {
		t.Fatal(err)
	}
	p := fl.Params{B: 8, E: 10, K: 20}
	run := func(rt *Runtime) string {
		res := SweepScenarios(Options{}.WithRuntime(rt), specs, p, 1)
		for i := range res {
			res[i].ControllerOverheadSec = 0
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	rtPool, err := NewRuntime(0, "")
	if err != nil {
		t.Fatal(err)
	}
	pool := run(rtPool)

	addr, shutdown := startWorkerPool(t, 2, t.TempDir())
	coordDir := t.TempDir()
	coordCache, err := runtime.NewCache(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	rtTCP := NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
		Workers: []string{addr}, CacheDir: coordDir,
	}), coordCache)
	if tcp := run(rtTCP); tcp != pool {
		t.Errorf("TCP matrix results differ from pool:\n--- pool ---\n%s\n--- tcp ---\n%s", pool, tcp)
	}
	if st := rtTCP.Stats(); st.Runs != 4 || st.Hits != 0 {
		t.Errorf("fresh TCP matrix run stats = %+v, want 4 runs / 0 hits", st)
	}
	if st := rtTCP.Stats(); len(st.Endpoints) != 1 || st.Endpoints[0].Dispatched != 4 {
		t.Errorf("endpoint stats = %+v, want 4 dispatched on the one TCP endpoint", st.Endpoints)
	}
	shutdown()

	// Warm rerun against the coordinator's cache with the worker pool
	// gone: hit-only, byte-identical.
	warmCache, err := runtime.NewCache(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	rtWarm := NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
		Workers: []string{addr}, CacheDir: coordDir,
	}), warmCache)
	if warm := run(rtWarm); warm != pool {
		t.Error("warm TCP rerun produced different results")
	}
	if st := rtWarm.Stats(); st.Runs != 0 || st.Hits != 4 {
		t.Errorf("warm TCP rerun stats = %+v, want 0 runs / 4 hits", st)
	}
}

// The acceptance contract of the pluggable-backend refactor, enforced
// registry-wide:
//
//  1. a fresh procs run produces byte-identical tables to a fresh pool
//     run (modulo Sec54's documented wall-clock cells — proc-count
//     invariance itself is covered by the runtime package's backend
//     tests at procs = 1, 2 and 5);
//  2. a warm -cachedir rerun on the procs backend performs zero
//     simulations and reproduces the pool run's bytes exactly, Sec54
//     included (cached replay) — without ever spawning a worker.
func TestProcsBackendMatchesPoolAcrossRegistry(t *testing.T) {
	t.Cleanup(func() { fixedBestCache = sync.Map{} })
	worker := buildWorker(t)

	// Fresh pool run, persisted to disk.
	poolDir := t.TempDir()
	fixedBestCache = sync.Map{}
	rtPool, err := NewRuntime(0, poolDir)
	if err != nil {
		t.Fatal(err)
	}
	poolTables := runRegistry(t, rtPool)
	if rtPool.Stats().Runs == 0 {
		t.Fatal("pool run simulated nothing")
	}

	// Warm procs rerun over the pool run's cache. The worker binary is
	// deliberately bogus: if any cell were dispatched instead of served
	// from cache, the run would fail loudly.
	fixedBestCache = sync.Map{}
	warmCache, err := runtime.NewCache(poolDir)
	if err != nil {
		t.Fatal(err)
	}
	rtWarm := NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
		WorkerBin: "/nonexistent-fedgpo-worker", Procs: 4, CacheDir: poolDir,
	}), warmCache)
	warmTables := runRegistry(t, rtWarm)
	if st := rtWarm.Stats(); st.Runs != 0 || st.Hits == 0 {
		t.Errorf("warm procs rerun stats = %+v, want zero runs and nonzero hits", st)
	}
	if warmups, _ := rtWarm.PretrainStats(); warmups != 0 {
		t.Errorf("warm procs rerun executed %d pretrain warm-ups, want 0", warmups)
	}
	for _, e := range Registry() {
		if warmTables[e.ID].String() != poolTables[e.ID].String() {
			t.Errorf("%s: warm procs rerun differs from the pool run", e.ID)
		}
	}

	// Fresh procs run against its own cache directory: every cell
	// actually executes inside worker subprocesses.
	procsDir := t.TempDir()
	fixedBestCache = sync.Map{}
	procsCache, err := runtime.NewCache(procsDir)
	if err != nil {
		t.Fatal(err)
	}
	rtProcs := NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
		WorkerBin: worker, Procs: 3, CacheDir: procsDir,
	}), procsCache)
	procsTables := runRegistry(t, rtProcs)
	if rtProcs.Stats().Runs == 0 {
		t.Fatal("fresh procs run simulated nothing")
	}
	for _, e := range Registry() {
		pool, procs := renderMasked(poolTables[e.ID]), renderMasked(procsTables[e.ID])
		if pool != procs {
			t.Errorf("%s: procs backend output differs from pool backend:\n--- pool ---\n%s--- procs ---\n%s",
				e.ID, pool, procs)
		}
	}
}

// The fleet-wide pretrain-reuse guarantee, end to end: a cold sweep of
// warm-FedGPO cells over S scenarios against a 2-endpoint fleet
// executes exactly S Q-table warm-ups across the whole fleet — the
// affinity router co-locates each scenario's cells on one pool, the
// per-process singleflight dedups within it, and any cell that still
// lands elsewhere receives the shipped snapshot instead of re-warming.
// The scheduling machinery must not leak into result bytes: every cell
// matches the in-process pool backend exactly.
func TestFleetWideExactlyOnePretrainPerScenario(t *testing.T) {
	w := workload.CNNMNIST()
	opts := Options{FleetSize: 20, MaxRounds: 60}
	scens := []ScenarioSpec{opts.apply(Ideal(w)), opts.apply(Realistic(w))}
	var specs []JobSpec
	for _, s := range scens {
		for _, seed := range []int64{1, 2, 3} {
			specs = append(specs, simSpec(s, fedgpoWarmContender(s), seed))
		}
	}

	a1, stop1 := startWorkerPool(t, 2, t.TempDir())
	defer stop1()
	a2, stop2 := startWorkerPool(t, 2, t.TempDir())
	defer stop2()
	memCache, err := runtime.NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
		Workers: []string{a1, a2},
	}), memCache)
	res := rt.RunSpecs(specs)
	for i, r := range res {
		if r.Err != "" {
			t.Fatalf("spec %d failed: %s", i, r.Err)
		}
	}

	m := rt.Metrics()
	if got, want := m.Counters.PretrainRuns, int64(len(scens)); got != want {
		t.Errorf("fleet executed %d pretrain warm-ups for %d scenarios, want exactly one per scenario",
			got, want)
	}
	var placed int64
	for _, ep := range m.Endpoints {
		placed += ep.AffinityHits + ep.AffinityMisses
	}
	if placed != int64(len(specs)) {
		t.Errorf("affinity router accounted for %d placements, want %d", placed, len(specs))
	}
	// Every scenario's snapshot came home with its builder's response:
	// the coordinator pooled it for pre-pushing and persisted it.
	for _, s := range scens {
		key := affinityKey(simSpec(s, fedgpoWarmContender(s), 1))
		if key == "" {
			t.Fatal("warm FedGPO spec has no affinity key")
		}
		var raw json.RawMessage
		if !memCache.Get(key, &raw) || len(raw) == 0 {
			t.Errorf("coordinator cache missing shipped pretrain snapshot %q", key)
		}
	}

	pool, err := NewRuntime(0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range pool.RunSpecs(specs) {
		a, b := res[i].Sim, pr.Sim
		a.ControllerOverheadSec, b.ControllerOverheadSec = 0, 0
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("spec %d: fleet result differs from pool backend:\n--- fleet ---\n%s\n--- pool ---\n%s",
				i, aj, bj)
		}
	}
}
