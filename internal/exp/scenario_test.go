package exp

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// The tentpole contract of the scenario refactor: every paper preset,
// expressed through the composable sub-specs, must materialize exactly
// the fl.Config the closure-era constructors built — same fleet, same
// partition draw, same channel and interference parameters, same
// deadline. Byte-identical tables follow from byte-identical configs.
func TestPresetSpecsMatchLegacyAssembly(t *testing.T) {
	w := workload.CNNMNIST()
	legacy := func(nonIID, intf, unstable bool, deadline float64) fl.Config {
		fleet := device.NewFleet(device.PaperComposition().Scale(200))
		var part data.Partition
		if nonIID {
			part = data.Dirichlet(len(fleet), w.NumClasses, w.SamplesPerDevice,
				data.PaperAlpha, stats.NewRNG(42))
		} else {
			part = data.IID(len(fleet), w.NumClasses, w.SamplesPerDevice)
		}
		ch := netsim.StableChannel()
		if unstable {
			ch = netsim.UnstableChannel()
		}
		im := interfere.None()
		if intf {
			im = interfere.Paper()
		}
		return fl.Config{
			Workload: w, Fleet: fleet, Partition: part, Channel: ch,
			Interference: im, MaxRounds: 400, DeadlineSec: deadline,
			AggregationOverheadSec: 30, Seed: 7, StopAtConvergence: true,
		}
	}
	autoDeadline := DeadlineSpec{Kind: DeadlineAuto}.SecondsFor(w)
	cases := []struct {
		spec ScenarioSpec
		want fl.Config
	}{
		{Ideal(w), legacy(false, false, false, 0)},
		{Realistic(w), legacy(false, true, true, autoDeadline)},
		{InterferenceOnly(w), legacy(false, true, false, autoDeadline)},
		{UnstableNetworkOnly(w), legacy(false, false, true, autoDeadline)},
		{NonIIDScenario(w), legacy(true, false, false, 0)},
		{RealisticNonIID(w), legacy(true, true, true, autoDeadline)},
	}
	for _, c := range cases {
		got := c.spec.Config(7)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: spec-built config diverges from the legacy assembly", c.spec.Name)
		}
	}
	if autoDeadline <= 0 {
		t.Error("auto deadline policy resolved to no deadline")
	}
}

// Every preset spec must survive a JSON round-trip losslessly, for
// every workload: same struct, same canonical key.
func TestPresetSpecJSONRoundTrip(t *testing.T) {
	for _, w := range workload.All() {
		for _, p := range Presets() {
			s := p.Build(w)
			b := EncodeScenario(s)
			got, err := DecodeScenarios(b)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, p.Name, err)
			}
			if len(got) != 1 || !reflect.DeepEqual(got[0], s) {
				t.Errorf("%s/%s: spec does not round-trip", w.Name, p.Name)
			}
			if got[0].cacheKey() != s.cacheKey() {
				t.Errorf("%s/%s: round-tripped key differs", w.Name, p.Name)
			}
		}
	}
	// An array file round-trips too.
	w := workload.CNNMNIST()
	arr, err := json.Marshal([]ScenarioSpec{Ideal(w), Realistic(w)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeScenarios(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Name != "realistic" {
		t.Errorf("array decode returned %d specs", len(got))
	}
}

// The guard contract of spec-hashed keys: two scenarios differing only
// in one sub-spec field must get distinct canonical keys even when
// they share a Name; and resolved-default equivalences (zero value vs
// explicit paper default) must share one.
func TestCacheKeyHashesFullScenarioSpec(t *testing.T) {
	w := workload.CNNMNIST()
	base := Realistic(w)
	base.Partition = PartitionSpec{Kind: PartitionDirichlet, Seed: 42}
	mutations := map[string]func(*ScenarioSpec){
		"fleet mix":      func(s *ScenarioSpec) { s.Fleet.Mix = device.FleetComposition{High: 100, Mid: 70, Low: 30} },
		"fleet size":     func(s *ScenarioSpec) { s.Fleet.Size = 120 },
		"alpha":          func(s *ScenarioSpec) { s.Partition.Alpha = 0.5 },
		"partition plan": func(s *ScenarioSpec) { s.Partition = PartitionSpec{} },
		"partition seed": func(s *ScenarioSpec) { s.Partition.Seed = 43 },
		"net std":        func(s *ScenarioSpec) { s.Network.StdMbps = 40 },
		"net kind":       func(s *ScenarioSpec) { s.Network = NetworkSpec{} },
		"intf fraction":  func(s *ScenarioSpec) { s.Interference.ActiveFraction = 0.9 },
		"intf profile":   func(s *ScenarioSpec) { s.Interference.Kind = interfere.HeavyGame().Name },
		"deadline":       func(s *ScenarioSpec) { s.Deadline = DeadlineSpec{Kind: DeadlineFixed, Seconds: 90} },
		"deadline knob":  func(s *ScenarioSpec) { s.Deadline.Margin = 2.0 },
		"rounds":         func(s *ScenarioSpec) { s.MaxRounds = 123 },
	}
	seen := map[string]string{base.cacheKey(): "base"}
	for label, mutate := range mutations {
		s := base
		mutate(&s)
		// Same display name on purpose: the key must still change.
		s.Name = base.Name
		k := s.cacheKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q on key %q", label, prev, k)
		}
		seen[k] = label
	}
	// Explicit paper defaults share the base key.
	eq := base
	eq.Partition.Alpha = data.PaperAlpha
	eq.Interference.ActiveFraction = interfere.Paper().ActiveFraction
	eq.Deadline.Margin = 1.35
	eq.Deadline.SlackSec = 15
	if eq.cacheKey() != base.cacheKey() {
		t.Errorf("explicit paper defaults should share the key:\n %q\n %q",
			eq.cacheKey(), base.cacheKey())
	}
}

// Sub-spec validation must reject malformed values at decode time.
func TestScenarioSpecValidation(t *testing.T) {
	w := workload.CNNMNIST()
	bad := map[string]ScenarioSpec{
		"bad partition kind": {Workload: w, Partition: PartitionSpec{Kind: "zipf"}},
		"negative alpha":     {Workload: w, Partition: PartitionSpec{Kind: PartitionDirichlet, Alpha: -1}},
		"bad network kind":   {Workload: w, Network: NetworkSpec{Kind: "5g"}},
		"bad intf kind":      {Workload: w, Interference: InterferenceSpec{Kind: "bitcoin-miner"}},
		"fraction over 1":    {Workload: w, Interference: InterferenceSpec{Kind: "web-browsing", ActiveFraction: 1.5}},
		"bad deadline kind":  {Workload: w, Deadline: DeadlineSpec{Kind: "soft"}},
		"negative deadline":  {Workload: w, Deadline: DeadlineSpec{Kind: DeadlineFixed, Seconds: -3}},
		"negative rounds":    {Workload: w, MaxRounds: -1},
		"empty fleet":        {Workload: w, Fleet: FleetSpec{Mix: device.FleetComposition{}, Size: -1}},
	}
	for label, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", label)
		}
		if _, err := DecodeJobSpec(EncodeJobSpec(JobSpec{
			Kind: KindSim, Scenario: s,
			Contender: staticContender(fl.Params{B: 8, E: 10, K: 20}, ""),
		})); err == nil {
			t.Errorf("%s: DecodeJobSpec should reject the malformed scenario", label)
		}
	}
	// A malformed workload is caught at decode time too, on both
	// decoders.
	if err := (ScenarioSpec{}).Validate(); err == nil {
		t.Error("zero workload should fail validation")
	}
	// Hand-authored scenario files fail loudly on misspelled fields
	// instead of silently simulating a default deployment.
	var loose map[string]any
	if err := json.Unmarshal(EncodeScenario(Ideal(w)), &loose); err != nil {
		t.Fatal(err)
	}
	loose["partitionn"] = map[string]any{"kind": "dirichlet"}
	typo, err := json.Marshal(loose)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeScenarios(typo); err == nil ||
		!strings.Contains(err.Error(), "partitionn") {
		t.Errorf("DecodeScenarios should reject the unknown field, got %v", err)
	}
}

// ScenarioMatrix must produce the full cross product in row-major
// order, name each combination by its axis assignments, and reject
// malformed axes.
func TestScenarioMatrix(t *testing.T) {
	w := workload.CNNMNIST()
	specs, err := ScenarioMatrix(w, "fleet=20,H2:M2:L4; alpha=iid,0.5; net=unstable")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("2x2x1 matrix produced %d specs", len(specs))
	}
	if specs[0].Name != "fleet=20/alpha=iid/net=unstable" {
		t.Errorf("first spec name = %q", specs[0].Name)
	}
	// Last axis varies fastest: specs[1] flips alpha, specs[2] flips fleet.
	if specs[1].Partition.Kind != PartitionDirichlet || specs[1].Partition.Alpha != 0.5 {
		t.Errorf("specs[1] partition = %+v", specs[1].Partition)
	}
	if specs[2].Fleet.Mix != (device.FleetComposition{High: 2, Mid: 2, Low: 4}) {
		t.Errorf("specs[2] fleet = %+v", specs[2].Fleet)
	}
	if specs[0].Fleet.Composition().Total() != 20 {
		t.Errorf("specs[0] fleet total = %d", specs[0].Fleet.Composition().Total())
	}
	for _, s := range specs {
		if s.Network.Kind != netsim.KindUnstable {
			t.Errorf("%s: net axis not applied", s.Name)
		}
	}
	// Distinct combinations must address distinct cells.
	keys := map[string]bool{}
	for _, s := range specs {
		keys[s.cacheKey()] = true
	}
	if len(keys) != len(specs) {
		t.Errorf("matrix specs share cache keys: %d distinct for %d specs", len(keys), len(specs))
	}

	more, err := ScenarioMatrix(w, "intf=none,web-browsing@0.25,heavy-game;deadline=none,auto,90;rounds=50")
	if err != nil {
		t.Fatal(err)
	}
	if len(more) != 9 {
		t.Fatalf("3x3x1 matrix produced %d specs", len(more))
	}
	if more[1].Deadline.Kind != DeadlineAuto || more[2].Deadline.Seconds != 90 {
		t.Errorf("deadline axis not applied: %+v %+v", more[1].Deadline, more[2].Deadline)
	}
	if more[3].Interference.ActiveFraction != 0.25 {
		t.Errorf("intf fraction not applied: %+v", more[3].Interference)
	}
	if more[0].MaxRounds != 50 {
		t.Errorf("rounds axis not applied: %d", more[0].MaxRounds)
	}

	for _, bad := range []string{
		"", "fleet", "fleet=", "fleet=0", "fleet=H1:M1", "bogus=1",
		"alpha=-0.5", "net=5g", "intf=bogus", "intf=web-browsing@2",
		"deadline=-4", "rounds=0", "fleet=20;fleet=30", "alpha=iid,,0.5",
	} {
		if _, err := ScenarioMatrix(w, bad); err == nil {
			t.Errorf("matrix %q should fail to parse", bad)
		}
	}
}

// The -list-scenarios data source: every preset must be listed, build
// a valid spec for every workload, and resolve by name.
func TestPresetsCoverScenarios(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Presets() {
		names[p.Name] = true
		for _, w := range workload.All() {
			s := p.Build(w)
			if err := s.Validate(); err != nil {
				t.Errorf("%s/%s: %v", p.Name, w.Name, err)
			}
			if s.Name != p.Name {
				t.Errorf("preset %q builds scenario named %q", p.Name, s.Name)
			}
		}
		got, err := PresetByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("PresetByName(%q) = %v, %v", p.Name, got.Name, err)
		}
	}
	for _, want := range []string{"ideal", "realistic", "interference",
		"unstable-network", "non-iid", "realistic-non-iid"} {
		if !names[want] {
			t.Errorf("preset %q missing", want)
		}
	}
	if _, err := PresetByName("bogus"); err == nil ||
		!strings.Contains(err.Error(), "valid:") {
		t.Errorf("PresetByName(bogus) error = %v", err)
	}
}

// The adaptive inner/outer budget split: few large cells lend the idle
// workers to intra-round fan-out, saturated batches keep one shared
// helper, degenerate shapes stay serial.
func TestAdaptiveInnerBudget(t *testing.T) {
	cases := []struct{ cells, workers, want int }{
		{1, 8, 7}, {2, 8, 6}, {7, 8, 1}, {8, 8, 1}, {100, 8, 1},
		{1, 1, 0}, {0, 8, 0}, {5, 1, 0},
	}
	for _, c := range cases {
		if got := adaptiveInnerBudget(c.cells, c.workers); got != c.want {
			t.Errorf("adaptiveInnerBudget(%d, %d) = %d, want %d",
				c.cells, c.workers, got, c.want)
		}
	}
	// The auto mode swaps the budget per batch without changing results
	// (byte-identity for any budget is covered by the runtime tests).
	rt, err := NewRuntime(4, "")
	if err != nil {
		t.Fatal(err)
	}
	rt.SetInnerParallel(-1)
	o := Tiny().WithRuntime(rt)
	want := Fig6(Tiny())
	if got := Fig6(o); got.String() != want.String() {
		t.Error("adaptive inner budget changed Fig6's bytes")
	}
	if rt.InnerParallel() != 2 {
		t.Errorf("auto mode derived budget %d for Fig6's 2-miss batch on 4 workers; want 2",
			rt.InnerParallel())
	}
	// The budget tracks dispatched misses, not nominal batch size: a
	// mostly-warm batch whose single fresh cell is the only real work
	// gets the full fan-out.
	s := Tiny().apply(Ideal(workload.CNNMNIST()))
	SweepStatic(o, s, []fl.Params{{B: 2, E: 5, K: 5}}, 1)
	if rt.InnerParallel() != 3 {
		t.Errorf("auto mode derived budget %d for a 1-miss batch on 4 workers; want 3",
			rt.InnerParallel())
	}
}
