package exp

import (
	"encoding/json"
	"strings"
	"testing"

	"fedgpo/internal/core"
	"fedgpo/internal/fl"
	"fedgpo/internal/runtime"
	"fedgpo/internal/telemetry"
	"fedgpo/internal/workload"
)

// telemetryScenario is the small deployment the telemetry tests run:
// one static cell plus one FedGPO (cold) cell — the traceable
// contender — at a single seed.
func telemetryScenario() ScenarioSpec {
	s := Ideal(workload.CNNMNIST())
	s.Fleet.Size = 20
	s.MaxRounds = 60
	return s
}

func telemetrySpecs() []JobSpec {
	s := telemetryScenario()
	return []JobSpec{
		simSpec(s, staticContender(fl.Params{B: 8, E: 10, K: 20}, ""), 1),
		simSpec(s, fedgpoColdContender(), 1),
	}
}

// telemetryRun executes the telemetry spec batch and renders the
// results for byte comparison, zeroing the one documented wall-clock
// field (ControllerOverheadSec — tracing spends real time inside the
// timed controller phases, so it is excluded from identity exactly as
// the cross-backend tests exclude it).
func telemetryRun(t *testing.T, rt *Runtime) string {
	t.Helper()
	results := rt.runSpecs(telemetrySpecs())
	sims := make([]fl.Result, len(results))
	for i, res := range results {
		sims[i] = res.Sim
		sims[i].ControllerOverheadSec = 0
	}
	b, err := json.Marshal(sims)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Tracing and metrics must never change the job's canonical key: the
// traced and untraced encodings of the same cell address one cache
// cell, while the trace artifact lives under its own versioned key.
func TestTraceDoesNotChangeCanonicalKey(t *testing.T) {
	sp := telemetrySpecs()[1]
	plain := sp.Key()
	sp.Trace = telemetry.TraceDecisions
	if traced := sp.Key(); traced != plain {
		t.Errorf("trace level changed the canonical key:\nuntraced %q\ntraced   %q", plain, traced)
	}
	tk := traceKey(sp)
	if !strings.HasPrefix(tk, "v3|trace|decisions|") {
		t.Errorf("trace key %q does not use the versioned trace scheme", tk)
	}
	if tk == plain {
		t.Error("trace artifact key collides with the result key")
	}
}

// The tentpole's determinism guarantee, across every backend: a run
// with decision tracing and telemetry enabled produces byte-identical
// simulation results to an uninstrumented pool run — on the pool
// backend, on worker subprocesses, and over the localhost TCP
// transport (where the trace level rides the wire spec).
func TestTracedRunsAreByteIdenticalAcrossBackends(t *testing.T) {
	baseRT, err := NewRuntime(0, "")
	if err != nil {
		t.Fatal(err)
	}
	base := telemetryRun(t, baseRT)

	// Pool backend, tracing on, disk cache.
	poolDir := t.TempDir()
	rtPool, err := NewRuntime(0, poolDir)
	if err != nil {
		t.Fatal(err)
	}
	rtPool.SetTraceLevel(telemetry.TraceDecisions)
	if got := telemetryRun(t, rtPool); got != base {
		t.Errorf("traced pool run differs from untraced run:\n--- untraced ---\n%s\n--- traced ---\n%s", base, got)
	}

	// The traced FedGPO cell published its decision trace as a
	// spec-addressed artifact; the static cell (untraceable) did not.
	fedgpo := telemetrySpecs()[1]
	fedgpo.Trace = telemetry.TraceDecisions
	var trace []core.RoundTrace
	if !rtPool.cache.Get(traceKey(fedgpo), &trace) || len(trace) == 0 {
		t.Fatalf("traced run published no decision trace under %q", traceKey(fedgpo))
	}
	for _, rt := range trace {
		if len(rt.K.Allowed) == 0 {
			t.Errorf("round %d trace has an empty masked action set", rt.Round)
		}
	}
	static := telemetrySpecs()[0]
	static.Trace = telemetry.TraceDecisions
	var none json.RawMessage
	if rtPool.cache.Get(traceKey(static), &none) {
		t.Error("untraceable static cell published a trace artifact")
	}

	// Worker subprocesses, tracing on.
	worker := buildWorker(t)
	procsDir := t.TempDir()
	procsCache, err := runtime.NewCache(procsDir)
	if err != nil {
		t.Fatal(err)
	}
	rtProcs := NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
		WorkerBin: worker, Procs: 2, CacheDir: procsDir,
	}), procsCache)
	rtProcs.SetTraceLevel(telemetry.TraceDecisions)
	if got := telemetryRun(t, rtProcs); got != base {
		t.Errorf("traced procs run differs from untraced pool run:\n--- pool ---\n%s\n--- procs ---\n%s", base, got)
	}
	// The workers share the coordinator's cache directory, so the trace
	// artifact they published is visible here.
	var procsTrace []core.RoundTrace
	if !rtProcs.cache.Get(traceKey(fedgpo), &procsTrace) || len(procsTrace) == 0 {
		t.Error("traced procs run published no decision trace in the shared cache")
	}

	// Localhost TCP worker pool, tracing on. The coordinator stamps the
	// trace level onto the wire spec; the worker's own trace level is
	// unset, so any trace recorded proves the request crossed the wire.
	workerDir := t.TempDir()
	addr, shutdown := startWorkerPool(t, 2, workerDir)
	coordCache, err := runtime.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rtTCP := NewRuntimeWithBackend(runtime.NewProcBackend(runtime.ProcConfig{
		Workers: []string{addr}, CacheDir: workerDir,
	}), coordCache)
	rtTCP.SetTraceLevel(telemetry.TraceDecisions)
	if got := telemetryRun(t, rtTCP); got != base {
		t.Errorf("traced TCP run differs from untraced pool run:\n--- pool ---\n%s\n--- tcp ---\n%s", base, got)
	}
	shutdown()
	workerCache, err := runtime.NewCache(workerDir)
	if err != nil {
		t.Fatal(err)
	}
	var tcpTrace []core.RoundTrace
	if !workerCache.Get(traceKey(fedgpo), &tcpTrace) || len(tcpTrace) == 0 {
		t.Error("traced TCP run published no decision trace in the worker's cache")
	}

	// Worker-side telemetry crossed the wire: the coordinator's metrics
	// report the simulation phases its workers timed, and its job-level
	// counters reconcile with the executor stats.
	m := rtTCP.Metrics()
	if m.Phases[telemetry.PhaseRounds].Count == 0 {
		t.Error("TCP coordinator metrics carry no worker-side round timings")
	}
	st := rtTCP.Stats()
	if m.Counters.SimsExecuted != int64(st.Runs) || m.Counters.CacheHits != int64(st.Hits) {
		t.Errorf("TCP metrics counters (sims=%d hits=%d) do not reconcile with stats %+v",
			m.Counters.SimsExecuted, m.Counters.CacheHits, st)
	}
	if len(m.Endpoints) != 1 || m.Endpoints[0].Dispatched != int64(st.Endpoints[0].Dispatched) {
		t.Errorf("metrics endpoints %+v do not mirror executor endpoints %+v", m.Endpoints, st.Endpoints)
	}
	if m.Endpoints[0].Latency.Count == 0 {
		t.Error("TCP dispatch recorded no latency observations")
	}
}

// The trace-cost contract: tracing a cached cell costs exactly one
// re-run (ForceRun captures the trace while republishing byte-identical
// results), and re-tracing an already-traced cell costs zero
// simulations.
func TestTraceReplayCostsOneRunThenZero(t *testing.T) {
	dir := t.TempDir()

	// Untraced cold run fills the result cache.
	rt1, err := NewRuntime(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	base := telemetryRun(t, rt1)
	if st := rt1.Stats(); st.Runs != 2 {
		t.Fatalf("cold run simulated %d cells, want 2", st.Runs)
	}

	// First traced rerun: the traceable FedGPO cell re-executes once to
	// capture its trace; the static cell stays a cache hit.
	rt2, err := NewRuntime(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	rt2.SetTraceLevel(telemetry.TraceDecisions)
	if got := telemetryRun(t, rt2); got != base {
		t.Error("trace-capturing rerun changed the results")
	}
	if st := rt2.Stats(); st.Runs != 1 || st.Hits != 1 {
		t.Errorf("trace-capturing rerun stats = %+v, want 1 run (FedGPO re-trace) / 1 hit (static)", st)
	}

	// Second traced rerun: the artifact exists, so tracing costs zero.
	rt3, err := NewRuntime(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	rt3.SetTraceLevel(telemetry.TraceDecisions)
	if got := telemetryRun(t, rt3); got != base {
		t.Error("warm traced rerun changed the results")
	}
	if st := rt3.Stats(); st.Runs != 0 || st.Hits != 2 {
		t.Errorf("warm traced rerun stats = %+v, want 0 runs / 2 hits", st)
	}
	if m := rt3.Metrics(); m.Counters.SimsExecuted != 0 || m.Counters.CacheHits != 2 {
		t.Errorf("warm traced rerun metrics counters = %+v, want 0 sims / 2 hits", m.Counters)
	}
}

// Metrics reconcile with the executor by construction, and the phase
// clocks cover the instrumented stages: pretrain (controller build),
// rounds and merge (simulator), cache write (disk persistence).
func TestMetricsReconcileAndCoverPhases(t *testing.T) {
	rt, err := NewRuntime(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	telemetryRun(t, rt)
	m, st := rt.Metrics(), rt.Stats()
	if m.Counters.SimsExecuted != int64(st.Runs) {
		t.Errorf("SimsExecuted = %d, stats Runs = %d", m.Counters.SimsExecuted, st.Runs)
	}
	if m.Counters.CacheHits != int64(st.Hits) {
		t.Errorf("CacheHits = %d, stats Hits = %d", m.Counters.CacheHits, st.Hits)
	}
	for _, phase := range []string{telemetry.PhasePretrain, telemetry.PhaseRounds, telemetry.PhaseMerge, telemetry.PhaseCacheWrite} {
		if m.Phases[phase].Count == 0 {
			t.Errorf("phase %q recorded no observations", phase)
		}
	}
	if m.Counters.CacheMisses == 0 {
		t.Error("cold run recorded no cache misses")
	}
	if s := m.Summary(); !strings.Contains(s, "sims executed") {
		t.Errorf("metrics summary %q missing the headline counters", s)
	}
	// The snapshot is JSON-stable: two encodings are byte-identical.
	a, err := json.Marshal(rt.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rt.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("metrics snapshot JSON is not deterministic")
	}
}

// Provenance marks each result with whether its wall-clock fields were
// measured by this run or replayed from the cache — without ever
// entering the cache bytes themselves.
func TestProvenanceMarksMeasuredVersusReplayed(t *testing.T) {
	dir := t.TempDir()
	rt1, err := NewRuntime(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := rt1.runSpecs(telemetrySpecs())
	for _, res := range cold {
		if res.Provenance != runtime.ProvenanceMeasured {
			t.Errorf("cold result %q provenance = %q, want %q", res.Key, res.Provenance, runtime.ProvenanceMeasured)
		}
	}
	rt2, err := NewRuntime(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := rt2.runSpecs(telemetrySpecs())
	for _, res := range warm {
		if res.Provenance != runtime.ProvenanceReplayed {
			t.Errorf("warm result %q provenance = %q, want %q", res.Key, res.Provenance, runtime.ProvenanceReplayed)
		}
	}
	// The tag is in-memory only: cached bytes round-trip without it, so
	// cold and warm cache entries stay byte-identical.
	var raw map[string]json.RawMessage
	if !rt2.cache.Get(telemetrySpecs()[0].Key(), &raw) {
		t.Fatal("cached cell missing after warm rerun")
	}
	if _, ok := raw["provenance"]; ok {
		t.Error("provenance tag leaked into the cache bytes")
	}
}
