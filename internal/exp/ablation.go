package exp

import (
	"fmt"

	"fedgpo/internal/core"
	"fedgpo/internal/runtime"
	"fedgpo/internal/workload"
)

// AblationEpsilon reproduces the paper's footnote-3 sensitivity study:
// exploration probability ϵ ∈ {0.1, 0.5, 0.9}. High ϵ keeps choosing
// random parameters, hurting both convergence and energy.
func AblationEpsilon(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	t := Table{
		ID:     "abl-eps",
		Title:  "FedGPO sensitivity to exploration probability ϵ (paper footnote 3)",
		Header: []string{"epsilon", "PPW (norm to eps=0.1)", "conv round", "accuracy"},
	}
	epsilons := []float64{0.1, 0.5, 0.9}
	rt := o.runtime()
	cells := make([]cell, len(epsilons))
	for i, eps := range epsilons {
		eps := eps
		cells[i] = cell{s, fedgpoVariantContender(s, fmt.Sprintf("FedGPO eps=%.1f", eps),
			func(c *core.Config) {
				c.RL.Epsilon = eps
				// The sensitivity question is about exploration during
				// operation, so the freeze is disabled.
				c.FreezeAfterRounds = 0
			})}
	}
	sums := rt.summaries(cells, o.seeds())
	base := sums[0].MeanPPW
	for i, eps := range epsilons {
		sum := sums[i]
		t.AddRow(fmt.Sprintf("%.1f", eps), fmtRatio(sum.MeanPPW/base),
			fmt.Sprintf("%.0f", sum.MeanConvergenceRound),
			fmtPct(100*sum.MeanFinalAccuracy))
	}
	t.Notes = append(t.Notes, "paper expectation: eps=0.1 best; larger eps degrades accuracy and convergence overhead")
	return t
}

// AblationGammaMu reproduces the paper's §4.1 hyperparameter
// sensitivity analysis over the Q-learning rate γ and discount µ
// (values {0.1, 0.5, 0.9} each, one axis at a time).
func AblationGammaMu(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	t := Table{
		ID:     "abl-gm",
		Title:  "FedGPO sensitivity to learning rate γ and discount µ (paper §4.1)",
		Header: []string{"gamma", "mu", "PPW (norm to default)", "conv round"},
	}
	def := core.DefaultConfig()
	gammas := []float64{0.1, 0.5, 0.9}
	mus := []float64{0.5, 0.9}

	rt := o.runtime()
	cells := []cell{{s, fedgpoVariantContender(s, "FedGPO", nil)}}
	for _, gamma := range gammas {
		g := gamma
		cells = append(cells, cell{s, fedgpoVariantContender(s, fmt.Sprintf("FedGPO gamma=%.1f", g),
			func(c *core.Config) { c.RL.LearningRate = g })})
	}
	for _, mu := range mus {
		m := mu
		cells = append(cells, cell{s, fedgpoVariantContender(s, fmt.Sprintf("FedGPO mu=%.1f", m),
			func(c *core.Config) { c.RL.Discount = m })})
	}
	sums := rt.summaries(cells, o.seeds())

	base := sums[0]
	t.AddRow(fmt.Sprintf("%.2f (default)", def.RL.LearningRate),
		fmt.Sprintf("%.1f", def.RL.Discount), "1.00x",
		fmt.Sprintf("%.0f", base.MeanConvergenceRound))
	for i, g := range gammas {
		sum := sums[1+i]
		t.AddRow(fmt.Sprintf("%.1f", g), fmt.Sprintf("%.1f", def.RL.Discount),
			fmtRatio(sum.MeanPPW/base.MeanPPW), fmt.Sprintf("%.0f", sum.MeanConvergenceRound))
	}
	for i, m := range mus {
		sum := sums[1+len(gammas)+i]
		t.AddRow(fmt.Sprintf("%.2f", def.RL.LearningRate), fmt.Sprintf("%.1f", m),
			fmtRatio(sum.MeanPPW/base.MeanPPW), fmt.Sprintf("%.0f", sum.MeanConvergenceRound))
	}
	t.Notes = append(t.Notes,
		"paper finds high γ / low µ best on its testbed; this simulator's reward is noisier across categories, so its sensitivity analysis selects a lower γ (see core.DefaultConfig)")
	return t
}

// qmemExtra is the Kind-specific payload of "qmem" jobs: the
// controller's Q-table memory footprint, measured after warm-up as
// the paper's footnote-2 variant reports it.
type qmemExtra struct {
	MemBytes int `json:"memBytes"`
}

// executeQMem runs a "qmem" spec: it materializes the warm controller
// (restoring its Q-tables from the pretrained-controller cache) and
// measures the table footprint — kept separate from the "sim" cells so
// those stay shareable with every other figure touching the same
// deployment.
func executeQMem(r *Runtime, sp JobSpec) runtime.Result {
	var res runtime.Result
	ctrl := r.controller(sp.Scenario, sp.Contender).(*core.Controller)
	res.SetExtra(qmemExtra{MemBytes: ctrl.MemoryBytes()})
	return res
}

// AblationTables reproduces the paper's footnote-2 variant: per-device
// Q-tables instead of tables shared across a performance category.
// Sharing pools experience (faster learning); per-device tables
// specialize (paper: +2.7% prediction accuracy, −12.2% convergence
// overhead trade-off).
func AblationTables(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	rt := o.runtime()
	t := Table{
		ID:     "abl-tables",
		Title:  "shared per-category vs per-device Q-tables (paper footnote 2)",
		Header: []string{"variant", "PPW (norm to shared)", "conv round", "Q-table memory"},
	}
	variants := []struct {
		name      string
		perDevice bool
	}{{"shared per-category", false}, {"per-device", true}}

	cells := make([]cell, len(variants))
	memSpecs := make([]JobSpec, len(variants))
	for i, v := range variants {
		perDev := v.perDevice
		c := fedgpoVariantContender(s, v.name, func(cc *core.Config) { cc.PerDeviceTables = perDev })
		cells[i] = cell{s, c}
		memSpecs[i] = JobSpec{Kind: KindQMem, Scenario: s, Contender: c}
	}
	// The shared-variant config equals the default, so its sim cells
	// are the same cache entries Fig5/Fig6/Fig9 use.
	sums := rt.summaries(cells, o.seeds())
	memResults := rt.runSpecs(memSpecs)

	base := sums[0].MeanPPW
	for i, v := range variants {
		var ex qmemExtra
		if err := memResults[i].GetExtra(&ex); err != nil {
			panic("exp: qmem payload: " + err.Error())
		}
		t.AddRow(v.name, fmtRatio(sums[i].MeanPPW/base),
			fmt.Sprintf("%.0f", sums[i].MeanConvergenceRound),
			fmt.Sprintf("%.1f KB", float64(ex.MemBytes)/1024))
	}
	return t
}

// AblationBeta sweeps the Eq. 1 reward weight β, the knob DESIGN.md
// calls out: too small and the policy chases cheap parameters at the
// cost of convergence; too large and energy stops mattering.
func AblationBeta(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	t := Table{
		ID:     "abl-beta",
		Title:  "FedGPO sensitivity to reward weight β (improvement term)",
		Header: []string{"beta", "PPW (norm to default)", "conv round", "accuracy"},
	}
	def := core.DefaultConfig().Reward.Beta
	betas := []float64{5, 100}
	rt := o.runtime()
	cells := []cell{{s, fedgpoVariantContender(s, "FedGPO", nil)}}
	for _, beta := range betas {
		b := beta
		cells = append(cells, cell{s, fedgpoVariantContender(s, fmt.Sprintf("FedGPO beta=%.0f", b),
			func(c *core.Config) { c.Reward.Beta = b })})
	}
	sums := rt.summaries(cells, o.seeds())

	base := sums[0]
	t.AddRow(fmt.Sprintf("%.0f (default)", def), "1.00x",
		fmt.Sprintf("%.0f", base.MeanConvergenceRound), fmtPct(100*base.MeanFinalAccuracy))
	for i, b := range betas {
		sum := sums[1+i]
		t.AddRow(fmt.Sprintf("%.0f", b), fmtRatio(sum.MeanPPW/base.MeanPPW),
			fmt.Sprintf("%.0f", sum.MeanConvergenceRound), fmtPct(100*sum.MeanFinalAccuracy))
	}
	return t
}

// AblationColdStart quantifies the learning-phase cost the paper's
// §5.4 describes: cold FedGPO (learning inside the measured run) versus
// warm-started FedGPO (Q-tables pre-trained), against Fixed (Best).
func AblationColdStart(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	best := FixedBestParams(w, o)
	t := Table{
		ID:     "abl-cold",
		Title:  "learning-phase cost: cold vs warm-started FedGPO (CNN-MNIST, realistic)",
		Header: []string{"controller", "PPW (norm to Fixed)", "conv round", "accuracy"},
	}
	rt := o.runtime()
	sums := rt.summaries([]cell{
		{s, staticContender(best, "Fixed (Best)")},
		{s, fedgpoColdContender()},
		{s, fedgpoWarmContender(s)},
	}, o.seeds())

	fixed := sums[0]
	t.AddRow("Fixed (Best) "+best.String(), "1.00x",
		fmt.Sprintf("%.0f", fixed.MeanConvergenceRound), fmtPct(100*fixed.MeanFinalAccuracy))
	for i, name := range []string{"FedGPO (cold)", "FedGPO (warm)"} {
		sum := sums[1+i]
		t.AddRow(name, fmtRatio(sum.MeanPPW/fixed.MeanPPW),
			fmt.Sprintf("%.0f", sum.MeanConvergenceRound), fmtPct(100*sum.MeanFinalAccuracy))
	}
	t.Notes = append(t.Notes,
		"paper §5.4: FedGPO runs ~24% below Fixed (Best) efficiency during the learning phase and overtakes after the Q-tables converge")
	return t
}
