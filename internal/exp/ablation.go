package exp

import (
	"fmt"

	"fedgpo/internal/core"
	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

// fedgpoVariantFactory builds warm-started FedGPO controllers with a
// customized configuration.
func fedgpoVariantFactory(s Scenario, mutate func(*core.Config)) fl.ControllerFactory {
	return func() fl.Controller {
		cfg := core.DefaultConfig()
		mutate(&cfg)
		warmCfg := s.Config(warmupSeed)
		warmCfg.MaxRounds = minInt(150, warmCfg.MaxRounds)
		return core.Pretrained(cfg, warmCfg)
	}
}

// AblationEpsilon reproduces the paper's footnote-3 sensitivity study:
// exploration probability ϵ ∈ {0.1, 0.5, 0.9}. High ϵ keeps choosing
// random parameters, hurting both convergence and energy.
func AblationEpsilon(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	t := Table{
		ID:     "abl-eps",
		Title:  "FedGPO sensitivity to exploration probability ϵ (paper footnote 3)",
		Header: []string{"epsilon", "PPW (norm to eps=0.1)", "conv round", "accuracy"},
	}
	var base float64
	for i, eps := range []float64{0.1, 0.5, 0.9} {
		sum := fl.RunSeeds(s.Config(0), fedgpoVariantFactory(s, func(c *core.Config) {
			c.RL.Epsilon = eps
			// The sensitivity question is about exploration during
			// operation, so the freeze is disabled.
			c.FreezeAfterRounds = 0
		}), o.seeds())
		if i == 0 {
			base = sum.MeanPPW
		}
		t.AddRow(fmt.Sprintf("%.1f", eps), fmtRatio(sum.MeanPPW/base),
			fmt.Sprintf("%.0f", sum.MeanConvergenceRound),
			fmtPct(100*sum.MeanFinalAccuracy))
	}
	t.Notes = append(t.Notes, "paper expectation: eps=0.1 best; larger eps degrades accuracy and convergence overhead")
	return t
}

// AblationGammaMu reproduces the paper's §4.1 hyperparameter
// sensitivity analysis over the Q-learning rate γ and discount µ
// (values {0.1, 0.5, 0.9} each, one axis at a time).
func AblationGammaMu(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	t := Table{
		ID:     "abl-gm",
		Title:  "FedGPO sensitivity to learning rate γ and discount µ (paper §4.1)",
		Header: []string{"gamma", "mu", "PPW (norm to default)", "conv round"},
	}
	def := core.DefaultConfig()
	base := fl.RunSeeds(s.Config(0), fedgpoVariantFactory(s, func(*core.Config) {}), o.seeds())
	t.AddRow(fmt.Sprintf("%.2f (default)", def.RL.LearningRate),
		fmt.Sprintf("%.1f", def.RL.Discount), "1.00x",
		fmt.Sprintf("%.0f", base.MeanConvergenceRound))
	for _, gamma := range []float64{0.1, 0.5, 0.9} {
		g := gamma
		sum := fl.RunSeeds(s.Config(0), fedgpoVariantFactory(s, func(c *core.Config) {
			c.RL.LearningRate = g
		}), o.seeds())
		t.AddRow(fmt.Sprintf("%.1f", g), fmt.Sprintf("%.1f", def.RL.Discount),
			fmtRatio(sum.MeanPPW/base.MeanPPW), fmt.Sprintf("%.0f", sum.MeanConvergenceRound))
	}
	for _, mu := range []float64{0.5, 0.9} {
		m := mu
		sum := fl.RunSeeds(s.Config(0), fedgpoVariantFactory(s, func(c *core.Config) {
			c.RL.Discount = m
		}), o.seeds())
		t.AddRow(fmt.Sprintf("%.2f", def.RL.LearningRate), fmt.Sprintf("%.1f", m),
			fmtRatio(sum.MeanPPW/base.MeanPPW), fmt.Sprintf("%.0f", sum.MeanConvergenceRound))
	}
	t.Notes = append(t.Notes,
		"paper finds high γ / low µ best on its testbed; this simulator's reward is noisier across categories, so its sensitivity analysis selects a lower γ (see core.DefaultConfig)")
	return t
}

// AblationTables reproduces the paper's footnote-2 variant: per-device
// Q-tables instead of tables shared across a performance category.
// Sharing pools experience (faster learning); per-device tables
// specialize (paper: +2.7% prediction accuracy, −12.2% convergence
// overhead trade-off).
func AblationTables(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	t := Table{
		ID:     "abl-tables",
		Title:  "shared per-category vs per-device Q-tables (paper footnote 2)",
		Header: []string{"variant", "PPW (norm to shared)", "conv round", "Q-table memory"},
	}
	type variant struct {
		name      string
		perDevice bool
	}
	var base float64
	for i, v := range []variant{{"shared per-category", false}, {"per-device", true}} {
		perDev := v.perDevice
		var memBytes int
		factory := func() fl.Controller {
			cfg := core.DefaultConfig()
			cfg.PerDeviceTables = perDev
			warmCfg := s.Config(warmupSeed)
			warmCfg.MaxRounds = minInt(150, warmCfg.MaxRounds)
			c := core.Pretrained(cfg, warmCfg)
			memBytes = c.MemoryBytes()
			return c
		}
		sum := fl.RunSeeds(s.Config(0), factory, o.seeds())
		if i == 0 {
			base = sum.MeanPPW
		}
		t.AddRow(v.name, fmtRatio(sum.MeanPPW/base),
			fmt.Sprintf("%.0f", sum.MeanConvergenceRound),
			fmt.Sprintf("%.1f KB", float64(memBytes)/1024))
	}
	return t
}

// AblationBeta sweeps the Eq. 1 reward weight β, the knob DESIGN.md
// calls out: too small and the policy chases cheap parameters at the
// cost of convergence; too large and energy stops mattering.
func AblationBeta(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	t := Table{
		ID:     "abl-beta",
		Title:  "FedGPO sensitivity to reward weight β (improvement term)",
		Header: []string{"beta", "PPW (norm to default)", "conv round", "accuracy"},
	}
	def := core.DefaultConfig().Reward.Beta
	base := fl.RunSeeds(s.Config(0), fedgpoVariantFactory(s, func(*core.Config) {}), o.seeds())
	t.AddRow(fmt.Sprintf("%.0f (default)", def), "1.00x",
		fmt.Sprintf("%.0f", base.MeanConvergenceRound), fmtPct(100*base.MeanFinalAccuracy))
	for _, beta := range []float64{5, 100} {
		b := beta
		sum := fl.RunSeeds(s.Config(0), fedgpoVariantFactory(s, func(c *core.Config) {
			c.Reward.Beta = b
		}), o.seeds())
		t.AddRow(fmt.Sprintf("%.0f", b), fmtRatio(sum.MeanPPW/base.MeanPPW),
			fmt.Sprintf("%.0f", sum.MeanConvergenceRound), fmtPct(100*sum.MeanFinalAccuracy))
	}
	return t
}

// AblationColdStart quantifies the learning-phase cost the paper's
// §5.4 describes: cold FedGPO (learning inside the measured run) versus
// warm-started FedGPO (Q-tables pre-trained), against Fixed (Best).
func AblationColdStart(o Options) Table {
	w := workload.CNNMNIST()
	s := o.apply(Realistic(w))
	best := FixedBestParams(w, o)
	t := Table{
		ID:     "abl-cold",
		Title:  "learning-phase cost: cold vs warm-started FedGPO (CNN-MNIST, realistic)",
		Header: []string{"controller", "PPW (norm to Fixed)", "conv round", "accuracy"},
	}
	fixed := fl.RunSeeds(s.Config(0), func() fl.Controller {
		return &fl.Static{P: best, Label: "Fixed (Best)"}
	}, o.seeds())
	t.AddRow("Fixed (Best) "+best.String(), "1.00x",
		fmt.Sprintf("%.0f", fixed.MeanConvergenceRound), fmtPct(100*fixed.MeanFinalAccuracy))
	for _, v := range []struct {
		name    string
		factory fl.ControllerFactory
	}{
		{"FedGPO (cold)", fedgpoColdFactory()},
		{"FedGPO (warm)", fedgpoWarmFactory(s)},
	} {
		sum := fl.RunSeeds(s.Config(0), v.factory, o.seeds())
		t.AddRow(v.name, fmtRatio(sum.MeanPPW/fixed.MeanPPW),
			fmt.Sprintf("%.0f", sum.MeanConvergenceRound), fmtPct(100*sum.MeanFinalAccuracy))
	}
	t.Notes = append(t.Notes,
		"paper §5.4: FedGPO runs ~24% below Fixed (Best) efficiency during the learning phase and overtakes after the Q-tables converge")
	return t
}
