// Package exp is the experiment harness: it defines the deployment
// scenarios of the paper's evaluation (§4) and one constructor per
// figure and table of §2 and §5, each returning a rendered text table
// with the same rows/series the paper plots. The bench harness
// (bench_test.go) and the CLI tools (cmd/fedgpo-sim, cmd/fedgpo-sweep,
// cmd/fedgpo-report) are thin wrappers over this package.
package exp

import (
	"fmt"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// Scenario is a deployment preset.
type Scenario struct {
	Name     string
	Workload workload.Workload
	// FleetSize scales the paper's 30/70/100 composition.
	FleetSize int
	// NonIID switches the partition from Ideal IID to Dirichlet(0.1).
	NonIID bool
	// Interference enables the co-running-application model.
	Interference bool
	// UnstableNet switches to the Gaussian-varying channel.
	UnstableNet bool
	// DeadlineSec, when positive, enables straggler drops at an
	// absolute round deadline.
	DeadlineSec float64
	// MaxRounds bounds each run.
	MaxRounds int
	// PartitionSeed fixes the non-IID draw (the same data layout is
	// shared by all controllers within an experiment).
	PartitionSeed int64
}

// Paper environment constants.
const (
	// paperFleet is the paper's 200-device deployment.
	paperFleet = 200
	// aggregationOverheadSec is the fixed server-side round cost.
	aggregationOverheadSec = 30
	// defaultMaxRounds bounds runs; generously above the ideal
	// convergence points so "unconverged" means genuinely stuck.
	defaultMaxRounds = 400
)

// Ideal returns the no-variance, IID deployment for a workload.
func Ideal(w workload.Workload) Scenario {
	return Scenario{
		Name:      "ideal",
		Workload:  w,
		FleetSize: paperFleet,
		MaxRounds: defaultMaxRounds,
	}
}

// Realistic returns the paper's default evaluation environment (§4.2):
// the co-running application on a random device subset and the
// Gaussian-varying Wi-Fi channel, with the prior-work straggler-drop
// deadline active.
func Realistic(w workload.Workload) Scenario {
	s := Ideal(w)
	s.Name = "realistic"
	s.Interference = true
	s.UnstableNet = true
	s.DeadlineSec = deadlineFor(w)
	return s
}

// InterferenceOnly isolates on-device interference (Fig. 10b).
func InterferenceOnly(w workload.Workload) Scenario {
	s := Ideal(w)
	s.Name = "interference"
	s.Interference = true
	s.DeadlineSec = deadlineFor(w)
	return s
}

// UnstableNetworkOnly isolates network variance (Fig. 10c).
func UnstableNetworkOnly(w workload.Workload) Scenario {
	s := Ideal(w)
	s.Name = "unstable-network"
	s.UnstableNet = true
	s.DeadlineSec = deadlineFor(w)
	return s
}

// NonIIDScenario returns the data-heterogeneity deployment (Fig. 11b).
func NonIIDScenario(w workload.Workload) Scenario {
	s := Ideal(w)
	s.Name = "non-iid"
	s.NonIID = true
	s.PartitionSeed = 42
	return s
}

// RealisticNonIID combines runtime variance and data heterogeneity
// (Table 5's last row).
func RealisticNonIID(w workload.Workload) Scenario {
	s := Realistic(w)
	s.Name = "realistic-non-iid"
	s.NonIID = true
	s.PartitionSeed = 42
	return s
}

// deadlineFor sets the absolute straggler deadline relative to the
// clean slowest-category round time for the workload's default
// parameters. The margin is deliberately tight enough that a fixed
// configuration's interfered low-end devices regularly miss it — the
// prior-work drop behaviour whose accuracy cost the paper's Fig. 10
// documents — while leaving ample headroom for per-device adaptation.
func deadlineFor(w workload.Workload) float64 {
	refE := 10
	if w.RCLayers > 0 {
		// Recurrent workloads are provisioned for their longer local
		// training (more iterations at small batches, paper §2.1).
		refE = 20
	}
	low := device.Profiles()[device.Low]
	clean := device.ComputeSeconds(low, w.Shape, 8, refE, w.SamplesPerDevice, device.Interference{})
	return 1.35*clean + 15
}

// rounds returns the effective round budget (Config's default
// applied).
func (s Scenario) rounds() int {
	if s.MaxRounds == 0 {
		return defaultMaxRounds
	}
	return s.MaxRounds
}

// cacheKey canonically serializes every Scenario field that influences
// a run's outcome; it names the scenario half of a runtime job key.
// Defaults are resolved first so that equivalent scenarios (explicit
// paper fleet vs zero-valued FleetSize) share cache entries.
func (s Scenario) cacheKey() string {
	fleet := s.FleetSize
	if fleet == 0 {
		fleet = paperFleet
	}
	return fmt.Sprintf("%s/%s/fleet=%d/rounds=%d/noniid=%t/pseed=%d/intf=%t/net=%t/deadline=%g/agg=%d",
		s.Workload.Name, s.Name, fleet, s.rounds(), s.NonIID, s.PartitionSeed,
		s.Interference, s.UnstableNet, s.DeadlineSec, aggregationOverheadSec)
}

// Config materializes the scenario for a run seed.
func (s Scenario) Config(seed int64) fl.Config {
	if s.FleetSize == 0 {
		s.FleetSize = paperFleet
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = defaultMaxRounds
	}
	fleet := device.NewFleet(device.PaperComposition().Scale(s.FleetSize))
	var part data.Partition
	if s.NonIID {
		part = data.Dirichlet(len(fleet), s.Workload.NumClasses,
			s.Workload.SamplesPerDevice, data.PaperAlpha, stats.NewRNG(s.PartitionSeed))
	} else {
		part = data.IID(len(fleet), s.Workload.NumClasses, s.Workload.SamplesPerDevice)
	}
	ch := netsim.StableChannel()
	if s.UnstableNet {
		ch = netsim.UnstableChannel()
	}
	intf := interfere.None()
	if s.Interference {
		intf = interfere.Paper()
	}
	return fl.Config{
		Workload:               s.Workload,
		Fleet:                  fleet,
		Partition:              part,
		Channel:                ch,
		Interference:           intf,
		MaxRounds:              s.MaxRounds,
		DeadlineSec:            s.DeadlineSec,
		AggregationOverheadSec: aggregationOverheadSec,
		Seed:                   seed,
		StopAtConvergence:      true,
	}
}

// Seeds returns the default evaluation seed set.
func Seeds() []int64 { return []int64{1, 2} }

// warmupSeed is the seed FedGPO's Q-table warm-up runs on (distinct
// from every evaluation seed).
const warmupSeed = 997

// fmtRatio renders a normalized value the way the paper labels its
// bars, e.g. "3.6x".
func fmtRatio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// fmtPct renders a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
