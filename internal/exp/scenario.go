// Package exp is the experiment harness: it defines the deployment
// scenarios of the paper's evaluation (§4) and one constructor per
// figure and table of §2 and §5, each returning a rendered text table
// with the same rows/series the paper plots. The bench harness
// (bench_test.go) and the CLI tools (cmd/fedgpo-sim, cmd/fedgpo-sweep,
// cmd/fedgpo-report) are thin wrappers over this package.
//
// Scenarios are declarative data: a ScenarioSpec composes explicit
// sub-specs for fleet composition, data partition, network model,
// interference model and deadline policy, each with a JSON codec,
// validation and a canonical-key contribution. The paper's presets
// (Ideal, Realistic, ...) are thin constructors over the spec, and
// arbitrary off-paper deployments are just different spec values —
// see ScenarioMatrix and the fedgpo-sweep -matrix/-scenario-file
// flags.
package exp

import (
	"bytes"
	"encoding/json"
	"fmt"

	"fedgpo/internal/data"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/interfere"
	"fedgpo/internal/netsim"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// Paper environment constants.
const (
	// paperFleet is the paper's 200-device deployment.
	paperFleet = 200
	// aggregationOverheadSec is the fixed server-side round cost.
	aggregationOverheadSec = 30
	// defaultMaxRounds bounds runs; generously above the ideal
	// convergence points so "unconverged" means genuinely stuck.
	defaultMaxRounds = 400
)

// FleetSpec describes the device population as a device-class mix:
// explicit per-category counts, optionally rescaled to a total size.
// The zero value is the paper's 30/70/100 mix at 200 devices.
type FleetSpec struct {
	// Mix is the per-category device count before scaling; the zero
	// value selects the paper's 30/70/100 composition.
	Mix device.FleetComposition `json:"mix,omitempty"`
	// Size, when positive, proportionally rescales Mix to this total
	// (device.FleetComposition.Scale); zero keeps Mix's own total.
	Size int `json:"size,omitempty"`
}

// Composition resolves the spec into the concrete per-category counts.
func (f FleetSpec) Composition() device.FleetComposition {
	mix := f.Mix
	if mix == (device.FleetComposition{}) {
		mix = device.PaperComposition()
		if f.Size == 0 {
			return mix.Scale(paperFleet)
		}
	}
	if f.Size > 0 {
		return mix.Scale(f.Size)
	}
	return mix
}

// Validate reports malformed fleet specs.
func (f FleetSpec) Validate() error {
	if f.Mix.High < 0 || f.Mix.Mid < 0 || f.Mix.Low < 0 {
		return fmt.Errorf("exp: fleet mix counts must be non-negative, got %+v", f.Mix)
	}
	if f.Size < 0 {
		return fmt.Errorf("exp: fleet size must be non-negative, got %d", f.Size)
	}
	if f.Composition().Total() <= 0 {
		return fmt.Errorf("exp: fleet resolves to zero devices")
	}
	return nil
}

// key is the sub-spec's canonical cache-key contribution: the resolved
// per-category counts, so equivalent specs (zero value vs explicit
// paper mix) share cache entries.
func (f FleetSpec) key() string { return f.Composition().Key() }

// Partition kinds.
const (
	PartitionIID       = "iid"
	PartitionDirichlet = "dirichlet"
)

// PartitionSpec describes the training-data distribution across the
// fleet. The zero value is the paper's Ideal-IID partition.
type PartitionSpec struct {
	// Kind selects the distribution: "iid" (default) or "dirichlet".
	Kind string `json:"kind,omitempty"`
	// Alpha is the Dirichlet concentration (0 selects the paper's 0.1).
	// It has no effect on IID partitions.
	Alpha float64 `json:"alpha,omitempty"`
	// Seed fixes the Dirichlet draw (the same data layout is shared by
	// all controllers within an experiment).
	Seed int64 `json:"seed,omitempty"`
}

// alpha resolves the Dirichlet concentration default.
func (p PartitionSpec) alpha() float64 {
	if p.Alpha == 0 {
		return data.PaperAlpha
	}
	return p.Alpha
}

// NonIID reports whether the partition is heterogeneous.
func (p PartitionSpec) NonIID() bool { return p.Kind == PartitionDirichlet }

// Materialize builds the partition for a fleet of n devices.
func (p PartitionSpec) Materialize(n int, w workload.Workload) data.Partition {
	if p.NonIID() {
		return data.Dirichlet(n, w.NumClasses, w.SamplesPerDevice, p.alpha(),
			stats.NewRNG(p.Seed))
	}
	return data.IID(n, w.NumClasses, w.SamplesPerDevice)
}

// Validate reports malformed partition specs.
func (p PartitionSpec) Validate() error {
	switch p.Kind {
	case "", PartitionIID, PartitionDirichlet:
	default:
		return fmt.Errorf("exp: unknown partition kind %q (valid: %s, %s)",
			p.Kind, PartitionIID, PartitionDirichlet)
	}
	if p.Alpha < 0 {
		return fmt.Errorf("exp: Dirichlet alpha must be non-negative, got %g", p.Alpha)
	}
	return nil
}

// key is the sub-spec's canonical cache-key contribution. IID ignores
// alpha and seed, so every IID spec shares one key.
func (p PartitionSpec) key() string {
	if !p.NonIID() {
		return PartitionIID
	}
	return fmt.Sprintf("%s(alpha=%g,seed=%d)", PartitionDirichlet, p.alpha(), p.Seed)
}

// NetworkSpec describes the wireless channel: a named base model plus
// optional Gaussian-parameter overrides. The zero value is the paper's
// stable channel.
type NetworkSpec struct {
	// Kind selects the base channel: "stable" (default) or "unstable".
	Kind string `json:"kind,omitempty"`
	// MeanMbps/StdMbps/FloorMbps, when positive, override the base
	// channel's Gaussian bandwidth parameters.
	MeanMbps  float64 `json:"meanMbps,omitempty"`
	StdMbps   float64 `json:"stdMbps,omitempty"`
	FloorMbps float64 `json:"floorMbps,omitempty"`
}

// Channel resolves the spec into the concrete channel model.
func (n NetworkSpec) Channel() netsim.Channel {
	kind := n.Kind
	if kind == "" {
		kind = netsim.KindStable
	}
	ch, ok := netsim.ChannelByName(kind)
	if !ok {
		panic("exp: unknown network kind " + kind)
	}
	if n.MeanMbps > 0 {
		ch.MeanMbps = n.MeanMbps
	}
	if n.StdMbps > 0 {
		ch.StdMbps = n.StdMbps
	}
	if n.FloorMbps > 0 {
		ch.FloorMbps = n.FloorMbps
	}
	return ch
}

// Validate reports malformed network specs.
func (n NetworkSpec) Validate() error {
	if n.Kind != "" {
		if _, ok := netsim.ChannelByName(n.Kind); !ok {
			return fmt.Errorf("exp: unknown network kind %q (valid: %s, %s)",
				n.Kind, netsim.KindStable, netsim.KindUnstable)
		}
	}
	if n.MeanMbps < 0 || n.StdMbps < 0 || n.FloorMbps < 0 {
		return fmt.Errorf("exp: network overrides must be non-negative")
	}
	return nil
}

// key is the sub-spec's canonical cache-key contribution: the resolved
// channel parameters, so a "stable" spec and an explicit spec with the
// same numbers share cache entries.
func (n NetworkSpec) key() string { return n.Channel().Key() }

// IntfNone names the interference-free spec kind.
const IntfNone = "none"

// InterferenceSpec describes the co-running-application model: a named
// co-runner profile plus the fraction of the fleet it is active on each
// round. The zero value disables interference.
type InterferenceSpec struct {
	// Kind selects the co-runner: "none" (default), "web-browsing"
	// (the paper's synthetic co-runner) or "heavy-game".
	Kind string `json:"kind,omitempty"`
	// ActiveFraction is the per-round fraction of devices running the
	// co-runner (0 selects the paper's 0.5).
	ActiveFraction float64 `json:"activeFraction,omitempty"`
}

// Model resolves the spec into the concrete interference model.
func (i InterferenceSpec) Model() interfere.Model {
	if i.Kind == "" || i.Kind == IntfNone {
		return interfere.None()
	}
	prof, ok := interfere.ProfileByName(i.Kind)
	if !ok {
		panic("exp: unknown interference kind " + i.Kind)
	}
	frac := i.ActiveFraction
	if frac == 0 {
		frac = interfere.Paper().ActiveFraction
	}
	return interfere.Model{Profile: prof, ActiveFraction: frac}
}

// Validate reports malformed interference specs.
func (i InterferenceSpec) Validate() error {
	if i.Kind != "" && i.Kind != IntfNone {
		if _, ok := interfere.ProfileByName(i.Kind); !ok {
			return fmt.Errorf("exp: unknown interference kind %q (valid: %s, %s, %s)",
				i.Kind, IntfNone, interfere.WebBrowsing().Name, interfere.HeavyGame().Name)
		}
	}
	if i.ActiveFraction < 0 || i.ActiveFraction > 1 {
		return fmt.Errorf("exp: interference active fraction must be in [0, 1], got %g",
			i.ActiveFraction)
	}
	return nil
}

// key is the sub-spec's canonical cache-key contribution: the resolved
// model parameters.
func (i InterferenceSpec) key() string { return i.Model().Key() }

// Deadline policy kinds.
const (
	DeadlineNone  = "none"
	DeadlineFixed = "fixed"
	DeadlineAuto  = "auto"
)

// Auto deadline policy defaults: the absolute straggler deadline is
// margin × (clean slowest-category round time) + slack. The margin is
// deliberately tight enough that a fixed configuration's interfered
// low-end devices regularly miss it — the prior-work drop behaviour
// whose accuracy cost the paper's Fig. 10 documents — while leaving
// ample headroom for per-device adaptation.
const (
	autoDeadlineMargin   = 1.35
	autoDeadlineSlackSec = 15.0
)

// DeadlineSpec describes the server's straggler-drop policy. The zero
// value waits for every participant (no deadline).
type DeadlineSpec struct {
	// Kind selects the policy: "none" (default, wait for everyone),
	// "fixed" (an absolute deadline of Seconds) or "auto" (derive the
	// deadline from the workload's clean slowest-category round time).
	Kind string `json:"kind,omitempty"`
	// Seconds is the fixed policy's absolute deadline.
	Seconds float64 `json:"seconds,omitempty"`
	// Margin and SlackSec tune the auto policy (0 selects the paper
	// margins, 1.35 and 15s).
	Margin   float64 `json:"margin,omitempty"`
	SlackSec float64 `json:"slackSec,omitempty"`
}

// SecondsFor resolves the policy into the absolute round deadline for
// a workload (0 = no deadline).
func (d DeadlineSpec) SecondsFor(w workload.Workload) float64 {
	switch d.Kind {
	case "", DeadlineNone:
		return 0
	case DeadlineFixed:
		return d.Seconds
	case DeadlineAuto:
		margin, slack := d.Margin, d.SlackSec
		if margin == 0 {
			margin = autoDeadlineMargin
		}
		if slack == 0 {
			slack = autoDeadlineSlackSec
		}
		return margin*cleanLowRoundSec(w) + slack
	default:
		panic("exp: unknown deadline kind " + d.Kind)
	}
}

// Validate reports malformed deadline specs.
func (d DeadlineSpec) Validate() error {
	switch d.Kind {
	case "", DeadlineNone, DeadlineFixed, DeadlineAuto:
	default:
		return fmt.Errorf("exp: unknown deadline kind %q (valid: %s, %s, %s)",
			d.Kind, DeadlineNone, DeadlineFixed, DeadlineAuto)
	}
	if d.Seconds < 0 || d.Margin < 0 || d.SlackSec < 0 {
		return fmt.Errorf("exp: deadline parameters must be non-negative")
	}
	return nil
}

// cleanLowRoundSec is the auto deadline policy's reference: the
// low-end category's interference-free local training time at the
// workload's provisioning parameters. Recurrent workloads are
// provisioned for their longer local training (more iterations at
// small batches, paper §2.1).
func cleanLowRoundSec(w workload.Workload) float64 {
	refE := 10
	if w.RCLayers > 0 {
		refE = 20
	}
	low := device.Profiles()[device.Low]
	return device.ComputeSeconds(low, w.Shape, 8, refE, w.SamplesPerDevice, device.Interference{})
}

// ScenarioSpec is the declarative, serializable description of one
// deployment: the workload plus composable sub-specs for fleet
// composition, data partition, network model, interference model and
// deadline policy. A scenario is fully described by its spec — Name is
// a display label and never participates in cache identity, so two
// differently-named scenarios with the same resolved spec share cache
// entries, and two same-named scenarios differing in any sub-spec
// field never do.
type ScenarioSpec struct {
	// Name is the display label reports and sweep rows print.
	Name string `json:"name,omitempty"`
	// Workload is the NN training task.
	Workload workload.Workload `json:"workload"`
	// Fleet is the device-class mix.
	Fleet FleetSpec `json:"fleet,omitempty"`
	// Partition is the data distribution.
	Partition PartitionSpec `json:"partition,omitempty"`
	// Network is the wireless channel model.
	Network NetworkSpec `json:"network,omitempty"`
	// Interference is the co-running-application model.
	Interference InterferenceSpec `json:"interference,omitempty"`
	// Deadline is the straggler-drop policy.
	Deadline DeadlineSpec `json:"deadline,omitempty"`
	// MaxRounds bounds each run (0 = default 400).
	MaxRounds int `json:"maxRounds,omitempty"`
}

// Validate reports malformed scenario specs, checking the workload and
// every sub-spec so a bad wire spec fails at decode time rather than
// mid-job.
func (s ScenarioSpec) Validate() error {
	if s.MaxRounds < 0 {
		return fmt.Errorf("exp: MaxRounds must be non-negative, got %d", s.MaxRounds)
	}
	for _, err := range []error{
		s.Workload.Validate(), s.Fleet.Validate(), s.Partition.Validate(),
		s.Network.Validate(), s.Interference.Validate(), s.Deadline.Validate(),
	} {
		if err != nil {
			return err
		}
	}
	return nil
}

// rounds returns the effective round budget (default applied).
func (s ScenarioSpec) rounds() int {
	if s.MaxRounds == 0 {
		return defaultMaxRounds
	}
	return s.MaxRounds
}

// cacheKey canonically serializes every spec field that influences a
// run's outcome; it names the scenario half of a runtime job key. Each
// sub-spec contributes its resolved parameters, so equivalent specs
// (zero values vs explicit paper defaults) share cache entries, and
// two specs differing in any sub-spec field never do. Name is display
// only and deliberately absent.
func (s ScenarioSpec) cacheKey() string {
	return fmt.Sprintf("%s/fleet=%s/rounds=%d/part=%s/net=%s/intf=%s/deadline=%g/agg=%d",
		s.Workload.Name, s.Fleet.key(), s.rounds(), s.Partition.key(),
		s.Network.key(), s.Interference.key(),
		s.Deadline.SecondsFor(s.Workload), aggregationOverheadSec)
}

// Config materializes the scenario for a run seed.
func (s ScenarioSpec) Config(seed int64) fl.Config {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	fleet := device.NewFleet(s.Fleet.Composition())
	return fl.Config{
		Workload:               s.Workload,
		Fleet:                  fleet,
		Partition:              s.Partition.Materialize(len(fleet), s.Workload),
		Channel:                s.Network.Channel(),
		Interference:           s.Interference.Model(),
		MaxRounds:              s.rounds(),
		DeadlineSec:            s.Deadline.SecondsFor(s.Workload),
		AggregationOverheadSec: aggregationOverheadSec,
		Seed:                   seed,
		StopAtConvergence:      true,
	}
}

// EncodeScenario serializes a scenario spec as indented JSON (the
// -scenario-file format).
func EncodeScenario(s ScenarioSpec) []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("exp: unmarshalable scenario spec: " + err.Error())
	}
	return b
}

// DecodeScenarios parses and validates scenario specs from JSON: a
// single spec object or an array of them (the -scenario-file format).
func DecodeScenarios(b []byte) ([]ScenarioSpec, error) {
	// Decode the form the input actually has, so a malformed object is
	// reported with its own field error instead of the array
	// type-mismatch error.
	var many []ScenarioSpec
	strict := func(v any) error {
		// Scenario files are hand-authored: an unknown (misspelled)
		// field must fail loudly, not silently resolve to a default
		// and simulate a deployment the user never wrote.
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		return dec.Decode(v)
	}
	if trimmed := bytes.TrimLeft(b, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		var one ScenarioSpec
		if err := strict(&one); err != nil {
			return nil, fmt.Errorf("exp: scenario spec decode: %w", err)
		}
		many = []ScenarioSpec{one}
	} else if err := strict(&many); err != nil {
		return nil, fmt.Errorf("exp: scenario spec decode: %w", err)
	}
	if len(many) == 0 {
		return nil, fmt.Errorf("exp: scenario file holds no specs")
	}
	for i, s := range many {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("exp: scenario %d (%q): %w", i, s.Name, err)
		}
	}
	return many, nil
}

// Ideal returns the no-variance, IID deployment for a workload.
func Ideal(w workload.Workload) ScenarioSpec {
	return ScenarioSpec{Name: "ideal", Workload: w}
}

// Realistic returns the paper's default evaluation environment (§4.2):
// the co-running application on a random device subset and the
// Gaussian-varying Wi-Fi channel, with the prior-work straggler-drop
// deadline active.
func Realistic(w workload.Workload) ScenarioSpec {
	s := Ideal(w)
	s.Name = "realistic"
	s.Interference = InterferenceSpec{Kind: interfere.WebBrowsing().Name}
	s.Network = NetworkSpec{Kind: netsim.KindUnstable}
	s.Deadline = DeadlineSpec{Kind: DeadlineAuto}
	return s
}

// InterferenceOnly isolates on-device interference (Fig. 10b).
func InterferenceOnly(w workload.Workload) ScenarioSpec {
	s := Ideal(w)
	s.Name = "interference"
	s.Interference = InterferenceSpec{Kind: interfere.WebBrowsing().Name}
	s.Deadline = DeadlineSpec{Kind: DeadlineAuto}
	return s
}

// UnstableNetworkOnly isolates network variance (Fig. 10c).
func UnstableNetworkOnly(w workload.Workload) ScenarioSpec {
	s := Ideal(w)
	s.Name = "unstable-network"
	s.Network = NetworkSpec{Kind: netsim.KindUnstable}
	s.Deadline = DeadlineSpec{Kind: DeadlineAuto}
	return s
}

// NonIIDScenario returns the data-heterogeneity deployment (Fig. 11b).
func NonIIDScenario(w workload.Workload) ScenarioSpec {
	s := Ideal(w)
	s.Name = "non-iid"
	s.Partition = PartitionSpec{Kind: PartitionDirichlet, Seed: nonIIDPartitionSeed}
	return s
}

// RealisticNonIID combines runtime variance and data heterogeneity
// (Table 5's last row).
func RealisticNonIID(w workload.Workload) ScenarioSpec {
	s := Realistic(w)
	s.Name = "realistic-non-iid"
	s.Partition = PartitionSpec{Kind: PartitionDirichlet, Seed: nonIIDPartitionSeed}
	return s
}

// nonIIDPartitionSeed fixes the paper presets' Dirichlet draw.
const nonIIDPartitionSeed = 42

// Preset is one named scenario constructor, parameterized by workload.
type Preset struct {
	Name        string
	Description string
	Build       func(workload.Workload) ScenarioSpec
}

// Presets lists the paper's deployment presets by name — the scenarios
// the -list-scenarios flag prints and the evaluation figures compose.
func Presets() []Preset {
	return []Preset{
		{"ideal", "no variance, IID data (§4.2 baseline)", Ideal},
		{"realistic", "co-running interference + unstable network + straggler deadline", Realistic},
		{"interference", "on-device interference only (Fig. 10b)", InterferenceOnly},
		{"unstable-network", "network variance only (Fig. 10c)", UnstableNetworkOnly},
		{"non-iid", "Dirichlet(0.1) data heterogeneity (Fig. 11b)", NonIIDScenario},
		{"realistic-non-iid", "runtime variance + data heterogeneity (Table 5)", RealisticNonIID},
	}
}

// PresetByName returns the preset with the given name, or an error
// listing valid names.
func PresetByName(name string) (Preset, error) {
	names := make([]string, 0)
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
		names = append(names, p.Name)
	}
	return Preset{}, fmt.Errorf("exp: unknown scenario preset %q (valid: %v)", name, names)
}

// Seeds returns the default evaluation seed set.
func Seeds() []int64 { return []int64{1, 2} }

// warmupSeed is the seed FedGPO's Q-table warm-up runs on (distinct
// from every evaluation seed).
const warmupSeed = 997

// fmtRatio renders a normalized value the way the paper labels its
// bars, e.g. "3.6x".
func fmtRatio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// fmtPct renders a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
