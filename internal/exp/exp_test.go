package exp

import (
	"fmt"
	"strings"
	"testing"

	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

func TestScenarioConfigsValidate(t *testing.T) {
	w := workload.CNNMNIST()
	for _, s := range []ScenarioSpec{
		Ideal(w), Realistic(w), InterferenceOnly(w),
		UnstableNetworkOnly(w), NonIIDScenario(w), RealisticNonIID(w),
	} {
		cfg := s.Config(1)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if len(cfg.Fleet) != paperFleet {
			t.Errorf("%s: fleet = %d, want %d", s.Name, len(cfg.Fleet), paperFleet)
		}
	}
}

func TestScenarioFlagsTakeEffect(t *testing.T) {
	w := workload.CNNMNIST()
	ideal := Ideal(w).Config(1)
	real := Realistic(w).Config(1)
	if ideal.Interference.Active() {
		t.Error("ideal scenario should have no interference")
	}
	if !real.Interference.Active() {
		t.Error("realistic scenario should have interference")
	}
	if real.DeadlineSec <= 0 {
		t.Error("realistic scenario should have a straggler deadline")
	}
	nid := NonIIDScenario(w).Config(1)
	if nid.Partition.GlobalSkew() < 0.3 {
		t.Error("non-IID scenario partition should be skewed")
	}
	if ideal.Partition.GlobalSkew() > 1e-9 {
		t.Error("ideal scenario partition should be IID")
	}
}

func TestQuickOptionsShrinkFleet(t *testing.T) {
	s := Quick().apply(Ideal(workload.CNNMNIST()))
	if s.Fleet.Size != 100 {
		t.Errorf("quick fleet = %d", s.Fleet.Size)
	}
	cfg := s.Config(1)
	if len(cfg.Fleet) != 100 {
		t.Errorf("quick config fleet = %d", len(cfg.Fleet))
	}
	tiny := Tiny().apply(Ideal(workload.CNNMNIST()))
	if tiny.Fleet.Size != 20 {
		t.Errorf("tiny fleet = %d", tiny.Fleet.Size)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	s := tab.String()
	if !strings.Contains(s, "x — demo") || !strings.Contains(s, "333") {
		t.Errorf("rendering missing content:\n%s", s)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| 333 | 4 |") {
		t.Errorf("markdown missing content:\n%s", md)
	}
}

func TestRegistryComplete(t *testing.T) {
	wanted := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig9", "fig10", "fig11", "fig12", "tab5", "sec54"}
	for _, id := range wanted {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if _, err := ByID("fig8"); err == nil {
		t.Error("fig8 does not exist in the paper's evaluation; ByID should error")
	}
}

func TestFig3CharacterizationShape(t *testing.T) {
	// Fig3 is simulation-free and fast; check the paper shapes hold.
	tab := Fig3(Tiny())
	if len(tab.Rows) != len(fl.BValues())+len(fl.EValues()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Every row's L value must exceed its H value (L is slower).
	for _, row := range tab.Rows {
		h := parseRatio(t, row[2])
		l := parseRatio(t, row[4])
		if l <= h {
			t.Errorf("row %v: L (%v) should be slower than H (%v)", row, l, h)
		}
	}
}

func TestFig4VarianceShape(t *testing.T) {
	tab := Fig4(Tiny())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Interference and network rows must exceed the clean row for L.
	clean := parseRatio(t, tab.Rows[0][3])
	intf := parseRatio(t, tab.Rows[1][3])
	net := parseRatio(t, tab.Rows[2][3])
	if intf <= clean || net <= clean {
		t.Errorf("variance should inflate round time: clean=%v intf=%v net=%v", clean, intf, net)
	}
}

func TestFig1QuickShape(t *testing.T) {
	tab := Fig1(Tiny())
	if len(tab.Rows) != len(fl.BValues())+len(fl.EValues())+len(fl.KValues()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// B=8 must beat B=1 (the baseline) on PPW — the headline of Fig 1.
	var b1, b8 float64
	for _, row := range tab.Rows {
		if row[0] == "B" && row[1] == "1" {
			b1 = parseRatio(t, row[3])
		}
		if row[0] == "B" && row[1] == "8" {
			b8 = parseRatio(t, row[3])
		}
	}
	if b8 <= b1 {
		t.Errorf("B=8 PPW (%v) should beat the B=1 baseline (%v)", b8, b1)
	}
}

func TestPredictionAccuracyInRange(t *testing.T) {
	acc := PredictionAccuracy(Tiny().apply(Ideal(workload.CNNMNIST())), Tiny(), 20)
	if acc < 50 || acc > 100 {
		t.Errorf("prediction accuracy = %v, want a sane percentage", acc)
	}
}

func TestRewardConvergenceRound(t *testing.T) {
	// A trace that ramps then plateaus converges near the ramp's end.
	trace := make([]float64, 100)
	for i := range trace {
		if i < 30 {
			trace[i] = float64(i)
		} else {
			trace[i] = 30
		}
	}
	r := RewardConvergenceRound(trace, 0.1)
	if r < 20 || r > 60 {
		t.Errorf("convergence round = %d, want near the plateau start", r)
	}
	if RewardConvergenceRound(trace[:5], 0.1) != -1 {
		t.Error("short traces should not report convergence")
	}
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%fx", &v); err != nil {
		t.Fatalf("bad ratio %q: %v", s, err)
	}
	return v
}
