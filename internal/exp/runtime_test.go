package exp

import (
	"strings"
	"sync"
	"testing"

	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

// The tentpole guarantee of the parallel runtime: a table generated
// with one worker is byte-identical to the same table generated with
// eight, regardless of scheduling.
func TestParallelTableByteIdenticalToSerial(t *testing.T) {
	serialOpts := Tiny()
	serialOpts.Parallel = 1
	parallelOpts := Tiny()
	parallelOpts.Parallel = 8

	for _, id := range []string{"fig1", "fig11"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial := e.Run(serialOpts).String()
		parallel := e.Run(parallelOpts).String()
		if serial != parallel {
			t.Errorf("%s: parallel=8 output differs from parallel=1:\n--- serial ---\n%s--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

// Inner-round parallelism must be invisible in every output byte: the
// same table generated with per-round fan-out budgets of 1, 2 and 8
// must match the serial-rounds table exactly. Fig6 covers the warm
// FedGPO contender, so the pretrained-controller cache path is under
// the same invariance contract.
func TestInnerParallelTablesByteIdentical(t *testing.T) {
	render := func(inner int) string {
		o := Tiny()
		o.InnerParallel = inner
		return Fig6(o).String()
	}
	want := render(0) // serial rounds
	for _, inner := range []int{1, 2, 8} {
		if got := render(inner); got != want {
			t.Errorf("inner parallelism %d changed the table:\n--- serial ---\n%s--- inner=%d ---\n%s",
				inner, want, inner, got)
		}
	}
}

// A panicking pretrain warm-up must fail every cell that depends on
// it, not just the first: the singleflight entry replays the panic, so
// no sibling cell can silently proceed with an untrained zero-value
// controller (which would complete "successfully" and poison the run
// cache with plausible-but-wrong results).
func TestPretrainPanicReplaysToEveryCell(t *testing.T) {
	rt, err := NewRuntime(0, "")
	if err != nil {
		t.Fatal(err)
	}
	bad := Tiny().apply(Ideal(workload.Workload{})) // invalid workload: warm-up panics
	c := fedgpoWarmContender(bad)
	mustPanic := func(pass string) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s controller build should panic, not hand out an untrained controller", pass)
			}
		}()
		rt.controller(bad, c)
	}
	mustPanic("first")
	mustPanic("second")
	if runs, _ := rt.PretrainStats(); runs != 0 {
		t.Errorf("aborted warm-up counted as %d executed runs, want 0", runs)
	}
}

// A warm-cache rerun of report experiments must perform zero new
// simulations — every cell, including the fixed-best grid search, the
// FedGPO warm-up runs, and the sec54/oracle probes, is served from the
// on-disk cache — and must reproduce the same bytes. The
// pretrained-controller cache is under the same contract: the cold run
// executes exactly one Q-table warm-up per distinct pretrain key
// (scenario × controller config), and the warm rerun executes none.
func TestWarmCacheRerunZeroSimulations(t *testing.T) {
	// Drop any fixed-best selection memoized by earlier tests at this
	// deployment scale: the cold run must select (and disk-cache) it
	// itself, or the warm rerun would have to re-run the grid search.
	fixedBestCache = sync.Map{}
	dir := t.TempDir()
	ids := []string{"fig1", "fig5", "fig6", "fig11", "tab5", "sec54"}

	runAll := func(rt *Runtime) string {
		opts := Options{FleetSize: 20, Seeds: []int64{1}, MaxRounds: 60}.WithRuntime(rt)
		var b strings.Builder
		for _, id := range ids {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(e.Run(opts).String())
		}
		return b.String()
	}

	rt1, err := NewRuntime(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := runAll(rt1)
	coldStats := rt1.Stats()
	if coldStats.Runs == 0 {
		t.Fatal("cold run should have simulated cells")
	}
	coldWarmups, coldKeys := rt1.PretrainStats()
	if coldKeys == 0 {
		t.Fatal("report experiments should have requested pretrained controllers")
	}
	if coldWarmups != coldKeys {
		t.Errorf("cold run executed %d pretrain warm-ups for %d distinct keys; want exactly one per key",
			coldWarmups, coldKeys)
	}

	// Drop the in-process fixed-best memo so the warm rerun exercises
	// the disk-cache path for the grid-search selection too, as a real
	// cross-process rerun would.
	fixedBestCache = sync.Map{}

	rt2, err := NewRuntime(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := runAll(rt2)
	warmStats := rt2.Stats()
	if warmStats.Runs != 0 {
		t.Errorf("warm rerun simulated %d cells, want 0 (hits=%d)", warmStats.Runs, warmStats.Hits)
	}
	if warmStats.Hits == 0 {
		t.Error("warm rerun should have served cells from the cache")
	}
	if warmups, _ := rt2.PretrainStats(); warmups != 0 {
		t.Errorf("warm rerun executed %d pretrain warm-ups, want 0", warmups)
	}
	if warm != cold {
		t.Error("warm-cache rerun produced different bytes than the cold run")
	}
}

// Identical cells requested twice under one shared runtime (Fig5 and
// Fig6 use the same two cells) must be simulated only once.
func TestSharedRuntimeDeduplicatesCells(t *testing.T) {
	rt, err := NewRuntime(0, "")
	if err != nil {
		t.Fatal(err)
	}
	opts := Tiny().WithRuntime(rt)
	Fig5(opts)
	afterFig5 := rt.Stats()
	Fig6(opts)
	afterFig6 := rt.Stats()
	if afterFig6.Runs != afterFig5.Runs {
		t.Errorf("Fig6 re-simulated %d cells that Fig5 already ran", afterFig6.Runs-afterFig5.Runs)
	}
	if afterFig6.Hits <= afterFig5.Hits {
		t.Error("Fig6's cells should be cache hits after Fig5")
	}
}

// SweepStatic must report per-run results in params order, matching a
// direct serial fl.Run of each cell.
func TestSweepStaticMatchesDirectRuns(t *testing.T) {
	o := Tiny()
	s := o.apply(Ideal(workload.CNNMNIST()))
	params := []fl.Params{{B: 8, E: 10, K: 20}, {B: 2, E: 10, K: 20}, {B: 8, E: 5, K: 10}}
	got := SweepStatic(o, s, params, 1)
	if len(got) != len(params) {
		t.Fatalf("got %d results for %d params", len(got), len(params))
	}
	for i, p := range params {
		want := fl.Run(s.Config(1), fl.NewStatic(p))
		if got[i].PPW != want.PPW || got[i].ConvergenceRound != want.ConvergenceRound {
			t.Errorf("param %v: sweep result diverges from direct run (PPW %v vs %v)",
				p, got[i].PPW, want.PPW)
		}
	}
}

// With retention enabled, the result store must record every cell a
// figure ran, with round histories attached; without it, nothing is
// retained.
func TestRuntimeStoreRecordsCells(t *testing.T) {
	off, err := NewRuntime(0, "")
	if err != nil {
		t.Fatal(err)
	}
	Fig1(Tiny().WithRuntime(off))
	if n := off.Store().Len(); n != 0 {
		t.Errorf("store retained %d cells without EnableStore", n)
	}

	rt, err := NewRuntime(0, "")
	if err != nil {
		t.Fatal(err)
	}
	rt.EnableStore()
	Fig1(Tiny().WithRuntime(rt))
	rs := rt.Store().Results()
	if len(rs) == 0 {
		t.Fatal("store is empty after Fig1")
	}
	for _, r := range rs {
		if r.Key == "" {
			t.Error("stored result missing canonical key")
		}
		if len(r.Sim.History) == 0 {
			t.Errorf("stored result %q missing round history", r.Key)
		}
	}
}

func TestScenarioCacheKeyDistinguishesDeployments(t *testing.T) {
	w := workload.CNNMNIST()
	keys := map[string]string{}
	for _, s := range []ScenarioSpec{
		Ideal(w), Realistic(w), InterferenceOnly(w),
		UnstableNetworkOnly(w), NonIIDScenario(w), RealisticNonIID(w),
		Tiny().apply(Ideal(w)),
	} {
		k := s.cacheKey()
		if prev, dup := keys[k]; dup {
			t.Errorf("scenarios %q and %q share cache key %q", prev, s.Name, k)
		}
		keys[k] = s.Name
	}
	// Defaults must resolve: the zero-valued paper fleet and the
	// explicit one name the same deployment.
	a := Ideal(w)
	b := Ideal(w)
	b.Fleet = FleetSpec{Mix: device.PaperComposition(), Size: paperFleet}
	b.MaxRounds = defaultMaxRounds
	if a.cacheKey() != b.cacheKey() {
		t.Error("explicit defaults should share the cache key with zero values")
	}
	// The display name never participates: renaming a scenario keeps
	// its cache identity.
	c := Ideal(w)
	c.Name = "renamed"
	if a.cacheKey() != c.cacheKey() {
		t.Error("display name should not participate in the cache key")
	}
}
