package exp

import (
	"fmt"

	"fedgpo/internal/core"
	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// predictedTime estimates one participant-round's duration for a
// parameter choice from the same models the simulator executes:
// compute under the observed interference plus the model round trip at
// the observed bandwidth.
func predictedTime(s Scenario, d device.Device, st fl.DeviceState, lp fl.LocalParams) float64 {
	w := s.Workload
	comp := device.ComputeSeconds(d.Profile, w.Shape, lp.B, lp.E, st.Samples, st.Interference)
	cfg := s.Config(0)
	comm := cfg.Channel.CommRoundTrip(w.Shape.ModelBytes, st.Network).Seconds
	return comp + comm
}

// PredictionAccuracy measures how close FedGPO's per-round selections
// come to the per-round gap-minimizing oracle of paper Table 5 ("these
// parameters are identified in terms of minimizing the performance gap
// across the devices, rather than global convergence"). The oracle's
// defining property is that every participant finishes together — its
// performance gap is zero — so selection accuracy is scored as how
// fully FedGPO's assignment fills the round's critical path:
//
//	accuracy = 100 × mean_d(predicted time_d) / max_d(predicted time_d)
//
// averaged over rounds. A perfectly equalized round scores 100%; a
// round where devices idle-wait half the critical path scores 50%. The
// predicted times come from the same device/network models the
// simulator executes, evaluated at the observed per-device state.
func PredictionAccuracy(s Scenario, o Options, rounds int) float64 {
	cfg := s.Config(o.seeds()[0])
	cfg.MaxRounds = rounds
	cfg.StopAtConvergence = false

	warmCfg := s.Config(warmupSeed)
	warmCfg.MaxRounds = minInt(150, warmCfg.MaxRounds)
	ctrl := core.Pretrained(core.DefaultConfig(), warmCfg)

	accs := make([]float64, 0, rounds)
	probe := &oracleProbe{
		inner: ctrl,
		onRound: func(obs fl.Observation, rr fl.RoundResult) {
			if len(rr.Participants) == 0 {
				return
			}
			var sumT, maxT float64
			for _, p := range rr.Participants {
				pt := predictedTime(s, cfg.Fleet[p.DeviceID], rr.States[p.DeviceID], p.Local)
				sumT += pt
				if pt > maxT {
					maxT = pt
				}
			}
			if maxT <= 0 {
				return
			}
			accs = append(accs, 100*sumT/(float64(len(rr.Participants))*maxT))
		},
	}
	fl.Run(cfg, probe)
	return stats.Mean(accs)
}

// oracleProbe taps observations and results around an inner controller.
type oracleProbe struct {
	inner   fl.Controller
	lastObs fl.Observation
	onRound func(fl.Observation, fl.RoundResult)
}

func (p *oracleProbe) Name() string { return p.inner.Name() }
func (p *oracleProbe) Plan(o fl.Observation) fl.Plan {
	p.lastObs = o
	return p.inner.Plan(o)
}
func (p *oracleProbe) Observe(r fl.RoundResult) {
	p.onRound(p.lastObs, r)
	p.inner.Observe(r)
}

// Table5 reproduces paper Table 5: FedGPO's global-parameter selection
// accuracy against the per-round oracle, across the five
// variance/heterogeneity combinations.
func Table5(o Options) Table {
	w := workload.CNNMNIST()
	rounds := 60
	if o.MaxRounds > 0 && o.MaxRounds < rounds {
		rounds = o.MaxRounds
	}
	t := Table{
		ID:     "tab5",
		Title:  "accuracy of global parameter selection vs per-round oracle (CNN-MNIST)",
		Header: []string{"runtime variance", "data heterogeneity", "prediction accuracy"},
	}
	rows := []struct {
		label1, label2 string
		s              Scenario
	}{
		{"no", "no", o.apply(Ideal(w))},
		{"yes (on-device interference)", "no", o.apply(InterferenceOnly(w))},
		{"yes (unstable network)", "no", o.apply(UnstableNetworkOnly(w))},
		{"no", "yes", o.apply(NonIIDScenario(w))},
		{"yes", "yes", o.apply(RealisticNonIID(w))},
	}
	for _, r := range rows {
		acc := PredictionAccuracy(r.s, o, rounds)
		t.AddRow(r.label1, r.label2, fmt.Sprintf("%.1f%%", acc))
	}
	t.Notes = append(t.Notes,
		"paper expectation: ~94-95% without data heterogeneity, dropping to ~88-90% with it")
	return t
}
