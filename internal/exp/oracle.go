package exp

import (
	"fmt"

	"fedgpo/internal/device"
	"fedgpo/internal/fl"
	"fedgpo/internal/netsim"
	"fedgpo/internal/runtime"
	"fedgpo/internal/stats"
	"fedgpo/internal/workload"
)

// predictedTime estimates one participant-round's duration for a
// parameter choice from the same models the simulator executes:
// compute under the observed interference plus the model round trip at
// the observed bandwidth.
func predictedTime(s ScenarioSpec, ch netsim.Channel, d device.Device, st fl.DeviceState, lp fl.LocalParams) float64 {
	w := s.Workload
	comp := device.ComputeSeconds(d.Profile, w.Shape, lp.B, lp.E, st.Samples, st.Interference)
	comm := ch.CommRoundTrip(w.Shape.ModelBytes, st.Network).Seconds
	return comp + comm
}

// oracleExtra is the Kind-specific payload of a prediction-accuracy
// job: the mean per-round selection accuracy against the gap-free
// oracle, in percent.
type oracleExtra struct {
	MeanAccPct float64 `json:"meanAccPct"`
}

// oracleSpec describes the job measuring FedGPO's selection accuracy
// on one scenario. The controller key derives from the warm FedGPO
// contender so the probe's cache identity tracks any change to the
// warm-up naming scheme; the contender also routes the probe's
// controller through the pretrained-controller cache, so the probe
// shares its Q-table warm-up with the comparison figures touching the
// same scenario.
func oracleSpec(s ScenarioSpec, o Options, rounds int) JobSpec {
	return JobSpec{
		Kind:        KindOracle,
		Scenario:    s,
		Contender:   fedgpoWarmContender(s),
		Seed:        o.seeds()[0],
		ProbeRounds: rounds,
	}
}

// executeOracle runs an "oracle" spec: a full-length probe run whose
// controller is tapped each round to score how fully the selected
// parameters fill the round's critical path (see PredictionAccuracy).
func executeOracle(r *Runtime, sp JobSpec) runtime.Result {
	s := sp.Scenario
	cfg := r.config(s, sp.Seed)
	cfg.MaxRounds = sp.ProbeRounds
	cfg.StopAtConvergence = false

	ctrl := r.controller(s, sp.Contender)

	accs := make([]float64, 0, sp.ProbeRounds)
	probe := &oracleProbe{
		inner: ctrl,
		onRound: func(obs fl.Observation, rr fl.RoundResult) {
			if len(rr.Participants) == 0 {
				return
			}
			var sumT, maxT float64
			for _, p := range rr.Participants {
				pt := predictedTime(s, cfg.Channel, cfg.Fleet[p.DeviceID], rr.States[p.DeviceID], p.Local)
				sumT += pt
				if pt > maxT {
					maxT = pt
				}
			}
			if maxT <= 0 {
				return
			}
			accs = append(accs, 100*sumT/(float64(len(rr.Participants))*maxT))
		},
	}
	res := runtime.Result{Sim: fl.Run(cfg, probe)}
	res.SetExtra(oracleExtra{MeanAccPct: stats.Mean(accs)})
	return res
}

// PredictionAccuracy measures how close FedGPO's per-round selections
// come to the per-round gap-minimizing oracle of paper Table 5 ("these
// parameters are identified in terms of minimizing the performance gap
// across the devices, rather than global convergence"). The oracle's
// defining property is that every participant finishes together — its
// performance gap is zero — so selection accuracy is scored as how
// fully FedGPO's assignment fills the round's critical path:
//
//	accuracy = 100 × mean_d(predicted time_d) / max_d(predicted time_d)
//
// averaged over rounds. A perfectly equalized round scores 100%; a
// round where devices idle-wait half the critical path scores 50%. The
// predicted times come from the same device/network models the
// simulator executes, evaluated at the observed per-device state.
func PredictionAccuracy(s ScenarioSpec, o Options, rounds int) float64 {
	rt := o.runtime()
	out := rt.runSpecs([]JobSpec{oracleSpec(s, o, rounds)})[0]
	var ex oracleExtra
	if err := out.GetExtra(&ex); err != nil {
		panic("exp: oracle payload: " + err.Error())
	}
	return ex.MeanAccPct
}

// oracleProbe taps observations and results around an inner controller.
type oracleProbe struct {
	inner   fl.Controller
	lastObs fl.Observation
	onRound func(fl.Observation, fl.RoundResult)
}

func (p *oracleProbe) Name() string { return p.inner.Name() }
func (p *oracleProbe) Plan(o fl.Observation) fl.Plan {
	p.lastObs = o
	return p.inner.Plan(o)
}
func (p *oracleProbe) Observe(r fl.RoundResult) {
	p.onRound(p.lastObs, r)
	p.inner.Observe(r)
}

// Table5 reproduces paper Table 5: FedGPO's global-parameter selection
// accuracy against the per-round oracle, across the five
// variance/heterogeneity combinations — all five probes fanned out
// over the runtime in one batch.
func Table5(o Options) Table {
	w := workload.CNNMNIST()
	rounds := 60
	if o.MaxRounds > 0 && o.MaxRounds < rounds {
		rounds = o.MaxRounds
	}
	t := Table{
		ID:     "tab5",
		Title:  "accuracy of global parameter selection vs per-round oracle (CNN-MNIST)",
		Header: []string{"runtime variance", "data heterogeneity", "prediction accuracy"},
	}
	rows := []struct {
		label1, label2 string
		s              ScenarioSpec
	}{
		{"no", "no", o.apply(Ideal(w))},
		{"yes (on-device interference)", "no", o.apply(InterferenceOnly(w))},
		{"yes (unstable network)", "no", o.apply(UnstableNetworkOnly(w))},
		{"no", "yes", o.apply(NonIIDScenario(w))},
		{"yes", "yes", o.apply(RealisticNonIID(w))},
	}
	rt := o.runtime()
	specs := make([]JobSpec, len(rows))
	for i, r := range rows {
		specs[i] = oracleSpec(r.s, o, rounds)
	}
	results := rt.runSpecs(specs)
	for i, r := range rows {
		var ex oracleExtra
		if err := results[i].GetExtra(&ex); err != nil {
			panic("exp: oracle payload: " + err.Error())
		}
		t.AddRow(r.label1, r.label2, fmt.Sprintf("%.1f%%", ex.MeanAccPct))
	}
	t.Notes = append(t.Notes,
		"paper expectation: ~94-95% without data heterogeneity, dropping to ~88-90% with it")
	return t
}
