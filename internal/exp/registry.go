package exp

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable paper artifact.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) Table
}

// Registry lists every reproducible artifact by id.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "convergence round & PPW vs (B,E,K) sweeps (CNN-MNIST)", Fig1},
		{"fig2", "energy-efficient optimum shifts across NNs", Fig2},
		{"fig3", "per-round training time by category vs B and E", Fig3},
		{"fig4", "round time under runtime variance", Fig4},
		{"fig5", "per-category energy: fixed vs adaptive", Fig5},
		{"fig6", "fixed vs adaptive summary (conv round / round time / PPW)", Fig6},
		{"fig7", "PPW across (B,E,K): IID vs non-IID", Fig7},
		{"fig9", "FedGPO vs Fixed/BO/GA across workloads", Fig9},
		{"fig10", "adaptability to runtime variance", Fig10},
		{"fig11", "adaptability to data heterogeneity", Fig11},
		{"fig12", "FedGPO vs FedEX vs ABS", Fig12},
		{"tab5", "parameter-selection accuracy vs per-round oracle", Table5},
		{"sec54", "convergence and overhead analysis", Sec54},
		{"abl-eps", "ablation: exploration probability", AblationEpsilon},
		{"abl-gm", "ablation: Q-learning rate and discount", AblationGammaMu},
		{"abl-tables", "ablation: shared vs per-device Q-tables", AblationTables},
		{"abl-beta", "ablation: reward weight beta", AblationBeta},
		{"abl-cold", "ablation: cold vs warm-started FedGPO", AblationColdStart},
	}
}

// ByID returns the experiment with the given id, or an error listing
// valid ids.
func ByID(id string) (Experiment, error) {
	ids := make([]string, 0)
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (valid: %v)", id, ids)
}
