package exp

import (
	"fmt"
	"sync"

	"fedgpo/internal/abs"
	"fedgpo/internal/baseline"
	"fedgpo/internal/fl"
	"fedgpo/internal/runtime"
	"fedgpo/internal/workload"
)

// fixedBestCache memoizes the grid-search result per workload and fleet
// size — the paper's Fixed (Best) is selected once by offline
// simulation in the ideal environment and reused everywhere.
var fixedBestCache sync.Map // key string -> fl.Params

// FixedBestParams returns (computing once) the Fixed (Best)
// configuration for a workload under the given options. The coarse
// grid search fans out over the options' runtime, and the selected
// setting is memoized both in-process and — when a cache directory is
// configured — in the content-addressed run cache, so warm reruns skip
// the search entirely.
func FixedBestParams(w workload.Workload, o Options) fl.Params {
	key := fmt.Sprintf("%s/%d/%d", w.Name, o.FleetSize, o.MaxRounds)
	if v, ok := fixedBestCache.Load(key); ok {
		return v.(fl.Params)
	}
	s := o.apply(Ideal(w))
	rt := o.runtime()
	// The key derives from the actual grid and seed values, so editing
	// either invalidates stale selections without a keyVersion bump.
	grid, seeds := baseline.CoarseGrid(), []int64{1}
	ck := runtime.KeyFor("fixed-best", s.cacheKey(),
		fmt.Sprintf("grid=%v", grid), fmt.Sprintf("seeds=%v", seeds))
	var p fl.Params
	if !rt.cache.Get(ck, &p) {
		p = rt.gridSearchBest(s, grid, seeds)
		_ = rt.cache.Put(ck, p)
	}
	fixedBestCache.Store(key, p)
	return p
}

// contenders builds the Fig. 9–11 comparison set for a scenario:
// Fixed (Best), Adaptive (BO), Adaptive (GA), and FedGPO (warm).
func contenders(w workload.Workload, s ScenarioSpec, o Options) []ContenderSpec {
	best := FixedBestParams(w, o)
	return []ContenderSpec{
		staticContender(best, "Fixed (Best)"),
		{Type: ContBO, Name: "Adaptive (BO)", CtrlSeed: 1},
		{Type: ContGA, Name: "Adaptive (GA)", CtrlSeed: 1},
		fedgpoWarmContender(s),
	}
}

// compareGroup is one scenario's contender set within a comparison
// experiment; its rows normalize to the group's first contender.
type compareGroup struct {
	label string
	s     ScenarioSpec
	cs    []ContenderSpec
}

// comparisonRows fans every group's (contender × seed) cells through
// the runtime in a single batch, then emits rows of PPW (normalized to
// the first contender), convergence-time speedup (ditto), final
// accuracy and convergence round — in the same order the serial
// harness produced them.
func comparisonRows(t *Table, groups []compareGroup, seeds []int64, rt *Runtime) {
	cells := make([]cell, 0)
	for _, g := range groups {
		for _, c := range g.cs {
			cells = append(cells, cell{g.s, c})
		}
	}
	sums := rt.summaries(cells, seeds)
	i := 0
	for _, g := range groups {
		var baseSummary fl.Summary
		for j, c := range g.cs {
			sum := sums[i]
			i++
			if j == 0 {
				baseSummary = sum
			}
			ppwN := sum.MeanPPW / baseSummary.MeanPPW
			speedN := baseSummary.MeanTimeToConvSec / sum.MeanTimeToConvSec
			t.AddRow(g.label, c.Name, fmtRatio(ppwN), fmtRatio(speedN),
				fmtPct(100*sum.MeanFinalAccuracy),
				fmt.Sprintf("%.0f", sum.MeanConvergenceRound))
		}
	}
}

// Fig9 reproduces paper Figure 9: PPW, convergence speedup and final
// accuracy of Fixed (Best), Adaptive (BO), Adaptive (GA) and FedGPO
// across the three workloads in the paper's realistic environment
// (co-running interference + Wi-Fi bandwidth variation, §4.2).
func Fig9(o Options) Table {
	t := Table{
		ID:     "fig9",
		Title:  "FedGPO vs baselines across workloads (realistic environment)",
		Header: []string{"workload", "controller", "PPW (norm)", "conv speedup", "accuracy", "conv round"},
	}
	rt := o.runtime()
	var groups []compareGroup
	for _, w := range workload.All() {
		s := o.apply(Realistic(w))
		groups = append(groups, compareGroup{w.Name, s, contenders(w, s, o)})
	}
	comparisonRows(&t, groups, o.seeds(), rt)
	t.Notes = append(t.Notes,
		"paper expectation: FedGPO best on PPW for every workload (paper: 4.1x/3.2x/3.5x over Fixed (Best)), maintaining accuracy")
	return t
}

// Fig10 reproduces paper Figure 10: the same comparison for CNN-MNIST
// under (a) no runtime variance, (b) on-device interference, and
// (c) network variance.
func Fig10(o Options) Table {
	w := workload.CNNMNIST()
	t := Table{
		ID:     "fig10",
		Title:  "adaptability to runtime variance (CNN-MNIST)",
		Header: []string{"scenario", "controller", "PPW (norm)", "conv speedup", "accuracy", "conv round"},
	}
	rt := o.runtime()
	var groups []compareGroup
	for _, s := range []ScenarioSpec{
		o.apply(Ideal(w)),
		o.apply(InterferenceOnly(w)),
		o.apply(UnstableNetworkOnly(w)),
	} {
		groups = append(groups, compareGroup{s.Name, s, contenders(w, s, o)})
	}
	comparisonRows(&t, groups, o.seeds(), rt)
	t.Notes = append(t.Notes,
		"paper expectation: FedGPO's margin widens under variance (paper: 5.0x/4.2x/3.0x over Fixed/BO/GA)")
	return t
}

// Fig11 reproduces paper Figure 11: the comparison for CNN-MNIST with
// and without data heterogeneity.
func Fig11(o Options) Table {
	w := workload.CNNMNIST()
	t := Table{
		ID:     "fig11",
		Title:  "adaptability to data heterogeneity (CNN-MNIST)",
		Header: []string{"scenario", "controller", "PPW (norm)", "conv speedup", "accuracy", "conv round"},
	}
	rt := o.runtime()
	var groups []compareGroup
	for _, s := range []ScenarioSpec{
		o.apply(Ideal(w)),
		o.apply(NonIIDScenario(w)),
	} {
		groups = append(groups, compareGroup{s.Name, s, contenders(w, s, o)})
	}
	comparisonRows(&t, groups, o.seeds(), rt)
	t.Notes = append(t.Notes,
		"paper expectation: under non-IID FedGPO achieves 6.2x/1.9x/1.3x over Fixed/BO/GA by shrinking E and K")
	return t
}

// Fig12 reproduces paper Figure 12: FedGPO against the prior-work
// tuners FedEX and ABS on CNN-MNIST, without variance, with runtime
// variance, and with data heterogeneity.
func Fig12(o Options) Table {
	w := workload.CNNMNIST()
	t := Table{
		ID:     "fig12",
		Title:  "FedGPO vs FedEX vs ABS (CNN-MNIST)",
		Header: []string{"scenario", "controller", "PPW (norm)", "conv speedup", "accuracy", "conv round"},
	}
	rt := o.runtime()
	var groups []compareGroup
	for _, s := range []ScenarioSpec{
		o.apply(Ideal(w)),
		o.apply(Realistic(w)),
		o.apply(NonIIDScenario(w)),
	} {
		// Normalize to FedEX (first row) so the FedGPO rows read as the
		// paper's "1.5x over FedEX" style ratios.
		absCfg := abs.DefaultConfig()
		cs := []ContenderSpec{
			{Type: ContFedEX, Name: "FedEX", CtrlSeed: 1},
			{Type: ContABS, Name: "ABS", ABS: &absCfg},
			fedgpoWarmContender(s),
		}
		groups = append(groups, compareGroup{s.Name, s, cs})
	}
	comparisonRows(&t, groups, o.seeds(), rt)
	t.Notes = append(t.Notes,
		"paper expectation: FedGPO > FedEX > ABS (paper: 1.5x and 2.1x average energy-efficiency improvements)")
	return t
}
