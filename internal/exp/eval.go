package exp

import (
	"fmt"
	"sync"

	"fedgpo/internal/abs"
	"fedgpo/internal/baseline"
	"fedgpo/internal/fl"
	"fedgpo/internal/workload"
)

// fixedBestCache memoizes the grid-search result per workload and fleet
// size — the paper's Fixed (Best) is selected once by offline
// simulation in the ideal environment and reused everywhere.
var fixedBestCache sync.Map // key string -> fl.Params

// FixedBestParams returns (computing once) the Fixed (Best)
// configuration for a workload under the given options.
func FixedBestParams(w workload.Workload, o Options) fl.Params {
	key := fmt.Sprintf("%s/%d/%d", w.Name, o.FleetSize, o.MaxRounds)
	if v, ok := fixedBestCache.Load(key); ok {
		return v.(fl.Params)
	}
	s := o.apply(Ideal(w))
	p, _ := baseline.GridSearchBest(s.Config(0), baseline.CoarseGrid(), []int64{1})
	fixedBestCache.Store(key, p)
	return p
}

// contender is one controller entry in a comparison experiment.
type contender struct {
	name    string
	factory fl.ControllerFactory
}

// contenders builds the Fig. 9–11 comparison set for a scenario:
// Fixed (Best), Adaptive (BO), Adaptive (GA), and FedGPO (warm).
func contenders(w workload.Workload, s Scenario, o Options) []contender {
	best := FixedBestParams(w, o)
	return []contender{
		{"Fixed (Best)", func() fl.Controller {
			return &fl.Static{P: best, Label: "Fixed (Best)"}
		}},
		{"Adaptive (BO)", func() fl.Controller { return baseline.NewBO(1) }},
		{"Adaptive (GA)", func() fl.Controller { return baseline.NewGA(1) }},
		{"FedGPO", fedgpoWarmFactory(s)},
	}
}

// compareRows runs every contender on the scenario and emits rows of
// PPW (normalized to the first contender), convergence-time speedup
// (ditto) and final accuracy.
func compareRows(t *Table, label string, cs []contender, s Scenario, seeds []int64) {
	var baseSummary fl.Summary
	for i, c := range cs {
		sum := fl.RunSeeds(s.Config(0), c.factory, seeds)
		if i == 0 {
			baseSummary = sum
		}
		ppwN := sum.MeanPPW / baseSummary.MeanPPW
		speedN := baseSummary.MeanTimeToConvSec / sum.MeanTimeToConvSec
		t.AddRow(label, c.name, fmtRatio(ppwN), fmtRatio(speedN),
			fmtPct(100*sum.MeanFinalAccuracy),
			fmt.Sprintf("%.0f", sum.MeanConvergenceRound))
	}
}

// Fig9 reproduces paper Figure 9: PPW, convergence speedup and final
// accuracy of Fixed (Best), Adaptive (BO), Adaptive (GA) and FedGPO
// across the three workloads in the paper's realistic environment
// (co-running interference + Wi-Fi bandwidth variation, §4.2).
func Fig9(o Options) Table {
	t := Table{
		ID:     "fig9",
		Title:  "FedGPO vs baselines across workloads (realistic environment)",
		Header: []string{"workload", "controller", "PPW (norm)", "conv speedup", "accuracy", "conv round"},
	}
	for _, w := range workload.All() {
		s := o.apply(Realistic(w))
		compareRows(&t, w.Name, contenders(w, s, o), s, o.seeds())
	}
	t.Notes = append(t.Notes,
		"paper expectation: FedGPO best on PPW for every workload (paper: 4.1x/3.2x/3.5x over Fixed (Best)), maintaining accuracy")
	return t
}

// Fig10 reproduces paper Figure 10: the same comparison for CNN-MNIST
// under (a) no runtime variance, (b) on-device interference, and
// (c) network variance.
func Fig10(o Options) Table {
	w := workload.CNNMNIST()
	t := Table{
		ID:     "fig10",
		Title:  "adaptability to runtime variance (CNN-MNIST)",
		Header: []string{"scenario", "controller", "PPW (norm)", "conv speedup", "accuracy", "conv round"},
	}
	for _, s := range []Scenario{
		o.apply(Ideal(w)),
		o.apply(InterferenceOnly(w)),
		o.apply(UnstableNetworkOnly(w)),
	} {
		compareRows(&t, s.Name, contenders(w, s, o), s, o.seeds())
	}
	t.Notes = append(t.Notes,
		"paper expectation: FedGPO's margin widens under variance (paper: 5.0x/4.2x/3.0x over Fixed/BO/GA)")
	return t
}

// Fig11 reproduces paper Figure 11: the comparison for CNN-MNIST with
// and without data heterogeneity.
func Fig11(o Options) Table {
	w := workload.CNNMNIST()
	t := Table{
		ID:     "fig11",
		Title:  "adaptability to data heterogeneity (CNN-MNIST)",
		Header: []string{"scenario", "controller", "PPW (norm)", "conv speedup", "accuracy", "conv round"},
	}
	for _, s := range []Scenario{
		o.apply(Ideal(w)),
		o.apply(NonIIDScenario(w)),
	} {
		compareRows(&t, s.Name, contenders(w, s, o), s, o.seeds())
	}
	t.Notes = append(t.Notes,
		"paper expectation: under non-IID FedGPO achieves 6.2x/1.9x/1.3x over Fixed/BO/GA by shrinking E and K")
	return t
}

// Fig12 reproduces paper Figure 12: FedGPO against the prior-work
// tuners FedEX and ABS on CNN-MNIST, without variance, with runtime
// variance, and with data heterogeneity.
func Fig12(o Options) Table {
	w := workload.CNNMNIST()
	t := Table{
		ID:     "fig12",
		Title:  "FedGPO vs FedEX vs ABS (CNN-MNIST)",
		Header: []string{"scenario", "controller", "PPW (norm)", "conv speedup", "accuracy", "conv round"},
	}
	for _, s := range []Scenario{
		o.apply(Ideal(w)),
		o.apply(Realistic(w)),
		o.apply(NonIIDScenario(w)),
	} {
		cs := []contender{
			{"FedEX", func() fl.Controller { return baseline.NewFedEX(1) }},
			{"ABS", func() fl.Controller { return abs.New(abs.DefaultConfig()) }},
			{"FedGPO", fedgpoWarmFactory(s)},
		}
		// Normalize to FedEX (first row) so the FedGPO rows read as the
		// paper's "1.5x over FedEX" style ratios.
		compareRows(&t, s.Name, cs, s, o.seeds())
	}
	t.Notes = append(t.Notes,
		"paper expectation: FedGPO > FedEX > ABS (paper: 1.5x and 2.1x average energy-efficiency improvements)")
	return t
}
