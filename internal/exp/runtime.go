package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"fedgpo/internal/core"
	"fedgpo/internal/fl"
	"fedgpo/internal/runtime"
	"fedgpo/internal/telemetry"
)

// Runtime bundles the experiment runtime shared by every figure
// generated under one Options value: the execution backend (in-process
// worker pool or multi-process shard coordinator), the
// content-addressed run cache, the inner (per-round) worker budget,
// the pretrained-controller cache, and the structured result store.
type Runtime struct {
	exec  *runtime.Executor
	cache *runtime.Cache
	store *runtime.Store
	// record gates result-store retention: full per-round histories for
	// every cell are kept in memory only when a consumer asked for them
	// (see EnableStore).
	record bool
	// innerMu guards inner and innerAuto: a listening worker applies
	// coordinator-forwarded budgets from concurrent wire sessions while
	// jobs read the pool, so the pair is swapped and read under a lock.
	innerMu sync.Mutex
	// inner is the shared per-round participant fan-out budget wired
	// into every fl.Config this runtime builds (nil = serial rounds).
	inner *fl.Pool
	// innerAuto derives the inner budget from each batch's shape
	// instead of a flat setting; see SetInnerParallel.
	innerAuto bool
	// onJob, when set, observes every job a batch submits (test hook
	// for spec round-trip coverage).
	onJob func(runtime.Job)
	// col accumulates the runtime's telemetry: job-level hit/run
	// counters from the executor, cache-level I/O from the cache,
	// dispatch latency and retry/failover counters from the
	// coordinator, and per-job phase timings folded in per result.
	col *telemetry.Collector
	// traceLevel, when non-empty, is stamped onto every JobSpec this
	// runtime compiles (telemetry.TraceDecisions records RL decision
	// traces as spec-addressed cache artifacts).
	traceLevel string

	// The pretrained-controller singleflight: one warm-up per distinct
	// (scenario, controller config, warm-up seed/rounds) key per
	// process, no matter how many cells across how many workers request
	// the same pretrained Q-tables concurrently.
	pretrainMu   sync.Mutex
	pretrains    map[string]*pretrainEntry
	pretrainRuns atomic.Int64
	// builtSnaps holds the serialized artifacts of snapshots this
	// process built from scratch, keyed by pretrain key and guarded by
	// pretrainMu. Each artifact is taken exactly once, by the first
	// finished job sharing the key (attachBuiltSnapshot), which carries
	// it back to the coordinator over wire v5.
	builtSnaps map[string]json.RawMessage
}

// pretrainEntry is one pretrain key's singleflight slot. A plain
// sync.Once would be wrong here: a panic inside the warm-up would mark
// the once done and hand every sibling cell a zero-value snapshot —
// an untrained controller producing plausible-but-wrong results that
// would then be cached. Instead the entry records the outcome and
// replays a panic to every requester, so each affected cell fails
// loudly (and is never cached) exactly like the cell that warmed it.
type pretrainEntry struct {
	mu       sync.Mutex
	done     bool
	snap     core.Snapshot
	panicked any
}

// NewRuntime builds a runtime on the in-process pool backend with the
// given worker count (0 selects GOMAXPROCS) and optional on-disk cache
// directory ("" keeps the run cache in memory only).
func NewRuntime(parallel int, cacheDir string) (*Runtime, error) {
	cache, err := runtime.NewCache(cacheDir)
	if err != nil {
		return nil, err
	}
	return NewRuntimeWithBackend(runtime.NewPoolBackend(parallel), cache), nil
}

// NewRuntimeWithBackend builds a runtime on an explicit execution
// backend and cache — the constructor behind the CLIs' -backend flag.
// With a ProcBackend the batch is partitioned by canonical key across
// worker subprocesses; sharing the cache's directory with the workers
// gives run results and pretrained-controller snapshots one home, so
// hit semantics match the pool backend's exactly.
func NewRuntimeWithBackend(b runtime.Backend, cache *runtime.Cache) *Runtime {
	r := &Runtime{
		exec:      runtime.NewExecutorBackend(b, cache),
		cache:     cache,
		store:     runtime.NewStore(),
		pretrains: make(map[string]*pretrainEntry),
		col:       telemetry.NewCollector(),
	}
	// Telemetry is wired by construction: executor (job-level counters,
	// per-job phase fold-in), cache (I/O timings, mem/disk hit split)
	// and, when the backend is a coordinator, per-endpoint dispatch
	// latency plus retry/failover counters.
	r.exec.SetCollector(r.col)
	cache.SetCollector(r.col)
	if bc, ok := b.(interface {
		SetCollector(*telemetry.Collector)
	}); ok {
		bc.SetCollector(r.col)
	}
	// A coordinator backend additionally gets the run cache so worker-
	// returned pretrain snapshots (wire v5) persist under their own keys
	// and re-ship fleet-wide.
	if bc, ok := b.(interface {
		SetCache(*runtime.Cache)
	}); ok {
		bc.SetCache(cache)
	}
	// Under the adaptive split the inner budget is retuned per batch
	// from the number of cells actually dispatched — cache hits don't
	// occupy workers, so a warm batch with one invalidated cell gets
	// the full fan-out, not a budget sized to the nominal batch. The
	// hook runs on the batch's calling goroutine before any job body
	// starts.
	r.exec.SetDispatch(func(misses int) {
		r.innerMu.Lock()
		defer r.innerMu.Unlock()
		if r.innerAuto {
			r.inner = fl.NewPool(adaptiveInnerBudget(misses, r.exec.Workers()))
		}
	})
	return r
}

// Stats returns the executor's lifetime cache-hit/run counters.
func (r *Runtime) Stats() runtime.Stats { return r.exec.Stats() }

// Close flushes the runtime's deferred cache maintenance (queued LRU
// mtime touches). Call it when a process is done running batches —
// after the last figure of a report, or when a worker's serve loop
// returns. The runtime stays usable afterwards.
func (r *Runtime) Close() error { return r.exec.Close() }

// SetTraceLevel sets the RL decision-trace level stamped onto every
// job this runtime compiles: telemetry.TraceDecisions enables
// per-round decision recording for traceable cells, "" (the default)
// disables it. Tracing never changes canonical keys or result bytes;
// it only adds spec-addressed trace artifacts to the cache.
func (r *Runtime) SetTraceLevel(level string) { r.traceLevel = level }

// TraceLevel returns the configured decision-trace level.
func (r *Runtime) TraceLevel() string { return r.traceLevel }

// Metrics snapshots the runtime's accumulated telemetry, with the
// coordinator's authoritative per-endpoint dispatch counters folded
// onto the endpoints' latency histograms. The snapshot's job-level
// counters reconcile with Stats by construction: SimsExecuted ==
// Stats().Runs and CacheHits == Stats().Hits.
func (r *Runtime) Metrics() telemetry.Metrics {
	m := r.col.Snapshot()
	for _, ep := range r.exec.Stats().Endpoints {
		m.SetEndpointCounts(ep.Endpoint, telemetry.EndpointCounts{
			Dispatched: ep.Dispatched, Retried: ep.Retried, Failed: ep.Failed,
			BytesSent: ep.BytesSent, BytesRecv: ep.BytesRecv,
			Frames: ep.Frames, Specs: ep.Specs,
			AffinityHits: ep.AffinityHits, AffinityMisses: ep.AffinityMisses,
			Stolen: ep.Stolen, SnapBytesSent: ep.SnapBytesSent,
		})
	}
	return m
}

// Workers returns the execution backend's parallelism.
func (r *Runtime) Workers() int { return r.exec.Workers() }

// SetInnerParallel sets the shared per-round participant fan-out
// budget: up to n extra goroutines, lent across every simulation this
// runtime executes concurrently (n == 0 runs rounds serially). A
// negative n selects the adaptive split: each batch derives its inner
// budget from its own shape (see adaptiveInnerBudget) — wide fan-out
// when a few large cells would leave workers idle, none when the
// batch already saturates the outer pool. Results are byte-identical
// for any value — the budget shapes wall-clock only, so it
// deliberately does not participate in cache keys. It is safe to call
// concurrently with running jobs (a listening worker applies
// coordinator-forwarded wire budgets between jobs); cells already
// running keep the pool they started with.
func (r *Runtime) SetInnerParallel(n int) {
	r.innerMu.Lock()
	defer r.innerMu.Unlock()
	r.innerAuto = n < 0
	if r.innerAuto {
		n = 0
	}
	r.inner = fl.NewPool(n)
}

// InnerParallel returns the current inner worker budget (under the
// adaptive split, the budget derived for the most recent batch).
func (r *Runtime) InnerParallel() int {
	r.innerMu.Lock()
	defer r.innerMu.Unlock()
	return r.inner.Extra()
}

// adaptiveInnerBudget derives the inner (per-round participant)
// worker budget from a batch's shape: a batch with fewer cells than
// outer workers leaves cores idle, so the spare workers are lent to
// intra-round fan-out; a batch with at least as many cells as workers
// keeps the tokens for the outer pool, retaining a single shared
// helper so straggler cells at a batch's tail can still fan out.
func adaptiveInnerBudget(cells, workers int) int {
	if cells <= 0 || workers <= 1 {
		return 0
	}
	if cells >= workers {
		return 1
	}
	return workers - cells
}

// config materializes a scenario for a seed with the runtime's inner
// worker budget attached. Every fl.Config this runtime runs — cells,
// probes and pretraining warm-ups alike — is built here.
func (r *Runtime) config(s ScenarioSpec, seed int64) fl.Config {
	cfg := s.Config(seed)
	r.innerMu.Lock()
	cfg.Inner = r.inner
	r.innerMu.Unlock()
	return cfg
}

// PretrainStats reports the pretrained-controller cache's activity:
// runs is how many Q-table warm-ups actually executed in this process,
// distinct how many distinct pretrain keys were requested. On a cold
// run runs == distinct (exactly one warm-up per scenario/config); on a
// warm disk-cache rerun runs == 0. Under the procs backend the
// warm-ups execute inside worker subprocesses, so the coordinator's
// counters stay at zero.
func (r *Runtime) PretrainStats() (runs, distinct int) {
	r.pretrainMu.Lock()
	defer r.pretrainMu.Unlock()
	return int(r.pretrainRuns.Load()), len(r.pretrains)
}

// pretrainedSnapshot returns (building at most once per process, and
// at most once ever under a persistent cache directory) the pretrained
// FedGPO controller snapshot for a scenario. The snapshot is always
// served through the content-addressed cache's JSON round-trip, so
// every consumer sees identical bytes regardless of which cell warmed
// the cache first.
func (r *Runtime) pretrainedSnapshot(s ScenarioSpec, cfg core.Config, warmSeed int64, warmRounds int, key string) core.Snapshot {
	r.pretrainMu.Lock()
	e, ok := r.pretrains[key]
	if !ok {
		e = &pretrainEntry{}
		r.pretrains[key] = e
	}
	r.pretrainMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.panicked != nil {
		// The warm-up is deterministic, so retrying would fail the same
		// way; replay the failure for every cell that depends on it.
		panic(e.panicked)
	}
	if e.done {
		return e.snap
	}
	if !r.cache.Get(key, &e.snap) {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					e.panicked = rec
					panic(rec)
				}
			}()
			warmCfg := r.config(s, warmSeed)
			warmCfg.MaxRounds = warmRounds
			snap := core.PretrainSnapshot(cfg, warmCfg)
			r.pretrainRuns.Add(1)
			_ = r.cache.Put(key, snap)
			// Keep the serialized artifact so the first finished job
			// sharing this key can carry it to the coordinator (wire v5)
			// for fleet-wide reuse. The bytes match the cache payload
			// exactly, so a coordinator persisting them writes the entry
			// this process would have.
			if data, err := json.Marshal(snap); err == nil {
				r.pretrainMu.Lock()
				if r.builtSnaps == nil {
					r.builtSnaps = make(map[string]json.RawMessage)
				}
				r.builtSnaps[key] = data
				r.pretrainMu.Unlock()
			}
			var cached core.Snapshot
			if r.cache.Get(key, &cached) {
				e.snap = cached
			} else {
				// Cache write failed; fall back to the in-memory snapshot
				// (a JSON round-trip is lossless, so behavior is
				// unchanged).
				e.snap = snap
			}
		}()
	}
	e.done = true
	return e.snap
}

// attachBuiltSnapshot moves a freshly built pretrain artifact onto the
// first finished result that shares its affinity key — taken exactly
// once, so the artifact crosses the wire a single time no matter how
// many sibling cells follow. The carrying result also counts the
// warm-up in its per-job telemetry (Counters.PretrainRuns), which the
// coordinator folds fleet-wide: a cold sweep's counter equals the
// number of warm-ups that actually executed anywhere in the fleet.
func (r *Runtime) attachBuiltSnapshot(sp JobSpec, res *runtime.Result) {
	key := affinityKey(sp)
	if key == "" {
		return
	}
	r.pretrainMu.Lock()
	data, ok := r.builtSnaps[key]
	if ok {
		delete(r.builtSnaps, key)
	}
	r.pretrainMu.Unlock()
	if !ok {
		return
	}
	res.Snaps = append(res.Snaps, runtime.SnapshotArtifact{Key: key, Data: data})
	if res.Telemetry == nil {
		res.Telemetry = &telemetry.Metrics{}
	}
	res.Telemetry.Counters.PretrainRuns++
}

// InstallSnapshot installs a coordinator-shipped pretrained-controller
// artifact (wire v5, WireRequest.Snaps) into this runtime's pretrain
// singleflight and run cache, so a cell needing key deserializes it
// instead of re-running the warm-up. An entry this process already
// resolved wins — the shipped copy is byte-identical by construction,
// so skipping it changes nothing.
func (r *Runtime) InstallSnapshot(key string, data json.RawMessage) error {
	var snap core.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("exp: installing snapshot %q: %w", key, err)
	}
	r.pretrainMu.Lock()
	e, ok := r.pretrains[key]
	if !ok {
		e = &pretrainEntry{}
		r.pretrains[key] = e
	}
	r.pretrainMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done || e.panicked != nil {
		return nil
	}
	e.snap = snap
	e.done = true
	// Persist like a locally built snapshot would (best effort), so this
	// process's cache directory serves future cold runs too.
	_ = r.cache.Put(key, data)
	return nil
}

// SetProgress installs a per-job progress callback.
func (r *Runtime) SetProgress(fn func(runtime.Progress)) { r.exec.SetProgress(fn) }

// EnableStore turns on result-store retention: from now on every cell
// the runtime runs or serves from cache is recorded, round history
// included. Off by default — a paper-scale report holds hundreds of
// multi-hundred-round histories, dead weight unless something (e.g.
// fedgpo-report's -results flag) will consume them.
func (r *Runtime) EnableStore() { r.record = true }

// StreamStore turns on result recording in streaming mode: every cell
// is appended to path as JSON Lines the moment its batch completes,
// and nothing is retained in memory — the recording path for sweeps
// too large to hold. Call CloseStore when done; runtime.Compact (or
// fedgpo-report -compact-results) rewrites the log as the canonical
// JSON array.
func (r *Runtime) StreamStore(path string) error {
	if err := r.store.StreamTo(path); err != nil {
		return err
	}
	r.record = true
	return nil
}

// CloseStore flushes and closes a streaming store (no-op otherwise),
// surfacing any write error the stream hit along the way.
func (r *Runtime) CloseStore() error { return r.store.Close() }

// Store returns the structured record of the cells retained since
// EnableStore was called (empty otherwise).
func (r *Runtime) Store() *runtime.Store { return r.store }

// cell is one (scenario, contender) simulation cell; crossed with the
// seed set it names the jobs of an experiment.
type cell struct {
	s ScenarioSpec
	c ContenderSpec
}

// RunSpecs compiles a spec batch and executes it through the runtime's
// executor, returning results in spec order — the programmatic entry
// point behind the figure constructors, exposed for benches and
// fleet-level tests.
func (r *Runtime) RunSpecs(specs []JobSpec) []runtime.Result { return r.runSpecs(specs) }

// runSpecs compiles a spec batch and executes it; see runAll.
func (r *Runtime) runSpecs(specs []JobSpec) []runtime.Result {
	jobs := make([]runtime.Job, len(specs))
	for i, sp := range specs {
		jobs[i] = r.Job(sp)
	}
	return r.runAll(jobs)
}

// runAll executes a job batch, records the results in the store, and
// re-panics on job failure — matching fl.Run's panic-on-invalid-config
// semantics while still letting the rest of the batch drain.
func (r *Runtime) runAll(jobs []runtime.Job) []runtime.Result {
	if r.onJob != nil {
		for _, j := range jobs {
			r.onJob(j)
		}
	}
	results := r.exec.RunAll(jobs)
	// Tag each result's wall-clock provenance. This happens after the
	// executor's cache write-backs, so cache entries never carry the
	// tag and stay byte-identical across cold and warm runs; only the
	// in-memory results (and the -results store JSON) see it.
	for i := range results {
		if results[i].Cached {
			results[i].Provenance = runtime.ProvenanceReplayed
		} else {
			results[i].Provenance = runtime.ProvenanceMeasured
		}
	}
	if r.record {
		r.store.Add(results...)
	}
	for _, res := range results {
		if res.Err != "" {
			panic(fmt.Sprintf("exp: job %q failed: %s", res.Key, res.Err))
		}
	}
	return results
}

// simSpec names one plain simulation cell: figures, sweeps and the
// grid search all describe their cells here so they share cache
// identity.
func simSpec(s ScenarioSpec, c ContenderSpec, seed int64) JobSpec {
	return JobSpec{Kind: KindSim, Scenario: s, Contender: c, Seed: seed}
}

// summaries fans len(cells) × len(seeds) jobs out over the execution
// backend and aggregates each cell over its seeds in seed order,
// exactly as fl.RunSeeds would — tables built from these summaries are
// byte-identical to the serial path regardless of backend or worker
// count.
func (r *Runtime) summaries(cells []cell, seeds []int64) []fl.Summary {
	specs := make([]JobSpec, 0, len(cells)*len(seeds))
	for _, cl := range cells {
		for _, seed := range seeds {
			specs = append(specs, simSpec(cl.s, cl.c, seed))
		}
	}
	results := r.runSpecs(specs)
	sums := make([]fl.Summary, len(cells))
	for i, cl := range cells {
		per := make([]fl.Result, len(seeds))
		for j := range seeds {
			per[j] = results[i*len(seeds)+j].Sim
		}
		sums[i] = fl.Summarize(cl.s.rounds(), per)
	}
	return sums
}

// SweepStatic runs one static-parameter simulation per entry of params
// on the scenario, fanned out over the options' runtime, and returns
// the per-run results in params order. The cells share their cache
// identity with the figure constructors', so a sweep warms the report
// cache and vice versa.
func SweepStatic(o Options, s ScenarioSpec, params []fl.Params, seed int64) []fl.Result {
	rt := o.runtime()
	specs := make([]JobSpec, len(params))
	for i, p := range params {
		specs[i] = simSpec(s, staticContender(p, ""), seed)
	}
	results := rt.runSpecs(specs)
	out := make([]fl.Result, len(results))
	for i, r := range results {
		out[i] = r.Sim
	}
	return out
}

// SweepScenarios runs one simulation per scenario spec at a single
// static parameter setting, fanned out over the options' runtime, and
// returns the per-run results in spec order — the executor behind
// fedgpo-sweep's -matrix and -scenario-file modes. The cells share
// their cache identity with every other constructor touching the same
// deployments, so a matrix sweep warms the report cache and vice
// versa.
func SweepScenarios(o Options, specs []ScenarioSpec, p fl.Params, seed int64) []fl.Result {
	rt := o.runtime()
	jobSpecs := make([]JobSpec, len(specs))
	for i, s := range specs {
		jobSpecs[i] = simSpec(s, staticContender(p, ""), seed)
	}
	results := rt.runSpecs(jobSpecs)
	out := make([]fl.Result, len(results))
	for i, r := range results {
		out[i] = r.Sim
	}
	return out
}

// gridSearchBest mirrors baseline.GridSearchBest through the runtime:
// same candidate order, same per-candidate seed averaging, same
// first-strictly-greater argmax — but with the grid's cells fanned out
// over the execution backend and individually cached.
func (r *Runtime) gridSearchBest(s ScenarioSpec, grid []fl.Params, seeds []int64) fl.Params {
	cells := make([]cell, len(grid))
	for i, p := range grid {
		cells[i] = cell{s, staticContender(p, "")}
	}
	sums := r.summaries(cells, seeds)
	best, bestPPW := grid[0], math.Inf(-1)
	for i, p := range grid {
		if sums[i].MeanPPW > bestPPW {
			best, bestPPW = p, sums[i].MeanPPW
		}
	}
	return best
}
