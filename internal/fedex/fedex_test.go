package fedex

import (
	"math"
	"testing"

	"fedgpo/internal/stats"
)

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, DefaultConfig(), stats.NewRNG(1)) },
		func() {
			c := DefaultConfig()
			c.StepSize = 0
			New(3, c, stats.NewRNG(1))
		},
		func() {
			c := DefaultConfig()
			c.MinProb = 0.5 // >= 1/n for n=3
			New(3, c, stats.NewRNG(1))
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	o := New(10, DefaultConfig(), stats.NewRNG(1))
	for i := 0; i < 50; i++ {
		idx := o.Suggest()
		o.Observe(float64(idx)) // arbitrary rewards
		p := o.Probabilities()
		sum := 0.0
		for _, v := range p {
			if v < o.cfg.MinProb-1e-12 {
				t.Fatalf("probability %v below floor", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestConcentratesOnBestArm(t *testing.T) {
	// Arm 7 pays 10, everything else pays 0 (with light noise).
	o := New(10, DefaultConfig(), stats.NewRNG(2))
	noise := stats.NewRNG(3)
	for i := 0; i < 600; i++ {
		arm := o.Suggest()
		r := noise.Gaussian(0, 0.2)
		if arm == 7 {
			r += 10
		}
		o.Observe(r)
	}
	if o.Best() != 7 {
		t.Errorf("best arm = %d, want 7 (probs=%v)", o.Best(), o.Probabilities())
	}
	if p := o.Probabilities(); p[7] < 0.5 {
		t.Errorf("best arm probability = %v, want > 0.5", p[7])
	}
}

func TestObserveWithoutSuggestIsNoOp(t *testing.T) {
	o := New(4, DefaultConfig(), stats.NewRNG(1))
	before := o.Probabilities()
	o.Observe(100)
	after := o.Probabilities()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Observe without Suggest changed the distribution")
		}
	}
}

func TestWeightsStayBounded(t *testing.T) {
	o := New(5, DefaultConfig(), stats.NewRNG(4))
	for i := 0; i < 5000; i++ {
		arm := o.Suggest()
		r := -100.0
		if arm == 0 {
			r = 100
		}
		o.Observe(r)
	}
	for _, w := range o.logW {
		if math.IsNaN(w) || math.IsInf(w, 0) || w > 0.001 || w < -26 {
			t.Fatalf("log-weight out of bounds: %v", w)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() []float64 {
		o := New(6, DefaultConfig(), stats.NewRNG(11))
		for i := 0; i < 200; i++ {
			arm := o.Suggest()
			o.Observe(float64(arm % 3))
		}
		return o.Probabilities()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed FedEX runs diverged")
		}
	}
}
