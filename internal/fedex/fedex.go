// Package fedex implements the FedEX baseline (Khodak et al., "Federated
// Hyperparameter Tuning: Challenges, Baselines, and Connections to
// Weight-Sharing", paper reference [29]): round-by-round FL parameter
// adjustment via exponentiated-gradient (Hedge/EXP3-style) updates over
// a discrete configuration set.
//
// The optimizer maintains a log-weight per configuration; each round it
// samples a configuration from the softmax distribution, observes a
// scalar reward, and applies an importance-weighted exponentiated
// gradient step. The paper characterizes FedEX as adapting E and K as
// well as B (robust to data heterogeneity) but with lower sample
// efficiency than FedGPO's Q-learning.
package fedex

import (
	"math"

	"fedgpo/internal/stats"
)

// Config tunes the exponentiated-gradient update.
type Config struct {
	// StepSize is the exponentiated-gradient learning rate (η).
	StepSize float64
	// Baseline smoothing for the reward (variance reduction).
	BaselineAlpha float64
	// MinProb floors the sampling distribution so every arm keeps a
	// nonzero exploration probability.
	MinProb float64
}

// DefaultConfig matches the moderate step sizes used in the FedEX
// paper's experiments.
func DefaultConfig() Config {
	return Config{StepSize: 0.18, BaselineAlpha: 0.2, MinProb: 1e-3}
}

// Optimizer is a Hedge-style sampler over a discrete arm set. Not safe
// for concurrent use.
type Optimizer struct {
	cfg      Config
	logW     []float64
	rng      *stats.RNG
	baseline *stats.EMA
	lastArm  int
	scale    *stats.EMA // running reward magnitude for normalization
}

// New builds an optimizer over n arms. It panics if n <= 0 or the
// config is invalid.
func New(n int, cfg Config, rng *stats.RNG) *Optimizer {
	if n <= 0 {
		panic("fedex: need at least one arm")
	}
	if cfg.StepSize <= 0 || cfg.MinProb < 0 || cfg.MinProb >= 1.0/float64(n) {
		panic("fedex: invalid config")
	}
	return &Optimizer{
		cfg:      cfg,
		logW:     make([]float64, n),
		rng:      rng,
		baseline: stats.NewEMA(cfg.BaselineAlpha),
		lastArm:  -1,
		scale:    stats.NewEMA(0.1),
	}
}

// Probabilities returns the current sampling distribution (softmax of
// the log-weights, floored at MinProb and renormalized).
func (o *Optimizer) Probabilities() []float64 {
	n := len(o.logW)
	maxW := o.logW[0]
	for _, w := range o.logW[1:] {
		if w > maxW {
			maxW = w
		}
	}
	p := make([]float64, n)
	sum := 0.0
	for i, w := range o.logW {
		p[i] = math.Exp(w - maxW)
		sum += p[i]
	}
	for i := range p {
		p[i] = p[i]/sum*(1-float64(n)*o.cfg.MinProb) + o.cfg.MinProb
	}
	return p
}

// Suggest samples an arm from the current distribution.
func (o *Optimizer) Suggest() int {
	o.lastArm = o.rng.Categorical(o.Probabilities())
	return o.lastArm
}

// Observe applies the exponentiated-gradient update for the reward of
// the last suggested arm. Rewards are internally normalized by a
// running magnitude so the step size is scale-free.
func (o *Optimizer) Observe(reward float64) {
	if o.lastArm < 0 {
		return
	}
	o.scale.Add(math.Abs(reward) + 1e-9)
	norm := o.scale.Value()
	if norm <= 0 {
		norm = 1
	}
	base := o.baseline.Value()
	advantage := (reward - base) / norm
	o.baseline.Add(reward)

	p := o.Probabilities()
	// Importance-weighted gradient: only the played arm's weight moves.
	o.logW[o.lastArm] += o.cfg.StepSize * advantage / p[o.lastArm] * p[o.lastArm]
	// (the p/p cancellation is kept explicit to mirror the EXP3 form
	// with full-information feedback on the played arm)
	o.lastArm = -1
	o.clampWeights()
}

// clampWeights keeps the log-weights bounded so the softmax never
// saturates into a degenerate one-hot distribution.
func (o *Optimizer) clampWeights() {
	const bound = 25.0
	maxW := o.logW[0]
	for _, w := range o.logW[1:] {
		if w > maxW {
			maxW = w
		}
	}
	for i := range o.logW {
		o.logW[i] -= maxW // re-center
		if o.logW[i] < -bound {
			o.logW[i] = -bound
		}
	}
}

// Best returns the arm with the highest weight.
func (o *Optimizer) Best() int {
	best := 0
	for i, w := range o.logW {
		if w > o.logW[best] {
			best = i
		}
	}
	return best
}
