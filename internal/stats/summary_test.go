package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanSumMaxMin(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Max(xs) != 4 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Min(xs) != 1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice behaviour changed")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element StdDev should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEqual(got, 4, 1e-9) {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean([]float64{-1, 0, 8, 2}); !almostEqual(got, 4, 1e-9) {
		t.Errorf("GeoMean skipping non-positive = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean should be 0")
	}
}

func TestMedianAndPercentile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("P25 = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	for _, v := range Normalize([]float64{1, 2}, 0) {
		if v != 0 {
			t.Fatal("zero base should produce zeros")
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaved")
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{110, 90}, []float64{100, 100})
	if !almostEqual(got, 10, 1e-12) {
		t.Errorf("MAPE = %v, want 10", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("MAPE with zero ref = %v, want 0", got)
	}
}

func TestMAPEPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{3, 9, 9, 1}
	if ArgMax(xs) != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", ArgMax(xs))
	}
	if ArgMin(xs) != 3 {
		t.Errorf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("empty Arg* should be -1")
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v, want 10", got)
	}
	if got := e.Add(20); got != 15 {
		t.Errorf("second Add = %v, want 15", got)
	}
	if e.Value() != 15 {
		t.Errorf("Value = %v", e.Value())
	}
}

func TestEMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEMA(0)
}

func TestPropertyMeanBounds(t *testing.T) {
	// Property: Min <= Mean <= Max for any non-empty slice.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return Min(xs)-1e-6 <= m && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p, q := float64(a%101), float64(b%101)
		if p > q {
			p, q = q, p
		}
		return Percentile(xs, p) <= Percentile(xs, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
