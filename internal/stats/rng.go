// Package stats provides the deterministic random-number and statistics
// substrate used by every stochastic component of the FedGPO simulator:
// Gaussian and Dirichlet sampling for network variance and non-IID data
// partitioning, categorical draws for participant selection, and summary
// statistics for experiment reporting.
//
// All randomness in the repository flows through RNG so that experiments
// are reproducible bit-for-bit for a given seed.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of all randomness used by the simulator.
// It wraps math/rand.Rand and adds the distributions the paper's
// methodology calls for (Gaussian bandwidth, Dirichlet(0.1) data skew).
//
// RNG is not safe for concurrent use; give each goroutine its own
// stream via Split.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream. The child is seeded from
// the parent's stream, so a fixed sequence of Split calls on a fixed
// seed yields a fixed family of streams.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Gaussian returns a sample from N(mean, stddev^2).
func (g *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// TruncGaussian returns a Gaussian sample clamped to [lo, hi].
// The paper models wireless bandwidth as Gaussian; clamping keeps the
// sample physically meaningful (bandwidth cannot be negative).
func (g *RNG) TruncGaussian(mean, stddev, lo, hi float64) float64 {
	v := g.Gaussian(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Exponential returns a sample from Exp(rate). It panics if rate <= 0.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential rate must be positive")
	}
	return g.r.ExpFloat64() / rate
}

// gammaSample draws from Gamma(alpha, 1) using Marsaglia-Tsang for
// alpha >= 1 and the boost trick for alpha < 1. It is the kernel of
// Dirichlet sampling.
func (g *RNG) gammaSample(alpha float64) float64 {
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.gammaSample(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet returns a sample from Dirichlet(alpha_1 ... alpha_n) given
// by the concentration slice. The result sums to 1 (within float error)
// and has len(alpha) entries. It panics if alpha is empty or contains a
// non-positive entry.
func (g *RNG) Dirichlet(alpha []float64) []float64 {
	if len(alpha) == 0 {
		panic("stats: Dirichlet needs at least one concentration")
	}
	out := make([]float64, len(alpha))
	sum := 0.0
	for i, a := range alpha {
		if a <= 0 {
			panic("stats: Dirichlet concentrations must be positive")
		}
		out[i] = g.gammaSample(a)
		sum += out[i]
	}
	if sum == 0 {
		// Pathologically small concentrations can underflow every
		// component; fall back to a uniform simplex point.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SymmetricDirichlet returns a sample from Dirichlet with n components
// all sharing concentration alpha. The paper partitions non-IID data
// with a Dirichlet of concentration 0.1.
func (g *RNG) SymmetricDirichlet(n int, alpha float64) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = alpha
	}
	return g.Dirichlet(a)
}

// Categorical draws an index with probability proportional to the
// supplied non-negative weights. It panics if weights is empty or all
// weights are zero/negative.
func (g *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: Categorical needs at least one weight")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: Categorical needs a positive total weight")
	}
	x := g.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if x < acc {
			return i
		}
	}
	// Float round-off can leave x just above acc; return the last
	// positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return 0
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// PermInto fills p with a random permutation of [0, len(p)), consuming
// exactly the same draws as Perm(len(p)) — the result and the RNG's
// subsequent stream are identical, only the allocation is the caller's.
// It exists for the simulator's per-round participant selection, which
// would otherwise allocate a fresh permutation every round.
func (g *RNG) PermInto(p []int) {
	// This replicates math/rand.(*Rand).Perm exactly, including the
	// redundant i=0 iteration: that iteration draws from the source, so
	// skipping it would fork the stream (the same Go 1 compatibility
	// note appears in math/rand itself).
	for i := 0; i < len(p); i++ {
		j := g.r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly
// from [0, n). It panics if k > n or k < 0.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: sample size out of range")
	}
	p := g.r.Perm(n)
	out := make([]int, k)
	copy(out, p[:k])
	return out
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Shuffle randomly permutes a slice of ints in place.
func (g *RNG) Shuffle(xs []int) {
	g.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
