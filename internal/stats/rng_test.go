package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a1 := NewRNG(7).Split()
	a2 := NewRNG(7).Split()
	for i := 0; i < 50; i++ {
		if a1.Float64() != a2.Float64() {
			t.Fatalf("split streams from same parent seed diverged at %d", i)
		}
	}
	parent := NewRNG(7)
	c1, c2 := parent.Split(), parent.Split()
	same := true
	for i := 0; i < 20; i++ {
		if c1.Float64() != c2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("sibling splits produced identical streams")
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewRNG(1)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Gaussian(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestTruncGaussianBounds(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := g.TruncGaussian(0, 100, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncGaussian out of bounds: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(3)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(4)
	}
	if mean := sum / float64(n); math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Exponential(4) mean = %v, want ~0.25", mean)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive rate")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestDirichletSumsToOne(t *testing.T) {
	g := NewRNG(4)
	for trial := 0; trial < 100; trial++ {
		p := g.SymmetricDirichlet(10, 0.1)
		if len(p) != 10 {
			t.Fatalf("want 10 components, got %d", len(p))
		}
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative probability %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v, want 1", sum)
		}
	}
}

func TestDirichletLowConcentrationIsSkewed(t *testing.T) {
	// Dirichlet(0.1) should concentrate mass on few classes: that is the
	// whole point of the paper's non-IID partition. Check that the max
	// component is on average far above the uniform 1/n.
	g := NewRNG(5)
	n, trials := 10, 500
	maxSum := 0.0
	for i := 0; i < trials; i++ {
		p := g.SymmetricDirichlet(n, 0.1)
		maxSum += Max(p)
	}
	if avgMax := maxSum / float64(trials); avgMax < 0.5 {
		t.Errorf("Dirichlet(0.1) avg max component = %v, want > 0.5 (skewed)", avgMax)
	}
	// And a high concentration should be near uniform.
	maxSum = 0
	for i := 0; i < trials; i++ {
		p := g.SymmetricDirichlet(n, 100)
		maxSum += Max(p)
	}
	if avgMax := maxSum / float64(trials); avgMax > 0.2 {
		t.Errorf("Dirichlet(100) avg max component = %v, want near 1/10", avgMax)
	}
}

func TestDirichletPanics(t *testing.T) {
	g := NewRNG(1)
	for _, alpha := range [][]float64{{}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for alpha=%v", alpha)
				}
			}()
			g.Dirichlet(alpha)
		}()
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	g := NewRNG(6)
	counts := make([]int, 3)
	n := 60000
	for i := 0; i < n; i++ {
		counts[g.Categorical([]float64{1, 2, 3})]++
	}
	want := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i, c := range counts {
		got := float64(c) / float64(n)
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("category %d frequency = %v, want ~%v", i, got, want[i])
		}
	}
}

func TestCategoricalSkipsNonPositive(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if idx := g.Categorical([]float64{0, -1, 5, 0}); idx != 2 {
			t.Fatalf("picked zero-weight category %d", idx)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(8)
	s := g.SampleWithoutReplacement(20, 10)
	if len(s) != 10 {
		t.Fatalf("want 10 samples, got %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 20 {
			t.Fatalf("sample %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when k > n")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

func TestBernoulliEdges(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestDirichletPropertySimplex(t *testing.T) {
	// Property: any positive concentration vector yields a point on the
	// simplex.
	f := func(seed int64, rawAlpha uint8, n uint8) bool {
		comp := int(n%8) + 2
		alpha := 0.05 + float64(rawAlpha%100)/25.0
		p := NewRNG(seed).SymmetricDirichlet(comp, alpha)
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 50, 200} {
		a, b := NewRNG(99), NewRNG(99)
		want := a.Perm(n)
		got := make([]int, n)
		b.PermInto(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PermInto[%d]=%d, Perm=%d", n, i, got[i], want[i])
			}
		}
		// The two generators must also have consumed identical draws, so
		// their subsequent streams agree.
		for i := 0; i < 5; i++ {
			if x, y := a.Int63(), b.Int63(); x != y {
				t.Fatalf("n=%d: stream diverged after permutation (draw %d: %d vs %d)", n, i, x, y)
			}
		}
	}
}
