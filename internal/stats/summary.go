package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// skipped; an empty or all-non-positive slice yields 0. Experiment
// summaries use the geometric mean for speedup/PPW ratios, which is the
// conventional aggregate for normalized performance numbers.
func GeoMean(xs []float64) float64 {
	logSum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Normalize returns xs scaled so that base maps to 1.0. It is used to
// report values "normalized to Fixed (Best)" as the paper's figures do.
// A zero base yields a zero slice.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MAPE returns the mean absolute percentage error of predictions
// against references, in percent. Reference entries equal to zero are
// skipped. Table 5 reports FedGPO's selection accuracy as
// 100 - MAPE-style deviation from the per-round oracle.
func MAPE(pred, ref []float64) float64 {
	if len(pred) != len(ref) {
		panic("stats: MAPE requires equal-length slices")
	}
	s, n := 0.0, 0
	for i := range pred {
		if ref[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-ref[i]) / math.Abs(ref[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// ArgMax returns the index of the maximum element, or -1 for empty xs.
// Ties resolve to the lowest index.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element, or -1 for empty xs.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// EMA maintains an exponential moving average. A zero EMA is ready to
// use with the given alpha set via NewEMA.
type EMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEMA returns an EMA with smoothing factor alpha in (0, 1].
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EMA alpha must be in (0,1]")
	}
	return &EMA{alpha: alpha}
}

// Add folds a new observation into the average and returns the updated
// value.
func (e *EMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EMA) Value() float64 { return e.value }

// State exposes the average and whether any observation has been
// folded in yet — together with the alpha, the EMA's full state, so
// learned components (Q-tables, energy normalizers) can be
// snapshotted and restored bit-for-bit.
func (e *EMA) State() (value float64, initialized bool) {
	return e.value, e.init
}

// Restore overwrites the average with a previously captured State.
func (e *EMA) Restore(value float64, initialized bool) {
	e.value = value
	e.init = initialized
}
