package runtime

import (
	"encoding/json"
	"fmt"
	"io"

	"fedgpo/internal/runtime/wire"
)

// WireBytesPerCell measures what one cell costs on the wire under each
// protocol generation, for a concrete request/response workload: v3
// ships every message as one newline-delimited JSON value; v4 ships
// requests in compressed batch envelopes of the given size and each
// response as its own compressed envelope frame, exactly as the
// coordinator and serveBatches do. It is a measurement helper (the
// bench harness's wire_bytes_per_cell metric), not a transport: no
// handshake bytes are included, since those amortize across a session.
func WireBytesPerCell(reqs []WireRequest, resps []WireResponse, batch int) (v3, v4 float64, err error) {
	if len(reqs) == 0 {
		return 0, 0, fmt.Errorf("runtime: wire metering needs at least one request")
	}
	if batch < 1 {
		batch = 1
	}
	var v3Bytes int64
	count := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		v3Bytes += int64(len(b)) + 1 // json.Encoder terminates with '\n'
		return nil
	}
	for _, r := range reqs {
		if err := count(r); err != nil {
			return 0, 0, err
		}
	}
	for _, r := range resps {
		if err := count(r); err != nil {
			return 0, 0, err
		}
	}

	var v4Bytes int64
	frame := func(env wireEnvelope) error {
		b, err := json.Marshal(env)
		if err != nil {
			return err
		}
		n, err := wire.WriteFrame(io.Discard, b)
		v4Bytes += int64(n)
		return err
	}
	for i := 0; i < len(reqs); i += batch {
		end := i + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := frame(wireEnvelope{Reqs: reqs[i:end]}); err != nil {
			return 0, 0, err
		}
	}
	for _, r := range resps {
		if err := frame(wireEnvelope{Resps: []WireResponse{r}}); err != nil {
			return 0, 0, err
		}
	}
	cells := float64(len(reqs))
	return float64(v3Bytes) / cells, float64(v4Bytes) / cells, nil
}
