package runtime

import (
	"sort"
	"sync"
)

// affGroup is one affinity group within a batch: the jobs sharing a
// pretrain affinity key, plus the endpoint currently planned to run
// them (home). Groups are the unit of placement — keeping a group
// whole keeps its warm-up singular, because every process-level
// pretrain cache is singleflighted per key.
type affGroup struct {
	key  string
	jobs []int // job indexes not yet handed to a session
	home int
	// touched flips once home has started the group: from then on its
	// warm-up is (or soon will be) running there, and moving the rest
	// of the group elsewhere would pay a second warm-up — unless the
	// coordinator already holds the group's snapshot to ship along.
	touched bool
}

// affinityQueue is the affinity-aware dispatcher (-route=affinity, the
// default). At construction it groups the batch by Job.Affinity and
// assigns each group a home endpoint — capacity-weighted, least-loaded
// tiebreak (assignGroups) — while jobs with no affinity key go to a
// shared overflow FIFO that any endpoint drains. pop(ep) serves an
// endpoint its own groups first, then overflow, and only then steals:
//
//  1. whole groups whose home endpoint has no live sessions left
//     (crashed fleet members must not strand work — PR 5's liveness
//     contract);
//  2. whole untouched groups from busy endpoints (migrating an
//     unstarted group rebalances load without splitting any warm-up);
//  3. single jobs out of touched groups, but only once the coordinator
//     holds the group's snapshot artifact — the thief's request
//     pre-pushes it, so the stolen cell deserializes instead of
//     re-warming.
//
// When none of that is eligible the session blocks until a snapshot
// arrives (wake), an endpoint dies (endpointDone), work is requeued,
// or the batch finishes. Placement is the only thing this changes:
// results stay byte-identical to pull-order dispatch.
type affinityQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// groups in deterministic assignment order (size desc, key asc);
	// byEp indexes them by current home.
	groups   []*affGroup
	byEp     [][]*affGroup
	overflow []int
	homeOf   map[string]int
	affinity []string // job index -> affinity key ("" for most jobs)
	active   []bool   // endpoint has live sessions (false after endpointDone)
	tallies  []queueStats
	// hasSnap reports whether the coordinator holds a shippable
	// snapshot for a group key; it is called with mu held and must not
	// call back into the queue.
	hasSnap   func(key string) bool
	remaining int // jobs not yet answered or abandoned
}

// newAffinityQueue builds the dispatcher for one batch. jobs is the
// full batch (indexed by the values in idxs); caps are the endpoints'
// session capacities as currently known.
func newAffinityQueue(jobs []Job, idxs []int, caps []int, hasSnap func(string) bool) *affinityQueue {
	q := &affinityQueue{
		byEp:      make([][]*affGroup, len(caps)),
		homeOf:    make(map[string]int),
		affinity:  make([]string, len(jobs)),
		active:    make([]bool, len(caps)),
		tallies:   make([]queueStats, len(caps)),
		hasSnap:   hasSnap,
		remaining: len(idxs),
	}
	q.cond = sync.NewCond(&q.mu)
	for i := range q.active {
		q.active[i] = true
	}
	byKey := make(map[string]*affGroup)
	for _, i := range idxs {
		a := jobs[i].Affinity
		q.affinity[i] = a
		if a == "" {
			q.overflow = append(q.overflow, i)
			continue
		}
		g := byKey[a]
		if g == nil {
			g = &affGroup{key: a}
			byKey[a] = g
			q.groups = append(q.groups, g)
		}
		g.jobs = append(g.jobs, i)
	}
	// Deterministic assignment order: largest groups place first (the
	// classic LPT greedy), key breaking size ties.
	sort.Slice(q.groups, func(i, j int) bool {
		gi, gj := q.groups[i], q.groups[j]
		if len(gi.jobs) != len(gj.jobs) {
			return len(gi.jobs) > len(gj.jobs)
		}
		return gi.key < gj.key
	})
	sizes := make([]int, len(q.groups))
	for i, g := range q.groups {
		sizes[i] = len(g.jobs)
	}
	for i, home := range assignGroups(sizes, caps) {
		g := q.groups[i]
		g.home = home
		q.homeOf[g.key] = home
		q.byEp[home] = append(q.byEp[home], g)
	}
	return q
}

// assignGroups places groups (given in descending-size order) onto
// endpoints weighted by capacity: each group goes to the endpoint
// whose relative load after taking it — (load+size)/capacity — is
// smallest, ties to the lowest endpoint index. A capacity-4 endpoint
// therefore absorbs ~4x a capacity-1 endpoint's cells while the
// least-loaded tiebreak keeps equals balanced. Deterministic in its
// inputs.
func assignGroups(sizes, caps []int) []int {
	homes := make([]int, len(sizes))
	if len(caps) == 0 {
		return homes
	}
	load := make([]int, len(caps))
	for i, size := range sizes {
		best, bestScore := 0, 0.0
		for e, c := range caps {
			if c < 1 {
				c = 1
			}
			score := float64(load[e]+size) / float64(c)
			if e == 0 || score < bestScore {
				best, bestScore = e, score
			}
		}
		homes[i] = best
		load[best] += size
	}
	return homes
}

// pop returns the next job for endpoint ep, blocking while one may yet
// become eligible; ok is false once the batch is over.
func (q *affinityQueue) pop(ep int) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if i, ok := q.popOwn(ep); ok {
			return i, true
		}
		if i, ok := q.popSteal(ep); ok {
			return i, true
		}
		if q.remaining <= 0 {
			return -1, false
		}
		q.cond.Wait()
	}
}

// popOwn serves ep from its own groups, then from overflow. Called
// with mu held.
func (q *affinityQueue) popOwn(ep int) (int, bool) {
	if ep < 0 || ep >= len(q.byEp) {
		ep = 0
		if len(q.byEp) == 0 {
			return q.popOverflow(ep)
		}
	}
	for _, g := range q.byEp[ep] {
		if g.home != ep || len(g.jobs) == 0 {
			continue // migrated away, or drained
		}
		g.touched = true
		q.tallies[ep].affinityHits++
		return q.shift(g), true
	}
	return q.popOverflow(ep)
}

// popOverflow serves ep the oldest overflow job. Requeued affinity
// jobs land here too: running at their group's current home counts as
// a hit, anywhere else as a miss. Called with mu held.
func (q *affinityQueue) popOverflow(ep int) (int, bool) {
	if len(q.overflow) == 0 {
		return -1, false
	}
	i := q.overflow[0]
	q.overflow = q.overflow[1:]
	if a := q.affinity[i]; a != "" && ep >= 0 && ep < len(q.tallies) {
		if q.homeOf[a] == ep {
			q.tallies[ep].affinityHits++
		} else {
			q.tallies[ep].affinityMisses++
		}
	}
	return i, true
}

// popSteal takes work planned for another endpoint, in the order that
// preserves the one-warm-up-per-group guarantee. Called with mu held.
func (q *affinityQueue) popSteal(ep int) (int, bool) {
	if ep < 0 || ep >= len(q.byEp) {
		return -1, false
	}
	// 1. Adopt whole groups stranded on endpoints with no live
	// sessions. Touched or not — nobody else will run them.
	for _, g := range q.groups {
		if len(g.jobs) > 0 && g.home != ep && !q.active[g.home] {
			return q.adopt(g, ep), true
		}
	}
	// 2. Adopt whole untouched groups from live endpoints: their
	// warm-up hasn't started anywhere, so migrating the group costs
	// nothing and drains stragglers.
	for _, g := range q.groups {
		if len(g.jobs) > 0 && g.home != ep && !g.touched {
			return q.adopt(g, ep), true
		}
	}
	// 3. Steal singles out of touched groups only once their snapshot
	// is shippable: the stolen cell's request pre-pushes it, so no
	// second warm-up runs.
	if q.hasSnap != nil {
		for _, g := range q.groups {
			if len(g.jobs) > 0 && g.home != ep && q.hasSnap(g.key) {
				q.tallies[ep].stolen++
				q.tallies[ep].affinityMisses++
				return q.shift(g), true
			}
		}
	}
	return -1, false
}

// adopt migrates a whole group to a new home and pops its next job.
// Every remaining job counts as stolen (it runs away from the planned
// home) but future pops are hits — the group is co-located at its new
// home. Called with mu held.
func (q *affinityQueue) adopt(g *affGroup, ep int) int {
	q.tallies[ep].stolen += int64(len(g.jobs))
	g.home = ep
	q.homeOf[g.key] = ep
	q.byEp[ep] = append(q.byEp[ep], g)
	g.touched = true
	q.tallies[ep].affinityHits++
	return q.shift(g)
}

// shift removes and returns the group's next job. Called with mu held.
func (q *affinityQueue) shift(g *affGroup) int {
	i := g.jobs[0]
	g.jobs = g.jobs[1:]
	return i
}

// take removes up to k more jobs for ep without blocking or stealing —
// the frame top-up. Serving own groups first packs same-key cells into
// the same frame (and the same worker process).
func (q *affinityQueue) take(ep, k int) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []int
	for len(out) < k {
		i, ok := q.popOwn(ep)
		if !ok {
			break
		}
		out = append(out, i)
	}
	return out
}

// requeue gives unanswered jobs back to the fleet via overflow: any
// endpoint may absorb them, their group's current home preferred only
// by the hit/miss tally.
func (q *affinityQueue) requeue(idxs ...int) {
	q.mu.Lock()
	q.overflow = append(q.overflow, idxs...)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// finalize marks one job answered; at zero, blocked pops return done.
func (q *affinityQueue) finalize() {
	q.mu.Lock()
	q.remaining--
	rem := q.remaining
	q.mu.Unlock()
	if rem <= 0 {
		q.cond.Broadcast()
	}
}

// abandoned empties the queue after every session has exited,
// returning the jobs nobody could run.
func (q *affinityQueue) abandoned() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.overflow
	q.overflow = nil
	for _, g := range q.groups {
		items = append(items, g.jobs...)
		g.jobs = nil
	}
	q.remaining = 0
	return items
}

// wake re-examines blocked pops after external state changed — a
// snapshot artifact arrived, so touched groups may now be stealable.
func (q *affinityQueue) wake() { q.cond.Broadcast() }

// endpointDone marks ep as having no live sessions left; its groups
// become adoptable by the rest of the fleet.
func (q *affinityQueue) endpointDone(ep int) {
	q.mu.Lock()
	if ep >= 0 && ep < len(q.active) {
		q.active[ep] = false
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// stats returns ep's scheduling tally.
func (q *affinityQueue) stats(ep int) queueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ep < 0 || ep >= len(q.tallies) {
		return queueStats{}
	}
	return q.tallies[ep]
}
