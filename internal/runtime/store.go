package runtime

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Store is a keyed collection of job results in insertion order — the
// structured record of what a report or sweep actually ran, including
// each cell's JSON round history and summary metrics. It is safe for
// concurrent use.
//
// A store holds results in memory by default. StreamTo switches it to
// streaming mode: every Add appends the result to a JSONL file as the
// cell completes and retains only its key, so a sweep's memory stays
// bounded by the number of cells, not the size of their round
// histories. ReadStore loads either format, and Compact rewrites a
// streamed (possibly duplicated) log as the canonical JSON array.
type Store struct {
	mu    sync.Mutex
	order []string
	byKey map[string]Result

	streaming bool
	stream    *os.File
	sw        *bufio.Writer
	serr      error
}

// NewStore returns an empty in-memory store.
func NewStore() *Store { return &Store{byKey: make(map[string]Result)} }

// StreamTo switches the store to streaming mode: results added from
// now on are appended to path as JSON Lines — one result object per
// line, written as each cell completes — instead of being retained in
// memory. Results already held are flushed to the stream first, in
// insertion order. A repeated key appends a new line; the read path
// keeps the last occurrence, and Compact rewrites the log without the
// shadowed lines. Call Close when done.
func (s *Store) StreamTo(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stream != nil {
		return fmt.Errorf("runtime: store already streaming to %s", s.stream.Name())
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runtime: store stream: %w", err)
	}
	s.streaming = true
	s.stream = f
	s.sw = bufio.NewWriter(f)
	for _, k := range s.order {
		s.append(s.byKey[k])
		// Keep the key, drop the payload: Add needs the key set to keep
		// Len and insertion order dedup-correct across the switch.
		s.byKey[k] = Result{}
	}
	return s.serr
}

// Close flushes and closes the stream file. It is a no-op for an
// in-memory store. The store keeps its key order, so Len still reports
// the distinct-cell count after closing.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stream == nil {
		return nil
	}
	if err := s.sw.Flush(); err != nil && s.serr == nil {
		s.serr = fmt.Errorf("runtime: store stream: %w", err)
	}
	if err := s.stream.Close(); err != nil && s.serr == nil {
		s.serr = fmt.Errorf("runtime: store stream: %w", err)
	}
	s.stream, s.sw = nil, nil
	return s.serr
}

// StreamErr returns the first error the streaming writer hit (nil for
// an in-memory store or a healthy stream). Add cannot return an error
// without breaking its fire-and-forget call sites, so a full disk
// surfaces here and at Close.
func (s *Store) StreamErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serr
}

// append writes one result to the stream. Caller holds mu.
func (s *Store) append(r Result) {
	if s.serr != nil {
		return
	}
	b, err := json.Marshal(r)
	if err == nil {
		_, err = s.sw.Write(append(b, '\n'))
	}
	if err != nil {
		s.serr = fmt.Errorf("runtime: store stream: %w", err)
	}
}

// Add records results; a repeated key keeps its original position and
// is overwritten in place (in streaming mode the new line shadows the
// old one on read).
func (s *Store) Add(rs ...Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rs {
		if _, seen := s.byKey[r.Key]; !seen {
			s.order = append(s.order, r.Key)
		}
		if s.streaming {
			s.byKey[r.Key] = Result{} // key tracked, payload on disk
			if s.stream != nil {
				s.append(r)
			}
			continue
		}
		s.byKey[r.Key] = r
	}
}

// Get returns the result stored under the canonical key. In streaming
// mode results live on disk, not in the map, so Get reports false.
func (s *Store) Get(key string) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.streaming {
		return Result{}, false
	}
	r, ok := s.byKey[key]
	return r, ok
}

// Len returns the number of distinct results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Results returns all results in insertion order (empty in streaming
// mode — the results are on disk; ReadStore loads them back).
func (s *Store) Results() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.streaming {
		return nil
	}
	out := make([]Result, len(s.order))
	for i, k := range s.order {
		out[i] = s.byKey[k]
	}
	return out
}

// RetainedBytes reports the in-memory footprint of the retained
// results as their total encoded size — the quantity streaming mode
// drives to zero. It is a measurement helper for benchmarks, not an
// allocator-accurate RSS.
func (s *Store) RetainedBytes() int64 {
	var n int64
	for _, r := range s.Results() {
		if b, err := json.Marshal(r); err == nil {
			n += int64(len(b))
		}
	}
	return n
}

// WriteFile persists the store as one JSON array in insertion order.
func (s *Store) WriteFile(path string) error {
	b, err := json.MarshalIndent(s.Results(), "", " ")
	if err != nil {
		return fmt.Errorf("runtime: store encode: %w", err)
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadStore loads a store from either on-disk format: the JSON array
// WriteFile produces, or the JSON Lines log StreamTo appends. The
// first non-whitespace byte tells them apart ('[' opens the array;
// every JSONL line opens an object). For a streamed log with repeated
// keys, the last occurrence wins, matching Add's overwrite semantics.
func ReadStore(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	first, err := firstByte(br)
	st := NewStore()
	if err == io.EOF {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runtime: store decode %s: %w", path, err)
	}
	dec := json.NewDecoder(br)
	if first == '[' {
		var rs []Result
		if err := dec.Decode(&rs); err != nil {
			return nil, fmt.Errorf("runtime: store decode %s: %w", path, err)
		}
		st.Add(rs...)
		return st, nil
	}
	for line := 1; ; line++ {
		var r Result
		if err := dec.Decode(&r); err == io.EOF {
			return st, nil
		} else if err != nil {
			return nil, fmt.Errorf("runtime: store decode %s (line %d): %w", path, line, err)
		}
		st.Add(r)
	}
}

// firstByte peeks the first non-whitespace byte without consuming it.
func firstByte(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		default:
			return b, br.UnreadByte()
		}
	}
}

// Compact rewrites a result log as the canonical JSON array: streamed
// JSONL in, WriteFile's format out, duplicate keys collapsed to their
// last occurrence. It accepts either input format, so compacting an
// already-compact store is the identity.
func Compact(src, dst string) error {
	st, err := ReadStore(src)
	if err != nil {
		return err
	}
	return st.WriteFile(dst)
}
