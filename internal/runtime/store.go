package runtime

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Store is a keyed collection of job results in insertion order — the
// structured record of what a report or sweep actually ran, including
// each cell's JSON round history and summary metrics. It is safe for
// concurrent use.
type Store struct {
	mu    sync.Mutex
	order []string
	byKey map[string]Result
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{byKey: make(map[string]Result)} }

// Add records results; a repeated key keeps its original position and
// is overwritten in place.
func (s *Store) Add(rs ...Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rs {
		if _, seen := s.byKey[r.Key]; !seen {
			s.order = append(s.order, r.Key)
		}
		s.byKey[r.Key] = r
	}
}

// Get returns the result stored under the canonical key.
func (s *Store) Get(key string) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byKey[key]
	return r, ok
}

// Len returns the number of distinct results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Results returns all results in insertion order.
func (s *Store) Results() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Result, len(s.order))
	for i, k := range s.order {
		out[i] = s.byKey[k]
	}
	return out
}

// WriteFile persists the store as one JSON array in insertion order.
func (s *Store) WriteFile(path string) error {
	b, err := json.MarshalIndent(s.Results(), "", " ")
	if err != nil {
		return fmt.Errorf("runtime: store encode: %w", err)
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadStore loads a store previously written by WriteFile.
func ReadStore(path string) (*Store, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("runtime: store decode: %w", err)
	}
	st := NewStore()
	st.Add(rs...)
	return st, nil
}
