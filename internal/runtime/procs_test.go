package runtime

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fedgpo/internal/fl"
)

// The procs tests exercise the shard coordinator against a stub worker
// speaking the real wire protocol: the test binary re-executes itself
// (TestMain checks the env var) and serves requests whose "spec" is a
// stubSpec instead of an exp.JobSpec. The coordinator is payload
// agnostic, so the protocol, sharding, retry and executor-integration
// behavior under test is exactly what the fedgpo-worker binary sees.
const stubWorkerEnv = "FEDGPO_TEST_STUB_WORKER"

// stubSpec is the stub worker's job description.
type stubSpec struct {
	// PPW is echoed back as the result's headline metric.
	PPW float64 `json:"ppw"`
	// Fail makes the stub return a job-level error result.
	Fail bool `json:"fail,omitempty"`
	// DieOncePath makes the stub crash the whole process — before
	// responding — unless the file already exists (it is created on the
	// way down, so exactly the first attempt dies).
	DieOncePath string `json:"dieOncePath,omitempty"`
	// Garbage makes the stub write a non-protocol line instead of a
	// response.
	Garbage bool `json:"garbage,omitempty"`
}

func TestMain(m *testing.M) {
	if os.Getenv(stubWorkerEnv) != "" {
		stubWorkerMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func stubWorkerMain() {
	err := ServeWorker(os.Stdin, os.Stdout, func(key string, spec json.RawMessage) Result {
		var s stubSpec
		if err := json.Unmarshal(spec, &s); err != nil {
			return Result{Key: key, Err: "stub: " + err.Error()}
		}
		if s.DieOncePath != "" {
			if _, err := os.Stat(s.DieOncePath); err != nil {
				os.WriteFile(s.DieOncePath, []byte("died"), 0o644)
				os.Exit(3)
			}
		}
		if s.Garbage {
			fmt.Println("this is not a wire response")
			os.Exit(0)
		}
		if s.Fail {
			return Result{Key: key, Err: "stub failure"}
		}
		return Result{Key: key, Sim: fl.Result{PPW: s.PPW}}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// stubJob builds a spec-carrying job for the stub worker. Run is the
// in-process equivalent, so the same jobs can drive PoolBackend.
func stubJob(i int, s stubSpec) Job {
	payload, _ := json.Marshal(s)
	return Job{
		Kind:     "sim",
		Scenario: fmt.Sprintf("stub-%d", i),
		Seed:     int64(i),
		Payload:  payload,
		Run:      func() Result { return Result{Sim: fl.Result{PPW: s.PPW}} },
	}
}

func stubBackend(t *testing.T, procs int) *ProcBackend {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(stubWorkerEnv, "1")
	return NewProcBackend(ProcConfig{WorkerBin: self, Procs: procs})
}

// The coordinator must return results in job order with the same
// payloads the in-process pool produces, for any proc count.
func TestProcBackendMatchesPool(t *testing.T) {
	jobs := make([]Job, 23)
	for i := range jobs {
		jobs[i] = stubJob(i, stubSpec{PPW: float64(i) + 0.5})
	}
	want := NewPoolBackend(4).Run(jobs, nil)
	for _, procs := range []int{1, 2, 5} {
		got := stubBackend(t, procs).Run(jobs, nil)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("procs=%d results differ from pool results", procs)
		}
	}
}

// ShardOf must be a stable total assignment: every job lands on
// exactly one shard, the same one every time.
func TestShardOfStableAndBounded(t *testing.T) {
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("v2|sim|scenario-%d|c|seed=1", i)
		s := ShardOf(key, 7)
		if s < 0 || s >= 7 {
			t.Fatalf("shard %d out of range", s)
		}
		if ShardOf(key, 7) != s {
			t.Fatal("shard assignment unstable")
		}
	}
	if ShardOf("anything", 1) != 0 {
		t.Error("single shard must receive everything")
	}
}

// A worker crash mid-shard must be retried once on a fresh
// subprocess; the batch completes with correct results.
func TestProcBackendRetriesFailedShardOnce(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "died-once")
	jobs := []Job{
		stubJob(0, stubSpec{PPW: 1}),
		stubJob(1, stubSpec{PPW: 2, DieOncePath: marker}),
		stubJob(2, stubSpec{PPW: 3}),
	}
	done := 0
	results := stubBackend(t, 1).Run(jobs, func(int, Result) { done++ })
	for i, want := range []float64{1, 2, 3} {
		if results[i].Err != "" || results[i].Sim.PPW != want {
			t.Errorf("job %d after retry: %+v", i, results[i])
		}
	}
	if done != len(jobs) {
		t.Errorf("done fired %d times, want %d", done, len(jobs))
	}
	if _, err := os.Stat(marker); err != nil {
		t.Error("stub never crashed; the retry path was not exercised")
	}
}

// A shard that fails on both attempts must surface error results for
// the unanswered jobs — never missing slots, never a panic.
func TestProcBackendShardFailureSurfaces(t *testing.T) {
	jobs := []Job{
		stubJob(0, stubSpec{PPW: 1}),
		stubJob(1, stubSpec{Garbage: true}),
		stubJob(2, stubSpec{PPW: 3}),
	}
	results := stubBackend(t, 1).Run(jobs, nil)
	if results[0].Err != "" || results[0].Sim.PPW != 1 {
		t.Errorf("job answered before the failure should survive: %+v", results[0])
	}
	for _, i := range []int{1, 2} {
		if !strings.Contains(results[i].Err, "worker shard failed") {
			t.Errorf("job %d should report the shard failure, got %+v", i, results[i])
		}
	}
}

// A job-level error inside the worker is an error result, not a shard
// failure: the rest of the shard still runs, exactly once.
func TestProcBackendJobErrorDoesNotFailShard(t *testing.T) {
	jobs := []Job{
		stubJob(0, stubSpec{PPW: 1}),
		stubJob(1, stubSpec{Fail: true}),
		stubJob(2, stubSpec{PPW: 3}),
	}
	results := stubBackend(t, 1).Run(jobs, nil)
	if results[0].Sim.PPW != 1 || results[2].Sim.PPW != 3 {
		t.Errorf("healthy jobs corrupted: %+v", results)
	}
	if !strings.Contains(results[1].Err, "stub failure") {
		t.Errorf("job error lost: %+v", results[1])
	}
}

// Jobs without a serialized spec cannot cross the process boundary and
// must fail loudly per job.
func TestProcBackendRejectsPayloadlessJobs(t *testing.T) {
	job := Job{Kind: "sim", Scenario: "s", Run: func() Result { return Result{} }}
	results := stubBackend(t, 2).Run([]Job{job}, nil)
	if !strings.Contains(results[0].Err, "no spec payload") {
		t.Errorf("payloadless job should error, got %+v", results[0])
	}
}

// The executor on a procs backend must keep exact cache semantics:
// cold batch dispatches everything, warm rerun over the same cache
// serves every cell without spawning any worker.
func TestExecutorOnProcBackendCacheSemantics(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = stubJob(i, stubSpec{PPW: float64(i)})
	}
	cold := NewExecutorBackend(stubBackend(t, 3), cache)
	first := cold.RunAll(jobs)
	if st := cold.Stats(); st.Runs != int64(len(jobs)) || st.Hits != 0 {
		t.Errorf("cold stats = %+v", st)
	}
	// The warm executor's backend points at a worker that would crash
	// instantly if spawned — proving hits never reach a subprocess.
	warmBackend := NewProcBackend(ProcConfig{WorkerBin: "/nonexistent-worker-binary", Procs: 3})
	warm := NewExecutorBackend(warmBackend, cache)
	second := warm.RunAll(jobs)
	if st := warm.Stats(); st.Runs != 0 || st.Hits != int64(len(jobs)) {
		t.Errorf("warm stats = %+v", st)
	}
	for i := range jobs {
		if !second[i].Cached || second[i].Sim.PPW != first[i].Sim.PPW {
			t.Errorf("warm result %d not served from cache: %+v", i, second[i])
		}
	}
}

// ServeWorker must open the session with a valid hello frame, then
// answer every request in order and propagate the Cached flag across
// the wire (Result.Cached is excluded from the result's own JSON
// form).
func TestServeWorkerOrderAndCachedFlag(t *testing.T) {
	var in, out bytes.Buffer
	enc := json.NewEncoder(&in)
	for i := 0; i < 5; i++ {
		enc.Encode(WireRequest{Key: fmt.Sprintf("k%d", i), Spec: json.RawMessage(`{}`)})
	}
	err := ServeWorker(&in, &out, func(key string, _ json.RawMessage) Result {
		return Result{Key: key, Cached: key == "k2", Sim: fl.Result{PPW: 7}}
	})
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&out)
	var hello WireHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatalf("hello frame: %v", err)
	}
	// The hello's base Proto stays at the v3 baseline so pre-v4
	// coordinators keep accepting it; the v4 capability rides in
	// MaxProto.
	if !hello.Hello || hello.Proto != ProtoV3 || hello.MaxProto != ProtoVersion || hello.KeyVersion != keyVersion || hello.Capacity != 1 {
		t.Errorf("hello frame = %+v", hello)
	}
	for i := 0; i < 5; i++ {
		var resp WireResponse
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if want := fmt.Sprintf("k%d", i); resp.Key != want {
			t.Errorf("response %d out of order: %q", i, resp.Key)
		}
		if resp.Cached != (resp.Key == "k2") {
			t.Errorf("cached flag lost for %q", resp.Key)
		}
	}
}
