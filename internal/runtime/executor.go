package runtime

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
)

// Progress describes one completed job within a batch.
type Progress struct {
	// Done is the number of jobs completed so far in this batch; Total
	// the batch size.
	Done, Total int
	// Key is the completed job's canonical key.
	Key string
	// Cached reports whether the job was served from the run cache.
	Cached bool
	// Failed reports whether the job body panicked.
	Failed bool
}

// Stats counts the executor's lifetime activity.
type Stats struct {
	// Hits counts jobs served from the run cache.
	Hits int64
	// Runs counts jobs whose body actually executed (cache misses plus
	// all jobs when no cache is attached).
	Runs int64
	// Errors counts jobs whose body panicked.
	Errors int64
}

// Executor runs job batches across a sharded worker pool with
// deterministic result ordering and per-job panic isolation.
type Executor struct {
	workers    int
	cache      *Cache
	progressMu sync.Mutex
	onProgress func(Progress)

	hits, runs, errors atomic.Int64
}

// NewExecutor returns an executor with the given worker count
// (workers <= 0 selects GOMAXPROCS) and optional run cache (nil runs
// every job).
func NewExecutor(workers int, cache *Cache) *Executor {
	if workers <= 0 {
		workers = stdruntime.GOMAXPROCS(0)
	}
	return &Executor{workers: workers, cache: cache}
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Cache returns the attached run cache (nil when uncached).
func (e *Executor) Cache() *Cache { return e.cache }

// SetProgress installs a callback fired once per completed job.
// Callbacks are serialized; fn need not be safe for concurrent use.
func (e *Executor) SetProgress(fn func(Progress)) { e.onProgress = fn }

// Stats returns the lifetime hit/run/error counters.
func (e *Executor) Stats() Stats {
	return Stats{Hits: e.hits.Load(), Runs: e.runs.Load(), Errors: e.errors.Load()}
}

// RunAll executes the batch and returns results in job order:
// results[i] always belongs to jobs[i], regardless of worker count or
// scheduling. A job that panics yields a Result with Err set; the
// remaining jobs are unaffected.
func (e *Executor) RunAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var done atomic.Int64
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = e.runOne(jobs[i])
				if e.onProgress != nil {
					// Done is incremented inside the critical section so
					// events are delivered in monotonically increasing
					// Done order.
					e.progressMu.Lock()
					e.onProgress(Progress{
						Done:   int(done.Add(1)),
						Total:  len(jobs),
						Key:    results[i].Key,
						Cached: results[i].Cached,
						Failed: results[i].Err != "",
					})
					e.progressMu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne serves one job from the cache or executes it, isolating
// panics.
func (e *Executor) runOne(j Job) (res Result) {
	key := j.Key()
	if e.cache != nil {
		var cached Result
		if e.cache.Get(key, &cached) && cached.Err == "" {
			cached.Cached = true
			e.hits.Add(1)
			return cached
		}
	}
	defer func() {
		if r := recover(); r != nil {
			e.errors.Add(1)
			res = Result{Key: key, Err: fmt.Sprintf("%v", r)}
		}
	}()
	e.runs.Add(1)
	res = j.Run()
	res.Key = key
	if e.cache != nil && res.Err == "" {
		// A failed disk write only costs a future re-run.
		_ = e.cache.Put(key, res)
	}
	return res
}
