package runtime

import (
	"sync"

	"fedgpo/internal/telemetry"
)

// Progress describes one completed job within a batch.
type Progress struct {
	// Done is the number of jobs completed so far in this batch; Total
	// the batch size.
	Done, Total int
	// Key is the completed job's canonical key.
	Key string
	// Cached reports whether the job was served from the run cache.
	Cached bool
	// Failed reports whether the job body panicked.
	Failed bool
}

// Stats counts the executor's lifetime activity.
type Stats struct {
	// Hits counts jobs served from the run cache — by this executor
	// directly or, under the procs backend, by a worker subprocess
	// reading the shared cache directory.
	Hits int64
	// Runs counts jobs whose body actually executed (cache misses plus
	// all jobs when no cache is attached).
	Runs int64
	// Errors counts jobs whose body panicked or whose worker shard
	// failed.
	Errors int64
	// Endpoints holds the per-endpoint dispatch counters when the
	// backend is a shard coordinator (nil for in-process backends).
	// Each endpoint's counters are snapshotted under the coordinator's
	// single lock, so dispatched/retried/failed are mutually consistent
	// per endpoint even mid-batch.
	Endpoints []EndpointStats
}

// Executor runs job batches: it serves cache hits, hands the misses to
// its execution backend, persists completed results, and keeps
// deterministic result ordering with per-job panic isolation.
type Executor struct {
	backend    Backend
	cache      *Cache
	col        *telemetry.Collector
	progressMu sync.Mutex
	onProgress func(Progress)
	onDispatch func(misses int)

	// statsMu guards stats as one unit so Stats returns a consistent
	// snapshot — hits/runs/errors counted under a single lock, never
	// three independent atomic loads interleaving with a running batch.
	statsMu sync.Mutex
	stats   Stats
}

// NewExecutor returns an executor on the in-process pool backend with
// the given worker count (workers <= 0 selects GOMAXPROCS) and
// optional run cache (nil runs every job).
func NewExecutor(workers int, cache *Cache) *Executor {
	return NewExecutorBackend(NewPoolBackend(workers), cache)
}

// NewExecutorBackend returns an executor on an explicit execution
// backend with an optional run cache (nil runs every job).
func NewExecutorBackend(backend Backend, cache *Cache) *Executor {
	return &Executor{backend: backend, cache: cache}
}

// Workers returns the backend's parallelism.
func (e *Executor) Workers() int { return e.backend.Workers() }

// Cache returns the attached run cache (nil when uncached).
func (e *Executor) Cache() *Cache { return e.cache }

// Backend returns the execution backend.
func (e *Executor) Backend() Backend { return e.backend }

// SetProgress installs a callback fired once per completed job.
// Callbacks are serialized; fn need not be safe for concurrent use.
func (e *Executor) SetProgress(fn func(Progress)) { e.onProgress = fn }

// SetCollector attaches a telemetry collector. The executor counts
// job-level cache hits and executed sims into it (so its counters
// reconcile with Stats by construction) and folds each result's
// per-job phase timings — local or carried back over the wire — into
// the same collector. A nil collector disables recording.
func (e *Executor) SetCollector(col *telemetry.Collector) { e.col = col }

// SetDispatch installs a callback fired once per batch that reaches
// the backend, after cache hits are served, with the number of jobs
// actually dispatched. It runs on the batch's calling goroutine before
// any job body starts, so callers may retune shared execution state
// (e.g. an inner worker budget) from the real work size rather than
// the nominal batch size.
func (e *Executor) SetDispatch(fn func(misses int)) { e.onDispatch = fn }

// Close flushes deferred cache maintenance — today the queued LRU
// mtime touches coalesced off the hit path. It does not shut the
// backend down (backends own their own lifecycle) and the executor
// remains usable afterwards; call it when a run's batches are done so
// eviction order on disk reflects every hit this process served.
func (e *Executor) Close() error {
	if e.cache != nil {
		e.cache.FlushTouches()
	}
	return nil
}

// Stats returns one consistent snapshot of the lifetime
// hit/run/error counters, with the backend's per-endpoint dispatch
// counters attached when it tracks them.
func (e *Executor) Stats() Stats {
	e.statsMu.Lock()
	s := e.stats
	e.statsMu.Unlock()
	if es, ok := e.backend.(EndpointStatser); ok {
		s.Endpoints = es.EndpointStats()
	}
	return s
}

// count applies one completed result to the stats snapshot and mirrors
// it into the telemetry collector: CacheHits tracks Hits and
// SimsExecuted tracks Runs exactly, which is what lets a metrics
// artifact reconcile against Stats.
func (e *Executor) count(r Result) {
	e.statsMu.Lock()
	if r.Cached {
		e.stats.Hits++
	} else {
		e.stats.Runs++
	}
	if r.Err != "" {
		e.stats.Errors++
	}
	e.statsMu.Unlock()
	e.col.Count(func(c *telemetry.Counters) {
		if r.Cached {
			c.CacheHits++
		} else {
			c.SimsExecuted++
		}
	})
	if r.Telemetry != nil {
		e.col.Add(*r.Telemetry)
	}
}

// RunAll executes the batch and returns results in job order:
// results[i] always belongs to jobs[i], regardless of backend,
// parallelism or scheduling. Cache hits are served without touching
// the backend; a job that fails yields a Result with Err set and the
// remaining jobs are unaffected.
func (e *Executor) RunAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	completed := 0
	report := func(r Result) {
		if e.onProgress == nil {
			return
		}
		// Done is incremented inside the critical section so events are
		// delivered in monotonically increasing Done order.
		e.progressMu.Lock()
		completed++
		e.onProgress(Progress{
			Done:   completed,
			Total:  len(jobs),
			Key:    r.Key,
			Cached: r.Cached,
			Failed: r.Err != "",
		})
		e.progressMu.Unlock()
	}

	// Resolve each job's canonical key and content address exactly once
	// for the whole batch: the key assembly and SHA-256 digest are on
	// the warm-rerun hot path (every lookup and write-back needs them),
	// and per-touch recomputation was measurable on paper-scale batches.
	// The key is built into one reused buffer and hashed in place
	// (AppendKey + HashKeyBytes allocate nothing once the buffer fits),
	// so the only per-job allocations left are the key and hash strings
	// the cache API retains.
	keys := make([]string, len(jobs))
	hashes := make([]string, len(jobs))
	var keyBuf []byte
	for i := range jobs {
		keyBuf = jobs[i].AppendKey(keyBuf[:0])
		keys[i] = string(keyBuf)
		hashes[i] = HexHash(HashKeyBytes(keyBuf))
	}

	// Serve cache hits first — checked in parallel (a warm disk-cache
	// rerun is otherwise bottlenecked on serial file reads), reported
	// in job order.
	hits := e.cacheHits(jobs, keys, hashes)
	missIdx := make([]int, 0, len(jobs))
	for i := range jobs {
		if hits[i] != nil {
			results[i] = *hits[i]
			e.count(results[i])
			report(results[i])
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return results
	}

	miss := make([]Job, len(missIdx))
	for k, i := range missIdx {
		miss[k] = jobs[i]
	}
	if e.onDispatch != nil {
		e.onDispatch(len(miss))
	}
	out := e.backend.Run(miss, func(k int, r Result) {
		e.count(r)
		if e.cache != nil && r.Err == "" && !r.Persisted {
			// A failed disk write only costs a future re-run. Results a
			// worker already published to the shared cache directory are
			// marked Persisted and skipped — re-serializing every
			// multi-hundred-round history on the coordinator would double
			// the cache-write I/O. With a memory-only cache this Put is
			// what makes a worker's result visible to this process at all.
			i := missIdx[k]
			_ = e.cache.PutHashed(keys[i], hashes[i], r)
		}
		report(r)
	})
	for k, i := range missIdx {
		results[i] = out[k]
	}
	return results
}

// cacheHits looks every job up in the run cache concurrently and
// returns the hits by batch index (nil = miss or no cache). keys and
// hashes are the batch's precomputed canonical keys and content
// addresses, parallel to jobs. The lookup fan-out respects the
// backend's configured parallelism — a -parallel 1 run stays
// single-threaded through warm batches too, lookups (disk read +
// history unmarshal) included.
func (e *Executor) cacheHits(jobs []Job, keys, hashes []string) []*Result {
	hits := make([]*Result, len(jobs))
	if e.cache == nil {
		return hits
	}
	workers := e.backend.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if jobs[i].ForceRun {
					continue
				}
				var cached Result
				if e.cache.GetHashed(keys[i], hashes[i], &cached) && cached.Err == "" {
					cached.Cached = true
					hits[i] = &cached
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return hits
}
