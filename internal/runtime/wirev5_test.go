package runtime

import (
	"encoding/json"
	"sync"
	"testing"

	"fedgpo/internal/fl"
)

// Two current-generation peers negotiate protocol v5: snapshot
// artifacts pushed with a request install on the worker before the
// request runs, and artifacts a job builds return with its response.
func TestWireSessionV5SnapshotRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var order []string
	run := func(key string, spec json.RawMessage) Result {
		mu.Lock()
		order = append(order, "run:"+key)
		mu.Unlock()
		var s snapSpec
		if err := json.Unmarshal(spec, &s); err != nil {
			return Result{Key: key, Err: err.Error()}
		}
		res := Result{Key: key, Sim: fl.Result{PPW: s.PPW}}
		if s.Snap != "" {
			res.Snaps = []SnapshotArtifact{{Key: s.Snap, Data: snapArtifact}}
		}
		return res
	}
	conn, wait := pipeSession(t, WorkerOptions{
		Capacity: 1,
		Install: func(key string, data json.RawMessage) error {
			mu.Lock()
			order = append(order, "install:"+key)
			mu.Unlock()
			return nil
		},
	}, run)
	defer conn.Close()
	if p, ok := conn.(interface{ Proto() int }); !ok || p.Proto() != ProtoV5 {
		t.Fatalf("negotiated protocol = %v, want %d", conn, ProtoV5)
	}
	bc := conn.(BatchConn)

	builder := snapJob(0, "pk", "pk") // builds the snapshot
	consumer := snapJob(1, "pk", "")  // gets it pushed
	reqs := []WireRequest{
		{Key: builder.Key(), Spec: builder.Payload},
		{Key: consumer.Key(), Spec: consumer.Payload,
			Snaps: []SnapshotArtifact{{Key: "pk", Data: snapArtifact}}},
	}
	if err := bc.SendBatch(reqs); err != nil {
		t.Fatal(err)
	}
	resps, err := bc.RecvBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 || len(resps[0].Snaps) != 1 || resps[0].Snaps[0].Key != "pk" ||
		string(resps[0].Snaps[0].Data) != string(snapArtifact) {
		t.Errorf("builder response snaps = %+v, want the built artifact under key pk", resps[0].Snaps)
	}
	if resps, err = bc.RecvBatch(); err != nil {
		t.Fatal(err)
	}
	if len(resps[0].Snaps) != 0 {
		t.Errorf("consumer response carried %d snaps, want none (it built nothing)", len(resps[0].Snaps))
	}
	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	want := []string{"run:" + builder.Key(), "install:pk", "run:" + consumer.Key()}
	if len(got) != len(want) {
		t.Fatalf("event order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v (installs precede the request that shipped them)", got, want)
		}
	}
	if err := wait(); err != nil {
		t.Errorf("worker session: %v", err)
	}
}

// A worker capped at protocol v4 (the previous generation) negotiates
// v4 with a v5 coordinator: batched binary framing still works, and
// the worker never puts snapshot artifacts on the wire even when its
// execution builds one.
func TestWireSessionV4CapInteropSuppressesSnaps(t *testing.T) {
	run := func(key string, spec json.RawMessage) Result {
		var s snapSpec
		_ = json.Unmarshal(spec, &s)
		res := Result{Key: key, Sim: fl.Result{PPW: s.PPW}}
		if s.Snap != "" {
			res.Snaps = []SnapshotArtifact{{Key: s.Snap, Data: snapArtifact}}
		}
		return res
	}
	conn, wait := pipeSession(t, WorkerOptions{Capacity: 1, MaxProto: ProtoV4}, run)
	defer conn.Close()
	if p, ok := conn.(interface{ Proto() int }); !ok || p.Proto() != ProtoV4 {
		t.Fatalf("v4-capped worker negotiated protocol %v, want %d", conn, ProtoV4)
	}
	bc, ok := conn.(BatchConn)
	if !ok {
		t.Fatalf("v4 interop session is %T, want a BatchConn", conn)
	}
	j := snapJob(0, "pk", "pk")
	if err := bc.SendBatch([]WireRequest{{Key: j.Key(), Spec: j.Payload}}); err != nil {
		t.Fatal(err)
	}
	resps, err := bc.RecvBatch()
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Key != j.Key() || resps[0].Result.Sim.PPW != 0 {
		t.Errorf("v4 interop response = %+v", resps[0])
	}
	if len(resps[0].Snaps) != 0 {
		t.Errorf("v4 session carried %d snapshot artifacts; Snaps is a v5-only field", len(resps[0].Snaps))
	}
	if err := wait(); err != nil {
		t.Errorf("worker session: %v", err)
	}
}

// The coordinator must not ship snapshots to pre-v5 sessions: a fleet
// mixing a v4-capped worker with a current one completes batches
// correctly and only the v5 endpoint ever meters pushed snapshot
// bytes. (The fakeConn-based tests cover v3: a conn without Proto() is
// treated as the baseline and never shipped to.)
func TestCoordinatorSkipsSnapshotShippingToV4Workers(t *testing.T) {
	var installs sync.Map
	v5Addr, v5Shutdown := tcpServeSnaps(t, &installs)
	defer v5Shutdown()

	// Batch 1 on the v5 pool builds and pools the artifact.
	c := NewProcBackend(ProcConfig{Workers: []string{v5Addr}})
	if res := c.Run([]Job{snapJob(0, "pk", "pk")}, nil); res[0].Err != "" {
		t.Fatalf("builder job failed: %s", res[0].Err)
	}

	// Batch 2 against a v4-capped pool: affinity-keyed work flows, but
	// no artifact may be pushed at a session that cannot decode it.
	v4Addr, v4Shutdown := tcpServeV3(t, 1) // v3-capped is the strictest pre-v5 worker
	defer v4Shutdown()
	c2 := NewCoordinator(ProcConfig{}, &TCPTransport{Addr: v4Addr})
	c2.snapMu.Lock()
	c2.snaps = map[string]json.RawMessage{"pk": snapArtifact}
	c2.snapMu.Unlock()
	jobs := specJobs(3)
	for i := range jobs {
		jobs[i].Affinity = "pk"
	}
	for i, r := range c2.Run(jobs, nil) {
		if r.Err != "" {
			t.Errorf("job %d on pre-v5 worker failed: %s", i, r.Err)
		}
	}
	for _, ep := range c2.EndpointStats() {
		if ep.SnapBytesSent != 0 {
			t.Errorf("coordinator pushed %d snapshot bytes at a pre-v5 worker", ep.SnapBytesSent)
		}
	}
}
