package runtime

import (
	"fmt"
	stdruntime "runtime"
	"sync"
)

// Backend executes a batch of jobs that missed the run cache. The
// Executor owns cache lookups, cache writes, statistics and progress;
// a backend only decides where and with what parallelism the job
// bodies run — in-process goroutines (PoolBackend) or worker
// subprocesses (ProcBackend).
type Backend interface {
	// Run executes jobs and returns their results in job order:
	// results[i] belongs to jobs[i] regardless of scheduling. A job
	// failure (panic, crashed worker) is reported in Result.Err, never
	// as a missing slot. done, when non-nil, fires once per completed
	// job with the job's batch index and result; it may be invoked
	// concurrently from multiple goroutines.
	Run(jobs []Job, done func(i int, r Result)) []Result
	// Workers reports the backend's parallelism (pool size or worker
	// subprocess count).
	Workers() int
}

// PoolBackend is the in-process execution backend: a sharded worker
// pool pulling job indices from a shared channel, with per-job panic
// isolation. It is the default backend and the one worker subprocesses
// themselves run on.
type PoolBackend struct {
	workers int
}

// NewPoolBackend returns an in-process pool backend with the given
// worker count (workers <= 0 selects GOMAXPROCS).
func NewPoolBackend(workers int) *PoolBackend {
	if workers <= 0 {
		workers = stdruntime.GOMAXPROCS(0)
	}
	return &PoolBackend{workers: workers}
}

// Workers returns the pool size.
func (p *PoolBackend) Workers() int { return p.workers }

// Run executes the batch across the pool; see Backend.Run.
func (p *PoolBackend) Run(jobs []Job, done func(int, Result)) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := p.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = execJob(jobs[i])
				if done != nil {
					done(i, results[i])
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// execJob runs one job body, isolating panics into Result.Err.
func execJob(j Job) (res Result) {
	key := j.Key()
	defer func() {
		if r := recover(); r != nil {
			res = Result{Key: key, Err: fmt.Sprintf("%v", r)}
		}
	}()
	res = j.Run()
	res.Key = key
	return res
}
