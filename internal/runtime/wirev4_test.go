package runtime

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedgpo/internal/fl"
)

// pipeSession wires a coordinator-side Conn to a worker goroutine over
// in-process pipes, returning the established Conn and a wait func
// that joins the worker and returns its ServeSession error.
func pipeSession(t *testing.T, opt WorkerOptions, run func(key string, spec json.RawMessage) Result) (Conn, func() error) {
	t.Helper()
	cr, ww := io.Pipe() // worker writes -> coordinator reads
	wr, cw := io.Pipe() // coordinator writes -> worker reads
	errc := make(chan error, 1)
	go func() {
		err := ServeSession(wr, ww, run, opt)
		_ = ww.Close()
		errc <- err
	}()
	conn, err := newWireConn(cr, cw, 0, func() error { return cw.Close() })
	if err != nil {
		t.Fatalf("newWireConn: %v", err)
	}
	return conn, func() error {
		_ = cw.Close()
		select {
		case err := <-errc:
			return err
		case <-time.After(5 * time.Second):
			return io.ErrNoProgress
		}
	}
}

func echoRun(key string, spec json.RawMessage) Result {
	var s stubSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return Result{Key: key, Err: err.Error()}
	}
	return Result{Key: key, Sim: fl.Result{PPW: s.PPW}}
}

// Two current-generation peers must negotiate protocol v4: the session
// surfaces as a BatchConn, a request envelope of several specs comes
// back as one streamed response frame per spec in request order, and
// the byte meters see traffic both ways (handshake included).
func TestWireSessionNegotiatesV4(t *testing.T) {
	conn, wait := pipeSession(t, WorkerOptions{Capacity: 2}, echoRun)
	defer conn.Close()
	bc, ok := conn.(BatchConn)
	if !ok {
		t.Fatalf("negotiated session is %T, want a BatchConn (protocol %d)", conn, ProtoV4)
	}
	if h := conn.Hello(); h.Proto != ProtoV3 || h.MaxProto != ProtoVersion || h.Capacity != 2 {
		t.Errorf("hello = %+v, want baseline proto %d with maxProto %d, capacity 2", h, ProtoV3, ProtoVersion)
	}

	jobs := specJobs(5)
	reqs := make([]WireRequest, len(jobs))
	for i, j := range jobs {
		reqs[i] = WireRequest{Key: j.Key(), Spec: j.Payload}
	}
	if err := bc.SendBatch(reqs); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	for i := range reqs {
		resps, err := bc.RecvBatch()
		if err != nil {
			t.Fatalf("RecvBatch %d: %v", i, err)
		}
		// serveBatches answers each spec the moment it finishes, so a
		// 5-spec request envelope yields 5 single-response frames.
		if len(resps) != 1 {
			t.Fatalf("frame %d carried %d responses, want 1 (streamed per spec)", i, len(resps))
		}
		if resps[0].Key != reqs[i].Key {
			t.Errorf("frame %d answered %q, want %q (request order)", i, resps[0].Key, reqs[i].Key)
		}
		if resps[0].Result.Sim.PPW != float64(i) {
			t.Errorf("frame %d PPW = %v, want %v", i, resps[0].Result.Sim.PPW, float64(i))
		}
	}

	ws, ok := conn.(WireStatser)
	if !ok {
		t.Fatal("v4 session does not meter wire bytes")
	}
	sent, recv := ws.WireStats()
	if sent <= 0 || recv <= 0 {
		t.Errorf("WireStats = (%d, %d), want both positive after a batch", sent, recv)
	}
	if err := wait(); err != nil {
		t.Errorf("worker session: %v", err)
	}
}

// A worker capped at protocol v3 (a pre-v4 build) must fall back to
// the newline-delimited JSON framing: no BatchConn, one spec per
// frame, and the session still round-trips work correctly.
func TestWireSessionV3Fallback(t *testing.T) {
	conn, wait := pipeSession(t, WorkerOptions{Capacity: 1, MaxProto: ProtoV3}, echoRun)
	defer conn.Close()
	if _, ok := conn.(BatchConn); ok {
		t.Fatalf("v3-capped worker negotiated a BatchConn; want the JSON fallback")
	}
	if h := conn.Hello(); h.MaxProto != ProtoV3 {
		t.Errorf("hello.MaxProto = %d, want %d", h.MaxProto, ProtoV3)
	}
	jobs := specJobs(3)
	for i, j := range jobs {
		if err := conn.Send(WireRequest{Key: j.Key(), Spec: j.Payload}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		resp, err := conn.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if resp.Key != j.Key() || resp.Result.Sim.PPW != float64(i) {
			t.Errorf("job %d = %+v, want key %q PPW %v", i, resp, j.Key(), float64(i))
		}
	}
	if err := wait(); err != nil {
		t.Errorf("worker session: %v", err)
	}
}

// tcpServeV3 starts a localhost worker whose sessions are capped at
// protocol v3 — a stand-in for a pre-v4 worker build in the fleet.
func tcpServeV3(t *testing.T, capacity int) (addr string, shutdown func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(nc net.Conn) {
				defer wg.Done()
				defer nc.Close()
				_ = ServeSession(nc, nc, echoRun, WorkerOptions{Capacity: capacity, MaxProto: ProtoV3})
			}(nc)
		}
	}()
	return lis.Addr().String(), func() {
		_ = lis.Close()
		wg.Wait()
	}
}

// A mixed-version fleet — one endpoint negotiating the v3 JSON
// fallback beside a v4 endpoint batching binary frames — must produce
// results identical to the in-process pool, with per-endpoint
// accounting that reflects each session's negotiated framing: the v3
// endpoint moves exactly one spec per frame while the whole fleet's
// dispatch, frame and spec counters reconcile with the batch.
func TestMixedVersionFleetByteIdenticalResults(t *testing.T) {
	v3Addr, v3Shutdown := tcpServeV3(t, 2)
	defer v3Shutdown()
	v4Addr, v4Shutdown := tcpServe(t, 2, "")

	jobs := specJobs(24)
	want := NewPoolBackend(4).Run(jobs, nil)

	c := NewProcBackend(ProcConfig{Workers: []string{v3Addr, v4Addr}})
	results := c.Run(jobs, nil)
	for i := range want {
		if results[i].Err != want[i].Err || results[i].Sim.PPW != want[i].Sim.PPW {
			t.Errorf("job %d on mixed fleet = %+v, want %+v", i, results[i], want[i])
		}
	}

	var dispatched, frames, specs int64
	for _, ep := range c.EndpointStats() {
		dispatched += ep.Dispatched
		frames += ep.Frames
		specs += ep.Specs
		if ep.Retried != 0 || ep.Failed != 0 {
			t.Errorf("endpoint %s: retried=%d failed=%d on a healthy fleet", ep.Endpoint, ep.Retried, ep.Failed)
		}
		if strings.Contains(ep.Endpoint, v3Addr) {
			if ep.Frames != ep.Specs {
				t.Errorf("v3 endpoint packed %d specs into %d frames; fallback must stay one spec per frame", ep.Specs, ep.Frames)
			}
			if ep.Dispatched == 0 {
				t.Errorf("v3 endpoint dispatched nothing; fleet did not mix")
			}
		}
		if ep.Dispatched > 0 && (ep.BytesSent <= 0 || ep.BytesRecv <= 0) {
			t.Errorf("endpoint %s moved %d jobs but metered (%d, %d) bytes", ep.Endpoint, ep.Dispatched, ep.BytesSent, ep.BytesRecv)
		}
	}
	if dispatched != int64(len(jobs)) || specs != int64(len(jobs)) {
		t.Errorf("fleet dispatched %d jobs as %d specs, want %d of each", dispatched, specs, len(jobs))
	}
	if frames > specs {
		t.Errorf("fleet sent %d frames for %d specs; frames cannot exceed specs", frames, specs)
	}
	if err := v4Shutdown(); err != nil {
		t.Errorf("graceful drain: %v", err)
	}
}

// When the v3-fallback endpoint of a mixed fleet dies mid-batch, the
// v4 endpoint must absorb its jobs and the dead endpoint's retry and
// failover counters must record the handoff.
func TestMixedVersionFleetFailoverAccounting(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns sync.Map
	answered := make(chan struct{}, 64)
	// The schedule is pinned by handshake so it holds under
	// race-detector load: every v4 cell and the v3 endpoint's first
	// cell block until the kill goroutine has closed the v3 listener
	// and every accepted conn. The v4 sibling therefore cannot drain
	// the queue before the v3 endpoint holds a job in flight, and the
	// v3 worker's response write is guaranteed to fail — the
	// coordinator must requeue that job (retry) and, with the listener
	// gone, hand it off (failover).
	killed := make(chan struct{})
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			conns.Store(nc, struct{}{})
			go func(nc net.Conn) {
				_ = ServeSession(nc, nc, func(key string, spec json.RawMessage) Result {
					answered <- struct{}{}
					<-killed
					return echoRun(key, spec)
				}, WorkerOptions{Capacity: 1, MaxProto: ProtoV3})
			}(nc)
		}
	}()

	v4Lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	v4Ctx, v4Cancel := context.WithCancel(context.Background())
	v4Errc := make(chan error, 1)
	go func() {
		v4Errc <- Serve(v4Ctx, v4Lis, ServeConfig{
			Capacity: 1,
			Run: func(key string, spec json.RawMessage) Result {
				<-killed
				return echoRun(key, spec)
			},
		})
	}()
	v4Shutdown := func() error {
		v4Cancel()
		select {
		case err := <-v4Errc:
			return err
		case <-time.After(5 * time.Second):
			return io.ErrNoProgress
		}
	}
	jobs := specJobs(12)
	c := NewProcBackend(ProcConfig{Workers: []string{lis.Addr().String(), v4Lis.Addr().String()}})
	go func() {
		<-answered
		_ = lis.Close()
		conns.Range(func(k, _ any) bool {
			_ = k.(net.Conn).Close()
			return true
		})
		close(killed)
	}()
	results := c.Run(jobs, nil)
	for i, r := range results {
		if r.Err != "" || r.Sim.PPW != float64(i) {
			t.Errorf("job %d = %+v after v3 endpoint death", i, r)
		}
	}
	flakyName := "tcp:" + lis.Addr().String()
	for _, ep := range c.EndpointStats() {
		if ep.Endpoint == flakyName {
			if ep.Retried == 0 {
				t.Errorf("dead v3 endpoint recorded no retry")
			}
			if ep.Failed == 0 {
				t.Errorf("dead v3 endpoint recorded no failover handoff")
			}
		} else if ep.Failed != 0 {
			t.Errorf("surviving endpoint %s recorded %d failed", ep.Endpoint, ep.Failed)
		}
	}
	if err := v4Shutdown(); err != nil {
		t.Errorf("graceful drain: %v", err)
	}
}

// WireBytesPerCell must show the v4 framing costing fewer bytes per
// cell than v3 even on minimal stub payloads (the 2x floor is gated in
// CI over the bench's real sweep payloads, which compress far better),
// and must reject an empty request set.
func TestWireBytesPerCellMeters(t *testing.T) {
	jobs := specJobs(16)
	reqs := make([]WireRequest, len(jobs))
	resps := make([]WireResponse, len(jobs))
	for i, j := range jobs {
		reqs[i] = WireRequest{Key: j.Key(), Spec: j.Payload}
		resps[i] = WireResponse{Key: j.Key(), Result: Result{Key: j.Key(), Sim: fl.Result{PPW: float64(i)}}}
	}
	v3, v4, err := WireBytesPerCell(reqs, resps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v3 <= 0 || v4 <= 0 {
		t.Fatalf("WireBytesPerCell = (%v, %v), want positive", v3, v4)
	}
	if v4 >= v3 {
		t.Errorf("v3 %.0f B/cell vs v4 %.0f B/cell; batched compressed framing must cost less", v3, v4)
	}
	if _, _, err := WireBytesPerCell(nil, nil, 8); err == nil {
		t.Error("empty request set must error, not divide by zero")
	}
}
