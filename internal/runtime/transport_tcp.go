package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	stdruntime "runtime"
	"sync"
	"time"
)

// defaultDialTimeout bounds how long a TCP dial (TCP connect + hello)
// may take before the endpoint attempt is treated as failed.
const defaultDialTimeout = 10 * time.Second

// TCPTransport dials wire sessions to a remote worker pool started
// with `fedgpo-worker -listen host:port`. One TCP connection carries
// one wire session; the coordinator learns how many sessions to open
// from the capacity the worker's hello advertises (Sessions returns 0).
type TCPTransport struct {
	// Addr is the worker pool's host:port.
	Addr string
	// DialTimeout bounds TCP connect + handshake (0 selects a default).
	DialTimeout time.Duration
	// ReplyTimeout, when positive, bounds how long Recv waits for each
	// response frame. Simulation cells can legitimately run for minutes,
	// so the zero default means "wait for the connection to die" —
	// set it when the deployment wants hung-worker detection faster
	// than TCP keepalive provides.
	ReplyTimeout time.Duration
}

// Name identifies the endpoint in errors and per-endpoint stats.
func (t *TCPTransport) Name() string { return "tcp:" + t.Addr }

// Sessions returns 0: the session count comes from the worker's
// advertised capacity, learned on the first (probe) dial.
func (t *TCPTransport) Sessions() int { return 0 }

// Dial opens one TCP connection and completes the hello handshake.
func (t *TCPTransport) Dial() (Conn, error) {
	timeout := t.DialTimeout
	if timeout <= 0 {
		timeout = defaultDialTimeout
	}
	nc, err := net.DialTimeout("tcp", t.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", t.Addr, err)
	}
	// The handshake itself is also bounded: a listener that accepts but
	// never hellos (wrong service on the port) must not hang the
	// coordinator.
	_ = nc.SetReadDeadline(time.Now().Add(timeout))
	conn, err := newWireConn(nc, nc, t.ReplyTimeout, nc.Close)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", t.Addr, err)
	}
	if t.ReplyTimeout <= 0 {
		// Handshake done; without a reply timeout the session reads
		// block indefinitely again.
		_ = nc.SetReadDeadline(time.Time{})
	}
	return conn, nil
}

// ServeConfig parameterizes a listening worker pool (Serve).
type ServeConfig struct {
	// Capacity is the maximum number of wire sessions served
	// concurrently, advertised to every coordinator in the hello
	// (<= 0 selects GOMAXPROCS).
	Capacity int
	// CacheDir is the worker's run-cache directory, advertised in the
	// hello so coordinators sharing it can skip redundant cache writes.
	CacheDir string
	// Run executes one job; see ServeWorker.
	Run func(key string, spec json.RawMessage) Result
	// SetInner, when non-nil, applies coordinator-forwarded inner
	// worker budgets (WireRequest.Inner). It may be called from
	// concurrent sessions and must be safe for concurrent use.
	SetInner func(n int)
	// Install, when non-nil, installs coordinator-pushed snapshot
	// artifacts (WireRequest.Snaps, protocol v5) into the pool's
	// pretrain cache. It may be called from concurrent sessions and
	// must be safe for concurrent use.
	Install func(key string, data json.RawMessage) error
	// Logf, when non-nil, receives per-session lifecycle and error
	// lines.
	Logf func(format string, args ...any)
}

// drainGrace is how long draining sessions may sit idle waiting for
// another request before Serve closes them. Sessions mid-job are
// unaffected: the deadline only interrupts the blocking read between
// frames, after the current response has been written.
const drainGrace = 250 * time.Millisecond

// Serve runs the accept loop of a listening worker pool: one wire
// session per accepted connection, at most Capacity sessions at once.
// It blocks until ctx is cancelled (SIGTERM in cmd/fedgpo-worker),
// then drains gracefully — the listener closes so no new work arrives,
// sessions finish the job they are executing and send its response,
// and only then does Serve return. Each session speaks the exact
// protocol ServeWorker speaks on stdio, hello frame included.
func Serve(ctx context.Context, lis net.Listener, cfg ServeConfig) error {
	if cfg.Capacity <= 0 {
		cfg.Capacity = stdruntime.GOMAXPROCS(0)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var (
		mu       sync.Mutex
		sessions = make(map[net.Conn]struct{})
		draining bool
		wg       sync.WaitGroup
		slots    = make(chan struct{}, cfg.Capacity)
	)
	// The drain watchdog: once draining, every idle session's next read
	// hits an immediate deadline and the session exits; a session busy
	// inside Run finishes and writes its response first (writes carry
	// no deadline), then exits on the next read.
	beginDrain := func() {
		mu.Lock()
		draining = true
		for c := range sessions {
			_ = c.SetReadDeadline(time.Now().Add(drainGrace))
		}
		mu.Unlock()
	}

	go func() {
		<-ctx.Done()
		beginDrain()
		_ = lis.Close()
	}()

	acceptFails := 0
	for {
		nc, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				// Graceful drain: stop accepting, wait for in-flight
				// sessions to finish their current work.
				wg.Wait()
				return nil
			}
			// A transient accept failure (ECONNABORTED, fd exhaustion)
			// must not take the pool down mid-job; back off and keep
			// serving.
			if ne, ok := err.(net.Error); ok && ne.Temporary() && acceptFails < 10 {
				acceptFails++
				logf("accept (retrying): %v", err)
				time.Sleep(time.Duration(acceptFails) * 10 * time.Millisecond)
				continue
			}
			// The listener is genuinely broken: stop taking work, but
			// let in-flight sessions finish and deliver their responses
			// before reporting the failure — same contract as a drain.
			beginDrain()
			wg.Wait()
			return fmt.Errorf("runtime: worker accept: %w", err)
		}
		acceptFails = 0
		slots <- struct{}{}
		mu.Lock()
		sessions[nc] = struct{}{}
		if draining {
			_ = nc.SetReadDeadline(time.Now().Add(drainGrace))
		}
		mu.Unlock()
		wg.Add(1)
		go func(nc net.Conn) {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(sessions, nc)
				mu.Unlock()
				_ = nc.Close()
				<-slots
			}()
			logf("session %s: open", nc.RemoteAddr())
			err := ServeSession(nc, nc, cfg.Run, WorkerOptions{
				Capacity: cfg.Capacity,
				CacheDir: cfg.CacheDir,
				SetInner: cfg.SetInner,
				Install:  cfg.Install,
			})
			if err != nil && ctx.Err() == nil {
				logf("session %s: %v", nc.RemoteAddr(), err)
			} else {
				logf("session %s: closed", nc.RemoteAddr())
			}
		}(nc)
	}
}
