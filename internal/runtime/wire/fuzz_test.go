package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame reader. The
// invariants under fuzz: never panic, never allocate beyond the
// codec's limits (enforced structurally — prefixes are validated
// before allocation and bodies grow only as bytes arrive), report a
// frame-indexed error for every malformed stream, and round-trip
// losslessly whatever WriteFrame produced.
func FuzzReadFrame(f *testing.F) {
	// Seed with a valid frame, a truncated one, an oversized prefix,
	// and a corrupt body.
	var valid bytes.Buffer
	if _, err := WriteFrame(&valid, []byte(`{"reqs":[{"key":"v3|sim|a|b|seed=1"}]}`)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-3])
	huge := make([]byte, headerLen)
	binary.BigEndian.PutUint32(huge, MaxFrameBytes+1)
	f.Add(huge)
	corrupt := make([]byte, headerLen+8)
	binary.BigEndian.PutUint32(corrupt, 8)
	f.Add(corrupt)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for frame := 1; ; frame++ {
			payload, n, err := ReadFrame(r, frame)
			if err == io.EOF {
				return // clean frame boundary
			}
			if err != nil {
				if !strings.Contains(err.Error(), "frame ") {
					t.Fatalf("error not frame-indexed: %v", err)
				}
				return
			}
			if n < headerLen {
				t.Fatalf("frame %d: consumed %d wire bytes", frame, n)
			}
			// A successfully decoded payload must re-encode and decode
			// to itself: the codec is lossless on everything it accepts.
			var buf bytes.Buffer
			if _, err := WriteFrame(&buf, payload); err != nil {
				t.Fatalf("frame %d: re-encoding accepted payload: %v", frame, err)
			}
			back, _, err := ReadFrame(&buf, 1)
			if err != nil {
				t.Fatalf("frame %d: re-reading re-encoded payload: %v", frame, err)
			}
			if !bytes.Equal(back, payload) {
				t.Fatalf("frame %d: payload not lossless", frame)
			}
		}
	})
}
