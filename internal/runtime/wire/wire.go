// Package wire implements the length-prefixed binary framing shared by
// protocol-v4 transport sessions: one frame is a 4-byte big-endian
// length prefix followed by that many bytes of DEFLATE-compressed
// payload. The payload is an opaque byte string to this package — the
// runtime package puts JSON batch envelopes inside — so the framing,
// its size guards and its fuzz surface live in one place for the stdio
// and TCP transports alike.
//
// Both directions of a frame are bounded: the length prefix is
// validated against MaxFrameBytes before a single payload byte is
// allocated or read, and decompression stops at MaxPayloadBytes — a
// corrupt or hostile stream can make a reader fail, never allocate
// without bound. Read errors carry the 1-based frame index so a
// session failure names the exact frame that broke it.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// MaxFrameBytes bounds the on-wire (compressed) body of one frame.
	// A length prefix above it fails the read before any allocation.
	MaxFrameBytes = 64 << 20
	// MaxPayloadBytes bounds the decompressed payload of one frame, so
	// a malicious deflate stream cannot expand without bound.
	MaxPayloadBytes = 256 << 20
	// headerLen is the length prefix size.
	headerLen = 4
)

// bodyChunk is the step readBody grows its buffer by: memory is
// committed as bytes actually arrive, so a truncated stream whose
// prefix claims MaxFrameBytes costs one chunk, not the claim.
const bodyChunk = 1 << 20

// WriteFrame compresses payload and writes it as one frame, returning
// the number of bytes put on the wire (prefix included).
func WriteFrame(w io.Writer, payload []byte) (int, error) {
	if len(payload) > MaxPayloadBytes {
		return 0, fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", len(payload), MaxPayloadBytes)
	}
	var body bytes.Buffer
	fw, err := flate.NewWriter(&body, flate.BestSpeed)
	if err != nil {
		return 0, fmt.Errorf("wire: frame compress: %w", err)
	}
	if _, err := fw.Write(payload); err != nil {
		return 0, fmt.Errorf("wire: frame compress: %w", err)
	}
	if err := fw.Close(); err != nil {
		return 0, fmt.Errorf("wire: frame compress: %w", err)
	}
	if body.Len() > MaxFrameBytes {
		return 0, fmt.Errorf("wire: frame body %d bytes exceeds limit %d", body.Len(), MaxFrameBytes)
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(body.Bytes())
	return headerLen + n, err
}

// ReadFrame reads one frame and returns its decompressed payload plus
// the number of wire bytes consumed. frame is the 1-based frame index
// used in error messages. A clean EOF at a frame boundary returns
// io.EOF unwrapped, so callers can end sessions exactly as the JSON
// decode loop does; EOF inside a frame is a truncation error.
func ReadFrame(r io.Reader, frame int) ([]byte, int, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wire: frame %d: reading length prefix: %w", frame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return nil, 0, fmt.Errorf("wire: frame %d: length prefix %d outside (0, %d]", frame, n, MaxFrameBytes)
	}
	body, err := readBody(r, int(n))
	if err != nil {
		return nil, 0, fmt.Errorf("wire: frame %d: reading %d-byte body: %w", frame, n, err)
	}
	payload, err := inflate(body)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: frame %d: %w", frame, err)
	}
	return payload, headerLen + int(n), nil
}

// readBody reads exactly n bytes, growing the buffer chunk by chunk so
// a lying length prefix over a short stream never commits more memory
// than the stream delivers.
func readBody(r io.Reader, n int) ([]byte, error) {
	chunk := bodyChunk
	if chunk > n {
		chunk = n
	}
	body := make([]byte, 0, chunk)
	for len(body) < n {
		m := n - len(body)
		if m > bodyChunk {
			m = bodyChunk
		}
		off := len(body)
		body = append(body, make([]byte, m)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return body, nil
}

// inflate decompresses one frame body, bounded by MaxPayloadBytes.
func inflate(body []byte) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(body))
	defer fr.Close()
	var out bytes.Buffer
	n, err := io.Copy(&out, io.LimitReader(fr, MaxPayloadBytes+1))
	if err != nil {
		return nil, fmt.Errorf("decompress: %w", err)
	}
	if n > MaxPayloadBytes {
		return nil, fmt.Errorf("decompress: payload exceeds limit %d", int64(MaxPayloadBytes))
	}
	return out.Bytes(), nil
}

// Handoff wraps a reader at the JSON-handshake → binary-framing
// boundary, skipping any ASCII whitespace left over from the
// handshake (json.Encoder terminates each value with a newline) before
// the first frame byte. Only leading whitespace is skipped: once a
// non-whitespace byte arrives the stream passes through verbatim. The
// skip is unambiguous because a whitespace first byte (>= 0x09) would
// encode a length prefix far above MaxFrameBytes.
func Handoff(r io.Reader) io.Reader {
	return &handoffReader{r: r}
}

type handoffReader struct {
	r      io.Reader
	inBody bool
}

func (h *handoffReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	if h.inBody || n == 0 {
		return n, err
	}
	skip := 0
	for skip < n {
		switch p[skip] {
		case ' ', '\t', '\n', '\r':
			skip++
		default:
			h.inBody = true
			copy(p, p[skip:n])
			return n - skip, err
		}
	}
	// The whole read was handshake whitespace; report progress as a
	// zero-byte read only if the stream ended, otherwise read again.
	if err != nil {
		return 0, err
	}
	return h.Read(p)
}

// ErrTruncated reports whether a ReadFrame error was caused by the
// stream ending inside a frame (as opposed to a corrupt or oversized
// one) — a worker crash mid-write looks like this, and coordinators
// treat it exactly like a connection error.
func ErrTruncated(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF)
}
