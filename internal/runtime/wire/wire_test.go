package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("{}"),
		[]byte(strings.Repeat(`{"key":"v3|sim|...","spec":{"fleet":20}},`, 500)),
		bytes.Repeat([]byte{0}, 3*bodyChunk+17), // spans several read chunks
		[]byte("x"),
	}
	var buf bytes.Buffer
	written := make([]int, len(payloads))
	for i, p := range payloads {
		n, err := WriteFrame(&buf, p)
		if err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
		if n < headerLen+1 {
			t.Fatalf("WriteFrame(%d) reported %d wire bytes", i, n)
		}
		written[i] = n
	}
	r := bytes.NewReader(buf.Bytes())
	for i, p := range payloads {
		got, n, err := ReadFrame(r, i+1)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
		if n != written[i] {
			t.Fatalf("frame %d: read %d wire bytes, wrote %d", i, n, written[i])
		}
	}
	if _, _, err := ReadFrame(r, len(payloads)+1); err != io.EOF {
		t.Fatalf("clean frame boundary: got %v, want io.EOF", err)
	}
}

func TestFrameCompresses(t *testing.T) {
	// Batched JSON is highly repetitive; the whole point of the v4
	// framing is that it ships far fewer bytes than the raw payload.
	payload := []byte(strings.Repeat(`{"key":"v3|sim|fleet=20|alpha=iid","result":{"ppw":1.25}}`+"\n", 200))
	var buf bytes.Buffer
	n, err := WriteFrame(&buf, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n*2 > len(payload) {
		t.Fatalf("frame of %d-byte payload took %d wire bytes; want at least 2x compression", len(payload), n)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, []byte(`{"reqs":[]}`)); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]), 7)
		if err == nil || err == io.EOF {
			t.Fatalf("truncated at %d/%d bytes: got %v, want error", cut, len(whole), err)
		}
		if !strings.Contains(err.Error(), "frame 7") {
			t.Fatalf("truncated frame error not frame-indexed: %v", err)
		}
		if !ErrTruncated(err) && cut >= headerLen {
			t.Fatalf("truncated body at %d bytes not reported as truncation: %v", cut, err)
		}
	}
}

func TestReadFrameOversizedPrefix(t *testing.T) {
	for _, n := range []uint32{0, MaxFrameBytes + 1, 1<<32 - 1} {
		var hdr [headerLen]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		_, _, err := ReadFrame(bytes.NewReader(hdr[:]), 3)
		if err == nil {
			t.Fatalf("length prefix %d: want error", n)
		}
		if !strings.Contains(err.Error(), "frame 3") {
			t.Fatalf("length prefix %d: error not frame-indexed: %v", n, err)
		}
	}
}

func TestReadFrameCorruptBody(t *testing.T) {
	body := []byte("this is not a deflate stream....")
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	_, _, err := ReadFrame(bytes.NewReader(append(hdr[:], body...)), 2)
	if err == nil {
		t.Fatal("corrupt body: want error")
	}
	if !strings.Contains(err.Error(), "frame 2") {
		t.Fatalf("corrupt body error not frame-indexed: %v", err)
	}
}

func TestEmptyPayloadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadFrame(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty payload round-tripped to %d bytes", len(got))
	}
}

// Handoff must absorb exactly the whitespace a JSON handshake leaves
// before the first binary frame — and nothing else, including
// whitespace-valued bytes inside frame bodies.
func TestHandoffSkipsLeadingWhitespaceOnly(t *testing.T) {
	payload := []byte("payload with spaces \n\t and newlines \r\n inside")
	var framed bytes.Buffer
	if _, err := WriteFrame(&framed, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFrame(&framed, payload); err != nil {
		t.Fatal(err)
	}

	for _, lead := range []string{"", "\n", " \t\r\n", "\n\n\n"} {
		r := Handoff(io.MultiReader(strings.NewReader(lead), bytes.NewReader(framed.Bytes())))
		for frame := 1; frame <= 2; frame++ {
			got, _, err := ReadFrame(r, frame)
			if err != nil {
				t.Fatalf("lead %q frame %d: %v", lead, frame, err)
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("lead %q frame %d payload corrupted", lead, frame)
			}
		}
		if _, _, err := ReadFrame(r, 3); err != io.EOF {
			t.Errorf("lead %q: after both frames err = %v, want io.EOF", lead, err)
		}
	}

	// A stream that is nothing but handshake whitespace ends cleanly.
	r := Handoff(strings.NewReader("\n \t\n"))
	if _, _, err := ReadFrame(r, 1); err != io.EOF {
		t.Errorf("whitespace-only stream err = %v, want io.EOF", err)
	}
}
