package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedgpo/internal/fl"
)

// fakeTransport is an in-process Transport whose sessions are scripted
// per dial: respond decides, given the dial ordinal and the request,
// whether to answer or to break the session. It records every send so
// tests can assert exactly which jobs were resent after a failure.
type fakeTransport struct {
	name     string
	sessions int
	hello    WireHello
	// respond serves one request; returning an error breaks the
	// session (the coordinator sees it from Recv).
	respond func(dial int, req WireRequest) (WireResponse, error)
	// dialErr, when non-nil, can fail a dial outright.
	dialErr func(dial int) error

	mu    sync.Mutex
	dials int
	sends map[string]int
	inner map[string]int
}

func newFakeTransport(name string, sessions int, respond func(dial int, req WireRequest) (WireResponse, error)) *fakeTransport {
	return &fakeTransport{
		name:     name,
		sessions: sessions,
		hello:    WireHello{Hello: true, Proto: ProtoVersion, KeyVersion: keyVersion, Capacity: sessions},
		respond:  respond,
		sends:    make(map[string]int),
		inner:    make(map[string]int),
	}
}

func (t *fakeTransport) Name() string  { return t.name }
func (t *fakeTransport) Sessions() int { return t.sessions }

func (t *fakeTransport) Dial() (Conn, error) {
	t.mu.Lock()
	t.dials++
	dial := t.dials
	t.mu.Unlock()
	if t.dialErr != nil {
		if err := t.dialErr(dial); err != nil {
			return nil, err
		}
	}
	return &fakeConn{t: t, dial: dial}, nil
}

func (t *fakeTransport) sendCount(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sends[key]
}

type fakeConn struct {
	t    *fakeTransport
	dial int
	req  *WireRequest
}

func (c *fakeConn) Hello() WireHello { return c.t.hello }

func (c *fakeConn) Send(req WireRequest) error {
	c.t.mu.Lock()
	c.t.sends[req.Key]++
	c.t.inner[req.Key] = req.Inner
	c.t.mu.Unlock()
	c.req = &req
	return nil
}

func (c *fakeConn) Recv() (WireResponse, error) {
	if c.req == nil {
		return WireResponse{}, fmt.Errorf("recv without a pending request")
	}
	req := *c.req
	c.req = nil
	return c.t.respond(c.dial, req)
}

func (c *fakeConn) Close() error { return nil }

// okResponse answers a request with a deterministic payload derived
// from its key.
func okResponse(req WireRequest) (WireResponse, error) {
	return WireResponse{Key: req.Key, Result: Result{Key: req.Key, Sim: fl.Result{PPW: float64(len(req.Key))}}}, nil
}

// specJobs builds n spec-carrying jobs (the payload content is
// irrelevant to the coordinator).
func specJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = stubJob(i, stubSpec{PPW: float64(i)})
	}
	return jobs
}

// A session that drops mid-batch must be retried on a fresh session,
// resending only the unanswered in-flight job — never jobs that were
// already answered.
func TestCoordinatorRetryResendsOnlyUnanswered(t *testing.T) {
	jobs := specJobs(6)
	answeredOnFirst := 3
	ft := newFakeTransport("fake:a", 1, nil)
	served := 0
	ft.respond = func(dial int, req WireRequest) (WireResponse, error) {
		if dial == 1 {
			if served == answeredOnFirst {
				return WireResponse{}, fmt.Errorf("connection reset mid-shard")
			}
			served++
		}
		return okResponse(req)
	}
	c := NewCoordinator(ProcConfig{}, ft)
	results := c.Run(jobs, nil)
	resent := 0
	for i, r := range results {
		if r.Err != "" {
			t.Errorf("job %d failed: %s", i, r.Err)
		}
		switch n := ft.sendCount(jobs[i].Key()); n {
		case 1:
		case 2:
			resent++
		default:
			t.Errorf("job %d sent %d times", i, n)
		}
	}
	if resent != 1 {
		t.Errorf("%d jobs were resent, want exactly the 1 unanswered in-flight job", resent)
	}
	if ft.dials != 2 {
		t.Errorf("transport dialed %d times, want 2 (session + one retry)", ft.dials)
	}
	st := c.EndpointStats()
	if len(st) != 1 || st[0].Retried != 1 || st[0].Failed != 0 || st[0].Dispatched != int64(len(jobs))+1 {
		t.Errorf("endpoint stats = %+v", st)
	}
}

// A worker that answers with the wrong key (out of order) must fail
// the session; the retry re-runs the affected job and the batch
// completes.
func TestCoordinatorOutOfOrderReplyFailsSession(t *testing.T) {
	jobs := specJobs(4)
	ft := newFakeTransport("fake:ooo", 1, nil)
	ft.respond = func(dial int, req WireRequest) (WireResponse, error) {
		if dial == 1 && req.Key == jobs[2].Key() {
			resp, _ := okResponse(req)
			resp.Key = "v3|sim|someone-else|c|seed=9"
			return resp, nil
		}
		return okResponse(req)
	}
	c := NewCoordinator(ProcConfig{}, ft)
	results := c.Run(jobs, nil)
	for i, r := range results {
		if r.Err != "" {
			t.Errorf("job %d failed: %s", i, r.Err)
		}
	}
	if got := ft.sendCount(jobs[2].Key()); got != 2 {
		t.Errorf("misanswered job sent %d times, want 2", got)
	}
	if ft.dials != 2 {
		t.Errorf("transport dialed %d times, want 2", ft.dials)
	}
}

// When every session attempt fails, the in-flight job and everything
// still queued must surface error results — never missing slots.
func TestCoordinatorExhaustedRetriesSurfaceErrors(t *testing.T) {
	jobs := specJobs(3)
	ft := newFakeTransport("fake:dead", 1, func(int, WireRequest) (WireResponse, error) {
		return WireResponse{}, fmt.Errorf("endpoint is gone")
	})
	c := NewCoordinator(ProcConfig{}, ft)
	done := 0
	results := c.Run(jobs, func(int, Result) { done++ })
	for i, r := range results {
		if !strings.Contains(r.Err, "worker shard failed after retry") {
			t.Errorf("job %d error = %q", i, r.Err)
		}
	}
	if done != len(jobs) {
		t.Errorf("done fired %d times, want %d", done, len(jobs))
	}
	st := c.EndpointStats()
	if len(st) != 1 || st[0].Failed != 1 {
		t.Errorf("endpoint stats = %+v (want exactly the in-flight job counted failed)", st)
	}
}

// A healthy endpoint must absorb the whole batch when its sibling
// cannot even establish a session — a dead remote pool degrades
// capacity, not correctness.
func TestCoordinatorHealthySiblingAbsorbsBatch(t *testing.T) {
	jobs := specJobs(8)
	healthy := newFakeTransport("fake:ok", 2, func(_ int, req WireRequest) (WireResponse, error) {
		return okResponse(req)
	})
	dead := newFakeTransport("fake:down", 2, nil)
	dead.dialErr = func(int) error { return fmt.Errorf("connection refused") }
	c := NewCoordinator(ProcConfig{}, healthy, dead)
	results := c.Run(jobs, nil)
	for i, r := range results {
		if r.Err != "" {
			t.Errorf("job %d failed: %s", i, r.Err)
		}
	}
	// EndpointStats sorts by name: "fake:down" first, "fake:ok" second.
	if st := c.EndpointStats(); st[0].Dispatched != 0 || st[1].Dispatched != int64(len(jobs)) {
		t.Errorf("endpoint stats = %+v", st)
	}
}

// Under the adaptive split the coordinator derives a per-endpoint
// inner budget from the batch shape and forwards it on every request,
// shaped to the worker's process model (hello capacity): a shared-
// process pool receives the endpoint's whole spare for its one shared
// fl.Pool, a one-session-per-process worker its per-cell share.
// Explicit budgets are forwarded verbatim and saturated batches stay
// serial.
func TestCoordinatorForwardsWireBudgets(t *testing.T) {
	run := func(inner int, njobs, sessions, helloCap int) map[string]int {
		ft := newFakeTransport("fake:budget", sessions, func(_ int, req WireRequest) (WireResponse, error) {
			return okResponse(req)
		})
		ft.hello.Capacity = helloCap
		c := NewCoordinator(ProcConfig{InnerParallel: inner}, ft)
		c.Run(specJobs(njobs), nil)
		ft.mu.Lock()
		defer ft.mu.Unlock()
		out := make(map[string]int, len(ft.inner))
		for k, v := range ft.inner {
			out[k] = v
		}
		return out
	}
	for key, got := range run(-1, 2, 4, 4) {
		// 2 cells across a 4-session shared-process pool: both idle
		// sessions lent as one shared budget.
		if got != 2 {
			t.Errorf("shared-process adaptive budget for %q = %d, want 2", key, got)
		}
	}
	for key, got := range run(-1, 2, 4, 1) {
		// Same shape, but each session is its own process (stdio): each
		// active cell gets its own share of the 2 spare sessions.
		if got != 1 {
			t.Errorf("per-process adaptive budget for %q = %d, want 1", key, got)
		}
	}
	for key, got := range run(-1, 8, 4, 4) {
		if got != 0 {
			t.Errorf("saturated adaptive budget for %q = %d, want 0", key, got)
		}
	}
	for key, got := range run(3, 8, 2, 2) {
		if got != 3 {
			t.Errorf("explicit budget for %q = %d, want 3", key, got)
		}
	}
}

// The handshake must reject a worker speaking the wrong protocol
// version, the wrong cache-key scheme, or no hello at all.
func TestHandshakeRejectsMismatches(t *testing.T) {
	dial := func(firstFrame string) error {
		_, err := newWireConn(strings.NewReader(firstFrame), &strings.Builder{}, 0, nil)
		return err
	}
	proto := fmt.Sprint(ProtoVersion)
	cases := []struct{ frame, want string }{
		{`{"hello":true,"proto":1,"keyVersion":"` + keyVersion + `","capacity":1}`, "wire protocol"},
		{`{"hello":true,"proto":` + proto + `,"keyVersion":"v1","capacity":1}`, "cache-key scheme"},
		{`{"key":"k0","result":{}}`, "not a hello"},
		{`worker: cannot open cache`, "reading hello"},
	}
	for _, c := range cases {
		err := dial(c.frame)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("handshake on %q: error = %v, want mention of %q", c.frame, err, c.want)
		}
	}
	good := `{"hello":true,"proto":` + proto + `,"keyVersion":"` + keyVersion + `","capacity":3,"cacheDir":"/tmp/c"}`
	conn, err := newWireConn(strings.NewReader(good), &strings.Builder{}, 0, nil)
	if err != nil {
		t.Fatalf("valid hello rejected: %v", err)
	}
	if h := conn.Hello(); h.Capacity != 3 || h.CacheDir != "/tmp/c" {
		t.Errorf("hello = %+v", h)
	}
}

// The worker session loop must tolerate blank lines and stray
// whitespace between frames (wrapper scripts emit them), and a
// genuinely malformed frame must name its index.
func TestServeSessionWhitespaceAndFrameErrors(t *testing.T) {
	req := func(key string) string {
		b, _ := json.Marshal(WireRequest{Key: key, Spec: json.RawMessage(`{}`)})
		return string(b)
	}
	in := strings.NewReader("\n\n" + req("k0") + "\n \n\t\n" + req("k1") + "\r\n   \n")
	var out strings.Builder
	err := ServeWorker(in, &out, func(key string, _ json.RawMessage) Result {
		return Result{Key: key}
	})
	if err != nil {
		t.Fatalf("whitespace between frames killed the session: %v", err)
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var hello WireHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"k0", "k1"} {
		var resp WireResponse
		if err := dec.Decode(&resp); err != nil || resp.Key != want {
			t.Fatalf("response = %+v, %v (want key %s)", resp, err, want)
		}
	}

	bad := strings.NewReader(req("k0") + "\nnot a frame\n")
	err = ServeWorker(bad, &strings.Builder{}, func(key string, _ json.RawMessage) Result {
		return Result{Key: key}
	})
	if err == nil || !strings.Contains(err.Error(), "frame 2") {
		t.Errorf("malformed frame error = %v, want the offending frame index (frame 2)", err)
	}
}

// tcpServe starts a Serve worker pool on localhost whose run executes
// stubSpec payloads, returning its address and a shutdown func that
// triggers the graceful drain and waits for Serve to return.
func tcpServe(t *testing.T, capacity int, cacheDir string) (addr string, shutdown func() error) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- Serve(ctx, lis, ServeConfig{
			Capacity: capacity,
			CacheDir: cacheDir,
			Run: func(key string, spec json.RawMessage) Result {
				var s stubSpec
				if err := json.Unmarshal(spec, &s); err != nil {
					return Result{Key: key, Err: err.Error()}
				}
				if s.Fail {
					return Result{Key: key, Err: "stub failure"}
				}
				return Result{Key: key, Sim: fl.Result{PPW: s.PPW}}
			},
		})
	}()
	return lis.Addr().String(), func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(5 * time.Second):
			return fmt.Errorf("Serve did not drain within 5s")
		}
	}
}

// End-to-end on localhost TCP: the coordinator learns the pool's
// capacity from the hello, streams the batch over real sockets, and
// produces results identical to the in-process pool backend; the pool
// then drains cleanly.
func TestTCPTransportEndToEnd(t *testing.T) {
	addr, shutdown := tcpServe(t, 3, "")
	jobs := specJobs(17)
	jobs = append(jobs, stubJob(17, stubSpec{Fail: true}))
	want := NewPoolBackend(4).Run(jobs, nil)
	// A failing job body is an error result on both paths, but the pool
	// wraps the panic differently from the stub's explicit Err; align
	// the expectation with the wire path's literal Err.
	want[17] = Result{Key: jobs[17].Key(), Err: "stub failure"}

	c := NewProcBackend(ProcConfig{Workers: []string{addr}})
	var done atomic.Int64
	results := c.Run(jobs, func(int, Result) { done.Add(1) })
	for i := range want {
		if results[i].Err != want[i].Err || results[i].Sim.PPW != want[i].Sim.PPW {
			t.Errorf("job %d over TCP = %+v, want %+v", i, results[i], want[i])
		}
	}
	if done.Load() != int64(len(jobs)) {
		t.Errorf("done fired %d times, want %d", done.Load(), len(jobs))
	}
	if got := c.Workers(); got != 3 {
		t.Errorf("coordinator learned capacity %d from the hello, want 3", got)
	}
	if err := shutdown(); err != nil {
		t.Errorf("graceful drain: %v", err)
	}
}

// A TCP pool dying mid-batch (listener and all sessions torn down)
// must not lose the batch when a healthy endpoint remains.
func TestTCPDisconnectMidBatchFailsOver(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns sync.Map
	answered := make(chan struct{}, 64)
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			conns.Store(nc, struct{}{})
			go func(nc net.Conn) {
				_ = ServeSession(nc, nc, func(key string, spec json.RawMessage) Result {
					answered <- struct{}{}
					// Give the coordinator time to queue more work on this
					// endpoint before it dies.
					time.Sleep(10 * time.Millisecond)
					var s stubSpec
					_ = json.Unmarshal(spec, &s)
					return Result{Key: key, Sim: fl.Result{PPW: s.PPW}}
				}, WorkerOptions{Capacity: 1})
			}(nc)
		}
	}()

	healthyAddr, shutdown := tcpServe(t, 1, "")
	jobs := specJobs(12)
	c := NewProcBackend(ProcConfig{Workers: []string{lis.Addr().String(), healthyAddr}})
	go func() {
		// Kill the flaky pool after it has started answering.
		<-answered
		_ = lis.Close()
		conns.Range(func(k, _ any) bool {
			_ = k.(net.Conn).Close()
			return true
		})
	}()
	results := c.Run(jobs, nil)
	for i, r := range results {
		if r.Err != "" || r.Sim.PPW != float64(i) {
			t.Errorf("job %d = %+v after mid-batch disconnect", i, r)
		}
	}
	if err := shutdown(); err != nil {
		t.Errorf("graceful drain: %v", err)
	}
}

// A listener that is not a fedgpo worker (wrong protocol on the port)
// must be rejected by the handshake, and with no other endpoint the
// batch surfaces handshake errors rather than hanging or poisoning
// the cache.
func TestTCPHandshakeMismatchRejectsEndpoint(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			enc := json.NewEncoder(nc)
			_ = enc.Encode(WireHello{Hello: true, Proto: ProtoVersion + 1, KeyVersion: keyVersion, Capacity: 1})
			_ = nc.Close()
		}
	}()
	c := NewProcBackend(ProcConfig{Workers: []string{lis.Addr().String()}})
	results := c.Run(specJobs(2), nil)
	for i, r := range results {
		if !strings.Contains(r.Err, "handshake") {
			t.Errorf("job %d error = %q, want a handshake rejection", i, r.Err)
		}
	}
}

// A graceful drain must let an in-flight job finish and deliver its
// response before Serve returns.
func TestTCPDrainDeliversInFlightResponse(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- Serve(ctx, lis, ServeConfig{
			Capacity: 1,
			Run: func(key string, _ json.RawMessage) Result {
				close(started)
				time.Sleep(100 * time.Millisecond)
				return Result{Key: key, Sim: fl.Result{PPW: 42}}
			},
		})
	}()
	tr := &TCPTransport{Addr: lis.Addr().String()}
	conn, err := tr.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(WireRequest{Key: "k0", Spec: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	<-started
	cancel() // SIGTERM equivalent: drain begins while the job runs
	resp, err := conn.Recv()
	if err != nil || resp.Key != "k0" || resp.Result.Sim.PPW != 42 {
		t.Errorf("in-flight response lost during drain: %+v, %v", resp, err)
	}
	_ = conn.Close()
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("Serve returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("Serve did not return after drain")
	}
}

// With a reply timeout configured, a worker that accepts a job and
// never answers must fail the session instead of hanging the batch.
func TestTCPReplyTimeout(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			// Hello, then silence: accept requests, answer nothing.
			_ = json.NewEncoder(nc).Encode(WireHello{Hello: true, Proto: ProtoVersion, KeyVersion: keyVersion, Capacity: 1})
		}
	}()
	c := NewCoordinator(ProcConfig{},
		&TCPTransport{Addr: lis.Addr().String(), ReplyTimeout: 100 * time.Millisecond})
	start := time.Now()
	results := c.Run(specJobs(1), nil)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung worker stalled the batch for %v", elapsed)
	}
	if !strings.Contains(results[0].Err, "worker shard failed after retry") {
		t.Errorf("result = %+v, want a shard failure after the reply timeout", results[0])
	}
}

// Results from a worker that does not share the coordinator's cache
// directory must be persisted by the coordinator's executor, so a warm
// rerun is hit-only even when the remote pools cache elsewhere.
func TestExecutorPersistsResultsFromForeignCacheWorkers(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The pool advertises no cache directory while the coordinator has
	// one — the pre-transport coordinator would have assumed sharing
	// and skipped its own writes.
	addr, shutdown := tcpServe(t, 2, "")
	jobs := specJobs(5)
	cold := NewExecutorBackend(NewProcBackend(ProcConfig{Workers: []string{addr}, CacheDir: dir}), cache)
	first := cold.RunAll(jobs)
	if st := cold.Stats(); st.Runs != int64(len(jobs)) || st.Hits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	// Warm rerun with every endpoint gone: hits must carry the batch.
	warm := NewExecutorBackend(NewProcBackend(ProcConfig{Workers: []string{addr}, CacheDir: dir}), cache)
	second := warm.RunAll(jobs)
	if st := warm.Stats(); st.Runs != 0 || st.Hits != int64(len(jobs)) {
		t.Errorf("warm stats = %+v, want all hits with the worker pool gone", st)
	}
	for i := range jobs {
		if !second[i].Cached || second[i].Sim.PPW != first[i].Sim.PPW {
			t.Errorf("warm result %d not served from cache: %+v", i, second[i])
		}
	}
}
