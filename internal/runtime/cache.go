package runtime

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fedgpo/internal/telemetry"
)

// envelope is the legacy on-disk cache entry: a JSON object carrying
// the canonical key next to the payload. New entries are written as
// binary envelopes (see cachecodec.go); this layout survives only as a
// read-fallback so cache directories produced by earlier versions stay
// warm, and entries it serves are migrated to the binary format.
type envelope struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// DefaultPayloadCacheBytes is the byte cap on the decoded-payload
// layer: large enough to hold every snapshot and trace artifact a
// paper-scale sweep re-reads, small enough that a report over a
// multi-gigabyte cache directory never mirrors it into process memory.
const DefaultPayloadCacheBytes = 64 << 20

// lookup source classes, in priority order of the read path.
const (
	srcMiss    = iota // no entry in any layer or format
	srcMem     = iota // memory-only mode map hit
	srcPayload = iota // decoded-payload layer hit (no disk read)
	srcDisk    = iota // envelope read from disk (either format)
	srcCorrupt = iota // a file existed but failed validation; discarded
)

// Cache is the content-addressed run cache. Without a directory it
// keeps payloads in an in-memory map of key-hash to JSON; with one,
// entries live in <dir>/<hash>.binz binary envelopes (legacy
// <dir>/<hash>.json entries remain readable and are migrated on hit).
// Disk hits pass through a byte-capped decoded-payload LRU so cells
// re-read within one run cost one file read, and LRU mtime touches are
// queued and coalesced off the hit path (flushed at executor shutdown,
// Prune, or asynchronously past a threshold). It is safe for
// concurrent use.
type Cache struct {
	mu  sync.RWMutex
	mem map[string][]byte // hash -> payload JSON (memory-only mode)
	dir string
	col *telemetry.Collector

	payloadMu sync.Mutex
	payloads  *payloadLRU

	touch   toucher
	flushWG sync.WaitGroup // in-flight async touch flushes
}

// SetCollector attaches a telemetry collector recording cache-level
// events: per-read source counters (mem/payload/disk hits, misses,
// corrupt discards), read/decode/write phase time, touch-flush
// activity, and Prune evictions. A nil collector disables recording.
func (c *Cache) SetCollector(col *telemetry.Collector) { c.col = col }

// SetPayloadCacheBytes resizes the decoded-payload layer's byte cap
// (<= 0 disables the layer). The layer is cleared on resize.
func (c *Cache) SetPayloadCacheBytes(maxBytes int64) {
	c.payloadMu.Lock()
	c.payloads = newPayloadLRU(maxBytes)
	c.payloadMu.Unlock()
}

// NewCache returns a cache. dir == "" keeps entries in memory only;
// otherwise entries persist under dir (created if missing).
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runtime: cache dir: %w", err)
		}
	}
	return &Cache{
		mem:      make(map[string][]byte),
		dir:      dir,
		payloads: newPayloadLRU(DefaultPayloadCacheBytes),
	}, nil
}

// Dir returns the on-disk directory, or "" for a memory-only cache.
func (c *Cache) Dir() string { return c.dir }

// Get looks the key up and unmarshals the payload into v on a hit.
func (c *Cache) Get(key string, v any) bool {
	return c.GetHashed(key, HashKey(key), v)
}

// GetHashed is Get for callers that already hold the key's content
// address — a batch executor hashes each canonical key exactly once
// and reuses the digest across its lookup and write-back instead of
// re-running SHA-256 per cache touch. hash must equal HashKey(key).
func (c *Cache) GetHashed(key, hash string, v any) bool {
	start := time.Now()
	src := c.get(key, hash, v)
	c.col.RecordPhase(telemetry.PhaseCacheRead, time.Since(start))
	c.col.Count(func(cc *telemetry.Counters) {
		switch src {
		case srcMem:
			cc.CacheMemHits++
		case srcPayload:
			cc.CachePayloadHits++
		case srcDisk:
			cc.CacheDiskHits++
		case srcCorrupt:
			cc.CacheCorrupt++
		default:
			cc.CacheMisses++
		}
	})
	return src == srcMem || src == srcPayload || src == srcDisk
}

// get is Get's lookup body; the returned source classifies which layer
// served the read (or how it failed). The disk read path is: decoded-
// payload layer, then the binary envelope, then the legacy JSON
// envelope — a legacy hit is migrated to the binary format in place so
// a pre-existing directory converges to one format as it is re-read.
func (c *Cache) get(key, hash string, v any) int {
	if c.dir == "" {
		c.mu.RLock()
		payload, ok := c.mem[hash]
		c.mu.RUnlock()
		if !ok {
			return srcMiss
		}
		if !c.unmarshalPayload(payload, v) {
			return srcCorrupt
		}
		return srcMem
	}
	c.payloadMu.Lock()
	payload, ok := c.payloads.get(hash)
	c.payloadMu.Unlock()
	if ok {
		if c.unmarshalPayload(payload, v) {
			c.queueTouch(hash)
			return srcPayload
		}
		// The layer only holds payloads that already unmarshalled once,
		// so this is unreachable short of caller-side type skew; drop the
		// entry and fall through to disk.
		c.payloadMu.Lock()
		c.payloads.drop(hash)
		c.payloadMu.Unlock()
	}
	if b, err := os.ReadFile(c.path(hash)); err == nil {
		// A corrupted or foreign file — truncated, wrong magic, an
		// envelope whose key does not match (hash collision) — is a
		// miss, not an error: the cell just re-runs.
		payload, ok := decodeBinaryEnvelope(b, key)
		if !ok || !c.unmarshalPayload(payload, v) {
			return srcCorrupt
		}
		c.cachePayload(hash, payload)
		c.queueTouch(hash)
		return srcDisk
	}
	b, err := os.ReadFile(c.legacyPath(hash))
	if err != nil {
		return srcMiss
	}
	var env envelope
	if json.Unmarshal(b, &env) != nil || env.Key != key {
		return srcCorrupt
	}
	if !c.unmarshalPayload(env.Payload, v) {
		return srcCorrupt
	}
	// Migrate the entry: publish the binary envelope, then retire the
	// legacy file. Both steps are best effort — a failed write leaves
	// the legacy entry serving reads exactly as before.
	if c.writeBinary(key, hash, env.Payload) == nil {
		_ = os.Remove(c.legacyPath(hash))
	}
	c.cachePayload(hash, env.Payload)
	c.queueTouch(hash)
	return srcDisk
}

// unmarshalPayload decodes payload into v under the cacheDecode phase
// timer, so envelope I/O and JSON decode are separable in a profile.
func (c *Cache) unmarshalPayload(payload []byte, v any) bool {
	start := time.Now()
	err := json.Unmarshal(payload, v)
	c.col.RecordPhase(telemetry.PhaseCacheDecode, time.Since(start))
	return err == nil
}

// cachePayload admits a disk hit's payload bytes to the decoded-payload
// layer. Only disk hits are admitted — never Put write-through — so a
// corrupted disk entry is still caught by the next uncached read.
func (c *Cache) cachePayload(hash string, payload []byte) {
	c.payloadMu.Lock()
	c.payloads.put(hash, payload)
	c.payloadMu.Unlock()
}

// queueTouch records that hash's entry was used, deferring the mtime
// write. Past touchFlushThreshold pending entries the queue drains on
// a background goroutine so long-lived workers keep mtimes fresh
// without ever paying the syscall on a hit path.
func (c *Cache) queueTouch(hash string) {
	if c.touch.queue(hash) {
		c.col.Count(func(cc *telemetry.Counters) { cc.CacheTouchesCoalesced++ })
		return
	}
	if c.touch.pendingLen() >= touchFlushThreshold {
		c.flushWG.Add(1)
		go func() {
			defer c.flushWG.Done()
			c.flushTouches()
		}()
	}
}

// FlushTouches applies every queued LRU mtime touch and waits for any
// in-flight background flush, returning how many entries this call
// touched. The executor calls it at Close; Prune calls it before
// scanning so eviction order reflects every recorded use.
func (c *Cache) FlushTouches() int {
	n := c.flushTouches()
	c.flushWG.Wait()
	return n
}

// Prune enforces a byte budget on the on-disk cache: entries are
// removed oldest-mtime-first until the surviving total is at most
// maxBytes, and orphaned put-* temp files (writers killed mid-publish)
// are cleared. Both envelope formats count against the budget and
// compete in the same mtime order. Queued touches are flushed first,
// so mtime order is LRU order over every recorded use; removed hashes
// are also dropped from the decoded-payload layer so an evicted entry
// cannot be served from memory. It returns the number of entries
// removed (temp files not counted). Memory-only caches and
// maxBytes <= 0 are no-ops. Call it at startup, before workers share
// the directory — it does not coordinate with concurrent writers
// beyond each removal being atomic.
func (c *Cache) Prune(maxBytes int64) (int, error) {
	if c.dir == "" || maxBytes <= 0 {
		return 0, nil
	}
	c.FlushTouches()
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, fmt.Errorf("runtime: cache prune: %w", err)
	}
	type entry struct {
		path  string
		hash  string
		mtime time.Time
		size  int64
	}
	entries := make([]entry, 0, len(dirents))
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		// Clear orphaned put-* temp files (a writer killed between
		// CreateTemp and the rename publish — e.g. a worker subprocess
		// cut down mid-Put). They are invisible to Get, so at startup
		// they are pure garbage that would otherwise accumulate outside
		// the byte budget forever.
		if strings.HasPrefix(de.Name(), "put-") {
			_ = os.Remove(filepath.Join(c.dir, de.Name()))
			continue
		}
		ext := filepath.Ext(de.Name())
		if ext != binExt && ext != legacyExt {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // deleted under us: nothing to evict
		}
		entries = append(entries, entry{
			path:  filepath.Join(c.dir, de.Name()),
			hash:  strings.TrimSuffix(de.Name(), ext),
			mtime: info.ModTime(),
			size:  info.Size(),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.After(entries[j].mtime) })
	var total int64
	removed := 0
	for _, e := range entries {
		total += e.size
		if total <= maxBytes {
			continue
		}
		if err := os.Remove(e.path); err == nil || os.IsNotExist(err) {
			removed++
			c.payloadMu.Lock()
			c.payloads.drop(e.hash)
			c.payloadMu.Unlock()
		}
	}
	c.col.Count(func(cc *telemetry.Counters) { cc.Evictions += int64(removed) })
	return removed, nil
}

// Put stores v under the key, in memory or (when configured) on disk.
func (c *Cache) Put(key string, v any) error {
	return c.PutHashed(key, HashKey(key), v)
}

// PutHashed is Put for callers that already hold the key's content
// address; hash must equal HashKey(key). On-disk entries are written
// as binary envelopes.
func (c *Cache) PutHashed(key, hash string, v any) error {
	start := time.Now()
	defer func() { c.col.RecordPhase(telemetry.PhaseCacheWrite, time.Since(start)) }()
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runtime: cache payload: %w", err)
	}
	if c.dir == "" {
		c.mu.Lock()
		c.mem[hash] = payload
		c.mu.Unlock()
		return nil
	}
	// An overwrite invalidates whatever the decoded-payload layer holds
	// for this hash; the next disk hit re-admits the fresh bytes.
	c.payloadMu.Lock()
	c.payloads.drop(hash)
	c.payloadMu.Unlock()
	return c.writeBinary(key, hash, payload)
}

// writeBinary publishes a binary envelope for (key, payload)
// atomically: a concurrent reader sees either nothing or the complete
// entry, never a torn write.
func (c *Cache) writeBinary(key, hash string, payload []byte) error {
	b, err := encodeBinaryEnvelope(key, payload)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(hash))
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+binExt)
}

func (c *Cache) legacyPath(hash string) string {
	return filepath.Join(c.dir, hash+legacyExt)
}
