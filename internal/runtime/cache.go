package runtime

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fedgpo/internal/telemetry"
)

// envelope is the on-disk cache entry: the canonical key travels with
// the payload so a disk hit can be verified against the requested key.
type envelope struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Cache is the content-addressed run cache. Without a directory it
// keeps payloads in an in-memory map of key-hash to JSON; with one,
// entries live in <dir>/<hash>.json files only — hits re-read from
// disk rather than pinning every cell's round history in process
// memory for the report's lifetime. It is safe for concurrent use.
type Cache struct {
	mu  sync.RWMutex
	mem map[string][]byte // hash -> payload JSON (memory-only mode)
	dir string
	col *telemetry.Collector
}

// SetCollector attaches a telemetry collector recording cache-level
// events: per-read mem/disk hit and miss counters, read/write phase
// time, and Prune evictions. A nil collector disables recording.
func (c *Cache) SetCollector(col *telemetry.Collector) { c.col = col }

// NewCache returns a cache. dir == "" keeps entries in memory only;
// otherwise entries persist under dir (created if missing).
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runtime: cache dir: %w", err)
		}
	}
	return &Cache{mem: make(map[string][]byte), dir: dir}, nil
}

// Dir returns the on-disk directory, or "" for a memory-only cache.
func (c *Cache) Dir() string { return c.dir }

// Get looks the key up and unmarshals the payload into v on a hit.
func (c *Cache) Get(key string, v any) bool {
	return c.GetHashed(key, HashKey(key), v)
}

// GetHashed is Get for callers that already hold the key's content
// address — a batch executor hashes each canonical key exactly once
// and reuses the digest across its lookup and write-back instead of
// re-running SHA-256 per cache touch. hash must equal HashKey(key).
func (c *Cache) GetHashed(key, hash string, v any) bool {
	start := time.Now()
	hit, disk := c.get(key, hash, v)
	c.col.RecordPhase(telemetry.PhaseCacheRead, time.Since(start))
	c.col.Count(func(cc *telemetry.Counters) {
		switch {
		case hit && disk:
			cc.CacheDiskHits++
		case hit:
			cc.CacheMemHits++
		default:
			cc.CacheMisses++
		}
	})
	return hit
}

// get is Get's lookup body; disk reports which storage mode served a
// hit.
func (c *Cache) get(key, hash string, v any) (hit, disk bool) {
	if c.dir == "" {
		c.mu.RLock()
		payload, ok := c.mem[hash]
		c.mu.RUnlock()
		if !ok {
			return false, false
		}
		return json.Unmarshal(payload, v) == nil, false
	}
	b, err := os.ReadFile(c.path(hash))
	if err != nil {
		return false, true
	}
	var env envelope
	// A corrupted or foreign file — including an envelope whose key
	// does not match (hash collision) — is a miss, not an error.
	if json.Unmarshal(b, &env) != nil || env.Key != key {
		return false, true
	}
	if json.Unmarshal(env.Payload, v) != nil {
		return false, true
	}
	// Touch the entry so mtime tracks last use, making Prune's
	// oldest-mtime-first order an LRU eviction. Best effort: a failed
	// touch only skews future eviction order.
	now := time.Now()
	_ = os.Chtimes(c.path(hash), now, now)
	return true, true
}

// Prune enforces a byte budget on the on-disk cache: entries are
// removed oldest-mtime-first until the surviving total is at most
// maxBytes, and orphaned put-* temp files (writers killed mid-publish)
// are cleared. Get touches entries on every hit, so mtime order is
// LRU order. It returns the number of entries removed (temp files not
// counted). Memory-only caches and maxBytes <= 0 are no-ops. Call it
// at startup, before workers share the directory — it does not
// coordinate with concurrent writers beyond each removal being
// atomic.
func (c *Cache) Prune(maxBytes int64) (int, error) {
	if c.dir == "" || maxBytes <= 0 {
		return 0, nil
	}
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, fmt.Errorf("runtime: cache prune: %w", err)
	}
	type entry struct {
		path  string
		mtime time.Time
		size  int64
	}
	entries := make([]entry, 0, len(dirents))
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		// Clear orphaned put-* temp files (a writer killed between
		// CreateTemp and the rename publish — e.g. a worker subprocess
		// cut down mid-Put). They are invisible to Get, so at startup
		// they are pure garbage that would otherwise accumulate outside
		// the byte budget forever.
		if strings.HasPrefix(de.Name(), "put-") {
			_ = os.Remove(filepath.Join(c.dir, de.Name()))
			continue
		}
		if !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // deleted under us: nothing to evict
		}
		entries = append(entries, entry{filepath.Join(c.dir, de.Name()), info.ModTime(), info.Size()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.After(entries[j].mtime) })
	var total int64
	removed := 0
	for _, e := range entries {
		total += e.size
		if total <= maxBytes {
			continue
		}
		if err := os.Remove(e.path); err == nil || os.IsNotExist(err) {
			removed++
		}
	}
	c.col.Count(func(cc *telemetry.Counters) { cc.Evictions += int64(removed) })
	return removed, nil
}

// Put stores v under the key, in memory or (when configured) on disk.
func (c *Cache) Put(key string, v any) error {
	return c.PutHashed(key, HashKey(key), v)
}

// PutHashed is Put for callers that already hold the key's content
// address; hash must equal HashKey(key).
func (c *Cache) PutHashed(key, hash string, v any) error {
	start := time.Now()
	defer func() { c.col.RecordPhase(telemetry.PhaseCacheWrite, time.Since(start)) }()
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runtime: cache payload: %w", err)
	}
	if c.dir == "" {
		c.mu.Lock()
		c.mem[hash] = payload
		c.mu.Unlock()
		return nil
	}
	b, err := json.Marshal(envelope{Key: key, Payload: payload})
	if err != nil {
		return err
	}
	// Atomic publish: a concurrent reader sees either nothing or the
	// complete entry, never a torn write.
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(hash))
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}
