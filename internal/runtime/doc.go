// Package runtime is the parallel experiment runtime: it executes
// independent simulation cells ("jobs") across a sharded worker pool
// and memoizes completed cells in a content-addressed run cache, so
// that regenerating a report or sweep only simulates cells whose
// configuration actually changed.
//
// # Jobs, canonical keys and spec addressing
//
// A Job names one simulation cell — a (scenario, controller, seed)
// triple plus a Kind tag distinguishing job families that carry
// different payloads ("sim" for plain runs, "sec54" for the overhead
// probe, "oracle" for Table 5's prediction-accuracy probe, ...). The
// naming fields are canonical strings built by the caller from every
// input that influences the cell's outcome: the scenario descriptor
// serializes fleet size, round budget, partition, variance models and
// deadline; the controller descriptor serializes the policy family and
// its full configuration (for configurable controllers, the JSON
// encoding of their config struct). Job.Key joins these fields with a
// version prefix; bump keyVersion whenever result semantics change so
// stale cache entries can never be replayed.
//
// Jobs are spec-addressed: alongside the key fields, Job.Payload
// carries the serialized JobSpec (exp package) the cell was built
// from — a self-contained JSON description (scenario spec, declared
// contender, seed, probe knobs) from which any process derives both
// the same canonical key and the same result. The key fields and the
// payload are two projections of one spec: the executor addresses the
// cache with the former, the procs backend ships the latter across
// the process boundary, and the worker on the far side re-derives the
// key from the decoded spec and refuses mismatches, so a foreign spec
// can never poison a cache entry it does not name.
//
// # Scenario-spec schema
//
// Since v3 the scenario half of a key is itself data-driven: the
// JobSpec's "scenario" block is an exp.ScenarioSpec composing five
// sub-specs, each with its own JSON codec, validation and
// canonical-key contribution:
//
//	{
//	  "name":         "realistic",           // display only, never hashed
//	  "workload":     { ... },               // full workload struct
//	  "fleet":        {"mix": {"high":30,"mid":70,"low":100}, "size": 200},
//	  "partition":    {"kind": "iid" | "dirichlet", "alpha": 0.1, "seed": 42},
//	  "network":      {"kind": "stable" | "unstable",
//	                   "meanMbps": 0, "stdMbps": 0, "floorMbps": 0},
//	  "interference": {"kind": "none" | "web-browsing" | "heavy-game",
//	                   "activeFraction": 0.5},
//	  "deadline":     {"kind": "none" | "fixed" | "auto",
//	                   "seconds": 0, "margin": 1.35, "slackSec": 15},
//	  "maxRounds":    400
//	}
//
// Zero values resolve to the paper defaults (30/70/100 mix at 200
// devices, IID data, stable channel, no co-runner, no deadline, 400
// rounds). The scenario key concatenates each sub-spec's resolved
// parameters —
//
//	<workload>/fleet=H30:M70:L100/rounds=400/part=iid/
//	net=gauss(mean=80,std=8,floor=1,tx=0.8,weak=1.9)/intf=none/deadline=0/agg=30
//
// — so two specs differing in any outcome-relevant field hash to
// distinct cells even when they share a display name, while
// resolved-default equivalences (zero value vs explicit paper
// default) share one cell. The display name is deliberately absent: a
// matrix-generated deployment that happens to equal a paper preset
// reuses the preset's cached cells.
//
// # Execution model and backends
//
// Executor.RunAll serves each batch in two steps: cache hits are
// answered directly (looked up concurrently, reported in job order),
// and the misses are handed to the executor's Backend. Results always
// come back in job order — results[i] belongs to jobs[i] regardless
// of backend, parallelism or scheduling — and a failed job yields a
// Result with Err set while the rest of the batch completes. Progress
// callbacks fire once per completed job (serialized by a mutex) and
// report done/total counts plus whether the cell was served from
// cache. Stats snapshots are taken under one lock, so hits/runs/
// errors are always mutually consistent even mid-batch.
//
// Two backends exist:
//
//   - PoolBackend (default): the sharded in-process pool. N workers
//     (default GOMAXPROCS) pull job indices from a shared channel and
//     run the job bodies with per-job panic isolation.
//
//   - ProcBackend: the multi-process shard coordinator behind the
//     CLIs' -backend=procs flag. Each batch is partitioned by
//     canonical key (ShardOf: SHA-256 of the key modulo the proc
//     count, so a cell lands on the same shard in every process); one
//     worker subprocess is spawned per non-empty shard and fed the
//     shard's specs. A shard whose worker fails — crash, truncated or
//     out-of-order output — is retried once on a fresh subprocess,
//     resending only the unanswered jobs; anything still unanswered
//     after the retry surfaces as error results.
//
// # Worker wire protocol
//
// The coordinator and its workers (cmd/fedgpo-worker) speak
// newline-delimited JSON over stdio. Each request on the worker's
// stdin is a WireRequest:
//
//	{"key": "<canonical job key>", "spec": <serialized JobSpec>}
//
// and each reply on its stdout is a WireResponse, strictly one per
// request in request order:
//
//	{"key": "<canonical job key>", "result": <result JSON>, "cached": bool}
//
// The worker decodes the spec, verifies it addresses the dispatched
// key, and executes it through its own Executor — same cache check,
// same panic isolation, same cache write-back as the pool path. The
// "cached" field travels beside the result because Result.Cached is
// deliberately excluded from result JSON; the coordinator folds it
// into its own hit/run statistics. Worker stderr passes through to
// the coordinator's stderr. ServeWorker implements the worker side,
// so any binary can join the protocol.
//
// Workers share the coordinator's -cachedir: run results and
// pretrained-controller snapshots written by one process are read by
// all, which is what keeps warm-rerun and pretrain-once semantics
// identical across backends (with a memory-only cache each worker
// process warms its own pretrains instead; results are byte-identical
// either way, because snapshots are deterministic and always served
// through a lossless JSON round-trip).
//
// Below the job level sits a second, inner tier of parallelism: each
// simulation may fan its per-round participant modeling across an
// fl.Pool — a token bucket of extra goroutines shared by every run the
// experiment runtime executes concurrently, so the combined outer
// (cells) and inner (participants) goroutine count stays bounded by
// worker count + inner budget. Inner fan-out is borrow-only and
// non-blocking, and the per-round merge happens serially in fixed
// device order, so results are byte-identical for any inner budget;
// the budget therefore never appears in a cache key.
//
// # Cache layout
//
// The cache is content-addressed by the SHA-256 hex digest of the
// canonical job key. Without a directory, entries live in an
// in-memory map; when one is configured (the CLIs' -cachedir flag)
// entries live on disk only — hits re-read the file rather than
// pinning every cell's history in process memory — persisted as
// <dir>/<hash>.json files holding a small envelope
//
//	{"key": "<canonical key>", "payload": <result JSON>}
//
// written atomically (temp file + rename, so a crash mid-write can
// never publish a torn entry). On a disk hit the envelope key is
// compared against the requested key — a mismatch (hash collision or
// a corrupted/foreign file) is treated as a miss and the cell re-runs,
// repairing the entry in place. Results that ended in an error are
// never cached.
//
// # Cache eviction
//
// Disk entries no longer live forever: Cache.Prune (the CLIs'
// -cache-max-bytes flag) removes entries oldest-mtime-first at
// startup until the directory fits the byte budget. Get touches an
// entry's mtime on every hit, so mtime order approximates LRU — a
// cell a warm report still reads outlives a newer cell nothing asks
// for. Pruning is a coordinator-startup job only; worker subprocesses
// never prune the directory they share.
//
// # Pretrained-controller cache
//
// The cache also stores non-job artifacts under KeyFor-built keys.
// The largest such family is the pretrained-controller cache: the warm
// FedGPO contender's Q-table warm-up is executed once per scenario and
// captured as a core.Snapshot under
//
//	<keyVersion>|pretrain|<scenario key>|cfg=<controller config JSON>|warmseed=<N>|warmrounds=<N>
//
// so every figure/table cell (and the Table 5 oracle probes) that
// evaluates the same warmed controller restores it from the snapshot
// instead of re-running the warm-up per (cell, seed). The key carries
// the full controller configuration and the warm-up deployment, so
// ablation variants and different scenarios never share tables.
// Snapshots are always served through the cache's JSON round-trip
// (which is lossless for float64), so a cell's result does not depend
// on whether its snapshot was built in-process or read from disk.
// The experiment runtime's in-process singleflight guarantees at most
// one warm-up per key even when many workers request it concurrently.
// Grid-search selections ("fixed-best" keys) follow the same
// KeyFor pattern.
//
// # Result store
//
// Result carries the full structured outcome of a cell: the
// simulator's summary metrics and per-round history (fl.Result) plus
// an optional Kind-specific Extra payload. Store collects the results
// a batch produced, in insertion order, and can round-trip them to a
// single JSON file so table/figure constructors — or external tooling
// — can consume completed runs without re-simulating.
package runtime
