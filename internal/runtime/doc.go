// Package runtime is the parallel experiment runtime: it executes
// independent simulation cells ("jobs") across a sharded worker pool
// and memoizes completed cells in a content-addressed run cache, so
// that regenerating a report or sweep only simulates cells whose
// configuration actually changed.
//
// # Jobs and canonical keys
//
// A Job names one simulation cell — a (scenario, controller, seed)
// triple plus a Kind tag distinguishing job families that carry
// different payloads ("sim" for plain runs, "sec54" for the overhead
// probe, "oracle" for Table 5's prediction-accuracy probe, ...). The
// naming fields are canonical strings built by the caller from every
// input that influences the cell's outcome: the scenario descriptor
// serializes fleet size, round budget, partition, variance models and
// deadline; the controller descriptor serializes the policy family and
// its full configuration (for configurable controllers, the JSON
// encoding of their config struct). Job.Key joins these fields with a
// version prefix; bump keyVersion whenever result semantics change so
// stale cache entries can never be replayed.
//
// # Execution model
//
// Executor.RunAll fans a batch of jobs out over N workers (default
// GOMAXPROCS) pulling indices from a shared channel, and writes each
// result into the slot matching its job's position, so the returned
// slice order is deterministic regardless of worker count or
// scheduling. A panic inside one job is recovered by its worker and
// recorded in Result.Err; the remaining jobs still run. Progress
// callbacks fire once per completed job (serialized by a mutex) and
// report done/total counts plus whether the cell was served from
// cache.
//
// Below the job level sits a second, inner tier of parallelism: each
// simulation may fan its per-round participant modeling across an
// fl.Pool — a token bucket of extra goroutines shared by every run the
// experiment runtime executes concurrently, so the combined outer
// (cells) and inner (participants) goroutine count stays bounded by
// worker count + inner budget. Inner fan-out is borrow-only and
// non-blocking, and the per-round merge happens serially in fixed
// device order, so results are byte-identical for any inner budget;
// the budget therefore never appears in a cache key.
//
// # Cache layout
//
// The cache is content-addressed by the SHA-256 hex digest of the
// canonical job key. Without a directory, entries live in an
// in-memory map; when one is configured (the CLIs' -cachedir flag)
// entries live on disk only — hits re-read the file rather than
// pinning every cell's history in process memory — persisted as
// <dir>/<hash>.json files holding a small envelope
//
//	{"key": "<canonical key>", "payload": <result JSON>}
//
// written atomically (temp file + rename, so a crash mid-write can
// never publish a torn entry). On a disk hit the envelope key is
// compared against the requested key — a mismatch (hash collision or
// a corrupted/foreign file) is treated as a miss and the cell re-runs,
// repairing the entry in place. Results that ended in an error are
// never cached.
//
// # Pretrained-controller cache
//
// The cache also stores non-job artifacts under KeyFor-built keys.
// The largest such family is the pretrained-controller cache: the warm
// FedGPO contender's Q-table warm-up is executed once per scenario and
// captured as a core.Snapshot under
//
//	<keyVersion>|pretrain|<scenario key>|cfg=<controller config JSON>|warmseed=<N>|warmrounds=<N>
//
// so every figure/table cell (and the Table 5 oracle probes) that
// evaluates the same warmed controller restores it from the snapshot
// instead of re-running the warm-up per (cell, seed). The key carries
// the full controller configuration and the warm-up deployment, so
// ablation variants and different scenarios never share tables.
// Snapshots are always served through the cache's JSON round-trip
// (which is lossless for float64), so a cell's result does not depend
// on whether its snapshot was built in-process or read from disk.
// The experiment runtime's in-process singleflight guarantees at most
// one warm-up per key even when many workers request it concurrently.
// Grid-search selections ("fixed-best" keys) follow the same
// KeyFor pattern.
//
// # Result store
//
// Result carries the full structured outcome of a cell: the
// simulator's summary metrics and per-round history (fl.Result) plus
// an optional Kind-specific Extra payload. Store collects the results
// a batch produced, in insertion order, and can round-trip them to a
// single JSON file so table/figure constructors — or external tooling
// — can consume completed runs without re-simulating.
package runtime
