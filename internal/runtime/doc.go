// Package runtime is the parallel experiment runtime: it executes
// independent simulation cells ("jobs") across a sharded worker pool
// and memoizes completed cells in a content-addressed run cache, so
// that regenerating a report or sweep only simulates cells whose
// configuration actually changed.
//
// # Jobs and canonical keys
//
// A Job names one simulation cell — a (scenario, controller, seed)
// triple plus a Kind tag distinguishing job families that carry
// different payloads ("sim" for plain runs, "sec54" for the overhead
// probe, "oracle" for Table 5's prediction-accuracy probe, ...). The
// naming fields are canonical strings built by the caller from every
// input that influences the cell's outcome: the scenario descriptor
// serializes fleet size, round budget, partition, variance models and
// deadline; the controller descriptor serializes the policy family and
// its full configuration (for configurable controllers, the JSON
// encoding of their config struct). Job.Key joins these fields with a
// version prefix; bump keyVersion whenever result semantics change so
// stale cache entries can never be replayed.
//
// # Execution model
//
// Executor.RunAll fans a batch of jobs out over N workers (default
// GOMAXPROCS) pulling indices from a shared channel, and writes each
// result into the slot matching its job's position, so the returned
// slice order is deterministic regardless of worker count or
// scheduling. A panic inside one job is recovered by its worker and
// recorded in Result.Err; the remaining jobs still run. Progress
// callbacks fire once per completed job (serialized by a mutex) and
// report done/total counts plus whether the cell was served from
// cache.
//
// # Cache layout
//
// The cache is content-addressed by the SHA-256 hex digest of the
// canonical job key. Without a directory, entries live in an
// in-memory map; when one is configured (the CLIs' -cachedir flag)
// entries live on disk only — hits re-read the file rather than
// pinning every cell's history in process memory — persisted as
// <dir>/<hash>.json files holding a small envelope
//
//	{"key": "<canonical key>", "payload": <result JSON>}
//
// written atomically (temp file + rename). On a disk hit the envelope
// key is compared against the requested key — a mismatch (hash
// collision or a corrupted/foreign file) is treated as a miss and the
// cell re-runs. Results that ended in an error are never cached.
//
// # Result store
//
// Result carries the full structured outcome of a cell: the
// simulator's summary metrics and per-round history (fl.Result) plus
// an optional Kind-specific Extra payload. Store collects the results
// a batch produced, in insertion order, and can round-trip them to a
// single JSON file so table/figure constructors — or external tooling
// — can consume completed runs without re-simulating.
package runtime
