// Package runtime is the parallel experiment runtime: it executes
// independent simulation cells ("jobs") across a sharded worker pool
// and memoizes completed cells in a content-addressed run cache, so
// that regenerating a report or sweep only simulates cells whose
// configuration actually changed.
//
// # Jobs, canonical keys and spec addressing
//
// A Job names one simulation cell — a (scenario, controller, seed)
// triple plus a Kind tag distinguishing job families that carry
// different payloads ("sim" for plain runs, "sec54" for the overhead
// probe, "oracle" for Table 5's prediction-accuracy probe, ...). The
// naming fields are canonical strings built by the caller from every
// input that influences the cell's outcome: the scenario descriptor
// serializes fleet size, round budget, partition, variance models and
// deadline; the controller descriptor serializes the policy family and
// its full configuration (for configurable controllers, the JSON
// encoding of their config struct). Job.Key joins these fields with a
// version prefix; bump keyVersion whenever result semantics change so
// stale cache entries can never be replayed.
//
// Jobs are spec-addressed: alongside the key fields, Job.Payload
// carries the serialized JobSpec (exp package) the cell was built
// from — a self-contained JSON description (scenario spec, declared
// contender, seed, probe knobs) from which any process derives both
// the same canonical key and the same result. The key fields and the
// payload are two projections of one spec: the executor addresses the
// cache with the former, the procs backend ships the latter across
// the process boundary, and the worker on the far side re-derives the
// key from the decoded spec and refuses mismatches, so a foreign spec
// can never poison a cache entry it does not name.
//
// # Scenario-spec schema
//
// Since v3 the scenario half of a key is itself data-driven: the
// JobSpec's "scenario" block is an exp.ScenarioSpec composing five
// sub-specs, each with its own JSON codec, validation and
// canonical-key contribution:
//
//	{
//	  "name":         "realistic",           // display only, never hashed
//	  "workload":     { ... },               // full workload struct
//	  "fleet":        {"mix": {"high":30,"mid":70,"low":100}, "size": 200},
//	  "partition":    {"kind": "iid" | "dirichlet", "alpha": 0.1, "seed": 42},
//	  "network":      {"kind": "stable" | "unstable",
//	                   "meanMbps": 0, "stdMbps": 0, "floorMbps": 0},
//	  "interference": {"kind": "none" | "web-browsing" | "heavy-game",
//	                   "activeFraction": 0.5},
//	  "deadline":     {"kind": "none" | "fixed" | "auto",
//	                   "seconds": 0, "margin": 1.35, "slackSec": 15},
//	  "maxRounds":    400
//	}
//
// Zero values resolve to the paper defaults (30/70/100 mix at 200
// devices, IID data, stable channel, no co-runner, no deadline, 400
// rounds). The scenario key concatenates each sub-spec's resolved
// parameters —
//
//	<workload>/fleet=H30:M70:L100/rounds=400/part=iid/
//	net=gauss(mean=80,std=8,floor=1,tx=0.8,weak=1.9)/intf=none/deadline=0/agg=30
//
// — so two specs differing in any outcome-relevant field hash to
// distinct cells even when they share a display name, while
// resolved-default equivalences (zero value vs explicit paper
// default) share one cell. The display name is deliberately absent: a
// matrix-generated deployment that happens to equal a paper preset
// reuses the preset's cached cells.
//
// # Execution model and backends
//
// Executor.RunAll serves each batch in two steps: cache hits are
// answered directly (looked up concurrently, reported in job order),
// and the misses are handed to the executor's Backend. Results always
// come back in job order — results[i] belongs to jobs[i] regardless
// of backend, parallelism or scheduling — and a failed job yields a
// Result with Err set while the rest of the batch completes. Progress
// callbacks fire once per completed job (serialized by a mutex) and
// report done/total counts plus whether the cell was served from
// cache. Stats snapshots are taken under one lock, so hits/runs/
// errors are always mutually consistent even mid-batch.
//
// Two backends exist:
//
//   - PoolBackend (default): the sharded in-process pool. N workers
//     (default GOMAXPROCS) pull job indices from a shared channel and
//     run the job bodies with per-job panic isolation.
//
//   - Coordinator (ProcBackend): the distributed shard coordinator
//     behind the CLIs' -backend=procs and -workers flags. It executes
//     batches across worker endpoints reached through Transports —
//     local subprocess pools, remote TCP worker pools, or both in one
//     fleet — and is itself transport-agnostic: work distribution,
//     in-flight tracking, retry and budget forwarding live above the
//     Transport seam.
//
// # Transports
//
// A Transport dials wire sessions (Conn: Send/Recv/Close) to one
// worker endpoint:
//
//   - StdioTransport spawns one fedgpo-worker subprocess per session
//     and speaks the protocol over its stdin/stdout; the coordinator
//     runs cfg.Procs concurrent sessions against it. This is the PR 3
//     procs backend, behavior-preserved: one process per session, a
//     crashed worker fails only its own session, a retry lands on a
//     fresh process.
//
//   - TCPTransport connects to a long-lived remote pool started with
//     `fedgpo-worker -listen host:port` (one wire session per TCP
//     connection). The coordinator learns how many sessions to open
//     from the capacity the pool's hello advertises, and the pool
//     drains gracefully on SIGTERM: in-flight jobs finish and deliver
//     their responses before the process exits.
//
// Every session opens with a handshake: the worker speaks first,
// sending a hello frame
//
//	{"hello": true, "proto": 3, "maxProto": 4, "keyVersion": "v3",
//	 "capacity": N, "cacheDir": "<worker's -cachedir>"}
//
// which the coordinator validates before dispatching anything. A
// protocol-version or cache-key-scheme mismatch rejects the endpoint
// outright — a worker computing cells under a different key layout
// would otherwise publish wrong results into the shared cache. The
// advertised cacheDir decides write-back ownership: results from a
// worker sharing the coordinator's cache directory arrive marked
// Persisted (the worker already published them), while results from
// workers caching elsewhere — typical for remote pools — are written
// by the coordinator's executor, so warm -cachedir reruns are
// hit-only no matter where the cells originally ran.
//
// # Protocol negotiation and v4 binary framing
//
// The hello's "proto" stays at the v3 baseline every coordinator since
// PR 5 accepts; the upgrade rides in "maxProto", the highest
// generation the worker speaks. A v4-capable coordinator answers a
// v4-capable hello with a JSON ack frame
//
//	{"helloAck": true, "proto": 4}
//
// and both sides switch to the wire package's binary framing: each
// frame is a 4-byte big-endian length prefix followed by that many
// bytes of DEFLATE-compressed payload, bounded on both axes
// (wire.MaxFrameBytes on the wire, wire.MaxPayloadBytes decompressed)
// before anything is allocated. A v4 frame's payload is a JSON
// envelope — {"reqs": [...]} toward the worker, {"resps": [...]} back.
// Requests batch to amortize per-frame dispatch: the coordinator packs
// up to each session's fair share of the batch (capped at 16 specs)
// into one envelope. Responses stream: the worker answers every spec
// the moment it finishes, one single-response envelope frame each, in
// request order — so a worker death mid-frame costs only the specs it
// had not yet answered, the exact failure granularity of the v3
// one-spec-per-frame loop.
//
// Fallback is negotiated per session, both directions. A v3-only
// worker (no maxProto in its hello) never sees an ack — its first
// inbound frame is a plain WireRequest, exactly as before v4 existed —
// and a v3-only coordinator ignores the unknown maxProto field and
// never sends one; the worker distinguishes the two by its first
// inbound frame. Mixed fleets are therefore fine: each endpoint speaks
// the best generation both of its sides support, results are
// byte-identical either way, and the per-endpoint Frames/Specs
// counters record the realized batch density (always 1.0 on a
// fallback session).
//
// On a v3 session (and inside every v4 envelope), each request is a
// WireRequest:
//
//	{"key": "<canonical job key>", "spec": <serialized JobSpec>, "inner": N}
//
// and each reply a WireResponse, strictly one per request in request
// order:
//
//	{"key": "<canonical job key>", "result": <result JSON>, "cached": bool,
//	 "metrics": <telemetry.Metrics JSON, omitted when absent>}
//
// The worker decodes the spec, verifies it addresses the dispatched
// key, and executes it through its own Executor — same cache check,
// same panic isolation, same cache write-back as the pool path. The
// "cached" field travels beside the result because Result.Cached is
// deliberately excluded from result JSON; the coordinator folds it
// into its own hit/run statistics. The "metrics" field (protocol
// version 3) carries the worker's per-job telemetry snapshot the same
// way — Result.Telemetry is likewise excluded from result JSON, so
// neither field can ever reach a cache entry. Whitespace between frames (blank
// lines from wrapper scripts) is tolerated, and a malformed frame
// fails the session naming the offending frame index. Worker stderr
// passes through to the coordinator's stderr. ServeWorker/ServeSession
// implement the worker side and Serve the TCP accept loop, so any
// binary can join the protocol.
//
// The "inner" field is the wire-level worker budget (ROADMAP item e):
// the per-round participant fan-out the worker should lend its cells.
// With an explicit -inner-parallel it is forwarded verbatim; under the
// adaptive default the coordinator derives it per batch and per
// endpoint in the spirit of the pool backend's adaptive budget — an
// endpoint whose sessions outnumber its share of a small batch lends
// the idle sessions to intra-worker fan-out, and a saturated fleet
// keeps workers serial. The forwarded number matches the worker's
// process shape, read off the hello's capacity: a one-session process
// (stdio subprocess) gets its own per-cell share, while a -listen pool
// — whose concurrent cells share a single fl.Pool — gets the
// endpoint's whole spare as that shared budget. Budgets shape
// wall-clock only; results
// are byte-identical for any value, so the budget never enters cache
// keys and workers with an explicit -inner-parallel flag ignore it.
//
// # Dispatch, retry and failover
//
// The coordinator feeds endpoints work-queue style: every session
// pulls the next unstarted job as it finishes the last, so a slow or
// remote endpoint never straggles the batch the way PR 3's static
// key-partitioned shards could (ShardOf remains available for stable
// partitioning needs). Sessions dial lazily — no subprocess or
// connection exists until a session actually holds a job. Each
// session has a retry budget of one: on failure (crash, disconnect,
// reply timeout, truncated or out-of-order output) it re-dials and
// resends only the unanswered in-flight job — answered jobs are never
// resent, which matters because results were already streamed to the
// executor. A session whose budget runs out hands its job back to the
// queue for surviving endpoints to absorb; only when the whole fleet
// is gone do remaining jobs surface as error results. Per-endpoint
// dispatch/retry/give-up counters are snapshotted into
// Executor.Stats().Endpoints under a single lock.
//
// Workers share the coordinator's -cachedir when colocated: run
// results and pretrained-controller snapshots written by one process
// are read by all, which is what keeps warm-rerun and pretrain-once
// semantics identical across backends (with a memory-only or private
// worker cache each worker warms its own pretrains instead; results
// are byte-identical either way, because snapshots are deterministic
// and always served through a lossless JSON round-trip).
//
// Below the job level sits a second, inner tier of parallelism: each
// simulation may fan its per-round participant modeling across an
// fl.Pool — a token bucket of extra goroutines shared by every run the
// experiment runtime executes concurrently, so the combined outer
// (cells) and inner (participants) goroutine count stays bounded by
// worker count + inner budget. Inner fan-out is borrow-only and
// non-blocking, and the per-round merge happens serially in fixed
// device order, so results are byte-identical for any inner budget;
// the budget therefore never appears in a cache key.
//
// # Simulation kernel: scratch arenas and adaptive inner gating
//
// The cell bodies those workers execute run on fl's zero-allocation
// kernel. Every fl.Run borrows a per-run scratch arena (fl.Arena) from
// a process-wide sync.Pool — effectively one arena per outer worker —
// holding every buffer the round loop touches: participant rounds,
// device states, selection permutations (double-buffered so a
// controller's Observation can reference the previous round's
// participants), aggregation scratch, and a fixed
// [device.NumCategories]float64 energy accumulator that is only
// expanded into the Result's category map once at summarize time. The
// arena also carries bit-identical memo tables for the pure
// per-(profile, workload, params) cost terms — device.CostModel for
// batch compute times, netsim.CommModel for round-trip comm cost,
// data.Memo for partition skew/coverage signals — so steady-state
// rounds neither allocate nor re-derive invariant math (CI gates
// sim_allocs_per_round and tracks sim_ns_per_round in BENCH_PR9.json).
// Reuse is safe across cells of any shape: beginRun resizes and
// re-derives every table from the new config, and byte-identity of
// dirty-arena reruns is tested directly.
//
// Whether a round's participant loop actually borrows pool helpers is
// decided adaptively by fl.Gate. The gate learns the loop's
// per-participant cost from an EMA over observed round timings
// (normalized by realized worker count) and approves fan-out only when
// the estimated total work clears a floor worth a goroutine
// spawn/join, capping helpers so each chunk amortizes its dispatch and
// never exceeding available CPUs. Paper-scale rounds (tens of
// participants at tens of nanoseconds each) therefore run serial —
// unconditional fan-out measurably lost time (BENCH_PR8's
// inner_speedup_x = 0.93) — while big-fleet rounds fan out and win;
// the CI gate inner_speedup_x >= 1.0 holds the "never lose" property.
// Gating decisions shape wall-clock only: the per-index write contract
// and serial in-order merge keep results byte-identical for every
// budget and every gate decision, so neither enters a cache key.
//
// # Scheduling and snapshot shipping
//
// Jobs may carry a scheduling-affinity hint (Job.Affinity — for warm
// FedGPO cells, the pretrained-controller snapshot key). The hint is
// advisory: it never enters the canonical key, the wire spec, or any
// result byte, so routing policy is free to change without
// invalidating a single cache entry.
//
// Under the default affinity route the coordinator groups each batch
// by affinity key and assigns whole groups to endpoints weighted by
// their hello-advertised session capacity — largest group first, each
// to the endpoint with the lowest projected (load+size)/capacity
// score, ties to the lowest index — so all cells sharing a pretrain
// key co-locate in one worker process, whose in-process singleflight
// then executes the warm-up exactly once. Cells without a key flow
// through a FIFO overflow lane. The pull-order work queue remains as
// the stealing fallback, preserving PR 5's failover semantics
// exactly: an idle endpoint first adopts the groups of a dead
// endpoint, then whole groups their home endpoint has not started,
// and only then single cells from another endpoint's started group —
// gated on the coordinator already holding that group's snapshot, so
// a steal never triggers a duplicate warm-up. A fleet-wide cold sweep
// over S distinct scenarios therefore performs exactly S Q-table
// warm-ups (the CI-gated fleet_pretrain_runs == fleet_scenarios
// invariant). The CLIs' -route flag selects the policy (affinity or
// pull); results are byte-identical either way, because routing only
// decides where a cell runs, never what it computes.
//
// Protocol v5 (negotiated through the same maxProto handshake; v4 and
// v3 peers interoperate unchanged) adds fleet-wide snapshot reuse. A
// worker whose cell built a fresh pretrain snapshot returns the
// serialized artifact with its response ("snaps" beside the result);
// the coordinator pools it, persists it into its own cache under the
// snapshot key (byte-identical to the entry the worker wrote locally,
// both being the same JSON round-trip), and pre-pushes it inside
// later requests for cells sharing that key dispatched at sessions
// that do not already hold it — skipping endpoints that share the
// coordinator's -cachedir, where the disk already carries the
// snapshot. The worker installs pushed artifacts before running the
// request, resolving its pretrain singleflight without executing the
// warm-up. Pre-v5 sessions simply never see a "snaps" field in either
// direction. Per-endpoint AffinityHits/AffinityMisses/Stolen tallies
// and pushed-snapshot bytes land in the -v summaries and the
// -metrics-out artifact beside the dispatch counters.
//
// # Cache format
//
// The cache is content-addressed by the SHA-256 hex digest of the
// canonical job key. Without a directory, entries live in an
// in-memory map; when one is configured (the CLIs' -cachedir flag)
// entries live on disk, persisted as <dir>/<hash>.binz binary
// envelopes:
//
//	"FGC1" | uvarint(key length) | canonical key | wire frame(result JSON)
//
// The canonical key rides uncompressed ahead of the payload, so a
// reader rejects a foreign entry (hash collision, copied file) before
// inflating a byte and on-disk entries stay greppable by key; the
// payload is one wire-package frame — the same bounded, length-
// prefixed DEFLATE framing the transport plane uses — which carries a
// cell's round history in roughly a quarter of the legacy JSON
// envelope's bytes. Writes are atomic (temp file + rename, so a crash
// mid-write can never publish a torn entry). Any malformed file —
// wrong magic, truncation, a key mismatch — is treated as a miss and
// the cell re-runs, repairing the entry in place. Results that ended
// in an error are never cached.
//
// Directories written by earlier versions hold <hash>.json envelopes
// ({"key": ..., "payload": ...}); the read path falls back to them
// transparently, so a pre-existing -cachedir serves a warm rerun
// hit-only, and every legacy entry it serves is migrated in place to
// the binary format (binary written, JSON removed). Disk hits also
// pass through a byte-capped in-process LRU over decoded payload
// bytes (64 MB by default, Cache.SetPayloadCacheBytes), so a cell
// re-read within one run — pretrain snapshots, shared sweep cells —
// costs one file read. The layer admits disk hits only, never Put
// write-through, so a corrupted disk entry is still caught by the
// next fresh read.
//
// # Cache eviction
//
// Disk entries no longer live forever: Cache.Prune (the CLIs'
// -cache-max-bytes flag) removes entries oldest-mtime-first at
// startup until the directory fits the byte budget; both envelope
// formats count against the budget and compete in one mtime order.
// A hit queues an mtime touch instead of paying the syscall inline:
// duplicate touches coalesce, and the pending set drains at executor
// shutdown (Executor.Close / exp.Runtime.Close), before a Prune scan,
// or asynchronously past a threshold — so mtime order approximates
// LRU and a cell a warm report still reads outlives a newer cell
// nothing asks for. Prune also drops evicted hashes from the
// decoded-payload layer, so an evicted entry cannot be served from
// memory. Pruning is a coordinator-startup job only; worker
// subprocesses never prune the directory they share.
//
// # Pretrained-controller cache
//
// The cache also stores non-job artifacts under KeyFor-built keys.
// The largest such family is the pretrained-controller cache: the warm
// FedGPO contender's Q-table warm-up is executed once per scenario and
// captured as a core.Snapshot under
//
//	<keyVersion>|pretrain|<scenario key>|cfg=<controller config JSON>|warmseed=<N>|warmrounds=<N>
//
// so every figure/table cell (and the Table 5 oracle probes) that
// evaluates the same warmed controller restores it from the snapshot
// instead of re-running the warm-up per (cell, seed). The key carries
// the full controller configuration and the warm-up deployment, so
// ablation variants and different scenarios never share tables.
// Snapshots are always served through the cache's JSON round-trip
// (which is lossless for float64), so a cell's result does not depend
// on whether its snapshot was built in-process or read from disk.
// The experiment runtime's in-process singleflight guarantees at most
// one warm-up per key even when many workers request it concurrently.
// Grid-search selections ("fixed-best" keys) follow the same
// KeyFor pattern.
//
// # Result store
//
// Result carries the full structured outcome of a cell: the
// simulator's summary metrics and per-round history (fl.Result) plus
// an optional Kind-specific Extra payload. Store collects the results
// a batch produced, in insertion order, and can round-trip them to a
// single JSON file so table/figure constructors — or external tooling
// — can consume completed runs without re-simulating.
//
// A store has two persistence modes. In memory (the default,
// WriteFile) it buffers every result and writes one indented JSON
// array at the end — fine for reports, but the retained round
// histories grow with the sweep. StreamTo switches it to streaming
// mode: every Add appends the result to a JSON Lines file as the cell
// completes and retains only its key, so memory stays bounded by the
// cell count regardless of history size (the CLIs select this mode
// when -results names a .jsonl path). A repeated key appends a new
// line rather than rewriting the file. ReadStore loads either format
// — the first non-whitespace byte tells them apart, and for a
// streamed log the last occurrence of a key wins — and Compact
// (fedgpo-report -compact-results) rewrites a streamed log as the
// canonical JSON array, shadowed lines dropped.
//
// # Telemetry
//
// The runtime is instrumented against a telemetry.Collector (wired by
// the exp.Runtime constructor, nil-safe everywhere so uninstrumented
// embedders pay nothing):
//
//   - The executor mirrors its job-level accounting into the
//     collector as each result lands — SimsExecuted for a computed
//     cell, CacheHits for a replay — so the metrics counters reconcile
//     with Executor.Stats by construction. Per-job phase timings
//     attached to a Result (Result.Telemetry) are folded in at the
//     same point, whether the cell ran in-process or arrived over the
//     wire's "metrics" field.
//   - The cache times every Get/Put as cacheRead/cacheWrite phases
//     (payload JSON decode separately as cacheDecode), splits hits
//     into CacheMemHits, CachePayloadHits (decoded-payload layer) and
//     CacheDiskHits, counts clean CacheMisses apart from CacheCorrupt
//     discards, tallies flushed and coalesced mtime touches
//     (CacheTouches/CacheTouchesCoalesced), and reports Prune removals
//     as Evictions. Cache-level counters can exceed job-level ones:
//     pretrain snapshots and trace artifacts are cache traffic but not
//     jobs.
//   - The coordinator times each dispatch Send→Recv into a
//     per-endpoint latency histogram (exponential 1ms-base buckets)
//     and counts Retries and Failovers as sessions fail. Sessions
//     meter raw bytes both ways (handshake included) and the
//     coordinator folds the totals — plus request-frame and spec
//     counts, whose ratio is the realized v4 batch density — into the
//     per-endpoint stats the -v summaries print.
//
// Provenance: because wall-clock measurements (the sec54 probe's
// overhead timers, ControllerOverheadSec) are replayed verbatim on a
// cache hit, every result is tagged after execution with
// ProvenanceMeasured or ProvenanceReplayed. The tag is assigned after
// cache write-back and excluded from wire result JSON, so cache
// entries stay byte-identical across cold and warm runs.
//
// Decision traces: with tracing enabled (the CLIs' -trace-level flag)
// each traceable cell's per-round RL decision record is published as a
// spec-addressed cache artifact under
//
//	<keyVersion>|trace|<level>|<kind>|<scenario key>|<controller key>|seed=<N>
//
// — addressed exactly like the result it annotates, never colliding
// with it, and never entering the result's canonical key (traced and
// untraced runs share one cache cell). A traced cell whose artifact is
// missing is compiled with Job.ForceRun, re-executing once to capture
// the trace while republishing byte-identical results; once the
// artifact exists, re-tracing is a pure cache hit.
package runtime
