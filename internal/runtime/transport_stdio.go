package runtime

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// stdioReapGrace bounds how long Close waits for a worker subprocess
// to exit after its stdin closes before killing it. A healthy worker
// exits immediately on stdin EOF; the grace only matters for a worker
// wedged mid-protocol, which Close must still reap rather than leak.
const stdioReapGrace = 5 * time.Second

// StdioTransport dials wire sessions by spawning worker subprocesses
// (cmd/fedgpo-worker, or any binary speaking the wire protocol on
// stdio). Every Dial spawns a fresh process — one session per
// subprocess — and Close reaps it, so the PR 3 process-per-shard
// semantics are preserved exactly: a crashed worker fails only its own
// session, and a retry lands on a brand-new process.
type StdioTransport struct {
	// WorkerBin is the worker binary to spawn.
	WorkerBin string
	// Procs is the number of concurrent sessions (worker subprocesses)
	// the coordinator runs against this transport.
	Procs int
	// CacheDir, when set, is forwarded to every worker as -cachedir so
	// coordinator and workers share one content-addressed disk cache.
	CacheDir string
	// InnerParallel, when positive, is forwarded to every worker as an
	// explicit -inner-parallel flag (adaptive budgets travel per request
	// on the wire instead; see WireRequest.Inner).
	InnerParallel int
	// Env, when non-nil, replaces the workers' environment (nil
	// inherits the coordinator's).
	Env []string
}

// Name identifies the transport in errors and per-endpoint stats.
func (t *StdioTransport) Name() string { return "stdio:" + filepath.Base(t.WorkerBin) }

// Sessions returns the configured subprocess count.
func (t *StdioTransport) Sessions() int { return t.Procs }

// Dial spawns one worker subprocess and completes the hello handshake
// over its stdio pipes.
func (t *StdioTransport) Dial() (Conn, error) {
	args := []string{}
	if t.CacheDir != "" {
		args = append(args, "-cachedir", t.CacheDir)
	}
	if t.InnerParallel > 0 {
		args = append(args, "-inner-parallel", fmt.Sprint(t.InnerParallel))
	}
	cmd := exec.Command(t.WorkerBin, args...)
	cmd.Env = t.Env
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn %s: %w", t.WorkerBin, err)
	}
	closer := func() error {
		// Closing stdin is the protocol's shutdown signal: the worker's
		// decode loop sees EOF and exits. A watchdog reaps a worker that
		// is wedged mid-protocol instead — either way the process is
		// gone when Close returns.
		_ = stdin.Close()
		kill := time.AfterFunc(stdioReapGrace, func() { _ = cmd.Process.Kill() })
		defer kill.Stop()
		return cmd.Wait()
	}
	conn, err := newWireConn(stdout, stdin, 0, closer)
	if err != nil {
		// The handshake failed; newWireConn already ran closer.
		return nil, fmt.Errorf("%s: %w", t.WorkerBin, err)
	}
	return conn, nil
}
