package runtime

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"strconv"
	"strings"
)

// keyVersion prefixes every job key; bump it whenever the meaning of a
// cached result changes — or the canonical key layout does — so old
// cache directories invalidate wholesale.
// v2: warm FedGPO contenders are restored from pretrained-controller
// snapshots instead of re-running the warm-up per cell, which changes
// the exact cell results (the restored controller's RNG stream differs
// from a freshly warmed one's).
// v3: scenario descriptors hash the full resolved scenario spec
// (device-class mix, partition kind/alpha/seed, channel parameters,
// co-runner profile/fraction, deadline policy) instead of the old
// name + booleans layout, and the display name no longer participates
// — results are unchanged, but the scenario half of every key is laid
// out differently, so v2 entries must not be replayed against v3 keys.
const keyVersion = "v3"

// Job names one simulation cell and knows how to execute it.
type Job struct {
	// Kind tags the job family ("sim", "sec54", "oracle", ...). Jobs of
	// different kinds carry different Extra payloads and must never
	// share a cache entry.
	Kind string
	// Scenario is the canonical scenario descriptor: every deployment
	// knob that influences the outcome (workload, fleet size, round
	// budget, partition, variance models, deadline).
	Scenario string
	// Controller is the canonical controller descriptor: the policy
	// family plus its full configuration.
	Controller string
	// Seed is the run seed.
	Seed int64
	// Payload is the job's serialized spec: a self-contained JSON
	// description from which any process can reconstruct and execute
	// the cell (the experiment harness encodes its JobSpec here). It is
	// what the procs backend streams to worker subprocesses; in-process
	// backends never read it.
	Payload json.RawMessage
	// Run executes the cell on a cache miss. It is called from a worker
	// goroutine and must not share mutable state with other jobs. For
	// spec-built jobs it is the in-process compilation of Payload: both
	// must compute the same result.
	Run func() Result
	// ForceRun makes the executor skip the cache lookup and execute the
	// cell even when a cached result exists. The re-run's result is
	// byte-identical to the cached one (cells are deterministic), so the
	// redundant write-back is harmless. It exists for side-effect
	// capture: tracing a cached cell's RL decisions requires one re-run,
	// which publishes the trace artifact so later traced runs are pure
	// hits again. ForceRun never enters the canonical key.
	ForceRun bool
	// Affinity is a scheduling hint: jobs sharing a non-empty Affinity
	// string benefit from running in the same worker process (today: the
	// pretrain-snapshot cache key for warm FedGPO cells, so co-located
	// cells warm up once). It is advisory only — routing never changes
	// results — and must NEVER enter Key(): the same cell keyed with and
	// without a hint is the same cell.
	Affinity string
}

// Key returns the stable canonical key naming this cell.
func (j Job) Key() string { return string(j.AppendKey(nil)) }

// AppendKey appends the canonical key to dst and returns the extended
// slice, byte-identical to Key(). It is the batch hot path: an
// executor resolving a warm batch reuses one per-batch buffer across
// every job, so key assembly allocates nothing once the buffer has
// grown to the batch's longest key (Key, by contrast, allocates a
// fresh string per call).
func (j Job) AppendKey(dst []byte) []byte {
	dst = append(dst, keyVersion...)
	dst = append(dst, '|')
	dst = append(dst, j.Kind...)
	dst = append(dst, '|')
	dst = append(dst, j.Scenario...)
	dst = append(dst, '|')
	dst = append(dst, j.Controller...)
	dst = append(dst, "|seed="...)
	return strconv.AppendInt(dst, j.Seed, 10)
}

// Hash returns the content address of the cell: the SHA-256 hex digest
// of the canonical key.
func (j Job) Hash() string { return HashKey(j.Key()) }

// KeyFor builds a canonical cache key for a non-job artifact (e.g. a
// grid-search selection) under the same version prefix as job keys.
func KeyFor(kind string, parts ...string) string {
	return strings.Join(append([]string{keyVersion, kind}, parts...), "|")
}

// HashKey content-addresses an arbitrary canonical key.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// HashKeyBytes content-addresses a canonical key held in a byte
// buffer, returning the raw digest without allocating — the
// AppendKey-side twin of HashKey. Render it with HexHash where a
// string address is needed, or feed it to ShardOfHashed directly.
func HashKeyBytes(key []byte) [sha256.Size]byte { return sha256.Sum256(key) }

// HexHash renders a raw key digest as the hex content address used in
// cache paths and wire messages: HexHash(HashKeyBytes(k)) ==
// HashKey(string(k)).
func HexHash(sum [sha256.Size]byte) string { return hex.EncodeToString(sum[:]) }

// ShardOf deterministically assigns a canonical key to one of n
// shards. It reuses the content-address digest, so a cell lands on the
// same shard in every process and on every run — the property that
// lets a coordinator partition a batch across workers without
// coordination.
func ShardOf(key string, n int) int {
	return ShardOfHashed(sha256.Sum256([]byte(key)), n)
}

// ShardOfHashed is ShardOf for callers that already hold the key's
// digest (HashKeyBytes), so a batch that hashed each key once never
// re-runs SHA-256 to place the cell.
func ShardOfHashed(sum [sha256.Size]byte, n int) int {
	if n <= 1 {
		return 0
	}
	return int(binary.BigEndian.Uint32(sum[:4]) % uint32(n))
}
