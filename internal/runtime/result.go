package runtime

import (
	"encoding/json"

	"fedgpo/internal/fl"
)

// Result is the serializable outcome of one job: the simulator's
// summary metrics and round history, plus an optional Kind-specific
// payload.
type Result struct {
	// Key echoes the canonical job key the result was produced under.
	Key string `json:"key"`
	// Sim is the simulator outcome (summary metrics + per-round
	// history).
	Sim fl.Result `json:"sim"`
	// Extra carries Kind-specific measurements (e.g. reward history and
	// controller overhead for the sec54 probe).
	Extra json.RawMessage `json:"extra,omitempty"`
	// Err records a panic raised by the job body; errored results are
	// never cached.
	Err string `json:"err,omitempty"`
	// Cached reports whether this result was served from the run cache.
	Cached bool `json:"-"`
	// Persisted reports that the result already lives in the disk cache
	// the executor reads (set by ProcBackend when its workers share the
	// executor's cache directory), so the executor skips the redundant
	// re-serialization and re-write of the entry.
	Persisted bool `json:"-"`
}

// SetExtra marshals v into the Extra payload.
func (r *Result) SetExtra(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		panic("runtime: unmarshalable extra payload: " + err.Error())
	}
	r.Extra = b
}

// GetExtra unmarshals the Extra payload into v.
func (r Result) GetExtra(v any) error { return json.Unmarshal(r.Extra, v) }
