package runtime

import (
	"encoding/json"

	"fedgpo/internal/fl"
	"fedgpo/internal/telemetry"
)

// Provenance values for Result.Provenance.
const (
	// ProvenanceMeasured marks a result whose cell actually executed in
	// this run — its wall-clock measurements (ControllerOverheadSec, the
	// sec54 timing rows) were taken on this machine, now.
	ProvenanceMeasured = "measured"
	// ProvenanceReplayed marks a result served from the run cache — its
	// wall-clock measurements were taken whenever the cell originally
	// ran, possibly on different hardware.
	ProvenanceReplayed = "replayed-from-cache"
)

// Result is the serializable outcome of one job: the simulator's
// summary metrics and round history, plus an optional Kind-specific
// payload.
type Result struct {
	// Key echoes the canonical job key the result was produced under.
	Key string `json:"key"`
	// Sim is the simulator outcome (summary metrics + per-round
	// history).
	Sim fl.Result `json:"sim"`
	// Extra carries Kind-specific measurements (e.g. reward history and
	// controller overhead for the sec54 probe).
	Extra json.RawMessage `json:"extra,omitempty"`
	// Err records a panic raised by the job body; errored results are
	// never cached.
	Err string `json:"err,omitempty"`
	// Cached reports whether this result was served from the run cache.
	Cached bool `json:"-"`
	// Persisted reports that the result already lives in the disk cache
	// the executor reads (set by ProcBackend when its workers share the
	// executor's cache directory), so the executor skips the redundant
	// re-serialization and re-write of the entry.
	Persisted bool `json:"-"`
	// Telemetry carries the executing process's per-job phase timings
	// (pretrain, rounds, merge). Like Cached it is excluded from result
	// JSON — telemetry must never change cached bytes — and travels the
	// wire separately, in WireResponse's metrics field.
	Telemetry *telemetry.Metrics `json:"-"`
	// Snaps carries serialized pretrain snapshots this job's execution
	// built from scratch (at most one today). Like Telemetry it is
	// excluded from result JSON — snapshots are cache artifacts
	// addressed by their own keys, never part of a cell's cached bytes —
	// and travels the wire separately, in WireResponse's snaps field,
	// so the coordinator can persist and re-ship them to cold endpoints.
	Snaps []SnapshotArtifact `json:"-"`
	// Provenance tags the result's wall-clock measurements as
	// ProvenanceMeasured or ProvenanceReplayed. It is set by the
	// experiment runtime after execution — never by job bodies or
	// workers, and always after the cache write-back — so cache entries
	// and wire frames carry no provenance and stay byte-identical across
	// cold and warm runs; only the -results store JSON sees the tag.
	Provenance string `json:"provenance,omitempty"`
}

// SnapshotArtifact is one serialized content-addressed snapshot moving
// over the wire: Key is the artifact's canonical cache key (a pretrain
// key today) and Data its cache-payload JSON. Shipping it is pure
// transport — the artifact is persisted under exactly the key it would
// have been cached under had it been built locally.
type SnapshotArtifact struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// SetExtra marshals v into the Extra payload.
func (r *Result) SetExtra(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		panic("runtime: unmarshalable extra payload: " + err.Error())
	}
	r.Extra = b
}

// GetExtra unmarshals the Extra payload into v.
func (r Result) GetExtra(v any) error { return json.Unmarshal(r.Extra, v) }
