package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ProtoVersion is the wire-protocol generation spoken on every
// transport session. Version 2 added the hello handshake, the
// per-request inner-budget field and the TCP transport; version 3 adds
// the response-side "metrics" field carrying the worker's per-job
// telemetry snapshot back to the coordinator. A coordinator refuses to
// feed jobs to a worker speaking any other version (see WireHello), so
// a version skew surfaces as a handshake error instead of a poisoned
// cache or a protocol deadlock.
const ProtoVersion = 3

// WireHello is the first frame of every wire session, sent by the
// worker the moment the session opens — before any request arrives.
// The coordinator validates it during Dial: a protocol or key-version
// mismatch rejects the endpoint outright, because a worker computing
// results under a different cache-key scheme would publish them into
// the shared cache under keys this coordinator trusts.
type WireHello struct {
	// Hello marks the frame; it is always true (a frame without it is
	// not a handshake — most likely an older worker or a non-worker
	// process on the far side).
	Hello bool `json:"hello"`
	// Proto is the worker's wire-protocol version (ProtoVersion).
	Proto int `json:"proto"`
	// KeyVersion is the worker's cache-key scheme version (keyVersion in
	// job.go). Coordinator and worker must agree or cached results
	// written by one are semantically wrong for the other.
	KeyVersion string `json:"keyVersion"`
	// Capacity is how many wire sessions the worker can usefully serve
	// concurrently: 1 for a stdio subprocess, the serve pool's size for
	// a listening worker. The coordinator opens that many sessions.
	Capacity int `json:"capacity"`
	// CacheDir is the worker's run-cache directory ("" when the worker
	// caches in memory only). When it names the same directory as the
	// coordinator's, results arriving over this session are already
	// persisted and the coordinator skips re-writing them.
	CacheDir string `json:"cacheDir,omitempty"`
}

// Conn is one established wire session to a worker: hello already
// exchanged and validated, requests and responses flowing as JSON
// frames. A Conn is used by one coordinator session loop at a time and
// need not be safe for concurrent use. Close releases the session's
// resources (for a subprocess, reaping it; for a socket, closing it).
type Conn interface {
	// Hello returns the worker's validated handshake frame.
	Hello() WireHello
	// Send writes one request frame.
	Send(WireRequest) error
	// Recv reads the next response frame.
	Recv() (WireResponse, error)
	// Close ends the session.
	Close() error
}

// Transport dials wire sessions to one worker endpoint. The
// coordinator is transport-agnostic: everything above Dial — work
// distribution, in-flight tracking, retry, budget forwarding — is the
// same whether the far side is a subprocess pipe or a TCP socket.
type Transport interface {
	// Name identifies the endpoint in errors and per-endpoint stats
	// (e.g. "stdio:fedgpo-worker", "tcp:host:port").
	Name() string
	// Dial opens one wire session, performing and validating the hello
	// handshake before returning.
	Dial() (Conn, error)
	// Sessions is the number of concurrent sessions the coordinator
	// should run against this endpoint, or 0 to learn it from the
	// hello's advertised capacity (one probe session is dialed first).
	Sessions() int
}

// deadlineReader is implemented by connections that support read
// deadlines (net.Conn); wireConn uses it to bound Recv when the
// transport carries a reply timeout. Pipe-backed sessions don't
// implement it and Recv blocks until the pipe closes — for a local
// subprocess, crash detection via pipe EOF makes that safe.
type deadlineReader interface {
	SetReadDeadline(t time.Time) error
}

// wireConn frames WireRequest/WireResponse JSON over any reader/writer
// pair and owns the handshake, shared by the stdio and TCP transports.
type wireConn struct {
	dec     *json.Decoder
	enc     *json.Encoder
	hello   WireHello
	raw     io.Writer // the write side, kept for deadline checks
	rawRead any       // the read side, checked for deadlineReader
	timeout time.Duration
	closer  func() error
}

// newWireConn wraps an open byte stream into a wire session: it reads
// and validates the worker's hello frame and returns the ready Conn.
// closer runs exactly once, on Close.
func newWireConn(r io.Reader, w io.Writer, timeout time.Duration, closer func() error) (*wireConn, error) {
	c := &wireConn{
		dec:     json.NewDecoder(r),
		enc:     json.NewEncoder(w),
		raw:     w,
		rawRead: r,
		timeout: timeout,
		closer:  closer,
	}
	if err := c.handshake(); err != nil {
		if closer != nil {
			_ = closer()
		}
		return nil, err
	}
	return c, nil
}

// handshake reads and validates the worker's hello frame.
func (c *wireConn) handshake() error {
	if err := c.setRecvDeadline(); err != nil {
		return err
	}
	var h WireHello
	if err := c.dec.Decode(&h); err != nil {
		return fmt.Errorf("runtime: transport handshake: reading hello: %w", err)
	}
	if !h.Hello {
		return fmt.Errorf("runtime: transport handshake: first frame is not a hello (worker predates protocol %d?)", ProtoVersion)
	}
	if h.Proto != ProtoVersion {
		return fmt.Errorf("runtime: transport handshake: worker speaks wire protocol %d, coordinator %d", h.Proto, ProtoVersion)
	}
	if h.KeyVersion != keyVersion {
		return fmt.Errorf("runtime: transport handshake: worker cache-key scheme %q, coordinator %q — results would poison the shared cache", h.KeyVersion, keyVersion)
	}
	if h.Capacity < 1 {
		h.Capacity = 1
	}
	c.hello = h
	return nil
}

// setRecvDeadline arms the read deadline for the next frame when the
// connection supports one and a timeout is configured.
func (c *wireConn) setRecvDeadline() error {
	dr, ok := c.rawRead.(deadlineReader)
	if !ok || c.timeout <= 0 {
		return nil
	}
	return dr.SetReadDeadline(time.Now().Add(c.timeout))
}

// Hello returns the validated handshake frame.
func (c *wireConn) Hello() WireHello { return c.hello }

// Send writes one request frame.
func (c *wireConn) Send(req WireRequest) error { return c.enc.Encode(req) }

// Recv reads the next response frame, bounded by the transport's reply
// timeout when the connection supports deadlines.
func (c *wireConn) Recv() (WireResponse, error) {
	var resp WireResponse
	if err := c.setRecvDeadline(); err != nil {
		return resp, err
	}
	err := c.dec.Decode(&resp)
	return resp, err
}

// Close ends the session.
func (c *wireConn) Close() error {
	if c.closer == nil {
		return nil
	}
	return c.closer()
}
