package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"fedgpo/internal/runtime/wire"
)

// Wire-protocol generations. Version 2 added the hello handshake, the
// per-request inner-budget field and the TCP transport; version 3 added
// the response-side "metrics" field carrying the worker's per-job
// telemetry snapshot back to the coordinator; version 4 moves the job
// stream to length-prefixed compressed binary frames (see the wire
// package) whose payloads are envelopes batching several specs per
// frame; version 5 adds snapshot shipping on top of the v4 framing —
// request envelopes may pre-push serialized pretrain snapshots
// (WireRequest.Snaps) and responses return snapshots the worker built
// (WireResponse.Snaps), so a cell landing on a cold endpoint
// deserializes instead of re-warming.
//
// Negotiation is backward compatible in both directions. A worker's
// hello always carries Proto == ProtoV3 — the baseline every
// coordinator since PR 5 accepts — plus MaxProto advertising the
// highest generation it speaks. A v4+-capable coordinator answers a
// v4+-capable hello with a JSON helloAck frame naming the negotiated
// generation (min(MaxProto, ProtoVersion)) and both sides switch to
// binary framing; a v3-only worker (no MaxProto) gets plain v3 JSON
// frames and no ack, and a v3-only coordinator ignores the unknown
// MaxProto field and never sends one. A worker distinguishes the two
// by its first inbound frame: helloAck or a plain WireRequest. V5
// shares v4's framing — only the envelope fields differ — so a v5
// coordinator talking to a v4 worker simply never populates Snaps, and
// a v4 coordinator talking to a v5 worker negotiates v4, under which
// the worker never attaches them.
const (
	// ProtoV3 is the newline-delimited JSON baseline: one WireRequest
	// frame per cell, one WireResponse frame back, in order.
	ProtoV3 = 3
	// ProtoV4 is the batched binary framing generation.
	ProtoV4 = 4
	// ProtoV5 adds snapshot shipping (Snaps on requests and responses)
	// over the v4 framing.
	ProtoV5 = 5
	// ProtoVersion is the highest generation this build speaks.
	ProtoVersion = ProtoV5
)

// WireHello is the first frame of every wire session, sent by the
// worker the moment the session opens — before any request arrives.
// The coordinator validates it during Dial: a protocol or key-version
// mismatch rejects the endpoint outright, because a worker computing
// results under a different cache-key scheme would publish them into
// the shared cache under keys this coordinator trusts.
type WireHello struct {
	// Hello marks the frame; it is always true (a frame without it is
	// not a handshake — most likely an older worker or a non-worker
	// process on the far side).
	Hello bool `json:"hello"`
	// Proto is the worker's baseline wire-protocol version. It stays at
	// ProtoV3 even for v4-capable workers, so coordinators predating
	// the v4 negotiation still accept the hello; the upgrade rides in
	// MaxProto.
	Proto int `json:"proto"`
	// MaxProto is the highest protocol generation the worker speaks
	// (0 on pre-v4 workers, which is treated as Proto). The negotiated
	// session generation is min(MaxProto, coordinator's ProtoVersion).
	MaxProto int `json:"maxProto,omitempty"`
	// KeyVersion is the worker's cache-key scheme version (keyVersion in
	// job.go). Coordinator and worker must agree or cached results
	// written by one are semantically wrong for the other.
	KeyVersion string `json:"keyVersion"`
	// Capacity is how many wire sessions the worker can usefully serve
	// concurrently: 1 for a stdio subprocess, the serve pool's size for
	// a listening worker. The coordinator opens that many sessions.
	Capacity int `json:"capacity"`
	// CacheDir is the worker's run-cache directory ("" when the worker
	// caches in memory only). When it names the same directory as the
	// coordinator's, results arriving over this session are already
	// persisted and the coordinator skips re-writing them.
	CacheDir string `json:"cacheDir,omitempty"`
}

// helloAck is the coordinator's handshake reply upgrading a session to
// a negotiated protocol generation above the v3 baseline. It is only
// sent when the hello advertised the higher generation, so a v3 worker
// never sees one — its first inbound frame is a plain WireRequest,
// exactly as before v4 existed.
type helloAck struct {
	HelloAck bool `json:"helloAck"`
	Proto    int  `json:"proto"`
}

// Conn is one established wire session to a worker: hello already
// exchanged and validated, requests and responses flowing as frames. A
// Conn is used by one coordinator session loop at a time and need not
// be safe for concurrent use. Close releases the session's resources
// (for a subprocess, reaping it; for a socket, closing it).
type Conn interface {
	// Hello returns the worker's validated handshake frame.
	Hello() WireHello
	// Send writes one request frame.
	Send(WireRequest) error
	// Recv reads the next response frame.
	Recv() (WireResponse, error)
	// Close ends the session.
	Close() error
}

// BatchConn is the protocol-v4 session surface: SendBatch writes one
// length-prefixed compressed envelope frame carrying a whole request
// batch and RecvBatch reads the matching response envelope. Sessions
// that negotiated v3 (and scripted test conns) don't implement it, so
// the coordinator's type assertion is the fallback switch: no
// BatchConn, no batching — one JSON frame per cell, exactly the v3
// contract.
type BatchConn interface {
	Conn
	SendBatch([]WireRequest) error
	RecvBatch() ([]WireResponse, error)
}

// WireStatser is implemented by sessions that meter raw bytes moved on
// the wire (handshake frames included). The coordinator folds the
// totals into its per-endpoint stats.
type WireStatser interface {
	WireStats() (sent, recv int64)
}

// Transport dials wire sessions to one worker endpoint. The
// coordinator is transport-agnostic: everything above Dial — work
// distribution, in-flight tracking, retry, budget forwarding — is the
// same whether the far side is a subprocess pipe or a TCP socket.
type Transport interface {
	// Name identifies the endpoint in errors and per-endpoint stats
	// (e.g. "stdio:fedgpo-worker", "tcp:host:port").
	Name() string
	// Dial opens one wire session, performing and validating the hello
	// handshake before returning.
	Dial() (Conn, error)
	// Sessions is the number of concurrent sessions the coordinator
	// should run against this endpoint, or 0 to learn it from the
	// hello's advertised capacity (one probe session is dialed first).
	Sessions() int
}

// deadlineReader is implemented by connections that support read
// deadlines (net.Conn); wireConn uses it to bound Recv when the
// transport carries a reply timeout. Pipe-backed sessions don't
// implement it and Recv blocks until the pipe closes — for a local
// subprocess, crash detection via pipe EOF makes that safe.
type deadlineReader interface {
	SetReadDeadline(t time.Time) error
}

// countReader / countWriter meter the raw bytes a session moves; the
// handshake decoder and both framing modes read and write through
// them, so WireStats covers hello, ack and every frame.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// wireConn is a coordinator-side wire session over any reader/writer
// pair, shared by the stdio and TCP transports. It owns the handshake
// and speaks the v3 JSON framing; a session that negotiates v4 is
// returned wrapped in batchConn, which reuses the same state but moves
// frames through the wire package instead.
type wireConn struct {
	dec     *json.Decoder
	enc     *json.Encoder
	hello   WireHello
	proto   int
	framed  io.Reader // v4 read side: handshake readahead + the stream
	cr      *countReader
	cw      *countWriter
	rawRead any // the original read side, checked for deadlineReader
	timeout time.Duration
	closer  func() error
	frames  int // response frames read, for frame-indexed v4 errors
}

// newWireConn wraps an open byte stream into a wire session: it reads
// and validates the worker's hello frame, negotiates the protocol
// generation (acking a v4 upgrade), and returns the ready Conn — a
// BatchConn when the session speaks v4. closer runs exactly once, on
// Close.
func newWireConn(r io.Reader, w io.Writer, timeout time.Duration, closer func() error) (Conn, error) {
	cr := &countReader{r: r}
	cw := &countWriter{w: w}
	c := &wireConn{
		dec:     json.NewDecoder(cr),
		enc:     json.NewEncoder(cw),
		cr:      cr,
		cw:      cw,
		rawRead: r,
		timeout: timeout,
		closer:  closer,
	}
	if err := c.handshake(); err != nil {
		if closer != nil {
			_ = closer()
		}
		return nil, err
	}
	if c.proto >= ProtoV4 {
		// The handshake decoder may have read ahead into the binary
		// stream; drain its buffer before the raw reader, and skip the
		// newline the worker's hello encoder left behind.
		c.framed = wire.Handoff(io.MultiReader(c.dec.Buffered(), cr))
		return &batchConn{c}, nil
	}
	return c, nil
}

// handshake reads and validates the worker's hello frame and settles
// the session's protocol generation.
func (c *wireConn) handshake() error {
	if err := c.setRecvDeadline(); err != nil {
		return err
	}
	var h WireHello
	if err := c.dec.Decode(&h); err != nil {
		return fmt.Errorf("runtime: transport handshake: reading hello: %w", err)
	}
	if !h.Hello {
		return fmt.Errorf("runtime: transport handshake: first frame is not a hello (worker predates protocol %d?)", ProtoVersion)
	}
	if h.Proto < ProtoV3 || h.Proto > ProtoVersion {
		return fmt.Errorf("runtime: transport handshake: worker speaks wire protocol %d, coordinator %d", h.Proto, ProtoVersion)
	}
	if h.KeyVersion != keyVersion {
		return fmt.Errorf("runtime: transport handshake: worker cache-key scheme %q, coordinator %q — results would poison the shared cache", h.KeyVersion, keyVersion)
	}
	if h.Capacity < 1 {
		h.Capacity = 1
	}
	c.hello = h
	c.proto = h.Proto
	if h.MaxProto > c.proto {
		c.proto = h.MaxProto
	}
	if c.proto > ProtoVersion {
		c.proto = ProtoVersion
	}
	if c.proto >= ProtoV4 {
		if err := c.enc.Encode(helloAck{HelloAck: true, Proto: c.proto}); err != nil {
			return fmt.Errorf("runtime: transport handshake: sending upgrade ack: %w", err)
		}
	}
	return nil
}

// setRecvDeadline arms the read deadline for the next frame when the
// connection supports one and a timeout is configured.
func (c *wireConn) setRecvDeadline() error {
	dr, ok := c.rawRead.(deadlineReader)
	if !ok || c.timeout <= 0 {
		return nil
	}
	return dr.SetReadDeadline(time.Now().Add(c.timeout))
}

// Hello returns the validated handshake frame.
func (c *wireConn) Hello() WireHello { return c.hello }

// Proto returns the session's negotiated protocol generation.
func (c *wireConn) Proto() int { return c.proto }

// WireStats returns the session's cumulative raw bytes written and
// read, handshake included.
func (c *wireConn) WireStats() (sent, recv int64) { return c.cw.n, c.cr.n }

// Send writes one request frame.
func (c *wireConn) Send(req WireRequest) error { return c.enc.Encode(req) }

// Recv reads the next response frame, bounded by the transport's reply
// timeout when the connection supports deadlines.
func (c *wireConn) Recv() (WireResponse, error) {
	var resp WireResponse
	if err := c.setRecvDeadline(); err != nil {
		return resp, err
	}
	err := c.dec.Decode(&resp)
	return resp, err
}

// Close ends the session.
func (c *wireConn) Close() error {
	if c.closer == nil {
		return nil
	}
	return c.closer()
}

// batchConn is a protocol-v4 session: request batches travel as one
// compressed length-prefixed envelope frame each way. Send/Recv remain
// available as batch-of-one wrappers so call sites that move a single
// job (probe paths, tests) work on either generation.
type batchConn struct{ *wireConn }

// SendBatch writes one request envelope frame.
func (c *batchConn) SendBatch(reqs []WireRequest) error {
	b, err := json.Marshal(wireEnvelope{Reqs: reqs})
	if err != nil {
		return fmt.Errorf("runtime: encoding request envelope: %w", err)
	}
	_, err = wire.WriteFrame(c.cw, b)
	return err
}

// RecvBatch reads one response envelope frame, bounded by the
// transport's reply timeout when the connection supports deadlines.
func (c *batchConn) RecvBatch() ([]WireResponse, error) {
	if err := c.setRecvDeadline(); err != nil {
		return nil, err
	}
	c.frames++
	payload, _, err := wire.ReadFrame(c.framed, c.frames)
	if err != nil {
		return nil, err
	}
	var env wireEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("runtime: response envelope (frame %d): %w", c.frames, err)
	}
	return env.Resps, nil
}

// Send writes a batch of one.
func (c *batchConn) Send(req WireRequest) error {
	return c.SendBatch([]WireRequest{req})
}

// Recv reads a batch expected to hold exactly one response.
func (c *batchConn) Recv() (WireResponse, error) {
	resps, err := c.RecvBatch()
	if err != nil {
		return WireResponse{}, err
	}
	if len(resps) != 1 {
		return WireResponse{}, fmt.Errorf("runtime: expected 1 response in envelope, got %d", len(resps))
	}
	return resps[0], nil
}
