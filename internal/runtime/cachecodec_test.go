package runtime

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"fedgpo/internal/fl"
	"fedgpo/internal/telemetry"
)

func TestBinaryEnvelopeRoundTrip(t *testing.T) {
	key := "v3|sim|scenario|ctrl|seed=9"
	payload := []byte(`{"key":"v3|sim|scenario|ctrl|seed=9","sim":{"ppw":1.25}}`)
	b, err := encodeBinaryEnvelope(key, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decodeBinaryEnvelope(b, key)
	if !ok {
		t.Fatal("well-formed envelope did not decode")
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload mutated: %q", got)
	}
	// The clear-text key must be visible in the raw file bytes — that is
	// what keeps cache directories greppable by canonical key.
	if !bytes.Contains(b, []byte(key)) {
		t.Error("canonical key not stored in clear text")
	}
	if _, ok := decodeBinaryEnvelope(b, "v3|sim|other|ctrl|seed=9"); ok {
		t.Error("foreign key must not decode")
	}
	// Every truncation is a clean rejection, whichever field it lands in.
	for n := 0; n < len(b); n++ {
		if _, ok := decodeBinaryEnvelope(b[:n], key); ok {
			t.Fatalf("truncation at %d/%d decoded", n, len(b))
		}
	}
	// Trailing garbage means the file is not one of ours.
	if _, ok := decodeBinaryEnvelope(append(append([]byte{}, b...), 0xFF), key); ok {
		t.Error("envelope with trailing bytes decoded")
	}
	if _, err := encodeBinaryEnvelope("", payload); err == nil {
		t.Error("empty key must not encode")
	}
}

// The envelope reader's contract is total: any byte string either
// decodes to the payload stored under the wanted key or reports a
// miss — never a panic, whatever the corruption.
func FuzzDecodeBinaryEnvelope(f *testing.F) {
	key := "v3|sim|scenario-3|static/(8,10,20)|seed=3"
	valid, err := encodeBinaryEnvelope(key, []byte(`{"sim":{"ppw":4.5,"converged":true}}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("FGC1"))
	f.Add([]byte("FGC1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte(`{"key":"` + key + `","payload":{}}`)) // legacy JSON bytes
	foreign, _ := encodeBinaryEnvelope("other", []byte(`{}`))
	f.Add(foreign)
	f.Fuzz(func(t *testing.T, b []byte) {
		// The only guarantees: never panic, and anything that decodes is a
		// structurally valid envelope for the wanted key — re-encoding its
		// payload round-trips. (Payload JSON validity is the unmarshal
		// layer's job; Cache.get classifies that failure as corrupt.)
		payload, ok := decodeBinaryEnvelope(b, key)
		if !ok {
			return
		}
		re, err := encodeBinaryEnvelope(key, payload)
		if err != nil {
			t.Fatalf("decoded payload does not re-encode: %v", err)
		}
		back, ok := decodeBinaryEnvelope(re, key)
		if !ok || !bytes.Equal(back, payload) {
			t.Errorf("payload does not round-trip: %q vs %q", back, payload)
		}
	})
}

// Arbitrary bytes in a .binz file must degrade to a cache miss through
// the full Get path: the cell re-runs, the run never errors.
func TestCacheGetSurvivesArbitraryEnvelopeBytes(t *testing.T) {
	key := "fuzzlike|cell"
	hash := HashKey(key)
	for _, raw := range [][]byte{
		{},
		[]byte("FGC1"),
		[]byte("FGC1\x05ab"),
		[]byte("FGC2\x03abc\x00\x00\x00\x01x"),
		bytes.Repeat([]byte{0xAA}, 512),
	} {
		dir := t.TempDir()
		cache, err := NewCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, hash+binExt), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		var got Result
		if cache.Get(key, &got) {
			t.Errorf("bytes %q served a hit", raw)
		}
	}
}

// AppendKey + HashKeyBytes + ShardOfHashed are the executor's per-job
// key resolution; once the shared buffer has grown they must not
// allocate at all — the zero-alloc guard behind the bench's
// key_allocs_per_op metric.
func TestKeyResolutionZeroAllocs(t *testing.T) {
	job := Job{Kind: "sim", Scenario: "scenario-3", Controller: "static/(8,10,20)", Seed: 3}
	buf := make([]byte, 0, 256)
	var shard int
	allocs := testing.AllocsPerRun(100, func() {
		buf = job.AppendKey(buf[:0])
		sum := HashKeyBytes(buf)
		shard = ShardOfHashed(sum, 8)
	})
	if allocs != 0 {
		t.Errorf("key resolution allocates %.1f objects per op, want 0", allocs)
	}
	_ = shard
}

// A cache directory written by the legacy JSON codec must serve a warm
// rerun hit-only (zero sims), and every entry the rerun reads must be
// migrated in place to the binary format.
func TestLegacyJSONCacheWarmsAndMigrates(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	jobs := make([]Job, 4)
	for i := range jobs {
		i := i
		jobs[i] = Job{Kind: "sim", Scenario: fmt.Sprintf("legacy-%d", i), Seed: int64(i), Run: func() Result {
			runs.Add(1)
			return Result{Sim: fl.Result{PPW: float64(i) + 0.5}}
		}}
	}
	if NewExecutor(2, cache).RunAll(jobs); runs.Load() != int64(len(jobs)) {
		t.Fatalf("cold run executed %d cells, want %d", runs.Load(), len(jobs))
	}
	// Rewrite every entry as the legacy JSON envelope an older build
	// would have left behind.
	for _, j := range jobs {
		hash := j.Hash()
		b, err := os.ReadFile(filepath.Join(dir, hash+binExt))
		if err != nil {
			t.Fatal(err)
		}
		payload, ok := decodeBinaryEnvelope(b, j.Key())
		if !ok {
			t.Fatal("cold entry did not decode")
		}
		legacy, err := json.Marshal(envelope{Key: j.Key(), Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, hash+legacyExt), legacy, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, hash+binExt)); err != nil {
			t.Fatal(err)
		}
	}

	warmCache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	warmCache.SetCollector(col)
	e := NewExecutor(2, warmCache)
	results := e.RunAll(jobs)
	if runs.Load() != int64(len(jobs)) {
		t.Errorf("warm rerun executed %d extra cells, want 0", runs.Load()-int64(len(jobs)))
	}
	for i, r := range results {
		if !r.Cached || r.Sim.PPW != float64(i)+0.5 {
			t.Errorf("result %d not served from legacy cache: %+v", i, r)
		}
	}
	c := col.Snapshot().Counters
	if c.CacheDiskHits != int64(len(jobs)) || c.CacheMisses != 0 || c.CacheCorrupt != 0 {
		t.Errorf("warm counters = %d disk hits / %d misses / %d corrupt, want %d/0/0",
			c.CacheDiskHits, c.CacheMisses, c.CacheCorrupt, len(jobs))
	}
	// Every served entry migrated: binary present, legacy gone.
	for _, j := range jobs {
		hash := j.Hash()
		if _, err := os.Stat(filepath.Join(dir, hash+binExt)); err != nil {
			t.Errorf("entry %s not migrated to binary: %v", hash[:8], err)
		}
		if _, err := os.Stat(filepath.Join(dir, hash+legacyExt)); !os.IsNotExist(err) {
			t.Errorf("legacy entry %s not retired after migration", hash[:8])
		}
	}
	// And the migrated entries still serve a fresh cache.
	c3, _ := NewCache(dir)
	var got Result
	if !c3.Get(jobs[2].Key(), &got) || got.Sim.PPW != 2.5 {
		t.Errorf("migrated entry does not round-trip: %+v", got)
	}
}

// Prune's byte budget covers both envelope formats in one
// oldest-mtime-first order: a directory mid-migration evicts by age,
// not by format.
func TestCachePruneMixedFormats(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Four entries, oldest first, alternating legacy/binary; pad the
	// payloads to a common size so the budget arithmetic is exact.
	pad := bytes.Repeat([]byte("x"), 2048)
	keys := make([]string, 4)
	paths := make([]string, 4)
	sizes := make([]int64, 4)
	for i := range keys {
		keys[i] = fmt.Sprintf("mixed|cell-%d", i)
		hash := HashKey(keys[i])
		payload, err := json.Marshal(Result{Key: keys[i], Sim: fl.Result{PPW: float64(i)}, Err: string(pad)})
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			legacy, err := json.Marshal(envelope{Key: keys[i], Payload: payload})
			if err != nil {
				t.Fatal(err)
			}
			paths[i] = filepath.Join(dir, hash+legacyExt)
			if err := os.WriteFile(paths[i], legacy, 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := cache.PutHashed(keys[i], hash, json.RawMessage(payload)); err != nil {
				t.Fatal(err)
			}
			paths[i] = filepath.Join(dir, hash+binExt)
		}
		info, err := os.Stat(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = info.Size()
		mt := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(paths[i], mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Budget for exactly the two newest entries — one of each format
	// survives; the formats' different sizes count as stored.
	removed, err := cache.Prune(sizes[2] + sizes[3])
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("pruned %d entries, want 2", removed)
	}
	for i, wantAlive := range []bool{false, false, true, true} {
		_, err := os.Stat(paths[i])
		if alive := err == nil; alive != wantAlive {
			t.Errorf("entry %d (format %s) alive=%v, want %v", i, filepath.Ext(paths[i]), alive, wantAlive)
		}
	}
}

// A disk hit's payload bytes are retained by the decoded-payload
// layer, so re-reading a cell within one process never re-reads the
// file; Prune drops evicted hashes from the layer so an evicted entry
// cannot be served from memory.
func TestPayloadLayerServesRereadsAndHonorsPrune(t *testing.T) {
	dir := t.TempDir()
	writer, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "payload|cell"
	if err := writer.Put(key, Result{Key: key, Sim: fl.Result{PPW: 7.5}}); err != nil {
		t.Fatal(err)
	}

	reader, _ := NewCache(dir)
	col := telemetry.NewCollector()
	reader.SetCollector(col)
	var got Result
	if !reader.Get(key, &got) || got.Sim.PPW != 7.5 {
		t.Fatalf("first read should hit from disk: %+v", got)
	}
	// Remove the file out from under the cache: the payload layer must
	// still serve the re-read.
	if err := os.Remove(filepath.Join(dir, HashKey(key)+binExt)); err != nil {
		t.Fatal(err)
	}
	got = Result{}
	if !reader.Get(key, &got) || got.Sim.PPW != 7.5 {
		t.Fatalf("re-read should hit from the payload layer: %+v", got)
	}
	c := col.Snapshot().Counters
	if c.CacheDiskHits != 1 || c.CachePayloadHits != 1 {
		t.Errorf("counters = %d disk / %d payload hits, want 1/1", c.CacheDiskHits, c.CachePayloadHits)
	}

	// With the layer disabled every read goes to disk — and the removed
	// file is now an honest miss.
	reader.SetPayloadCacheBytes(0)
	if reader.Get(key, &got) {
		t.Error("disabled payload layer must not serve the removed entry")
	}

	// Prune must drop evicted hashes from the layer: re-create, read
	// (admitting to the layer), then evict everything.
	reader2, _ := NewCache(dir)
	if err := writer.Put(key, Result{Key: key, Sim: fl.Result{PPW: 7.5}}); err != nil {
		t.Fatal(err)
	}
	if !reader2.Get(key, &got) {
		t.Fatal("re-created entry should hit")
	}
	if _, err := reader2.Prune(1); err != nil {
		t.Fatal(err)
	}
	if reader2.Get(key, &got) {
		t.Error("pruned entry served from the payload layer")
	}
}

// Hits queue their LRU mtime touch instead of paying the syscall
// inline; duplicates coalesce, and FlushTouches applies the pending
// set so Prune-visible mtimes reflect every recorded use.
func TestTouchCoalescingAndFlush(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "touch|cell"
	hash := HashKey(key)
	if err := cache.Put(key, Result{Key: key, Sim: fl.Result{PPW: 1}}); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(cache.path(hash), old, old); err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	cache.SetCollector(col)
	var got Result
	for i := 0; i < 3; i++ {
		if !cache.Get(key, &got) {
			t.Fatal("entry should hit")
		}
	}
	// The touch is deferred: mtime unchanged until the flush.
	info, err := os.Stat(cache.path(hash))
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().Equal(old) {
		t.Errorf("mtime moved before flush: %v", info.ModTime())
	}
	if n := cache.FlushTouches(); n != 1 {
		t.Errorf("flushed %d touches, want 1 (coalesced)", n)
	}
	info, err = os.Stat(cache.path(hash))
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().After(old) {
		t.Error("mtime not refreshed by flush")
	}
	c := col.Snapshot().Counters
	if c.CacheTouches != 1 || c.CacheTouchesCoalesced != 2 {
		t.Errorf("touch counters = %d flushed / %d coalesced, want 1/2", c.CacheTouches, c.CacheTouchesCoalesced)
	}
	// Nothing pending: a second flush is a no-op.
	if n := cache.FlushTouches(); n != 0 {
		t.Errorf("idle flush touched %d entries, want 0", n)
	}
}

// The binary envelope must actually be smaller than the legacy JSON
// envelope on representative payloads — the property the CI gate
// (cache_bytes_per_cell <= 0.6x json) pins on real sweep results.
func TestBinaryEnvelopeSmallerThanJSON(t *testing.T) {
	history := make([]fl.RoundRecord, 200)
	for i := range history {
		history[i] = fl.RoundRecord{
			Round: i + 1, Accuracy: 0.5 + float64(i)/1000,
			RoundSeconds: 12.5, EnergyJ: 480.25, PlannedK: 10, AggregatedK: 9,
		}
	}
	results := []Result{{
		Key: "v3|sim|size-check|static/(8,10,20)|seed=1",
		Sim: fl.Result{PPW: 4.2, Converged: true, History: history},
	}}
	jsonBytes, binBytes, err := CacheBytesPerCell(results)
	if err != nil {
		t.Fatal(err)
	}
	if jsonBytes == 0 || binBytes == 0 {
		t.Fatal("size meter returned zero")
	}
	if binBytes >= jsonBytes {
		t.Errorf("binary envelope (%.0f B) not smaller than JSON (%.0f B)", binBytes, jsonBytes)
	}
}
