package runtime

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedgpo/internal/fl"
)

func streamResult(key string, ppw float64) Result {
	return Result{Key: key, Sim: fl.Result{PPW: ppw}}
}

// A store switched to streaming mode must flush already-held results,
// append every later Add as one JSONL line, retain nothing in memory,
// and read back — directly or compacted — exactly what an in-memory
// store would have produced, last occurrence winning for repeated
// keys.
func TestStoreStreamingRoundTripAndCompact(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "results.jsonl")

	st := NewStore()
	st.Add(streamResult("a", 1), streamResult("b", 2))
	if err := st.StreamTo(log); err != nil {
		t.Fatal(err)
	}
	st.Add(streamResult("c", 3))
	st.Add(streamResult("b", 20)) // shadows the flushed line on read
	if got := st.Len(); got != 3 {
		t.Errorf("Len = %d, want 3 distinct keys", got)
	}
	if _, ok := st.Get("a"); ok {
		t.Error("Get reported a hit in streaming mode; payloads live on disk")
	}
	if rs := st.Results(); len(rs) != 0 {
		t.Errorf("Results returned %d entries in streaming mode, want 0", len(rs))
	}
	if n := st.RetainedBytes(); n != 0 {
		t.Errorf("RetainedBytes = %d in streaming mode, want 0", n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The log is JSON Lines: one object per line, four lines (the
	// repeated key appended, not rewritten).
	raw, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != 4 {
		t.Errorf("streamed log has %d lines, want 4 (duplicates append)", lines)
	}

	back, err := ReadStore(log)
	if err != nil {
		t.Fatal(err)
	}
	want := NewStore()
	want.Add(streamResult("a", 1), streamResult("b", 2), streamResult("c", 3), streamResult("b", 20))
	assertStoreEqual(t, back, want, "streamed log")

	// Compact rewrites the log as the canonical array — byte-identical
	// to what the equivalent in-memory store writes — and compacting
	// the compact form is the identity.
	compacted := filepath.Join(dir, "results.json")
	if err := Compact(log, compacted); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "legacy.json")
	if err := want.WriteFile(legacy); err != nil {
		t.Fatal(err)
	}
	cb, _ := os.ReadFile(compacted)
	lb, _ := os.ReadFile(legacy)
	if string(cb) != string(lb) {
		t.Errorf("compacted store differs from the in-memory store's WriteFile output")
	}
	again := filepath.Join(dir, "again.json")
	if err := Compact(compacted, again); err != nil {
		t.Fatal(err)
	}
	ab, _ := os.ReadFile(again)
	if string(ab) != string(cb) {
		t.Errorf("compacting a compact store is not the identity")
	}

	// ReadStore loads both formats to the same contents.
	fromArray, err := ReadStore(compacted)
	if err != nil {
		t.Fatal(err)
	}
	assertStoreEqual(t, fromArray, want, "compacted array")
}

func assertStoreEqual(t *testing.T, got, want *Store, label string) {
	t.Helper()
	gr, wr := got.Results(), want.Results()
	if len(gr) != len(wr) {
		t.Fatalf("%s: %d results, want %d", label, len(gr), len(wr))
	}
	for i := range wr {
		if gr[i].Key != wr[i].Key || gr[i].Sim.PPW != wr[i].Sim.PPW {
			t.Errorf("%s: result %d = %+v, want %+v", label, i, gr[i], wr[i])
		}
	}
}

// An empty streamed log reads back as an empty store, and a second
// StreamTo on an already-streaming store is an error rather than a
// silent file swap.
func TestStoreStreamingEdgeCases(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "empty.jsonl")
	st := NewStore()
	if err := st.StreamTo(log); err != nil {
		t.Fatal(err)
	}
	if err := st.StreamTo(filepath.Join(dir, "other.jsonl")); err == nil {
		t.Error("second StreamTo succeeded; want an already-streaming error")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStore(log)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty log read back %d results", back.Len())
	}
	// Close is idempotent and a no-op for in-memory stores.
	if err := st.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := NewStore().Close(); err != nil {
		t.Errorf("in-memory Close: %v", err)
	}
}

// GetHashed/PutHashed with a precomputed digest must be exactly
// equivalent to Get/Put — same entries, same on-disk files — in both
// storage modes; that equivalence is what lets the executor hash each
// canonical key once per batch.
func TestCacheHashedAccessorsEquivalent(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		mode := "memory"
		if dir != "" {
			mode = "disk"
		}
		c, err := NewCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		key := "v3|hashed|equivalence"
		hash := HashKey(key)
		if err := c.PutHashed(key, hash, streamResult(key, 7)); err != nil {
			t.Fatalf("%s: PutHashed: %v", mode, err)
		}
		var viaGet, viaHashed Result
		if !c.Get(key, &viaGet) {
			t.Fatalf("%s: Get missed an entry written by PutHashed", mode)
		}
		if !c.GetHashed(key, hash, &viaHashed) {
			t.Fatalf("%s: GetHashed missed an entry written by PutHashed", mode)
		}
		if viaGet.Sim.PPW != 7 || viaHashed.Sim.PPW != 7 {
			t.Errorf("%s: payloads = %v / %v, want 7", mode, viaGet.Sim.PPW, viaHashed.Sim.PPW)
		}
		// And the reverse direction: Put, read via GetHashed.
		key2 := "v3|hashed|reverse"
		if err := c.Put(key2, streamResult(key2, 9)); err != nil {
			t.Fatal(err)
		}
		var r2 Result
		if !c.GetHashed(key2, HashKey(key2), &r2) || r2.Sim.PPW != 9 {
			t.Errorf("%s: GetHashed after Put = (%+v), want PPW 9", mode, r2)
		}
	}
}
