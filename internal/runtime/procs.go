package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	stdruntime "runtime"
	"sort"
	"sync"
	"time"

	"fedgpo/internal/runtime/wire"
	"fedgpo/internal/telemetry"
)

// WireRequest is one job dispatched to a worker: the canonical key it
// is addressed by plus the serialized spec the worker reconstructs it
// from (Job.Payload).
type WireRequest struct {
	Key  string          `json:"key"`
	Spec json.RawMessage `json:"spec"`
	// Inner is the coordinator-forwarded inner worker budget for this
	// job: how many extra per-round helper goroutines the worker should
	// lend the cell (0 = serial rounds). Under the adaptive split the
	// coordinator derives it per batch and per endpoint — small batches
	// on big workers fan out inside the worker — and results are
	// byte-identical for any value, so it never enters cache keys.
	Inner int `json:"inner,omitempty"`
	// Snaps pre-pushes serialized pretrain snapshots the coordinator
	// holds for this job's affinity key (protocol v5): the worker
	// installs them before running, so a cell stolen or overflowed onto
	// a cold endpoint deserializes the snapshot instead of re-running
	// the warm-up. Purely an optimization — an ignored or failed install
	// re-warms to the identical snapshot.
	Snaps []SnapshotArtifact `json:"snaps,omitempty"`
}

// WireResponse is a worker's reply to one WireRequest, in request
// order. Cached travels beside the result because Result.Cached is
// deliberately excluded from the result's JSON form.
type WireResponse struct {
	Key    string `json:"key"`
	Result Result `json:"result"`
	Cached bool   `json:"cached,omitempty"`
	// Metrics is the worker's per-job telemetry snapshot (protocol v3).
	// Like Cached it travels beside the result because Result.Telemetry
	// is excluded from result JSON — cached bytes must not depend on
	// whether telemetry was recorded. The coordinator folds it into its
	// own collector, so remote pools are as observable as local ones.
	Metrics *telemetry.Metrics `json:"metrics,omitempty"`
	// Snaps returns pretrain snapshots this job's execution built from
	// scratch (protocol v5; Result.Snaps, excluded from result JSON like
	// Cached and Metrics). The coordinator persists them and pre-pushes
	// them with later requests sharing the affinity key.
	Snaps []SnapshotArtifact `json:"snaps,omitempty"`
}

// wireEnvelope is the payload of one protocol-v4 binary frame: a batch
// of requests (coordinator to worker) or the matching batch of
// responses, answered in request order. Exactly one of the two sides
// is populated per frame.
type wireEnvelope struct {
	Reqs  []WireRequest  `json:"reqs,omitempty"`
	Resps []WireResponse `json:"resps,omitempty"`
}

// WorkerOptions parameterizes the worker half of a wire session.
type WorkerOptions struct {
	// Capacity is the concurrency advertised in the hello frame (<= 1
	// advertises 1 — a stdio subprocess serves one job at a time).
	Capacity int
	// CacheDir is the worker's run-cache directory, advertised in the
	// hello so a coordinator sharing it can skip redundant cache writes.
	CacheDir string
	// SetInner, when non-nil, applies coordinator-forwarded inner
	// budgets (WireRequest.Inner) before each job runs.
	SetInner func(n int)
	// MaxProto caps the protocol generation advertised in the hello
	// (0 advertises ProtoVersion). Tests pin ProtoV3 or ProtoV4 to
	// exercise the fallbacks an older worker would negotiate.
	MaxProto int
	// Install, when non-nil, installs a coordinator-pushed snapshot
	// artifact (WireRequest.Snaps, protocol v5) into the worker's
	// pretrain cache before the request that carried it runs. Best
	// effort: an install failure is ignored — the worker just re-warms,
	// producing the identical snapshot.
	Install func(key string, data json.RawMessage) error
}

// ServeWorker runs the worker half of the wire protocol on a byte
// stream with default options: hello first, then one WireResponse per
// WireRequest, in request order, until EOF. run must not panic —
// job-level failures belong in Result.Err (the worker binary routes
// execution through an Executor, which isolates them).
func ServeWorker(r io.Reader, w io.Writer, run func(key string, spec json.RawMessage) Result) error {
	return ServeSession(r, w, run, WorkerOptions{})
}

// ServeSession runs one worker wire session: it sends the hello frame,
// then serves requests from r until EOF, executing each via run and
// answering in request order. The framing depends on what the far side
// negotiates from the hello: a v4 coordinator opens with a helloAck
// and the session switches to batched binary frames (see serveBatches);
// a pre-v4 coordinator sends plain WireRequest JSON frames and gets
// the v3 loop, whitespace between frames — blank lines, trailing
// newlines from wrapper scripts — tolerated. Either way a malformed
// frame fails the session with the offending frame's index in the
// error.
func ServeSession(r io.Reader, w io.Writer, run func(key string, spec json.RawMessage) Result, opt WorkerOptions) error {
	if opt.Capacity < 1 {
		opt.Capacity = 1
	}
	maxProto := opt.MaxProto
	if maxProto == 0 {
		maxProto = ProtoVersion
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(WireHello{
		Hello: true, Proto: ProtoV3, MaxProto: maxProto, KeyVersion: keyVersion,
		Capacity: opt.Capacity, CacheDir: opt.CacheDir,
	}); err != nil {
		return fmt.Errorf("runtime: worker hello: %w", err)
	}
	dec := json.NewDecoder(r)
	lastInner := 0
	serve := func(req WireRequest, frame int) error {
		if opt.SetInner != nil && req.Inner != lastInner {
			opt.SetInner(req.Inner)
			lastInner = req.Inner
		}
		res := run(req.Key, req.Spec)
		if err := enc.Encode(WireResponse{Key: req.Key, Result: res, Cached: res.Cached, Metrics: res.Telemetry}); err != nil {
			return fmt.Errorf("runtime: worker encode (frame %d): %w", frame, err)
		}
		return nil
	}
	// The first inbound frame decides the session generation: a
	// coordinator that negotiated v4 sends a helloAck before anything
	// else; one that didn't sends a plain request (or nothing at all).
	var first struct {
		HelloAck bool `json:"helloAck"`
		Proto    int  `json:"proto"`
		WireRequest
	}
	if err := dec.Decode(&first); err == io.EOF {
		// json.Decoder skips whitespace before a value, so a clean EOF
		// here also covers streams ending in blank lines or stray
		// newlines.
		return nil
	} else if err != nil {
		return fmt.Errorf("runtime: worker decode (frame 1): %w", err)
	}
	if first.HelloAck {
		if first.Proto < ProtoV4 || first.Proto > maxProto {
			return fmt.Errorf("runtime: worker handshake: coordinator acked unsupported protocol %d", first.Proto)
		}
		// The JSON decoder may have read ahead into the first binary
		// frame; drain its buffer before the raw stream, and skip the
		// newline the coordinator's ack encoder left behind.
		return serveBatches(wire.Handoff(io.MultiReader(dec.Buffered(), r)), w, run, opt, first.Proto)
	}
	if err := serve(first.WireRequest, 1); err != nil {
		return err
	}
	for frame := 2; ; frame++ {
		var req WireRequest
		if err := dec.Decode(&req); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("runtime: worker decode (frame %d): %w", frame, err)
		}
		if err := serve(req, frame); err != nil {
			return err
		}
	}
}

// serveBatches runs the protocol v4/v5 worker loop: every inbound
// frame is a compressed envelope of batched requests, executed in
// order, and every finished spec is answered immediately with its own
// response frame. Requests batch to amortize dispatch; responses
// stream so a worker death mid-batch only costs the specs it had not
// yet answered — the same failure granularity as the v3
// one-spec-per-frame loop. Under a negotiated v5 session the worker
// additionally installs coordinator-pushed snapshot artifacts before
// each request runs and attaches freshly built snapshots to the
// response (v4 coordinators never see the Snaps fields). Frame indexes
// restart at 1 on both sides at the binary handoff (the helloAck is
// handshake, not data).
func serveBatches(r io.Reader, w io.Writer, run func(key string, spec json.RawMessage) Result, opt WorkerOptions, proto int) error {
	lastInner := 0
	for frame := 1; ; frame++ {
		payload, _, err := wire.ReadFrame(r, frame)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// wire errors are already frame-indexed.
			return fmt.Errorf("runtime: worker read: %w", err)
		}
		var env wireEnvelope
		if err := json.Unmarshal(payload, &env); err != nil {
			return fmt.Errorf("runtime: worker decode (frame %d): %w", frame, err)
		}
		if len(env.Reqs) == 0 {
			return fmt.Errorf("runtime: worker decode (frame %d): empty request envelope", frame)
		}
		for _, req := range env.Reqs {
			if opt.SetInner != nil && req.Inner != lastInner {
				opt.SetInner(req.Inner)
				lastInner = req.Inner
			}
			if opt.Install != nil {
				for _, sa := range req.Snaps {
					// Best effort: a failed install just means this
					// process re-warms, producing the identical snapshot.
					_ = opt.Install(sa.Key, sa.Data)
				}
			}
			res := run(req.Key, req.Spec)
			resp := WireResponse{Key: req.Key, Result: res, Cached: res.Cached, Metrics: res.Telemetry}
			if proto >= ProtoV5 {
				resp.Snaps = res.Snaps
			}
			b, err := json.Marshal(wireEnvelope{Resps: []WireResponse{resp}})
			if err != nil {
				return fmt.Errorf("runtime: worker encode (frame %d): %w", frame, err)
			}
			if _, err := wire.WriteFrame(w, b); err != nil {
				return fmt.Errorf("runtime: worker write (frame %d): %w", frame, err)
			}
		}
	}
}

// ProcConfig parameterizes the shard coordinator.
type ProcConfig struct {
	// WorkerBin is the worker binary local sessions spawn
	// (cmd/fedgpo-worker, or any binary speaking the wire protocol).
	// Unused when Procs resolves to 0.
	WorkerBin string
	// Procs is the local worker subprocess count. <= 0 selects
	// GOMAXPROCS when no Workers are configured, and 0 local
	// subprocesses when remote workers carry the batch.
	Procs int
	// Workers lists remote TCP worker pools (fedgpo-worker -listen
	// host:port) to dispatch jobs to, alongside any local subprocesses.
	Workers []string
	// CacheDir, when set, is forwarded to every local worker as
	// -cachedir so coordinator and workers share one content-addressed
	// disk cache (run results and pretrained-controller snapshots
	// alike). Results from any worker whose hello advertises this same
	// directory are marked Persisted, so the executor skips re-writing
	// entries the worker already published; results from workers with a
	// different (or no) cache directory are written by the coordinator
	// as usual, which is what keeps warm reruns hit-only even when the
	// remote pools cache elsewhere.
	CacheDir string
	// InnerParallel is the explicit inner worker budget forwarded to
	// every worker (0 = serial rounds). Negative selects the adaptive
	// split: each batch derives a per-endpoint budget from the batch
	// shape and the fleet's capacity, forwarded per request on the wire.
	InnerParallel int
	// ReplyTimeout, when positive, bounds how long the coordinator
	// waits for each response frame from a remote worker before
	// failing the session (local subprocess sessions detect failure via
	// pipe EOF instead and ignore it).
	ReplyTimeout time.Duration
	// Env, when non-nil, replaces the local workers' environment (nil
	// inherits the coordinator's).
	Env []string
	// Route selects the dispatch policy. "affinity" (the default)
	// groups each batch by the jobs' affinity keys and routes every
	// group to a home endpoint weighted by advertised capacity with a
	// least-loaded tiebreak, falling back to work stealing so
	// stragglers and dead endpoints still drain; "pull" is the PR 5
	// pull-order work queue. Results are byte-identical across
	// policies — routing only ever changes where a cell runs.
	Route string
}

// EndpointStats is one endpoint's dispatch counters within a
// coordinator, snapshotted under a single lock.
type EndpointStats struct {
	// Endpoint is the transport's name ("stdio:fedgpo-worker",
	// "tcp:host:port").
	Endpoint string `json:"endpoint"`
	// Dispatched counts requests sent to the endpoint, resends
	// included.
	Dispatched int64 `json:"dispatched"`
	// Retried counts session failures that were retried on a fresh
	// session (the failing session's unanswered job is resent; answered
	// jobs never are).
	Retried int64 `json:"retried"`
	// Failed counts jobs this endpoint gave up on after its retry
	// budget ran out — handed back to the fleet, and surfaced as error
	// results only when no endpoint could take them.
	Failed int64 `json:"failed"`
	// BytesSent / BytesRecv meter raw bytes moved on the endpoint's
	// sessions as seen from the coordinator's edge of the transport,
	// handshake frames included. Zero for sessions that don't meter
	// (scripted test conns).
	BytesSent int64 `json:"bytesSent,omitempty"`
	BytesRecv int64 `json:"bytesRecv,omitempty"`
	// Frames counts request frames sent (responses mirror them 1:1);
	// Specs counts the specs those frames carried. Specs/Frames is the
	// realized batch density — 1.0 on v3-fallback sessions, up to the
	// fair-share cap on v4 sessions.
	Frames int64 `json:"frames,omitempty"`
	Specs  int64 `json:"specs,omitempty"`
	// AffinityHits counts affinity-keyed jobs this endpoint ran as
	// their group's home (co-located with their pretrain siblings);
	// AffinityMisses counts affinity-keyed jobs it ran away from their
	// home (overflowed or stolen singles). Always zero under -route=pull.
	AffinityHits   int64 `json:"affinityHits,omitempty"`
	AffinityMisses int64 `json:"affinityMisses,omitempty"`
	// Stolen counts jobs this endpoint took from another endpoint's
	// planned share — whole-group adoptions from dead or straggling
	// endpoints plus snapshot-backed singles.
	Stolen int64 `json:"stolen,omitempty"`
	// SnapBytesSent meters serialized snapshot bytes pre-pushed to this
	// endpoint (protocol v5).
	SnapBytesSent int64 `json:"snapBytesSent,omitempty"`
}

// EndpointStatser is implemented by backends that track per-endpoint
// dispatch counters; Executor.Stats folds them into its snapshot.
type EndpointStatser interface {
	EndpointStats() []EndpointStats
}

// endpoint is one worker endpoint under the coordinator: a transport
// plus its learned capacity and dispatch counters.
type endpoint struct {
	transport Transport
	// capacity is the endpoint's session count: configured for stdio,
	// learned from the hello for TCP (1 until first probed). Guarded by
	// the coordinator's mutex.
	capacity int
	stats    EndpointStats
	// known tracks snapshot keys the worker process behind this
	// endpoint is known to hold, so the coordinator pushes each
	// artifact at most once. Only maintained for endpoints whose hello
	// advertises capacity > 1 (sessions sharing one process); one-shot
	// subprocess sessions track theirs per session instead. Guarded by
	// the coordinator's mutex.
	known map[string]bool
}

// Coordinator executes batches across worker endpoints behind
// Transports: local subprocess pools (StdioTransport), remote TCP
// worker pools (TCPTransport), or both at once. Jobs are fed to
// endpoint sessions work-queue style — each session pulls the next
// unstarted job as it finishes the last — so a slow or remote endpoint
// never straggles the whole batch the way a static per-worker shard
// would. Each session has a retry budget of one: a session failure
// (crashed worker, dropped connection, truncated or out-of-order
// output) re-dials and resends only the unanswered in-flight job; a
// session whose budget runs out hands its job back to the fleet, so a
// dead endpoint degrades capacity, not correctness. Jobs still
// unanswered when every session has exhausted its budget yield error
// results.
type Coordinator struct {
	cfg       ProcConfig
	endpoints []*endpoint
	col       *telemetry.Collector
	cache     *Cache

	mu      sync.Mutex
	lastErr error

	// snapMu guards snaps, the in-memory pool of snapshot artifacts
	// returned by workers this process lifetime (wire v5). It is a
	// dedicated lock because the dispatcher's hasSnap callback reads it
	// while holding the queue lock.
	snapMu sync.Mutex
	snaps  map[string]json.RawMessage
}

// SetCollector attaches a telemetry collector. The coordinator records
// per-endpoint dispatch latency (request Send to response Recv, so a
// cell's worker-side execution time is included) plus retry and
// failover counters into it. A nil collector disables recording.
func (c *Coordinator) SetCollector(col *telemetry.Collector) { c.col = col }

// SetCache attaches the coordinator's run cache so snapshot artifacts
// returned by workers (wire v5) are persisted under their own keys —
// a later cold run warm-starts from disk. A nil cache disables
// persistence; artifacts still ship fleet-wide from the in-memory
// pool for the coordinator's lifetime. Call before Run.
func (c *Coordinator) SetCache(cache *Cache) { c.cache = cache }

// ProcBackend is the coordinator's historical name, kept so PR 3 era
// call sites and docs stay valid.
type ProcBackend = Coordinator

// NewProcBackend returns a shard coordinator for cfg: one stdio
// endpoint running cfg.Procs subprocess sessions (when the resolved
// count is positive) plus one TCP endpoint per cfg.Workers address.
// Construction performs no I/O; endpoints are dialed per batch.
func NewProcBackend(cfg ProcConfig) *Coordinator {
	if cfg.Procs <= 0 {
		if len(cfg.Workers) > 0 {
			cfg.Procs = 0
		} else {
			cfg.Procs = stdruntime.GOMAXPROCS(0)
		}
	}
	c := &Coordinator{cfg: cfg}
	if cfg.Procs > 0 {
		c.endpoints = append(c.endpoints, &endpoint{
			transport: &StdioTransport{
				WorkerBin:     cfg.WorkerBin,
				Procs:         cfg.Procs,
				CacheDir:      cfg.CacheDir,
				InnerParallel: cfg.InnerParallel,
				Env:           cfg.Env,
			},
			capacity: cfg.Procs,
		})
	}
	for _, addr := range cfg.Workers {
		c.endpoints = append(c.endpoints, &endpoint{
			transport: &TCPTransport{Addr: addr, ReplyTimeout: cfg.ReplyTimeout},
			capacity:  1, // refined by the first hello
		})
	}
	for _, ep := range c.endpoints {
		ep.stats.Endpoint = ep.transport.Name()
	}
	return c
}

// NewCoordinator returns a coordinator over explicit transports —
// the constructor behind NewProcBackend, exposed for custom endpoint
// fleets and transport-level tests.
func NewCoordinator(cfg ProcConfig, transports ...Transport) *Coordinator {
	c := &Coordinator{cfg: cfg}
	for _, t := range transports {
		cap := t.Sessions()
		if cap < 1 {
			cap = 1 // refined by the first hello
		}
		c.endpoints = append(c.endpoints, &endpoint{transport: t, capacity: cap,
			stats: EndpointStats{Endpoint: t.Name()}})
	}
	return c
}

// Workers returns the fleet's total session capacity: configured for
// stdio endpoints, hello-advertised for TCP endpoints (counted as 1
// each until their first batch).
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, ep := range c.endpoints {
		total += ep.capacity
	}
	if total < 1 {
		total = 1
	}
	return total
}

// EndpointStats snapshots the per-endpoint dispatch counters under one
// lock, sorted by endpoint name so every consumer — both -v summaries,
// the metrics JSON — prints the fleet in the same deterministic order.
func (c *Coordinator) EndpointStats() []EndpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EndpointStats, len(c.endpoints))
	for i, ep := range c.endpoints {
		out[i] = ep.stats
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// snapshotData returns the pooled artifact bytes for key, or nil.
func (c *Coordinator) snapshotData(key string) json.RawMessage {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return c.snaps[key]
}

// hasSnapshot reports whether the coordinator holds a shippable
// artifact for key — the dispatcher's gate for stealing cells out of a
// group whose home already started warming up.
func (c *Coordinator) hasSnapshot(key string) bool { return c.snapshotData(key) != nil }

// storeSnapshot pools a worker-returned artifact and persists it to
// the coordinator's cache under its own key. persisted marks artifacts
// from workers sharing the coordinator's cache directory, which
// already published them to disk themselves.
func (c *Coordinator) storeSnapshot(sa SnapshotArtifact, persisted bool) {
	if sa.Key == "" || len(sa.Data) == 0 {
		return
	}
	c.snapMu.Lock()
	if c.snaps == nil {
		c.snaps = make(map[string]json.RawMessage)
	}
	_, seen := c.snaps[sa.Key]
	c.snaps[sa.Key] = sa.Data
	c.snapMu.Unlock()
	if !seen && !persisted && c.cache != nil {
		// Data is the exact payload JSON a local warm-up would have
		// cached, so the disk entry is byte-identical either way.
		c.cache.Put(sa.Key, sa.Data)
	}
}

// snapKnown reports whether the worker process behind a session is
// known to hold the snapshot for key; markSnapKnown records that it
// now does (pushed to it, built by it, or warmed for one of its
// jobs). sess is the per-session set; endpoints whose sessions share
// one process (hello capacity > 1) additionally share the
// endpoint-level set.
func (c *Coordinator) snapKnown(ep *endpoint, shared bool, sess map[string]bool, key string) bool {
	if sess[key] {
		return true
	}
	if !shared {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ep.known[key]
}

func (c *Coordinator) markSnapKnown(ep *endpoint, shared bool, sess map[string]bool, key string) {
	sess[key] = true
	if !shared {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ep.known == nil {
		ep.known = make(map[string]bool)
	}
	ep.known[key] = true
}

// queueStats is a dispatcher's per-endpoint scheduling tally, folded
// into EndpointStats and the telemetry counters after the batch.
type queueStats struct {
	affinityHits   int64
	affinityMisses int64
	stolen         int64
}

// dispatcher is the coordinator's batch-distribution policy seam. Both
// implementations share the PR 5 lifecycle — sessions pop jobs, failed
// sessions requeue their unanswered tail, finalize counts answers, and
// abandoned drains what no endpoint could run — they differ only in
// which job a given endpoint's pop returns. Routing never changes
// results, only placement.
type dispatcher interface {
	// pop returns the next job index for endpoint ep, blocking while
	// one may still become eligible; ok is false once the batch is over.
	pop(ep int) (int, bool)
	// take removes up to k more jobs for ep without blocking — the
	// frame top-up; it never waits for frame-mates.
	take(ep, k int) []int
	// requeue gives unanswered jobs back to the fleet.
	requeue(idxs ...int)
	// finalize marks one job answered; at zero, blocked pops return done.
	finalize()
	// abandoned empties the queue after every session has exited,
	// returning the jobs nobody could run.
	abandoned() []int
	// wake re-examines blocked pops after external state changed (a
	// snapshot arrived, making stalled groups stealable).
	wake()
	// endpointDone marks an endpoint as having no live sessions left,
	// releasing its planned work for adoption.
	endpointDone(ep int)
	// stats returns the endpoint's scheduling tally.
	stats(ep int) queueStats
}

// workQueue is the pull-order dispatcher (-route=pull, and the PR 5
// semantics): one shared FIFO, every endpoint equal. pop blocks while
// the queue is empty but unfinalized jobs are still in flight
// elsewhere — one of them may yet be given back — and returns done
// once every job is finalized.
type workQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	items     []int
	remaining int // jobs not yet answered or abandoned
}

func newWorkQueue(items []int) *workQueue {
	q := &workQueue{items: items, remaining: len(items)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *workQueue) pop(int) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && q.remaining > 0 {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return -1, false
	}
	i := q.items[0]
	q.items = q.items[1:]
	return i, true
}

func (q *workQueue) take(_, k int) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if k > len(q.items) {
		k = len(q.items)
	}
	if k <= 0 {
		return nil
	}
	out := append([]int(nil), q.items[:k]...)
	q.items = q.items[k:]
	return out
}

func (q *workQueue) requeue(idxs ...int) {
	q.mu.Lock()
	q.items = append(q.items, idxs...)
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *workQueue) finalize() {
	q.mu.Lock()
	q.remaining--
	rem := q.remaining
	q.mu.Unlock()
	if rem <= 0 {
		q.cond.Broadcast()
	}
}

func (q *workQueue) abandoned() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.items
	q.items = nil
	q.remaining = 0
	return items
}

func (q *workQueue) wake()                { q.cond.Broadcast() }
func (q *workQueue) endpointDone(int)     {}
func (q *workQueue) stats(int) queueStats { return queueStats{} }

// Run executes the batch across the endpoint fleet; see Backend.Run.
func (c *Coordinator) Run(jobs []Job, done func(int, Result)) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	// Canonical keys are resolved exactly once per job here — sends,
	// response validation and error annotation all read the slice
	// instead of re-joining the key per use — built into one reused
	// buffer so assembly itself allocates nothing.
	keys := make([]string, len(jobs))
	var keyBuf []byte
	for i, j := range jobs {
		keyBuf = j.AppendKey(keyBuf[:0])
		keys[i] = string(keyBuf)
	}
	idxs := make([]int, 0, len(jobs))
	for i, j := range jobs {
		// A job with no serialized spec cannot cross the process
		// boundary; that is a programming error on the batch builder,
		// surfaced per job rather than by panicking the batch.
		if len(j.Payload) == 0 {
			results[i] = Result{Key: keys[i], Err: "runtime: job has no spec payload; procs backend requires spec-built jobs"}
			if done != nil {
				done(i, results[i])
			}
			continue
		}
		idxs = append(idxs, i)
	}
	if len(idxs) == 0 {
		return results
	}
	queue := c.newDispatcher(jobs, idxs)

	totalCap := c.Workers()
	var wg sync.WaitGroup
	for epi, ep := range c.endpoints {
		wg.Add(1)
		go func(epi int, ep *endpoint) {
			defer wg.Done()
			// Releasing the endpoint's planned work on exit — sessions
			// crashed out or batch done — is the dispatcher's liveness
			// guarantee: a dead endpoint's groups become adoptable.
			defer queue.endpointDone(epi)
			c.runEndpoint(epi, ep, len(idxs), totalCap, jobs, keys, queue, results, done)
		}(epi, ep)
	}
	wg.Wait()

	// Fold the dispatcher's scheduling tallies into the per-endpoint
	// stats and the batch-level counters.
	var hits, misses, stolen int64
	c.mu.Lock()
	for epi, ep := range c.endpoints {
		qs := queue.stats(epi)
		ep.stats.AffinityHits += qs.affinityHits
		ep.stats.AffinityMisses += qs.affinityMisses
		ep.stats.Stolen += qs.stolen
		hits += qs.affinityHits
		misses += qs.affinityMisses
		stolen += qs.stolen
	}
	c.mu.Unlock()
	if hits+misses+stolen > 0 {
		c.col.Count(func(cc *telemetry.Counters) {
			cc.AffinityHits += hits
			cc.AffinityMisses += misses
			cc.StolenJobs += stolen
		})
	}

	// Jobs still queued here were abandoned by every session — the
	// whole fleet exhausted its retry budget first.
	c.mu.Lock()
	lastErr := c.lastErr
	c.mu.Unlock()
	if lastErr == nil {
		lastErr = fmt.Errorf("no worker endpoints available")
	}
	for _, i := range queue.abandoned() {
		results[i] = Result{Key: keys[i], Err: fmt.Sprintf("runtime: worker shard failed after retry: %v", lastErr)}
		if done != nil {
			done(i, results[i])
		}
	}
	return results
}

// newDispatcher builds the batch's dispatch policy: the affinity
// scheduler by default, the PR 5 pull-order queue under -route=pull.
// The affinity scheduler weighs homes by the capacities known right
// now — TCP endpoints advertise theirs in the hello, so on the very
// first batch they weigh 1 until probed; whole-group adoption
// rebalances the difference without splitting any group's warm-up.
func (c *Coordinator) newDispatcher(jobs []Job, idxs []int) dispatcher {
	if c.cfg.Route == "pull" || len(c.endpoints) == 0 {
		return newWorkQueue(idxs)
	}
	c.mu.Lock()
	caps := make([]int, len(c.endpoints))
	for i, ep := range c.endpoints {
		caps[i] = ep.capacity
	}
	c.mu.Unlock()
	return newAffinityQueue(jobs, idxs, caps, c.hasSnapshot)
}

// maxSpecsPerFrame caps how many specs a v4 session packs into one
// request frame, bounding both the frame size and the amount of work a
// single session failure requeues.
const maxSpecsPerFrame = 16

// specsPerFrame derives a v4 session's frame batch size from the batch
// shape: each frame carries at most the session's fair share of the
// batch across the fleet's capacity, so batching never trades away the
// work queue's load balancing — a fleet that could run every cell
// concurrently still gets one spec per frame.
func specsPerFrame(batch, totalCap int) int {
	if totalCap < 1 {
		totalCap = 1
	}
	n := batch / totalCap
	if n < 1 {
		n = 1
	}
	if n > maxSpecsPerFrame {
		n = maxSpecsPerFrame
	}
	return n
}

// runEndpoint drives one endpoint through a batch: it resolves the
// session count (dialing a probe session for capacity-advertising
// transports), derives the endpoint's forwarded inner budget from the
// batch shape, and runs the sessions until the queue drains or every
// session's retry budget is spent.
func (c *Coordinator) runEndpoint(epi int, ep *endpoint, batch, totalCap int, jobs []Job, keys []string, queue dispatcher, results []Result, done func(int, Result)) {
	sessions := ep.transport.Sessions()
	var probe Conn
	if sessions <= 0 {
		// Capacity comes from the hello: dial one probe session (with
		// the same retry budget a session gets) and read it.
		var err error
		for attempt := 0; attempt < 2 && probe == nil; attempt++ {
			if probe, err = ep.transport.Dial(); err != nil {
				c.noteSessionFailure(ep, attempt > 0, err)
			}
		}
		if probe == nil {
			return
		}
		sessions = probe.Hello().Capacity
		c.mu.Lock()
		grew := sessions - ep.capacity
		ep.capacity = sessions
		c.mu.Unlock()
		// Keep the budget derivation honest on the first batch: the
		// fleet estimate assumed capacity 1 for this endpoint.
		totalCap += grew
	}
	inner := c.innerBudget(batch, sessions, totalCap)
	specs := specsPerFrame(batch, totalCap)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		conn := probe
		probe = nil
		wg.Add(1)
		go func(conn Conn) {
			defer wg.Done()
			c.runSession(epi, ep, conn, inner, specs, jobs, keys, queue, results, done)
		}(conn)
	}
	wg.Wait()
}

// wireBudget is an endpoint's derived inner worker budget for one
// batch, in both of the shapes a worker process can need. The budget
// lands in a worker-side fl.Pool, which is shared per process — so a
// process running one cell at a time (a stdio subprocess) should get
// its own per-cell share, while a process serving many sessions at
// once (a -listen pool) should get the endpoint's whole spare as one
// shared pool for its concurrent cells. The hello's capacity tells the
// coordinator which kind the far side is (see pump).
type wireBudget struct {
	// perProcess is the budget for a process serving one session.
	perProcess int
	// shared is the budget for a process serving the endpoint's whole
	// session fleet.
	shared int
}

// forConn picks the budget shape matching the worker behind a session:
// a hello capacity above 1 means the sessions share one process (and
// one fl.Pool).
func (b wireBudget) forConn(conn Conn) int {
	if conn.Hello().Capacity > 1 {
		return b.shared
	}
	return b.perProcess
}

// innerBudget derives the inner worker budget forwarded to one
// endpoint for a batch of n jobs. An explicit configured budget is
// forwarded as-is; under the adaptive split (negative configuration)
// the derivation follows the same idea as the pool backend's
// adaptiveInnerBudget: when the batch cannot fill the fleet, an
// endpoint's idle sessions are lent to the cells it does run — small
// shards on big machines fan out inside the worker. Unlike the pool
// backend it keeps no straggler helper when the fleet is saturated:
// oversubscribing every worker process by one thread costs more than a
// shared straggler token does in-process. Results are byte-identical
// for any budget.
func (c *Coordinator) innerBudget(n, endpointCap, totalCap int) wireBudget {
	if c.cfg.InnerParallel >= 0 {
		return wireBudget{perProcess: c.cfg.InnerParallel, shared: c.cfg.InnerParallel}
	}
	if n <= 0 || n >= totalCap || endpointCap <= 1 {
		return wireBudget{}
	}
	// The endpoint's fair share of the batch, by capacity.
	active := (n*endpointCap + totalCap - 1) / totalCap
	if active > endpointCap {
		active = endpointCap
	}
	if active < 1 {
		active = 1
	}
	spare := endpointCap - active
	return wireBudget{perProcess: spare / active, shared: spare}
}

// runSession drives one endpoint session: pull work from the queue,
// send it, read the response, repeat. Dialing is lazy — no worker is
// spawned or connected until the session actually holds a job. A
// session failure re-dials once and resends only the unanswered
// in-flight frame (answered frames are never resent); when the retry
// budget is spent the session gives its in-flight jobs back to the
// fleet — a surviving endpoint absorbs them, and only a fleet with no
// session left turns them into error results (the batch drain).
func (c *Coordinator) runSession(epi int, ep *endpoint, conn Conn, inner wireBudget, specs int, jobs []Job, keys []string, queue dispatcher, results []Result, done func(int, Result)) {
	var carried []int // in-flight frame's job indexes, carried across a retry
	failures := 0
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		if len(carried) == 0 {
			// Pop a single job before dialing: the frame is topped up to
			// the session's batch size inside pump, once the negotiated
			// generation is known.
			i, ok := queue.pop(epi)
			if !ok {
				return // batch finished
			}
			carried = []int{i}
		}
		if failures >= 2 {
			// Retry budget spent: hand the unanswered jobs back.
			queue.requeue(carried...)
			n := int64(len(carried))
			c.mu.Lock()
			ep.stats.Failed += n
			c.mu.Unlock()
			c.col.Count(func(cc *telemetry.Counters) { cc.Failovers += n })
			return
		}
		if conn == nil {
			var err error
			if conn, err = ep.transport.Dial(); err != nil {
				failures++
				c.noteSessionFailure(ep, failures > 1, err)
				continue
			}
		}
		var err error
		if carried, err = c.pump(epi, ep, conn, inner, specs, carried, jobs, keys, queue, results, done); err == nil {
			return // queue drained through this session
		} else {
			failures++
			c.noteSessionFailure(ep, failures > 1, err)
			_ = conn.Close()
			conn = nil
		}
	}
}

// pump streams job frames through one established session until the
// batch finishes or the session fails. Each iteration moves one
// request frame: a single spec on a v3 session, up to the endpoint's
// fair-share batch on a v4/v5 BatchConn. Responses stream back per
// spec and are finalized as they arrive, in request order; a failure
// mid-frame returns only the unanswered tail for requeue, so specs a
// dying worker already answered are never re-run — the exact failure
// granularity of the v3 one-spec-per-frame protocol. On a v5 session
// the pump additionally pre-pushes pooled snapshot artifacts with
// affinity-keyed requests whose worker isn't known to hold them, and
// pools artifacts the responses return.
func (c *Coordinator) pump(epi int, ep *endpoint, conn Conn, budget wireBudget, specs int, carried []int, jobs []Job, keys []string, queue dispatcher, results []Result, done func(int, Result)) ([]int, error) {
	sharesCache := c.cfg.CacheDir != "" && conn.Hello().CacheDir == c.cfg.CacheDir
	inner := budget.forConn(conn)
	bc, _ := conn.(BatchConn)
	if bc == nil {
		specs = 1 // v3 fallback: one spec per frame, the PR 5 contract
	}
	proto := ProtoV3
	if p, ok := conn.(interface{ Proto() int }); ok {
		proto = p.Proto()
	}
	// A worker sharing the coordinator's cache directory reads shipped
	// snapshots straight from disk, so pushing bytes at it is pure
	// waste; everyone else gets the artifact once per process.
	shipSnaps := proto >= ProtoV5 && !sharesCache
	shared := conn.Hello().Capacity > 1
	sessKnown := make(map[string]bool)
	ws, _ := conn.(WireStatser)
	var lastSent, lastRecv int64 // 0,0 so the first delta includes the handshake
	for {
		frame := carried
		carried = nil
		if len(frame) == 0 {
			i, ok := queue.pop(epi)
			if !ok {
				return nil, nil
			}
			frame = []int{i}
		}
		if len(frame) < specs {
			frame = append(frame, queue.take(epi, specs-len(frame))...)
		}
		reqs := make([]WireRequest, len(frame))
		var pushed int64
		for k, i := range frame {
			reqs[k] = WireRequest{Key: keys[i], Spec: jobs[i].Payload, Inner: inner}
			if a := jobs[i].Affinity; shipSnaps && a != "" && !c.snapKnown(ep, shared, sessKnown, a) {
				if data := c.snapshotData(a); data != nil {
					reqs[k].Snaps = []SnapshotArtifact{{Key: a, Data: data}}
					c.markSnapKnown(ep, shared, sessKnown, a)
					pushed += int64(len(data))
				}
			}
		}
		if pushed > 0 {
			c.mu.Lock()
			ep.stats.SnapBytesSent += pushed
			c.mu.Unlock()
			c.col.Count(func(cc *telemetry.Counters) { cc.SnapshotBytesShipped += pushed })
		}
		sent := time.Now()
		var err error
		if bc != nil {
			err = bc.SendBatch(reqs)
		} else {
			err = conn.Send(reqs[0])
		}
		if err != nil {
			return frame, fmt.Errorf("sending %q: %w", keys[frame[0]], err)
		}
		c.mu.Lock()
		ep.stats.Dispatched += int64(len(frame))
		ep.stats.Frames++
		ep.stats.Specs += int64(len(frame))
		c.mu.Unlock()
		// Responses stream back per spec, in request order (a worker may
		// still group several into one envelope). Finalize each as it
		// arrives so a session death mid-frame costs only the unanswered
		// tail. Latency is measured from the frame send to each spec's
		// arrival, recorded once per spec so the histogram's count keeps
		// reconciling with Dispatched.
		answered := 0
		for answered < len(frame) {
			var resps []WireResponse
			if bc != nil {
				resps, err = bc.RecvBatch()
			} else {
				var resp WireResponse
				resp, err = conn.Recv()
				resps = []WireResponse{resp}
			}
			if err != nil {
				return frame[answered:], fmt.Errorf("worker reply for %q: %w", keys[frame[answered]], err)
			}
			if len(resps) == 0 || answered+len(resps) > len(frame) {
				return frame[answered:], fmt.Errorf("worker answered %d specs for a frame of %d", answered+len(resps), len(frame))
			}
			elapsed := time.Since(sent)
			snapsArrived := false
			for _, resp := range resps {
				i := frame[answered]
				if resp.Key != keys[i] {
					return frame[answered:], fmt.Errorf("worker replied out of order: got %q, want %q", resp.Key, keys[i])
				}
				answered++
				c.col.RecordLatency(ep.stats.Endpoint, elapsed)
				r := resp.Result
				r.Cached = resp.Cached
				r.Telemetry = resp.Metrics
				for _, sa := range resp.Snaps {
					c.storeSnapshot(sa, sharesCache)
					c.markSnapKnown(ep, shared, sessKnown, sa.Key)
					snapsArrived = true
				}
				// A finished affinity job means the worker process now
				// holds its group's snapshot in memory — no need to ever
				// push it there.
				if a := jobs[i].Affinity; a != "" && r.Err == "" {
					c.markSnapKnown(ep, shared, sessKnown, a)
				}
				// A worker sharing the coordinator's cache directory already
				// published the entry (best effort — a failed worker write
				// costs a future re-run, exactly like a failed coordinator
				// write); results from other workers are persisted by the
				// executor.
				r.Persisted = sharesCache && r.Err == ""
				results[i] = r
				if done != nil {
					done(i, r)
				}
				queue.finalize()
			}
			if snapsArrived {
				// Pooled artifacts make touched groups stealable; re-wake
				// sessions idling for eligible work.
				queue.wake()
			}
		}
		if ws != nil {
			s, rv := ws.WireStats()
			c.mu.Lock()
			ep.stats.BytesSent += s - lastSent
			ep.stats.BytesRecv += rv - lastRecv
			c.mu.Unlock()
			lastSent, lastRecv = s, rv
		}
	}
}

// noteSessionFailure records a failed session attempt: the fleet-wide
// last error (used to annotate jobs no endpoint could take) and, for
// retry attempts, the endpoint's retry counter.
func (c *Coordinator) noteSessionFailure(ep *endpoint, wasRetry bool, err error) {
	c.mu.Lock()
	c.lastErr = err
	retried := !wasRetry
	if retried {
		ep.stats.Retried++
	}
	c.mu.Unlock()
	if retried {
		c.col.Count(func(cc *telemetry.Counters) { cc.Retries++ })
	}
}
