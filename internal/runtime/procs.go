package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	stdruntime "runtime"
	"sync"
)

// WireRequest is one job dispatched to a worker subprocess: the
// canonical key it is addressed by plus the serialized spec the worker
// reconstructs it from (Job.Payload).
type WireRequest struct {
	Key  string          `json:"key"`
	Spec json.RawMessage `json:"spec"`
}

// WireResponse is a worker's reply to one WireRequest, in request
// order. Cached travels beside the result because Result.Cached is
// deliberately excluded from the result's JSON form.
type WireResponse struct {
	Key    string `json:"key"`
	Result Result `json:"result"`
	Cached bool   `json:"cached,omitempty"`
}

// ServeWorker runs the worker half of the wire protocol: it decodes
// WireRequests from r until EOF, executes each via run, and encodes
// one WireResponse per request to w, in request order. run must not
// panic — job-level failures belong in Result.Err (the worker binary
// routes execution through an Executor, which isolates them).
func ServeWorker(r io.Reader, w io.Writer, run func(key string, spec json.RawMessage) Result) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	for {
		var req WireRequest
		if err := dec.Decode(&req); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("runtime: worker decode: %w", err)
		}
		res := run(req.Key, req.Spec)
		if err := enc.Encode(WireResponse{Key: req.Key, Result: res, Cached: res.Cached}); err != nil {
			return fmt.Errorf("runtime: worker encode: %w", err)
		}
	}
}

// ProcConfig parameterizes the multi-process shard coordinator.
type ProcConfig struct {
	// WorkerBin is the worker binary to spawn (cmd/fedgpo-worker, or
	// any binary speaking the wire protocol).
	WorkerBin string
	// Procs is the worker subprocess count (<= 0 selects GOMAXPROCS).
	Procs int
	// CacheDir, when set, is forwarded to every worker as -cachedir so
	// coordinator and workers share one content-addressed disk cache
	// (run results and pretrained-controller snapshots alike). It must
	// be the same directory the coordinator's own Cache reads: results
	// coming back over the wire are marked Persisted on that
	// assumption, so the executor skips re-writing entries the worker
	// already published.
	CacheDir string
	// InnerParallel is forwarded to every worker as -inner-parallel.
	InnerParallel int
	// Env, when non-nil, replaces the workers' environment (nil
	// inherits the coordinator's).
	Env []string
}

// ProcBackend executes batches across worker subprocesses: it
// partitions each batch into shards by canonical key (ShardOf), spawns
// one worker per non-empty shard, streams the jobs' serialized specs
// over stdin and reads results back from stdout. A shard whose worker
// fails — crash, truncated output, out-of-order reply — is retried
// once on a fresh subprocess, resending only the unanswered jobs;
// jobs still unanswered after the retry yield error results.
type ProcBackend struct {
	cfg ProcConfig
}

// NewProcBackend returns a multi-process coordinator for cfg.
func NewProcBackend(cfg ProcConfig) *ProcBackend {
	if cfg.Procs <= 0 {
		cfg.Procs = stdruntime.GOMAXPROCS(0)
	}
	return &ProcBackend{cfg: cfg}
}

// Workers returns the worker subprocess count.
func (b *ProcBackend) Workers() int { return b.cfg.Procs }

// Run executes the batch across worker subprocesses; see Backend.Run.
func (b *ProcBackend) Run(jobs []Job, done func(int, Result)) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	shards := make([][]int, b.cfg.Procs)
	for i, j := range jobs {
		// A job with no serialized spec cannot cross the process
		// boundary; that is a programming error on the batch builder,
		// surfaced per job rather than by panicking the batch.
		if len(j.Payload) == 0 {
			results[i] = Result{Key: j.Key(), Err: "runtime: job has no spec payload; procs backend requires spec-built jobs"}
			if done != nil {
				done(i, results[i])
			}
			continue
		}
		s := ShardOf(j.Key(), b.cfg.Procs)
		shards[s] = append(shards[s], i)
	}
	var wg sync.WaitGroup
	for _, idxs := range shards {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			b.runShard(jobs, idxs, results, done)
		}(idxs)
	}
	wg.Wait()
	return results
}

// runShard drives one shard to completion: one worker subprocess,
// plus one retry on a fresh subprocess covering whatever the first
// left unanswered.
func (b *ProcBackend) runShard(jobs []Job, idxs []int, results []Result, done func(int, Result)) {
	pending := idxs
	var lastErr error
	for attempt := 0; attempt < 2 && len(pending) > 0; attempt++ {
		pending, lastErr = b.runShardProcess(jobs, pending, results, done)
		if lastErr == nil {
			return
		}
	}
	for _, i := range pending {
		results[i] = Result{Key: jobs[i].Key(), Err: fmt.Sprintf("runtime: worker shard failed after retry: %v", lastErr)}
		if done != nil {
			done(i, results[i])
		}
	}
}

// runShardProcess spawns one worker, streams the shard's specs to it,
// and reads responses back in request order. It returns the indices
// still unanswered when the worker stopped, with the error that
// stopped it (nil when every job was answered).
func (b *ProcBackend) runShardProcess(jobs []Job, idxs []int, results []Result, done func(int, Result)) ([]int, error) {
	args := []string{}
	if b.cfg.CacheDir != "" {
		args = append(args, "-cachedir", b.cfg.CacheDir)
	}
	if b.cfg.InnerParallel > 0 {
		args = append(args, "-inner-parallel", fmt.Sprint(b.cfg.InnerParallel))
	}
	cmd := exec.Command(b.cfg.WorkerBin, args...)
	cmd.Env = b.cfg.Env
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return idxs, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return idxs, err
	}
	if err := cmd.Start(); err != nil {
		return idxs, fmt.Errorf("spawn %s: %w", b.cfg.WorkerBin, err)
	}
	// Feed requests from a separate goroutine so a slow worker never
	// deadlocks against a full stdin pipe; an encode error (worker died
	// mid-stream) just stops the feed — the read side detects and
	// reports the failure.
	go func() {
		enc := json.NewEncoder(stdin)
		for _, i := range idxs {
			if enc.Encode(WireRequest{Key: jobs[i].Key(), Spec: jobs[i].Payload}) != nil {
				break
			}
		}
		stdin.Close()
	}()

	dec := json.NewDecoder(stdout)
	answered := 0
	var protoErr error
	for answered < len(idxs) {
		var resp WireResponse
		if err := dec.Decode(&resp); err != nil {
			protoErr = fmt.Errorf("worker reply %d/%d: %w", answered+1, len(idxs), err)
			break
		}
		i := idxs[answered]
		if want := jobs[i].Key(); resp.Key != want {
			protoErr = fmt.Errorf("worker replied out of order: got %q, want %q", resp.Key, want)
			break
		}
		r := resp.Result
		r.Cached = resp.Cached
		// With a shared cache directory the worker's executor already
		// published the entry (best effort — a failed worker write costs
		// a future re-run, exactly like a failed coordinator write).
		r.Persisted = b.cfg.CacheDir != "" && r.Err == ""
		results[i] = r
		if done != nil {
			done(i, r)
		}
		answered++
	}
	if protoErr != nil {
		// Stop a worker that is still alive but talking garbage, so
		// Wait cannot block on its remaining output.
		_ = cmd.Process.Kill()
	}
	waitErr := cmd.Wait()
	if protoErr != nil {
		return idxs[answered:], protoErr
	}
	// Every job was answered; a nonzero exit after that costs nothing.
	_ = waitErr
	return nil, nil
}
