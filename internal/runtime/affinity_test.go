package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedgpo/internal/fl"
	"fedgpo/internal/telemetry"
)

// affJob builds a spec-carrying stub job tagged with a scheduling
// affinity key.
func affJob(i int, affinity string) Job {
	j := stubJob(i, stubSpec{PPW: float64(i)})
	j.Affinity = affinity
	return j
}

// assignGroups is the placement kernel: capacity-weighted relative
// load, lowest-index tiebreak, deterministic in its inputs.
func TestAssignGroupsCapacityWeighted(t *testing.T) {
	// Ten unit groups over capacities 4:1 split exactly 8:2.
	unit := make([]int, 10)
	for i := range unit {
		unit[i] = 1
	}
	counts := [2]int{}
	for _, home := range assignGroups(unit, []int{4, 1}) {
		counts[home]++
	}
	if counts[0] != 8 || counts[1] != 2 {
		t.Errorf("unit groups split %v over caps [4,1], want [8 2]", counts)
	}

	// LPT greedy over equal capacities: largest first, ties to the
	// lowest index.
	homes := assignGroups([]int{5, 3, 2, 2}, []int{2, 2})
	if want := []int{0, 1, 1, 0}; !reflect.DeepEqual(homes, want) {
		t.Errorf("homes = %v, want %v", homes, want)
	}

	// Degenerate capacities clamp to 1 instead of dividing by zero, and
	// an empty fleet places everything on endpoint 0.
	homes = assignGroups([]int{1, 1}, []int{0, -3})
	if !reflect.DeepEqual(homes, []int{0, 1}) {
		t.Errorf("clamped-capacity homes = %v, want [0 1]", homes)
	}
	if homes = assignGroups([]int{1}, nil); homes[0] != 0 {
		t.Errorf("no-fleet home = %v, want 0", homes[0])
	}
}

// A capacity-4 endpoint must absorb ~4x the cells of a capacity-1
// sibling under affinity routing: placement is capacity-weighted
// up front, and work stealing only rebalances what the weighting got
// wrong. Responders sleep so throughput, not scheduling latency,
// decides the split.
func TestAffinityCapacityWeightedDispatch(t *testing.T) {
	respond := func(_ int, req WireRequest) (WireResponse, error) {
		time.Sleep(2 * time.Millisecond)
		return okResponse(req)
	}
	big := newFakeTransport("fake:big", 4, respond)
	small := newFakeTransport("fake:small", 1, respond)
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = affJob(i, fmt.Sprintf("group-%02d", i))
	}
	c := NewCoordinator(ProcConfig{}, big, small)
	for i, r := range c.Run(jobs, nil) {
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
	}
	// EndpointStats sorts by name: "fake:big" first.
	st := c.EndpointStats()
	bigN, smallN := st[0].Dispatched, st[1].Dispatched
	if bigN+smallN != int64(len(jobs)) {
		t.Fatalf("dispatched %d+%d, want %d total", bigN, smallN, len(jobs))
	}
	// The static assignment is 16:4; stealing under timing jitter may
	// shift a couple of groups, never the shape.
	if bigN < 12 {
		t.Errorf("capacity-4 endpoint ran %d of %d cells, want >= 12 (~4x its capacity-1 sibling's %d)",
			bigN, len(jobs), smallN)
	}
	if hits, misses := st[0].AffinityHits+st[1].AffinityHits, st[0].AffinityMisses+st[1].AffinityMisses; hits+misses != int64(len(jobs)) {
		t.Errorf("affinity tallies %d hits + %d misses, want %d placements", hits, misses, len(jobs))
	}
}

// Cells sharing a pretrain key must run in one worker process: without
// a shippable snapshot, a touched group is never split — whole-group
// adoption is the only migration, and it keeps the group co-located.
func TestAffinityCoLocatesGroups(t *testing.T) {
	var mu sync.Mutex
	ranOn := make(map[string]map[string]bool) // affinity key -> endpoints
	byJobKey := make(map[string]string)       // job key -> affinity key
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = affJob(i, fmt.Sprintf("pretrain-%d", i/4))
		byJobKey[jobs[i].Key()] = jobs[i].Affinity
	}
	respond := func(name string) func(int, WireRequest) (WireResponse, error) {
		return func(_ int, req WireRequest) (WireResponse, error) {
			mu.Lock()
			a := byJobKey[req.Key]
			if ranOn[a] == nil {
				ranOn[a] = make(map[string]bool)
			}
			ranOn[a][name] = true
			mu.Unlock()
			time.Sleep(time.Millisecond)
			return okResponse(req)
		}
	}
	c := NewCoordinator(ProcConfig{},
		newFakeTransport("fake:a", 2, respond("a")),
		newFakeTransport("fake:b", 2, respond("b")))
	for i, r := range c.Run(jobs, nil) {
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
	}
	for a, eps := range ranOn {
		if len(eps) != 1 {
			t.Errorf("group %s ran on %d endpoints (%v), want co-location on exactly 1", a, len(eps), eps)
		}
	}
	var misses int64
	for _, ep := range c.EndpointStats() {
		misses += ep.AffinityMisses
	}
	if misses != 0 {
		t.Errorf("%d affinity misses; with no shippable snapshots every cell must run at its group's home", misses)
	}
}

// An idle endpoint must steal a straggler's untouched groups — whole,
// so no warm-up is split — and no job may execute twice in the
// process. The schedule is pinned by handshake rather than sleeps so
// it holds under race-detector load: the straggler blocks inside its
// first cell (its group is now touched) while the fast endpoint — which
// may not finish anything before the straggler has started — drains
// its own six cells, adopts the one untouched group, and only then
// releases the straggler to finish its touched group.
func TestAffinityStragglerGroupsStolenWithoutDoubleExecution(t *testing.T) {
	slowStarted := make(chan struct{})
	release := make(chan struct{})
	var fastRan, slowRan int64
	fast := newFakeTransport("fake:fast", 1, func(_ int, req WireRequest) (WireResponse, error) {
		<-slowStarted
		if atomic.AddInt64(&fastRan, 1) == 9 {
			close(release)
		}
		return okResponse(req)
	})
	slow := newFakeTransport("fake:slow", 1, func(_ int, req WireRequest) (WireResponse, error) {
		if atomic.AddInt64(&slowRan, 1) == 1 {
			close(slowStarted)
			<-release
		}
		return okResponse(req)
	})
	// Four 3-job groups over caps [1,1] place g0,g2 on fast and g1,g3
	// on slow; fast drains its six cells, then adopts the untouched
	// slow-homed group while slow is still inside its first. The two
	// singles left in slow's touched group are snapshot-gated (no
	// coordinator snapshot here), so fast cannot split that warm-up and
	// the final dispatch split is exactly 9/3.
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = affJob(i, fmt.Sprintf("g%d", i/3))
	}
	c := NewCoordinator(ProcConfig{}, fast, slow)
	for i, r := range c.Run(jobs, nil) {
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
	}
	for i := range jobs {
		total := fast.sendCount(jobs[i].Key()) + slow.sendCount(jobs[i].Key())
		if total != 1 {
			t.Errorf("job %d executed %d times, want exactly once", i, total)
		}
	}
	// EndpointStats sorts by name: "fake:fast" first, "fake:slow" second.
	st := c.EndpointStats()
	if st[0].Stolen != 3 {
		t.Errorf("fast endpoint stole %d jobs, want the straggler's untouched 3-job group", st[0].Stolen)
	}
	if st[0].Dispatched != 9 || st[1].Dispatched != 3 {
		t.Errorf("dispatch split %d/%d, want 9/3 (fast absorbed the untouched group)", st[0].Dispatched, st[1].Dispatched)
	}
}

// Singles may only be stolen out of a touched group once the
// coordinator holds the group's snapshot: the thief's request ships
// it, so the stolen cell deserializes instead of re-warming. Until
// then the would-be thief blocks; a snapshot arrival (wake) releases
// it.
func TestAffinityQueueSnapshotGatesSingleSteal(t *testing.T) {
	var mu sync.Mutex
	haveSnap := false
	hasSnap := func(string) bool {
		mu.Lock()
		defer mu.Unlock()
		return haveSnap
	}
	jobs := []Job{affJob(0, "k"), affJob(1, "k"), affJob(2, "k")}
	q := newAffinityQueue(jobs, []int{0, 1, 2}, []int{1, 1}, hasSnap)

	if i, ok := q.pop(0); !ok || jobs[i].Affinity != "k" {
		t.Fatalf("home pop = (%d, %v), want a group job", i, ok)
	}
	got := make(chan int, 1)
	go func() {
		i, ok := q.pop(1)
		if !ok {
			i = -1
		}
		got <- i
	}()
	select {
	case i := <-got:
		t.Fatalf("endpoint 1 stole job %d from a touched group with no shippable snapshot", i)
	case <-time.After(30 * time.Millisecond):
	}
	mu.Lock()
	haveSnap = true
	mu.Unlock()
	q.wake()
	select {
	case i := <-got:
		if i < 0 {
			t.Fatal("pop returned done with jobs still queued")
		}
	case <-time.After(time.Second):
		t.Fatal("snapshot arrival did not release the blocked steal")
	}
	qs := q.stats(1)
	if qs.stolen != 1 || qs.affinityMisses != 1 {
		t.Errorf("thief tally = %+v, want 1 stolen / 1 miss", qs)
	}
}

// -route=affinity and -route=pull must produce identical results on
// the same fleet: routing changes placement, never bytes.
func TestRouteAffinityAndPullByteIdentical(t *testing.T) {
	build := func() []Job {
		jobs := make([]Job, 12)
		for i := range jobs {
			a := ""
			if i < 8 {
				a = fmt.Sprintf("k%d", i/4)
			}
			jobs[i] = affJob(i, a)
		}
		return jobs
	}
	run := func(route string) []Result {
		c := NewCoordinator(ProcConfig{Route: route},
			newFakeTransport("fake:a", 2, func(_ int, req WireRequest) (WireResponse, error) { return okResponse(req) }),
			newFakeTransport("fake:b", 1, func(_ int, req WireRequest) (WireResponse, error) { return okResponse(req) }))
		return c.Run(build(), nil)
	}
	affinity, pull := run("affinity"), run("pull")
	if !reflect.DeepEqual(affinity, pull) {
		t.Errorf("routes diverged:\n--- affinity ---\n%+v\n--- pull ---\n%+v", affinity, pull)
	}
	// Pull-order keeps the PR 5 semantics: no affinity accounting at all.
	c := NewCoordinator(ProcConfig{Route: "pull"},
		newFakeTransport("fake:a", 2, func(_ int, req WireRequest) (WireResponse, error) { return okResponse(req) }))
	c.Run(build(), nil)
	for _, ep := range c.EndpointStats() {
		if ep.AffinityHits != 0 || ep.AffinityMisses != 0 || ep.Stolen != 0 {
			t.Errorf("pull route recorded scheduling tallies: %+v", ep)
		}
	}
}

// snapSpec is the snapshot-shipping TCP tests' job description.
type snapSpec struct {
	PPW float64 `json:"ppw"`
	// Snap, when set, makes the worker return a freshly built snapshot
	// artifact under that key with its response.
	Snap string `json:"snap,omitempty"`
}

// snapJob builds a spec job whose worker-side execution may return a
// snapshot artifact (snap != "").
func snapJob(i int, affinity, snap string) Job {
	payload, _ := json.Marshal(snapSpec{PPW: float64(i), Snap: snap})
	return Job{
		Kind:     "sim",
		Scenario: fmt.Sprintf("snap-%d", i),
		Seed:     int64(i),
		Payload:  payload,
		Affinity: affinity,
	}
}

// snapArtifact is the deterministic payload the test worker "builds".
var snapArtifact = json.RawMessage(`{"q":[1,2,3]}`)

// tcpServeSnaps serves a capacity-1 worker pool that returns snapshot
// artifacts on request and records every coordinator-pushed install.
func tcpServeSnaps(t *testing.T, installs *sync.Map) (addr string, shutdown func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- Serve(ctx, lis, ServeConfig{
			Capacity: 1,
			Install: func(key string, data json.RawMessage) error {
				installs.Store(key, append(json.RawMessage(nil), data...))
				return nil
			},
			Run: func(key string, spec json.RawMessage) Result {
				var s snapSpec
				if err := json.Unmarshal(spec, &s); err != nil {
					return Result{Key: key, Err: err.Error()}
				}
				res := Result{Key: key, Sim: fl.Result{PPW: s.PPW}}
				if s.Snap != "" {
					res.Snaps = []SnapshotArtifact{{Key: s.Snap, Data: snapArtifact}}
				}
				return res
			},
		})
	}()
	return lis.Addr().String(), func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("snap pool drain: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("snap pool did not drain")
		}
	}
}

// Wire v5 end to end: a worker-built snapshot artifact returns with
// its response, the coordinator pools and persists it under its own
// cache key, and a later batch for the same affinity key pre-pushes
// the artifact to a worker process not known to hold it — metered in
// the endpoint stats and telemetry counters.
func TestCoordinatorPoolsAndShipsSnapshots(t *testing.T) {
	var installs sync.Map
	addr, shutdown := tcpServeSnaps(t, &installs)
	defer shutdown()

	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	c := NewProcBackend(ProcConfig{Workers: []string{addr}})
	c.SetCache(cache)
	c.SetCollector(col)

	// Batch 1: the job builds the snapshot; its response carries the
	// artifact home.
	res := c.Run([]Job{snapJob(0, "pretrain-k", "pretrain-k")}, nil)
	if res[0].Err != "" {
		t.Fatalf("builder job failed: %s", res[0].Err)
	}
	var raw json.RawMessage
	if !cache.Get("pretrain-k", &raw) {
		t.Fatal("worker-built snapshot not persisted to the coordinator cache")
	}
	if string(raw) != string(snapArtifact) {
		t.Errorf("persisted artifact = %s, want the byte-identical worker payload %s", raw, snapArtifact)
	}
	if st := c.EndpointStats(); st[0].SnapBytesSent != 0 {
		t.Errorf("coordinator pushed %d B before holding any artifact", st[0].SnapBytesSent)
	}
	if _, ok := installs.Load("pretrain-k"); ok {
		t.Error("worker saw an install before the coordinator had anything to push")
	}

	// Batch 2: a fresh capacity-1 session means a fresh worker process
	// as far as the coordinator knows — the request pre-pushes the
	// pooled artifact.
	res = c.Run([]Job{snapJob(1, "pretrain-k", "")}, nil)
	if res[0].Err != "" {
		t.Fatalf("consumer job failed: %s", res[0].Err)
	}
	data, ok := installs.Load("pretrain-k")
	if !ok {
		t.Fatal("coordinator did not pre-push the pooled snapshot to the next session")
	}
	if string(data.(json.RawMessage)) != string(snapArtifact) {
		t.Errorf("installed artifact = %s, want %s", data, snapArtifact)
	}
	st := c.EndpointStats()
	if st[0].SnapBytesSent != int64(len(snapArtifact)) {
		t.Errorf("endpoint metered %d snapshot bytes, want %d", st[0].SnapBytesSent, len(snapArtifact))
	}
	if m := col.Snapshot(); m.Counters.SnapshotBytesShipped != int64(len(snapArtifact)) {
		t.Errorf("counters.SnapshotBytesShipped = %d, want %d", m.Counters.SnapshotBytesShipped, len(snapArtifact))
	}
}
