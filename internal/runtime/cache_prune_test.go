package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fedgpo/internal/fl"
)

// Prune must evict oldest-mtime-first until the directory fits the
// budget, and Get must touch entries so recently used cells survive
// over merely recently written ones (LRU, not FIFO).
func TestCachePruneEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 4)
	var entrySize int64
	for i := range keys {
		keys[i] = fmt.Sprintf("prune|cell-%d", i)
		if err := cache.Put(keys[i], Result{Key: keys[i], Sim: fl.Result{PPW: float64(i)}}); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(cache.path(HashKey(keys[i])))
		if err != nil {
			t.Fatal(err)
		}
		entrySize = info.Size()
		// Stagger mtimes well beyond filesystem timestamp granularity,
		// oldest first.
		mt := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(cache.path(HashKey(keys[i])), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest entry through Get: a hit must refresh its mtime
	// and save it from eviction.
	var got Result
	if !cache.Get(keys[0], &got) {
		t.Fatal("entry 0 should hit before pruning")
	}
	// An orphaned temp file — a writer killed between CreateTemp and
	// the rename publish — must be cleared by the prune (and not
	// counted as an evicted entry).
	orphan := filepath.Join(dir, "put-1234567")
	if err := os.WriteFile(orphan, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Budget for exactly two entries: the just-used keys[0] and the
	// newest-written keys[3] must survive; keys[1] and keys[2] go.
	removed, err := cache.Prune(2 * entrySize)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("pruned %d entries, want 2", removed)
	}
	for i, wantAlive := range []bool{true, false, false, true} {
		if alive := cache.Get(keys[i], &got); alive != wantAlive {
			t.Errorf("entry %d alive=%v, want %v", i, alive, wantAlive)
		}
	}
	// Survivors must still round-trip intact.
	if !cache.Get(keys[3], &got) || got.Sim.PPW != 3 {
		t.Errorf("surviving entry corrupted: %+v", got)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned put-* temp file survived the prune")
	}
}

// Prune is a no-op for memory caches and non-positive budgets.
func TestCachePruneNoOps(t *testing.T) {
	mem, _ := NewCache("")
	if n, err := mem.Prune(1); n != 0 || err != nil {
		t.Errorf("memory cache prune = %d, %v", n, err)
	}
	disk, _ := NewCache(t.TempDir())
	disk.Put("k", Result{Key: "k"})
	if n, err := disk.Prune(0); n != 0 || err != nil {
		t.Errorf("zero-budget prune = %d, %v", n, err)
	}
	var got Result
	if !disk.Get("k", &got) {
		t.Error("zero-budget prune must not evict")
	}
}

// Stats must come back as one consistent snapshot — a hammered
// executor's counters always sum to the number of completed jobs.
func TestStatsConsistentSnapshot(t *testing.T) {
	cache, _ := NewCache("")
	jobs := make([]Job, 40)
	for i := range jobs {
		jobs[i] = simJob(i % 10)
	}
	e := NewExecutor(8, cache)
	stop := make(chan struct{})
	bad := make(chan string, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats()
			if st.Hits < 0 || st.Runs < 0 || st.Hits+st.Runs > int64(len(jobs)*2) {
				select {
				case bad <- fmt.Sprintf("impossible stats snapshot: %+v", st):
				default:
				}
				return
			}
		}
	}()
	e.RunAll(jobs)
	e.RunAll(jobs)
	close(stop)
	select {
	case msg := <-bad:
		t.Error(msg)
	default:
	}
	st := e.Stats()
	if st.Hits+st.Runs != int64(len(jobs)*2) {
		t.Errorf("final stats %+v do not account for %d jobs", st, len(jobs)*2)
	}
}

// Secondary artifacts — pretrain snapshots, decision traces — live in
// the same directory under KeyFor-style keys and flow through the
// hashed fast path (PutHashed/GetHashed with a caller-held digest).
// A GetHashed hit must touch the entry exactly like Get does, so a
// recently reused snapshot survives -cache-max-bytes eviction over a
// merely recently written one.
func TestCachePruneTouchesHashedSecondaryArtifacts(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		Q []float64 `json:"q"`
	}
	keys := make([]string, 4)
	hashes := make([]string, 4)
	var entrySize int64
	for i := range keys {
		keys[i] = KeyFor("pretrain", fmt.Sprintf("scenario-%d", i), "cfg={}", "seed=99")
		hashes[i] = HashKey(keys[i])
		if err := cache.PutHashed(keys[i], hashes[i], snap{Q: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(cache.path(hashes[i]))
		if err != nil {
			t.Fatal(err)
		}
		entrySize = info.Size()
		mt := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(cache.path(hashes[i]), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Reuse the oldest snapshot through the hashed path: the hit must
	// refresh its mtime.
	var got snap
	if !cache.GetHashed(keys[0], hashes[0], &got) || len(got.Q) != 1 || got.Q[0] != 0 {
		t.Fatalf("oldest artifact should hit intact before pruning, got %+v", got)
	}
	removed, err := cache.Prune(2 * entrySize)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("pruned %d artifacts, want 2", removed)
	}
	for i, wantAlive := range []bool{true, false, false, true} {
		if alive := cache.GetHashed(keys[i], hashes[i], &got); alive != wantAlive {
			t.Errorf("artifact %d alive=%v, want %v", i, alive, wantAlive)
		}
	}
	// The touched survivor must still round-trip through the plain-key
	// path too (same entry, same envelope).
	if !cache.Get(keys[0], &got) || got.Q[0] != 0 {
		t.Errorf("touched artifact corrupted: %+v", got)
	}
}
