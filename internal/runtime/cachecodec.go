package runtime

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"fedgpo/internal/runtime/wire"
	"fedgpo/internal/telemetry"
)

// cacheMagic opens every binary cache entry. The format generation is
// baked into the magic — a future layout change bumps the digit and
// old readers treat new files as foreign (a miss), never as garbage
// that parses.
const cacheMagic = "FGC1"

// binExt and legacyExt are the two on-disk envelope formats: binary
// entries are written by default, legacy JSON entries remain readable
// (and are migrated on hit) so pre-existing -cachedirs stay warm.
const (
	binExt    = ".binz"
	legacyExt = ".json"
)

// maxCacheKeyLen bounds the clear-text key header of a binary entry,
// so a corrupt length prefix can never drive a large allocation. Real
// canonical keys are well under 4 KiB even for matrix-generated
// scenario specs.
const maxCacheKeyLen = 1 << 20

// encodeBinaryEnvelope renders one binary cache entry:
//
//	"FGC1" | uvarint(len(key)) | key bytes | wire frame(payload)
//
// The canonical key stays uncompressed so a reader can reject a
// foreign entry (hash collision, copied file) before inflating a
// single payload byte, and so on-disk entries remain greppable by key.
// The payload rides one wire-package frame — the same bounded,
// DEFLATE-compressed length-prefixed framing the transport plane uses.
func encodeBinaryEnvelope(key string, payload []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > maxCacheKeyLen {
		return nil, fmt.Errorf("runtime: cache envelope key length %d outside (0, %d]", len(key), maxCacheKeyLen)
	}
	var buf bytes.Buffer
	buf.Grow(len(cacheMagic) + binary.MaxVarintLen64 + len(key) + len(payload)/2)
	buf.WriteString(cacheMagic)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	buf.Write(tmp[:n])
	buf.WriteString(key)
	if _, err := wire.WriteFrame(&buf, payload); err != nil {
		return nil, fmt.Errorf("runtime: cache envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeBinaryEnvelope parses a binary cache entry and returns its
// payload when the envelope is well formed and carries wantKey.
// Anything else — wrong magic, truncation at any offset, a foreign
// key, a corrupt frame — reports ok == false: a cache read degrades to
// a miss, never an error. The key comparison happens before the
// payload frame is inflated, so foreign entries cost a header read.
func decodeBinaryEnvelope(b []byte, wantKey string) (payload []byte, ok bool) {
	if len(b) < len(cacheMagic) || string(b[:len(cacheMagic)]) != cacheMagic {
		return nil, false
	}
	b = b[len(cacheMagic):]
	keyLen, n := binary.Uvarint(b)
	if n <= 0 || keyLen == 0 || keyLen > maxCacheKeyLen || uint64(len(b)-n) < keyLen {
		return nil, false
	}
	key := b[n : n+int(keyLen)]
	if string(key) != wantKey {
		return nil, false
	}
	body := bytes.NewReader(b[n+int(keyLen):])
	payload, _, err := wire.ReadFrame(body, 1)
	if err != nil || body.Len() != 0 {
		// Trailing bytes after the payload frame mean the file is not an
		// envelope this writer produced; treat it as corrupt.
		return nil, false
	}
	return payload, true
}

// CacheBytesPerCell measures what one cached result costs on disk
// under the binary envelope codec versus the legacy JSON envelope,
// averaged over the given results — the bench meter behind the
// cache_bytes_per_cell / json_cache_bytes_per_cell trajectory metrics
// (CI gates binary <= 0.6x JSON).
func CacheBytesPerCell(results []Result) (jsonBytes, binBytes float64, err error) {
	if len(results) == 0 {
		return 0, 0, nil
	}
	var jsonTotal, binTotal int
	for _, r := range results {
		payload, err := json.Marshal(r)
		if err != nil {
			return 0, 0, err
		}
		env, err := json.Marshal(envelope{Key: r.Key, Payload: payload})
		if err != nil {
			return 0, 0, err
		}
		bin, err := encodeBinaryEnvelope(r.Key, payload)
		if err != nil {
			return 0, 0, err
		}
		jsonTotal += len(env)
		binTotal += len(bin)
	}
	n := float64(len(results))
	return float64(jsonTotal) / n, float64(binTotal) / n, nil
}

// payloadLRU is the in-process decoded-payload layer: a byte-capped
// LRU over the payload bytes of disk hits, so cells touched repeatedly
// within one run (pretrain snapshots, ForceRun trace re-runs,
// multi-figure sweeps sharing cells) read and inflate their envelope
// once. It caches payloads of hits only — never write-through — so a
// corrupted disk entry is still discovered by the next fresh read path
// and in-memory copies never outlive an explicit drop (Prune removes
// evicted hashes from the layer too). Methods are not locked; Cache
// serializes access under its own payload mutex.
type payloadLRU struct {
	max  int64
	size int64
	ll   list.List                // front = most recently used
	idx  map[string]*list.Element // hash -> element
}

// payloadEntry is one cached decoded payload.
type payloadEntry struct {
	hash    string
	payload []byte
}

func newPayloadLRU(maxBytes int64) *payloadLRU {
	return &payloadLRU{max: maxBytes, idx: make(map[string]*list.Element)}
}

// get returns the payload bytes cached for hash, refreshing its LRU
// position. Callers must not mutate the returned slice.
func (p *payloadLRU) get(hash string) ([]byte, bool) {
	el, ok := p.idx[hash]
	if !ok {
		return nil, false
	}
	p.ll.MoveToFront(el)
	return el.Value.(*payloadEntry).payload, true
}

// put caches payload under hash, evicting least-recently-used entries
// until the layer fits its byte cap. A payload larger than the whole
// cap is not cached at all.
func (p *payloadLRU) put(hash string, payload []byte) {
	if p.max <= 0 || int64(len(payload)) > p.max {
		return
	}
	if el, ok := p.idx[hash]; ok {
		e := el.Value.(*payloadEntry)
		p.size += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		p.ll.MoveToFront(el)
	} else {
		p.idx[hash] = p.ll.PushFront(&payloadEntry{hash: hash, payload: payload})
		p.size += int64(len(payload))
	}
	for p.size > p.max {
		el := p.ll.Back()
		if el == nil {
			break
		}
		p.remove(el)
	}
}

// drop evicts hash from the layer (no-op when absent).
func (p *payloadLRU) drop(hash string) {
	if el, ok := p.idx[hash]; ok {
		p.remove(el)
	}
}

func (p *payloadLRU) remove(el *list.Element) {
	e := el.Value.(*payloadEntry)
	p.ll.Remove(el)
	delete(p.idx, e.hash)
	p.size -= int64(len(e.payload))
}

// touchFlushThreshold is the pending-touch count past which the cache
// flushes asynchronously instead of waiting for executor shutdown, so
// a long-lived worker's LRU mtimes stay bounded-stale.
const touchFlushThreshold = 512

// toucher coalesces mtime touches off the cache hit path: hits queue
// their entry's hash, duplicate queues within one flush window collapse
// to a single syscall, and the pending set drains either asynchronously
// past a threshold or synchronously at executor shutdown / Prune. Losing
// queued touches (process kill) only skews future LRU eviction order —
// the same best-effort contract the old inline Chtimes had.
type toucher struct {
	mu      sync.Mutex
	pending map[string]struct{}
}

// queue marks hash as touched, reporting whether an identical touch
// was already pending (coalesced).
func (t *toucher) queue(hash string) (coalesced bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending == nil {
		t.pending = make(map[string]struct{})
	}
	if _, ok := t.pending[hash]; ok {
		return true
	}
	t.pending[hash] = struct{}{}
	return false
}

// drain takes the pending set, leaving the toucher empty.
func (t *toucher) drain() map[string]struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.pending
	t.pending = nil
	return p
}

// pendingLen reports the current pending-touch count.
func (t *toucher) pendingLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// flushTouches applies every pending mtime touch now and returns the
// number of entries touched. Entries are touched in whichever format
// currently holds them (binary first, then legacy); files removed
// since the touch was queued are skipped silently.
func (c *Cache) flushTouches() int {
	pending := c.touch.drain()
	if len(pending) == 0 {
		return 0
	}
	now := time.Now()
	touched := 0
	for hash := range pending {
		if os.Chtimes(c.path(hash), now, now) == nil {
			touched++
			continue
		}
		if os.Chtimes(c.legacyPath(hash), now, now) == nil {
			touched++
		}
	}
	c.col.Count(func(cc *telemetry.Counters) { cc.CacheTouches += int64(touched) })
	return touched
}
