package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"fedgpo/internal/fl"
)

func simJob(i int) Job {
	return Job{
		Kind:       "sim",
		Scenario:   fmt.Sprintf("scenario-%d", i),
		Controller: "static/(8,10,20)",
		Seed:       int64(i),
		Run: func() Result {
			return Result{Sim: fl.Result{PPW: float64(i), FinalAccuracy: 0.9}}
		},
	}
}

func TestJobKeyStableAndHashed(t *testing.T) {
	j := simJob(3)
	key := j.Key()
	if key != "v3|sim|scenario-3|static/(8,10,20)|seed=3" {
		t.Errorf("unexpected canonical key %q", key)
	}
	if j.Key() != key {
		t.Error("key not stable across calls")
	}
	if len(j.Hash()) != 64 || j.Hash() != HashKey(key) {
		t.Errorf("hash should be the sha256 hex of the key, got %q", j.Hash())
	}
	j2 := simJob(4)
	if j2.Key() == key || j2.Hash() == j.Hash() {
		t.Error("distinct cells must have distinct keys and hashes")
	}
}

func TestRunAllDeterministicOrdering(t *testing.T) {
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = simJob(i)
	}
	serial := NewExecutor(1, nil).RunAll(jobs)
	parallel := NewExecutor(8, nil).RunAll(jobs)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result lengths: %d, %d", len(serial), len(parallel))
	}
	for i := range jobs {
		if serial[i].Sim.PPW != float64(i) {
			t.Fatalf("serial result %d out of order: PPW=%v", i, serial[i].Sim.PPW)
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel results differ from serial results")
	}
}

func TestRunAllPanicIsolation(t *testing.T) {
	jobs := []Job{
		simJob(0),
		{Kind: "sim", Scenario: "boom", Seed: 1, Run: func() Result { panic("kaboom") }},
		simJob(2),
	}
	e := NewExecutor(4, nil)
	rs := e.RunAll(jobs)
	if rs[0].Err != "" || rs[2].Err != "" {
		t.Error("healthy jobs should not report errors")
	}
	if !strings.Contains(rs[1].Err, "kaboom") {
		t.Errorf("panic not captured: %q", rs[1].Err)
	}
	if rs[0].Sim.PPW != 0 || rs[2].Sim.PPW != 2 {
		t.Error("other jobs' results corrupted by the panic")
	}
	if st := e.Stats(); st.Errors != 1 || st.Runs != 3 {
		t.Errorf("stats = %+v, want 1 error of 3 runs", st)
	}
}

func TestExecutorCacheHitsAndCounts(t *testing.T) {
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 10)
	var executed atomic.Int64
	for i := range jobs {
		j := simJob(i % 5) // 5 distinct cells, each named twice
		inner := j.Run
		j.Run = func() Result { executed.Add(1); return inner() }
		jobs[i] = j
	}
	e := NewExecutor(4, cache)
	first := e.RunAll(jobs)
	// Within one batch a duplicated cell may race its twin, so only the
	// second batch has guaranteed counts.
	e2 := NewExecutor(4, cache)
	second := e2.RunAll(jobs)
	if got := e2.Stats(); got.Runs != 0 || got.Hits != int64(len(jobs)) {
		t.Errorf("warm stats = %+v, want 0 runs / %d hits", got, len(jobs))
	}
	if executed.Load() > 10 {
		t.Errorf("cell bodies executed %d times, want <= 10", executed.Load())
	}
	for i := range jobs {
		if !second[i].Cached {
			t.Errorf("result %d not served from cache", i)
		}
		if second[i].Sim.PPW != first[i].Sim.PPW || second[i].Key != first[i].Key {
			t.Errorf("cached result %d differs from original", i)
		}
	}
}

func TestCacheDiskRoundTripAndVerification(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := Result{Key: "k", Sim: fl.Result{PPW: 3.5, Converged: true}}
	if err := c1.Put("some|canonical|key", want); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory must serve the entry.
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if !c2.Get("some|canonical|key", &got) {
		t.Fatal("disk entry not found by fresh cache")
	}
	if got.Sim.PPW != want.Sim.PPW || !got.Sim.Converged {
		t.Errorf("round trip mutated the payload: %+v", got)
	}
	if c2.Get("some|other|key", &got) {
		t.Error("unknown key should miss")
	}
	// Corrupt the file: the entry must degrade to a miss, not an error.
	hash := HashKey("some|canonical|key")
	path := filepath.Join(dir, hash+binExt)
	if err := os.WriteFile(path, []byte("{not a binary envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3, _ := NewCache(dir)
	if c3.Get("some|canonical|key", &got) {
		t.Error("corrupted entry should miss")
	}
	// An envelope whose key does not match the requested key (a
	// collision or foreign file) must also miss.
	foreign, err := encodeBinaryEnvelope("evil", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	c4, _ := NewCache(dir)
	if c4.Get("some|canonical|key", &got) {
		t.Error("key-mismatched envelope should miss")
	}
}

// A corrupt disk entry — e.g. a file torn by a crash before the
// temp-file-plus-rename publish existed, or external tampering — must
// degrade to a cache miss: the executor recomputes the cell, repairs
// the entry in place, and later readers get clean hits. The run itself
// must never fail.
func TestCorruptDiskEntryIsDiscardedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runs int
	job := Job{
		Kind:     "sim",
		Scenario: "corrupt-test",
		Seed:     7,
		Run: func() Result {
			runs++
			return Result{Sim: fl.Result{PPW: 42}}
		},
	}
	e := NewExecutor(1, cache)
	if res := e.RunAll([]Job{job})[0]; res.Err != "" || res.Sim.PPW != 42 {
		t.Fatalf("first run failed: %+v", res)
	}
	if runs != 1 {
		t.Fatalf("job ran %d times, want 1", runs)
	}

	// Tear the entry the way an interrupted write would: the magic and
	// key header survive but the payload frame is cut short.
	path := filepath.Join(dir, job.Hash()+binExt)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache entry not on disk: %v", err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	res := e.RunAll([]Job{job})[0]
	if res.Err != "" {
		t.Fatalf("corrupt entry must not fail the run: %s", res.Err)
	}
	if res.Cached {
		t.Error("corrupt entry must be a miss, not a hit")
	}
	if runs != 2 {
		t.Fatalf("job should have been recomputed once, ran %d times", runs)
	}
	if res.Sim.PPW != 42 {
		t.Errorf("recomputed result wrong: %+v", res.Sim)
	}

	// The recompute must have repaired the entry: a third pass is a hit.
	if res := e.RunAll([]Job{job})[0]; !res.Cached || runs != 2 {
		t.Errorf("repaired entry should serve a hit (cached=%v, runs=%d)", res.Cached, runs)
	}
}

func TestErroredResultsNotCached(t *testing.T) {
	cache, _ := NewCache("")
	job := Job{Kind: "sim", Scenario: "s", Seed: 1, Run: func() Result { panic("once") }}
	e := NewExecutor(1, cache)
	if rs := e.RunAll([]Job{job}); rs[0].Err == "" {
		t.Fatal("expected an error result")
	}
	var dummy Result
	if cache.Get(job.Key(), &dummy) {
		t.Error("errored result must not be cached")
	}
}

func TestProgressCallback(t *testing.T) {
	jobs := make([]Job, 7)
	for i := range jobs {
		jobs[i] = simJob(i)
	}
	e := NewExecutor(4, nil)
	var events []Progress
	e.SetProgress(func(p Progress) { events = append(events, p) })
	e.RunAll(jobs)
	if len(events) != len(jobs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(jobs))
	}
	last := events[len(events)-1]
	if last.Done != len(jobs) || last.Total != len(jobs) {
		t.Errorf("final event = %+v", last)
	}
}

func TestStoreOrderAndFileRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(Result{Key: "b", Sim: fl.Result{PPW: 2}})
	s.Add(Result{Key: "a", Sim: fl.Result{PPW: 1}}, Result{Key: "c", Sim: fl.Result{PPW: 3}})
	s.Add(Result{Key: "b", Sim: fl.Result{PPW: 9}}) // overwrite keeps position
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	rs := s.Results()
	if rs[0].Key != "b" || rs[0].Sim.PPW != 9 || rs[1].Key != "a" || rs[2].Key != "c" {
		t.Errorf("insertion order broken: %+v", rs)
	}
	path := filepath.Join(t.TempDir(), "store.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Results(), s.Results()) {
		t.Error("store file round trip mutated results")
	}
}

func TestResultExtraRoundTrip(t *testing.T) {
	type payload struct {
		RewardHistory []float64
		MemBytes      int
	}
	var r Result
	r.SetExtra(payload{RewardHistory: []float64{1, -2, 3}, MemBytes: 4096})
	var got payload
	if err := r.GetExtra(&got); err != nil {
		t.Fatal(err)
	}
	if got.MemBytes != 4096 || len(got.RewardHistory) != 3 || got.RewardHistory[1] != -2 {
		t.Errorf("extra round trip mutated payload: %+v", got)
	}
}
